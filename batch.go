package pvoronoi

import (
	"context"
	"runtime"
	"sync"
)

// batchRun evaluates fn for every query using a bounded worker pool.
// Results land positionally; the first error aborts outstanding work (workers
// drain quickly because submission stops). workers <= 0 uses GOMAXPROCS.
func batchRun[Q, T any](qs []Q, workers int, fn func(Q) (T, error)) ([]T, error) {
	return batchRunCtx(context.Background(), qs, workers, fn)
}

// batchRunCtx is batchRun under a context: a cancelled or expired ctx stops
// submission, drains the pool, and fails the batch with ctx.Err(). Queries
// already dispatched run to completion — individual evaluations are short
// (microseconds to low milliseconds), so the deadline bounds the batch
// without needing cancellation points inside the geometry kernels.
func batchRunCtx[Q, T any](ctx context.Context, qs []Q, workers int, fn func(Q) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	out := make([]T, len(qs))
	if len(qs) == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   = make(chan struct{})
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r, err := fn(qs[i])
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						close(failed)
					})
					continue
				}
				out[i] = r
			}
		}()
	}
submit:
	for i := range qs {
		select {
		case jobs <- i:
		case <-failed:
			break submit
		case <-ctx.Done():
			errOnce.Do(func() {
				firstErr = ctx.Err()
				close(failed)
			})
			break submit
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// QueryBatch evaluates a full PNNQ for every point in qs using a pool of
// workers (GOMAXPROCS when workers <= 0). Each query pins a snapshot
// version lock-free, so batches interleave with concurrent Insert and
// Delete calls without ever waiting on them; result i corresponds to qs[i]
// and is identical to what a sequential Query(qs[i]) would return against
// the same version. The first failing query (e.g. a point outside the
// domain) fails the batch.
func (ix *Index) QueryBatch(qs []Point, workers int) ([][]Result, error) {
	return batchRun(qs, workers, ix.Query)
}

// QueryBatchCtx is QueryBatch bounded by ctx: a cancelled or expired context
// stops the batch early and returns ctx.Err().
func (ix *Index) QueryBatchCtx(ctx context.Context, qs []Point, workers int) ([][]Result, error) {
	return batchRunCtx(ctx, qs, workers, ix.Query)
}

// PossibleNNBatch evaluates PNNQ Step 1 for every point in qs using a pool
// of workers (GOMAXPROCS when workers <= 0). Semantics match QueryBatch.
func (ix *Index) PossibleNNBatch(qs []Point, workers int) ([][]Candidate, error) {
	return batchRun(qs, workers, ix.PossibleNN)
}

// PossibleNNBatchCtx is PossibleNNBatch bounded by ctx.
func (ix *Index) PossibleNNBatchCtx(ctx context.Context, qs []Point, workers int) ([][]Candidate, error) {
	return batchRunCtx(ctx, qs, workers, ix.PossibleNN)
}

// GroupNNBatch evaluates a group NN query for every group in groups using a
// pool of workers (GOMAXPROCS when workers <= 0). Each query snapshots its
// candidates from a pinned version and refines probabilities on the
// snapshot, so batches never block writers; result i corresponds to
// groups[i].
func (ix *Index) GroupNNBatch(groups [][]Point, agg Agg, workers int) ([][]Result, error) {
	return ix.GroupNNBatchCtx(context.Background(), groups, agg, workers)
}

// GroupNNBatchCtx is GroupNNBatch bounded by ctx.
func (ix *Index) GroupNNBatchCtx(ctx context.Context, groups [][]Point, agg Agg, workers int) ([][]Result, error) {
	return batchRunCtx(ctx, groups, workers, func(g []Point) ([]Result, error) {
		return ix.GroupNN(g, agg)
	})
}

// PossibleKNNBatch evaluates a possible k-NN query for every point in qs
// using a pool of workers (GOMAXPROCS when workers <= 0). Semantics match
// GroupNNBatch.
func (ix *Index) PossibleKNNBatch(qs []Point, k, workers int) ([][]KNNResult, error) {
	return ix.PossibleKNNBatchCtx(context.Background(), qs, k, workers)
}

// PossibleKNNBatchCtx is PossibleKNNBatch bounded by ctx.
func (ix *Index) PossibleKNNBatchCtx(ctx context.Context, qs []Point, k, workers int) ([][]KNNResult, error) {
	return batchRunCtx(ctx, qs, workers, func(q Point) ([]KNNResult, error) {
		return ix.PossibleKNN(q, k)
	})
}
