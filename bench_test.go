// bench_test.go holds one testing.B benchmark per table/figure of the
// paper's evaluation, at reduced scale so `go test -bench=.` finishes in
// minutes. For full sweeps with paper-style output tables, use cmd/pvbench.
package pvoronoi

import (
	"testing"

	"pvoronoi/internal/bench"
)

// benchParams is a further-reduced configuration for testing.B iterations.
func benchParams() bench.Params {
	return bench.Params{Scale: 0.01, Queries: 20, Instances: 50, Seed: 1}
}

func runTable(b *testing.B, f func(bench.Params) interface{ String() string }) {
	b.Helper()
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := f(p)
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tab.String())
		}
	}
}

func BenchmarkTable1Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.ParamTable().String()
	}
}

func BenchmarkFig9aQueryTimeVsSize(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig9a(p) })
}

func BenchmarkFig9bORPCBreakdown(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig9b(p) })
}

func BenchmarkFig9cQueryIOVsSize(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig9c(p) })
}

func BenchmarkFig9dQueryTimeVsRegionSize(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig9d(p) })
}

func BenchmarkFig9eQueryTimeVsDim(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig9e(p) })
}

func BenchmarkFig9fORTimeVsDim(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig9f(p) })
}

func BenchmarkFig9gQueryIOVsDim(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig9g(p) })
}

func BenchmarkFig9hRealDatasets(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig9h(p) })
}

func BenchmarkFig10aConstructionVsDelta(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig10a(p) })
}

func BenchmarkFig10bAllVsFSVsIS(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig10b(p) })
}

func BenchmarkFig10cConstructionVsSize(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig10c(p) })
}

func BenchmarkFig10dConstructionVsRegionSize(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig10d(p) })
}

func BenchmarkFig10eSEBreakdown(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig10e(p) })
}

func BenchmarkFig10fConstructionRealDatasets(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig10f(p) })
}

func BenchmarkFig10gUVvsPVConstruction(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig10g(p) })
}

func BenchmarkFig10hIncrementalInsert(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig10h(p) })
}

func BenchmarkFig10iIncrementalDelete(b *testing.B) {
	runTable(b, func(p bench.Params) interface{ String() string } { return bench.Fig10i(p) })
}
