package main

// Extension-query benchmark mode: measures candidate retrieval for the
// extension workloads (group NN, possible k-NN, reverse NN) three ways —
// linear scan, R-tree branch-and-bound, and best-first expansion over the
// PV-index's materialized adjacency graph — across dataset sizes and the
// workloads' own parameters (group size, k), and writes the results as JSON
// (BENCH_extquery.json) so the repo tracks the speedup commit over commit.
// The scan and tree paths need only the region R*-tree; the graph path
// builds a full PV-index per size (SE construction dominates at n = 100k),
// so expect the mode to take minutes at full scale. All three paths must
// return identical candidate ID sets on every query — a mismatch fails the
// run.
//
// The graph path is measured twice per size: once on the freshly built index
// with hub refinement disabled (the *_noref columns) and once after an
// explicit Index.Refine pass, so the report shows exactly what the
// refinement budget buys — the visited-row degree means make the fat-hub
// collapse directly visible. Per-size build and refinement cost land in the
// "builds" block; the effective refinement budget in the config block.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pvoronoi/internal/core"
	"pvoronoi/internal/dataset"
	"pvoronoi/internal/extquery"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/pvindex"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// geomPoint aliases the geometry point for the local conversion helpers.
type geomPoint = geom.Point

// extqueryConfig bundles the extquery experiment parameters.
type extqueryConfig struct {
	JSONPath   string // output file ("" = stdout only)
	Ns         []int  // dataset sizes
	Dim        int
	Seed       int64
	Queries    int   // measured queries per configuration
	GroupSizes []int // |Q| sweep for group NN
	Ks         []int // k sweep for possible k-NN
	RNNMaxN    int   // reverse NN scan is O(n²); skip scan sizes above this
}

// extqueryRow is one (workload, n, parameter) measurement. Graph columns are
// zero for reverse NN, which retrieves through the R*-tree only.
type extqueryRow struct {
	Query      string  `json:"query"` // groupnn | knn | rnn
	N          int     `json:"n"`
	Param      int     `json:"param"` // group size or k (0 for rnn)
	ScanUs     float64 `json:"scan_us"`
	TreeUs     float64 `json:"tree_us"`
	GraphUs    float64 `json:"graph_us,omitempty"`
	Speedup    float64 `json:"speedup"` // scan / tree
	TreeNodes  float64 `json:"tree_nodes"`
	TreeLeaves float64 `json:"tree_leaves"`
	GraphNodes float64 `json:"graph_nodes,omitempty"` // adjacency rows expanded
	GraphEdges float64 `json:"graph_edges,omitempty"` // neighbor links examined
	Candidates float64 `json:"candidates"`
	Matched    bool    `json:"matched"` // all retrieval paths agree on the ID set
	// Refinement on/off comparison: the *_noref columns measure the same
	// graph expansion before the hub refinement pass; the visit-degree
	// columns are the mean adjacency degree of visited rows (edges/nodes),
	// the quantity refinement exists to cut.
	GraphUsNoRef    float64 `json:"graph_us_noref,omitempty"`
	GraphNodesNoRef float64 `json:"graph_nodes_noref,omitempty"`
	GraphEdgesNoRef float64 `json:"graph_edges_noref,omitempty"`
	VisitDeg        float64 `json:"visit_deg,omitempty"`
	VisitDegNoRef   float64 `json:"visit_deg_noref,omitempty"`
}

// extqueryReport is the serialized BENCH_extquery.json document.
type extqueryReport struct {
	GeneratedBy string           `json:"generated_by"`
	Config      extqueryCfgJ     `json:"config"`
	Builds      []extqueryBuildJ `json:"builds"`
	Rows        []extqueryRow    `json:"rows"`
}

type extqueryCfgJ struct {
	Ns         []int      `json:"ns"`
	Dim        int        `json:"dim"`
	Seed       int64      `json:"seed"`
	Queries    int        `json:"queries"`
	GroupSizes []int      `json:"group_sizes"`
	Ks         []int      `json:"ks"`
	RNNMaxN    int        `json:"rnn_max_n"`
	Refine     refineCfgJ `json:"refine"` // effective refinement budget
	GoMaxProcs int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	GoVersion  string     `json:"go_version"`
	GOGC       int        `json:"gogc"`
}

// refineCfgJ records the effective refinement budget the "on" measurements
// ran under (pvindex.RefineConfig with defaults resolved).
type refineCfgJ struct {
	TopFraction float64 `json:"top_fraction"`
	MaxRows     int     `json:"max_rows"`
	DepthBoost  int     `json:"depth_boost"`
	CSetFactor  int     `json:"cset_factor"`
	MinDegree   int     `json:"min_degree"`
}

// extqueryBuildJ is one per-size construction record: base build cost, the
// explicit refinement pass's cost, and the pass's counters — the proof that
// the budget went to a small hub set rather than being spread uniformly.
type extqueryBuildJ struct {
	N           int     `json:"n"`
	BuildUs     float64 `json:"build_us"`
	RefineUs    float64 `json:"refine_us"`
	RowsRefined int64   `json:"rows_refined"`
	ClipPasses  int64   `json:"clip_passes"`
	BudgetSpent int64   `json:"budget_spent"` // domination decisions consumed
	Threshold   float64 `json:"refine_threshold"`
}

// runExtquery builds, per size, a region tree (scan/tree paths) and a full
// PV-index (graph path), then measures the three retrieval paths against
// each other with a hard set-equality check on every query.
func runExtquery(cfg extqueryConfig) error {
	if cfg.Queries <= 0 {
		cfg.Queries = 16
	}
	if len(cfg.GroupSizes) == 0 {
		cfg.GroupSizes = []int{2, 4, 8}
	}
	if len(cfg.Ks) == 0 {
		cfg.Ks = []int{1, 4, 16}
	}
	if cfg.RNNMaxN <= 0 {
		cfg.RNNMaxN = 10000
	}
	if cfg.Dim <= 0 {
		cfg.Dim = 2
	}

	refCfg := pvindex.DefaultConfig().Refine.Resolved()
	report := extqueryReport{
		GeneratedBy: "pvbench extquery",
		Config: extqueryCfgJ{
			Ns: cfg.Ns, Dim: cfg.Dim, Seed: cfg.Seed, Queries: cfg.Queries,
			GroupSizes: cfg.GroupSizes, Ks: cfg.Ks, RNNMaxN: cfg.RNNMaxN,
			Refine: refineCfgJ{
				TopFraction: refCfg.TopFraction,
				MaxRows:     refCfg.MaxRows,
				DepthBoost:  refCfg.DepthBoost,
				CSetFactor:  refCfg.CSetFactor,
				MinDegree:   refCfg.MinDegree,
			},
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GoVersion:  goVersion(),
			GOGC:       gogcPercent(),
		},
	}

	for _, n := range cfg.Ns {
		fmt.Printf("extquery: building region tree over %d objects (d=%d)...\n", n, cfg.Dim)
		db := dataset.Synthetic(dataset.SyntheticParams{
			N: n, Dim: cfg.Dim, MaxSide: 60, Instances: 0, Seed: cfg.Seed,
		})
		tree := core.BuildRegionTree(db, rtree.DefaultFanout)
		fmt.Printf("extquery: building PV-index over %d objects (SE construction)...\n", n)
		ixCfg := pvindex.DefaultConfig()
		// Build with refinement off so the first graph pass measures the base
		// index; the explicit Refine call below is the "on" side (and is
		// itself timed), avoiding a second full SE construction.
		ixCfg.Refine.Disabled = true
		t0 := time.Now()
		ix, err := pvindex.BuildParallel(db, ixCfg, 0)
		if err != nil {
			return fmt.Errorf("extquery: building PV-index at n=%d: %w", n, err)
		}
		buildUs := us(t0)
		fmt.Printf("extquery: PV-index built in %v\n", time.Since(t0).Round(time.Millisecond))
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		randPoint := func() []float64 {
			p := make([]float64, cfg.Dim)
			for j := range p {
				p[j] = rng.Float64() * dataset.DomainSpan
			}
			return p
		}
		nStart := len(report.Rows)

		// Unrefined pass: scan + tree baselines and the graph path before
		// refinement. Group NN: |Q| sweep.
		for _, g := range cfg.GroupSizes {
			row := extqueryRow{Query: "groupnn", N: n, Param: g, Matched: true}
			for i := 0; i < cfg.Queries; i++ {
				qs := make([]pointT, g)
				for j := range qs {
					qs[j] = randPoint()
				}
				t0 := time.Now()
				want := extquery.GroupNNCandidates(db, toPoints(qs), extquery.AggSum)
				row.ScanUs += us(t0)
				t1 := time.Now()
				got, cost := extquery.GroupNNCandidatesTree(tree, toPoints(qs), extquery.AggSum)
				row.TreeUs += us(t1)
				t2 := time.Now()
				gotG, gc, err := ix.GroupNNCandidatesOnly(toPoints(qs), extquery.AggSum)
				if err != nil {
					return fmt.Errorf("extquery: groupnn graph retrieval: %w", err)
				}
				row.GraphUsNoRef += us(t2)
				row.TreeNodes += float64(cost.Nodes)
				row.TreeLeaves += float64(cost.Leaves)
				row.GraphNodesNoRef += float64(gc.GraphNodes)
				row.GraphEdgesNoRef += float64(gc.GraphEdges)
				row.Candidates += float64(len(got))
				if !sameIDs(got, want) || !sameIDs(gotG, want) {
					row.Matched = false
				}
			}
			report.Rows = append(report.Rows, row)
		}

		// Possible k-NN: k sweep.
		for _, k := range cfg.Ks {
			row := extqueryRow{Query: "knn", N: n, Param: k, Matched: true}
			for i := 0; i < cfg.Queries; i++ {
				q := toPoint(randPoint())
				t0 := time.Now()
				want := extquery.KNNCandidates(db, q, k)
				row.ScanUs += us(t0)
				t1 := time.Now()
				got, cost := extquery.KNNCandidatesTree(tree, q, k)
				row.TreeUs += us(t1)
				t2 := time.Now()
				gotG, gc, err := ix.KNNCandidatesOnly(q, k)
				if err != nil {
					return fmt.Errorf("extquery: knn graph retrieval: %w", err)
				}
				row.GraphUsNoRef += us(t2)
				row.TreeNodes += float64(cost.Nodes)
				row.TreeLeaves += float64(cost.Leaves)
				row.GraphNodesNoRef += float64(gc.GraphNodes)
				row.GraphEdgesNoRef += float64(gc.GraphEdges)
				row.Candidates += float64(len(got))
				if !sameIDs(got, want) || !sameIDs(gotG, want) {
					row.Matched = false
				}
			}
			report.Rows = append(report.Rows, row)
		}

		// Reverse NN: the scan collects dominators in O(n) per object, O(n²)
		// per query, so it is only measured up to RNNMaxN. RNN has no graph
		// path — it stays on the R*-tree.
		if n <= cfg.RNNMaxN {
			row := extqueryRow{Query: "rnn", N: n, Matched: true}
			for i := 0; i < cfg.Queries; i++ {
				q := toPoint(randPoint())
				t0 := time.Now()
				want := extquery.RNNCandidates(db, q, 10)
				row.ScanUs += us(t0)
				t1 := time.Now()
				got, cost := extquery.RNNCandidatesTree(tree, q, 10)
				row.TreeUs += us(t1)
				row.TreeNodes += float64(cost.Nodes)
				row.TreeLeaves += float64(cost.Leaves)
				row.Candidates += float64(len(got))
				if !sameIDs(got, want) {
					row.Matched = false
				}
			}
			report.Rows = append(report.Rows, row)
		} else {
			fmt.Printf("extquery: skipping rnn scan at n=%d (O(n²) baseline; cap %d)\n", n, cfg.RNNMaxN)
		}

		// Refine, then replay the same query points (same seed, same draw
		// order) against the refined graph. Candidate sets must still match
		// the tree oracle — refinement may only change the cost columns.
		fmt.Printf("extquery: refining PV-index hubs at n=%d...\n", n)
		tR := time.Now()
		if _, err := ix.Refine(); err != nil {
			return fmt.Errorf("extquery: refining PV-index at n=%d: %w", n, err)
		}
		refineUs := us(tR)
		rc := ix.RefineCounters()
		bld := extqueryBuildJ{
			N: n, BuildUs: buildUs, RefineUs: refineUs,
			RowsRefined: rc.RowsRefined, ClipPasses: rc.ClipPasses,
			BudgetSpent: rc.BudgetSpent,
		}
		if !math.IsInf(rc.Threshold, 1) {
			bld.Threshold = rc.Threshold
		}
		report.Builds = append(report.Builds, bld)
		fmt.Printf("extquery: refined %d rows in %v (budget %d tests)\n",
			rc.RowsRefined, time.Since(tR).Round(time.Millisecond), rc.BudgetSpent)

		rng = rand.New(rand.NewSource(cfg.Seed + int64(n)))
		ri := nStart
		for _, g := range cfg.GroupSizes {
			row := &report.Rows[ri]
			ri++
			for i := 0; i < cfg.Queries; i++ {
				qs := make([]pointT, g)
				for j := range qs {
					qs[j] = randPoint()
				}
				t0 := time.Now()
				gotG, gc, err := ix.GroupNNCandidatesOnly(toPoints(qs), extquery.AggSum)
				if err != nil {
					return fmt.Errorf("extquery: groupnn refined graph retrieval: %w", err)
				}
				row.GraphUs += us(t0)
				row.GraphNodes += float64(gc.GraphNodes)
				row.GraphEdges += float64(gc.GraphEdges)
				want, _ := extquery.GroupNNCandidatesTree(tree, toPoints(qs), extquery.AggSum)
				if !sameIDs(gotG, want) {
					row.Matched = false
				}
			}
		}
		for _, k := range cfg.Ks {
			row := &report.Rows[ri]
			ri++
			for i := 0; i < cfg.Queries; i++ {
				q := toPoint(randPoint())
				t0 := time.Now()
				gotG, gc, err := ix.KNNCandidatesOnly(q, k)
				if err != nil {
					return fmt.Errorf("extquery: knn refined graph retrieval: %w", err)
				}
				row.GraphUs += us(t0)
				row.GraphNodes += float64(gc.GraphNodes)
				row.GraphEdges += float64(gc.GraphEdges)
				want, _ := extquery.KNNCandidatesTree(tree, q, k)
				if !sameIDs(gotG, want) {
					row.Matched = false
				}
			}
		}
		for i := nStart; i < len(report.Rows); i++ {
			finishRow(&report.Rows[i], cfg.Queries)
		}
	}

	printExtquery(report)
	if cfg.JSONPath != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.JSONPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.JSONPath)
	}
	for _, row := range report.Rows {
		if !row.Matched {
			return fmt.Errorf("extquery: retrieval paths diverged on %s n=%d param=%d",
				row.Query, row.N, row.Param)
		}
	}
	return nil
}

type pointT = []float64

func toPoints(ps []pointT) []geomPoint {
	out := make([]geomPoint, len(ps))
	for i, p := range ps {
		out[i] = geomPoint(p)
	}
	return out
}

func toPoint(p pointT) geomPoint { return geomPoint(p) }

func us(t0 time.Time) float64 { return float64(time.Since(t0).Nanoseconds()) / 1e3 }

func finishRow(row *extqueryRow, queries int) {
	q := float64(queries)
	row.ScanUs /= q
	row.TreeUs /= q
	row.GraphUs /= q
	row.TreeNodes /= q
	row.TreeLeaves /= q
	row.GraphNodes /= q
	row.GraphEdges /= q
	row.GraphUsNoRef /= q
	row.GraphNodesNoRef /= q
	row.GraphEdgesNoRef /= q
	row.Candidates /= q
	if row.TreeUs > 0 {
		row.Speedup = row.ScanUs / row.TreeUs
	}
	if row.GraphNodes > 0 {
		row.VisitDeg = row.GraphEdges / row.GraphNodes
	}
	if row.GraphNodesNoRef > 0 {
		row.VisitDegNoRef = row.GraphEdgesNoRef / row.GraphNodesNoRef
	}
}

func sameIDs(a, b []uncertain.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func printExtquery(r extqueryReport) {
	fmt.Printf("\nextension-query retrieval report (d=%d, %d queries/config)\n",
		r.Config.Dim, r.Config.Queries)
	fmt.Printf("  %-8s %8s %6s %12s %12s %12s %12s %9s %8s %8s %7s\n",
		"query", "n", "param", "scan us", "tree us", "graph us", "g¬ref us", "speedup",
		"v.deg", "v.deg¬r", "match")
	for _, row := range r.Rows {
		fmt.Printf("  %-8s %8d %6d %12.1f %12.1f %12.1f %12.1f %8.1fx %8.1f %8.1f %7v\n",
			row.Query, row.N, row.Param, row.ScanUs, row.TreeUs, row.GraphUs, row.GraphUsNoRef,
			row.Speedup, row.VisitDeg, row.VisitDegNoRef, row.Matched)
	}
	for _, b := range r.Builds {
		fmt.Printf("  build n=%-8d %10.0f us  refine %10.0f us  rows=%d clips=%d budget=%d\n",
			b.N, b.BuildUs, b.RefineUs, b.RowsRefined, b.ClipPasses, b.BudgetSpent)
	}
}

// parseIntList parses a comma-separated integer list flag ("1000,10000").
func parseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
