package main

// Extension-query benchmark mode: measures candidate retrieval for the
// extension workloads (group NN, possible k-NN, reverse NN) three ways —
// linear scan, R-tree branch-and-bound, and best-first expansion over the
// PV-index's materialized adjacency graph — across dataset sizes and the
// workloads' own parameters (group size, k), and writes the results as JSON
// (BENCH_extquery.json) so the repo tracks the speedup commit over commit.
// The scan and tree paths need only the region R*-tree; the graph path
// builds a full PV-index per size (SE construction dominates at n = 100k),
// so expect the mode to take minutes at full scale. All three paths must
// return identical candidate ID sets on every query — a mismatch fails the
// run.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pvoronoi/internal/core"
	"pvoronoi/internal/dataset"
	"pvoronoi/internal/extquery"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/pvindex"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// geomPoint aliases the geometry point for the local conversion helpers.
type geomPoint = geom.Point

// extqueryConfig bundles the extquery experiment parameters.
type extqueryConfig struct {
	JSONPath   string // output file ("" = stdout only)
	Ns         []int  // dataset sizes
	Dim        int
	Seed       int64
	Queries    int   // measured queries per configuration
	GroupSizes []int // |Q| sweep for group NN
	Ks         []int // k sweep for possible k-NN
	RNNMaxN    int   // reverse NN scan is O(n²); skip scan sizes above this
}

// extqueryRow is one (workload, n, parameter) measurement. Graph columns are
// zero for reverse NN, which retrieves through the R*-tree only.
type extqueryRow struct {
	Query      string  `json:"query"` // groupnn | knn | rnn
	N          int     `json:"n"`
	Param      int     `json:"param"` // group size or k (0 for rnn)
	ScanUs     float64 `json:"scan_us"`
	TreeUs     float64 `json:"tree_us"`
	GraphUs    float64 `json:"graph_us,omitempty"`
	Speedup    float64 `json:"speedup"` // scan / tree
	TreeNodes  float64 `json:"tree_nodes"`
	TreeLeaves float64 `json:"tree_leaves"`
	GraphNodes float64 `json:"graph_nodes,omitempty"` // adjacency rows expanded
	GraphEdges float64 `json:"graph_edges,omitempty"` // neighbor links examined
	Candidates float64 `json:"candidates"`
	Matched    bool    `json:"matched"` // all retrieval paths agree on the ID set
}

// extqueryReport is the serialized BENCH_extquery.json document.
type extqueryReport struct {
	GeneratedBy string        `json:"generated_by"`
	Config      extqueryCfgJ  `json:"config"`
	Rows        []extqueryRow `json:"rows"`
}

type extqueryCfgJ struct {
	Ns         []int  `json:"ns"`
	Dim        int    `json:"dim"`
	Seed       int64  `json:"seed"`
	Queries    int    `json:"queries"`
	GroupSizes []int  `json:"group_sizes"`
	Ks         []int  `json:"ks"`
	RNNMaxN    int    `json:"rnn_max_n"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GOGC       int    `json:"gogc"`
}

// runExtquery builds, per size, a region tree (scan/tree paths) and a full
// PV-index (graph path), then measures the three retrieval paths against
// each other with a hard set-equality check on every query.
func runExtquery(cfg extqueryConfig) error {
	if cfg.Queries <= 0 {
		cfg.Queries = 16
	}
	if len(cfg.GroupSizes) == 0 {
		cfg.GroupSizes = []int{2, 4, 8}
	}
	if len(cfg.Ks) == 0 {
		cfg.Ks = []int{1, 4, 16}
	}
	if cfg.RNNMaxN <= 0 {
		cfg.RNNMaxN = 10000
	}
	if cfg.Dim <= 0 {
		cfg.Dim = 2
	}

	report := extqueryReport{
		GeneratedBy: "pvbench extquery",
		Config: extqueryCfgJ{
			Ns: cfg.Ns, Dim: cfg.Dim, Seed: cfg.Seed, Queries: cfg.Queries,
			GroupSizes: cfg.GroupSizes, Ks: cfg.Ks, RNNMaxN: cfg.RNNMaxN,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GoVersion:  goVersion(),
			GOGC:       gogcPercent(),
		},
	}

	for _, n := range cfg.Ns {
		fmt.Printf("extquery: building region tree over %d objects (d=%d)...\n", n, cfg.Dim)
		db := dataset.Synthetic(dataset.SyntheticParams{
			N: n, Dim: cfg.Dim, MaxSide: 60, Instances: 0, Seed: cfg.Seed,
		})
		tree := core.BuildRegionTree(db, rtree.DefaultFanout)
		fmt.Printf("extquery: building PV-index over %d objects (SE construction)...\n", n)
		t0 := time.Now()
		ix, err := pvindex.BuildParallel(db, pvindex.DefaultConfig(), 0)
		if err != nil {
			return fmt.Errorf("extquery: building PV-index at n=%d: %w", n, err)
		}
		fmt.Printf("extquery: PV-index built in %v\n", time.Since(t0).Round(time.Millisecond))
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		randPoint := func() []float64 {
			p := make([]float64, cfg.Dim)
			for j := range p {
				p[j] = rng.Float64() * dataset.DomainSpan
			}
			return p
		}

		// Group NN: |Q| sweep.
		for _, g := range cfg.GroupSizes {
			row := extqueryRow{Query: "groupnn", N: n, Param: g, Matched: true}
			for i := 0; i < cfg.Queries; i++ {
				qs := make([]pointT, g)
				for j := range qs {
					qs[j] = randPoint()
				}
				t0 := time.Now()
				want := extquery.GroupNNCandidates(db, toPoints(qs), extquery.AggSum)
				row.ScanUs += us(t0)
				t1 := time.Now()
				got, cost := extquery.GroupNNCandidatesTree(tree, toPoints(qs), extquery.AggSum)
				row.TreeUs += us(t1)
				t2 := time.Now()
				gotG, gc, err := ix.GroupNNCandidatesOnly(toPoints(qs), extquery.AggSum)
				if err != nil {
					return fmt.Errorf("extquery: groupnn graph retrieval: %w", err)
				}
				row.GraphUs += us(t2)
				row.TreeNodes += float64(cost.Nodes)
				row.TreeLeaves += float64(cost.Leaves)
				row.GraphNodes += float64(gc.GraphNodes)
				row.GraphEdges += float64(gc.GraphEdges)
				row.Candidates += float64(len(got))
				if !sameIDs(got, want) || !sameIDs(gotG, want) {
					row.Matched = false
				}
			}
			finishRow(&row, cfg.Queries)
			report.Rows = append(report.Rows, row)
		}

		// Possible k-NN: k sweep.
		for _, k := range cfg.Ks {
			row := extqueryRow{Query: "knn", N: n, Param: k, Matched: true}
			for i := 0; i < cfg.Queries; i++ {
				q := toPoint(randPoint())
				t0 := time.Now()
				want := extquery.KNNCandidates(db, q, k)
				row.ScanUs += us(t0)
				t1 := time.Now()
				got, cost := extquery.KNNCandidatesTree(tree, q, k)
				row.TreeUs += us(t1)
				t2 := time.Now()
				gotG, gc, err := ix.KNNCandidatesOnly(q, k)
				if err != nil {
					return fmt.Errorf("extquery: knn graph retrieval: %w", err)
				}
				row.GraphUs += us(t2)
				row.TreeNodes += float64(cost.Nodes)
				row.TreeLeaves += float64(cost.Leaves)
				row.GraphNodes += float64(gc.GraphNodes)
				row.GraphEdges += float64(gc.GraphEdges)
				row.Candidates += float64(len(got))
				if !sameIDs(got, want) || !sameIDs(gotG, want) {
					row.Matched = false
				}
			}
			finishRow(&row, cfg.Queries)
			report.Rows = append(report.Rows, row)
		}

		// Reverse NN: the scan collects dominators in O(n) per object, O(n²)
		// per query, so it is only measured up to RNNMaxN. RNN has no graph
		// path — it stays on the R*-tree.
		if n <= cfg.RNNMaxN {
			row := extqueryRow{Query: "rnn", N: n, Matched: true}
			for i := 0; i < cfg.Queries; i++ {
				q := toPoint(randPoint())
				t0 := time.Now()
				want := extquery.RNNCandidates(db, q, 10)
				row.ScanUs += us(t0)
				t1 := time.Now()
				got, cost := extquery.RNNCandidatesTree(tree, q, 10)
				row.TreeUs += us(t1)
				row.TreeNodes += float64(cost.Nodes)
				row.TreeLeaves += float64(cost.Leaves)
				row.Candidates += float64(len(got))
				if !sameIDs(got, want) {
					row.Matched = false
				}
			}
			finishRow(&row, cfg.Queries)
			report.Rows = append(report.Rows, row)
		} else {
			fmt.Printf("extquery: skipping rnn scan at n=%d (O(n²) baseline; cap %d)\n", n, cfg.RNNMaxN)
		}
	}

	printExtquery(report)
	if cfg.JSONPath != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.JSONPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.JSONPath)
	}
	for _, row := range report.Rows {
		if !row.Matched {
			return fmt.Errorf("extquery: retrieval paths diverged on %s n=%d param=%d",
				row.Query, row.N, row.Param)
		}
	}
	return nil
}

type pointT = []float64

func toPoints(ps []pointT) []geomPoint {
	out := make([]geomPoint, len(ps))
	for i, p := range ps {
		out[i] = geomPoint(p)
	}
	return out
}

func toPoint(p pointT) geomPoint { return geomPoint(p) }

func us(t0 time.Time) float64 { return float64(time.Since(t0).Nanoseconds()) / 1e3 }

func finishRow(row *extqueryRow, queries int) {
	q := float64(queries)
	row.ScanUs /= q
	row.TreeUs /= q
	row.GraphUs /= q
	row.TreeNodes /= q
	row.TreeLeaves /= q
	row.GraphNodes /= q
	row.GraphEdges /= q
	row.Candidates /= q
	if row.TreeUs > 0 {
		row.Speedup = row.ScanUs / row.TreeUs
	}
}

func sameIDs(a, b []uncertain.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func printExtquery(r extqueryReport) {
	fmt.Printf("\nextension-query retrieval report (d=%d, %d queries/config)\n",
		r.Config.Dim, r.Config.Queries)
	fmt.Printf("  %-8s %8s %6s %12s %12s %12s %9s %8s %8s %8s %8s %7s\n",
		"query", "n", "param", "scan us", "tree us", "graph us", "speedup",
		"nodes", "leaves", "g.nodes", "g.edges", "match")
	for _, row := range r.Rows {
		fmt.Printf("  %-8s %8d %6d %12.1f %12.1f %12.1f %8.1fx %8.1f %8.1f %8.1f %8.1f %7v\n",
			row.Query, row.N, row.Param, row.ScanUs, row.TreeUs, row.GraphUs, row.Speedup,
			row.TreeNodes, row.TreeLeaves, row.GraphNodes, row.GraphEdges, row.Matched)
	}
}

// parseIntList parses a comma-separated integer list flag ("1000,10000").
func parseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
