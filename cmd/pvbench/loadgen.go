package main

// Load-generator mode: sustained query traffic against a PV-index, either
// through a running pvserve instance over HTTP or through the in-process
// batch API. Arrivals are open-loop (generated at the target QPS regardless
// of completion pace), so reported latency includes queueing delay when the
// index can't keep up — the honest way to measure a serving system.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pvoronoi"
	"pvoronoi/internal/dataset"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/stats"
)

// loadConfig bundles the load-generator parameters.
type loadConfig struct {
	URL      string        // pvserve base URL; empty = in-process batch API
	QPS      int           // target arrivals per second; 0 = max throughput
	Duration time.Duration // measurement window
	Conns    int           // HTTP connections / batch workers
	Batch    int           // max batch size for the in-process dispatcher
	Step1    bool          // PossibleNN only instead of the full PNNQ

	// In-process dataset parameters.
	N, Dim, Instances int
	Seed              int64
}

// runLoad executes the load test and prints a throughput/latency report.
func runLoad(cfg loadConfig) error {
	if cfg.Conns <= 0 {
		cfg.Conns = 16
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}

	if cfg.URL != "" {
		return runLoadHTTP(cfg)
	}
	return runLoadInProcess(cfg)
}

// collector gathers per-query latencies from many goroutines.
type collector struct {
	mu        sync.Mutex
	latencies stats.Sample
	completed int64
	errors    int64
	shed      atomic.Int64 // paced arrivals dropped because the queue was full
}

func (c *collector) record(d time.Duration, n int, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if failed {
		c.errors += int64(n)
		return
	}
	c.completed += int64(n)
	for i := 0; i < n; i++ {
		c.latencies.Add(float64(d.Microseconds()))
	}
}

func (c *collector) report(mode string, cfg loadConfig, elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	target := "max"
	if cfg.QPS > 0 {
		target = fmt.Sprintf("%d", cfg.QPS)
	}
	fmt.Printf("\nload report (%s)\n", mode)
	fmt.Printf("  target QPS        %s\n", target)
	fmt.Printf("  duration          %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  completed         %d\n", c.completed)
	fmt.Printf("  errors            %d\n", c.errors)
	fmt.Printf("  throughput        %.1f queries/s\n", float64(c.completed)/elapsed.Seconds())
	fmt.Printf("  latency p50       %v\n", time.Duration(c.latencies.Percentile(50))*time.Microsecond)
	fmt.Printf("  latency p95       %v\n", time.Duration(c.latencies.Percentile(95))*time.Microsecond)
	fmt.Printf("  latency p99       %v\n", time.Duration(c.latencies.Percentile(99))*time.Microsecond)
	fmt.Printf("  latency mean      %v\n", time.Duration(c.latencies.Mean())*time.Microsecond)
	if shed := c.shed.Load(); shed > 0 {
		offered := shed + c.completed + c.errors
		fmt.Printf("  shed arrivals     %d of %d offered (%.1f%%) — consumers saturated\n",
			shed, offered, 100*float64(shed)/float64(offered))
	}
}

// arrival is one generated query with its arrival timestamp (latency is
// measured from arrival, so queueing delay counts).
type arrival struct {
	q  pvoronoi.Point
	at time.Time
}

// generateArrivals feeds the queue at the target QPS until the deadline,
// counting paced arrivals it had to drop into shed. QPS <= 0 keeps the
// queue saturated (max-throughput mode; saturation there is by design, not
// shed load).
func generateArrivals(queue chan<- arrival, domain geom.Rect, qps int, deadline time.Time, seed int64, shed *atomic.Int64) {
	rng := rand.New(rand.NewSource(seed))
	randPoint := func() pvoronoi.Point {
		p := make(pvoronoi.Point, domain.Dim())
		for j := range p {
			p[j] = domain.Lo[j] + rng.Float64()*(domain.Hi[j]-domain.Lo[j])
		}
		return p
	}
	if qps <= 0 {
		for time.Now().Before(deadline) {
			select {
			case queue <- arrival{q: randPoint(), at: time.Now()}:
			default:
				// Queue full: consumers are saturated; yield briefly.
				time.Sleep(50 * time.Microsecond)
			}
		}
		close(queue)
		return
	}
	interval := time.Second / time.Duration(qps)
	next := time.Now()
	for time.Now().Before(deadline) {
		now := time.Now()
		if now.Before(next) {
			time.Sleep(next.Sub(now))
		}
		next = next.Add(interval)
		select {
		case queue <- arrival{q: randPoint(), at: time.Now()}:
		default:
			// Queue overflow is shed load; keep the arrival clock honest
			// rather than blocking the generator, but count the drop.
			shed.Add(1)
		}
	}
	close(queue)
}

// runLoadInProcess builds a synthetic index and drives it through the batch
// API: a dispatcher drains the arrival queue into batches of at most
// cfg.Batch and submits each batch to QueryBatch/PossibleNNBatch with
// cfg.Conns workers.
func runLoadInProcess(cfg loadConfig) error {
	fmt.Printf("building PV-index over %d objects (d=%d) for in-process load test...\n", cfg.N, cfg.Dim)
	db := dataset.Synthetic(dataset.SyntheticParams{
		N: cfg.N, Dim: cfg.Dim, MaxSide: 60, Instances: cfg.Instances, Seed: cfg.Seed,
	})
	t0 := time.Now()
	ix, err := pvoronoi.BuildParallel(db, pvoronoi.DefaultOptions(), 0)
	if err != nil {
		return err
	}
	fmt.Printf("built in %v\n", time.Since(t0).Round(time.Millisecond))

	col := &collector{}
	queue := make(chan arrival, 4*cfg.Batch*cfg.Conns)
	deadline := time.Now().Add(cfg.Duration)
	go generateArrivals(queue, db.Domain, cfg.QPS, deadline, cfg.Seed+99, &col.shed)

	start := time.Now()
	for {
		first, ok := <-queue
		if !ok {
			break
		}
		batch := []arrival{first}
	drain:
		for len(batch) < cfg.Batch {
			select {
			case a, ok := <-queue:
				if !ok {
					break drain
				}
				batch = append(batch, a)
			default:
				break drain
			}
		}
		points := make([]pvoronoi.Point, len(batch))
		for i, a := range batch {
			points[i] = a.q
		}
		var batchErr error
		if cfg.Step1 {
			_, batchErr = ix.PossibleNNBatch(points, cfg.Conns)
		} else {
			_, batchErr = ix.QueryBatch(points, cfg.Conns)
		}
		done := time.Now()
		if batchErr != nil {
			col.record(0, len(batch), true)
			continue
		}
		for _, a := range batch {
			col.record(done.Sub(a.at), 1, false)
		}
	}
	elapsed := time.Since(start)

	mode := fmt.Sprintf("in-process batch, n=%d d=%d batch<=%d workers=%d", cfg.N, cfg.Dim, cfg.Batch, cfg.Conns)
	col.report(mode, cfg, elapsed)
	io := ix.IO()
	fmt.Printf("  store I/O         %d reads, %d writes\n", io.Reads, io.Writes)
	return nil
}

// runLoadHTTP drives a running pvserve instance: cfg.Conns workers consume
// the arrival queue and each issues one HTTP query per arrival.
func runLoadHTTP(cfg loadConfig) error {
	domain, err := fetchDomain(cfg.URL)
	if err != nil {
		return fmt.Errorf("fetching /v1/stats from %s: %w", cfg.URL, err)
	}
	path := "/v1/query"
	if cfg.Step1 {
		path = "/v1/possiblenn"
	}
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: cfg.Conns},
		Timeout:   30 * time.Second,
	}

	col := &collector{}
	queue := make(chan arrival, 8192)
	deadline := time.Now().Add(cfg.Duration)
	go generateArrivals(queue, domain, cfg.QPS, deadline, cfg.Seed+99, &col.shed)

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range queue {
				body, _ := json.Marshal(map[string]any{"point": []float64(a.q)})
				resp, err := client.Post(cfg.URL+path, "application/json", bytes.NewReader(body))
				if err != nil {
					col.record(0, 1, true)
					continue
				}
				// Drain so the keep-alive connection is reusable.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				col.record(time.Since(a.at), 1, resp.StatusCode != http.StatusOK)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	col.report(fmt.Sprintf("HTTP %s%s, conns=%d", cfg.URL, path, cfg.Conns), cfg, elapsed)
	return nil
}

// fetchDomain reads the served dataset's domain rectangle from /v1/stats.
func fetchDomain(url string) (geom.Rect, error) {
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		return geom.Rect{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return geom.Rect{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var stats struct {
		Domain struct {
			Lo []float64 `json:"lo"`
			Hi []float64 `json:"hi"`
		} `json:"domain"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return geom.Rect{}, err
	}
	io.Copy(io.Discard, resp.Body)
	if len(stats.Domain.Lo) == 0 {
		return geom.Rect{}, fmt.Errorf("stats response has no domain")
	}
	return geom.NewRect(geom.Point(stats.Domain.Lo), geom.Point(stats.Domain.Hi)), nil
}
