// Command pvbench regenerates the paper's evaluation (§VII): every figure of
// Figs. 9 and 10 plus Table I and the parameter-sensitivity study, on
// synthetic and simulated real datasets. It also doubles as a load generator
// for the serving layer (the "load" experiment).
//
// Usage:
//
//	pvbench [flags] <experiment>...
//	pvbench -scale 0.05 fig9a fig9c
//	pvbench -scale 0.02 all
//	pvbench -qps 500 -load-duration 10s load             # in-process batch API
//	pvbench -url http://localhost:8080 -qps 200 load     # against pvserve
//
// Experiments: fig9a fig9b fig9c fig9d fig9e fig9f fig9g fig9h
//
//	fig10a fig10b fig10c fig10d fig10e fig10f fig10g fig10h fig10i
//	params table1 ablations all load
//
// Results print as aligned tables; the load experiment prints achieved
// throughput and p50/p95/p99 latency (open-loop arrivals, so latency
// includes queueing delay once the index saturates). "all" covers the paper
// experiments only — load runs when named explicitly.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pvoronoi/internal/bench"
	"pvoronoi/internal/stats"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.05, "fraction of the paper's dataset sizes (1.0 = paper scale)")
		queries   = flag.Int("queries", 50, "queries per data point")
		instances = flag.Int("instances", 100, "pdf samples per object (paper: 500)")
		seed      = flag.Int64("seed", 1, "generator seed")
		verbose   = flag.Bool("v", false, "progress logging")
		procs     = flag.Int("procs", 0, "GOMAXPROCS override (0 = runtime default)")

		// Load-generator flags (the "load" experiment).
		url     = flag.String("url", "", "load: pvserve base URL (empty = in-process batch API)")
		qps     = flag.Int("qps", 0, "load: target queries per second (0 = max throughput)")
		loadDur = flag.Duration("load-duration", 10*time.Second, "load: measurement window")
		conns   = flag.Int("conns", 16, "load: HTTP connections / batch workers")
		batch   = flag.Int("batch", 32, "load: max in-process batch size")
		step1   = flag.Bool("step1only", false, "load: PossibleNN only (skip Step 2)")
		loadN   = flag.Int("n", 20000, "load: object count for the in-process index")
		loadD   = flag.Int("d", 2, "load: dimensionality for the in-process index")

		// Read-path benchmark flags (the "readpath" experiment).
		rpJSON     = flag.String("json", "BENCH_readpath.json", "readpath: output JSON path (empty = stdout only)")
		rpBaseline = flag.String("baseline", "", "readpath: prior readpath JSON to embed as the before side")

		// Write-path benchmark flags (the "writepath" experiment).
		wpJSON  = flag.String("wp-json", "BENCH_writepath.json", "writepath: output JSON path (empty = stdout only)")
		wpN     = flag.Int("wp-n", 4000, "writepath: base index object count")
		wpOps   = flag.Int("wp-ops", 256, "writepath: measured insert ops per scenario")
		wpBatch = flag.Int("wp-batch", 32, "writepath: group-commit batch size")

		// Mixed read/write benchmark flags (the "mixed" experiment).
		mxJSON    = flag.String("mixed-json", "BENCH_mixed.json", "mixed: output JSON path (empty = stdout only)")
		mxDur     = flag.Duration("mixed-duration", 5*time.Second, "mixed: measurement window per writer count")
		mxWriters = flag.String("mixed-writers", "0,1,4", "mixed: comma-separated concurrent writer counts")
		mxBatch   = flag.Int("mixed-batch", 16, "mixed: writer group-commit batch size")

		// Recovery benchmark flags (the "recovery" experiment).
		rcJSON  = flag.String("rc-json", "BENCH_recovery.json", "recovery: output JSON path (empty = stdout only)")
		rcN     = flag.Int("rc-n", 4000, "recovery: base store object count")
		rcTails = flag.String("rc-tails", "0,512,2048", "recovery: comma-separated WAL tail lengths (updates)")
		rcBatch = flag.Int("rc-batch", 64, "recovery: group-commit batch size while growing the tail")

		// Memory-layout benchmark flags (the "memlayout" experiment).
		mlJSON    = flag.String("ml-json", "BENCH_memlayout.json", "memlayout: output JSON path (empty = stdout only)")
		mlRounds  = flag.Int("ml-rounds", 3, "memlayout: writer rounds per backend (insert+delete batch each)")
		mlQueries = flag.Int("ml-queries", 4000, "memlayout: queries per worker per backend")
		mlBatch   = flag.Int("ml-batch", 16, "memlayout: writer group-commit batch size")

		// Extension-query benchmark flags (the "extquery" experiment).
		eqJSON    = flag.String("eq-json", "BENCH_extquery.json", "extquery: output JSON path (empty = stdout only)")
		eqNs      = flag.String("eq-n", "1000,10000,100000", "extquery: comma-separated dataset sizes")
		eqQueries = flag.Int("eq-queries", 16, "extquery: measured queries per configuration")
		eqRNNMax  = flag.Int("eq-rnn-max", 10000, "extquery: largest n for the O(n²) reverse-NN scan baseline")
	)
	flag.Usage = usage
	flag.Parse()
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	p := bench.Params{
		Scale:     *scale,
		Queries:   *queries,
		Instances: *instances,
		Seed:      *seed,
	}
	if *verbose {
		p.Out = os.Stderr
	}

	experiments := map[string]func(bench.Params) []*stats.Table{
		"table1": func(bench.Params) []*stats.Table { return []*stats.Table{bench.ParamTable()} },
		"fig9a":  one(bench.Fig9a),
		"fig9b":  one(bench.Fig9b),
		"fig9c":  one(bench.Fig9c),
		"fig9d":  one(bench.Fig9d),
		"fig9e":  one(bench.Fig9e),
		"fig9f":  one(bench.Fig9f),
		"fig9g":  one(bench.Fig9g),
		"fig9h":  one(bench.Fig9h),
		"fig10a": one(bench.Fig10a),
		"fig10b": one(bench.Fig10b),
		"fig10c": one(bench.Fig10c),
		"fig10d": one(bench.Fig10d),
		"fig10e": one(bench.Fig10e),
		"fig10f": one(bench.Fig10f),
		"fig10g": one(bench.Fig10g),
		"fig10h": one(bench.Fig10h),
		"fig10i": one(bench.Fig10i),
		"params": bench.ParamSensitivity,
		"ablations": func(p bench.Params) []*stats.Table {
			return []*stats.Table{
				bench.AblationMemBudget(p),
				bench.AblationPrimaryIndex(p),
				bench.AblationParallelBuild(p),
			}
		},
	}
	order := []string{
		"table1",
		"fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f", "fig9g", "fig9h",
		"fig10a", "fig10b", "fig10c", "fig10d", "fig10e", "fig10f", "fig10g", "fig10h", "fig10i",
		"params", "ablations",
	}

	var names []string
	wantLoad := false
	wantReadpath := false
	wantWritepath := false
	wantExtquery := false
	wantMixed := false
	wantRecovery := false
	wantMemlayout := false
	allSeen := false
	for _, arg := range flag.Args() {
		switch {
		case arg == "load":
			wantLoad = true
		case arg == "readpath":
			wantReadpath = true
		case arg == "writepath":
			wantWritepath = true
		case arg == "extquery":
			wantExtquery = true
		case arg == "mixed":
			wantMixed = true
		case arg == "recovery":
			wantRecovery = true
		case arg == "memlayout":
			wantMemlayout = true
		case arg == "all":
			allSeen = true
		default:
			if _, ok := experiments[arg]; !ok {
				fmt.Fprintf(os.Stderr, "pvbench: unknown experiment %q\n", arg)
				usage()
				os.Exit(2)
			}
			names = append(names, arg)
		}
	}
	if allSeen {
		names = order
	}
	if wantLoad {
		err := runLoad(loadConfig{
			URL:       *url,
			QPS:       *qps,
			Duration:  *loadDur,
			Conns:     *conns,
			Batch:     *batch,
			Step1:     *step1,
			N:         *loadN,
			Dim:       *loadD,
			Instances: *instances,
			Seed:      *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pvbench: load: %v\n", err)
			os.Exit(1)
		}
	}
	if wantReadpath {
		err := runReadpath(readpathConfig{
			JSONPath:     *rpJSON,
			BaselinePath: *rpBaseline,
			Duration:     *loadDur,
			Conns:        *conns,
			N:            *loadN,
			Dim:          *loadD,
			Instances:    *instances,
			Seed:         *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pvbench: readpath: %v\n", err)
			os.Exit(1)
		}
	}
	if wantExtquery {
		ns, err := parseIntList(*eqNs)
		if err == nil {
			err = runExtquery(extqueryConfig{
				JSONPath: *eqJSON,
				Ns:       ns,
				Dim:      *loadD,
				Seed:     *seed,
				Queries:  *eqQueries,
				RNNMaxN:  *eqRNNMax,
			})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pvbench: extquery: %v\n", err)
			os.Exit(1)
		}
	}
	if wantMixed {
		writersList, err := parseIntList(*mxWriters)
		if err == nil {
			err = runMixed(mixedConfig{
				JSONPath:  *mxJSON,
				N:         *loadN,
				Dim:       *loadD,
				Instances: *instances,
				Seed:      *seed,
				Duration:  *mxDur,
				Conns:     *conns,
				Batch:     *mxBatch,
				Writers:   writersList,
			})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pvbench: mixed: %v\n", err)
			os.Exit(1)
		}
	}
	if wantRecovery {
		tails, err := parseIntList(*rcTails)
		if err == nil {
			err = runRecovery(recoveryConfig{
				JSONPath:  *rcJSON,
				N:         *rcN,
				Dim:       *loadD,
				Instances: *instances,
				Seed:      *seed,
				Tails:     tails,
				Batch:     *rcBatch,
			})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pvbench: recovery: %v\n", err)
			os.Exit(1)
		}
	}
	if wantMemlayout {
		err := runMemlayout(memlayoutConfig{
			JSONPath:  *mlJSON,
			N:         *loadN,
			Dim:       *loadD,
			Instances: *instances,
			Seed:      *seed,
			Rounds:    *mlRounds,
			Queries:   *mlQueries,
			Conns:     *conns,
			Batch:     *mlBatch,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pvbench: memlayout: %v\n", err)
			os.Exit(1)
		}
	}
	if wantWritepath {
		err := runWritepath(writepathConfig{
			JSONPath:  *wpJSON,
			N:         *wpN,
			Dim:       *loadD,
			Instances: *instances,
			Seed:      *seed,
			Ops:       *wpOps,
			Batch:     *wpBatch,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pvbench: writepath: %v\n", err)
			os.Exit(1)
		}
	}

	if len(names) > 0 {
		fmt.Printf("pvbench: scale=%.3g queries=%d instances=%d seed=%d\n\n",
			p.Scale, p.Queries, p.Instances, p.Seed)
	}
	for _, name := range names {
		start := time.Now()
		for _, tab := range experiments[name](p) {
			fmt.Println(tab.String())
		}
		if p.Out != nil {
			fmt.Fprintf(os.Stderr, "%s took %v\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
}

// one adapts a single-table experiment to the multi-table signature.
func one(f func(bench.Params) *stats.Table) func(bench.Params) []*stats.Table {
	return func(p bench.Params) []*stats.Table { return []*stats.Table{f(p)} }
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: pvbench [flags] <experiment>...

Regenerates the evaluation of "Voronoi-based Nearest Neighbor Search for
Multi-Dimensional Uncertain Databases" (ICDE 2013).

experiments:
  table1                        parameter table (Table I)
  fig9a..fig9h                  PNNQ query performance (Fig. 9)
  fig10a..fig10i                construction & update performance (Fig. 10)
  params                        parameter sensitivity study (§VII-C a)
  all                           everything above, in order
  load                          load generator: throughput + p50/p95/p99
  readpath                      read-path benchmark: QPS, p50/p99, allocs/op -> JSON
  writepath                     write-path benchmark: single vs batched, WAL on/off -> JSON
  extquery                      extension-query retrieval: scan vs R-tree vs adjacency graph -> JSON
  mixed                         query latency under 0/1/4 concurrent writers (MVCC) -> JSON
  recovery                      crash-recovery time vs WAL tail, clean + corrupt-checkpoint fallback -> JSON
  memlayout                     page-store layouts: sharded map vs slab arena, allocs/epoch + GC pause -> JSON

flags:
`)
	flag.PrintDefaults()
	fmt.Fprintf(os.Stderr, `
examples:
  pvbench fig9a                         # query time vs |S|, laptop scale
  pvbench -scale 0.2 -v all             # larger run with progress logs
  pvbench -scale 1 fig9a                # paper-scale (slow: 100k objects)
  pvbench -qps 500 load                 # paced load on the in-process batch API
  pvbench -url http://localhost:8080 -qps 200 -conns 32 load
`)
}
