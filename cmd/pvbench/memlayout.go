package main

// Memory-layout benchmark mode: runs the same mixed query + writer-churn
// workload over two page-store backends — the legacy sharded map (one heap
// allocation per page, GC scans every page pointer) and the extent/slab
// arena (pages carved from large slabs, freed slots recycled through an
// explicit free-list) — and reports the GC-side difference: allocations per
// published epoch, GC pause totals, cycle counts, and heap shape. Results
// land in BENCH_memlayout.json so the arena's GC win is tracked commit over
// commit.
//
// This mode deliberately builds through internal/pvindex rather than the
// public API: the store backend is an internal implementation choice
// (pagestore.New vs pagestore.NewMap), benchmarked here and nowhere else.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"pvoronoi/internal/dataset"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/pvindex"
	"pvoronoi/internal/uncertain"
)

// memlayoutConfig bundles the memlayout experiment parameters. The workload
// is fixed-work, not fixed-time: both backends execute exactly the same
// writer rounds and query count, so the measured allocation and GC deltas
// compare like with like (a fixed-time window would credit the faster
// backend with more queries and hence more allocations).
type memlayoutConfig struct {
	JSONPath  string // output file ("" = stdout only)
	N, Dim    int    // base index size
	Instances int    // pdf samples per object
	Seed      int64
	Rounds    int // writer rounds (one round = insert batch + delete batch)
	Queries   int // queries per worker
	Conns     int // query workers
	Batch     int // writer batch size
}

// memlayoutRow is one measured backend.
type memlayoutRow struct {
	Layout      string  `json:"layout"` // "map" or "arena"
	Epochs      uint64  `json:"epochs"` // versions published in the window
	QueriesPerS float64 `json:"queries_per_s"`
	P99us       int64   `json:"p99_us"`
	// AllocsPerEpoch is the headline: heap allocations (runtime Mallocs
	// delta, whole process) divided by versions published.
	AllocsPerEpoch float64 `json:"allocs_per_epoch"`
	Mallocs        uint64  `json:"mallocs"`
	GCPauseTotalMs float64 `json:"gc_pause_total_ms"`
	NumGC          uint32  `json:"num_gc"`
	HeapAllocMB    float64 `json:"heap_alloc_mb"`
	HeapObjects    uint64  `json:"heap_objects"`
	LivePages      int     `json:"live_pages"`
	ArenaMB        float64 `json:"arena_mb"` // slab footprint (0 for map)
}

// memlayoutReport is the serialized BENCH_memlayout.json document.
type memlayoutReport struct {
	GeneratedBy string              `json:"generated_by"`
	Config      memlayoutConfigJSON `json:"config"`
	Rows        []memlayoutRow      `json:"rows"`
	// Ratios are arena/map; below 1.0 means the arena reduced the metric.
	AllocsPerEpochRatio float64 `json:"allocs_per_epoch_ratio"`
	GCPauseRatio        float64 `json:"gc_pause_ratio"`
}

type memlayoutConfigJSON struct {
	Objects    int    `json:"objects"`
	Dim        int    `json:"dim"`
	Instances  int    `json:"instances"`
	Seed       int64  `json:"seed"`
	Rounds     int    `json:"rounds"`
	Queries    int    `json:"queries_per_conn"`
	Conns      int    `json:"conns"`
	Batch      int    `json:"batch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	GOGC       int    `json:"gogc"`
}

// memlayoutObjs generates one churn block of fresh objects inside domain.
func memlayoutObjs(cfg memlayoutConfig, idBase uint32, rng *rand.Rand, domain geom.Rect) []pvindex.Update {
	ups := make([]pvindex.Update, cfg.Batch)
	for i := range ups {
		lo := make(geom.Point, cfg.Dim)
		hi := make(geom.Point, cfg.Dim)
		for j := 0; j < cfg.Dim; j++ {
			side := 1 + rng.Float64()*40
			span := domain.Hi[j] - domain.Lo[j]
			lo[j] = domain.Lo[j] + rng.Float64()*(span-side)
			hi[j] = lo[j] + side
		}
		o := &uncertain.Object{ID: uncertain.ID(idBase + uint32(i)), Region: geom.NewRect(lo, hi)}
		if cfg.Instances > 0 {
			o.Instances = uncertain.SampleInstances(o.Region, uncertain.PDFUniform, cfg.Instances,
				rand.New(rand.NewSource(cfg.Seed+int64(idBase)+int64(i))))
		}
		ups[i] = pvindex.Update{Op: pvindex.OpInsert, Object: o}
	}
	return ups
}

// runMemlayoutPhase builds an index over the given store and drives the
// mixed workload for the window, reporting process-wide GC metrics.
func runMemlayoutPhase(cfg memlayoutConfig, layout string, store *pagestore.Store) (memlayoutRow, error) {
	row := memlayoutRow{Layout: layout}
	db := dataset.Synthetic(dataset.SyntheticParams{
		N: cfg.N, Dim: cfg.Dim, MaxSide: 60, Instances: cfg.Instances, Seed: cfg.Seed,
	})
	ixCfg := pvindex.DefaultConfig()
	ixCfg.Store = store
	ix, err := pvindex.Build(db, ixCfg)
	if err != nil {
		return row, err
	}
	domain := ix.DB().Domain
	epoch0 := ix.Epoch()

	var wg sync.WaitGroup
	errCh := make(chan error, 1+cfg.Conns)

	// Settle the heap, then bracket the fixed workload with MemStats
	// readings. The deltas cover the whole process; both backends execute
	// the identical round and query counts, so the difference is the
	// page-store layout.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	// One writer: a fixed count of insert-batch / delete-batch rounds, every
	// commit publishing a fresh MVCC version (two epochs per round).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(cfg.Seed + 1000))
		idBase := uint32(2_000_000)
		for r := 0; r < cfg.Rounds; r++ {
			ups := memlayoutObjs(cfg, idBase, rng, domain)
			if _, err := ix.ApplyBatch(ups); err != nil {
				errCh <- fmt.Errorf("insert batch: %w", err)
				return
			}
			dels := make([]pvindex.Update, len(ups))
			for i, u := range ups {
				dels[i] = pvindex.Update{Op: pvindex.OpDelete, ID: u.Object.ID}
			}
			if _, err := ix.ApplyBatch(dels); err != nil {
				errCh <- fmt.Errorf("delete batch: %w", err)
				return
			}
		}
	}()

	// Readers: a fixed count of snapshots (Step 1 + pdf fetch) per worker.
	lats := make([][]float64, cfg.Conns)
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(77+c)))
			for i := 0; i < cfg.Queries; i++ {
				q := make(geom.Point, cfg.Dim)
				for j := 0; j < cfg.Dim; j++ {
					q[j] = domain.Lo[j] + rng.Float64()*(domain.Hi[j]-domain.Lo[j])
				}
				t0 := time.Now()
				if _, err := ix.Snapshot(q); err != nil {
					errCh <- fmt.Errorf("query worker %d: %w", c, err)
					return
				}
				lats[c] = append(lats[c], float64(time.Since(t0).Microseconds()))
			}
		}(c)
	}

	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	select {
	case err := <-errCh:
		return row, err
	default:
	}

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	row.Epochs = ix.Epoch() - epoch0
	row.QueriesPerS = float64(len(all)) / elapsed.Seconds()
	if len(all) > 0 {
		row.P99us = int64(all[int(0.99*float64(len(all)-1))])
	}
	row.Mallocs = after.Mallocs - before.Mallocs
	if row.Epochs > 0 {
		row.AllocsPerEpoch = float64(row.Mallocs) / float64(row.Epochs)
	}
	row.GCPauseTotalMs = float64(after.PauseTotalNs-before.PauseTotalNs) / 1e6
	row.NumGC = after.NumGC - before.NumGC
	row.HeapAllocMB = float64(after.HeapAlloc) / (1 << 20)
	row.HeapObjects = after.HeapObjects
	row.LivePages = store.Live()
	row.ArenaMB = float64(store.ArenaBytes()) / (1 << 20)
	return row, nil
}

// runMemlayout sweeps the two store backends and writes the comparison.
func runMemlayout(cfg memlayoutConfig) error {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 4000
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 8
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}

	report := memlayoutReport{
		GeneratedBy: "pvbench memlayout",
		Config: memlayoutConfigJSON{
			Objects: cfg.N, Dim: cfg.Dim, Instances: cfg.Instances, Seed: cfg.Seed,
			Rounds: cfg.Rounds, Queries: cfg.Queries, Conns: cfg.Conns, Batch: cfg.Batch,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  goVersion(),
			GOGC:       gogcPercent(),
		},
	}

	backends := []struct {
		layout string
		store  *pagestore.Store
	}{
		{"map", pagestore.NewMap(pagestore.DefaultPageSize)},
		{"arena", pagestore.New(pagestore.DefaultPageSize)},
	}
	for _, b := range backends {
		fmt.Printf("memlayout: %s store — building %d objects (d=%d, %d instances), %d rounds + %dx%d queries...\n",
			b.layout, cfg.N, cfg.Dim, cfg.Instances, cfg.Rounds, cfg.Conns, cfg.Queries)
		row, err := runMemlayoutPhase(cfg, b.layout, b.store)
		if err != nil {
			return fmt.Errorf("%s: %w", b.layout, err)
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("memlayout: %-5s  %7.0f allocs/epoch  gc pause %8.2fms (%d cycles)  %9.1f q/s  p99 %6dus  heap %.1fMB/%d objs\n",
			row.Layout, row.AllocsPerEpoch, row.GCPauseTotalMs, row.NumGC,
			row.QueriesPerS, row.P99us, row.HeapAllocMB, row.HeapObjects)
	}

	var mapRow, arenaRow *memlayoutRow
	for i := range report.Rows {
		switch report.Rows[i].Layout {
		case "map":
			mapRow = &report.Rows[i]
		case "arena":
			arenaRow = &report.Rows[i]
		}
	}
	if mapRow != nil && arenaRow != nil {
		if mapRow.AllocsPerEpoch > 0 {
			report.AllocsPerEpochRatio = arenaRow.AllocsPerEpoch / mapRow.AllocsPerEpoch
		}
		if mapRow.GCPauseTotalMs > 0 {
			report.GCPauseRatio = arenaRow.GCPauseTotalMs / mapRow.GCPauseTotalMs
		}
		fmt.Printf("memlayout: arena vs map — allocs/epoch %.2fx, gc pause %.2fx\n",
			report.AllocsPerEpochRatio, report.GCPauseRatio)
	}

	if cfg.JSONPath != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.JSONPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.JSONPath)
	}
	return nil
}
