package main

// Mixed read/write benchmark mode: measures query latency while concurrent
// writer goroutines hammer the index with group-committed insert/delete
// churn — the workload the MVCC read path exists for. Results land in
// BENCH_mixed.json so the repo tracks its tail latency under write load
// commit over commit.
//
// For each writer count the same closed-loop query workload runs for the
// configured duration; writers continuously apply insert batches and delete
// them again, publishing a new index version per commit. The headline
// number is the ratio of query p99 with writers to query p99 without: under
// the old RWMutex read path every ApplyBatch stalled all queries for the
// full apply (tens of milliseconds), while snapshot pinning keeps the two
// within a small factor.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pvoronoi"
	"pvoronoi/internal/dataset"
)

// mixedConfig bundles the mixed experiment parameters.
type mixedConfig struct {
	JSONPath  string // output file ("" = stdout only)
	N, Dim    int    // base index size
	Instances int    // pdf samples per object
	Seed      int64
	Duration  time.Duration // measurement window per writer count
	Conns     int           // closed-loop query workers
	Batch     int           // writer group-commit batch size
	Writers   []int         // writer counts to sweep
}

// mixedRow is one measured (writer count) configuration.
type mixedRow struct {
	Writers      int     `json:"writers"`
	QueriesPerS  float64 `json:"queries_per_s"`
	P50us        int64   `json:"p50_us"`
	P95us        int64   `json:"p95_us"`
	P99us        int64   `json:"p99_us"`
	WriteBatches int64   `json:"write_batches"`
	WriteOps     int64   `json:"write_ops"`
	// EpochDelta is how many index versions the phase published.
	EpochDelta uint64 `json:"epoch_delta"`
}

// mixedReport is the serialized BENCH_mixed.json document.
type mixedReport struct {
	GeneratedBy string          `json:"generated_by"`
	Config      mixedConfigJSON `json:"config"`
	Rows        []mixedRow      `json:"rows"`
	// P99RatioVsZeroWriters is the headline: query p99 at the largest
	// writer count divided by query p99 with no writers. The seed's
	// RWMutex read path had no bound here (queries stalled for entire
	// batch applies); the MVCC read path keeps it small.
	P99RatioVsZeroWriters float64 `json:"p99_ratio_vs_zero_writers"`
}

type mixedConfigJSON struct {
	Objects    int     `json:"objects"`
	Dim        int     `json:"dim"`
	Instances  int     `json:"instances"`
	Seed       int64   `json:"seed"`
	DurationS  float64 `json:"duration_s"`
	Conns      int     `json:"conns"`
	Batch      int     `json:"batch"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
	GOGC       int     `json:"gogc"`
}

// mixedWriterObjs generates one writer's churn set: fresh IDs in a range
// disjoint from the base index and every other writer.
func mixedWriterObjs(cfg mixedConfig, idBase uint32, rng *rand.Rand, domain pvoronoi.Rect) []*pvoronoi.Object {
	objs := make([]*pvoronoi.Object, cfg.Batch)
	for i := range objs {
		lo := make(pvoronoi.Point, cfg.Dim)
		hi := make(pvoronoi.Point, cfg.Dim)
		for j := 0; j < cfg.Dim; j++ {
			side := 1 + rng.Float64()*40
			span := domain.Hi[j] - domain.Lo[j]
			lo[j] = domain.Lo[j] + rng.Float64()*(span-side)
			hi[j] = lo[j] + side
		}
		o := &pvoronoi.Object{ID: pvoronoi.ID(idBase + uint32(i)), Region: pvoronoi.NewRect(lo, hi)}
		if cfg.Instances > 0 {
			o.Instances = pvoronoi.SampleUniform(o.Region, cfg.Instances, cfg.Seed+int64(idBase)+int64(i))
		}
		objs[i] = o
	}
	return objs
}

// runMixedPhase measures one writer-count configuration.
func runMixedPhase(ix *pvoronoi.Index, cfg mixedConfig, writers int) (mixedRow, error) {
	row := mixedRow{Writers: writers}
	domain := ix.DB().Domain
	epoch0 := ix.Epoch()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writeBatches, writeOps atomic.Int64
	errCh := make(chan error, writers+cfg.Conns)

	// Writers: continuous insert-batch / delete-batch churn, each in a
	// disjoint ID range.
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(1000+wr)))
			idBase := uint32(2_000_000 + wr*1_000_000)
			for {
				select {
				case <-stop:
					return
				default:
				}
				objs := mixedWriterObjs(cfg, idBase, rng, domain)
				if _, err := ix.InsertBatch(objs); err != nil {
					errCh <- fmt.Errorf("writer %d insert: %w", wr, err)
					return
				}
				ids := make([]pvoronoi.ID, len(objs))
				for i, o := range objs {
					ids[i] = o.ID
				}
				if _, err := ix.DeleteBatch(ids); err != nil {
					errCh <- fmt.Errorf("writer %d delete: %w", wr, err)
					return
				}
				writeBatches.Add(2)
				writeOps.Add(int64(2 * len(objs)))
			}
		}(wr)
	}

	// Readers: closed-loop full PNNQs, per-worker latency logs.
	lats := make([][]float64, cfg.Conns)
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(77+c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := make(pvoronoi.Point, cfg.Dim)
				for j := 0; j < cfg.Dim; j++ {
					q[j] = domain.Lo[j] + rng.Float64()*(domain.Hi[j]-domain.Lo[j])
				}
				t0 := time.Now()
				if _, err := ix.Query(q); err != nil {
					errCh <- fmt.Errorf("query worker %d: %w", c, err)
					return
				}
				lats[c] = append(lats[c], float64(time.Since(t0).Microseconds()))
			}
		}(c)
	}

	start := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return row, err
	default:
	}

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	pct := func(p float64) int64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p / 100 * float64(len(all)-1))
		return int64(all[i])
	}
	row.QueriesPerS = float64(len(all)) / elapsed.Seconds()
	row.P50us, row.P95us, row.P99us = pct(50), pct(95), pct(99)
	row.WriteBatches = writeBatches.Load()
	row.WriteOps = writeOps.Load()
	row.EpochDelta = ix.Epoch() - epoch0
	return row, nil
}

// runMixed builds the base index and sweeps the writer counts.
func runMixed(cfg mixedConfig) error {
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 8
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if len(cfg.Writers) == 0 {
		cfg.Writers = []int{0, 1, 4}
	}

	fmt.Printf("mixed: building PV-index over %d objects (d=%d, %d instances)...\n",
		cfg.N, cfg.Dim, cfg.Instances)
	db := dataset.Synthetic(dataset.SyntheticParams{
		N: cfg.N, Dim: cfg.Dim, MaxSide: 60, Instances: cfg.Instances, Seed: cfg.Seed,
	})
	ix, err := pvoronoi.BuildParallel(db, pvoronoi.DefaultOptions(), 0)
	if err != nil {
		return err
	}

	report := mixedReport{
		GeneratedBy: "pvbench mixed",
		Config: mixedConfigJSON{
			Objects: cfg.N, Dim: cfg.Dim, Instances: cfg.Instances, Seed: cfg.Seed,
			DurationS: cfg.Duration.Seconds(), Conns: cfg.Conns, Batch: cfg.Batch,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  goVersion(),
			GOGC:       gogcPercent(),
		},
	}

	for _, w := range cfg.Writers {
		row, err := runMixedPhase(ix, cfg, w)
		if err != nil {
			return fmt.Errorf("writers=%d: %w", w, err)
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("mixed: writers=%d  %9.1f q/s  p50 %6dus  p95 %6dus  p99 %6dus  %d write batches (%d ops, %d epochs)\n",
			row.Writers, row.QueriesPerS, row.P50us, row.P95us, row.P99us,
			row.WriteBatches, row.WriteOps, row.EpochDelta)
	}

	var zero, most *mixedRow
	for i := range report.Rows {
		r := &report.Rows[i]
		if r.Writers == 0 {
			zero = r
		}
		if most == nil || r.Writers > most.Writers {
			most = r
		}
	}
	if zero != nil && most != nil && zero.P99us > 0 && most.Writers > 0 {
		report.P99RatioVsZeroWriters = float64(most.P99us) / float64(zero.P99us)
		fmt.Printf("mixed: p99 under %d writers is %.2fx the zero-writer p99\n",
			most.Writers, report.P99RatioVsZeroWriters)
	}

	if cfg.JSONPath != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.JSONPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.JSONPath)
	}
	return nil
}
