package main

// Read-path benchmark mode: measures the serving read path of a PV-index —
// sustained closed-loop throughput with latency percentiles, plus per-call
// time and allocation profiles for the full PNNQ and the Step-1-only path —
// and writes the results as JSON so the repo can track its performance
// trajectory commit over commit (BENCH_readpath.json).
//
// Run once at a baseline commit to produce the "before" file, then at the
// candidate commit with -baseline pointing at it: the output then carries
// both sides of the comparison.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"pvoronoi"
	"pvoronoi/internal/dataset"
	"pvoronoi/internal/stats"
)

// readpathConfig bundles the readpath experiment parameters.
type readpathConfig struct {
	JSONPath     string // output file ("" = stdout only)
	BaselinePath string // prior readpath JSON to embed as "before"
	Duration     time.Duration
	Conns        int // closed-loop worker count
	N, Dim       int
	Instances    int
	Seed         int64
}

// readpathMeasurement is one side (before or after) of the comparison.
type readpathMeasurement struct {
	QPS   float64 `json:"qps"`
	P50us int64   `json:"p50_us"`
	P99us int64   `json:"p99_us"`

	QueryNsOp        int64 `json:"query_ns_op"`
	QueryAllocsOp    int64 `json:"query_allocs_op"`
	QueryBytesOp     int64 `json:"query_bytes_op"`
	PossibleNNNsOp   int64 `json:"possiblenn_ns_op"`
	PossibleNNAllocs int64 `json:"possiblenn_allocs_op"`
	PossibleNNBytes  int64 `json:"possiblenn_bytes_op"`

	LeafIOPerQuery float64 `json:"leaf_io_per_query"`
	StoreReads     int64   `json:"store_reads"`
	Errors         int64   `json:"errors"`
}

// readpathReport is the serialized BENCH_readpath.json document.
type readpathReport struct {
	GeneratedBy string               `json:"generated_by"`
	Config      readpathConfigJSON   `json:"config"`
	Before      *readpathMeasurement `json:"before,omitempty"`
	After       readpathMeasurement  `json:"after"`
}

type readpathConfigJSON struct {
	Objects    int     `json:"objects"`
	Dim        int     `json:"dim"`
	Instances  int     `json:"instances"`
	Seed       int64   `json:"seed"`
	DurationS  float64 `json:"duration_s"`
	Conns      int     `json:"conns"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
	GOGC       int     `json:"gogc"`
}

// runReadpath builds a synthetic index and measures its read path.
func runReadpath(cfg readpathConfig) error {
	if cfg.Conns <= 0 {
		cfg.Conns = runtime.GOMAXPROCS(0)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}

	fmt.Printf("readpath: building PV-index over %d objects (d=%d, %d instances)...\n",
		cfg.N, cfg.Dim, cfg.Instances)
	db := dataset.Synthetic(dataset.SyntheticParams{
		N: cfg.N, Dim: cfg.Dim, MaxSide: 60, Instances: cfg.Instances, Seed: cfg.Seed,
	})
	ix, err := pvoronoi.BuildParallel(db, pvoronoi.DefaultOptions(), 0)
	if err != nil {
		return err
	}

	randPoint := func(rng *rand.Rand) pvoronoi.Point {
		p := make(pvoronoi.Point, cfg.Dim)
		for j := range p {
			p[j] = db.Domain.Lo[j] + rng.Float64()*(db.Domain.Hi[j]-db.Domain.Lo[j])
		}
		return p
	}

	var m readpathMeasurement

	// Micro profiles: per-call latency and allocations through the public API.
	qb := testing.Benchmark(func(b *testing.B) {
		rng := rand.New(rand.NewSource(cfg.Seed + 7))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ix.Query(randPoint(rng)); err != nil {
				b.Fatal(err)
			}
		}
	})
	m.QueryNsOp = qb.NsPerOp()
	m.QueryAllocsOp = qb.AllocsPerOp()
	m.QueryBytesOp = qb.AllocedBytesPerOp()

	pb := testing.Benchmark(func(b *testing.B) {
		rng := rand.New(rand.NewSource(cfg.Seed + 8))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ix.PossibleNN(randPoint(rng)); err != nil {
				b.Fatal(err)
			}
		}
	})
	m.PossibleNNNsOp = pb.NsPerOp()
	m.PossibleNNAllocs = pb.AllocsPerOp()
	m.PossibleNNBytes = pb.AllocedBytesPerOp()

	// Sustained closed-loop throughput: cfg.Conns workers issuing full PNNQs
	// back to back for the measurement window.
	ix.ResetIO()
	var (
		mu        sync.Mutex
		latencies stats.Sample
		completed int64
		leafIO    int64
		failures  int64
	)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var local []float64
			var n, io, failed int64
			for time.Now().Before(deadline) {
				q := randPoint(rng)
				t0 := time.Now()
				_, cost, err := ix.QueryWithCost(q)
				if err != nil {
					failed++
					continue
				}
				local = append(local, float64(time.Since(t0).Microseconds()))
				n++
				io += int64(cost.LeafIO)
			}
			mu.Lock()
			for _, v := range local {
				latencies.Add(v)
			}
			completed += n
			leafIO += io
			failures += failed
			mu.Unlock()
		}(cfg.Seed + 100 + int64(w))
	}
	wg.Wait()
	elapsed := time.Since(start)

	m.QPS = float64(completed) / elapsed.Seconds()
	m.P50us = int64(latencies.Percentile(50))
	m.P99us = int64(latencies.Percentile(99))
	if completed > 0 {
		m.LeafIOPerQuery = float64(leafIO) / float64(completed)
	}
	m.StoreReads = ix.IO().Reads
	m.Errors = failures
	if failures > 0 {
		fmt.Printf("readpath: WARNING: %d queries failed during the throughput window\n", failures)
	}

	report := readpathReport{
		GeneratedBy: "pvbench readpath",
		Config: readpathConfigJSON{
			Objects: cfg.N, Dim: cfg.Dim, Instances: cfg.Instances, Seed: cfg.Seed,
			DurationS: cfg.Duration.Seconds(), Conns: cfg.Conns,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  goVersion(),
			GOGC:       gogcPercent(),
		},
		After: m,
	}
	if cfg.BaselinePath != "" {
		prior, err := loadReadpathBaseline(cfg.BaselinePath)
		if err != nil {
			return fmt.Errorf("baseline %s: %w", cfg.BaselinePath, err)
		}
		report.Before = prior
	}

	printReadpath(report)

	if cfg.JSONPath != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.JSONPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.JSONPath)
	}
	return nil
}

// loadReadpathBaseline reads a prior readpath report and returns its "after"
// measurement (the baseline commit's state of the read path).
func loadReadpathBaseline(path string) (*readpathMeasurement, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prior readpathReport
	if err := json.Unmarshal(buf, &prior); err != nil {
		return nil, err
	}
	return &prior.After, nil
}

// printReadpath renders the report, with before/after deltas when available.
func printReadpath(r readpathReport) {
	fmt.Printf("\nread-path report (n=%d d=%d conns=%d window=%.0fs)\n",
		r.Config.Objects, r.Config.Dim, r.Config.Conns, r.Config.DurationS)
	row := func(name string, before, after float64, unit string, lowerBetter bool) {
		if r.Before == nil {
			fmt.Printf("  %-22s %12.1f %s\n", name, after, unit)
			return
		}
		delta := ""
		if before > 0 {
			ratio := after / before
			if lowerBetter {
				delta = fmt.Sprintf("  (%.2fx of baseline)", ratio)
			} else {
				delta = fmt.Sprintf("  (%.2fx baseline)", ratio)
			}
		}
		fmt.Printf("  %-22s %12.1f -> %12.1f %s%s\n", name, before, after, unit, delta)
	}
	b := r.Before
	get := func(f func(*readpathMeasurement) float64) float64 {
		if b == nil {
			return 0
		}
		return f(b)
	}
	a := &r.After
	row("throughput", get(func(m *readpathMeasurement) float64 { return m.QPS }), a.QPS, "q/s", false)
	row("latency p50", get(func(m *readpathMeasurement) float64 { return float64(m.P50us) }), float64(a.P50us), "us", true)
	row("latency p99", get(func(m *readpathMeasurement) float64 { return float64(m.P99us) }), float64(a.P99us), "us", true)
	row("query ns/op", get(func(m *readpathMeasurement) float64 { return float64(m.QueryNsOp) }), float64(a.QueryNsOp), "ns", true)
	row("query allocs/op", get(func(m *readpathMeasurement) float64 { return float64(m.QueryAllocsOp) }), float64(a.QueryAllocsOp), "", true)
	row("possiblenn ns/op", get(func(m *readpathMeasurement) float64 { return float64(m.PossibleNNNsOp) }), float64(a.PossibleNNNsOp), "ns", true)
	row("possiblenn allocs/op", get(func(m *readpathMeasurement) float64 { return float64(m.PossibleNNAllocs) }), float64(a.PossibleNNAllocs), "", true)
	row("leaf IO / query", get(func(m *readpathMeasurement) float64 { return m.LeafIOPerQuery }), a.LeafIOPerQuery, "pages", true)
	if a.Errors > 0 || (b != nil && b.Errors > 0) {
		row("errors", get(func(m *readpathMeasurement) float64 { return float64(m.Errors) }), float64(a.Errors), "", true)
	}
}
