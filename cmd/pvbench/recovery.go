package main

// Recovery benchmark mode: measures how long OpenDurable takes to restore a
// store as a function of the WAL tail it must replay, for both the clean
// path (newest checkpoint loads) and the fallback path (newest checkpoint
// corrupt, recovery falls back to the previous one and replays a longer
// tail). Results land in BENCH_recovery.json so the repo can track recovery
// latency — the metric behind the checkpoint cadence / replay length
// trade-off — commit over commit.
//
// Each scenario builds a durable store, checkpoints, applies the configured
// number of updates, and then abandons the handle without closing it: the
// on-disk state is exactly what a crash leaves behind (the WAL is fsynced
// per commit), so the timed reopen measures real crash recovery.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"pvoronoi"
	"pvoronoi/internal/dataset"
)

// recoveryConfig bundles the recovery experiment parameters.
type recoveryConfig struct {
	JSONPath  string // output file ("" = stdout only)
	N, Dim    int    // base store size
	Instances int    // pdf samples per object
	Seed      int64
	Tails     []int // WAL tail lengths (updates) to measure
	Batch     int   // group-commit batch size while growing the tail
}

// recoveryRow is one measured tail length.
type recoveryRow struct {
	TailUpdates      int     `json:"tail_updates"`
	CleanMs          float64 `json:"clean_ms"`
	CleanReplayed    int     `json:"clean_replayed"`
	FallbackMs       float64 `json:"fallback_ms"`
	FallbackReplayed int     `json:"fallback_replayed"`
	FallbackCorrupt  int     `json:"fallback_corrupt_checkpoints"`
}

// recoveryReport is the serialized BENCH_recovery.json document.
type recoveryReport struct {
	GeneratedBy string             `json:"generated_by"`
	Config      recoveryConfigJSON `json:"config"`
	Rows        []recoveryRow      `json:"rows"`
}

type recoveryConfigJSON struct {
	Objects    int    `json:"objects"`
	Dim        int    `json:"dim"`
	Instances  int    `json:"instances"`
	Seed       int64  `json:"seed"`
	Batch      int    `json:"batch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	GOGC       int    `json:"gogc"`
}

// corruptNewestOnDisk flips one payload byte of the newest checkpoint's
// index file (base names embed the WAL sequence zero-padded, so the lexical
// maximum is the newest).
func corruptNewestOnDisk(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.pvidx"))
	if err != nil {
		return err
	}
	if len(matches) < 2 {
		return fmt.Errorf("need >=2 checkpoints for fallback, found %d", len(matches))
	}
	sort.Strings(matches)
	path := matches[len(matches)-1]
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	buf[len(buf)/2] ^= 0x20
	return os.WriteFile(path, buf, 0o644)
}

// runRecovery measures every configured tail length.
func runRecovery(cfg recoveryConfig) error {
	if len(cfg.Tails) == 0 {
		cfg.Tails = []int{0, 512, 2048}
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	opts := pvoronoi.DefaultOptions()
	report := recoveryReport{
		GeneratedBy: "pvbench recovery",
		Config: recoveryConfigJSON{
			Objects: cfg.N, Dim: cfg.Dim, Instances: cfg.Instances, Seed: cfg.Seed,
			Batch: cfg.Batch, GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion: goVersion(), GOGC: gogcPercent(),
		},
	}

	for _, tail := range cfg.Tails {
		dir, err := os.MkdirTemp("", "pvbench-recovery-")
		if err != nil {
			return err
		}
		fmt.Printf("recovery: seeding %d objects + %d-update WAL tail in %s...\n", cfg.N, tail, dir)
		db := dataset.Synthetic(dataset.SyntheticParams{
			N: cfg.N, Dim: cfg.Dim, MaxSide: 60, Instances: cfg.Instances, Seed: cfg.Seed,
		})
		d, err := pvoronoi.OpenDurable(dir, db, opts)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		// Grow the WAL tail beyond the open-time checkpoint, then abandon the
		// handle: every commit is fsynced, so walking away leaves exactly a
		// crash's on-disk state.
		id := uint32(2_000_000)
		rng := rand.New(rand.NewSource(cfg.Seed + 91))
		for done := 0; done < tail; {
			n := cfg.Batch
			if tail-done < n {
				n = tail - done
			}
			objs := wpObjects(writepathConfig{
				N: cfg.N, Dim: cfg.Dim, Instances: cfg.Instances, Seed: cfg.Seed, Ops: n,
			}, id, rng, db.Domain, false)
			id += uint32(n)
			if _, err := d.InsertBatch(objs); err != nil {
				os.RemoveAll(dir)
				return err
			}
			done += n
		}

		t0 := time.Now()
		d2, err := pvoronoi.OpenDurable(dir, nil, opts)
		if err != nil {
			os.RemoveAll(dir)
			return fmt.Errorf("clean recovery (tail %d): %w", tail, err)
		}
		row := recoveryRow{
			TailUpdates:   tail,
			CleanMs:       float64(time.Since(t0).Microseconds()) / 1000,
			CleanReplayed: d2.Recovery().Replayed,
		}
		// The reopen checkpointed the replayed state, so the directory now
		// retains two checkpoints: corrupt the newest and time the fallback,
		// which replays the same tail from the older one.
		if err := d2.Close(); err != nil {
			os.RemoveAll(dir)
			return err
		}
		if tail > 0 {
			if err := corruptNewestOnDisk(dir); err != nil {
				os.RemoveAll(dir)
				return err
			}
			t0 = time.Now()
			d3, err := pvoronoi.OpenDurable(dir, nil, opts)
			if err != nil {
				os.RemoveAll(dir)
				return fmt.Errorf("fallback recovery (tail %d): %w", tail, err)
			}
			row.FallbackMs = float64(time.Since(t0).Microseconds()) / 1000
			row.FallbackReplayed = d3.Recovery().Replayed
			row.FallbackCorrupt = len(d3.Recovery().CorruptCheckpoints)
			if err := d3.Close(); err != nil {
				os.RemoveAll(dir)
				return err
			}
		}
		os.RemoveAll(dir)
		report.Rows = append(report.Rows, row)
		fmt.Printf("recovery: tail=%-6d clean %8.1fms (%d replayed)  fallback %8.1fms (%d replayed, %d corrupt)\n",
			tail, row.CleanMs, row.CleanReplayed, row.FallbackMs, row.FallbackReplayed, row.FallbackCorrupt)
	}

	if cfg.JSONPath != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.JSONPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.JSONPath)
	}
	return nil
}
