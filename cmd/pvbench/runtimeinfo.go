package main

import (
	"runtime"
	"runtime/metrics"
)

// gogcPercent reads the effective GOGC value from runtime/metrics. Every
// benchmark records it alongside go_version in its config block: GC pacing
// dominates tail latency in these workloads, so two runs are only comparable
// when both knobs match.
func gogcPercent() int {
	sample := []metrics.Sample{{Name: "/gc/gogc:percent"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindUint64 {
		return int(sample[0].Value.Uint64())
	}
	return -1
}

// goVersion is runtime.Version(), wrapped so every config block spells the
// field the same way.
func goVersion() string {
	return runtime.Version()
}
