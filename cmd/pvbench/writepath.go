package main

// Write-path benchmark mode: measures the update path of a PV-index —
// per-op inserts vs. group-committed batches, with and without the
// write-ahead log — and writes the results as JSON so the repo can track
// its write throughput commit over commit (BENCH_writepath.json).
//
// Two workloads, each as single-op and batched commits, with WAL off/on:
//
//	uniform     inserts spread over the whole domain. Batching amortizes
//	            the lock, the fsync, and (on multicore) fans the SE work
//	            out across cores.
//	clustered   inserts landing in one hot region — the bulk-ingest
//	            pattern. Here group commit also deduplicates the affected-
//	            neighbor recomputation: a neighbor touched by many inserts
//	            of the batch is recomputed once, not once per insert.
//
// Between the measured insert phases each scenario deletes its objects
// again (unmeasured), so every phase starts from the same base index.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"pvoronoi"
	"pvoronoi/internal/dataset"
)

// writepathConfig bundles the writepath experiment parameters.
type writepathConfig struct {
	JSONPath  string // output file ("" = stdout only)
	N, Dim    int    // base index size
	Instances int    // pdf samples per object
	Seed      int64
	Ops       int // measured insert ops per scenario
	Batch     int // group-commit batch size
}

// writepathScenario is one measured configuration.
type writepathScenario struct {
	Workload    string  `json:"workload"` // uniform | clustered
	WAL         bool    `json:"wal"`
	BatchSize   int     `json:"batch_size"`
	UpdatesPerS float64 `json:"updates_per_s"`
	P50us       int64   `json:"p50_us"` // per-commit latency
	P99us       int64   `json:"p99_us"`
	FsyncsPerOp float64 `json:"fsyncs_per_op"`
}

// writepathSpeedup is the throughput ratio batched/single for one
// (workload, wal) pair — the headline numbers.
type writepathSpeedup struct {
	Workload string  `json:"workload"`
	WAL      bool    `json:"wal"`
	Speedup  float64 `json:"speedup"`
}

// writepathReport is the serialized BENCH_writepath.json document.
type writepathReport struct {
	GeneratedBy string              `json:"generated_by"`
	Config      writepathConfigJSON `json:"config"`
	Scenarios   []writepathScenario `json:"scenarios"`
	Speedups    []writepathSpeedup  `json:"batch_speedups"`
}

type writepathConfigJSON struct {
	Objects    int    `json:"objects"`
	Dim        int    `json:"dim"`
	Instances  int    `json:"instances"`
	Seed       int64  `json:"seed"`
	Ops        int    `json:"ops"`
	Batch      int    `json:"batch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	GOGC       int    `json:"gogc"`
}

// wpObjects generates the fresh objects one scenario inserts. Clustered
// objects land in a hot region sized a few percent of the domain.
func wpObjects(cfg writepathConfig, idBase uint32, rng *rand.Rand, domain pvoronoi.Rect, clustered bool) []*pvoronoi.Object {
	objs := make([]*pvoronoi.Object, cfg.Ops)
	var clo, cspan []float64
	if clustered {
		clo = make([]float64, cfg.Dim)
		cspan = make([]float64, cfg.Dim)
		for j := 0; j < cfg.Dim; j++ {
			span := domain.Hi[j] - domain.Lo[j]
			cspan[j] = span * 0.05
			clo[j] = domain.Lo[j] + rng.Float64()*(span-cspan[j])
		}
	}
	for i := range objs {
		lo := make(pvoronoi.Point, cfg.Dim)
		hi := make(pvoronoi.Point, cfg.Dim)
		for j := 0; j < cfg.Dim; j++ {
			side := 1 + rng.Float64()*40
			if clustered {
				lo[j] = clo[j] + rng.Float64()*(cspan[j]-side)
			} else {
				span := domain.Hi[j] - domain.Lo[j]
				lo[j] = domain.Lo[j] + rng.Float64()*(span-side)
			}
			hi[j] = lo[j] + side
		}
		o := &pvoronoi.Object{ID: pvoronoi.ID(idBase + uint32(i)), Region: pvoronoi.NewRect(lo, hi)}
		if cfg.Instances > 0 {
			o.Instances = pvoronoi.SampleUniform(o.Region, cfg.Instances, cfg.Seed+int64(i))
		}
		objs[i] = o
	}
	return objs
}

// runScenario inserts objs in commits of batchSize, measuring per-commit
// latency and total throughput, then deletes them again (unmeasured).
func runScenario(ix *pvoronoi.Index, objs []*pvoronoi.Object, batchSize int) (updatesPerS float64, p50, p99 int64, err error) {
	var commits []float64
	start := time.Now()
	for i := 0; i < len(objs); i += batchSize {
		end := i + batchSize
		if end > len(objs) {
			end = len(objs)
		}
		t0 := time.Now()
		if batchSize == 1 {
			err = ix.Insert(objs[i])
		} else {
			_, err = ix.InsertBatch(objs[i:end])
		}
		if err != nil {
			return 0, 0, 0, err
		}
		commits = append(commits, float64(time.Since(t0).Microseconds()))
	}
	elapsed := time.Since(start)

	// Unmeasured cleanup: restore the base object set.
	ids := make([]pvoronoi.ID, len(objs))
	for i, o := range objs {
		ids[i] = o.ID
	}
	if _, err = ix.DeleteBatch(ids); err != nil {
		return 0, 0, 0, err
	}

	sort.Float64s(commits)
	pct := func(p float64) int64 {
		if len(commits) == 0 {
			return 0
		}
		i := int(p / 100 * float64(len(commits)-1))
		return int64(commits[i])
	}
	return float64(len(objs)) / elapsed.Seconds(), pct(50), pct(99), nil
}

// runWritepath builds the base indexes and measures every scenario.
func runWritepath(cfg writepathConfig) error {
	if cfg.Ops <= 0 {
		cfg.Ops = 256
	}
	if cfg.Batch <= 1 {
		cfg.Batch = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 31))

	fmt.Printf("writepath: building PV-index over %d objects (d=%d, %d instances)...\n",
		cfg.N, cfg.Dim, cfg.Instances)
	mkDB := func() *pvoronoi.DB {
		return dataset.Synthetic(dataset.SyntheticParams{
			N: cfg.N, Dim: cfg.Dim, MaxSide: 60, Instances: cfg.Instances, Seed: cfg.Seed,
		})
	}
	opts := pvoronoi.DefaultOptions()
	db := mkDB()
	ix, err := pvoronoi.BuildParallel(db, opts, 0)
	if err != nil {
		return err
	}

	// The durable twin for the WAL-on scenarios (fsync per commit).
	dir, err := os.MkdirTemp("", "pvbench-writepath-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fmt.Printf("writepath: opening durable index in %s...\n", dir)
	d, err := pvoronoi.OpenDurable(dir, mkDB(), opts)
	if err != nil {
		return err
	}
	defer d.Close()

	report := writepathReport{
		GeneratedBy: "pvbench writepath",
		Config: writepathConfigJSON{
			Objects: cfg.N, Dim: cfg.Dim, Instances: cfg.Instances, Seed: cfg.Seed,
			Ops: cfg.Ops, Batch: cfg.Batch, GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion: goVersion(), GOGC: gogcPercent(),
		},
	}

	idBase := uint32(1_000_000)
	for _, workload := range []string{"uniform", "clustered"} {
		for _, withWAL := range []bool{false, true} {
			for _, batch := range []int{1, cfg.Batch} {
				target := ix
				if withWAL {
					target = d.Index
				}
				objs := wpObjects(cfg, idBase, rng, db.Domain, workload == "clustered")
				idBase += uint32(cfg.Ops)

				var syncs0 int64
				if withWAL {
					syncs0 = d.Stats().WALSyncs
				}
				ups, p50, p99, err := runScenario(target, objs, batch)
				if err != nil {
					return fmt.Errorf("%s wal=%v batch=%d: %w", workload, withWAL, batch, err)
				}
				sc := writepathScenario{
					Workload: workload, WAL: withWAL, BatchSize: batch,
					UpdatesPerS: ups, P50us: p50, P99us: p99,
				}
				if withWAL {
					// The cleanup DeleteBatch costs one extra fsync; subtract it.
					sc.FsyncsPerOp = float64(d.Stats().WALSyncs-syncs0-1) / float64(len(objs))
				}
				report.Scenarios = append(report.Scenarios, sc)
				wal := "off"
				if withWAL {
					wal = "on"
				}
				fmt.Printf("writepath: %-9s batch=%-3d wal=%-3s %9.1f updates/s  p50 %7dus  p99 %7dus  %.3f fsyncs/op\n",
					workload, batch, wal, ups, p50, p99, sc.FsyncsPerOp)
			}
		}
	}

	// Headline ratios: batched vs single-op throughput per (workload, wal).
	find := func(workload string, wal bool, batch int) *writepathScenario {
		for i := range report.Scenarios {
			sc := &report.Scenarios[i]
			if sc.Workload == workload && sc.WAL == wal && sc.BatchSize == batch {
				return sc
			}
		}
		return nil
	}
	for _, workload := range []string{"uniform", "clustered"} {
		for _, withWAL := range []bool{false, true} {
			single := find(workload, withWAL, 1)
			batched := find(workload, withWAL, cfg.Batch)
			if single == nil || batched == nil || single.UpdatesPerS == 0 {
				continue
			}
			sp := writepathSpeedup{
				Workload: workload, WAL: withWAL,
				Speedup: batched.UpdatesPerS / single.UpdatesPerS,
			}
			report.Speedups = append(report.Speedups, sp)
			wal := "off"
			if withWAL {
				wal = "on"
			}
			fmt.Printf("writepath: batch speedup %-9s wal=%-3s %0.2fx\n", workload, wal, sp.Speedup)
		}
	}

	if cfg.JSONPath != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.JSONPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.JSONPath)
	}
	return nil
}
