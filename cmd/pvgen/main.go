// Command pvgen generates the paper's evaluation datasets and writes them to
// a file loadable by pvquery and pvserve (and reusable across runs).
//
// Usage:
//
//	pvgen -out data.gob -n 20000 -d 3 -uo 60 -instances 500
//	pvgen -out roads.gob -real roads
//	pvgen -out air.gob -real airports -n 5000
//
// Flags: -out (required) names the output file; -n, -d, -uo, -instances and
// -seed parameterize synthetic generation (object count, dimensionality, max
// uncertainty-region side, pdf samples per object, RNG seed); -clustered
// switches synthetic placement from uniform to Gaussian clusters; -real
// selects a simulated real dataset (roads | rrlines | airports) instead.
//
// Output format: a single gob-encoded dataset image (domain rectangle plus
// every object's ID, region and instances — see internal/dataset/file.go).
// On success pvgen prints a one-line summary of what it wrote to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"pvoronoi/internal/dataset"
	"pvoronoi/internal/uncertain"
)

func main() {
	var (
		out       = flag.String("out", "", "output file (required)")
		n         = flag.Int("n", 20000, "object count")
		d         = flag.Int("d", 3, "dimensionality (synthetic only)")
		uo        = flag.Float64("uo", 60, "max uncertainty-region side |u(o)| (synthetic only)")
		instances = flag.Int("instances", 500, "pdf samples per object")
		seed      = flag.Int64("seed", 1, "generator seed")
		clustered = flag.Bool("clustered", false, "Gaussian clusters instead of uniform (synthetic only)")
		real      = flag.String("real", "", "simulated real dataset: roads | rrlines | airports")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "pvgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	db, err := generate(*real, *n, *d, *uo, *instances, *seed, *clustered)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pvgen: %v\n", err)
		os.Exit(1)
	}
	if err := dataset.Save(db, *out); err != nil {
		fmt.Fprintf(os.Stderr, "pvgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d objects (d=%d, %d instances each) to %s\n",
		db.Len(), db.Dim(), *instances, *out)
}

func generate(real string, n, d int, uo float64, instances int, seed int64, clustered bool) (*uncertain.DB, error) {
	switch real {
	case "":
		return dataset.Synthetic(dataset.SyntheticParams{
			N: n, Dim: d, MaxSide: uo, Instances: instances, Seed: seed, Clustered: clustered,
		}), nil
	case "roads":
		return dataset.Real(dataset.RealParams{Kind: dataset.Roads, N: n, Instances: instances, Seed: seed}), nil
	case "rrlines":
		return dataset.Real(dataset.RealParams{Kind: dataset.RRLines, N: n, Instances: instances, Seed: seed}), nil
	case "airports":
		return dataset.Real(dataset.RealParams{Kind: dataset.Airports, N: n, Instances: instances, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("unknown real dataset %q (want roads, rrlines, or airports)", real)
	}
}
