// Command pvquery builds a PV-index over a dataset and evaluates
// probabilistic nearest neighbor queries against it.
//
// Usage:
//
//	pvquery -data data.gob -q "5000,5000,100"          # one query point
//	pvquery -data data.gob -random 20                  # 20 random queries
//	pvquery -n 5000 -d 2 -random 5 -step1only          # generate in-process
//
// Flags: -data loads a pvgen dataset (omitted: -n/-d/-uo/-instances/-seed
// generate one in-process); -q takes one comma-separated query point and
// -random adds that many uniform query points; -step1only skips probability
// computation; -cset picks the C-set strategy (all | fs | is); -workers
// enables the parallel builder; -saveindex/-loadindex persist and reuse the
// built index across runs.
//
// Output format (stdout, human-readable): a build or load summary line,
// then per query one header line — "q=[...]: N possible NNs (Step 1 took
// ...)" — followed by up to ten result lines. With -step1only each line is
// "object <id> dist [min, max]"; otherwise Step 2 runs and each line is
// "object <id> p=<probability>", sorted by decreasing probability.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pvoronoi"
	"pvoronoi/internal/dataset"
)

func main() {
	var (
		data      = flag.String("data", "", "dataset file from pvgen (omit to generate synthetic in-process)")
		n         = flag.Int("n", 5000, "object count for in-process generation")
		d         = flag.Int("d", 3, "dimensionality for in-process generation")
		uo        = flag.Float64("uo", 60, "max |u(o)| for in-process generation")
		instances = flag.Int("instances", 100, "pdf samples for in-process generation")
		seed      = flag.Int64("seed", 1, "seed")
		qstr      = flag.String("q", "", "query point, comma-separated coordinates")
		random    = flag.Int("random", 0, "run this many random queries")
		step1     = flag.Bool("step1only", false, "skip probability computation (Step 2)")
		strategy  = flag.String("cset", "is", "C-set strategy: all | fs | is")
		saveIdx   = flag.String("saveindex", "", "write the built index to this file")
		loadIdx   = flag.String("loadindex", "", "load a previously saved index instead of building")
		workers   = flag.Int("workers", 0, "parallel build workers (0 = serial)")
	)
	flag.Parse()

	db, err := loadOrGenerate(*data, *n, *d, *uo, *instances, *seed)
	if err != nil {
		fail(err)
	}

	opts := pvoronoi.DefaultOptions()
	switch strings.ToLower(*strategy) {
	case "all":
		opts.Strategy = pvoronoi.CSetAll
	case "fs":
		opts.Strategy = pvoronoi.CSetFS
	case "is":
		opts.Strategy = pvoronoi.CSetIS
	default:
		fail(fmt.Errorf("unknown C-set strategy %q", *strategy))
	}

	var ix *pvoronoi.Index
	if *loadIdx != "" {
		f, err := os.Open(*loadIdx)
		if err != nil {
			fail(err)
		}
		t0 := time.Now()
		ix, err = pvoronoi.LoadIndex(f, db)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("loaded index over %d objects in %v\n", db.Len(), time.Since(t0).Round(time.Millisecond))
	} else {
		fmt.Printf("building PV-index over %d objects (d=%d, strategy=%s)...\n",
			db.Len(), db.Dim(), strings.ToUpper(*strategy))
		t0 := time.Now()
		if *workers > 0 {
			ix, err = pvoronoi.BuildParallel(db, opts, *workers)
		} else {
			ix, err = pvoronoi.Build(db, opts)
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("built in %v\n", time.Since(t0).Round(time.Millisecond))
	}
	if *saveIdx != "" {
		f, err := os.Create(*saveIdx)
		if err != nil {
			fail(err)
		}
		if err := ix.Save(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("index saved to %s\n", *saveIdx)
	}

	var queries []pvoronoi.Point
	if *qstr != "" {
		q, err := parsePoint(*qstr, db.Dim())
		if err != nil {
			fail(err)
		}
		queries = append(queries, q)
	}
	if *random > 0 {
		queries = append(queries, dataset.QueryPoints(db.Domain, *random, *seed+7)...)
	}
	if len(queries) == 0 {
		fmt.Println("no queries requested; use -q or -random")
		return
	}

	for _, q := range queries {
		t1 := time.Now()
		cands, err := ix.PossibleNN(q)
		if err != nil {
			fail(err)
		}
		orTime := time.Since(t1)
		fmt.Printf("\nq=%v: %d possible NNs (Step 1 took %v)\n", q, len(cands), orTime.Round(time.Microsecond))
		if *step1 {
			for i, c := range cands {
				if i == 10 {
					fmt.Printf("  ... and %d more\n", len(cands)-10)
					break
				}
				fmt.Printf("  object %-6d dist [%.2f, %.2f]\n", c.ID, c.MinDist, c.MaxDist)
			}
			continue
		}
		t2 := time.Now()
		results, err := ix.Query(q)
		if err != nil {
			fail(err)
		}
		fmt.Printf("probabilities (Step 2 took %v):\n", time.Since(t2).Round(time.Microsecond))
		for i, r := range results {
			if i == 10 {
				fmt.Printf("  ... and %d more\n", len(results)-10)
				break
			}
			fmt.Printf("  object %-6d p=%.4f\n", r.ID, r.Prob)
		}
	}
}

func loadOrGenerate(path string, n, d int, uo float64, instances int, seed int64) (*pvoronoi.DB, error) {
	if path != "" {
		return dataset.Load(path)
	}
	return dataset.Synthetic(dataset.SyntheticParams{
		N: n, Dim: d, MaxSide: uo, Instances: instances, Seed: seed,
	}), nil
}

func parsePoint(s string, dim int) (pvoronoi.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != dim {
		return nil, fmt.Errorf("query point has %d coordinates, dataset is %d-dimensional", len(parts), dim)
	}
	p := make(pvoronoi.Point, dim)
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad coordinate %q: %v", part, err)
		}
		p[i] = v
	}
	return p, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pvquery: %v\n", err)
	os.Exit(1)
}
