// Command pvserve serves probabilistic nearest neighbor queries over a
// PV-index via an HTTP JSON API — the concurrent serving layer on top of the
// index of Zhang et al., ICDE 2013. Any number of in-flight queries evaluate
// in parallel against the shared index; insert and delete requests apply the
// paper's incremental maintenance and serialize as exclusive writers.
//
// Usage:
//
//	pvserve -n 20000 -d 2                      # synthetic dataset, port 8080
//	pvserve -data roads.gob -addr :9000        # dataset from pvgen
//	pvserve -loadindex ix.pvidx -data d.gob    # pre-built index from pvquery
//	pvserve -n 20000 -data-dir /var/lib/pv     # durable: WAL + checkpoints
//
// In durable mode (-data-dir) every insert/delete is appended to a
// write-ahead log and fsynced before it is acknowledged; on restart the
// server loads the newest checkpoint that passes checksum verification
// (falling back to an older retained one if the newest is corrupt) and
// replays the log's tail, so no acknowledged update is ever lost. A WAL
// write failure (disk full, fsync error) puts the server in degraded
// read-only mode — queries keep serving, writes get 503 — until a
// successful POST /v1/checkpoint re-arms the write path. SIGINT/SIGTERM
// trigger a graceful shutdown: in-flight queries drain, and a final
// checkpoint is written.
//
// Endpoints (request and response bodies are JSON; see server.go routes):
//
//	POST /v1/query        full PNNQ: candidates + qualification probabilities
//	POST /v1/possiblenn   PNNQ Step 1 only (index retrieval, no pdf math)
//	POST /v1/possibleknn  probabilistic k-NN membership probabilities
//	POST /v1/groupnn      probabilistic group NN (agg: sum or max)
//	POST /v1/insert       add an object, incremental index maintenance
//	POST /v1/delete       remove an object, incremental index maintenance
//	POST /v1/insertbatch  batched inserts: one group commit, one WAL fsync
//	POST /v1/deletebatch  batched deletes: one group commit, one WAL fsync
//	POST /v1/checkpoint   force a durable snapshot (durable mode only)
//	GET  /v1/stats        per-endpoint latency percentiles, leaf I/O, counts
//	GET  /v1/healthz      JSON health: {"status":"ok"} or "degraded" + cause
//	GET  /healthz         liveness probe (same JSON)
//
// Every query response carries its own server-side latency in microseconds
// and (for /v1/query, /v1/possiblenn) the exact number of primary-index leaf
// pages it read; /v1/stats aggregates both into p50/p95/p99 and means.
//
// Try it:
//
//	pvserve -n 5000 -d 2 &
//	curl 'localhost:8080/v1/query?point=5000,5000'
//	curl -d '{"point":[5000,5000]}' localhost:8080/v1/query
//	curl localhost:8080/v1/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pvoronoi"
	"pvoronoi/internal/dataset"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		data      = flag.String("data", "", "dataset file from pvgen (omit to generate synthetic in-process)")
		n         = flag.Int("n", 20000, "object count for in-process generation")
		d         = flag.Int("d", 2, "dimensionality for in-process generation")
		uo        = flag.Float64("uo", 60, "max |u(o)| for in-process generation")
		instances = flag.Int("instances", 100, "pdf samples for in-process generation")
		seed      = flag.Int64("seed", 1, "generator seed")
		strategy  = flag.String("cset", "is", "C-set strategy: all | fs | is")
		workers   = flag.Int("workers", 0, "parallel build workers (0 = GOMAXPROCS)")
		loadIdx   = flag.String("loadindex", "", "load a pvquery-saved index instead of building")
		dataDir   = flag.String("data-dir", "", "durable mode: directory for WAL + checkpoints (recovers on boot)")
		drain     = flag.Duration("shutdown-timeout", 15*time.Second, "graceful shutdown drain window")
		reqTO     = flag.Duration("request-timeout", 30*time.Second, "per-request deadline propagated into batch query pools (0 = none)")
		inflight  = flag.Int("max-inflight", 1024, "admission bound: beyond this many in-flight requests new ones get 503 (0 = unlimited)")
		retain    = flag.Int("checkpoint-retain", 0, "checkpoints kept on disk for corruption fallback (0 = default 2)")
	)
	flag.Parse()

	opts := pvoronoi.DefaultOptions()
	switch strings.ToLower(*strategy) {
	case "all":
		opts.Strategy = pvoronoi.CSetAll
	case "fs":
		opts.Strategy = pvoronoi.CSetFS
	case "is":
		opts.Strategy = pvoronoi.CSetIS
	default:
		fail(fmt.Errorf("unknown C-set strategy %q", *strategy))
	}
	opts.CheckpointRetain = *retain

	// The bootstrap dataset: served directly in memory mode, the validation
	// set in -loadindex mode, and the first-boot (or pre-first-checkpoint
	// recovery) input in durable mode — which is why durable restarts must
	// see the same -data/-n/-seed flags. A durable restart with an existing
	// checkpoint recovers from its own stored data, so the bootstrap load
	// is skipped entirely.
	var db *pvoronoi.DB
	if *dataDir == "" || !pvoronoi.HasCheckpoint(*dataDir) {
		var err error
		db, err = loadOrGenerate(*data, *n, *d, *uo, *instances, *seed)
		if err != nil {
			fail(err)
		}
	}

	var (
		srv     *server
		ix      *pvoronoi.Index
		durable *pvoronoi.Durable
	)
	switch {
	case *dataDir != "":
		if *loadIdx != "" {
			fail(fmt.Errorf("-data-dir and -loadindex are mutually exclusive (the data directory carries its own snapshots)"))
		}
		log.Printf("opening durable index in %s...", *dataDir)
		t0 := time.Now()
		var err error
		durable, err = pvoronoi.OpenDurable(*dataDir, db, opts)
		if err != nil {
			fail(err)
		}
		rec := durable.Recovery()
		if len(rec.CorruptCheckpoints) > 0 {
			log.Printf("WARNING: checkpoint(s) %s failed verification; fell back to %s",
				strings.Join(rec.CorruptCheckpoints, ", "), rec.UsedCheckpoint)
		}
		if rec.DroppedWALRecords > 0 {
			log.Printf("WARNING: %d acknowledged WAL records lost to log corruption (%d torn bytes)",
				rec.DroppedWALRecords, rec.TornWALBytes)
		}
		switch {
		case rec.Rebuilt && rec.Replayed > 0:
			log.Printf("rebuilt from bootstrap data and replayed %d WAL updates in %v",
				rec.Replayed, time.Since(t0).Round(time.Millisecond))
		case rec.Rebuilt:
			log.Printf("built fresh durable index over %d objects in %v",
				durable.Len(), time.Since(t0).Round(time.Millisecond))
		default:
			log.Printf("recovered checkpoint at WAL seq %d (+%d replayed updates) in %v",
				rec.SnapshotSeq, rec.Replayed, time.Since(t0).Round(time.Millisecond))
		}
		ix = durable.Index
		srv = newDurableServer(durable)

	case *loadIdx != "":
		f, err := os.Open(*loadIdx)
		if err != nil {
			fail(err)
		}
		t0 := time.Now()
		ix, err = pvoronoi.LoadIndex(f, db)
		f.Close()
		if err != nil {
			fail(err)
		}
		log.Printf("loaded index over %d objects in %v", db.Len(), time.Since(t0).Round(time.Millisecond))
		srv = newServer(ix)

	default:
		log.Printf("building PV-index over %d objects (d=%d, strategy=%s)...",
			db.Len(), db.Dim(), strings.ToUpper(*strategy))
		t0 := time.Now()
		var err error
		ix, err = pvoronoi.BuildParallel(db, opts, *workers)
		if err != nil {
			fail(err)
		}
		log.Printf("built in %v", time.Since(t0).Round(time.Millisecond))
		srv = newServer(ix)
	}

	srv.reqTimeout = *reqTO
	srv.maxInflight = *inflight

	domain := ix.DB().Domain
	log.Printf("serving on %s (domain %v – %v)", *addr, domain.Lo, domain.Hi)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutdown signal received; draining in-flight requests (up to %v)...", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(dctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		if durable != nil {
			log.Printf("writing final checkpoint...")
			if err := durable.Close(); err != nil {
				log.Printf("final checkpoint failed: %v", err)
				os.Exit(1)
			}
			log.Printf("checkpoint complete at WAL seq %d", durable.WALSeq())
		}
		log.Printf("bye")
	}
}

func loadOrGenerate(path string, n, d int, uo float64, instances int, seed int64) (*pvoronoi.DB, error) {
	if path != "" {
		return dataset.Load(path)
	}
	return dataset.Synthetic(dataset.SyntheticParams{
		N: n, Dim: d, MaxSide: uo, Instances: instances, Seed: seed,
	}), nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pvserve: %v\n", err)
	os.Exit(1)
}
