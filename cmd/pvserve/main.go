// Command pvserve serves probabilistic nearest neighbor queries over a
// PV-index via an HTTP JSON API — the concurrent serving layer on top of the
// index of Zhang et al., ICDE 2013. Any number of in-flight queries evaluate
// in parallel against the shared index; insert and delete requests apply the
// paper's incremental maintenance and serialize as exclusive writers.
//
// Usage:
//
//	pvserve -n 20000 -d 2                      # synthetic dataset, port 8080
//	pvserve -data roads.gob -addr :9000        # dataset from pvgen
//	pvserve -loadindex ix.pvidx -data d.gob    # pre-built index from pvquery
//
// Endpoints (request and response bodies are JSON; see server.go routes):
//
//	POST /v1/query        full PNNQ: candidates + qualification probabilities
//	POST /v1/possiblenn   PNNQ Step 1 only (index retrieval, no pdf math)
//	POST /v1/possibleknn  probabilistic k-NN membership probabilities
//	POST /v1/groupnn      probabilistic group NN (agg: sum or max)
//	POST /v1/insert       add an object, incremental index maintenance
//	POST /v1/delete       remove an object, incremental index maintenance
//	GET  /v1/stats        per-endpoint latency percentiles, leaf I/O, counts
//	GET  /healthz         liveness probe
//
// Every query response carries its own server-side latency in microseconds
// and (for /v1/query, /v1/possiblenn) the exact number of primary-index leaf
// pages it read; /v1/stats aggregates both into p50/p95/p99 and means.
//
// Try it:
//
//	pvserve -n 5000 -d 2 &
//	curl 'localhost:8080/v1/query?point=5000,5000'
//	curl -d '{"point":[5000,5000]}' localhost:8080/v1/query
//	curl localhost:8080/v1/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"pvoronoi"
	"pvoronoi/internal/dataset"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		data      = flag.String("data", "", "dataset file from pvgen (omit to generate synthetic in-process)")
		n         = flag.Int("n", 20000, "object count for in-process generation")
		d         = flag.Int("d", 2, "dimensionality for in-process generation")
		uo        = flag.Float64("uo", 60, "max |u(o)| for in-process generation")
		instances = flag.Int("instances", 100, "pdf samples for in-process generation")
		seed      = flag.Int64("seed", 1, "generator seed")
		strategy  = flag.String("cset", "is", "C-set strategy: all | fs | is")
		workers   = flag.Int("workers", 0, "parallel build workers (0 = GOMAXPROCS)")
		loadIdx   = flag.String("loadindex", "", "load a pvquery-saved index instead of building")
	)
	flag.Parse()

	db, err := loadOrGenerate(*data, *n, *d, *uo, *instances, *seed)
	if err != nil {
		fail(err)
	}

	opts := pvoronoi.DefaultOptions()
	switch strings.ToLower(*strategy) {
	case "all":
		opts.Strategy = pvoronoi.CSetAll
	case "fs":
		opts.Strategy = pvoronoi.CSetFS
	case "is":
		opts.Strategy = pvoronoi.CSetIS
	default:
		fail(fmt.Errorf("unknown C-set strategy %q", *strategy))
	}

	var ix *pvoronoi.Index
	if *loadIdx != "" {
		f, err := os.Open(*loadIdx)
		if err != nil {
			fail(err)
		}
		t0 := time.Now()
		ix, err = pvoronoi.LoadIndex(f, db)
		f.Close()
		if err != nil {
			fail(err)
		}
		log.Printf("loaded index over %d objects in %v", db.Len(), time.Since(t0).Round(time.Millisecond))
	} else {
		log.Printf("building PV-index over %d objects (d=%d, strategy=%s)...",
			db.Len(), db.Dim(), strings.ToUpper(*strategy))
		t0 := time.Now()
		ix, err = pvoronoi.BuildParallel(db, opts, *workers)
		if err != nil {
			fail(err)
		}
		log.Printf("built in %v", time.Since(t0).Round(time.Millisecond))
	}

	srv := newServer(ix)
	log.Printf("serving on %s (domain %v – %v)", *addr, db.Domain.Lo, db.Domain.Hi)
	if err := http.ListenAndServe(*addr, srv.routes()); err != nil {
		fail(err)
	}
}

func loadOrGenerate(path string, n, d int, uo float64, instances int, seed int64) (*pvoronoi.DB, error) {
	if path != "" {
		return dataset.Load(path)
	}
	return dataset.Synthetic(dataset.SyntheticParams{
		N: n, Dim: d, MaxSide: uo, Instances: instances, Seed: seed,
	}), nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pvserve: %v\n", err)
	os.Exit(1)
}
