package main

import (
	"math"
	"sort"
	"sync"
	"time"
)

// latencyWindow keeps the most recent N latency observations per endpoint so
// /v1/stats can report live percentiles without unbounded memory.
const latencyWindow = 8192

// endpointMetrics accumulates per-endpoint serving statistics.
type endpointMetrics struct {
	Count     int64
	Errors    int64
	LeafIO    int64 // sum of per-query leaf pages read
	latencies []time.Duration
	next      int // ring cursor once the window is full
}

// metrics is the server-wide metrics registry. One mutex is plenty: the
// critical section is a few counter bumps, dwarfed by query evaluation.
type metrics struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointMetrics
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), endpoints: make(map[string]*endpointMetrics)}
}

// observe records one request against an endpoint.
func (m *metrics) observe(endpoint string, d time.Duration, leafIO int, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[endpoint]
	if e == nil {
		e = &endpointMetrics{}
		m.endpoints[endpoint] = e
	}
	e.Count++
	if failed {
		e.Errors++
		return
	}
	e.LeafIO += int64(leafIO)
	if len(e.latencies) < latencyWindow {
		e.latencies = append(e.latencies, d)
	} else {
		e.latencies[e.next] = d
		e.next = (e.next + 1) % latencyWindow
	}
}

// endpointSnapshot is the JSON form of one endpoint's statistics.
type endpointSnapshot struct {
	Count      int64   `json:"count"`
	Errors     int64   `json:"errors"`
	MeanLeafIO float64 `json:"mean_leaf_io"`
	P50Micros  int64   `json:"p50_us"`
	P95Micros  int64   `json:"p95_us"`
	P99Micros  int64   `json:"p99_us"`
}

// snapshot returns per-endpoint statistics plus the server uptime.
func (m *metrics) snapshot() (map[string]endpointSnapshot, time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]endpointSnapshot, len(m.endpoints))
	for name, e := range m.endpoints {
		s := endpointSnapshot{Count: e.Count, Errors: e.Errors}
		if ok := e.Count - e.Errors; ok > 0 {
			s.MeanLeafIO = float64(e.LeafIO) / float64(ok)
		}
		if len(e.latencies) > 0 {
			sorted := make([]time.Duration, len(e.latencies))
			copy(sorted, e.latencies)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			s.P50Micros = percentile(sorted, 0.50).Microseconds()
			s.P95Micros = percentile(sorted, 0.95).Microseconds()
			s.P99Micros = percentile(sorted, 0.99).Microseconds()
		}
		out[name] = s
	}
	return out, time.Since(m.start)
}

// percentile reads the p-quantile from an ascending-sorted sample with the
// same nearest-rank rule as internal/stats.Sample.Percentile, so /v1/stats
// and pvbench's load report agree on identical data.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
