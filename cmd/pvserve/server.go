package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"pvoronoi"
	"pvoronoi/internal/uncertain"
)

// server wires a shared PV-index to the HTTP API. Every query handler runs
// on the request's own goroutine: net/http gives us one goroutine per
// request, and the index's MVCC read path lets them all evaluate in
// parallel — each pins an immutable snapshot version lock-free — while
// insert/delete requests serialize as writers without ever stalling reads.
type server struct {
	ix      *pvoronoi.Index
	dim     int // domain dimensionality, for request validation
	metrics *metrics
	// durable is non-nil in -data-dir mode: updates are WAL-logged, and
	// /v1/checkpoint snapshots on demand.
	durable *pvoronoi.Durable

	// reqTimeout bounds each request's context (0 = no deadline); it
	// propagates into the batch query worker pools, so one slow batch
	// cannot occupy the pool forever.
	reqTimeout time.Duration
	// maxInflight bounds admitted requests (0 = unlimited). Beyond the
	// bound the server sheds load with 503 instead of piling up goroutines;
	// health and stats endpoints are exempt so operators can always look.
	maxInflight int
	inflight    chan struct{}

	// Degraded mode: after a storage fail-stop (WAL append/fsync failure,
	// disk full) the server keeps answering reads off the last published
	// MVCC version but refuses writes with 503 until a successful
	// /v1/checkpoint proves the write path healthy again.
	degMu         sync.Mutex
	degraded      bool
	degradedCause string
	degradedSince time.Time
}

func newServer(ix *pvoronoi.Index) *server {
	return &server{ix: ix, dim: ix.DB().Domain.Dim(), metrics: newMetrics()}
}

// newDurableServer serves a durable index; updates survive restarts.
func newDurableServer(d *pvoronoi.Durable) *server {
	s := newServer(d.Index)
	s.durable = d
	return s
}

// checkPoint rejects points whose dimensionality doesn't match the indexed
// domain (the geometry layer assumes matching dims and would panic).
func (s *server) checkPoint(p pvoronoi.Point) error {
	if len(p) != s.dim {
		return fmt.Errorf("point has %d coordinates, domain is %d-dimensional", len(p), s.dim)
	}
	return nil
}

// readPoint decodes the request body and its query point, validating the
// point's dimensionality. On failure it writes the 400 response itself and
// returns ok=false.
func (s *server) readPoint(w http.ResponseWriter, r *http.Request) (pvoronoi.Point, map[string]json.RawMessage, bool) {
	body, err := decodeBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	q, err := decodePoint(r, body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	if err := s.checkPoint(q); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	return q, body, true
}

// routes builds the HTTP handler. API summary (all bodies JSON):
//
//	POST /v1/query            {"point":[...], "eps":0}    full PNNQ (eps>0: verified mode)
//	POST /v1/possiblenn       {"point":[...]}             PNNQ Step 1 only
//	POST /v1/possibleknn      {"point":[...], "k":3}      probabilistic k-NN membership
//	POST /v1/possibleknnbatch {"points":[[...],...], "k":3}  one worker-pool batch
//	POST /v1/possiblernn      {"point":[...]}             reverse-NN candidates
//	POST /v1/groupnn          {"points":[[...],...], "agg":"sum"|"max"}  group NN
//	POST /v1/groupnnbatch     {"groups":[[[...],...],...], "agg":"sum"|"max"}  one worker-pool batch
//	POST /v1/insert           {"id":1, "region":{"lo":[...],"hi":[...]}, "instances":[...]} or {"sample":{"kind":"uniform","n":100,"seed":1}}
//	POST /v1/delete           {"id":1}
//	POST /v1/insertbatch      {"objects":[{insert request}, ...]}   one group commit
//	POST /v1/deletebatch      {"ids":[1,2,...]}                     one group commit
//	POST /v1/checkpoint                              force a durable snapshot (durable mode); re-arms writes after a storage fault
//	GET  /v1/stats                                   serving metrics + index shape + health status
//	GET  /v1/healthz                                 health probe: {"status":"ok"} or {"status":"degraded","cause":...}
//	GET  /healthz                                    same (legacy path)
//
// /v1/query, /v1/possiblenn and /v1/possiblernn also accept GET with
// ?point=x,y,... for curl-friendly exploration.
//
// When the durable write path fail-stops (disk full, fsync error), the
// server degrades instead of dying: reads keep serving the last published
// MVCC version, writes return 503 with Retry-After, and a successful
// /v1/checkpoint (after the operator clears the fault) re-arms writes.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/possiblenn", s.handlePossibleNN)
	mux.HandleFunc("/v1/possibleknn", s.handlePossibleKNN)
	mux.HandleFunc("/v1/possibleknnbatch", s.handlePossibleKNNBatch)
	mux.HandleFunc("/v1/possiblernn", s.handlePossibleRNN)
	mux.HandleFunc("/v1/groupnn", s.handleGroupNN)
	mux.HandleFunc("/v1/groupnnbatch", s.handleGroupNNBatch)
	mux.HandleFunc("/v1/insert", s.handleInsert)
	mux.HandleFunc("/v1/delete", s.handleDelete)
	mux.HandleFunc("/v1/insertbatch", s.handleInsertBatch)
	mux.HandleFunc("/v1/deletebatch", s.handleDeleteBatch)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.maxInflight > 0 {
		s.inflight = make(chan struct{}, s.maxInflight)
	}
	if s.reqTimeout <= 0 && s.inflight == nil {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/v1/healthz", "/v1/stats":
			// Always reachable: an operator diagnosing an overloaded or
			// degraded server must not be shed with it.
			mux.ServeHTTP(w, r)
			return
		}
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable,
					fmt.Errorf("server at capacity (%d requests in flight)", s.maxInflight))
				return
			}
		}
		if s.reqTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		mux.ServeHTTP(w, r)
	})
}

// --- degraded mode -------------------------------------------------------

// degradedState reports whether the server is in read-only degraded mode
// and why. The explicit flag is set by the first write that hits a WAL
// fail-stop; the WAL health check also catches faults observed before any
// handler noticed.
func (s *server) degradedState() (degraded bool, cause string, since time.Time) {
	s.degMu.Lock()
	degraded, cause, since = s.degraded, s.degradedCause, s.degradedSince
	s.degMu.Unlock()
	if degraded {
		return degraded, cause, since
	}
	if s.durable != nil && !s.durable.WALHealthy() {
		return true, "write-ahead log unhealthy (pending checkpoint re-arm)", time.Time{}
	}
	return false, "", time.Time{}
}

func (s *server) enterDegraded(cause string) {
	s.degMu.Lock()
	defer s.degMu.Unlock()
	if !s.degraded {
		s.degraded = true
		s.degradedCause = cause
		s.degradedSince = time.Now()
	}
}

func (s *server) exitDegraded() {
	s.degMu.Lock()
	s.degraded = false
	s.degradedCause = ""
	s.degradedSince = time.Time{}
	s.degMu.Unlock()
}

// refuseDegradedWrite sheds a write request while degraded: 503 with a
// Retry-After hint, reads unaffected. Returns true when the request was
// handled (refused).
func (s *server) refuseDegradedWrite(w http.ResponseWriter) bool {
	degraded, cause, _ := s.degradedState()
	if !degraded {
		return false
	}
	w.Header().Set("Retry-After", "10")
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("degraded mode (%s): writes disabled until a successful checkpoint re-arms the write path", cause))
	return true
}

// failUpdate writes an update error response. A WAL fail-stop flips the
// server into degraded mode — subsequent writes are refused up front while
// reads keep serving the last published version.
func (s *server) failUpdate(w http.ResponseWriter, err error) {
	if errors.Is(err, pvoronoi.ErrWAL) {
		s.enterDegraded(err.Error())
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, updateStatus(err), err)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	degraded, cause, since := s.degradedState()
	if !degraded {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
		return
	}
	body := map[string]any{
		"status": "degraded",
		"cause":  cause,
	}
	if !since.IsZero() {
		body["since"] = since.UTC().Format(time.RFC3339)
	}
	// 200: the process is alive and serving reads — degraded, not dead. A
	// liveness probe must not restart-loop a node that can still answer
	// queries; write routing keys on the status field.
	writeJSON(w, http.StatusOK, body)
}

// --- JSON wire types -----------------------------------------------------

type regionJSON struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

type instanceJSON struct {
	Pos  []float64 `json:"pos"`
	Prob float64   `json:"prob"`
}

type resultJSON struct {
	ID   uint32  `json:"id"`
	Prob float64 `json:"prob"`
}

type candidateJSON struct {
	ID      uint32  `json:"id"`
	MinDist float64 `json:"min_dist"`
	MaxDist float64 `json:"max_dist"`
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// decodePoint reads a query point from the JSON body (POST) or the ?point=
// parameter (GET).
func decodePoint(r *http.Request, body map[string]json.RawMessage) (pvoronoi.Point, error) {
	if r.Method == http.MethodGet {
		raw := r.URL.Query().Get("point")
		if raw == "" {
			return nil, fmt.Errorf("missing point parameter")
		}
		parts := strings.Split(raw, ",")
		p := make(pvoronoi.Point, len(parts))
		for i, part := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, fmt.Errorf("bad coordinate %q", part)
			}
			p[i] = v
		}
		return p, nil
	}
	raw, ok := body["point"]
	if !ok {
		return nil, fmt.Errorf("missing point field")
	}
	var p []float64
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("bad point: %v", err)
	}
	return pvoronoi.Point(p), nil
}

// decodeBody parses a JSON object body into raw fields (empty map for GET).
func decodeBody(r *http.Request) (map[string]json.RawMessage, error) {
	if r.Method == http.MethodGet {
		return map[string]json.RawMessage{}, nil
	}
	body := make(map[string]json.RawMessage)
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("bad JSON body: %v", err)
	}
	return body, nil
}

// --- query handlers ------------------------------------------------------

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, body, ok := s.readPoint(w, r)
	if !ok {
		return
	}
	var eps float64
	if raw, ok := body["eps"]; ok {
		if err := json.Unmarshal(raw, &eps); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad eps: %v", err))
			return
		}
	}

	start := time.Now()
	var (
		results []pvoronoi.Result
		cost    pvoronoi.QueryCost
		err     error
	)
	if eps > 0 {
		results, cost, err = s.ix.QueryVerifiedWithCost(q, eps)
	} else {
		results, cost, err = s.ix.QueryWithCost(q)
	}
	elapsed := time.Since(start)
	s.metrics.observe("query", elapsed, cost.LeafIO, err != nil)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	out := make([]resultJSON, len(results))
	for i, res := range results {
		out[i] = resultJSON{ID: uint32(res.ID), Prob: res.Prob}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results":      out,
		"candidates":   cost.Candidates,
		"leaf_io":      cost.LeafIO,
		"cache_hits":   cost.CacheHits,
		"cache_misses": cost.CacheMisses,
		"latency_us":   elapsed.Microseconds(),
	})
}

func (s *server) handlePossibleNN(w http.ResponseWriter, r *http.Request) {
	q, _, ok := s.readPoint(w, r)
	if !ok {
		return
	}

	start := time.Now()
	cands, cost, err := s.ix.PossibleNNWithCost(q)
	elapsed := time.Since(start)
	s.metrics.observe("possiblenn", elapsed, cost.LeafIO, err != nil)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	out := make([]candidateJSON, len(cands))
	for i, c := range cands {
		out[i] = candidateJSON{ID: uint32(c.ID), MinDist: c.MinDist, MaxDist: c.MaxDist}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"candidates": out,
		"leaf_io":    cost.LeafIO,
		"latency_us": elapsed.Microseconds(),
	})
}

// extCostFields appends an extension query's retrieval-cost breakdown to a
// response body.
func extCostFields(body map[string]any, cost pvoronoi.ExtQueryCost) map[string]any {
	body["candidates"] = cost.Candidates
	body["node_io"] = cost.NodeIO
	body["leaf_io"] = cost.LeafIO
	body["graph_nodes"] = cost.GraphNodes
	body["graph_edges"] = cost.GraphEdges
	body["cache_hits"] = cost.CacheHits
	body["cache_misses"] = cost.CacheMisses
	return body
}

// decodeK reads the optional "k" field (default 1, must be >= 1). On failure
// it writes the 400 response itself and returns ok=false.
func decodeK(w http.ResponseWriter, body map[string]json.RawMessage) (int, bool) {
	k := 1
	if raw, ok := body["k"]; ok {
		if err := json.Unmarshal(raw, &k); err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad k"))
			return 0, false
		}
	}
	return k, true
}

func (s *server) handlePossibleKNN(w http.ResponseWriter, r *http.Request) {
	q, body, ok := s.readPoint(w, r)
	if !ok {
		return
	}
	k, ok := decodeK(w, body)
	if !ok {
		return
	}

	start := time.Now()
	results, cost, err := s.ix.PossibleKNNWithCost(q, k)
	elapsed := time.Since(start)
	s.metrics.observe("possibleknn", elapsed, cost.LeafIO, err != nil)
	if err != nil {
		// The request was validated; a failing query is a server-side fault.
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	out := make([]resultJSON, len(results))
	for i, res := range results {
		out[i] = resultJSON{ID: uint32(res.ID), Prob: res.Prob}
	}
	writeJSON(w, http.StatusOK, extCostFields(map[string]any{
		"results":    out,
		"k":          k,
		"latency_us": elapsed.Microseconds(),
	}, cost))
}

// handlePossibleKNNBatch evaluates possible k-NN for a whole set of points
// through the index's worker pool: {"points":[[...],...], "k":3}.
func (s *server) handlePossibleKNNBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	body, err := decodeBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	points, ok := s.decodePoints(w, body, "points")
	if !ok {
		return
	}
	k, ok := decodeK(w, body)
	if !ok {
		return
	}

	start := time.Now()
	results, err := s.ix.PossibleKNNBatchCtx(r.Context(), points, k, 0)
	elapsed := time.Since(start)
	s.metrics.observe("possibleknnbatch", elapsed, 0, serverFault(err))
	if err != nil {
		writeError(w, batchQueryStatus(err), err)
		return
	}

	out := make([][]resultJSON, len(results))
	for i, res := range results {
		out[i] = make([]resultJSON, len(res))
		for j, kr := range res {
			out[i][j] = resultJSON{ID: uint32(kr.ID), Prob: kr.Prob}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results":    out,
		"k":          k,
		"count":      len(out),
		"latency_us": elapsed.Microseconds(),
	})
}

// handlePossibleRNN returns the reverse-NN candidate set of a point:
// the objects with a non-zero chance that the point is their nearest
// neighbor.
func (s *server) handlePossibleRNN(w http.ResponseWriter, r *http.Request) {
	q, _, ok := s.readPoint(w, r)
	if !ok {
		return
	}

	start := time.Now()
	ids, cost, err := s.ix.PossibleRNNWithCost(q)
	elapsed := time.Since(start)
	s.metrics.observe("possiblernn", elapsed, cost.LeafIO, err != nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	out := make([]uint32, len(ids))
	for i, id := range ids {
		out[i] = uint32(id)
	}
	writeJSON(w, http.StatusOK, extCostFields(map[string]any{
		"ids":        out,
		"latency_us": elapsed.Microseconds(),
	}, cost))
}

// validatePoints converts and dim-validates a list of raw points; label
// prefixes the per-point error position (e.g. "points" -> "points[2]: ...").
func (s *server) validatePoints(pts [][]float64, label string) ([]pvoronoi.Point, error) {
	out := make([]pvoronoi.Point, len(pts))
	for i, p := range pts {
		out[i] = pvoronoi.Point(p)
		if err := s.checkPoint(out[i]); err != nil {
			return nil, fmt.Errorf("%s[%d]: %w", label, i, err)
		}
	}
	return out, nil
}

// decodePoints reads and dim-validates an array-of-points field. On failure
// it writes the 400 response itself and returns ok=false.
func (s *server) decodePoints(w http.ResponseWriter, body map[string]json.RawMessage, field string) ([]pvoronoi.Point, bool) {
	var pts [][]float64
	if raw, ok := body[field]; ok {
		if err := json.Unmarshal(raw, &pts); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %v", field, err))
			return nil, false
		}
	}
	if len(pts) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing %s field", field))
		return nil, false
	}
	out, err := s.validatePoints(pts, field)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	return out, true
}

// decodeAgg reads the optional "agg" field ("sum" default, or "max"). On
// failure it writes the 400 response itself and returns ok=false.
func decodeAgg(w http.ResponseWriter, body map[string]json.RawMessage) (pvoronoi.Agg, bool) {
	agg := pvoronoi.AggSum
	if raw, ok := body["agg"]; ok {
		var name string
		if err := json.Unmarshal(raw, &name); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad agg: %v", err))
			return agg, false
		}
		switch strings.ToLower(name) {
		case "sum", "":
			agg = pvoronoi.AggSum
		case "max":
			agg = pvoronoi.AggMax
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown agg %q (want sum or max)", name))
			return agg, false
		}
	}
	return agg, true
}

func (s *server) handleGroupNN(w http.ResponseWriter, r *http.Request) {
	body, err := decodeBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	group, ok := s.decodePoints(w, body, "points")
	if !ok {
		return
	}
	agg, ok := decodeAgg(w, body)
	if !ok {
		return
	}

	start := time.Now()
	results, cost, err := s.ix.GroupNNWithCost(group, agg)
	elapsed := time.Since(start)
	s.metrics.observe("groupnn", elapsed, cost.LeafIO, err != nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	out := make([]resultJSON, len(results))
	for i, res := range results {
		out[i] = resultJSON{ID: uint32(res.ID), Prob: res.Prob}
	}
	writeJSON(w, http.StatusOK, extCostFields(map[string]any{
		"results":    out,
		"latency_us": elapsed.Microseconds(),
	}, cost))
}

// handleGroupNNBatch evaluates group NN for a whole set of groups through
// the index's worker pool: {"groups":[[[...],...],...], "agg":"sum"}.
func (s *server) handleGroupNNBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	body, err := decodeBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var raw [][][]float64
	if rawGroups, ok := body["groups"]; ok {
		if err := json.Unmarshal(rawGroups, &raw); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad groups: %v", err))
			return
		}
	}
	if len(raw) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing groups field"))
		return
	}
	groups := make([][]pvoronoi.Point, len(raw))
	for i, g := range raw {
		if len(g) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("groups[%d]: empty group", i))
			return
		}
		pts, err := s.validatePoints(g, fmt.Sprintf("groups[%d]", i))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		groups[i] = pts
	}
	agg, ok := decodeAgg(w, body)
	if !ok {
		return
	}

	start := time.Now()
	results, err := s.ix.GroupNNBatchCtx(r.Context(), groups, agg, 0)
	elapsed := time.Since(start)
	s.metrics.observe("groupnnbatch", elapsed, 0, serverFault(err))
	if err != nil {
		writeError(w, batchQueryStatus(err), err)
		return
	}

	out := make([][]resultJSON, len(results))
	for i, res := range results {
		out[i] = make([]resultJSON, len(res))
		for j, gr := range res {
			out[i][j] = resultJSON{ID: uint32(gr.ID), Prob: gr.Prob}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results":    out,
		"count":      len(out),
		"latency_us": elapsed.Microseconds(),
	})
}

// --- update handlers -----------------------------------------------------

type insertRequest struct {
	ID        uint32         `json:"id"`
	Region    regionJSON     `json:"region"`
	Instances []instanceJSON `json:"instances"`
	Sample    *struct {
		Kind string `json:"kind"` // "uniform" (default) or "gaussian"
		N    int    `json:"n"`
		Seed int64  `json:"seed"`
	} `json:"sample"`
}

// toObject validates an insert request and builds the object it describes.
func (req *insertRequest) toObject() (*pvoronoi.Object, error) {
	if len(req.Region.Lo) == 0 || len(req.Region.Lo) != len(req.Region.Hi) {
		return nil, fmt.Errorf("region needs matching lo/hi")
	}
	for i := range req.Region.Lo {
		if req.Region.Lo[i] > req.Region.Hi[i] {
			return nil, fmt.Errorf("inverted region in dim %d", i)
		}
	}
	region := pvoronoi.NewRect(pvoronoi.Point(req.Region.Lo), pvoronoi.Point(req.Region.Hi))

	o := &pvoronoi.Object{ID: pvoronoi.ID(req.ID), Region: region}
	switch {
	case len(req.Instances) > 0:
		o.Instances = make([]pvoronoi.Instance, len(req.Instances))
		for i, in := range req.Instances {
			o.Instances[i] = pvoronoi.Instance{Pos: pvoronoi.Point(in.Pos), Prob: in.Prob}
		}
		if err := o.Validate(); err != nil {
			return nil, err
		}
	case req.Sample != nil:
		n := req.Sample.N
		if n <= 0 {
			n = 100
		}
		if strings.EqualFold(req.Sample.Kind, "gaussian") {
			o.Instances = pvoronoi.SampleGaussian(region, n, req.Sample.Seed)
		} else {
			o.Instances = pvoronoi.SampleUniform(region, n, req.Sample.Seed)
		}
	}
	return o, nil
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	if s.refuseDegradedWrite(w) {
		return
	}
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %v", err))
		return
	}
	o, err := req.toObject()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	start := time.Now()
	st, err := s.ix.InsertWithStats(o)
	elapsed := time.Since(start)
	s.metrics.observe("insert", elapsed, 0, err != nil)
	if err != nil {
		s.failUpdate(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":         req.ID,
		"affected":   st.Affected,
		"examined":   st.Examined,
		"latency_us": elapsed.Microseconds(),
	})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	if s.refuseDegradedWrite(w) {
		return
	}
	var req struct {
		ID uint32 `json:"id"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %v", err))
		return
	}

	start := time.Now()
	st, err := s.ix.DeleteWithStats(pvoronoi.ID(req.ID))
	elapsed := time.Since(start)
	s.metrics.observe("delete", elapsed, 0, err != nil)
	if err != nil {
		s.failUpdate(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":         req.ID,
		"affected":   st.Affected,
		"examined":   st.Examined,
		"latency_us": elapsed.Microseconds(),
	})
}

// handleInsertBatch applies a whole set of inserts as one group commit:
// {"objects":[{insert request}, ...]}. One write-lock acquisition and (in
// durable mode) one WAL fsync cover the entire batch.
func (s *server) handleInsertBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	if s.refuseDegradedWrite(w) {
		return
	}
	var req struct {
		Objects []insertRequest `json:"objects"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %v", err))
		return
	}
	if len(req.Objects) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing objects field"))
		return
	}
	objs := make([]*pvoronoi.Object, len(req.Objects))
	for i := range req.Objects {
		o, err := req.Objects[i].toObject()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("objects[%d]: %w", i, err))
			return
		}
		objs[i] = o
	}

	start := time.Now()
	sts, err := s.ix.InsertBatch(objs)
	elapsed := time.Since(start)
	s.metrics.observe("insertbatch", elapsed, 0, err != nil)
	if err != nil {
		s.failUpdate(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":      len(sts),
		"affected":   sumAffected(sts),
		"examined":   sumExamined(sts),
		"latency_us": elapsed.Microseconds(),
	})
}

// handleDeleteBatch removes a whole set of IDs as one group commit:
// {"ids":[1,2,...]}.
func (s *server) handleDeleteBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	if s.refuseDegradedWrite(w) {
		return
	}
	var req struct {
		IDs []uint32 `json:"ids"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %v", err))
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing ids field"))
		return
	}
	ids := make([]pvoronoi.ID, len(req.IDs))
	for i, id := range req.IDs {
		ids[i] = pvoronoi.ID(id)
	}

	start := time.Now()
	sts, err := s.ix.DeleteBatch(ids)
	elapsed := time.Since(start)
	s.metrics.observe("deletebatch", elapsed, 0, err != nil)
	if err != nil {
		s.failUpdate(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":      len(sts),
		"affected":   sumAffected(sts),
		"examined":   sumExamined(sts),
		"latency_us": elapsed.Microseconds(),
	})
}

// handleCheckpoint forces a durable snapshot (admin endpoint, POST only).
// Outside durable mode it reports 409: there is nowhere to persist to.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	if s.durable == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("server is not running in durable mode (-data-dir)"))
		return
	}
	start := time.Now()
	st, err := s.durable.Checkpoint()
	elapsed := time.Since(start)
	s.metrics.observe("checkpoint", elapsed, 0, err != nil)
	if err != nil {
		// A checkpoint that cannot complete while the WAL is unhealthy
		// keeps (or puts) the server in degraded mode.
		if !s.durable.WALHealthy() {
			s.enterDegraded(err.Error())
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// A completed checkpoint proves the whole write path — snapshot files,
	// directory syncs, WAL append — works again: re-arm writes.
	if s.durable.WALHealthy() {
		s.exitDegraded()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"wal_seq":    st.Seq,
		"skipped":    st.Skipped,
		"latency_us": elapsed.Microseconds(),
	})
}

// updateStatus maps an update-path error to its HTTP status: conflict for
// duplicate IDs, not-found for unknown IDs, service-unavailable for
// server-side durability faults (WAL I/O — transient from the client's view:
// retry after the operator re-arms), bad-request otherwise.
func updateStatus(err error) int {
	switch {
	case errors.Is(err, pvoronoi.ErrWAL):
		return http.StatusServiceUnavailable
	case errors.Is(err, uncertain.ErrDuplicateID):
		return http.StatusConflict
	case errors.Is(err, uncertain.ErrUnknownID):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before the response was produced. Nothing failed server-side, so it
// must not masquerade as a timeout or a 5xx in logs and metrics.
const statusClientClosedRequest = 499

// batchQueryStatus maps a batch query failure: a server-imposed request
// deadline that expired mid-batch is a timeout (504), a client that
// disconnected mid-batch is its own abort (499), anything else is a
// server-side fault.
func batchQueryStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// serverFault reports whether a batch query error should count as a server
// failure in metrics — client cancellation is not one.
func serverFault(err error) bool {
	return err != nil && !errors.Is(err, context.Canceled)
}

func sumAffected(sts []pvoronoi.UpdateStats) int {
	n := 0
	for _, st := range sts {
		n += st.Affected
	}
	return n
}

func sumExamined(sts []pvoronoi.UpdateStats) int {
	n := 0
	for _, st := range sts {
		n += st.Examined
	}
	return n
}

// --- stats ---------------------------------------------------------------

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	endpoints, uptime := s.metrics.snapshot()
	io := s.ix.IO()
	rc := s.ix.RecordCache()
	mv := s.ix.MVCC()
	adj := s.ix.Adjacency()
	domain := s.ix.DB().Domain // immutable per version; safe without a lock
	status := "ok"
	degraded, cause, _ := s.degradedState()
	if degraded {
		status = "degraded"
	}
	body := map[string]any{
		"status":   status,
		"uptime_s": uptime.Seconds(),
		"objects":  s.ix.Len(),
		"domain": regionJSON{
			Lo: []float64(domain.Lo),
			Hi: []float64(domain.Hi),
		},
		"io": map[string]int64{
			"reads":  io.Reads,
			"writes": io.Writes,
		},
		"record_cache": map[string]int64{
			"hits":     rc.Hits,
			"misses":   rc.Misses,
			"resident": int64(rc.Resident),
			"capacity": int64(rc.Capacity),
		},
		"mvcc": map[string]int64{
			"epoch":            int64(mv.Epoch),
			"inflight_readers": mv.InFlightReaders,
			"live_versions":    int64(mv.LiveVersions),
			"reclaimed":        mv.Reclaimed,
		},
		"adjacency": map[string]any{
			"rows":            int64(adj.Rows),
			"edges":           int64(adj.Edges),
			"rows_recomputed": adj.RowsRecomputed,
			"rows_patched":    adj.RowsPatched,
			"rows_deleted":    adj.RowsDeleted,
			// Hub shape: degree and stored-UBR volume distributions over the
			// current rows — what the refinement budget targets.
			"degree_p50":  int64(adj.DegreeP50),
			"degree_p90":  int64(adj.DegreeP90),
			"degree_max":  int64(adj.DegreeMax),
			"ubr_vol_p50": adj.UBRVolP50,
			"ubr_vol_p90": adj.UBRVolP90,
			"ubr_vol_max": adj.UBRVolMax,
			// Refinement lifetime counters.
			"rows_refined":        adj.RowsRefined,
			"clip_passes":         adj.ClipPasses,
			"refine_budget_spent": adj.RefineBudgetSpent,
		},
		"endpoints": endpoints,
		"runtime":   runtimeStats(),
	}
	if degraded {
		body["degraded_cause"] = cause
	}
	if s.durable != nil {
		ds := s.durable.Stats()
		body["durable"] = map[string]any{
			"wal_seq":        ds.WALSeq,
			"wal_appends":    ds.WALAppends,
			"wal_commits":    ds.WALCommits,
			"wal_syncs":      ds.WALSyncs,
			"wal_bytes":      ds.WALBytes,
			"wal_segments":   ds.WALSegments,
			"wal_healthy":    ds.WALHealthy,
			"checkpoint_seq": ds.CheckpointSeq,
			"store_epoch":    ds.StoreEpoch,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// runtimeStats reports the Go runtime's memory and GC behavior — enough for
// an operator to see heap growth and GC pressure without attaching pprof.
func runtimeStats() map[string]any {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]any{
		"heap_alloc_bytes": ms.HeapAlloc,
		"heap_objects":     ms.HeapObjects,
		"num_gc":           ms.NumGC,
		"gc_pause_total_s": float64(ms.PauseTotalNs) / 1e9,
		"gomaxprocs":       runtime.GOMAXPROCS(0),
	}
}
