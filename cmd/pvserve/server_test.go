package main

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pvoronoi"
	"pvoronoi/internal/vfs"
)

func testIndex(t *testing.T, n int) *pvoronoi.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	db := pvoronoi.NewDB(pvoronoi.NewRect(pvoronoi.Point{0, 0}, pvoronoi.Point{1000, 1000}))
	for i := 0; i < n; i++ {
		lo := pvoronoi.Point{rng.Float64() * 950, rng.Float64() * 950}
		region := pvoronoi.NewRect(lo, pvoronoi.Point{lo[0] + 5 + rng.Float64()*30, lo[1] + 5 + rng.Float64()*30})
		o := &pvoronoi.Object{ID: pvoronoi.ID(i), Region: region,
			Instances: pvoronoi.SampleUniform(region, 20, int64(i))}
		if err := db.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	opts := pvoronoi.DefaultOptions()
	opts.K = 20
	opts.KPartition = 3
	opts.KGlobal = 40
	opts.MemBudget = 1 << 18
	ix, err := pvoronoi.Build(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := make(map[string]json.RawMessage)
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decoding response: %v", path, err)
	}
	return resp, out
}

// TestServePNNQOverHTTP is the acceptance check: the server answers a full
// PNNQ over HTTP with sane probabilities and per-query cost metrics.
func TestServePNNQOverHTTP(t *testing.T) {
	ix := testIndex(t, 80)
	ts := httptest.NewServer(newServer(ix).routes())
	defer ts.Close()

	resp, out := postJSON(t, ts, "/v1/query", map[string]any{"point": []float64{500, 500}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out["error"])
	}
	var results []struct {
		ID   uint32  `json:"id"`
		Prob float64 `json:"prob"`
	}
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results for an interior query point")
	}
	var sum float64
	for _, r := range results {
		sum += r.Prob
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("probabilities sum to %g, want 1", sum)
	}
	var leafIO int
	if err := json.Unmarshal(out["leaf_io"], &leafIO); err != nil || leafIO < 1 {
		t.Fatalf("leaf_io = %d (err %v), want >= 1", leafIO, err)
	}

	// Direct library call must agree with the HTTP answer.
	want, err := ix.Query(pvoronoi.Point{500, 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(results) {
		t.Fatalf("HTTP returned %d results, library %d", len(results), len(want))
	}
	for i := range want {
		if uint32(want[i].ID) != results[i].ID || math.Abs(want[i].Prob-results[i].Prob) > 1e-9 {
			t.Fatalf("result %d: HTTP (%d, %g) != library (%d, %g)",
				i, results[i].ID, results[i].Prob, want[i].ID, want[i].Prob)
		}
	}

	// GET form works too.
	getResp, err := http.Get(ts.URL + "/v1/query?point=500,500")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("GET query status %d", getResp.StatusCode)
	}
}

func TestServeEndpoints(t *testing.T) {
	ix := testIndex(t, 60)
	ts := httptest.NewServer(newServer(ix).routes())
	defer ts.Close()

	resp, out := postJSON(t, ts, "/v1/possiblenn", map[string]any{"point": []float64{200, 700}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("possiblenn status %d: %s", resp.StatusCode, out["error"])
	}

	resp, out = postJSON(t, ts, "/v1/possibleknn", map[string]any{"point": []float64{200, 700}, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("possibleknn status %d: %s", resp.StatusCode, out["error"])
	}

	resp, out = postJSON(t, ts, "/v1/groupnn", map[string]any{
		"points": [][]float64{{100, 100}, {300, 200}}, "agg": "max"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("groupnn status %d: %s", resp.StatusCode, out["error"])
	}

	// Insert a fresh object right at a probe point, then find it.
	resp, out = postJSON(t, ts, "/v1/insert", map[string]any{
		"id":     9000,
		"region": map[string]any{"lo": []float64{499, 499}, "hi": []float64{501, 501}},
		"sample": map[string]any{"kind": "uniform", "n": 20, "seed": 5},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, out["error"])
	}
	resp, out = postJSON(t, ts, "/v1/query", map[string]any{"point": []float64{500, 500}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, out["error"])
	}
	var results []struct {
		ID   uint32  `json:"id"`
		Prob float64 `json:"prob"`
	}
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range results {
		if r.ID == 9000 {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted object 9000 not returned for a query at its center")
	}

	// Wrong-dimension points are rejected cleanly, not panicked on.
	resp, out = postJSON(t, ts, "/v1/query", map[string]any{"point": []float64{1, 2, 3}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("3-d point on 2-d index: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/groupnn", map[string]any{"points": [][]float64{{1}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("1-d group point on 2-d index: status %d, want 400", resp.StatusCode)
	}

	// Duplicate insert conflicts; delete works; unknown delete is 404.
	resp, _ = postJSON(t, ts, "/v1/insert", map[string]any{
		"id":     9000,
		"region": map[string]any{"lo": []float64{10, 10}, "hi": []float64{20, 20}},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate insert status %d, want 409", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/delete", map[string]any{"id": 9000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/delete", map[string]any{"id": 9000})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete status %d, want 404", resp.StatusCode)
	}

	// Stats reflect the traffic.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats struct {
		Objects   int `json:"objects"`
		Endpoints map[string]struct {
			Count int64 `json:"count"`
			P50   int64 `json:"p50_us"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Objects != 60 {
		t.Fatalf("stats report %d objects, want 60", stats.Objects)
	}
	if stats.Endpoints["query"].Count < 1 {
		t.Fatalf("stats report %d query calls, want >= 1", stats.Endpoints["query"].Count)
	}
	if stats.Endpoints["insert"].Count < 1 || stats.Endpoints["delete"].Count < 1 {
		t.Fatal("stats missing insert/delete traffic")
	}
}

// TestStatsRuntimeBlock checks /v1/stats exposes the Go runtime block:
// heap size, object count, GC cycle count, total GC pause, and GOMAXPROCS.
func TestStatsRuntimeBlock(t *testing.T) {
	ix := testIndex(t, 20)
	ts := httptest.NewServer(newServer(ix).routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Runtime struct {
			HeapAlloc    uint64   `json:"heap_alloc_bytes"`
			HeapObjects  uint64   `json:"heap_objects"`
			NumGC        *uint32  `json:"num_gc"`
			GCPauseTotal *float64 `json:"gc_pause_total_s"`
			GoMaxProcs   int      `json:"gomaxprocs"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	rt := stats.Runtime
	if rt.HeapAlloc == 0 || rt.HeapObjects == 0 {
		t.Fatalf("runtime block reports empty heap: %+v", rt)
	}
	if rt.NumGC == nil || rt.GCPauseTotal == nil {
		t.Fatalf("runtime block missing GC fields: %+v", rt)
	}
	if *rt.GCPauseTotal < 0 {
		t.Fatalf("negative total GC pause %f", *rt.GCPauseTotal)
	}
	if rt.GoMaxProcs < 1 {
		t.Fatalf("gomaxprocs = %d, want >= 1", rt.GoMaxProcs)
	}
}

// TestServeExtensionEndpoints covers the extension-query surface: the
// reverse-NN endpoint, the worker-pool batch endpoints, per-query retrieval
// cost fields, and per-endpoint metrics.
func TestServeExtensionEndpoints(t *testing.T) {
	ix := testIndex(t, 60)
	ts := httptest.NewServer(newServer(ix).routes())
	defer ts.Close()

	// possiblernn: a point at an object's center must list that object, and
	// the response must carry the retrieval cost breakdown.
	center := ix.DB().Objects()[0].Region.Center()
	wantID := uint32(ix.DB().Objects()[0].ID)
	resp, out := postJSON(t, ts, "/v1/possiblernn", map[string]any{"point": []float64(center)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("possiblernn status %d: %s", resp.StatusCode, out["error"])
	}
	var ids []uint32
	if err := json.Unmarshal(out["ids"], &ids); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range ids {
		if id == wantID {
			found = true
		}
	}
	if !found {
		t.Fatalf("object %d containing the probe missing from RNN ids %v", wantID, ids)
	}
	var leafIO int
	if err := json.Unmarshal(out["leaf_io"], &leafIO); err != nil || leafIO < 1 {
		t.Fatalf("possiblernn leaf_io = %d (err %v), want >= 1", leafIO, err)
	}

	// GET form of possiblernn.
	getResp, err := http.Get(ts.URL + "/v1/possiblernn?point=500,500")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("GET possiblernn status %d", getResp.StatusCode)
	}

	// possibleknn responses carry retrieval cost too.
	resp, out = postJSON(t, ts, "/v1/possibleknn", map[string]any{"point": []float64{200, 700}, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("possibleknn status %d: %s", resp.StatusCode, out["error"])
	}
	if err := json.Unmarshal(out["leaf_io"], &leafIO); err != nil || leafIO < 1 {
		t.Fatalf("possibleknn leaf_io = %d (err %v), want >= 1", leafIO, err)
	}

	// Batch endpoints return positional results matching the library.
	points := [][]float64{{200, 700}, {500, 500}, {800, 100}}
	resp, out = postJSON(t, ts, "/v1/possibleknnbatch", map[string]any{"points": points, "k": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("possibleknnbatch status %d: %s", resp.StatusCode, out["error"])
	}
	var batchResults [][]struct {
		ID   uint32  `json:"id"`
		Prob float64 `json:"prob"`
	}
	if err := json.Unmarshal(out["results"], &batchResults); err != nil {
		t.Fatal(err)
	}
	if len(batchResults) != len(points) {
		t.Fatalf("possibleknnbatch returned %d result sets, want %d", len(batchResults), len(points))
	}
	want, err := ix.PossibleKNN(pvoronoi.Point{500, 500}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batchResults[1]) != len(want) {
		t.Fatalf("batch result 1 has %d entries, library %d", len(batchResults[1]), len(want))
	}
	for i := range want {
		if batchResults[1][i].ID != uint32(want[i].ID) || math.Abs(batchResults[1][i].Prob-want[i].Prob) > 1e-9 {
			t.Fatalf("batch result mismatch at %d", i)
		}
	}

	resp, out = postJSON(t, ts, "/v1/groupnnbatch", map[string]any{
		"groups": [][][]float64{{{100, 100}, {300, 200}}, {{700, 700}}},
		"agg":    "sum",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("groupnnbatch status %d: %s", resp.StatusCode, out["error"])
	}
	if err := json.Unmarshal(out["results"], &batchResults); err != nil {
		t.Fatal(err)
	}
	if len(batchResults) != 2 {
		t.Fatalf("groupnnbatch returned %d result sets, want 2", len(batchResults))
	}

	// Validation errors stay 400.
	resp, _ = postJSON(t, ts, "/v1/possiblernn", map[string]any{"point": []float64{1, 2, 3}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("3-d point on 2-d index: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/possibleknnbatch", map[string]any{"points": [][]float64{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/groupnnbatch", map[string]any{"groups": [][][]float64{{}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty group in batch: status %d, want 400", resp.StatusCode)
	}

	// Per-endpoint metrics picked up the new traffic.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats struct {
		Endpoints map[string]struct {
			Count int64 `json:"count"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"possiblernn", "possibleknn", "possibleknnbatch", "groupnnbatch"} {
		if stats.Endpoints[name].Count < 1 {
			t.Fatalf("stats missing %s traffic: %+v", name, stats.Endpoints)
		}
	}
}

// TestServeConcurrentTraffic drives queries and writes through the full HTTP
// stack in parallel — the serving-layer analogue of the library's
// concurrency stress test.
func TestServeConcurrentTraffic(t *testing.T) {
	ix := testIndex(t, 60)
	ts := httptest.NewServer(newServer(ix).routes())
	defer ts.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				body, _ := json.Marshal(map[string]any{
					"point": []float64{rng.Float64() * 1000, rng.Float64() * 1000}})
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d", resp.StatusCode)
					return
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			id := 5000 + i
			body, _ := json.Marshal(map[string]any{
				"id":     id,
				"region": map[string]any{"lo": []float64{10, 10}, "hi": []float64{40, 40}},
				"sample": map[string]any{"n": 10, "seed": id},
			})
			resp, err := http.Post(ts.URL+"/v1/insert", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("insert status %d", resp.StatusCode)
				return
			}
			body, _ = json.Marshal(map[string]any{"id": id})
			resp, err = http.Post(ts.URL+"/v1/delete", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("delete status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()

	if got := ix.Len(); got != 60 {
		t.Fatalf("index has %d objects after churn, want 60", got)
	}
}

// TestServeBatchEndpoints exercises the group-commit insert/delete routes.
func TestServeBatchEndpoints(t *testing.T) {
	ix := testIndex(t, 50)
	ts := httptest.NewServer(newServer(ix).routes())
	defer ts.Close()

	var objs []map[string]any
	for i := 0; i < 6; i++ {
		objs = append(objs, map[string]any{
			"id":     7000 + i,
			"region": map[string]any{"lo": []float64{float64(100 + i*50), 100}, "hi": []float64{float64(120 + i*50), 130}},
			"sample": map[string]any{"n": 10, "seed": i},
		})
	}
	resp, out := postJSON(t, ts, "/v1/insertbatch", map[string]any{"objects": objs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insertbatch status %d: %s", resp.StatusCode, out["error"])
	}
	var count int
	if err := json.Unmarshal(out["count"], &count); err != nil || count != 6 {
		t.Fatalf("insertbatch count = %d (err %v), want 6", count, err)
	}
	if got := ix.Len(); got != 56 {
		t.Fatalf("index has %d objects after batch insert, want 56", got)
	}

	// A batch with one duplicate applies nothing.
	resp, _ = postJSON(t, ts, "/v1/insertbatch", map[string]any{"objects": []map[string]any{
		{"id": 7100, "region": map[string]any{"lo": []float64{10, 10}, "hi": []float64{20, 20}}},
		{"id": 7000, "region": map[string]any{"lo": []float64{10, 10}, "hi": []float64{20, 20}}},
	}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate in batch: status %d, want 409", resp.StatusCode)
	}
	if got := ix.Len(); got != 56 {
		t.Fatalf("failed batch mutated the index: %d objects", got)
	}

	resp, out = postJSON(t, ts, "/v1/deletebatch", map[string]any{"ids": []int{7000, 7001, 7002, 7003, 7004, 7005}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deletebatch status %d: %s", resp.StatusCode, out["error"])
	}
	if got := ix.Len(); got != 50 {
		t.Fatalf("index has %d objects after batch delete, want 50", got)
	}
	resp, _ = postJSON(t, ts, "/v1/deletebatch", map[string]any{"ids": []int{424242}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown deletebatch: status %d, want 404", resp.StatusCode)
	}

	// Checkpoint without durable mode is a clean 409.
	resp, _ = postJSON(t, ts, "/v1/checkpoint", map[string]any{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint in memory mode: status %d, want 409", resp.StatusCode)
	}
}

// TestServeDurableCheckpointAndRecovery runs the server against a durable
// index, checkpoints over HTTP, and verifies a second open sees the updates.
func TestServeDurableCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	db := pvoronoi.NewDB(pvoronoi.NewRect(pvoronoi.Point{0, 0}, pvoronoi.Point{1000, 1000}))
	for i := 0; i < 40; i++ {
		lo := pvoronoi.Point{rng.Float64() * 950, rng.Float64() * 950}
		region := pvoronoi.NewRect(lo, pvoronoi.Point{lo[0] + 10, lo[1] + 10})
		if err := db.Add(&pvoronoi.Object{ID: pvoronoi.ID(i), Region: region}); err != nil {
			t.Fatal(err)
		}
	}
	opts := pvoronoi.DefaultOptions()
	opts.MemBudget = 1 << 18
	d, err := pvoronoi.OpenDurable(dir, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newDurableServer(d).routes())

	resp, out := postJSON(t, ts, "/v1/insert", map[string]any{
		"id":     9500,
		"region": map[string]any{"lo": []float64{400, 400}, "hi": []float64{420, 420}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("durable insert status %d: %s", resp.StatusCode, out["error"])
	}
	resp, out = postJSON(t, ts, "/v1/checkpoint", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d: %s", resp.StatusCode, out["error"])
	}
	var skipped bool
	if err := json.Unmarshal(out["skipped"], &skipped); err != nil || skipped {
		t.Fatalf("first checkpoint skipped=%v (err %v), want a real snapshot", skipped, err)
	}

	// Stats expose the durable counters.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Durable struct {
			WALSeq   uint64 `json:"wal_seq"`
			WALSyncs int64  `json:"wal_syncs"`
		} `json:"durable"`
	}
	err = json.NewDecoder(statsResp.Body).Decode(&stats)
	statsResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Durable.WALSeq == 0 || stats.Durable.WALSyncs == 0 {
		t.Fatalf("durable stats missing: %+v", stats.Durable)
	}

	ts.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the update must still be there.
	d2, err := pvoronoi.OpenDurable(dir, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.DB().Get(9500) == nil {
		t.Fatal("update lost across restart")
	}
	if d2.Len() != 41 {
		t.Fatalf("recovered %d objects, want 41", d2.Len())
	}
}

// TestStatsMVCCGauges checks /v1/stats surfaces the MVCC snapshot
// lifecycle: the write epoch (which must advance with updates), the
// in-flight reader gauge, and the live/reclaimed version counters.
func TestStatsMVCCGauges(t *testing.T) {
	ix := testIndex(t, 40)
	ts := httptest.NewServer(newServer(ix).routes())
	defer ts.Close()

	readStats := func() (epoch, live, reclaimed, inflight int64) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats struct {
			MVCC struct {
				Epoch           int64 `json:"epoch"`
				InflightReaders int64 `json:"inflight_readers"`
				LiveVersions    int64 `json:"live_versions"`
				Reclaimed       int64 `json:"reclaimed"`
			} `json:"mvcc"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		return stats.MVCC.Epoch, stats.MVCC.LiveVersions, stats.MVCC.Reclaimed, stats.MVCC.InflightReaders
	}

	epoch0, live0, _, _ := readStats()
	if epoch0 < 1 {
		t.Fatalf("published epoch %d, want >= 1", epoch0)
	}
	if live0 != 1 {
		t.Fatalf("idle server reports %d live versions, want 1", live0)
	}

	// An insert publishes a new version; the epoch must advance and the
	// retired predecessor must be reclaimed (no reader pins it).
	body, _ := json.Marshal(map[string]any{
		"id":     8800,
		"region": map[string]any{"lo": []float64{10, 10}, "hi": []float64{30, 30}},
		"sample": map[string]any{"n": 5, "seed": 1},
	})
	resp, err := http.Post(ts.URL+"/v1/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}

	epoch1, live1, reclaimed1, inflight1 := readStats()
	if epoch1 != epoch0+1 {
		t.Fatalf("epoch after insert = %d, want %d", epoch1, epoch0+1)
	}
	if live1 != 1 {
		t.Fatalf("live versions after insert = %d, want 1", live1)
	}
	if reclaimed1 < 1 {
		t.Fatalf("reclaimed counter = %d, want >= 1", reclaimed1)
	}
	if inflight1 != 0 {
		t.Fatalf("idle in-flight readers = %d, want 0", inflight1)
	}
}

// TestServeDegradedMode drives the whole degraded-mode state machine over
// HTTP against an injected disk-full fault: writes hit 503 with Retry-After,
// reads keep serving off the last MVCC version, /v1/healthz and /v1/stats
// report degraded with the cause, and a successful /v1/checkpoint after the
// fault clears re-arms the write path.
func TestServeDegradedMode(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	db := pvoronoi.NewDB(pvoronoi.NewRect(pvoronoi.Point{0, 0}, pvoronoi.Point{1000, 1000}))
	for i := 0; i < 40; i++ {
		lo := pvoronoi.Point{rng.Float64() * 950, rng.Float64() * 950}
		region := pvoronoi.NewRect(lo, pvoronoi.Point{lo[0] + 10, lo[1] + 10})
		if err := db.Add(&pvoronoi.Object{ID: pvoronoi.ID(i), Region: region}); err != nil {
			t.Fatal(err)
		}
	}
	ffs := vfs.NewFaultFS(nil)
	opts := pvoronoi.DefaultOptions()
	opts.MemBudget = 1 << 18
	opts.FS = ffs
	d, err := pvoronoi.OpenDurable(dir, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ts := httptest.NewServer(newDurableServer(d).routes())
	defer ts.Close()

	insert := func(id int) (*http.Response, map[string]json.RawMessage) {
		return postJSON(t, ts, "/v1/insert", map[string]any{
			"id":     id,
			"region": map[string]any{"lo": []float64{400, 400}, "hi": []float64{420, 420}},
		})
	}
	health := func() (string, string) {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Status string `json:"status"`
			Cause  string `json:"cause"`
		}
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return h.Status, h.Cause
	}

	// Healthy baseline.
	if resp, out := insert(9000); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy insert status %d: %s", resp.StatusCode, out["error"])
	}
	if st, _ := health(); st != "ok" {
		t.Fatalf("healthz before fault: %q", st)
	}

	// Disk full: the WAL append fail-stops, the write gets 503 + Retry-After.
	ffs.SetWriteBudget(0)
	resp, out := insert(9001)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert under ENOSPC: status %d (%s), want 503", resp.StatusCode, out["error"])
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if d.DB().Get(9001) != nil {
		t.Fatal("failed insert is visible")
	}

	// Degraded is sticky: the next write is refused up front.
	if resp, _ := insert(9002); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second insert while degraded: status %d, want 503", resp.StatusCode)
	}
	if st, cause := health(); st != "degraded" || cause == "" {
		t.Fatalf("healthz under fault: status %q cause %q", st, cause)
	}

	// Reads keep flowing off the last published version.
	resp, out = postJSON(t, ts, "/v1/possiblenn", map[string]any{"point": []float64{500, 500}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read while degraded: status %d (%s)", resp.StatusCode, out["error"])
	}
	resp, _ = postJSON(t, ts, "/v1/query", map[string]any{"point": []float64{500, 500}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query while degraded: status %d", resp.StatusCode)
	}

	// Stats surface the degradation.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Status  string `json:"status"`
		Cause   string `json:"degraded_cause"`
		Durable struct {
			WALHealthy bool `json:"wal_healthy"`
		} `json:"durable"`
	}
	err = json.NewDecoder(statsResp.Body).Decode(&stats)
	statsResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Status != "degraded" || stats.Cause == "" || stats.Durable.WALHealthy {
		t.Fatalf("stats under fault: %+v", stats)
	}

	// Checkpoint while the disk is still full fails and stays degraded.
	if resp, _ := postJSON(t, ts, "/v1/checkpoint", map[string]any{}); resp.StatusCode == http.StatusOK {
		t.Fatal("checkpoint succeeded while the disk is full")
	}
	if st, _ := health(); st != "degraded" {
		t.Fatal("failed checkpoint cleared degraded mode")
	}

	// Operator frees the disk; a successful checkpoint re-arms writes.
	ffs.ClearFaults()
	resp, out = postJSON(t, ts, "/v1/checkpoint", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-arm checkpoint status %d: %s", resp.StatusCode, out["error"])
	}
	if st, _ := health(); st != "ok" {
		t.Fatal("healthz still degraded after successful checkpoint")
	}
	resp, out = insert(9003)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert after re-arm: status %d (%s)", resp.StatusCode, out["error"])
	}
	if d.DB().Get(9003) == nil {
		t.Fatal("post-re-arm insert not applied")
	}
}

// TestServeAdmissionShedding fills the admission semaphore and checks new
// work is shed with 503 while health and stats stay reachable.
func TestServeAdmissionShedding(t *testing.T) {
	ix := testIndex(t, 60)
	s := newServer(ix)
	s.maxInflight = 2
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// Occupy every admission slot (requests park in the semaphore channel,
	// so filling it directly models two stuck in-flight requests).
	s.inflight <- struct{}{}
	s.inflight <- struct{}{}

	resp, _ := postJSON(t, ts, "/v1/possiblenn", map[string]any{"point": []float64{500, 500}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query at capacity: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response without Retry-After")
	}
	// Operator endpoints bypass admission.
	hr, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz at capacity: %v %d", err, hr.StatusCode)
	}
	hr.Body.Close()
	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil || sr.StatusCode != http.StatusOK {
		t.Fatalf("stats at capacity: %v %d", err, sr.StatusCode)
	}
	sr.Body.Close()

	// Slots free up; service resumes.
	<-s.inflight
	<-s.inflight
	resp, _ = postJSON(t, ts, "/v1/possiblenn", map[string]any{"point": []float64{500, 500}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after drain: status %d", resp.StatusCode)
	}
}

// TestServeRequestTimeout proves the per-request deadline reaches the batch
// query pool: an already-expired deadline turns into 504, not a hang.
func TestServeRequestTimeout(t *testing.T) {
	ix := testIndex(t, 60)
	s := newServer(ix)
	s.reqTimeout = time.Nanosecond
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	resp, _ := postJSON(t, ts, "/v1/possibleknnbatch", map[string]any{
		"points": [][]float64{{100, 100}, {500, 500}, {900, 900}},
		"k":      2,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired batch: status %d, want 504", resp.StatusCode)
	}
}

// TestStatsAdjacencyRefinement checks the /v1/stats adjacency block exposes
// the hub-shape distributions (degree and UBR-volume percentiles) and the
// refinement subsystem's lifetime counters. The index is built with an
// aggressive refinement budget (every row qualifies) so the counters are
// provably non-zero.
func TestStatsAdjacencyRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := pvoronoi.NewDB(pvoronoi.NewRect(pvoronoi.Point{0, 0}, pvoronoi.Point{1000, 1000}))
	for i := 0; i < 50; i++ {
		lo := pvoronoi.Point{rng.Float64() * 950, rng.Float64() * 950}
		region := pvoronoi.NewRect(lo, pvoronoi.Point{lo[0] + 5 + rng.Float64()*30, lo[1] + 5 + rng.Float64()*30})
		if err := db.Add(&pvoronoi.Object{ID: pvoronoi.ID(i), Region: region}); err != nil {
			t.Fatal(err)
		}
	}
	opts := pvoronoi.DefaultOptions()
	opts.K = 20
	opts.KPartition = 3
	opts.KGlobal = 40
	opts.Refine.TopFraction = 1
	opts.Refine.MinDegree = -1 // every row is a refinement target
	ix, err := pvoronoi.Build(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(ix).routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Adjacency struct {
			Rows        int64    `json:"rows"`
			Edges       int64    `json:"edges"`
			DegreeP50   int64    `json:"degree_p50"`
			DegreeP90   int64    `json:"degree_p90"`
			DegreeMax   int64    `json:"degree_max"`
			UBRVolP50   *float64 `json:"ubr_vol_p50"`
			UBRVolP90   *float64 `json:"ubr_vol_p90"`
			UBRVolMax   *float64 `json:"ubr_vol_max"`
			RowsRefined int64    `json:"rows_refined"`
			ClipPasses  int64    `json:"clip_passes"`
			BudgetSpent int64    `json:"refine_budget_spent"`
		} `json:"adjacency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	adj := stats.Adjacency
	if adj.Rows != 50 {
		t.Fatalf("adjacency rows = %d, want 50", adj.Rows)
	}
	if adj.DegreeP50 < 1 || adj.DegreeP90 < adj.DegreeP50 || adj.DegreeMax < adj.DegreeP90 {
		t.Fatalf("degree distribution not ordered: p50=%d p90=%d max=%d",
			adj.DegreeP50, adj.DegreeP90, adj.DegreeMax)
	}
	if adj.UBRVolP50 == nil || adj.UBRVolP90 == nil || adj.UBRVolMax == nil {
		t.Fatal("UBR volume distribution missing from adjacency block")
	}
	if *adj.UBRVolP50 <= 0 || *adj.UBRVolMax < *adj.UBRVolP90 || *adj.UBRVolP90 < *adj.UBRVolP50 {
		t.Fatalf("UBR volume distribution not ordered: p50=%g p90=%g max=%g",
			*adj.UBRVolP50, *adj.UBRVolP90, *adj.UBRVolMax)
	}
	if adj.RowsRefined < 1 || adj.BudgetSpent < 1 {
		t.Fatalf("refinement counters empty: rows_refined=%d budget=%d clips=%d",
			adj.RowsRefined, adj.BudgetSpent, adj.ClipPasses)
	}
	if adj.ClipPasses < adj.RowsRefined {
		t.Fatalf("clip passes %d < rows refined %d (every refined row is clipped)",
			adj.ClipPasses, adj.RowsRefined)
	}
}
