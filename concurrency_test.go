package pvoronoi

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentQueriesWithWriter hammers the index with parallel readers —
// Query, QueryBatch, PossibleNN, PossibleKNN, GroupNN — while one writer
// goroutine interleaves Insert and Delete of a churn set. Under -race this
// is the serving layer's core safety guarantee; without the race detector it
// still checks that every read observes a consistent index (probabilities
// sum to 1, no errors from half-applied updates).
func TestConcurrentQueriesWithWriter(t *testing.T) {
	db := buildSmallDB(t, 120, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}

	const churn = 20 // IDs 1000.. cycle through insert/delete
	makeChurnObject := func(rng *rand.Rand, id ID) *Object {
		lo := Point{rng.Float64() * 950, rng.Float64() * 950}
		region := NewRect(lo, Point{lo[0] + 5 + rng.Float64()*30, lo[1] + 5 + rng.Float64()*30})
		return &Object{ID: id, Region: region, Instances: SampleUniform(region, 10, int64(id))}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: insert a churn object, then delete it, round-robin.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for round := 0; round < 8; round++ {
			for i := 0; i < churn; i++ {
				id := ID(1000 + i)
				if err := ix.Insert(makeChurnObject(rng, id)); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < churn; i++ {
				if err := ix.Delete(ID(1000 + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}
		close(stop)
	}()

	// Readers: single queries plus small batches until the writer finishes.
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			randPoint := func() Point {
				return Point{rng.Float64() * 1000, rng.Float64() * 1000}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randPoint()
				results, err := ix.Query(q)
				if err != nil {
					t.Error(err)
					return
				}
				var sum float64
				for _, res := range results {
					sum += res.Prob
				}
				if len(results) > 0 && (sum < 0.999 || sum > 1.001) {
					t.Errorf("inconsistent read: probabilities sum to %g", sum)
					return
				}
				if _, err := ix.PossibleNN(randPoint()); err != nil {
					t.Error(err)
					return
				}
				batch := []Point{randPoint(), randPoint(), randPoint()}
				if _, err := ix.QueryBatch(batch, 2); err != nil {
					t.Error(err)
					return
				}
				if _, err := ix.PossibleKNN(randPoint(), 3); err != nil {
					t.Error(err)
					return
				}
				if _, err := ix.GroupNN([]Point{randPoint(), randPoint()}, AggSum); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()

	// After all churn objects are gone, queries must agree with a fresh
	// build over the surviving database.
	if db.Len() != 120 {
		t.Fatalf("database has %d objects after churn, want 120", db.Len())
	}
}

// TestBatchMatchesSequential checks that QueryBatch and PossibleNNBatch
// return, position for position, exactly what sequential calls return.
func TestBatchMatchesSequential(t *testing.T) {
	db := buildSmallDB(t, 100, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	qs := make([]Point, 60)
	for i := range qs {
		qs[i] = Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}

	batchResults, err := ix.QueryBatch(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	batchCands, err := ix.PossibleNNBatch(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batchResults) != len(qs) || len(batchCands) != len(qs) {
		t.Fatalf("batch lengths %d/%d, want %d", len(batchResults), len(batchCands), len(qs))
	}
	for i, q := range qs {
		seq, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, batchResults[i]) {
			t.Fatalf("query %d: batch result differs from sequential\nbatch: %v\nseq:   %v", i, batchResults[i], seq)
		}
		seqCands, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seqCands, batchCands[i]) {
			t.Fatalf("query %d: batch candidates differ from sequential", i)
		}
	}
}

// TestBatchErrorAborts checks that an out-of-domain point fails the whole
// batch rather than returning partial results.
func TestBatchErrorAborts(t *testing.T) {
	db := buildSmallDB(t, 40, false)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	qs := []Point{{10, 10}, {-5000, -5000}, {20, 20}}
	if _, err := ix.PossibleNNBatch(qs, 2); err == nil {
		t.Fatal("expected error for out-of-domain point")
	}
}

// TestQueryCostReporting checks the per-query cost plumbing: candidate
// counts match and leaf I/O is at least one page.
func TestQueryCostReporting(t *testing.T) {
	db := buildSmallDB(t, 80, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := Point{500, 500}
	cands, cost, err := ix.PossibleNNWithCost(q)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Candidates != len(cands) {
		t.Fatalf("cost.Candidates = %d, want %d", cost.Candidates, len(cands))
	}
	if cost.LeafIO < 1 {
		t.Fatalf("cost.LeafIO = %d, want >= 1", cost.LeafIO)
	}
	results, qcost, err := ix.QueryWithCost(q)
	if err != nil {
		t.Fatal(err)
	}
	if qcost.Candidates != len(cands) {
		t.Fatalf("QueryWithCost candidates = %d, want %d", qcost.Candidates, len(cands))
	}
	seq, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, results) {
		t.Fatal("QueryWithCost results differ from Query")
	}
}
