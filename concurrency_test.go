package pvoronoi

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentQueriesWithWriter hammers the index with parallel readers —
// Query, QueryBatch, PossibleNN, PossibleKNN, GroupNN — while one writer
// goroutine interleaves Insert and Delete of a churn set. Under -race this
// is the serving layer's core safety guarantee; without the race detector it
// still checks that every read observes a consistent index (probabilities
// sum to 1, no errors from half-applied updates).
func TestConcurrentQueriesWithWriter(t *testing.T) {
	db := buildSmallDB(t, 120, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}

	const churn = 20 // IDs 1000.. cycle through insert/delete
	makeChurnObject := func(rng *rand.Rand, id ID) *Object {
		lo := Point{rng.Float64() * 950, rng.Float64() * 950}
		region := NewRect(lo, Point{lo[0] + 5 + rng.Float64()*30, lo[1] + 5 + rng.Float64()*30})
		return &Object{ID: id, Region: region, Instances: SampleUniform(region, 10, int64(id))}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: insert a churn object, then delete it, round-robin.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for round := 0; round < 8; round++ {
			for i := 0; i < churn; i++ {
				id := ID(1000 + i)
				if err := ix.Insert(makeChurnObject(rng, id)); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < churn; i++ {
				if err := ix.Delete(ID(1000 + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}
		close(stop)
	}()

	// Readers: single queries plus small batches until the writer finishes.
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			randPoint := func() Point {
				return Point{rng.Float64() * 1000, rng.Float64() * 1000}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randPoint()
				results, err := ix.Query(q)
				if err != nil {
					t.Error(err)
					return
				}
				var sum float64
				for _, res := range results {
					sum += res.Prob
				}
				if len(results) > 0 && (sum < 0.999 || sum > 1.001) {
					t.Errorf("inconsistent read: probabilities sum to %g", sum)
					return
				}
				if _, err := ix.PossibleNN(randPoint()); err != nil {
					t.Error(err)
					return
				}
				batch := []Point{randPoint(), randPoint(), randPoint()}
				if _, err := ix.QueryBatch(batch, 2); err != nil {
					t.Error(err)
					return
				}
				if _, err := ix.PossibleKNN(randPoint(), 3); err != nil {
					t.Error(err)
					return
				}
				if _, err := ix.GroupNN([]Point{randPoint(), randPoint()}, AggSum); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()

	// After all churn objects are gone, the current version must hold
	// exactly the original survivors.
	if n := ix.Len(); n != 120 {
		t.Fatalf("index has %d objects after churn, want 120", n)
	}
}

// TestRecordCacheNeverStale is the record cache's deterministic staleness
// oracle: after every Insert/Delete — including re-inserting the same ID
// with a different pdf, the access pattern most likely to surface a missed
// invalidation — queries through the (warm-cached) index must agree exactly
// with a freshly built index over the same database.
func TestRecordCacheNeverStale(t *testing.T) {
	db := buildSmallDB(t, 60, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	qs := []Point{{500, 500}, {120, 780}, {903, 88}, {333, 333}}
	warmAndCheck := func(step string) {
		t.Helper()
		// Rebuild from the current version's database (updates publish new
		// versions; the bootstrap handle stays at version 1).
		fresh, err := Build(ix.DB(), testOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			// Query twice so the second answer is served from a warm cache.
			if _, err := ix.Query(q); err != nil {
				t.Fatal(err)
			}
			got, err := ix.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: cached query at %v diverged from fresh index\ncached: %v\nfresh:  %v",
					step, q, got, want)
			}
		}
	}

	warmAndCheck("initial build")

	region := NewRect(Point{480, 480}, Point{520, 520})
	const churnID = ID(7777)
	// pdf A: all mass at the region's center.
	objA := &Object{ID: churnID, Region: region, Instances: []Instance{
		{Pos: Point{500, 500}, Prob: 1},
	}}
	if err := ix.Insert(objA); err != nil {
		t.Fatal(err)
	}
	warmAndCheck("insert pdf A")

	if err := ix.Delete(churnID); err != nil {
		t.Fatal(err)
	}
	warmAndCheck("delete")

	// pdf B: same ID, same region, mass split across two corners. A stale
	// cached record would still answer with pdf A here.
	objB := &Object{ID: churnID, Region: region, Instances: []Instance{
		{Pos: Point{481, 481}, Prob: 0.5},
		{Pos: Point{519, 519}, Prob: 0.5},
	}}
	if err := ix.Insert(objB); err != nil {
		t.Fatal(err)
	}
	warmAndCheck("re-insert pdf B")

	hitsBefore := ix.RecordCache()
	if hitsBefore.Hits == 0 {
		t.Fatal("record cache recorded no hits — the staleness oracle never exercised the cache")
	}
}

// TestRecordCacheConcurrentChurn hammers the record cache's invalidation
// path under -race: readers run full PNNQs (checking every result's
// probabilities still sum to 1) while a writer cycles the same IDs through
// insert/delete with fresh pdfs each round — so any cached record that
// survives an invalidation is served visibly stale.
func TestRecordCacheConcurrentChurn(t *testing.T) {
	db := buildSmallDB(t, 100, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}

	const churn = 12
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(5))
		for round := 0; round < 10; round++ {
			for i := 0; i < churn; i++ {
				id := ID(2000 + i)
				lo := Point{rng.Float64() * 950, rng.Float64() * 950}
				region := NewRect(lo, Point{lo[0] + 5 + rng.Float64()*30, lo[1] + 5 + rng.Float64()*30})
				o := &Object{
					ID:     id,
					Region: region,
					// Fresh pdf each round: stale cache entries would leak
					// the previous round's instances.
					Instances: SampleUniform(region, 8, int64(round*1000+i)),
				}
				if err := ix.Insert(o); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < churn; i++ {
				if err := ix.Delete(ID(2000 + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := Point{rng.Float64() * 1000, rng.Float64() * 1000}
				results, cost, err := ix.QueryWithCost(q)
				if err != nil {
					t.Error(err)
					return
				}
				var sum float64
				for _, res := range results {
					sum += res.Prob
				}
				if len(results) > 0 && (sum < 0.999 || sum > 1.001) {
					t.Errorf("stale read suspected: probabilities sum to %g", sum)
					return
				}
				if cost.CacheHits+cost.CacheMisses != cost.Candidates {
					t.Errorf("cache accounting: %d hits + %d misses != %d candidates",
						cost.CacheHits, cost.CacheMisses, cost.Candidates)
					return
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()

	// Post-churn, the warm index must agree exactly with a fresh build over
	// the current version's database.
	fresh, err := Build(ix.DB(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		q := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("post-churn query at %v diverged from fresh index", q)
		}
	}
}

// TestBatchMatchesSequential checks that QueryBatch and PossibleNNBatch
// return, position for position, exactly what sequential calls return.
func TestBatchMatchesSequential(t *testing.T) {
	db := buildSmallDB(t, 100, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	qs := make([]Point, 60)
	for i := range qs {
		qs[i] = Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}

	batchResults, err := ix.QueryBatch(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	batchCands, err := ix.PossibleNNBatch(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batchResults) != len(qs) || len(batchCands) != len(qs) {
		t.Fatalf("batch lengths %d/%d, want %d", len(batchResults), len(batchCands), len(qs))
	}
	for i, q := range qs {
		seq, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, batchResults[i]) {
			t.Fatalf("query %d: batch result differs from sequential\nbatch: %v\nseq:   %v", i, batchResults[i], seq)
		}
		seqCands, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seqCands, batchCands[i]) {
			t.Fatalf("query %d: batch candidates differ from sequential", i)
		}
	}
}

// TestBatchErrorAborts checks that an out-of-domain point fails the whole
// batch rather than returning partial results.
func TestBatchErrorAborts(t *testing.T) {
	db := buildSmallDB(t, 40, false)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	qs := []Point{{10, 10}, {-5000, -5000}, {20, 20}}
	if _, err := ix.PossibleNNBatch(qs, 2); err == nil {
		t.Fatal("expected error for out-of-domain point")
	}
}

// TestQueryCostReporting checks the per-query cost plumbing: candidate
// counts match and leaf I/O is at least one page.
func TestQueryCostReporting(t *testing.T) {
	db := buildSmallDB(t, 80, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := Point{500, 500}
	cands, cost, err := ix.PossibleNNWithCost(q)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Candidates != len(cands) {
		t.Fatalf("cost.Candidates = %d, want %d", cost.Candidates, len(cands))
	}
	if cost.LeafIO < 1 {
		t.Fatalf("cost.LeafIO = %d, want >= 1", cost.LeafIO)
	}
	results, qcost, err := ix.QueryWithCost(q)
	if err != nil {
		t.Fatal(err)
	}
	if qcost.Candidates != len(cands) {
		t.Fatalf("QueryWithCost candidates = %d, want %d", qcost.Candidates, len(cands))
	}
	seq, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, results) {
		t.Fatal("QueryWithCost results differ from Query")
	}
}
