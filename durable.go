package pvoronoi

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pvoronoi/internal/dataset"
	"pvoronoi/internal/uncertain"
	"pvoronoi/internal/vfs"
	"pvoronoi/internal/wal"
)

// Durable is an Index whose updates survive process crashes. Every write
// batch is appended to a write-ahead log and fsynced before it applies;
// Checkpoint persists a consistent (database, index) snapshot pair and
// trims the log; OpenDurable restores the newest readable checkpoint and
// replays the log's tail. Queries and updates go through the embedded Index
// exactly as in the in-memory mode.
//
// Directory layout:
//
//	dir/CURRENT          name of the active checkpoint (atomic rename)
//	dir/ckpt-<seq>.db    database snapshot at WAL sequence <seq>
//	dir/ckpt-<seq>.pvidx index snapshot at WAL sequence <seq>
//	dir/wal/seg-*.wal    write-ahead-log segments
//
// Checkpoint payloads are wrapped in a checksummed envelope (magic + CRC32 +
// length footer), and the newest Options.CheckpointRetain checkpoints are
// kept on disk: a bit-flipped or torn newest checkpoint is detected on load
// and recovery falls back to the previous one plus a longer WAL replay —
// the WAL is only trimmed below the oldest retained checkpoint, so the
// fallback's replay window always exists.
type Durable struct {
	*Index
	dir    string
	log    *wal.Log
	fs     vfs.FS
	retain int

	ckptMu sync.Mutex
	// lastCkptSeq/lastCkptEpoch identify the state the newest checkpoint
	// covers: its WAL sequence and the index's MVCC write epoch. The epoch
	// replaces the page store's mutation counter as the "anything changed?"
	// signal — the store now also mutates on version reclamation, which
	// changes no logical state.
	lastCkptSeq   uint64
	lastCkptEpoch uint64
	hasCkpt       bool
	closed        bool

	recovery RecoveryStats
}

// RecoveryStats describes what OpenDurable had to do to restore state.
type RecoveryStats struct {
	// Rebuilt is true when no checkpoint existed and the index was built
	// from the bootstrap database.
	Rebuilt bool
	// SnapshotSeq is the WAL sequence the loaded checkpoint covered (0 when
	// rebuilt).
	SnapshotSeq uint64
	// Replayed counts the WAL updates applied on top of the snapshot.
	Replayed int
	// UsedCheckpoint is the base name of the checkpoint recovery loaded
	// ("" when rebuilt from the bootstrap database).
	UsedCheckpoint string
	// CorruptCheckpoints lists checkpoint base names that failed envelope
	// or checksum verification (bit rot, torn writes) and were skipped in
	// favor of an older fallback. Non-empty means the store survived
	// checkpoint corruption — worth surfacing to an operator.
	CorruptCheckpoints []string
	// DroppedWALRecords counts intact WAL records stranded beyond a corrupt
	// mid-segment frame and therefore dropped (see wal.OpenStats). Non-zero
	// means acknowledged writes were lost to log corruption — loud, never
	// silent.
	DroppedWALRecords int
	// TornWALBytes is how many trailing bytes of the newest WAL segment
	// were discarded as a crash artifact.
	TornWALBytes int64
	// UncommittedWALRecords counts intact update frames truncated from the
	// log's tail because their batch's sealing commit record never reached
	// disk (a group commit torn exactly on a frame boundary). They were
	// never acknowledged, so this is crash repair, not data loss.
	UncommittedWALRecords int
}

// CheckpointStats describes one Checkpoint call.
type CheckpointStats struct {
	// Seq is the WAL sequence the checkpoint covers.
	Seq uint64
	// Skipped is true when the state was unchanged since the last
	// checkpoint (per the page store's mutation epoch) and nothing was
	// written.
	Skipped bool
	// Duration is the wall time spent writing the snapshot pair.
	Duration time.Duration
}

// DurableStats reports the durable layer's counters for monitoring.
type DurableStats struct {
	WALSeq        uint64 // last applied WAL sequence
	WALAppends    int64  // records logged
	WALCommits    int64  // group commits (one buffered write each)
	WALSyncs      int64  // fsyncs issued
	WALBytes      int64  // log bytes written
	WALSegments   int    // segment files on disk
	WALHealthy    bool   // false after an unrecovered WAL write/fsync failure
	CheckpointSeq uint64 // WAL sequence of the newest checkpoint
	StoreEpoch    int64  // page store mutation epoch
	IndexEpoch    uint64 // MVCC write epoch the skip check keys on
}

const (
	currentFile = "CURRENT"

	// ckptMagic heads every checkpoint file; ckptFooter trails it with
	// crc32(payload) LE32 followed by len(payload) LE64. The length makes a
	// truncated file distinguishable from a checksum mismatch.
	ckptMagic  = "PVCKPT1\n"
	ckptFooter = 4 + 8

	defaultCheckpointRetain = 2
)

// OpenDurable opens (or initializes) a durable index in dir.
//
// With an existing checkpoint, the bootstrap database db is ignored: the
// newest checkpoint whose envelope verifies is loaded and the WAL tail
// beyond its snapshot is replayed; a corrupt newest checkpoint falls back to
// the previous retained one (recorded in RecoveryStats.CorruptCheckpoints).
// If checkpoints exist but none verifies, OpenDurable fails loudly rather
// than silently rebuilding over acknowledged data. Without any checkpoint
// (first boot, or a crash before the first checkpoint completed), the index
// is built from db with opts and any WAL records from a previous
// uncheckpointed run are replayed on top — so acknowledged updates survive
// even that window, provided the caller supplies the same bootstrap database
// each time (same dataset file or generator seed).
//
// Open finishes by writing a fresh checkpoint whenever recovery changed
// anything, so the next boot replays as little as possible.
func OpenDurable(dir string, db *DB, opts Options) (*Durable, error) {
	fs := opts.FS
	if fs == nil {
		fs = vfs.OS
	}
	retain := opts.CheckpointRetain
	if retain <= 0 {
		retain = defaultCheckpointRetain
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Sealed: every append this layer issues ends in a commit or checkpoint
	// barrier, so Open may truncate barrier-less tail frames (a group commit
	// torn exactly on a frame boundary) instead of leaving them to be
	// adopted by a later batch's commit on the next replay.
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{FS: fs, Sealed: true})
	if err != nil {
		return nil, err
	}
	d := &Durable{dir: dir, log: log, fs: fs, retain: retain}
	walScan := log.OpenStats()
	d.recovery.DroppedWALRecords = walScan.DroppedRecords
	d.recovery.TornWALBytes = walScan.TornBytes
	d.recovery.UncommittedWALRecords = walScan.UncommittedRecords

	// Candidate checkpoints, newest first. CURRENT is only a hint — the
	// envelope checksum, not the pointer, decides what is loadable, so a
	// crash between the data-file renames and the CURRENT update (or a
	// corrupt CURRENT) still recovers.
	cands := listCheckpoints(fs, dir)
	var ix *Index
	for _, c := range cands {
		loaded, err := loadCheckpoint(fs, dir, c.base)
		if err != nil {
			d.recovery.CorruptCheckpoints = append(d.recovery.CorruptCheckpoints, c.base)
			continue
		}
		snapSeq := loaded.inner.WALSeq()
		// Gap check: replaying from this snapshot needs every WAL record
		// beyond snapSeq. If the log's head was truncated past that point
		// the store cannot reach a consistent state — fail loudly instead
		// of resurrecting a stale prefix as if it were current.
		if first := log.FirstSeq(); first != 0 && first > snapSeq+1 {
			log.Close()
			return nil, fmt.Errorf("pvoronoi: checkpoint %s is at wal seq %d but the log starts at %d: replay window lost", c.base, snapSeq, first)
		}
		ix = loaded
		d.recovery.SnapshotSeq = snapSeq
		d.recovery.UsedCheckpoint = c.base
		break
	}
	if ix == nil {
		if len(cands) > 0 {
			log.Close()
			return nil, fmt.Errorf("pvoronoi: all %d checkpoints in %s failed verification (%s): refusing to rebuild over acknowledged data",
				len(cands), dir, strings.Join(d.recovery.CorruptCheckpoints, ", "))
		}
		if db == nil {
			log.Close()
			return nil, fmt.Errorf("pvoronoi: OpenDurable on an empty %s requires a bootstrap database", dir)
		}
		ix, err = BuildParallel(db, opts, 0)
		if err != nil {
			log.Close()
			return nil, err
		}
		d.recovery.Rebuilt = true
	}
	ix.inner.AttachWAL(log)
	replayed, err := ix.inner.Recover()
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("pvoronoi: wal replay: %w", err)
	}
	d.recovery.Replayed = replayed
	d.Index = ix

	if d.recovery.Rebuilt || replayed > 0 || len(d.recovery.CorruptCheckpoints) > 0 {
		if _, err := d.Checkpoint(); err != nil {
			log.Close()
			return nil, fmt.Errorf("pvoronoi: initial checkpoint: %w", err)
		}
	} else {
		d.lastCkptSeq = ix.inner.WALSeq()
		d.lastCkptEpoch = ix.inner.Epoch()
		d.hasCkpt = true
	}
	return d, nil
}

// ckptRef names one on-disk checkpoint pair.
type ckptRef struct {
	seq  uint64
	base string
}

// listCheckpoints returns the checkpoint pairs present in dir, newest first.
func listCheckpoints(fs vfs.FS, dir string) []ckptRef {
	matches, _ := fs.Glob(filepath.Join(dir, "ckpt-*.pvidx"))
	var out []ckptRef
	for _, m := range matches {
		name := filepath.Base(m)
		var seq uint64
		if _, err := fmt.Sscanf(name, "ckpt-%d.pvidx", &seq); err != nil {
			continue // ckpt-tmp.* and strays
		}
		out = append(out, ckptRef{seq: seq, base: strings.TrimSuffix(name, ".pvidx")})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out
}

// loadCheckpoint reads and verifies one checkpoint pair, returning the
// restored index. Any envelope, checksum, or decode failure is reported —
// the caller falls back to an older checkpoint.
func loadCheckpoint(fs vfs.FS, dir, base string) (*Index, error) {
	dbPayload, err := readSealed(fs, filepath.Join(dir, base+".db"))
	if err != nil {
		return nil, err
	}
	snapDB, err := dataset.LoadFrom(bytes.NewReader(dbPayload))
	if err != nil {
		return nil, fmt.Errorf("pvoronoi: decoding checkpoint database %s: %w", base, err)
	}
	ixPayload, err := readSealed(fs, filepath.Join(dir, base+".pvidx"))
	if err != nil {
		return nil, err
	}
	ix, err := LoadIndex(bytes.NewReader(ixPayload), snapDB)
	if err != nil {
		return nil, fmt.Errorf("pvoronoi: decoding checkpoint index %s: %w", base, err)
	}
	return ix, nil
}

// Recovery reports what OpenDurable did.
func (d *Durable) Recovery() RecoveryStats { return d.recovery }

// HasCheckpoint reports whether dir holds a durable checkpoint — i.e.
// whether OpenDurable would recover from it rather than need a bootstrap
// database. Callers can use it to skip loading bootstrap data on restarts.
// It inspects the real OS filesystem; a store running on a custom
// Options.FS must use HasCheckpointFS with that filesystem instead.
func HasCheckpoint(dir string) bool {
	return HasCheckpointFS(vfs.OS, dir)
}

// HasCheckpointFS is HasCheckpoint on an explicit filesystem — pass the
// same Options.FS the store runs on (fault-injection harnesses, custom
// VFS layers).
func HasCheckpointFS(fs vfs.FS, dir string) bool {
	return len(listCheckpoints(fs, dir)) > 0
}

// WALHealthy reports whether the write-ahead log can be expected to accept
// the next append. False after a write or fsync failure (disk full, I/O
// error, fsyncgate-poisoned file) until a successful Checkpoint re-arms the
// log — the serving layer uses this to enter and leave degraded read-only
// mode.
func (d *Durable) WALHealthy() bool { return d.log.Healthy() }

// Checkpoint persists a consistent snapshot of the database and index,
// updates CURRENT atomically, prunes checkpoints beyond the retention
// count, and trims WAL segments below the oldest retained checkpoint. If
// nothing changed since the last checkpoint (same index write epoch and WAL
// sequence) it is a no-op. Safe to call while queries and updates are
// running — the snapshot pair reads one pinned MVCC version and serializes
// entirely off-lock, so a checkpoint concurrent with ApplyBatch blocks
// neither: writers keep publishing while the pinned version streams to disk.
//
// Checkpoint is also the re-arm point after a storage fault: a WAL that
// fail-stopped (disk full, fsync error) is rotated onto a fresh segment
// first, so a successful Checkpoint call certifies the whole write path is
// healthy again.
func (d *Durable) Checkpoint() (CheckpointStats, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.closed {
		return CheckpointStats{}, fmt.Errorf("pvoronoi: checkpoint on closed durable index")
	}
	if !d.log.Healthy() {
		// Never retry a failed fsync on the same file — rotate to a fresh
		// segment or stay fail-stopped.
		if err := d.log.Rearm(); err != nil {
			return CheckpointStats{}, fmt.Errorf("pvoronoi: wal still unhealthy: %w", err)
		}
	}
	start := time.Now()
	if d.hasCkpt &&
		d.Index.inner.Epoch() == d.lastCkptEpoch &&
		d.Index.inner.WALSeq() == d.lastCkptSeq {
		return CheckpointStats{Seq: d.lastCkptSeq, Skipped: true}, nil
	}

	tmpDB := filepath.Join(d.dir, "ckpt-tmp.db")
	tmpIx := filepath.Join(d.dir, "ckpt-tmp.pvidx")
	iw, err := newSealedWriter(d.fs, tmpIx)
	if err != nil {
		return CheckpointStats{}, err
	}
	// Read the epoch before pinning: a write that lands in between makes
	// the pinned version newer than the recorded epoch, so the next
	// checkpoint re-runs rather than wrongly skipping — always safe.
	epoch := d.Index.inner.Epoch()
	bw := bufio.NewWriter(iw)
	seq, err := d.Index.inner.SnapshotWith(bw, func(db *uncertain.DB) error {
		dw, err := newSealedWriter(d.fs, tmpDB)
		if err != nil {
			return err
		}
		dbw := bufio.NewWriter(dw)
		if err := dataset.SaveTo(db, dbw); err == nil {
			err = dbw.Flush()
		}
		if err != nil {
			dw.Abort()
			return err
		}
		return dw.Commit()
	})
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		iw.Abort()
		d.fs.Remove(tmpDB)
		return CheckpointStats{}, fmt.Errorf("pvoronoi: writing checkpoint: %w", err)
	}
	if err := iw.Commit(); err != nil {
		iw.Abort()
		d.fs.Remove(tmpDB)
		return CheckpointStats{}, fmt.Errorf("pvoronoi: sealing checkpoint: %w", err)
	}

	base := fmt.Sprintf("ckpt-%016d", seq)
	if err := d.fs.Rename(tmpDB, filepath.Join(d.dir, base+".db")); err != nil {
		return CheckpointStats{}, err
	}
	if err := d.fs.Rename(tmpIx, filepath.Join(d.dir, base+".pvidx")); err != nil {
		return CheckpointStats{}, err
	}
	// The renames must be durable before CURRENT names the pair: a crash
	// could otherwise persist the pointer while losing the files it points
	// at. (writeCurrent fsyncs the directory again after its own rename.)
	if err := d.fs.SyncDir(d.dir); err != nil {
		return CheckpointStats{}, err
	}
	if err := writeCurrent(d.fs, d.dir, base); err != nil {
		return CheckpointStats{}, err
	}

	// The checkpoint is durable; record it in the log, prune checkpoints
	// beyond the retention count, and reclaim the log below the oldest
	// retained one — whose replay window must stay intact for fallback.
	if _, _, err := d.log.Append(wal.Entry{Type: wal.TypeCheckpoint, Payload: []byte(base)}); err != nil {
		return CheckpointStats{}, err
	}
	oldestRetained := d.pruneCheckpoints(seq)
	if err := d.log.TruncateBefore(oldestRetained + 1); err != nil {
		return CheckpointStats{}, err
	}

	d.lastCkptSeq = seq
	d.lastCkptEpoch = epoch
	d.hasCkpt = true
	return CheckpointStats{Seq: seq, Duration: time.Since(start)}, nil
}

// pruneCheckpoints keeps the newest retain checkpoints (always including
// newestSeq's) and removes the rest, returning the oldest retained
// sequence. Removal is best-effort — a checkpoint that cannot be removed is
// only wasted space — but any removal is followed by a directory fsync so a
// crash cannot resurrect a pruned checkpoint that the WAL no longer covers.
func (d *Durable) pruneCheckpoints(newestSeq uint64) (oldestRetained uint64) {
	cands := listCheckpoints(d.fs, d.dir) // newest first
	oldestRetained = newestSeq
	removed := false
	for i, c := range cands {
		if i < d.retain {
			if c.seq < oldestRetained {
				oldestRetained = c.seq
			}
			continue
		}
		d.fs.Remove(filepath.Join(d.dir, c.base+".db"))
		d.fs.Remove(filepath.Join(d.dir, c.base+".pvidx"))
		removed = true
	}
	if removed {
		d.fs.SyncDir(d.dir)
	}
	return oldestRetained
}

// Stats returns the durable layer's counters.
func (d *Durable) Stats() DurableStats {
	ws := d.log.Stats()
	d.ckptMu.Lock()
	ckptSeq := d.lastCkptSeq
	d.ckptMu.Unlock()
	return DurableStats{
		WALSeq:        d.Index.inner.WALSeq(),
		WALAppends:    ws.Appends,
		WALCommits:    ws.Commits,
		WALSyncs:      ws.Syncs,
		WALBytes:      ws.Bytes,
		WALSegments:   ws.Segments,
		WALHealthy:    d.log.Healthy(),
		CheckpointSeq: ckptSeq,
		StoreEpoch:    d.Index.inner.Store().Epoch(),
		IndexEpoch:    d.Index.inner.Epoch(),
	}
}

// Close writes a final checkpoint and closes the log. The index remains
// usable for queries but further updates and checkpoints will fail.
func (d *Durable) Close() error {
	d.ckptMu.Lock()
	if d.closed {
		d.ckptMu.Unlock()
		return nil
	}
	d.ckptMu.Unlock()

	_, ckptErr := d.Checkpoint()

	d.ckptMu.Lock()
	d.closed = true
	d.ckptMu.Unlock()

	logErr := d.log.Close()
	if ckptErr != nil {
		return ckptErr
	}
	return logErr
}

// sealedWriter streams a checkpoint payload into its checksummed envelope:
// magic, payload, then (on Commit) a crc32+length footer, flush, and fsync.
type sealedWriter struct {
	fs   vfs.FS
	path string
	f    vfs.File
	crc  hash.Hash32
	n    uint64
	err  error
}

func newSealedWriter(fs vfs.FS, path string) (*sealedWriter, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	sw := &sealedWriter{fs: fs, path: path, f: f, crc: crc32.NewIEEE()}
	if _, err := f.Write([]byte(ckptMagic)); err != nil {
		sw.Abort()
		return nil, err
	}
	return sw, nil
}

func (sw *sealedWriter) Write(p []byte) (int, error) {
	if sw.err != nil {
		return 0, sw.err
	}
	n, err := sw.f.Write(p)
	sw.crc.Write(p[:n])
	sw.n += uint64(n)
	sw.err = err
	return n, err
}

// Commit writes the footer and makes the file durable. The writer is spent
// afterward.
func (sw *sealedWriter) Commit() error {
	if sw.err != nil {
		return sw.err
	}
	var foot [ckptFooter]byte
	binary.LittleEndian.PutUint32(foot[0:4], sw.crc.Sum32())
	binary.LittleEndian.PutUint64(foot[4:12], sw.n)
	_, err := sw.f.Write(foot[:])
	if err == nil {
		err = sw.f.Sync()
	}
	if cerr := sw.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort closes and removes the partial file.
func (sw *sealedWriter) Abort() {
	sw.f.Close()
	sw.fs.Remove(sw.path)
}

// readSealed reads a checkpoint file and verifies its envelope, returning
// the payload. A bad magic, short file, length mismatch (torn write), or
// checksum mismatch (bit rot) is an error — the caller treats the file as
// corrupt and falls back.
func readSealed(fs vfs.FS, path string) ([]byte, error) {
	buf, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) < len(ckptMagic)+ckptFooter || string(buf[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("pvoronoi: %s: bad checkpoint envelope", path)
	}
	payload := buf[len(ckptMagic) : len(buf)-ckptFooter]
	foot := buf[len(buf)-ckptFooter:]
	if got := binary.LittleEndian.Uint64(foot[4:12]); got != uint64(len(payload)) {
		return nil, fmt.Errorf("pvoronoi: %s: checkpoint torn (%d payload bytes, footer says %d)", path, len(payload), got)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(foot[0:4]) {
		return nil, fmt.Errorf("pvoronoi: %s: checkpoint checksum mismatch", path)
	}
	return payload, nil
}

// readCurrent returns the active checkpoint's base name, or "" when none.
// Only used as a health signal these days — recovery trusts envelope
// checksums over the pointer — but kept verifiable for operators and tests.
func readCurrent(fs vfs.FS, dir string) (string, error) {
	buf, err := fs.ReadFile(filepath.Join(dir, currentFile))
	if errors.Is(err, os.ErrNotExist) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	name := strings.TrimSpace(string(buf))
	if name == "" || strings.ContainsAny(name, "/\\") {
		return "", fmt.Errorf("pvoronoi: corrupt %s file %q", currentFile, name)
	}
	return name, nil
}

// writeCurrent atomically points CURRENT at the given checkpoint base name
// and fsyncs the directory so the pointer survives a crash.
func writeCurrent(fs vfs.FS, dir, name string) error {
	tmp := filepath.Join(dir, currentFile+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write([]byte(name + "\n"))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, currentFile)); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}
