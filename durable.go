package pvoronoi

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pvoronoi/internal/dataset"
	"pvoronoi/internal/uncertain"
	"pvoronoi/internal/wal"
)

// Durable is an Index whose updates survive process crashes. Every write
// batch is appended to a write-ahead log and fsynced before it applies;
// Checkpoint persists a consistent (database, index) snapshot pair and
// trims the log; OpenDurable restores the latest checkpoint and replays the
// log's tail. Queries and updates go through the embedded Index exactly as
// in the in-memory mode.
//
// Directory layout:
//
//	dir/CURRENT          name of the active checkpoint (atomic rename)
//	dir/ckpt-<seq>.db    database snapshot at WAL sequence <seq>
//	dir/ckpt-<seq>.pvidx index snapshot at WAL sequence <seq>
//	dir/wal/seg-*.wal    write-ahead-log segments
type Durable struct {
	*Index
	dir string
	log *wal.Log

	ckptMu sync.Mutex
	// lastCkptSeq/lastCkptEpoch identify the state the newest checkpoint
	// covers: its WAL sequence and the index's MVCC write epoch. The epoch
	// replaces the page store's mutation counter as the "anything changed?"
	// signal — the store now also mutates on version reclamation, which
	// changes no logical state.
	lastCkptSeq   uint64
	lastCkptEpoch uint64
	hasCkpt       bool
	closed        bool

	recovery RecoveryStats
}

// RecoveryStats describes what OpenDurable had to do to restore state.
type RecoveryStats struct {
	// Rebuilt is true when no checkpoint existed and the index was built
	// from the bootstrap database.
	Rebuilt bool
	// SnapshotSeq is the WAL sequence the loaded checkpoint covered (0 when
	// rebuilt).
	SnapshotSeq uint64
	// Replayed counts the WAL updates applied on top of the snapshot.
	Replayed int
}

// CheckpointStats describes one Checkpoint call.
type CheckpointStats struct {
	// Seq is the WAL sequence the checkpoint covers.
	Seq uint64
	// Skipped is true when the state was unchanged since the last
	// checkpoint (per the page store's mutation epoch) and nothing was
	// written.
	Skipped bool
	// Duration is the wall time spent writing the snapshot pair.
	Duration time.Duration
}

// DurableStats reports the durable layer's counters for monitoring.
type DurableStats struct {
	WALSeq        uint64 // last applied WAL sequence
	WALAppends    int64  // records logged
	WALCommits    int64  // group commits (one buffered write each)
	WALSyncs      int64  // fsyncs issued
	WALBytes      int64  // log bytes written
	WALSegments   int    // segment files on disk
	CheckpointSeq uint64 // WAL sequence of the newest checkpoint
	StoreEpoch    int64  // page store mutation epoch
	IndexEpoch    uint64 // MVCC write epoch the skip check keys on
}

const currentFile = "CURRENT"

// OpenDurable opens (or initializes) a durable index in dir.
//
// With an existing checkpoint, the bootstrap database db is ignored: the
// checkpointed database and index are loaded and the WAL tail beyond the
// snapshot is replayed. Without one (first boot, or a crash before the
// first checkpoint completed), the index is built from db with opts and any
// WAL records from a previous uncheckpointed run are replayed on top — so
// acknowledged updates survive even that window, provided the caller
// supplies the same bootstrap database each time (same dataset file or
// generator seed).
//
// Open finishes by writing a fresh checkpoint whenever recovery changed
// anything, so the next boot replays as little as possible.
func OpenDurable(dir string, db *DB, opts Options) (*Durable, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
	if err != nil {
		return nil, err
	}
	d := &Durable{dir: dir, log: log}

	name, err := readCurrent(dir)
	if err != nil {
		log.Close()
		return nil, err
	}
	var ix *Index
	if name != "" {
		snapDB, err := dataset.Load(filepath.Join(dir, name+".db"))
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("pvoronoi: loading checkpoint database: %w", err)
		}
		f, err := os.Open(filepath.Join(dir, name+".pvidx"))
		if err != nil {
			log.Close()
			return nil, err
		}
		ix, err = LoadIndex(bufio.NewReader(f), snapDB)
		f.Close()
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("pvoronoi: loading checkpoint index: %w", err)
		}
		d.recovery.SnapshotSeq = ix.inner.WALSeq()
	} else {
		if db == nil {
			log.Close()
			return nil, fmt.Errorf("pvoronoi: OpenDurable on an empty %s requires a bootstrap database", dir)
		}
		ix, err = BuildParallel(db, opts, 0)
		if err != nil {
			log.Close()
			return nil, err
		}
		d.recovery.Rebuilt = true
	}
	ix.inner.AttachWAL(log)
	replayed, err := ix.inner.Recover()
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("pvoronoi: wal replay: %w", err)
	}
	d.recovery.Replayed = replayed
	d.Index = ix

	if d.recovery.Rebuilt || replayed > 0 {
		if _, err := d.Checkpoint(); err != nil {
			log.Close()
			return nil, fmt.Errorf("pvoronoi: initial checkpoint: %w", err)
		}
	} else {
		d.lastCkptSeq = ix.inner.WALSeq()
		d.lastCkptEpoch = ix.inner.Epoch()
		d.hasCkpt = true
	}
	return d, nil
}

// Recovery reports what OpenDurable did.
func (d *Durable) Recovery() RecoveryStats { return d.recovery }

// HasCheckpoint reports whether dir holds a durable checkpoint — i.e.
// whether OpenDurable would recover from it rather than need a bootstrap
// database. Callers can use it to skip loading bootstrap data on restarts.
func HasCheckpoint(dir string) bool {
	name, err := readCurrent(dir)
	return err == nil && name != ""
}

// Checkpoint persists a consistent snapshot of the database and index,
// updates CURRENT atomically, and trims WAL segments the snapshot made
// obsolete. If nothing changed since the last checkpoint (same index write
// epoch and WAL sequence) it is a no-op. Safe to call while queries and
// updates are running — the snapshot pair reads one pinned MVCC version and
// serializes entirely off-lock, so a checkpoint concurrent with ApplyBatch
// blocks neither: writers keep publishing while the pinned version streams
// to disk.
func (d *Durable) Checkpoint() (CheckpointStats, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.closed {
		return CheckpointStats{}, fmt.Errorf("pvoronoi: checkpoint on closed durable index")
	}
	start := time.Now()
	if d.hasCkpt &&
		d.Index.inner.Epoch() == d.lastCkptEpoch &&
		d.Index.inner.WALSeq() == d.lastCkptSeq {
		return CheckpointStats{Seq: d.lastCkptSeq, Skipped: true}, nil
	}

	tmpDB := filepath.Join(d.dir, "ckpt-tmp.db")
	tmpIx := filepath.Join(d.dir, "ckpt-tmp.pvidx")
	f, err := os.Create(tmpIx)
	if err != nil {
		return CheckpointStats{}, err
	}
	w := bufio.NewWriter(f)
	// Read the epoch before pinning: a write that lands in between makes
	// the pinned version newer than the recorded epoch, so the next
	// checkpoint re-runs rather than wrongly skipping — always safe.
	epoch := d.Index.inner.Epoch()
	seq, err := d.Index.inner.SnapshotWith(w, func(db *uncertain.DB) error {
		return dataset.Save(db, tmpDB)
	})
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpIx)
		os.Remove(tmpDB)
		return CheckpointStats{}, fmt.Errorf("pvoronoi: writing checkpoint: %w", err)
	}

	base := fmt.Sprintf("ckpt-%016d", seq)
	if err := os.Rename(tmpDB, filepath.Join(d.dir, base+".db")); err != nil {
		return CheckpointStats{}, err
	}
	if err := os.Rename(tmpIx, filepath.Join(d.dir, base+".pvidx")); err != nil {
		return CheckpointStats{}, err
	}
	if err := writeCurrent(d.dir, base); err != nil {
		return CheckpointStats{}, err
	}

	// The checkpoint is durable; record it in the log and reclaim space.
	if _, _, err := d.log.Append(wal.Entry{Type: wal.TypeCheckpoint, Payload: []byte(base)}); err != nil {
		return CheckpointStats{}, err
	}
	if err := d.log.TruncateBefore(seq + 1); err != nil {
		return CheckpointStats{}, err
	}
	d.removeStaleCheckpoints(base)

	d.lastCkptSeq = seq
	d.lastCkptEpoch = epoch
	d.hasCkpt = true
	return CheckpointStats{Seq: seq, Duration: time.Since(start)}, nil
}

// removeStaleCheckpoints deletes checkpoint files other than keep's.
func (d *Durable) removeStaleCheckpoints(keep string) {
	matches, _ := filepath.Glob(filepath.Join(d.dir, "ckpt-*"))
	for _, m := range matches {
		b := filepath.Base(m)
		if strings.HasPrefix(b, keep) || strings.HasPrefix(b, "ckpt-tmp") {
			continue
		}
		os.Remove(m)
	}
}

// Stats returns the durable layer's counters.
func (d *Durable) Stats() DurableStats {
	ws := d.log.Stats()
	d.ckptMu.Lock()
	ckptSeq := d.lastCkptSeq
	d.ckptMu.Unlock()
	return DurableStats{
		WALSeq:        d.Index.inner.WALSeq(),
		WALAppends:    ws.Appends,
		WALCommits:    ws.Commits,
		WALSyncs:      ws.Syncs,
		WALBytes:      ws.Bytes,
		WALSegments:   ws.Segments,
		CheckpointSeq: ckptSeq,
		StoreEpoch:    d.Index.inner.Store().Epoch(),
		IndexEpoch:    d.Index.inner.Epoch(),
	}
}

// Close writes a final checkpoint and closes the log. The index remains
// usable for queries but further updates and checkpoints will fail.
func (d *Durable) Close() error {
	d.ckptMu.Lock()
	if d.closed {
		d.ckptMu.Unlock()
		return nil
	}
	d.ckptMu.Unlock()

	_, ckptErr := d.Checkpoint()

	d.ckptMu.Lock()
	d.closed = true
	d.ckptMu.Unlock()

	logErr := d.log.Close()
	if ckptErr != nil {
		return ckptErr
	}
	return logErr
}

// readCurrent returns the active checkpoint's base name, or "" when none.
func readCurrent(dir string) (string, error) {
	buf, err := os.ReadFile(filepath.Join(dir, currentFile))
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	name := strings.TrimSpace(string(buf))
	if name == "" || strings.ContainsAny(name, "/\\") {
		return "", fmt.Errorf("pvoronoi: corrupt %s file %q", currentFile, name)
	}
	return name, nil
}

// writeCurrent atomically points CURRENT at the given checkpoint base name
// and fsyncs the directory so the pointer survives a crash.
func writeCurrent(dir, name string) error {
	tmp := filepath.Join(dir, currentFile+".tmp")
	if err := os.WriteFile(tmp, []byte(name+"\n"), 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err == nil {
		err = f.Sync()
		f.Close()
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, currentFile)); err != nil {
		return err
	}
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = df.Sync()
	df.Close()
	return err
}
