package pvoronoi

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pvoronoi/internal/vfs"
)

// tortureModel tracks the object-ID set a prefix of the torture workload's
// batches produces. Batch i inserts IDs 5000+2i and 5001+2i and deletes
// bootstrap ID i.
func tortureModel(bootstrapN, batches int) map[ID]bool {
	m := make(map[ID]bool)
	for i := 0; i < bootstrapN; i++ {
		m[ID(i)] = true
	}
	for i := 0; i < batches; i++ {
		m[ID(5000+2*i)] = true
		m[ID(5001+2*i)] = true
		delete(m, ID(i))
	}
	return m
}

// tortureWorkload runs the scripted durable session over fs: open from the
// bootstrap database, apply six update batches with a checkpoint in the
// middle, and close. It returns how many batches were acknowledged and
// whether a batch was in flight when the first error hit. Deterministic:
// every run issues the identical operation sequence until its crash point.
func tortureWorkload(t *testing.T, dir string, fs vfs.FS) (acked int, inflight bool) {
	t.Helper()
	const batches = 6
	opts := testOptions()
	opts.FS = fs
	d, err := OpenDurable(dir, buildSmallDB(t, 25, false), opts)
	if err != nil {
		return 0, false
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < batches; i++ {
		ups := []Update{
			InsertOp(mkObj(rng, ID(5000+2*i))),
			InsertOp(mkObj(rng, ID(5001+2*i))),
			DeleteOp(ID(i)),
		}
		if _, err := d.ApplyBatch(ups); err != nil {
			return acked, true
		}
		acked++
		if i == 2 {
			if _, err := d.Checkpoint(); err != nil {
				return acked, false
			}
		}
	}
	if err := d.Close(); err != nil {
		return acked, false
	}
	return acked, false
}

// TestDurableTortureCrashSweep is the ALICE-style crash-consistency sweep:
// run the scripted workload once fault-free to count its mutating filesystem
// operations, then re-run it crashing at every single one of them. After
// each crash the store is reopened on the real filesystem and must recover
// to exactly the bootstrap state plus a prefix of the logged batches — every
// acknowledged batch present, at most the one in-flight batch beyond that,
// and never a partial batch (group commits are atomic). Recovery itself must
// always succeed: a crash leaves torn tails and orphan temp files, none of
// which may be mistaken for corruption of acknowledged data.
func TestDurableTortureCrashSweep(t *testing.T) {
	const bootstrapN = 25

	// Dry run: learn the workload's fault-point count.
	dry := vfs.NewFaultFS(nil)
	acked, inflight := tortureWorkload(t, t.TempDir(), dry)
	if acked != 6 || inflight {
		t.Fatalf("fault-free workload acked %d batches (inflight=%v), want 6", acked, inflight)
	}
	total := dry.OpCount()
	if total < 20 {
		t.Fatalf("implausibly few fault points: %d", total)
	}
	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	t.Logf("sweeping %d fault points (stride %d)", total, stride)

	for n := int64(1); n <= total; n += stride {
		dir := t.TempDir()
		ffs := vfs.NewFaultFS(nil)
		ffs.CrashAt(n, 0.5)
		acked, inflight := tortureWorkload(t, dir, ffs)
		if !ffs.Crashed() {
			t.Fatalf("crash point %d never fired", n)
		}

		// Reboot on the real filesystem. The same bootstrap database stands
		// in for the operator supplying identical -data/-seed flags.
		d2, err := OpenDurable(dir, buildSmallDB(t, bootstrapN, false), testOptions())
		if err != nil {
			t.Fatalf("crash point %d: recovery failed: %v", n, err)
		}
		got := make(map[ID]bool)
		for _, o := range d2.DB().Objects() {
			got[o.ID] = true
		}
		// The recovered state must equal the model after M batches for some
		// M in [acked, acked+inflight]: fewer loses acknowledged writes, more
		// invents unacknowledged ones, anything else is a torn batch.
		matched := -1
		hi := acked
		if inflight {
			hi++
		}
		for m := acked; m <= hi; m++ {
			want := tortureModel(bootstrapN, m)
			if len(want) != len(got) {
				continue
			}
			ok := true
			for id := range want {
				if !got[id] {
					ok = false
					break
				}
			}
			if ok {
				matched = m
				break
			}
		}
		if matched < 0 {
			t.Fatalf("crash point %d: recovered %d objects, not a prefix state (acked %d batches, inflight %v)",
				n, len(got), acked, inflight)
		}
		// The recovered index must actually answer queries.
		if _, err := d2.PossibleNN(Point{500, 500}); err != nil {
			t.Fatalf("crash point %d: recovered index broken: %v", n, err)
		}
		if err := d2.Close(); err != nil {
			t.Fatalf("crash point %d: close after recovery: %v", n, err)
		}
	}
}

// corruptNewestCheckpoint flips one payload byte of the newest checkpoint's
// index file on disk, returning its base name.
func corruptNewestCheckpoint(t *testing.T, dir string) string {
	t.Helper()
	cands := listCheckpoints(vfs.OS, dir)
	if len(cands) < 2 {
		t.Fatalf("need >=2 checkpoints for a fallback test, have %d", len(cands))
	}
	path := filepath.Join(dir, cands[0].base+".pvidx")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x10
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return cands[0].base
}

// seedTwoCheckpoints builds a durable store with two retained checkpoints
// and a WAL tail beyond the older one, returning the IDs that must survive.
func seedTwoCheckpoints(t *testing.T, dir string) []ID {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	d, err := OpenDurable(dir, buildSmallDB(t, 40, false), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertBatch([]*Object{mkObj(rng, 7000), mkObj(rng, 7001)}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Acknowledged after the checkpoint recovery will fall back to: these
	// must come out of the longer WAL replay.
	if _, err := d.InsertBatch([]*Object{mkObj(rng, 7002), mkObj(rng, 7003)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // final checkpoint -> 2 retained
		t.Fatal(err)
	}
	return []ID{7000, 7001, 7002, 7003}
}

// TestDurableBitFlipFallback flips a bit in the newest checkpoint: recovery
// must detect the checksum mismatch, fall back to the previous checkpoint,
// replay the longer WAL tail, and report the corruption — no acknowledged
// write lost to bit rot in the snapshot.
func TestDurableBitFlipFallback(t *testing.T) {
	dir := t.TempDir()
	ids := seedTwoCheckpoints(t, dir)
	bad := corruptNewestCheckpoint(t, dir)

	d2, err := OpenDurable(dir, nil, testOptions())
	if err != nil {
		t.Fatalf("fallback recovery failed: %v", err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if len(rec.CorruptCheckpoints) != 1 || rec.CorruptCheckpoints[0] != bad {
		t.Fatalf("corrupt checkpoints %v, want [%s]", rec.CorruptCheckpoints, bad)
	}
	if rec.UsedCheckpoint == "" || rec.UsedCheckpoint == bad {
		t.Fatalf("recovered from %q, want the older fallback", rec.UsedCheckpoint)
	}
	if rec.Replayed == 0 {
		t.Fatal("fallback recovery replayed nothing — the WAL tail beyond the older checkpoint was lost")
	}
	for _, id := range ids {
		if d2.DB().Get(id) == nil {
			t.Fatalf("acknowledged insert %d lost across the fallback", id)
		}
	}
	rebuildOracle(t, d2.Index, rand.New(rand.NewSource(32)))

	// Surviving corruption rewrites a fresh checkpoint: a third open is clean.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := OpenDurable(dir, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if len(d3.Recovery().CorruptCheckpoints) != 0 {
		t.Fatalf("corruption persisted across recovery: %v", d3.Recovery().CorruptCheckpoints)
	}
}

// TestDurableTornCheckpointFallback truncates the newest checkpoint mid-file
// (a torn write, not bit rot): same fallback path, distinguished by the
// envelope's length footer.
func TestDurableTornCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	ids := seedTwoCheckpoints(t, dir)
	cands := listCheckpoints(vfs.OS, dir)
	path := filepath.Join(dir, cands[0].base+".pvidx")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, nil, testOptions())
	if err != nil {
		t.Fatalf("torn-checkpoint recovery failed: %v", err)
	}
	defer d2.Close()
	if len(d2.Recovery().CorruptCheckpoints) != 1 {
		t.Fatalf("corrupt checkpoints %v, want the torn newest", d2.Recovery().CorruptCheckpoints)
	}
	for _, id := range ids {
		if d2.DB().Get(id) == nil {
			t.Fatalf("acknowledged insert %d lost across the fallback", id)
		}
	}
}

// TestDurableAllCheckpointsCorruptFailsLoudly corrupts every retained
// checkpoint: recovery must refuse to run — silently rebuilding from the
// bootstrap database would resurrect a stale past as if it were current.
func TestDurableAllCheckpointsCorruptFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	seedTwoCheckpoints(t, dir)
	for _, c := range listCheckpoints(vfs.OS, dir) {
		path := filepath.Join(dir, c.base+".pvidx")
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		buf[len(buf)/2] ^= 0x01
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenDurable(dir, nil, testOptions()); err == nil {
		t.Fatal("recovery succeeded with every checkpoint corrupt")
	}
	// A bootstrap database does not change the answer: the checkpoints prove
	// acknowledged data existed, so rebuilding over it must still refuse.
	if _, err := OpenDurable(dir, buildSmallDB(t, 40, false), testOptions()); err == nil {
		t.Fatal("recovery rebuilt from bootstrap data over corrupt checkpoints")
	}
}

// TestDurableCheckpointRetention drives several checkpoints and checks the
// retention contract: exactly CheckpointRetain checkpoints on disk, and the
// WAL still reaching back to just past the oldest retained one so fallback
// always has its replay window.
func TestDurableCheckpointRetention(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(33))
	opts := testOptions()
	opts.CheckpointRetain = 3
	d, err := OpenDurable(dir, buildSmallDB(t, 40, false), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for round := 0; round < 6; round++ {
		if _, err := d.InsertBatch([]*Object{mkObj(rng, ID(8000+round))}); err != nil {
			t.Fatal(err)
		}
		st, err := d.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if st.Skipped {
			t.Fatalf("round %d: checkpoint after an insert skipped", round)
		}
		cands := listCheckpoints(vfs.OS, dir)
		if want := min(round+2, 3); len(cands) != want {
			t.Fatalf("round %d: %d checkpoints on disk, want %d", round, len(cands), want)
		}
		// Every retained checkpoint must be loadable and coverable: the WAL's
		// first record is no later than the record after the oldest retained
		// snapshot.
		oldest := cands[len(cands)-1].seq
		if first := d.log.FirstSeq(); first != 0 && first > oldest+1 {
			t.Fatalf("round %d: wal starts at %d, oldest retained checkpoint at %d — fallback window lost", round, first, oldest)
		}
	}

	// Orphan .db halves and tmp files must never linger.
	dbs, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.db"))
	idxs, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.pvidx"))
	if len(dbs) != len(idxs) {
		t.Fatalf("unpaired checkpoint files: %d .db vs %d .pvidx", len(dbs), len(idxs))
	}
}
