package pvoronoi

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// mkObj returns a fresh object for durable-mode update traffic.
func mkObj(rng *rand.Rand, id ID) *Object {
	lo := Point{rng.Float64() * 900, rng.Float64() * 900}
	region := NewRect(lo, Point{lo[0] + 5 + rng.Float64()*20, lo[1] + 5 + rng.Float64()*20})
	o := &Object{ID: id, Region: region}
	o.Instances = SampleUniform(region, 20, int64(id))
	return o
}

// rebuildOracle builds a fresh index over the same object set and checks
// that both indexes answer the same queries identically — the "no
// acknowledged update lost" acceptance check.
func rebuildOracle(t *testing.T, got *Index, rng *rand.Rand) {
	t.Helper()
	oracleDB := NewDB(got.DB().Domain)
	for _, o := range got.DB().Objects() {
		if err := oracleDB.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	oracle, err := Build(oracleDB, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		q := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		a, err := got.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := oracle.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("q=%v: recovered %d candidates, rebuilt oracle %d", q, len(a), len(b))
		}
		for j := range a {
			if a[j].ID != b[j].ID {
				t.Fatalf("q=%v: candidate %d differs (%d vs %d)", q, j, a[j].ID, b[j].ID)
			}
		}
	}
}

func TestDurableCleanRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(21))

	d, err := OpenDurable(dir, buildSmallDB(t, 60, true), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Recovery().Rebuilt {
		t.Fatal("first open should build from the bootstrap database")
	}
	var ids []ID
	for i := 0; i < 12; i++ {
		id := ID(1000 + i)
		ids = append(ids, id)
		if _, err := d.InsertBatch([]*Object{mkObj(rng, id)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.DeleteBatch(ids[:4]); err != nil {
		t.Fatal(err)
	}
	wantLen := d.Len()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: checkpoint exists, bootstrap db is ignored (pass nil).
	d2, err := OpenDurable(dir, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Recovery().Rebuilt {
		t.Fatal("restart rebuilt despite an existing checkpoint")
	}
	if d2.Recovery().Replayed != 0 {
		t.Fatalf("clean restart replayed %d updates, want 0", d2.Recovery().Replayed)
	}
	if d2.Len() != wantLen {
		t.Fatalf("restart lost objects: %d, want %d", d2.Len(), wantLen)
	}
	rebuildOracle(t, d2.Index, rng)
}

func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(22))

	d, err := OpenDurable(dir, buildSmallDB(t, 60, true), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Updates after the open-time checkpoint; then "crash" — no Close, no
	// checkpoint, the WAL alone carries them.
	var batch []*Object
	for i := 0; i < 10; i++ {
		batch = append(batch, mkObj(rng, ID(2000+i)))
	}
	if _, err := d.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DeleteBatch([]ID{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch([]Update{
		DeleteOp(3),
		InsertOp(mkObj(rng, 3)), // atomic replacement
	}); err != nil {
		t.Fatal(err)
	}
	wantLen := d.Len()
	wantSeq := d.WALSeq()
	// Simulate the crash: release the log handle without checkpointing.
	if err := d.log.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if rec.Rebuilt {
		t.Fatal("crash recovery rebuilt despite a checkpoint")
	}
	if rec.Replayed == 0 {
		t.Fatal("crash recovery replayed nothing — acknowledged updates lost")
	}
	if d2.WALSeq() < wantSeq {
		t.Fatalf("recovered to seq %d, acknowledged through %d", d2.WALSeq(), wantSeq)
	}
	if d2.Len() != wantLen {
		t.Fatalf("crash lost objects: recovered %d, want %d", d2.Len(), wantLen)
	}
	for _, o := range batch {
		if d2.DB().Get(o.ID) == nil {
			t.Fatalf("acknowledged insert %d lost in the crash", o.ID)
		}
	}
	for _, id := range []ID{0, 1, 2} {
		if d2.DB().Get(id) != nil {
			t.Fatalf("acknowledged delete of %d lost in the crash", id)
		}
	}
	rebuildOracle(t, d2.Index, rng)

	// The open-time checkpoint collapsed the tail: a third open replays 0.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := OpenDurable(dir, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if d3.Recovery().Replayed != 0 {
		t.Fatalf("post-checkpoint open replayed %d updates, want 0", d3.Recovery().Replayed)
	}
	if d3.Len() != wantLen {
		t.Fatalf("third open has %d objects, want %d", d3.Len(), wantLen)
	}
}

func TestDurableCrashBeforeFirstCheckpointWindow(t *testing.T) {
	// Crash in the narrow window where updates hit the WAL but the first
	// checkpoint never completed: recovery rebuilds from the bootstrap
	// database and replays the whole log.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(23))

	d, err := OpenDurable(dir, buildSmallDB(t, 50, false), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertBatch([]*Object{mkObj(rng, 3000), mkObj(rng, 3001)}); err != nil {
		t.Fatal(err)
	}
	d.log.Close() // crash

	// Wipe the checkpoint, leaving only the WAL — the pre-first-checkpoint
	// state on disk.
	if err := os.Remove(filepath.Join(dir, "CURRENT")); err != nil {
		t.Fatal(err)
	}
	ckpts, err := filepath.Glob(filepath.Join(dir, "ckpt-*"))
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoint files to wipe: %v", err)
	}
	for _, c := range ckpts {
		if err := os.Remove(c); err != nil {
			t.Fatal(err)
		}
	}

	d2, err := OpenDurable(dir, buildSmallDB(t, 50, false), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !d2.Recovery().Rebuilt {
		t.Fatal("expected a rebuild from the bootstrap database")
	}
	if d2.Recovery().Replayed == 0 {
		t.Fatal("expected WAL replay on top of the rebuild")
	}
	if d2.DB().Get(3000) == nil || d2.DB().Get(3001) == nil {
		t.Fatal("acknowledged inserts lost without a checkpoint")
	}
	rebuildOracle(t, d2.Index, rng)
}

func TestDurableCheckpointSkipsWhenClean(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, buildSmallDB(t, 40, false), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Open already checkpointed; an immediate second checkpoint is a no-op.
	st, err := d.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Skipped {
		t.Fatal("checkpoint of an unchanged index was not skipped")
	}
	// Queries don't dirty the epoch.
	if _, err := d.Query(Point{500, 500}); err != nil {
		t.Fatal(err)
	}
	if st, _ = d.Checkpoint(); !st.Skipped {
		t.Fatal("checkpoint after read-only traffic was not skipped")
	}
	// An update dirties it.
	rng := rand.New(rand.NewSource(24))
	if _, err := d.InsertBatch([]*Object{mkObj(rng, 4000)}); err != nil {
		t.Fatal(err)
	}
	st, err = d.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped {
		t.Fatal("checkpoint after an update was skipped")
	}
	if st.Seq != d.WALSeq() {
		t.Fatalf("checkpoint at seq %d, index at %d", st.Seq, d.WALSeq())
	}
}

// TestCheckpointConcurrentWithWrites runs Checkpoint calls head-to-head
// with a stream of write batches: with MVCC serialization the checkpoint
// pins a version and streams it off-lock, so neither side blocks the other.
// Every checkpoint must cover a consistent prefix (its WAL sequence is one
// the index actually published), every write must succeed, and a recovery
// from the final state must equal the live index.
func TestCheckpointConcurrentWithWrites(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(26))
	d, err := OpenDurable(dir, buildSmallDB(t, 120, true), testOptions())
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	ckptErr := make(chan error, 1)
	checkpoints := 0
	go func() {
		defer close(ckptErr)
		for {
			select {
			case <-done:
				return
			default:
			}
			st, err := d.Checkpoint()
			if err != nil {
				ckptErr <- err
				return
			}
			if !st.Skipped {
				checkpoints++
				if st.Seq > d.WALSeq() {
					ckptErr <- fmt.Errorf("checkpoint covers seq %d beyond the index's %d", st.Seq, d.WALSeq())
					return
				}
			}
		}
	}()

	// Writer: 30 batches while the checkpoint loop spins. None may block on
	// a checkpoint in progress (a deadlock here hangs the test).
	for round := 0; round < 30; round++ {
		objs := make([]*Object, 4)
		for i := range objs {
			objs[i] = mkObj(rng, ID(6000+round*4+i))
		}
		if _, err := d.InsertBatch(objs); err != nil {
			t.Fatal(err)
		}
		ids := []ID{objs[0].ID, objs[1].ID}
		if _, err := d.DeleteBatch(ids); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	if err := <-ckptErr; err != nil {
		t.Fatal(err)
	}
	if checkpoints == 0 {
		t.Fatal("no checkpoint completed during the write storm")
	}

	wantLen := d.Len()
	wantSeq := d.WALSeq()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery from the concurrent checkpoints + WAL tail equals the live
	// state at close.
	d2, err := OpenDurable(dir, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != wantLen {
		t.Fatalf("recovered %d objects, want %d", d2.Len(), wantLen)
	}
	if d2.WALSeq() < wantSeq {
		t.Fatalf("recovered to seq %d, acknowledged through %d", d2.WALSeq(), wantSeq)
	}
	rebuildOracle(t, d2.Index, rng)
}
