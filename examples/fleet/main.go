// Fleet: continuous nearest-vehicle queries over moving objects with GPS
// uncertainty — the location-based-service scenario from the paper's
// introduction, exercising the PV-index's incremental maintenance.
//
// Vehicles report noisy positions. As they move, their old objects are
// deleted and re-inserted at the new position; the paper's incremental
// update algorithm (§VI-B) refreshes only the affected UBRs instead of
// rebuilding, which is what makes per-tick maintenance affordable.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pvoronoi"
)

const (
	nVehicles = 250
	cityKM    = 10000.0 // 10 km × 10 km grid, 1 unit = 1 m
	gpsErr    = 15.0    // ±15 m GPS error box
	ticks     = 5
	moves     = 12 // vehicles moving per tick
)

type vehicle struct {
	id   pvoronoi.ID
	x, y float64
}

func regionFor(v vehicle) pvoronoi.Rect {
	lo := pvoronoi.Point{clamp(v.x-gpsErr, 0, cityKM), clamp(v.y-gpsErr, 0, cityKM)}
	hi := pvoronoi.Point{clamp(v.x+gpsErr, 0, cityKM), clamp(v.y+gpsErr, 0, cityKM)}
	return pvoronoi.NewRect(lo, hi)
}

func objectFor(v vehicle, seed int64) *pvoronoi.Object {
	region := regionFor(v)
	return &pvoronoi.Object{
		ID:        v.id,
		Region:    region,
		Instances: pvoronoi.SampleGaussian(region, 200, seed),
	}
}

func main() {
	rng := rand.New(rand.NewSource(7))
	domain := pvoronoi.NewRect(pvoronoi.Point{0, 0}, pvoronoi.Point{cityKM, cityKM})
	db := pvoronoi.NewDB(domain)

	fleet := make([]vehicle, nVehicles)
	for i := range fleet {
		fleet[i] = vehicle{
			id: pvoronoi.ID(i + 1),
			x:  rng.Float64() * cityKM,
			y:  rng.Float64() * cityKM,
		}
		if err := db.Add(objectFor(fleet[i], int64(i))); err != nil {
			log.Fatal(err)
		}
	}

	t0 := time.Now()
	ix, err := pvoronoi.Build(db, pvoronoi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built PV-index over %d vehicles in %v\n", nVehicles, time.Since(t0).Round(time.Millisecond))

	rider := pvoronoi.Point{cityKM / 2, cityKM / 2}
	for tick := 0; tick < ticks; tick++ {
		// A handful of vehicles move: delete + insert at the new position.
		tUpd := time.Now()
		for m := 0; m < moves; m++ {
			i := rng.Intn(len(fleet))
			v := &fleet[i]
			if err := ix.Delete(v.id); err != nil {
				log.Fatal(err)
			}
			v.x = clamp(v.x+rng.NormFloat64()*400, 0, cityKM)
			v.y = clamp(v.y+rng.NormFloat64()*400, 0, cityKM)
			if err := ix.Insert(objectFor(*v, int64(tick*1000+m))); err != nil {
				log.Fatal(err)
			}
		}
		updTime := time.Since(tUpd)

		// Who is most likely the rider's nearest vehicle right now?
		tQ := time.Now()
		results, err := ix.Query(rider)
		if err != nil {
			log.Fatal(err)
		}
		qTime := time.Since(tQ)

		fmt.Printf("tick %d: %d moves in %v; %d candidate vehicles (query %v)",
			tick+1, moves, updTime.Round(time.Microsecond), len(results), qTime.Round(time.Microsecond))
		if len(results) > 0 {
			fmt.Printf("; best: vehicle %d (p=%.3f)", results[0].ID, results[0].Prob)
		}
		fmt.Println()
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
