// Meetup: probabilistic group nearest neighbor search — one of the query
// extensions the paper's conclusion proposes for the PV-index.
//
// A group of friends at different locations wants the venue minimizing their
// combined travel (AggSum) or the farthest member's travel (AggMax). Venue
// positions are uncertain (crowd-sourced map data), so the answer is a set
// of venues with qualification probabilities.
//
//	go run ./examples/meetup
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pvoronoi"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	domain := pvoronoi.NewRect(pvoronoi.Point{0, 0}, pvoronoi.Point{5000, 5000})
	db := pvoronoi.NewDB(domain)

	// 300 venues with crowd-sourced (imprecise) positions: the uncertainty
	// box is ±30–80 m depending on how well-mapped the venue is.
	for i := 0; i < 300; i++ {
		x, y := rng.Float64()*5000, rng.Float64()*5000
		e := 30 + rng.Float64()*50
		lo := pvoronoi.Point{max(0, x-e), max(0, y-e)}
		hi := pvoronoi.Point{min(5000, x+e), min(5000, y+e)}
		region := pvoronoi.NewRect(lo, hi)
		if err := db.Add(&pvoronoi.Object{
			ID:        pvoronoi.ID(i + 1),
			Region:    region,
			Instances: pvoronoi.SampleUniform(region, 150, int64(i)),
		}); err != nil {
			log.Fatal(err)
		}
	}

	ix, err := pvoronoi.Build(db, pvoronoi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	friends := []pvoronoi.Point{
		{1200, 1500},
		{1800, 2400},
		{900, 2800},
	}

	for _, mode := range []struct {
		agg  pvoronoi.Agg
		name string
	}{
		{pvoronoi.AggSum, "minimize total travel (sum)"},
		{pvoronoi.AggMax, "minimize worst member's travel (max)"},
	} {
		results, err := ix.GroupNN(friends, mode.agg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %d possible venues:\n", mode.name, len(results))
		for i, r := range results {
			if i == 5 {
				fmt.Printf("  ... and %d more\n", len(results)-5)
				break
			}
			fmt.Printf("  venue %-4d p=%.4f\n", r.ID, r.Prob)
		}
	}

	// Bonus: each friend's own top-3 probable nearest venues.
	for i, f := range friends {
		res, err := ix.PossibleKNN(f, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("friend %d top-3 membership: ", i+1)
		for j, r := range res {
			if j == 3 {
				break
			}
			fmt.Printf("venue %d (p=%.2f) ", r.ID, r.Prob)
		}
		fmt.Println()
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
