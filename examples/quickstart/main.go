// Quickstart: build a PV-index over a handful of 2-D uncertain objects and
// run a probabilistic nearest neighbor query (PNNQ).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pvoronoi"
)

func main() {
	// A 2-D domain of 1000×1000 units.
	domain := pvoronoi.NewRect(pvoronoi.Point{0, 0}, pvoronoi.Point{1000, 1000})
	db := pvoronoi.NewDB(domain)

	// Five uncertain objects: each has a rectangular uncertainty region and
	// a discrete pdf of 200 uniform samples inside it.
	regions := []pvoronoi.Rect{
		pvoronoi.NewRect(pvoronoi.Point{100, 100}, pvoronoi.Point{160, 140}),
		pvoronoi.NewRect(pvoronoi.Point{400, 120}, pvoronoi.Point{430, 170}),
		pvoronoi.NewRect(pvoronoi.Point{250, 300}, pvoronoi.Point{330, 360}),
		pvoronoi.NewRect(pvoronoi.Point{700, 650}, pvoronoi.Point{760, 700}),
		pvoronoi.NewRect(pvoronoi.Point{180, 210}, pvoronoi.Point{240, 260}),
	}
	for i, r := range regions {
		obj := &pvoronoi.Object{
			ID:        pvoronoi.ID(i + 1),
			Region:    r,
			Instances: pvoronoi.SampleUniform(r, 200, int64(i)),
		}
		if err := db.Add(obj); err != nil {
			log.Fatal(err)
		}
	}

	// Build the PV-index with the paper's default parameters.
	ix, err := pvoronoi.Build(db, pvoronoi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	q := pvoronoi.Point{260, 200}

	// Step 1: which objects have any chance of being the nearest neighbor?
	cands, err := ix.PossibleNN(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %v — possible nearest neighbors:\n", q)
	for _, c := range cands {
		fmt.Printf("  object %d  (dist range [%.1f, %.1f])\n", c.ID, c.MinDist, c.MaxDist)
	}

	// Full PNNQ: qualification probabilities.
	results, err := ix.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("qualification probabilities:")
	for _, r := range results {
		fmt.Printf("  object %d: %.4f\n", r.ID, r.Prob)
	}

	// The index stays consistent under updates.
	newRegion := pvoronoi.NewRect(pvoronoi.Point{255, 195}, pvoronoi.Point{275, 215})
	if err := ix.Insert(&pvoronoi.Object{
		ID:        99,
		Region:    newRegion,
		Instances: pvoronoi.SampleUniform(newRegion, 200, 99),
	}); err != nil {
		log.Fatal(err)
	}
	results, _ = ix.Query(q)
	fmt.Println("after inserting object 99 right next to the query:")
	for _, r := range results {
		fmt.Printf("  object %d: %.4f\n", r.ID, r.Prob)
	}
}
