// Sensornet: PNNQ over 3-D sensor readings with measurement uncertainty —
// the habitat-monitoring scenario from the paper's introduction.
//
// Each sensor node reports (temperature, humidity, wind speed). Readings are
// contaminated with measurement error, so each sensor is an uncertain object
// whose region bounds the plausible true values (Gaussian pdf around the
// reported reading). A PNNQ for a target condition vector returns the
// sensors whose true reading is plausibly the closest match, with
// probabilities.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pvoronoi"
)

// Attribute scales: temperature 0–50 °C, humidity 0–100 %, wind 0–30 m/s,
// normalized to a [0,1000]³ domain so Euclidean distance is meaningful.
func normalize(temp, hum, wind float64) pvoronoi.Point {
	return pvoronoi.Point{temp / 50 * 1000, hum / 100 * 1000, wind / 30 * 1000}
}

func main() {
	rng := rand.New(rand.NewSource(2024))
	domain := pvoronoi.NewRect(pvoronoi.Point{0, 0, 0}, pvoronoi.Point{1000, 1000, 1000})
	db := pvoronoi.NewDB(domain)

	// 400 sensor nodes. Each reports a reading; measurement error gives a
	// ±1.5 °C, ±4 %, ±1.2 m/s uncertainty box.
	errBox := normalize(1.5, 4, 1.2)
	for i := 0; i < 400; i++ {
		reading := normalize(
			10+rng.Float64()*30, // 10–40 °C
			20+rng.Float64()*70, // 20–90 %
			rng.Float64()*20,    // 0–20 m/s
		)
		lo := make(pvoronoi.Point, 3)
		hi := make(pvoronoi.Point, 3)
		for j := 0; j < 3; j++ {
			lo[j] = clamp(reading[j]-errBox[j], 0, 1000)
			hi[j] = clamp(reading[j]+errBox[j], 0, 1000)
		}
		region := pvoronoi.NewRect(lo, hi)
		if err := db.Add(&pvoronoi.Object{
			ID:        pvoronoi.ID(i + 1),
			Region:    region,
			Instances: pvoronoi.SampleGaussian(region, 300, int64(i)),
		}); err != nil {
			log.Fatal(err)
		}
	}

	ix, err := pvoronoi.Build(db, pvoronoi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// "Which sensor most likely observes conditions closest to
	// 25 °C / 60 % / 5 m/s?"
	target := normalize(25, 60, 5)
	results, err := ix.Query(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensors plausibly closest to 25°C / 60%% RH / 5 m/s: %d\n", len(results))
	for i, r := range results {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(results)-5)
			break
		}
		fmt.Printf("  sensor %-4d probability %.4f\n", r.ID, r.Prob)
	}

	// A sensor drops out of the network (battery death) — delete it and the
	// answer set adapts without rebuilding the index.
	if len(results) > 0 {
		dead := results[0].ID
		if err := ix.Delete(dead); err != nil {
			log.Fatal(err)
		}
		after, _ := ix.Query(target)
		fmt.Printf("after sensor %d died, the most likely match is now ", dead)
		if len(after) > 0 {
			fmt.Printf("sensor %d (p=%.4f)\n", after[0].ID, after[0].Prob)
		} else {
			fmt.Println("nobody")
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
