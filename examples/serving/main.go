// Serving: the concurrent-access pattern behind cmd/pvserve, in-process.
// Builds a PV-index, then runs many query goroutines (single queries and
// batches) in parallel with a writer that inserts and deletes objects —
// exactly the reader/writer mix a query-serving deployment sees.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pvoronoi"
)

func main() {
	// A synthetic 2-D database of 2000 uncertain objects.
	domain := pvoronoi.NewRect(pvoronoi.Point{0, 0}, pvoronoi.Point{10000, 10000})
	db := pvoronoi.NewDB(domain)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		lo := pvoronoi.Point{rng.Float64() * 9900, rng.Float64() * 9900}
		region := pvoronoi.NewRect(lo, pvoronoi.Point{lo[0] + 10 + rng.Float64()*50, lo[1] + 10 + rng.Float64()*50})
		obj := &pvoronoi.Object{
			ID:        pvoronoi.ID(i + 1),
			Region:    region,
			Instances: pvoronoi.SampleUniform(region, 50, int64(i)),
		}
		if err := db.Add(obj); err != nil {
			log.Fatal(err)
		}
	}

	t0 := time.Now()
	ix, err := pvoronoi.BuildParallel(db, pvoronoi.DefaultOptions(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built PV-index over %d objects in %v\n", ix.Len(), time.Since(t0).Round(time.Millisecond))

	var queryCount atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Four reader goroutines: two issue single queries, two issue batches.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64, batched bool) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			randPoint := func() pvoronoi.Point {
				return pvoronoi.Point{rng.Float64() * 10000, rng.Float64() * 10000}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if batched {
					qs := make([]pvoronoi.Point, 16)
					for i := range qs {
						qs[i] = randPoint()
					}
					if _, err := ix.QueryBatch(qs, 4); err != nil {
						log.Fatal(err)
					}
					queryCount.Add(int64(len(qs)))
				} else {
					if _, err := ix.Query(randPoint()); err != nil {
						log.Fatal(err)
					}
					queryCount.Add(1)
				}
			}
		}(int64(r), r%2 == 0)
	}

	// One writer goroutine churns objects through insert/delete while the
	// readers run. Each update applies the paper's incremental maintenance
	// under the index's exclusive write lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 40; i++ {
			id := pvoronoi.ID(100000 + i)
			lo := pvoronoi.Point{rng.Float64() * 9900, rng.Float64() * 9900}
			region := pvoronoi.NewRect(lo, pvoronoi.Point{lo[0] + 30, lo[1] + 30})
			obj := &pvoronoi.Object{ID: id, Region: region,
				Instances: pvoronoi.SampleUniform(region, 20, int64(id))}
			if err := ix.Insert(obj); err != nil {
				log.Fatal(err)
			}
			if err := ix.Delete(id); err != nil {
				log.Fatal(err)
			}
		}
		close(stop)
	}()

	wg.Wait()
	fmt.Printf("served %d queries concurrently with 80 index updates\n", queryCount.Load())
	fmt.Printf("index still holds %d objects\n", ix.Len())

	// Per-query cost attribution survives concurrency: ask one more query
	// for its exact leaf I/O.
	_, cost, err := ix.QueryWithCost(pvoronoi.Point{5000, 5000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a PNNQ at the center read %d leaf page(s) and pruned to %d candidate(s)\n",
		cost.LeafIO, cost.Candidates)
}
