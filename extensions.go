package pvoronoi

import (
	"time"

	"pvoronoi/internal/extquery"
	"pvoronoi/internal/pnnq"
	"pvoronoi/internal/pvindex"
)

// Agg selects the aggregate for group nearest neighbor queries.
type Agg = extquery.Agg

// Aggregates for GroupNN.
const (
	// AggSum minimizes the summed distance to all group points.
	AggSum = extquery.AggSum
	// AggMax minimizes the worst-case distance to the group points.
	AggMax = extquery.AggMax
)

// KNNResult is an object's probability of ranking among the k nearest.
type KNNResult = pnnq.KNNResult

// PossibleKNN and GroupNN retrieve their candidates by best-first expansion
// over the index's materialized Voronoi-adjacency graph (seeded by an octree
// point query, never an O(n) scan); PossibleRNN retrieves through the region
// R*-tree. All snapshot the candidates' stored instances from one pinned
// MVCC version; the expensive probability refinement then runs on the
// snapshot. No lock is taken at any point — long extension queries never
// stall writers, and writers never stall them.

// ExtQueryCost reports the per-query cost of one extension query: candidate
// count, R-tree node and leaf accesses during retrieval (on the graph paths
// LeafIO counts the octree seed query's leaf reads), adjacency-graph
// expansion work, the record-cache outcomes of the instance fetch, and the
// end-to-end latency including the out-of-lock probability refinement. Like
// QueryCost it is attributed exactly to the call that incurred it.
type ExtQueryCost struct {
	Candidates int
	NodeIO     int
	LeafIO     int
	// GraphNodes/GraphEdges count the adjacency rows expanded and neighbor
	// links examined by graph retrieval (zero on the R*-tree paths).
	GraphNodes int
	GraphEdges int
	// CacheHits/CacheMisses are the instance fetch's record-cache outcomes
	// (zero for candidate-only queries like PossibleRNN).
	CacheHits   int
	CacheMisses int
	// Latency spans retrieval, snapshot and refinement.
	Latency time.Duration
}

func extCost(c pvindex.ExtCost, start time.Time) ExtQueryCost {
	return ExtQueryCost{
		Candidates:  c.Candidates,
		NodeIO:      c.NodeIO,
		LeafIO:      c.LeafIO,
		GraphNodes:  c.GraphNodes,
		GraphEdges:  c.GraphEdges,
		CacheHits:   c.CacheHits,
		CacheMisses: c.CacheMisses,
		Latency:     time.Since(start),
	}
}

// GroupNN evaluates a probabilistic group nearest neighbor query: the
// objects that may minimize the aggregate distance to the query points,
// with their probabilities (computed from stored instances). This is the
// group-NN extension the paper's conclusion proposes for the PV-index.
func (ix *Index) GroupNN(group []Point, agg Agg) ([]Result, error) {
	res, _, err := ix.GroupNNWithCost(group, agg)
	return res, err
}

// GroupNNWithCost is GroupNN plus the per-query cost breakdown. Candidate
// retrieval and the instance snapshot read one pinned version atomically;
// the probability computation runs on the snapshot afterwards.
func (ix *Index) GroupNNWithCost(group []Point, agg Agg) ([]Result, ExtQueryCost, error) {
	start := time.Now()
	snap, err := ix.inner.GroupNNSnapshot(group, agg)
	if err != nil {
		return nil, ExtQueryCost{Latency: time.Since(start)}, err
	}
	res := extquery.GroupNNScores(snap.IDs, snap.Instances, group, agg)
	return res, extCost(snap.Cost, start), nil
}

// GroupNNCandidates returns only the candidate set of a group NN query
// (objects with non-zero probability, region-level bound).
func (ix *Index) GroupNNCandidates(group []Point, agg Agg) ([]ID, error) {
	ids, _, err := ix.inner.GroupNNCandidatesOnly(group, agg)
	return ids, err
}

// PossibleKNN returns the objects with a non-zero chance of ranking among
// the k nearest neighbors of q, with membership probabilities (probability
// that the object is within the top k). k=1 coincides with Query.
func (ix *Index) PossibleKNN(q Point, k int) ([]KNNResult, error) {
	res, _, err := ix.PossibleKNNWithCost(q, k)
	return res, err
}

// PossibleKNNWithCost is PossibleKNN plus the per-query cost breakdown. Like
// GroupNNWithCost, retrieval and the instance snapshot read one pinned
// version; nothing blocks writers.
func (ix *Index) PossibleKNNWithCost(q Point, k int) ([]KNNResult, ExtQueryCost, error) {
	start := time.Now()
	snap, err := ix.inner.KNNSnapshot(q, k)
	if err != nil {
		return nil, ExtQueryCost{Latency: time.Since(start)}, err
	}
	res := extquery.KNNScores(snap.IDs, snap.Instances, q, k)
	return res, extCost(snap.Cost, start), nil
}

// PossibleKNNCandidates returns only the candidate set of a possible k-NN
// query (objects with non-zero probability, region-level bound).
func (ix *Index) PossibleKNNCandidates(q Point, k int) ([]ID, error) {
	ids, _, err := ix.inner.KNNCandidatesOnly(q, k)
	return ids, err
}

// AdjacencyStats reports the Voronoi-adjacency graph's size and maintenance
// counters.
type AdjacencyStats = pvindex.AdjacencyStats

// Adjacency returns the adjacency graph's gauges and lifetime maintenance
// counters.
func (ix *Index) Adjacency() AdjacencyStats { return ix.inner.Adjacency() }

// PossibleRNN returns the objects with a non-zero chance that q is their
// nearest neighbor (probabilistic reverse NN candidates, region-level
// domination test at the index's configured MMax granularity — the same
// recursion depth SE uses for its domination counts).
func (ix *Index) PossibleRNN(q Point) ([]ID, error) {
	ids, _, err := ix.PossibleRNNWithCost(q)
	return ids, err
}

// PossibleRNNWithCost is PossibleRNN plus the per-query cost breakdown.
func (ix *Index) PossibleRNNWithCost(q Point) ([]ID, ExtQueryCost, error) {
	start := time.Now()
	ids, cost, err := ix.inner.RNNCandidates(q)
	if err != nil {
		return nil, ExtQueryCost{Latency: time.Since(start)}, err
	}
	return ids, extCost(cost, start), nil
}
