package pvoronoi

import (
	"pvoronoi/internal/extquery"
	"pvoronoi/internal/pnnq"
	"pvoronoi/internal/uncertain"
)

// Agg selects the aggregate for group nearest neighbor queries.
type Agg = extquery.Agg

// Aggregates for GroupNN.
const (
	// AggSum minimizes the summed distance to all group points.
	AggSum = extquery.AggSum
	// AggMax minimizes the worst-case distance to the group points.
	AggMax = extquery.AggMax
)

// KNNResult is an object's probability of ranking among the k nearest.
type KNNResult = pnnq.KNNResult

// The extension queries walk the raw database rather than the PV-index, so
// they run under the index's read lock (inner.View) to stay consistent with
// concurrent Insert/Delete writers.

// GroupNN evaluates a probabilistic group nearest neighbor query: the
// objects that may minimize the aggregate distance to the query points,
// with their probabilities (computed from stored instances). This is the
// group-NN extension the paper's conclusion proposes for the PV-index.
func (ix *Index) GroupNN(group []Point, agg Agg) ([]Result, error) {
	var out []Result
	err := ix.inner.View(func(db *uncertain.DB) error {
		ids := extquery.GroupNNCandidates(db, group, agg)
		out = extquery.GroupNNProbs(db, ids, group, agg)
		return nil
	})
	return out, err
}

// GroupNNCandidates returns only the candidate set of a group NN query
// (objects with non-zero probability, region-level bound).
func (ix *Index) GroupNNCandidates(group []Point, agg Agg) []ID {
	var out []ID
	_ = ix.inner.View(func(db *uncertain.DB) error {
		out = extquery.GroupNNCandidates(db, group, agg)
		return nil
	})
	return out
}

// PossibleKNN returns the objects with a non-zero chance of ranking among
// the k nearest neighbors of q, with membership probabilities (probability
// that the object is within the top k). k=1 coincides with Query.
func (ix *Index) PossibleKNN(q Point, k int) ([]KNNResult, error) {
	var out []KNNResult
	err := ix.inner.View(func(db *uncertain.DB) error {
		ids := extquery.KNNCandidates(db, q, k)
		out = extquery.KNNProbs(db, ids, q, k)
		return nil
	})
	return out, err
}

// PossibleRNN returns the objects with a non-zero chance that q is their
// nearest neighbor (probabilistic reverse NN candidates, region-level
// domination test with the paper's m_max granularity).
func (ix *Index) PossibleRNN(q Point) []ID {
	var out []ID
	_ = ix.inner.View(func(db *uncertain.DB) error {
		out = extquery.RNNCandidates(db, q, 10)
		return nil
	})
	return out
}
