package pvoronoi

import (
	"pvoronoi/internal/extquery"
	"pvoronoi/internal/pnnq"
)

// Agg selects the aggregate for group nearest neighbor queries.
type Agg = extquery.Agg

// Aggregates for GroupNN.
const (
	// AggSum minimizes the summed distance to all group points.
	AggSum = extquery.AggSum
	// AggMax minimizes the worst-case distance to the group points.
	AggMax = extquery.AggMax
)

// KNNResult is an object's probability of ranking among the k nearest.
type KNNResult = pnnq.KNNResult

// GroupNN evaluates a probabilistic group nearest neighbor query: the
// objects that may minimize the aggregate distance to the query points,
// with their probabilities (computed from stored instances). This is the
// group-NN extension the paper's conclusion proposes for the PV-index.
func (ix *Index) GroupNN(group []Point, agg Agg) ([]Result, error) {
	db := ix.inner.DB()
	ids := extquery.GroupNNCandidates(db, group, agg)
	return extquery.GroupNNProbs(db, ids, group, agg), nil
}

// GroupNNCandidates returns only the candidate set of a group NN query
// (objects with non-zero probability, region-level bound).
func (ix *Index) GroupNNCandidates(group []Point, agg Agg) []ID {
	return extquery.GroupNNCandidates(ix.inner.DB(), group, agg)
}

// PossibleKNN returns the objects with a non-zero chance of ranking among
// the k nearest neighbors of q, with membership probabilities (probability
// that the object is within the top k). k=1 coincides with Query.
func (ix *Index) PossibleKNN(q Point, k int) ([]KNNResult, error) {
	db := ix.inner.DB()
	ids := extquery.KNNCandidates(db, q, k)
	return extquery.KNNProbs(db, ids, q, k), nil
}

// PossibleRNN returns the objects with a non-zero chance that q is their
// nearest neighbor (probabilistic reverse NN candidates, region-level
// domination test with the paper's m_max granularity).
func (ix *Index) PossibleRNN(q Point) []ID {
	return extquery.RNNCandidates(ix.inner.DB(), q, 10)
}
