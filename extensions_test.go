package pvoronoi

import (
	"math"
	"math/rand"
	"testing"

	"pvoronoi/internal/extquery"
)

func TestGroupNNPublicAPI(t *testing.T) {
	db := buildSmallDB(t, 60, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	group := []Point{{200, 200}, {400, 300}, {300, 500}}
	for _, agg := range []Agg{AggSum, AggMax} {
		cands, err := ix.GroupNNCandidates(group, agg)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 {
			t.Fatalf("agg=%d: no candidates", agg)
		}
		results, cost, err := ix.GroupNNWithCost(group, agg)
		if err != nil {
			t.Fatal(err)
		}
		if cost.Candidates != len(cands) || cost.LeafIO <= 0 {
			t.Fatalf("agg=%d: cost %+v inconsistent with %d candidates", agg, cost, len(cands))
		}
		var sum float64
		inCands := map[ID]bool{}
		for _, id := range cands {
			inCands[id] = true
		}
		for _, r := range results {
			sum += r.Prob
			if !inCands[r.ID] {
				t.Fatalf("result %d not among candidates", r.ID)
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("agg=%d: probabilities sum to %g", agg, sum)
		}
	}
}

func TestPossibleKNNPublicAPI(t *testing.T) {
	db := buildSmallDB(t, 60, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := Point{500, 500}
	for _, k := range []int{1, 3, 5} {
		res, cost, err := ix.PossibleKNNWithCost(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if cost.LeafIO <= 0 || cost.Candidates <= 0 {
			t.Fatalf("k=%d: missing retrieval cost: %+v", k, cost)
		}
		var sum float64
		for _, r := range res {
			sum += r.Prob
		}
		// Top-k membership probabilities sum to k.
		if math.Abs(sum-float64(k)) > 1e-6 {
			t.Fatalf("k=%d: membership probabilities sum to %g", k, sum)
		}
	}
	// k=1 must match the plain PNNQ winner set.
	k1, _ := ix.PossibleKNN(q, 1)
	full, _ := ix.Query(q)
	if len(k1) != len(full) {
		t.Fatalf("k=1 (%d results) disagrees with Query (%d)", len(k1), len(full))
	}
	for i := range k1 {
		if k1[i].ID != full[i].ID || math.Abs(k1[i].Prob-full[i].Prob) > 1e-9 {
			t.Fatalf("k=1 result %d: (%d, %g) vs Query (%d, %g)",
				i, k1[i].ID, k1[i].Prob, full[i].ID, full[i].Prob)
		}
	}
}

func TestPossibleRNNPublicAPI(t *testing.T) {
	db := buildSmallDB(t, 60, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// q inside some object's region: that object must be an RNN candidate.
	target := db.Objects()[0]
	q := target.Region.Center()
	got, cost, err := ix.PossibleRNNWithCost(q)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Candidates != len(got) {
		t.Fatalf("cost %+v disagrees with %d candidates", cost, len(got))
	}
	found := false
	for _, id := range got {
		if id == target.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("object %d containing q missing from RNN candidates %v", target.ID, got)
	}
}

// PossibleKNN(q, 1) must agree with Query(q) on the ID set (and the
// probabilities) across many random query points — the k-NN path goes
// through the region R*-tree, the PNNQ path through the octree of UBRs, and
// both must land on the same answer.
func TestPossibleKNN1MatchesQueryIDs(t *testing.T) {
	db := buildSmallDB(t, 80, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		q := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		knn, err := ix.PossibleKNN(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		full, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		knnIDs := map[ID]float64{}
		for _, r := range knn {
			knnIDs[r.ID] = r.Prob
		}
		if len(knnIDs) != len(full) {
			t.Fatalf("iter %d: PossibleKNN(1) returned %d IDs, Query %d", iter, len(knnIDs), len(full))
		}
		for _, r := range full {
			p, ok := knnIDs[r.ID]
			if !ok {
				t.Fatalf("iter %d: Query winner %d missing from PossibleKNN(1)", iter, r.ID)
			}
			if math.Abs(p-r.Prob) > 1e-9 {
				t.Fatalf("iter %d: object %d prob %g vs Query %g", iter, r.ID, p, r.Prob)
			}
		}
	}
}

// The public candidate sets ride the R*-tree; they must equal the retained
// brute-force scans at every point, including after the index absorbs
// inserts and deletes.
func TestExtensionCandidatesMatchOraclesThroughUpdates(t *testing.T) {
	db := buildSmallDB(t, 70, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	check := func(stage string) {
		t.Helper()
		for iter := 0; iter < 15; iter++ {
			q := Point{rng.Float64() * 1000, rng.Float64() * 1000}
			group := []Point{q, {rng.Float64() * 1000, rng.Float64() * 1000}}
			for _, agg := range []Agg{AggSum, AggMax} {
				got, err := ix.GroupNNCandidates(group, agg)
				if err != nil {
					t.Fatal(err)
				}
				want := extquery.GroupNNBruteForce(ix.DB(), group, agg)
				if len(got) != len(want) {
					t.Fatalf("%s groupnn agg=%d: %v != oracle %v", stage, agg, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s groupnn agg=%d: %v != oracle %v", stage, agg, got, want)
					}
				}
			}
			for _, k := range []int{1, 4, 9} {
				got, err := ix.PossibleKNNCandidates(q, k)
				if err != nil {
					t.Fatal(err)
				}
				want := extquery.KNNCandidates(ix.DB(), q, k)
				if len(got) != len(want) {
					t.Fatalf("%s knn k=%d: %v != oracle %v", stage, k, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s knn k=%d: %v != oracle %v", stage, k, got, want)
					}
				}
			}
			rnn, err := ix.PossibleRNN(q)
			if err != nil {
				t.Fatal(err)
			}
			wantRNN := extquery.RNNCandidates(ix.DB(), q, testOptions().MMax)
			if len(rnn) != len(wantRNN) {
				t.Fatalf("%s rnn: %v != oracle %v", stage, rnn, wantRNN)
			}
			for i := range rnn {
				if rnn[i] != wantRNN[i] {
					t.Fatalf("%s rnn: %v != oracle %v", stage, rnn, wantRNN)
				}
			}
		}
	}
	check("initial")
	// Churn: delete a slice of objects, insert replacements elsewhere.
	for i := 0; i < 15; i++ {
		if err := ix.Delete(ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ {
		lo := Point{rng.Float64() * 950, rng.Float64() * 950}
		region := NewRect(lo, Point{lo[0] + 5 + rng.Float64()*30, lo[1] + 5 + rng.Float64()*30})
		o := &Object{ID: ID(5000 + i), Region: region, Instances: SampleUniform(region, 20, int64(i))}
		if err := ix.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	check("after churn")
}

// PossibleRNN must honor the configured MMax granularity rather than a
// hardcoded depth: at MMax=0 the domination recursion never bisects, so the
// candidate set can only grow (conservative false negatives of prunability).
func TestPossibleRNNHonorsMMax(t *testing.T) {
	db := buildSmallDB(t, 60, false)
	coarseOpts := testOptions()
	coarseOpts.MMax = 1
	coarse, err := Build(db.Clone(), coarseOpts)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Build(db.Clone(), testOptions()) // default MMax = 10
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	sameIDs := func(got []ID, want []ID) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	diverged := false
	for iter := 0; iter < 40; iter++ {
		q := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		c, err := coarse.PossibleRNN(q)
		if err != nil {
			t.Fatal(err)
		}
		f, err := fine.PossibleRNN(q)
		if err != nil {
			t.Fatal(err)
		}
		// Each index must match the scan oracle at its own configured depth,
		// element for element.
		wantC := extquery.RNNCandidates(db, q, 1)
		wantF := extquery.RNNCandidates(db, q, 10)
		if !sameIDs(c, wantC) {
			t.Fatalf("coarse at %v: %v, oracle %v", q, c, wantC)
		}
		if !sameIDs(f, wantF) {
			t.Fatalf("fine at %v: %v, oracle %v", q, f, wantF)
		}
		if !sameIDs(wantC, wantF) {
			diverged = true
		}
	}
	// The probes must actually distinguish the depths somewhere — otherwise a
	// hardcoded depth would slip through the oracle comparison above.
	if !diverged {
		t.Fatal("depth 1 and depth 10 oracles agreed on every probe; test layout cannot detect MMax plumbing")
	}
}
