package pvoronoi

import (
	"math"
	"testing"
)

func TestGroupNNPublicAPI(t *testing.T) {
	db := buildSmallDB(t, 60, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	group := []Point{{200, 200}, {400, 300}, {300, 500}}
	for _, agg := range []Agg{AggSum, AggMax} {
		cands := ix.GroupNNCandidates(group, agg)
		if len(cands) == 0 {
			t.Fatalf("agg=%d: no candidates", agg)
		}
		results, err := ix.GroupNN(group, agg)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		inCands := map[ID]bool{}
		for _, id := range cands {
			inCands[id] = true
		}
		for _, r := range results {
			sum += r.Prob
			if !inCands[r.ID] {
				t.Fatalf("result %d not among candidates", r.ID)
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("agg=%d: probabilities sum to %g", agg, sum)
		}
	}
}

func TestPossibleKNNPublicAPI(t *testing.T) {
	db := buildSmallDB(t, 60, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := Point{500, 500}
	for _, k := range []int{1, 3, 5} {
		res, err := ix.PossibleKNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, r := range res {
			sum += r.Prob
		}
		// Top-k membership probabilities sum to k.
		if math.Abs(sum-float64(k)) > 1e-6 {
			t.Fatalf("k=%d: membership probabilities sum to %g", k, sum)
		}
	}
	// k=1 must match the plain PNNQ winner set.
	k1, _ := ix.PossibleKNN(q, 1)
	full, _ := ix.Query(q)
	if len(k1) != len(full) {
		t.Fatalf("k=1 (%d results) disagrees with Query (%d)", len(k1), len(full))
	}
	for i := range k1 {
		if k1[i].ID != full[i].ID || math.Abs(k1[i].Prob-full[i].Prob) > 1e-9 {
			t.Fatalf("k=1 result %d: (%d, %g) vs Query (%d, %g)",
				i, k1[i].ID, k1[i].Prob, full[i].ID, full[i].Prob)
		}
	}
}

func TestPossibleRNNPublicAPI(t *testing.T) {
	db := buildSmallDB(t, 60, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// q inside some object's region: that object must be an RNN candidate.
	target := db.Objects()[0]
	q := target.Region.Center()
	got := ix.PossibleRNN(q)
	found := false
	for _, id := range got {
		if id == target.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("object %d containing q missing from RNN candidates %v", target.ID, got)
	}
}
