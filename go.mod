module pvoronoi

go 1.24
