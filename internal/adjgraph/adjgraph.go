// Package adjgraph materializes the PV-index's Voronoi-adjacency relation:
// one row per object holding its stored UBR and the sorted IDs of every
// object whose UBR intersects it. Because a possible Voronoi cell V(o) is
// contained in UBR(o), two cells that touch anywhere have intersecting UBRs
// — so the relation is a conservative superset of PV-cell adjacency, exactly
// the connectivity best-first kNN/group-NN expansion needs (extquery). It is
// also precisely the affected-set relation of the paper's Lemma 8 update
// filters, which is what makes it maintainable incrementally: an update
// recomputes the rows of exactly the objects whose UBRs it recomputed.
//
// The graph is copy-on-write at bucket granularity, mirroring the octree and
// hash-table COW discipline of the MVCC versions: CloneCOW is O(buckets),
// the first mutation of a bucket copies its rows (a memcpy of the dense
// pointer slice plus the overflow map), and rows themselves are immutable
// once stored — a mutation installs a fresh *Row. A published
// graph is therefore never modified; readers pinned to any version can walk
// rows without synchronization, and discarding an unpublished clone is a
// complete rollback (the graph owns no pagestore resources).
package adjgraph

import (
	"fmt"
	"sort"

	"pvoronoi/internal/geom"
)

// numBuckets is the COW granularity: IDs shard by their low bits, so a
// write batch touching a localized neighborhood copies few buckets.
const numBuckets = 256

// Row is one object's adjacency row: its stored UBR plus the ascending IDs
// of every object whose UBR intersects it. Rows are immutable once stored —
// a heap item or pinned reader may hold a *Row across concurrent writes.
type Row struct {
	UBR       geom.Rect
	Neighbors []uint32
}

// denseCap bounds the dense fast path: IDs below it live in a slice indexed
// by id>>8 (their sequence number within the bucket), IDs at or above it in
// the overflow map. The graph expansion probes rows once per distinct
// neighbor, so for the common dense-ID case the probe must be an indexed
// load, not a hash. 1<<20 caps a full bucket's slice at 4096 pointers.
const denseCap = 1 << 20

// bucket holds a shard of rows: a dense slice for small IDs (indexed by
// id>>8 — the ID's rank within this bucket) plus an overflow map for large
// ones. owner identifies the graph allowed to mutate the shard in place;
// any other graph sharing the bucket must copy it first (copy-on-write).
// Row pointers stay immutable under both paths, so readers pinned to a
// published graph are never affected by a clone's writes.
type bucket struct {
	owner *Graph
	dense []*Row          // dense[id>>8] for id < denseCap; nil slots = absent
	rows  map[uint32]*Row // overflow: id >= denseCap
}

// Graph is the adjacency relation of one index version. The zero value is
// not ready; use New. Not safe for concurrent mutation — the MVCC writer
// owns at most one mutable clone at a time — but any number of readers may
// traverse a graph that is no longer being mutated (i.e. published).
type Graph struct {
	buckets [numBuckets]*bucket
	rows    int
	edges   int // directed neighbor links; undirected edge count is edges/2

	// maxDiag is an upper bound of the largest object diameter ever stored
	// (the caller supplies each row's diameter — pvindex passes the
	// uncertainty-region diagonal, the quantity the group-query slack
	// argument actually needs). It grows monotonically with Set and is
	// deliberately not lowered by Delete (a stale bound only loosens the
	// group-query expansion stop rule, never its exactness). FromImage and
	// full rebuilds reset it exactly.
	maxDiag float64
}

// New returns an empty graph.
func New() *Graph {
	g := &Graph{}
	for i := range g.buckets {
		g.buckets[i] = &bucket{owner: g}
	}
	return g
}

// get returns id's row within this shard.
func (b *bucket) get(id uint32) (*Row, bool) {
	if id < denseCap {
		if i := int(id >> 8); i < len(b.dense) {
			if r := b.dense[i]; r != nil {
				return r, true
			}
		}
		return nil, false
	}
	r, ok := b.rows[id]
	return r, ok
}

// put installs id's row within this shard, growing the dense slice (next
// power of two) or allocating the overflow map on demand.
func (b *bucket) put(id uint32, r *Row) {
	if id < denseCap {
		i := int(id >> 8)
		if i >= len(b.dense) {
			grown := 16
			for grown <= i {
				grown *= 2
			}
			next := make([]*Row, grown)
			copy(next, b.dense)
			b.dense = next
		}
		b.dense[i] = r
		return
	}
	if b.rows == nil {
		b.rows = make(map[uint32]*Row)
	}
	b.rows[id] = r
}

// del removes id's row within this shard.
func (b *bucket) del(id uint32) {
	if id < denseCap {
		if i := int(id >> 8); i < len(b.dense) {
			b.dense[i] = nil
		}
		return
	}
	delete(b.rows, id)
}

// CloneCOW returns a mutable copy sharing every bucket with g. The clone
// copies a bucket's row map only when first writing to it; g itself must not
// be mutated afterwards (it is the published predecessor).
func (g *Graph) CloneCOW() *Graph {
	c := &Graph{rows: g.rows, edges: g.edges, maxDiag: g.maxDiag}
	c.buckets = g.buckets
	return c
}

// bucketFor returns the shard holding id, read-only.
func (g *Graph) bucketFor(id uint32) *bucket { return g.buckets[id&(numBuckets-1)] }

// writable returns the shard holding id with g as its owner, copying the
// shared slice/map on first write (the dense copy is a straight memcpy of
// row pointers — cheaper than the old per-entry map copy).
func (g *Graph) writable(id uint32) *bucket {
	i := id & (numBuckets - 1)
	b := g.buckets[i]
	if b.owner == g {
		return b
	}
	nb := &bucket{owner: g}
	if len(b.dense) > 0 {
		nb.dense = make([]*Row, len(b.dense))
		copy(nb.dense, b.dense)
	}
	if len(b.rows) > 0 {
		nb.rows = make(map[uint32]*Row, len(b.rows))
		for k, v := range b.rows {
			nb.rows[k] = v
		}
	}
	g.buckets[i] = nb
	return nb
}

// Get returns id's row. The row is immutable — do not modify it.
func (g *Graph) Get(id uint32) (*Row, bool) {
	return g.bucketFor(id).get(id)
}

// Len returns the number of rows (objects).
func (g *Graph) Len() int { return g.rows }

// Edges returns the number of directed neighbor links (twice the undirected
// edge count, since the relation is symmetric).
func (g *Graph) Edges() int { return g.edges }

// Set installs id's row with the given UBR, object diameter, and neighbor
// set, replacing any previous row. diam is the row's contribution to
// MaxDiag (pvindex passes the uncertainty-region diagonal); neighbors is
// adopted (sorted in place) — the caller must not reuse it. The UBR
// coordinates are copied into one backing array (lo then hi) so the
// expansion's per-neighbor mindist reads one cache line, not two
// allocations; the stored row never aliases the caller's rect.
func (g *Graph) Set(id uint32, ubr geom.Rect, diam float64, neighbors []uint32) {
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
	b := g.writable(id)
	if old, ok := b.get(id); ok {
		g.edges -= len(old.Neighbors)
	} else {
		g.rows++
	}
	g.edges += len(neighbors)
	if diam > g.maxDiag {
		g.maxDiag = diam
	}
	b.put(id, &Row{UBR: compactRect(ubr), Neighbors: neighbors})
}

// compactRect deep-copies r with Lo and Hi sharing a single backing array.
func compactRect(r geom.Rect) geom.Rect {
	d := r.Dim()
	if d == 0 {
		return r
	}
	flat := make([]float64, 2*d)
	copy(flat[:d], r.Lo)
	copy(flat[d:], r.Hi)
	return geom.Rect{Lo: flat[:d:d], Hi: flat[d:]}
}

// MaxDiag returns an upper bound of the largest stored object diameter —
// the slack term of the group-query expansion stop rule. It may be
// stale-high after deletions (sound: a larger slack only widens the
// search).
func (g *Graph) MaxDiag() float64 { return g.maxDiag }

// Delete removes id's row (not its reverse links — the maintenance pass
// patches those explicitly). It reports whether the row existed.
func (g *Graph) Delete(id uint32) bool {
	b := g.writable(id)
	old, ok := b.get(id)
	if !ok {
		return false
	}
	g.rows--
	g.edges -= len(old.Neighbors)
	b.del(id)
	return true
}

// AddNeighbor inserts n into id's neighbor list if absent (idempotent).
// It reports whether the list changed. Missing rows are ignored.
func (g *Graph) AddNeighbor(id, n uint32) bool {
	b := g.writable(id)
	old, ok := b.get(id)
	if !ok {
		return false
	}
	i := sort.Search(len(old.Neighbors), func(k int) bool { return old.Neighbors[k] >= n })
	if i < len(old.Neighbors) && old.Neighbors[i] == n {
		return false
	}
	ns := make([]uint32, 0, len(old.Neighbors)+1)
	ns = append(ns, old.Neighbors[:i]...)
	ns = append(ns, n)
	ns = append(ns, old.Neighbors[i:]...)
	b.put(id, &Row{UBR: old.UBR, Neighbors: ns})
	g.edges++
	return true
}

// RemoveNeighbor removes n from id's neighbor list if present (idempotent).
// It reports whether the list changed. Missing rows are ignored.
func (g *Graph) RemoveNeighbor(id, n uint32) bool {
	b := g.writable(id)
	old, ok := b.get(id)
	if !ok {
		return false
	}
	i := sort.Search(len(old.Neighbors), func(k int) bool { return old.Neighbors[k] >= n })
	if i >= len(old.Neighbors) || old.Neighbors[i] != n {
		return false
	}
	ns := make([]uint32, 0, len(old.Neighbors)-1)
	ns = append(ns, old.Neighbors[:i]...)
	ns = append(ns, old.Neighbors[i+1:]...)
	b.put(id, &Row{UBR: old.UBR, Neighbors: ns})
	g.edges--
	return true
}

// ForEach visits every row in unspecified order; returning false stops the
// walk. Rows are immutable — do not modify them.
func (g *Graph) ForEach(fn func(id uint32, row *Row) bool) {
	for bi, b := range g.buckets {
		for i, row := range b.dense {
			if row == nil {
				continue
			}
			if !fn(uint32(i)<<8|uint32(bi), row) {
				return
			}
		}
		for id, row := range b.rows {
			if !fn(id, row) {
				return
			}
		}
	}
}

// Image is the graph's flat serialized form: IDs ascending, each id's UBR as
// 2*Dim coordinates (lo then hi) in UBRs, its neighbor count in Lens, and
// all neighbor lists concatenated in Flat. Deterministic for identical
// graphs, gob-friendly, and reconstructible in one pass.
type Image struct {
	Dim     int
	MaxDiag float64
	IDs     []uint32
	UBRs    []float64
	Lens    []uint32
	Flat    []uint32
}

// Image serializes the graph.
func (g *Graph) Image() *Image {
	img := &Image{
		MaxDiag: g.maxDiag,
		IDs:     make([]uint32, 0, g.rows),
		Lens:    make([]uint32, 0, g.rows),
		Flat:    make([]uint32, 0, g.edges),
	}
	g.ForEach(func(id uint32, _ *Row) bool {
		img.IDs = append(img.IDs, id)
		return true
	})
	sort.Slice(img.IDs, func(i, j int) bool { return img.IDs[i] < img.IDs[j] })
	for _, id := range img.IDs {
		row, _ := g.Get(id)
		if img.Dim == 0 {
			img.Dim = row.UBR.Dim()
			img.UBRs = make([]float64, 0, 2*img.Dim*g.rows)
		}
		img.UBRs = append(img.UBRs, row.UBR.Lo...)
		img.UBRs = append(img.UBRs, row.UBR.Hi...)
		img.Lens = append(img.Lens, uint32(len(row.Neighbors)))
		img.Flat = append(img.Flat, row.Neighbors...)
	}
	return img
}

// FromImage reconstructs a graph from its serialized form.
func FromImage(img *Image) (*Graph, error) {
	if img == nil {
		return nil, fmt.Errorf("adjgraph: nil image")
	}
	if len(img.Lens) != len(img.IDs) {
		return nil, fmt.Errorf("adjgraph: image has %d ids but %d lens", len(img.IDs), len(img.Lens))
	}
	if img.Dim > 0 && len(img.UBRs) != 2*img.Dim*len(img.IDs) {
		return nil, fmt.Errorf("adjgraph: image has %d UBR coords, want %d", len(img.UBRs), 2*img.Dim*len(img.IDs))
	}
	if img.MaxDiag < 0 || img.MaxDiag != img.MaxDiag {
		return nil, fmt.Errorf("adjgraph: image has invalid max diameter %v", img.MaxDiag)
	}
	g := New()
	flat := img.Flat
	coords := img.UBRs
	for i, id := range img.IDs {
		n := int(img.Lens[i])
		if n > len(flat) {
			return nil, fmt.Errorf("adjgraph: image row %d overruns flat neighbor array", id)
		}
		var ubr geom.Rect
		if img.Dim > 0 {
			ubr = geom.Rect{
				Lo: geom.Point(coords[:img.Dim:img.Dim]),
				Hi: geom.Point(coords[img.Dim : 2*img.Dim : 2*img.Dim]),
			}
			coords = coords[2*img.Dim:]
		}
		g.Set(id, ubr, 0, append([]uint32(nil), flat[:n]...))
		flat = flat[n:]
	}
	if len(flat) != 0 {
		return nil, fmt.Errorf("adjgraph: image has %d trailing neighbor entries", len(flat))
	}
	g.maxDiag = img.MaxDiag
	return g, nil
}
