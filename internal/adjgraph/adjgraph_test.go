package adjgraph

import (
	"math/rand"
	"reflect"
	"testing"

	"pvoronoi/internal/geom"
)

func rect(lo, hi float64) geom.Rect {
	return geom.NewRect(geom.Point{lo, lo}, geom.Point{hi, hi})
}

func TestSetGetDelete(t *testing.T) {
	g := New()
	g.Set(1, rect(0, 10), 10, []uint32{3, 2})
	g.Set(2, rect(5, 15), 10, []uint32{1})
	g.Set(3, rect(8, 20), 12, []uint32{1})

	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	if g.Edges() != 4 {
		t.Fatalf("Edges = %d, want 4", g.Edges())
	}
	row, ok := g.Get(1)
	if !ok {
		t.Fatal("row 1 missing")
	}
	if !reflect.DeepEqual(row.Neighbors, []uint32{2, 3}) {
		t.Fatalf("row 1 neighbors = %v, want sorted [2 3]", row.Neighbors)
	}
	if !row.UBR.Equal(rect(0, 10)) {
		t.Fatalf("row 1 UBR = %v", row.UBR)
	}

	// Replacing a row adjusts the edge count.
	g.Set(1, rect(0, 12), 12, []uint32{2})
	if g.Len() != 3 || g.Edges() != 3 {
		t.Fatalf("after replace: Len=%d Edges=%d, want 3/3", g.Len(), g.Edges())
	}

	if !g.Delete(2) {
		t.Fatal("Delete(2) = false")
	}
	if g.Delete(2) {
		t.Fatal("second Delete(2) = true")
	}
	if g.Len() != 2 || g.Edges() != 2 {
		t.Fatalf("after delete: Len=%d Edges=%d, want 2/2", g.Len(), g.Edges())
	}
}

func TestNeighborPatchesIdempotent(t *testing.T) {
	g := New()
	g.Set(7, rect(0, 10), 10, []uint32{5})
	if !g.AddNeighbor(7, 9) {
		t.Fatal("AddNeighbor(7,9) = false")
	}
	if g.AddNeighbor(7, 9) {
		t.Fatal("duplicate AddNeighbor(7,9) = true")
	}
	row, _ := g.Get(7)
	if !reflect.DeepEqual(row.Neighbors, []uint32{5, 9}) {
		t.Fatalf("neighbors = %v, want [5 9]", row.Neighbors)
	}
	if !g.RemoveNeighbor(7, 5) {
		t.Fatal("RemoveNeighbor(7,5) = false")
	}
	if g.RemoveNeighbor(7, 5) {
		t.Fatal("second RemoveNeighbor(7,5) = true")
	}
	if g.Edges() != 1 {
		t.Fatalf("Edges = %d, want 1", g.Edges())
	}
	// Patches on missing rows are no-ops.
	if g.AddNeighbor(99, 1) || g.RemoveNeighbor(99, 1) {
		t.Fatal("patch on missing row reported a change")
	}
}

// TestCloneCOWIsolation verifies that mutating a clone never disturbs the
// parent: the parent's rows, row pointers, and counters stay bit-identical,
// which is what lets a published MVCC version share its graph with the
// writer's next working version.
func TestCloneCOWIsolation(t *testing.T) {
	parent := New()
	rng := rand.New(rand.NewSource(1))
	for id := uint32(0); id < 600; id++ {
		lo := rng.Float64() * 100
		ns := []uint32{(id + 1) % 600, (id + 7) % 600}
		parent.Set(id, rect(lo, lo+5), 5, ns)
	}
	snapRows := make(map[uint32]*Row, 600)
	parent.ForEach(func(id uint32, row *Row) bool {
		snapRows[id] = row
		return true
	})
	wantLen, wantEdges := parent.Len(), parent.Edges()

	child := parent.CloneCOW()
	for id := uint32(0); id < 600; id += 3 {
		child.Set(id, rect(float64(id), float64(id)+1), 1, []uint32{id % 5})
	}
	for id := uint32(1); id < 600; id += 3 {
		child.Delete(id)
	}
	child.AddNeighbor(2, 555)
	child.RemoveNeighbor(5, 6)

	if parent.Len() != wantLen || parent.Edges() != wantEdges {
		t.Fatalf("parent counters changed: %d/%d, want %d/%d",
			parent.Len(), parent.Edges(), wantLen, wantEdges)
	}
	count := 0
	parent.ForEach(func(id uint32, row *Row) bool {
		count++
		if snapRows[id] != row {
			t.Fatalf("parent row %d pointer changed under clone mutation", id)
		}
		return true
	})
	if count != wantLen {
		t.Fatalf("parent row count = %d, want %d", count, wantLen)
	}
}

func TestImageRoundTrip(t *testing.T) {
	g := New()
	rng := rand.New(rand.NewSource(2))
	for id := uint32(0); id < 300; id++ {
		lo := rng.Float64() * 1000
		n := rng.Intn(5)
		ns := make([]uint32, 0, n)
		for j := 0; j < n; j++ {
			ns = append(ns, rng.Uint32()%300)
		}
		g.Set(id*3, rect(lo, lo+rng.Float64()*50), rng.Float64()*40, dedup(ns))
	}

	got, err := FromImage(g.Image())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != g.Len() || got.Edges() != g.Edges() {
		t.Fatalf("round trip counters %d/%d, want %d/%d", got.Len(), got.Edges(), g.Len(), g.Edges())
	}
	g.ForEach(func(id uint32, row *Row) bool {
		r2, ok := got.Get(id)
		if !ok {
			t.Fatalf("row %d missing after round trip", id)
		}
		if !sameU32(row.Neighbors, r2.Neighbors) {
			t.Fatalf("row %d neighbors %v != %v", id, row.Neighbors, r2.Neighbors)
		}
		if !row.UBR.Equal(r2.UBR) {
			t.Fatalf("row %d UBR %v != %v", id, row.UBR, r2.UBR)
		}
		return true
	})

	// Identical graphs serialize identically (deterministic image).
	img1, img2 := g.Image(), got.Image()
	if !reflect.DeepEqual(img1, img2) {
		t.Fatal("images of equal graphs differ")
	}
}

func TestFromImageRejectsCorrupt(t *testing.T) {
	if _, err := FromImage(nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if _, err := FromImage(&Image{IDs: []uint32{1}, Lens: []uint32{5}, Flat: []uint32{1}}); err == nil {
		t.Fatal("overrunning Lens accepted")
	}
	if _, err := FromImage(&Image{IDs: []uint32{1}, Lens: []uint32{0}, Flat: []uint32{1, 2}}); err == nil {
		t.Fatal("trailing Flat entries accepted")
	}
	if _, err := FromImage(&Image{Dim: 2, IDs: []uint32{1}, Lens: []uint32{0}, UBRs: []float64{0, 0}}); err == nil {
		t.Fatal("short UBR array accepted")
	}
}

func sameU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func dedup(ns []uint32) []uint32 {
	seen := map[uint32]struct{}{}
	out := ns[:0]
	for _, n := range ns {
		if _, dup := seen[n]; dup {
			continue
		}
		seen[n] = struct{}{}
		out = append(out, n)
	}
	return out
}
