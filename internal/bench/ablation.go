package bench

import (
	"time"

	"pvoronoi/internal/dataset"
	"pvoronoi/internal/pvindex"
	"pvoronoi/internal/stats"
)

// AblationMemBudget measures how the primary index's non-leaf memory budget
// trades main memory for query I/O: a starved octree cannot split leaves and
// must chain pages, driving up the per-query page reads. This isolates the
// design choice behind the paper's 5 MB default.
func AblationMemBudget(p Params) *stats.Table {
	n := p.n(60000)
	db := synthetic(p, n, 3, 60)
	queries := dataset.QueryPoints(db.Domain, p.Queries, p.Seed+100)
	tab := stats.NewTable("Ablation: octree memory budget vs query cost  (|S|=60k scaled, d=3)",
		"budget (KB)", "leaves", "pages", "IO/query", "Tq")
	for _, budget := range []int{1 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 5 << 20} {
		cfg := pvindex.DefaultConfig()
		cfg.MemBudget = budget
		ix, err := pvindex.Build(db, cfg)
		if err != nil {
			panic(err)
		}
		cost := measurePV(ix, db, queries)
		ps := ix.PrimaryStats()
		tab.AddRow(budget/1024, ps.Leaves, ps.Pages, cost.IO, cost.Total())
		p.logf("ablation-mem: budget=%dKB done\n", budget/1024)
	}
	return tab
}

// AblationPrimaryIndex compares the chosen octree primary index against the
// R-tree alternative the paper rejects in §VI-A footnote 3: overlapping
// R-tree node regions force a point query to descend several subtrees,
// while octree cells tile space and a query reads exactly one leaf chain.
func AblationPrimaryIndex(p Params) *stats.Table {
	n := p.n(60000)
	db := synthetic(p, n, 3, 60)
	queries := dataset.QueryPoints(db.Domain, p.Queries, p.Seed+100)
	ix := buildPV(db, defaultStrategy)

	octreeCost := measurePV(ix, db, queries)

	rp := pvindex.NewRTreePrimary(ix, 100)
	rp.ResetLeafIO()
	var orTime time.Duration
	for _, q := range queries {
		t0 := time.Now()
		rp.PossibleNN(q)
		orTime += time.Since(t0)
	}
	rtreeIO := float64(rp.LeafIO()) / float64(len(queries))

	tab := stats.NewTable("Ablation: primary index — octree vs R-tree over UBRs  (§VI-A fn.3)",
		"primary", "T_OR", "IO/query")
	tab.AddRow("octree", octreeCost.OR, octreeCost.IO)
	tab.AddRow("R-tree", orTime/time.Duration(len(queries)), rtreeIO)
	return tab
}

// AblationParallelBuild measures construction scaling with SE workers — the
// bulk-loading direction from the paper's conclusion. UBR computation is
// embarrassingly parallel; insertion serializes, bounding the speedup.
func AblationParallelBuild(p Params) *stats.Table {
	n := p.n(60000)
	db := synthetic(p, n, 3, 60)
	tab := stats.NewTable("Ablation: parallel construction  (|S|=60k scaled, d=3, IS)",
		"workers", "Tc", "speedup")
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := pvindex.DefaultConfig()
		ix, err := pvindex.BuildParallel(db, cfg, workers)
		if err != nil {
			panic(err)
		}
		if workers == 1 {
			base = ix.Build.Total
		}
		tab.AddRow(workers, ix.Build.Total, ratio(base, ix.Build.Total))
		p.logf("ablation-parallel: workers=%d done\n", workers)
	}
	return tab
}
