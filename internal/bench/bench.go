// Package bench implements the paper's full experimental harness: one
// function per table/figure of §VII, shared by cmd/pvbench (paper-scale
// sweeps) and the repository's bench_test.go (reduced sizes).
//
// Absolute durations will differ from the paper's 2008-era testbed; the
// harness exists to reproduce the figures' shapes: which method wins, by
// what factor, and how the curves bend across each sweep. EXPERIMENTS.md
// records paper-vs-measured values for every figure.
package bench

import (
	"fmt"
	"io"
	"time"

	"pvoronoi/internal/core"
	"pvoronoi/internal/dataset"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/pnnq"
	"pvoronoi/internal/pvindex"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
	"pvoronoi/internal/uvindex"
)

// Params scales the experiments. Scale multiplies the paper's dataset sizes
// (1.0 = paper scale; the default harness setting is 0.05–0.1 so a full run
// finishes in minutes on a laptop).
type Params struct {
	Scale     float64
	Queries   int // queries per data point (paper: 50)
	Instances int // pdf samples per object (paper: 500)
	Seed      int64
	Out       io.Writer
}

// DefaultParams returns laptop-friendly settings.
func DefaultParams() Params {
	return Params{Scale: 0.05, Queries: 50, Instances: 100, Seed: 1}
}

func (p Params) n(paperN int) int {
	n := int(float64(paperN) * p.Scale)
	if n < 50 {
		n = 50
	}
	return n
}

func (p Params) logf(format string, args ...interface{}) {
	if p.Out != nil {
		fmt.Fprintf(p.Out, format, args...)
	}
}

// --- shared machinery ------------------------------------------------------

// queryCost is the measured per-query cost profile of one index on one
// workload.
type queryCost struct {
	OR      time.Duration // Step 1: object retrieval
	PC      time.Duration // Step 2: probability computation
	IO      float64       // leaf page accesses per query
	AvgCand float64       // Step-1 survivors per query
}

func (c queryCost) Total() time.Duration { return c.OR + c.PC }

// stepTwo computes qualification probabilities for the Step-1 survivors,
// reading instance data from the database (identical for every index, as in
// the paper: "the amount of time spent on PC is the same for both methods").
func stepTwo(db *uncertain.DB, ids []uncertain.ID, q geom.Point) []pnnq.Result {
	data := make([]pnnq.CandidateData, 0, len(ids))
	for _, id := range ids {
		o := db.Get(id)
		if o == nil {
			continue
		}
		data = append(data, pnnq.CandidateData{ID: id, Instances: o.Instances})
	}
	return pnnq.Compute(data, q)
}

// measurePV runs the query workload against a PV-index.
func measurePV(ix *pvindex.Index, db *uncertain.DB, queries []geom.Point) queryCost {
	var cost queryCost
	ix.Store().ResetStats()
	var cands int
	for _, q := range queries {
		t0 := time.Now()
		cs, err := ix.PossibleNN(q)
		if err != nil {
			panic(err)
		}
		cost.OR += time.Since(t0)
		ids := make([]uncertain.ID, len(cs))
		for i, c := range cs {
			ids[i] = c.ID
		}
		cands += len(ids)
		t1 := time.Now()
		stepTwo(db, ids, q)
		cost.PC += time.Since(t1)
	}
	n := len(queries)
	cost.OR /= time.Duration(n)
	cost.PC /= time.Duration(n)
	cost.IO = float64(ix.Store().Stats().Reads) / float64(n)
	cost.AvgCand = float64(cands) / float64(n)
	return cost
}

// measureRTree runs the workload against the R*-tree baseline
// (branch-and-prune PossibleNN of Cheng et al. 2004).
func measureRTree(tree *rtree.Tree, db *uncertain.DB, queries []geom.Point) queryCost {
	var cost queryCost
	tree.ResetLeafIO()
	var cands int
	for _, q := range queries {
		t0 := time.Now()
		raw := tree.PossibleNN(q)
		cost.OR += time.Since(t0)
		ids := make([]uncertain.ID, len(raw))
		for i, r := range raw {
			ids[i] = uncertain.ID(r)
		}
		cands += len(ids)
		t1 := time.Now()
		stepTwo(db, ids, q)
		cost.PC += time.Since(t1)
	}
	n := len(queries)
	cost.OR /= time.Duration(n)
	cost.PC /= time.Duration(n)
	cost.IO = float64(tree.LeafIO()) / float64(n)
	cost.AvgCand = float64(cands) / float64(n)
	return cost
}

// measureUV runs the workload against the UV-index (2-D only).
func measureUV(ix *uvindex.Index, db *uncertain.DB, queries []geom.Point) queryCost {
	var cost queryCost
	ix.Store().ResetStats()
	var cands int
	for _, q := range queries {
		t0 := time.Now()
		cs, err := ix.PossibleNN(q)
		if err != nil {
			panic(err)
		}
		cost.OR += time.Since(t0)
		ids := make([]uncertain.ID, len(cs))
		for i, c := range cs {
			ids[i] = c.ID
		}
		cands += len(ids)
		t1 := time.Now()
		stepTwo(db, ids, q)
		cost.PC += time.Since(t1)
	}
	n := len(queries)
	cost.OR /= time.Duration(n)
	cost.PC /= time.Duration(n)
	cost.IO = float64(ix.Store().Stats().Reads) / float64(n)
	cost.AvgCand = float64(cands) / float64(n)
	return cost
}

func buildPV(db *uncertain.DB, strategy core.CSetStrategy) *pvindex.Index {
	cfg := pvindex.DefaultConfig()
	cfg.SE.Strategy = strategy
	ix, err := pvindex.Build(db, cfg)
	if err != nil {
		panic(err)
	}
	return ix
}

func buildPVDelta(db *uncertain.DB, delta float64) *pvindex.Index {
	cfg := pvindex.DefaultConfig()
	cfg.SE.Delta = delta
	ix, err := pvindex.Build(db, cfg)
	if err != nil {
		panic(err)
	}
	return ix
}

func buildRTree(db *uncertain.DB) *rtree.Tree {
	return core.BuildRegionTree(db, rtree.DefaultFanout)
}

func synthetic(p Params, n, d int, maxSide float64) *uncertain.DB {
	return dataset.Synthetic(dataset.SyntheticParams{
		N: n, Dim: d, MaxSide: maxSide, Instances: p.Instances, Seed: p.Seed,
	})
}

// sweepSizes returns the paper's |S| sweep, scaled.
func (p Params) sweepSizes() []int {
	out := make([]int, 0, 5)
	for _, n := range []int{20000, 40000, 60000, 80000, 100000} {
		out = append(out, p.n(n))
	}
	return out
}
