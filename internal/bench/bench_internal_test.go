package bench

import (
	"strings"
	"testing"
	"time"

	"pvoronoi/internal/uncertain"
)

func TestParamsScaling(t *testing.T) {
	p := Params{Scale: 0.1}
	if got := p.n(20000); got != 2000 {
		t.Fatalf("n(20000) = %d", got)
	}
	// Floor guards against degenerate databases.
	if got := p.n(100); got != 50 {
		t.Fatalf("n(100) = %d, want floor 50", got)
	}
	sizes := p.sweepSizes()
	want := []int{2000, 4000, 6000, 8000, 10000}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sweepSizes = %v", sizes)
		}
	}
}

func TestFormattingHelpers(t *testing.T) {
	if got := ratio(100*time.Millisecond, 50*time.Millisecond); got != "2.00" {
		t.Fatalf("ratio = %q", got)
	}
	if got := ratio(time.Second, 0); got != "-" {
		t.Fatalf("ratio by zero = %q", got)
	}
	if got := share(25*time.Millisecond, 100*time.Millisecond); got != "25.00%" {
		t.Fatalf("share = %q", got)
	}
	if got := durMS(1500 * time.Microsecond); got != "1.500ms" {
		t.Fatalf("durMS = %q", got)
	}
	if maxf(1, 2) != 2 || maxf(3, 2) != 3 {
		t.Fatal("maxf wrong")
	}
}

func TestParamTableRendering(t *testing.T) {
	out := ParamTable().String()
	for _, want := range []string{"|S|", "m_max", "k_partition", "60k"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

// Smoke-run the cheapest figure end-to-end at the minimum size so the
// harness itself is covered by `go test`.
func TestFig9bSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is slow")
	}
	p := Params{Scale: 0.001, Queries: 5, Instances: 10, Seed: 1}
	tab := Fig9b(p)
	out := tab.String()
	if !strings.Contains(out, "R-tree") || !strings.Contains(out, "PV-index") {
		t.Fatalf("fig9b output malformed:\n%s", out)
	}
}

func TestStepTwoSkipsMissingObjects(t *testing.T) {
	p := Params{Scale: 0.001, Queries: 1, Instances: 5, Seed: 1}
	db := synthetic(p, 50, 2, 60)
	res := stepTwo(db, []uncertain.ID{0, 1, 9999}, db.Domain.Center())
	_ = res // absence of panic is the assertion; 9999 is missing
}
