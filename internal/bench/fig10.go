package bench

import (
	"fmt"
	"time"

	"pvoronoi/internal/core"
	"pvoronoi/internal/dataset"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/pvindex"
	"pvoronoi/internal/stats"
	"pvoronoi/internal/uncertain"
	"pvoronoi/internal/uvindex"
)

// defaultStrategy is IS, the paper's default chooseCSet implementation.
const defaultStrategy = core.CSetIS

// Fig10a: construction time Tc vs the SE termination threshold Δ.
// Paper: Tc drops as Δ grows (fewer SE iterations).
func Fig10a(p Params) *stats.Table {
	n := p.n(60000)
	db := synthetic(p, n, 3, 60)
	tab := stats.NewTable("Fig 10(a): Tc vs Δ  (|S|=60k scaled, d=3, IS)",
		"Δ", "Tc", "SE iterations")
	for _, delta := range []float64{0.1, 0.5, 1, 10, 100, 500, 1000} {
		ix := buildPVDelta(db, delta)
		tab.AddRow(delta, ix.Build.Total, ix.Build.SE.Iterations)
		p.logf("fig10a: Δ=%g done\n", delta)
	}
	return tab
}

// Fig10b: Tc vs |S| for the ALL, FS, and IS C-set strategies (log scale in
// the paper). ALL is orders of magnitude slower — the paper measured 103
// hours at |S|=20k — so this sweep uses small databases.
func Fig10b(p Params) *stats.Table {
	tab := stats.NewTable("Fig 10(b): Tc vs |S| — ALL vs FS vs IS  (small |S|; ALL is O(|S|) per SE test)",
		"|S|", "Tc ALL", "Tc FS", "Tc IS", "ALL/IS")
	for _, paperN := range []int{2000, 4000, 6000, 8000, 10000} {
		n := p.n(paperN)
		db := synthetic(p, n, 3, 60)
		all := buildPV(db, core.CSetAll).Build.Total
		fs := buildPV(db, core.CSetFS).Build.Total
		is := buildPV(db, core.CSetIS).Build.Total
		tab.AddRow(n, all, fs, is, ratio(all, is))
		p.logf("fig10b: |S|=%d done (ALL %v)\n", n, all)
	}
	return tab
}

// Fig10c: Tc vs |S| for FS vs IS at paper-scale sweeps.
// Paper: IS always beats FS.
func Fig10c(p Params) *stats.Table {
	tab := stats.NewTable("Fig 10(c): Tc vs |S| — FS vs IS",
		"|S|", "Tc FS", "Tc IS", "FS/IS")
	for _, n := range p.sweepSizes() {
		db := synthetic(p, n, 3, 60)
		fs := buildPV(db, core.CSetFS).Build.Total
		is := buildPV(db, core.CSetIS).Build.Total
		tab.AddRow(n, fs, is, ratio(fs, is))
		p.logf("fig10c: |S|=%d done\n", n)
	}
	return tab
}

// Fig10d: Tc vs |u(o)| for FS vs IS.
func Fig10d(p Params) *stats.Table {
	n := p.n(60000)
	tab := stats.NewTable("Fig 10(d): Tc vs |u(o)| — FS vs IS  (|S|=60k scaled)",
		"|u(o)|", "Tc FS", "Tc IS", "FS/IS")
	for _, uo := range []float64{20, 40, 60, 80, 100} {
		db := synthetic(p, n, 3, uo)
		fs := buildPV(db, core.CSetFS).Build.Total
		is := buildPV(db, core.CSetIS).Build.Total
		tab.AddRow(uo, fs, is, ratio(fs, is))
		p.logf("fig10d: |u(o)|=%g done\n", uo)
	}
	return tab
}

// Fig10e: the composition of SE time — chooseCSet vs UBR computation — for
// FS and IS. Paper: UBR computation dominates; IS selects smaller C-sets
// (120 vs 200 on average) and is faster overall.
func Fig10e(p Params) *stats.Table {
	n := p.n(60000)
	db := synthetic(p, n, 3, 60)
	tab := stats.NewTable("Fig 10(e): SE time composition  (|S|=60k scaled, d=3)",
		"strategy", "chooseCSet", "UBR compute", "avg C-set", "Tc total")
	for _, strat := range []core.CSetStrategy{core.CSetFS, core.CSetIS} {
		ix := buildPV(db, strat)
		avg := float64(ix.Build.CSetSizeSum) / float64(ix.Build.Objects)
		tab.AddRow(strat.String(), ix.Build.CSetTime, ix.Build.UBRTime, avg, ix.Build.Total)
	}
	return tab
}

// Fig10f: Tc on the (simulated) real datasets, FS vs IS.
func Fig10f(p Params) *stats.Table {
	tab := stats.NewTable("Fig 10(f): Tc on real datasets — FS vs IS",
		"dataset", "Tc FS", "Tc IS", "FS/IS")
	for _, kind := range []dataset.RealKind{dataset.Roads, dataset.RRLines, dataset.Airports} {
		db := dataset.Real(dataset.RealParams{
			Kind: kind, N: p.n(kind.Size()), Instances: p.Instances, Seed: p.Seed,
		})
		fs := buildPV(db, core.CSetFS).Build.Total
		is := buildPV(db, core.CSetIS).Build.Total
		tab.AddRow(kind.String(), fs, is, ratio(fs, is))
		p.logf("fig10f: %s done\n", kind)
	}
	return tab
}

// Fig10g: PV-index vs UV-index construction time on the 2-D real datasets.
// Paper: PV construction 15–25× faster.
func Fig10g(p Params) *stats.Table {
	tab := stats.NewTable("Fig 10(g): construction speedup over UV-index (2-D real datasets)",
		"dataset", "Tc UV-index", "Tc PV-index", "UV/PV")
	for _, kind := range []dataset.RealKind{dataset.Roads, dataset.RRLines} {
		db := dataset.Real(dataset.RealParams{
			Kind: kind, N: p.n(kind.Size()), Instances: p.Instances, Seed: p.Seed,
		})
		uv, err := uvindex.Build(db, uvindex.DefaultConfig())
		if err != nil {
			panic(err)
		}
		pv := buildPV(db, defaultStrategy)
		tab.AddRow(kind.String(), uv.Build.Total, pv.Build.Total, ratio(uv.Build.Total, pv.Build.Total))
		p.logf("fig10g: %s done\n", kind)
	}
	return tab
}

// updateExperiment measures incremental maintenance vs rebuild for one
// database size. ops objects are first removed (for insertion) or present
// (for deletion); Tu is per-object time.
func updateExperiment(p Params, n int, insert bool) (inc, rebuild time.Duration, qdiff float64) {
	ops := n / 20 // the paper uses 1k ops on 20k–100k objects (5–1%)
	if ops < 5 {
		ops = 5
	}
	full := synthetic(p, n, 3, 60)

	if insert {
		// Build on the database without the last `ops` objects, then
		// re-insert them incrementally.
		base := uncertain.NewDB(full.Domain)
		var pending []*uncertain.Object
		for i, o := range full.Objects() {
			if i < n-ops {
				_ = base.Add(o)
			} else {
				pending = append(pending, o)
			}
		}
		ix := buildPV(base, defaultStrategy)
		t0 := time.Now()
		for _, o := range pending {
			if _, err := ix.Insert(o); err != nil {
				panic(err)
			}
		}
		inc = time.Since(t0) / time.Duration(len(pending))
		// Rebuild cost per op = building the final database from scratch.
		rebuilt := buildPV(ix.DB(), defaultStrategy)
		rebuild = rebuilt.Build.Total
		qdiff = queryTimeDiff(ix, rebuilt, p)
		return inc, rebuild, qdiff
	}

	// Deletion: build on the full database, delete `ops` objects.
	ix := buildPV(full, defaultStrategy)
	t0 := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := ix.Delete(uncertain.ID(i)); err != nil {
			panic(err)
		}
	}
	inc = time.Since(t0) / time.Duration(ops)
	rebuilt := buildPV(ix.DB(), defaultStrategy)
	rebuild = rebuilt.Build.Total
	qdiff = queryTimeDiff(ix, rebuilt, p)
	return inc, rebuild, qdiff
}

// queryTimeDiff compares query times of the incrementally maintained index
// vs the rebuilt one (paper: ≈1.4% for insertion, ≈0.9% for deletion). Both
// sides take the best of several repetitions — individual queries run in
// tens of microseconds, so single-shot timing is dominated by noise.
func queryTimeDiff(inc, rebuilt *pvindex.Index, p Params) float64 {
	queries := dataset.QueryPoints(inc.DB().Domain, p.Queries, p.Seed+200)
	ti := timeQueries(inc, queries)
	tr := timeQueries(rebuilt, queries)
	if tr == 0 {
		return 0
	}
	d := (float64(ti) - float64(tr)) / float64(tr) * 100
	if d < 0 {
		d = -d
	}
	return d
}

func timeQueries(ix *pvindex.Index, queries []geom.Point) time.Duration {
	best := time.Duration(0)
	for rep := 0; rep < 5; rep++ {
		t0 := time.Now()
		for _, q := range queries {
			if _, err := ix.PossibleNN(q); err != nil {
				panic(err)
			}
		}
		if d := time.Since(t0); rep == 0 || d < best {
			best = d
		}
	}
	return best
}

// Fig10h: per-object insertion time — incremental vs rebuild.
// Paper: Inc two or more orders of magnitude faster.
func Fig10h(p Params) *stats.Table {
	tab := stats.NewTable("Fig 10(h): insertion Tu — Inc vs Rebuild",
		"|S|", "Tu Inc", "Tu Rebuild", "speedup", "query diff %")
	for _, n := range p.sweepSizes() {
		inc, rebuild, qdiff := updateExperiment(p, n, true)
		tab.AddRow(n, inc, rebuild, ratio(rebuild, inc), qdiff)
		p.logf("fig10h: |S|=%d done\n", n)
	}
	return tab
}

// Fig10i: per-object deletion time — incremental vs rebuild.
func Fig10i(p Params) *stats.Table {
	tab := stats.NewTable("Fig 10(i): deletion Tu — Inc vs Rebuild",
		"|S|", "Tu Inc", "Tu Rebuild", "speedup", "query diff %")
	for _, n := range p.sweepSizes() {
		inc, rebuild, qdiff := updateExperiment(p, n, false)
		tab.AddRow(n, inc, rebuild, ratio(rebuild, inc), qdiff)
		p.logf("fig10i: |S|=%d done\n", n)
	}
	return tab
}

// ParamTable reproduces Table I: parameters and defaults.
func ParamTable() *stats.Table {
	tab := stats.NewTable("Table I: parameters (defaults in bold in the paper)",
		"parameter", "values (synthetic)", "values (real)", "default")
	tab.AddRow("|S|", "20k,40k,60k,80k,100k", "30k,36k,20k", "60k")
	tab.AddRow("d", "2,3,4,5", "2,3", "3")
	tab.AddRow("|u(o)|", "20,40,60,80,100", "N/A", "60")
	tab.AddRow("Δ", "0.1,0.5,1,10-1000", "1", "1")
	tab.AddRow("m_max", "2-5,10,20,40", "10", "10")
	tab.AddRow("k", "20,40,100,200,400", "200", "200")
	tab.AddRow("k_partition", "2,5,10,20,50", "10", "10")
	tab.AddRow("k_global", "200", "200", "200")
	return tab
}

// ParamSensitivity reproduces the §VII-C(a) parameter study: query and
// construction time stability across Δ, k, and k_partition.
func ParamSensitivity(p Params) []*stats.Table {
	n := p.n(40000)
	db := synthetic(p, n, 3, 60)
	queries := dataset.QueryPoints(db.Domain, p.Queries, p.Seed+100)

	var tables []*stats.Table

	tq := stats.NewTable("Params: Tq and Tc vs Δ", "Δ", "Tq", "Tc")
	for _, delta := range []float64{0.1, 1, 10, 100, 1000} {
		ix := buildPVDelta(db, delta)
		c := measurePV(ix, db, queries)
		tq.AddRow(delta, c.Total(), ix.Build.Total)
	}
	tables = append(tables, tq)

	tk := stats.NewTable("Params: Tq and Tc vs k (FS)", "k", "Tq", "Tc")
	for _, k := range []int{20, 40, 100, 200, 400} {
		cfg := pvindex.DefaultConfig()
		cfg.SE.Strategy = core.CSetFS
		cfg.SE.K = k
		ix, err := pvindex.Build(db, cfg)
		if err != nil {
			panic(err)
		}
		c := measurePV(ix, db, queries)
		tk.AddRow(k, c.Total(), ix.Build.Total)
	}
	tables = append(tables, tk)

	tp := stats.NewTable("Params: Tq and Tc vs k_partition (IS)", "k_partition", "Tq", "Tc")
	for _, kp := range []int{2, 5, 10, 20, 50} {
		cfg := pvindex.DefaultConfig()
		cfg.SE.Strategy = core.CSetIS
		cfg.SE.KPartition = kp
		ix, err := pvindex.Build(db, cfg)
		if err != nil {
			panic(err)
		}
		c := measurePV(ix, db, queries)
		tp.AddRow(kp, c.Total(), ix.Build.Total)
	}
	tables = append(tables, tp)

	tm := stats.NewTable("Params: Tc vs m_max (domination granularity)", "m_max", "Tc", "domination tests")
	for _, mm := range []int{2, 5, 10, 20} {
		cfg := pvindex.DefaultConfig()
		cfg.SE.MaxDepth = mm
		ix, err := pvindex.Build(db, cfg)
		if err != nil {
			panic(err)
		}
		tm.AddRow(mm, ix.Build.Total, ix.Build.SE.DominationTests)
	}
	tables = append(tables, tm)

	return tables
}

// --- formatting helpers ----------------------------------------------------

func durMS(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
