package bench

import (
	"fmt"
	"time"

	"pvoronoi/internal/dataset"
	"pvoronoi/internal/stats"
	"pvoronoi/internal/uvindex"
)

// Fig9a: query time Tq vs database size |S| — R-tree vs PV-index, d=3.
// Paper: PV-index 38–40% faster across the sweep.
func Fig9a(p Params) *stats.Table {
	tab := stats.NewTable("Fig 9(a): Tq vs |S|  (d=3, |u(o)|=60)",
		"|S|", "Tq R-tree", "Tq PV-index", "PV speedup")
	for _, n := range p.sweepSizes() {
		db := synthetic(p, n, 3, 60)
		queries := dataset.QueryPoints(db.Domain, p.Queries, p.Seed+100)
		tree := buildRTree(db)
		pv := buildPV(db, defaultStrategy)
		rc := measureRTree(tree, db, queries)
		pc := measurePV(pv, db, queries)
		tab.AddRow(n, rc.Total(), pc.Total(), ratio(rc.Total(), pc.Total()))
		p.logf("fig9a: |S|=%d done\n", n)
	}
	return tab
}

// Fig9b: the composition of Tq — object retrieval (OR) vs probability
// computation (PC) at the default setting. Paper: PC equal for both; PV's OR
// about 1/6 of the R-tree's.
func Fig9b(p Params) *stats.Table {
	n := p.n(60000)
	db := synthetic(p, n, 3, 60)
	queries := dataset.QueryPoints(db.Domain, p.Queries, p.Seed+100)
	tree := buildRTree(db)
	pv := buildPV(db, defaultStrategy)
	rc := measureRTree(tree, db, queries)
	pc := measurePV(pv, db, queries)
	tab := stats.NewTable("Fig 9(b): Tq composition  (|S|=60k scaled, d=3)",
		"method", "OR", "PC", "total", "OR share")
	tab.AddRow("R-tree", rc.OR, rc.PC, rc.Total(), share(rc.OR, rc.Total()))
	tab.AddRow("PV-index", pc.OR, pc.PC, pc.Total(), share(pc.OR, pc.Total()))
	return tab
}

// Fig9c: query I/O (leaf page accesses) vs |S|. Paper: PV-index ≈20% of the
// R-tree's leaf I/O.
func Fig9c(p Params) *stats.Table {
	tab := stats.NewTable("Fig 9(c): query I/O vs |S|  (leaf pages/query)",
		"|S|", "IO R-tree", "IO PV-index", "PV/RTree")
	for _, n := range p.sweepSizes() {
		db := synthetic(p, n, 3, 60)
		queries := dataset.QueryPoints(db.Domain, p.Queries, p.Seed+100)
		tree := buildRTree(db)
		pv := buildPV(db, defaultStrategy)
		rc := measureRTree(tree, db, queries)
		pc := measurePV(pv, db, queries)
		tab.AddRow(n, rc.IO, pc.IO, pc.IO/maxf(rc.IO, 1e-9))
		p.logf("fig9c: |S|=%d done\n", n)
	}
	return tab
}

// Fig9d: Tq vs uncertainty-region size |u(o)|. Paper: Tq grows with |u(o)|
// for both; PV-index consistently faster.
func Fig9d(p Params) *stats.Table {
	n := p.n(60000)
	tab := stats.NewTable("Fig 9(d): Tq vs |u(o)|  (|S|=60k scaled, d=3)",
		"|u(o)|", "Tq R-tree", "Tq PV-index", "PV speedup")
	for _, uo := range []float64{20, 40, 60, 80, 100} {
		db := synthetic(p, n, 3, uo)
		queries := dataset.QueryPoints(db.Domain, p.Queries, p.Seed+100)
		tree := buildRTree(db)
		pv := buildPV(db, defaultStrategy)
		rc := measureRTree(tree, db, queries)
		pc := measurePV(pv, db, queries)
		tab.AddRow(uo, rc.Total(), pc.Total(), ratio(rc.Total(), pc.Total()))
		p.logf("fig9d: |u(o)|=%g done\n", uo)
	}
	return tab
}

// dimSweep runs the d ∈ {2,3,4,5} sweep shared by Figs. 9(e)–9(g).
type dimRow struct {
	d          int
	rt, pv, uv queryCost
	hasUV      bool
}

// dimCache memoizes the sweep so fig9e/f/g in one harness run share it.
var dimCache = map[string][]dimRow{}

func dimSweep(p Params) []dimRow {
	key := fmt.Sprintf("%g/%d/%d/%d", p.Scale, p.Queries, p.Instances, p.Seed)
	if rows, ok := dimCache[key]; ok {
		return rows
	}
	n := p.n(60000)
	var rows []dimRow
	for _, d := range []int{2, 3, 4, 5} {
		db := synthetic(p, n, d, 60)
		queries := dataset.QueryPoints(db.Domain, p.Queries, p.Seed+100)
		row := dimRow{d: d}
		tree := buildRTree(db)
		row.rt = measureRTree(tree, db, queries)
		pv := buildPV(db, defaultStrategy)
		row.pv = measurePV(pv, db, queries)
		if d == 2 {
			uv, err := uvindex.Build(db, uvindex.DefaultConfig())
			if err == nil {
				row.uv = measureUV(uv, db, queries)
				row.hasUV = true
			}
		}
		rows = append(rows, row)
		p.logf("dim sweep: d=%d done\n", d)
	}
	dimCache[key] = rows
	return rows
}

// Fig9e: Tq vs dimensionality (UV-index at d=2 only). Paper: PV 20–40%
// faster than R-tree; Tq minimal at d=3; UV ≈ PV at d=2.
func Fig9e(p Params) *stats.Table {
	tab := stats.NewTable("Fig 9(e): Tq vs d  (|S|=60k scaled)",
		"d", "Tq R-tree", "Tq PV-index", "Tq UV-index")
	for _, r := range dimSweep(p) {
		uv := "-"
		if r.hasUV {
			uv = durMS(r.uv.Total())
		}
		tab.AddRow(r.d, r.rt.Total(), r.pv.Total(), uv)
	}
	return tab
}

// Fig9f: the OR component vs dimensionality. Paper: TOR grows with d and
// dominates Tq for d >= 3 on the R-tree.
func Fig9f(p Params) *stats.Table {
	tab := stats.NewTable("Fig 9(f): T_OR vs d  (|S|=60k scaled)",
		"d", "T_OR R-tree", "T_OR PV-index", "T_OR UV-index")
	for _, r := range dimSweep(p) {
		uv := "-"
		if r.hasUV {
			uv = durMS(r.uv.OR)
		}
		tab.AddRow(r.d, r.rt.OR, r.pv.OR, uv)
	}
	return tab
}

// Fig9g: query I/O vs dimensionality.
func Fig9g(p Params) *stats.Table {
	tab := stats.NewTable("Fig 9(g): query I/O vs d  (leaf pages/query)",
		"d", "IO R-tree", "IO PV-index", "IO UV-index")
	for _, r := range dimSweep(p) {
		uv := "-"
		if r.hasUV {
			uv = f3(r.uv.IO)
		}
		tab.AddRow(r.d, r.rt.IO, r.pv.IO, uv)
	}
	return tab
}

// Fig9h: Tq on the (simulated) real datasets. Paper: UV and PV ≈40% faster
// than the R-tree on 2-D data; PV 45% faster on the 3-D airports data.
func Fig9h(p Params) *stats.Table {
	tab := stats.NewTable("Fig 9(h): Tq on real datasets",
		"dataset", "Tq R-tree", "Tq UV-index", "Tq PV-index", "PV speedup")
	for _, kind := range []dataset.RealKind{dataset.Roads, dataset.RRLines, dataset.Airports} {
		db := dataset.Real(dataset.RealParams{
			Kind: kind, N: p.n(kind.Size()), Instances: p.Instances, Seed: p.Seed,
		})
		queries := dataset.QueryPoints(db.Domain, p.Queries, p.Seed+100)
		tree := buildRTree(db)
		rc := measureRTree(tree, db, queries)
		pv := buildPV(db, defaultStrategy)
		pc := measurePV(pv, db, queries)
		uvCell := "-"
		if kind.Dim() == 2 {
			uv, err := uvindex.Build(db, uvindex.DefaultConfig())
			if err == nil {
				uvCost := measureUV(uv, db, queries)
				uvCell = durMS(uvCost.Total())
			}
		}
		tab.AddRow(kind.String(), rc.Total(), uvCell, pc.Total(), ratio(rc.Total(), pc.Total()))
		p.logf("fig9h: %s done\n", kind)
	}
	return tab
}

// --- small formatting helpers ---------------------------------------------

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "-"
	}
	return f2(float64(a) / float64(b))
}

func share(part, whole time.Duration) string {
	if whole == 0 {
		return "-"
	}
	return f2(float64(part)/float64(whole)*100) + "%"
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
