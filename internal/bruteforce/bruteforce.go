// Package bruteforce provides reference implementations used as oracles in
// tests and as the unindexed baseline in benchmarks. All algorithms here are
// O(|S|) scans with no pruning; they define correctness for the indexed paths.
package bruteforce

import (
	"math"
	"sort"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// PossibleNN returns the IDs of all objects with a non-zero probability of
// being the nearest neighbor of q: exactly those o with
// distmin(o, q) <= min_{o'} distmax(o', q). This is PNNQ Step 1 ground truth.
func PossibleNN(db *uncertain.DB, q geom.Point) []uncertain.ID {
	objs := db.Objects()
	if len(objs) == 0 {
		return nil
	}
	best := math.Inf(1)
	for _, o := range objs {
		if d := o.MaxDist(q); d < best {
			best = d
		}
	}
	var out []uncertain.ID
	for _, o := range objs {
		if o.MinDist(q) <= best {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InPVCell reports whether point p lies in the PV-cell of object id: whether
// id can be the nearest neighbor of p given every other object in db. This is
// the pointwise membership oracle for V(o) (Definition 1 + Lemma 4).
func InPVCell(db *uncertain.DB, id uncertain.ID, p geom.Point) bool {
	o := db.Get(id)
	if o == nil {
		return false
	}
	dmin := o.MinDist(p)
	for _, other := range db.Objects() {
		if other.ID == id {
			continue
		}
		if other.MaxDist(p) < dmin {
			return false // other dominates o at p
		}
	}
	return true
}

// NNByCenter returns object IDs sorted by the distance of their region
// centers from q (the "mean position" ordering used by the FS strategy).
func NNByCenter(db *uncertain.DB, q geom.Point) []uncertain.ID {
	objs := db.Objects()
	type pair struct {
		id uncertain.ID
		d  float64
	}
	ps := make([]pair, len(objs))
	for i, o := range objs {
		ps[i] = pair{o.ID, geom.Dist2(o.Region.Center(), q)}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].d != ps[j].d {
			return ps[i].d < ps[j].d
		}
		return ps[i].id < ps[j].id
	})
	out := make([]uncertain.ID, len(ps))
	for i, p := range ps {
		out[i] = p.id
	}
	return out
}

// QualificationProbs computes the exact (under the discrete pdf model)
// qualification probability of every object in db being the NN of q:
//
//	P(o NN of q) = Σ_{instance s of o} p(s) · P(every o'≠o realizes a
//	               strictly greater distance, exact ties splitting evenly)
//
// Objects must carry instances. Instances at exactly equal distance share
// the win uniformly (a t-way tie credits 1/(t+1) per outcome), so the
// probabilities over all objects sum to 1 — including on degenerate pdfs
// with coincident instances, where the old strict-minimum rule lost mass.
func QualificationProbs(db *uncertain.DB, q geom.Point) map[uncertain.ID]float64 {
	objs := db.Objects()
	// Precompute each object's weighted, sorted instance distances plus the
	// suffix mass at each position, so a probe stays O(log m + ties).
	type wdist struct {
		ds     []float64 // ascending
		ws     []float64 // instance weight at ds[i]
		suffix []float64 // suffix[i] = Σ ws[j >= i]
	}
	dists := make([]wdist, len(objs))
	for i, o := range objs {
		d := wdist{ds: make([]float64, len(o.Instances)), ws: make([]float64, len(o.Instances))}
		for j, in := range o.Instances {
			d.ds[j] = geom.Dist(in.Pos, q)
			d.ws[j] = in.Prob
		}
		sort.Sort(&byDist{d.ds, d.ws})
		d.suffix = make([]float64, len(d.ds)+1)
		for j := len(d.ds) - 1; j >= 0; j-- {
			d.suffix[j] = d.suffix[j+1] + d.ws[j]
		}
		dists[i] = d
	}
	// split returns the rival's probability mass at exactly r and strictly
	// beyond r.
	split := func(d wdist, r float64) (tie, far float64) {
		if len(d.ds) == 0 {
			return 0, 1 // region-only object: unconstrained
		}
		idx := sort.SearchFloat64s(d.ds, r)
		for idx < len(d.ds) && d.ds[idx] == r {
			tie += d.ws[idx]
			idx++
		}
		return tie, d.suffix[idx]
	}
	out := make(map[uncertain.ID]float64, len(objs))
	for i, o := range objs {
		var total float64
		for _, in := range o.Instances {
			r := geom.Dist(in.Pos, q)
			// dp[t] = P(t rivals tied at r so far, none strictly closer).
			dp := []float64{in.Prob}
			for k := range objs {
				if k == i {
					continue
				}
				tie, far := split(dists[k], r)
				dp = append(dp, 0)
				for t := len(dp) - 1; t >= 1; t-- {
					dp[t] = dp[t]*far + dp[t-1]*tie
				}
				dp[0] *= far
			}
			for t, v := range dp {
				total += v / float64(t+1)
			}
		}
		if total > 0 {
			out[o.ID] = total
		}
	}
	return out
}

// byDist co-sorts a distance slice and its weight slice.
type byDist struct {
	ds []float64
	ws []float64
}

func (s *byDist) Len() int           { return len(s.ds) }
func (s *byDist) Less(i, j int) bool { return s.ds[i] < s.ds[j] }
func (s *byDist) Swap(i, j int) {
	s.ds[i], s.ds[j] = s.ds[j], s.ds[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}
