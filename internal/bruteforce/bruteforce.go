// Package bruteforce provides reference implementations used as oracles in
// tests and as the unindexed baseline in benchmarks. All algorithms here are
// O(|S|) scans with no pruning; they define correctness for the indexed paths.
package bruteforce

import (
	"math"
	"sort"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// PossibleNN returns the IDs of all objects with a non-zero probability of
// being the nearest neighbor of q: exactly those o with
// distmin(o, q) <= min_{o'} distmax(o', q). This is PNNQ Step 1 ground truth.
func PossibleNN(db *uncertain.DB, q geom.Point) []uncertain.ID {
	objs := db.Objects()
	if len(objs) == 0 {
		return nil
	}
	best := math.Inf(1)
	for _, o := range objs {
		if d := o.MaxDist(q); d < best {
			best = d
		}
	}
	var out []uncertain.ID
	for _, o := range objs {
		if o.MinDist(q) <= best {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InPVCell reports whether point p lies in the PV-cell of object id: whether
// id can be the nearest neighbor of p given every other object in db. This is
// the pointwise membership oracle for V(o) (Definition 1 + Lemma 4).
func InPVCell(db *uncertain.DB, id uncertain.ID, p geom.Point) bool {
	o := db.Get(id)
	if o == nil {
		return false
	}
	dmin := o.MinDist(p)
	for _, other := range db.Objects() {
		if other.ID == id {
			continue
		}
		if other.MaxDist(p) < dmin {
			return false // other dominates o at p
		}
	}
	return true
}

// NNByCenter returns object IDs sorted by the distance of their region
// centers from q (the "mean position" ordering used by the FS strategy).
func NNByCenter(db *uncertain.DB, q geom.Point) []uncertain.ID {
	objs := db.Objects()
	type pair struct {
		id uncertain.ID
		d  float64
	}
	ps := make([]pair, len(objs))
	for i, o := range objs {
		ps[i] = pair{o.ID, geom.Dist2(o.Region.Center(), q)}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].d != ps[j].d {
			return ps[i].d < ps[j].d
		}
		return ps[i].id < ps[j].id
	})
	out := make([]uncertain.ID, len(ps))
	for i, p := range ps {
		out[i] = p.id
	}
	return out
}

// QualificationProbs computes the exact (under the discrete pdf model)
// qualification probability of every object in db being the NN of q:
//
//	P(o NN of q) = Σ_{instance s of o} p(s) · Π_{o'≠o} P(dist(o', q) > dist(s, q))
//
// Objects must carry instances. Probabilities over all objects sum to 1 up to
// tie handling (instances at exactly equal distance are counted as farther,
// matching the strict "closest" semantics; ties have measure zero for
// continuous pdfs).
func QualificationProbs(db *uncertain.DB, q geom.Point) map[uncertain.ID]float64 {
	objs := db.Objects()
	// Precompute each object's sorted instance distances and CDF support.
	dists := make([][]float64, len(objs))
	for i, o := range objs {
		ds := make([]float64, len(o.Instances))
		for j, in := range o.Instances {
			ds[j] = geom.Dist(in.Pos, q)
		}
		sort.Float64s(ds)
		dists[i] = ds
	}
	out := make(map[uncertain.ID]float64, len(objs))
	for i, o := range objs {
		var total float64
		for _, in := range o.Instances {
			r := geom.Dist(in.Pos, q)
			prod := in.Prob
			for k := range objs {
				if k == i {
					continue
				}
				// P(dist(o_k, q) > r) = fraction of instances strictly beyond r.
				ds := dists[k]
				idx := sort.SearchFloat64s(ds, r)
				// Advance past exact ties so they count as "farther".
				for idx < len(ds) && ds[idx] == r {
					idx++
				}
				prod *= float64(len(ds)-idx) / float64(len(ds))
				if prod == 0 {
					break
				}
			}
			total += prod
		}
		if total > 0 {
			out[o.ID] = total
		}
	}
	return out
}
