package bruteforce

import (
	"math"
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

func buildDB(t *testing.T, rects [][4]float64) *uncertain.DB {
	t.Helper()
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	for i, r := range rects {
		o := &uncertain.Object{
			ID:     uncertain.ID(i),
			Region: geom.NewRect(geom.Point{r[0], r[1]}, geom.Point{r[2], r[3]}),
		}
		if err := db.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestPossibleNNSimple(t *testing.T) {
	// Object 0 near origin, object 1 far away: query at origin can only
	// have object 0 as NN.
	db := buildDB(t, [][4]float64{
		{0, 0, 1, 1},
		{50, 50, 51, 51},
	})
	got := PossibleNN(db, geom.Point{0.5, 0.5})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("PossibleNN = %v", got)
	}
	// Query midway: both are possible.
	got = PossibleNN(db, geom.Point{25, 25})
	if len(got) != 2 {
		t.Fatalf("PossibleNN midway = %v", got)
	}
}

func TestPossibleNNEmptyAndSingle(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	if got := PossibleNN(db, geom.Point{1, 1}); got != nil {
		t.Fatalf("empty DB: %v", got)
	}
	_ = db.Add(&uncertain.Object{ID: 7, Region: geom.NewRect(geom.Point{1, 1}, geom.Point{2, 2})})
	got := PossibleNN(db, geom.Point{90, 90})
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("single DB: %v", got)
	}
}

func TestInPVCellMatchesPossibleNN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	for i := 0; i < 40; i++ {
		x, y := rng.Float64()*95, rng.Float64()*95
		w, h := rng.Float64()*5, rng.Float64()*5
		_ = db.Add(&uncertain.Object{
			ID:     uncertain.ID(i),
			Region: geom.NewRect(geom.Point{x, y}, geom.Point{x + w, y + h}),
		})
	}
	for iter := 0; iter < 200; iter++ {
		q := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		inSet := map[uncertain.ID]bool{}
		for _, id := range PossibleNN(db, q) {
			inSet[id] = true
		}
		for _, o := range db.Objects() {
			if got := InPVCell(db, o.ID, q); got != inSet[o.ID] {
				t.Fatalf("InPVCell(%d, %v) = %v, PossibleNN says %v", o.ID, q, got, inSet[o.ID])
			}
		}
	}
}

func TestNNByCenterOrdering(t *testing.T) {
	db := buildDB(t, [][4]float64{
		{10, 10, 12, 12}, // center (11,11)
		{0, 0, 2, 2},     // center (1,1)
		{50, 50, 52, 52}, // center (51,51)
	})
	got := NNByCenter(db, geom.Point{0, 0})
	want := []uncertain.ID{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NNByCenter = %v, want %v", got, want)
		}
	}
}

func TestQualificationProbsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	for i := 0; i < 12; i++ {
		x, y := rng.Float64()*90, rng.Float64()*90
		region := geom.NewRect(geom.Point{x, y}, geom.Point{x + 5, y + 5})
		o := &uncertain.Object{
			ID:        uncertain.ID(i),
			Region:    region,
			Instances: uncertain.SampleInstances(region, uncertain.PDFUniform, 60, rng),
		}
		_ = db.Add(o)
	}
	for iter := 0; iter < 20; iter++ {
		q := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		probs := QualificationProbs(db, q)
		var sum float64
		for _, p := range probs {
			if p < 0 || p > 1+1e-9 {
				t.Fatalf("probability out of range: %g", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %g", sum)
		}
		// Every object with positive probability must be in the possible set.
		possible := map[uncertain.ID]bool{}
		for _, id := range PossibleNN(db, q) {
			possible[id] = true
		}
		for id, p := range probs {
			if p > 0 && !possible[id] {
				t.Fatalf("object %d has prob %g but is not a possible NN", id, p)
			}
		}
	}
}

func TestQualificationProbsDominantObject(t *testing.T) {
	// One object hugely closer than the other: its probability must be ~1.
	rng := rand.New(rand.NewSource(2))
	db := uncertain.NewDB(geom.UnitCube(2, 1000))
	near := geom.NewRect(geom.Point{0, 0}, geom.Point{2, 2})
	far := geom.NewRect(geom.Point{900, 900}, geom.Point{902, 902})
	_ = db.Add(&uncertain.Object{ID: 1, Region: near,
		Instances: uncertain.SampleInstances(near, uncertain.PDFUniform, 50, rng)})
	_ = db.Add(&uncertain.Object{ID: 2, Region: far,
		Instances: uncertain.SampleInstances(far, uncertain.PDFUniform, 50, rng)})
	probs := QualificationProbs(db, geom.Point{1, 1})
	if math.Abs(probs[1]-1) > 1e-12 {
		t.Fatalf("near object prob = %g, want 1", probs[1])
	}
	if probs[2] != 0 {
		t.Fatalf("far object prob = %g, want 0", probs[2])
	}
}
