package core

import (
	"math/rand"
	"testing"
)

func BenchmarkComputeUBRIS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db := randomDB(rng, 2000, 3, 10000, 60)
	tree := BuildRegionTree(db, 100)
	opts := DefaultOptions()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := db.Objects()[i%db.Len()]
		_, _ = ComputeUBR(db, tree, o, opts)
	}
}

func BenchmarkComputeUBRFS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db := randomDB(rng, 2000, 3, 10000, 60)
	tree := BuildRegionTree(db, 100)
	opts := DefaultOptions()
	opts.Strategy = CSetFS
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := db.Objects()[i%db.Len()]
		_, _ = ComputeUBR(db, tree, o, opts)
	}
}

func BenchmarkChooseCSetIS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db := randomDB(rng, 5000, 3, 10000, 60)
	tree := BuildRegionTree(db, 100)
	opts := DefaultOptions()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := db.Objects()[i%db.Len()]
		_ = ChooseCSet(db, tree, o, opts)
	}
}
