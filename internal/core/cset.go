// Package core implements the paper's primary contribution: the
// Shrink-and-Expand (SE) algorithm that computes an Uncertain Bounding
// Rectangle (UBR) conservatively enclosing an object's Possible Voronoi cell,
// together with the C-set selection strategies (ALL, FS, IS) that bound the
// set of objects SE must reason about (§V of the paper).
package core

import (
	"fmt"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// CSetStrategy selects how chooseCSet picks the candidate set for SE.
type CSetStrategy int

const (
	// CSetAll uses the whole database (correct but extremely slow; the
	// paper's "ALL" baseline, Fig. 10(b)).
	CSetAll CSetStrategy = iota
	// CSetFS is Fixed Selection: the K objects whose region centers are
	// nearest to o's center.
	CSetFS
	// CSetIS is Incremental Selection: browse o's neighbors in distance
	// order, skipping regions that overlap u(o), until every one of the
	// 2^d quadrants around o has seen KPartition neighbors or KGlobal
	// neighbors have been examined.
	CSetIS
)

// String implements fmt.Stringer for diagnostics and harness output.
func (s CSetStrategy) String() string {
	switch s {
	case CSetAll:
		return "ALL"
	case CSetFS:
		return "FS"
	case CSetIS:
		return "IS"
	default:
		return fmt.Sprintf("CSetStrategy(%d)", int(s))
	}
}

// Options configures SE. The zero value is not usable; call DefaultOptions.
type Options struct {
	// Delta is the SE termination threshold Δ: iteration stops when the
	// largest gap between the lower and upper bounding rectangles falls
	// below it (in domain units).
	Delta float64
	// MaxDepth bounds the recursive partitioning of the domination-count
	// intersection test (the paper's granularity knob m_max).
	MaxDepth int
	// Strategy selects the chooseCSet implementation.
	Strategy CSetStrategy
	// K is the C-set size for FS (paper default 200).
	K int
	// KPartition is IS's per-quadrant neighbor quota (paper default 10).
	KPartition int
	// KGlobal caps the number of neighbors IS examines (paper default 200).
	KGlobal int
}

// DefaultOptions returns the paper's default parameters (Table I).
func DefaultOptions() Options {
	return Options{
		Delta:      1,
		MaxDepth:   10,
		Strategy:   CSetIS,
		K:          200,
		KPartition: 10,
		KGlobal:    200,
	}
}

// ChooseCSet returns the C-set of object o: a subset of the database whose
// non-dominated intersection bounds V(o) (any non-empty subset is valid by
// Lemma 7; larger, better-placed sets let SE shrink the UBR further). The
// tree must index the uncertainty regions of all database objects by ID.
func ChooseCSet(db *uncertain.DB, tree *rtree.Tree, o *uncertain.Object, opts Options) []*uncertain.Object {
	switch opts.Strategy {
	case CSetFS:
		return chooseFS(db, tree, o, opts.K)
	case CSetIS:
		return chooseIS(db, tree, o, opts.KPartition, opts.KGlobal)
	default:
		return chooseAll(db, o)
	}
}

func chooseAll(db *uncertain.DB, o *uncertain.Object) []*uncertain.Object {
	out := make([]*uncertain.Object, 0, db.Len()-1)
	for _, other := range db.Objects() {
		if other.ID != o.ID {
			out = append(out, other)
		}
	}
	return out
}

// chooseFS returns the k objects with region centers nearest to o's center.
// Per the paper, FS does not skip objects whose regions overlap u(o).
func chooseFS(db *uncertain.DB, tree *rtree.Tree, o *uncertain.Object, k int) []*uncertain.Object {
	center := o.Region.Center()
	it := rtree.NewNNIter(tree, center, rtree.CenterDistTo(center))
	out := make([]*uncertain.Object, 0, k)
	for len(out) < k {
		item, _, ok := it.Next()
		if !ok {
			break
		}
		if uncertain.ID(item.ID) == o.ID {
			continue
		}
		if obj := db.Get(uncertain.ID(item.ID)); obj != nil {
			out = append(out, obj)
		}
	}
	return out
}

// chooseIS browses o's neighbors in ascending distance from o's mean
// position, maintaining a counter per domain quadrant (2^d orthants rooted
// at o's center). Neighbors whose regions overlap u(o) are skipped (they
// cannot constrain V(o), Lemma 2). Iteration stops when every quadrant
// counter reaches kPartition or kGlobal neighbors have been examined.
func chooseIS(db *uncertain.DB, tree *rtree.Tree, o *uncertain.Object, kPartition, kGlobal int) []*uncertain.Object {
	d := o.Dim()
	center := o.Region.Center()
	quadrants := 1 << d
	counts := make([]int, quadrants)
	satisfied := 0
	it := rtree.NewNNIter(tree, center, rtree.MinDistTo(center))
	var out []*uncertain.Object
	examined := 0
	for examined < kGlobal && satisfied < quadrants {
		item, _, ok := it.Next()
		if !ok {
			break
		}
		if uncertain.ID(item.ID) == o.ID {
			continue
		}
		examined++
		if item.Rect.Intersects(o.Region) {
			continue // overlapping regions never constrain V(o)
		}
		obj := db.Get(uncertain.ID(item.ID))
		if obj == nil {
			continue
		}
		out = append(out, obj)
		for q := 0; q < quadrants; q++ {
			if !quadrantIntersects(item.Rect, center, q) {
				continue
			}
			counts[q]++
			if counts[q] == kPartition {
				satisfied++
			}
		}
	}
	if len(out) == 0 {
		// Degenerate cases (everything overlaps o, or o is alone): fall
		// back to any non-overlapping neighbor set — an empty C-set would
		// leave SE with nothing to prune, returning the domain, which is
		// still correct; we return nil and let SE handle it.
		return nil
	}
	return out
}

// quadrantIntersects reports whether rect r intersects the orthant of the
// domain anchored at center whose sign pattern is given by mask: bit j set
// means the orthant spans [center_j, +inf) in dimension j.
func quadrantIntersects(r geom.Rect, center geom.Point, mask int) bool {
	for j := 0; j < len(center); j++ {
		if mask&(1<<j) != 0 {
			if r.Hi[j] < center[j] {
				return false
			}
		} else {
			if r.Lo[j] > center[j] {
				return false
			}
		}
	}
	return true
}
