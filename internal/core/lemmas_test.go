package core

// lemmas_test.go verifies the paper's lemmas empirically — each test is an
// executable statement of one lemma from §III–§VI, checked on randomized
// inputs against the brute-force oracles.

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/domination"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

func randRegion(rng *rand.Rand, span, maxSide float64, d int) geom.Rect {
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for j := 0; j < d; j++ {
		lo[j] = rng.Float64() * (span - maxSide)
		hi[j] = lo[j] + rng.Float64()*maxSide
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// Lemma 2: dom(a, b) = ∅ iff u(a) intersects u(b).
func TestLemma2DomEmptyIffIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 2000; iter++ {
		d := 1 + rng.Intn(3)
		a := randRegion(rng, 100, 30, d)
		b := randRegion(rng, 100, 30, d)
		if a.Intersects(b) {
			// dom(a,b) must be empty: no sampled point may be dominated.
			for s := 0; s < 30; s++ {
				p := make(geom.Point, d)
				for j := range p {
					p[j] = rng.Float64() * 100
				}
				if domination.PointDominated(a, b, p) {
					t.Fatalf("intersecting regions %v %v dominate point %v", a, b, p)
				}
			}
		} else {
			// dom(a,b) non-empty. Walking far along a separating axis (a
			// dimension where the intervals are disjoint), away from b, the
			// squared-distance difference maxdist(a,·)² − mindist(b,·)²
			// behaves as 2·p·(b_edge − a_edge) + O(1) → −∞, so a dominated
			// point must appear.
			sep, away := -1, 1.0
			for j := 0; j < d; j++ {
				if a.Lo[j] > b.Hi[j] {
					sep, away = j, 1 // a above b: walk up
					break
				}
				if a.Hi[j] < b.Lo[j] {
					sep, away = j, -1 // a below b: walk down
					break
				}
			}
			if sep < 0 {
				t.Fatalf("disjoint regions with no separating axis: %v %v", a, b)
			}
			p := a.Center()
			found := false
			for scale := 1.0; scale <= 1<<20; scale *= 2 {
				p[sep] = a.Center()[sep] + away*scale
				if domination.PointDominated(a, b, p) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("disjoint regions %v %v: no dominated point along separating axis %d", a, b, sep)
			}
		}
	}
}

// Lemma 4 (V(o) = I(S,o)) and Lemma 5 (u(o) ⊆ V(o)): every point of u(o) is
// a possible-NN location for o.
func TestLemma5RegionInsidePVCell(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := uncertain.NewDB(geom.UnitCube(2, 500))
	for i := 0; i < 40; i++ {
		_ = db.Add(&uncertain.Object{ID: uncertain.ID(i), Region: randRegion(rng, 500, 25, 2)})
	}
	for _, o := range db.Objects() {
		for s := 0; s < 50; s++ {
			p := make(geom.Point, 2)
			for j := range p {
				p[j] = o.Region.Lo[j] + rng.Float64()*o.Region.Side(j)
			}
			if !bruteforce.InPVCell(db, o.ID, p) {
				t.Fatalf("point %v of u(o) for object %d is not in its PV-cell", p, o.ID)
			}
		}
	}
}

// Lemma 6: V(o) is connected — checked as star-connectivity of sampled
// points back to u(o)'s center along straight lines (a stronger property
// that holds for our rect model in the sampled cases, implying
// connectedness; any failure here would be a real finding).
func TestLemma6PVCellConnectivitySample(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := uncertain.NewDB(geom.UnitCube(2, 500))
	for i := 0; i < 25; i++ {
		_ = db.Add(&uncertain.Object{ID: uncertain.ID(i), Region: randRegion(rng, 500, 25, 2)})
	}
	for _, o := range db.Objects()[:8] {
		center := o.Region.Center()
		for s := 0; s < 80; s++ {
			p := geom.Point{rng.Float64() * 500, rng.Float64() * 500}
			if !bruteforce.InPVCell(db, o.ID, p) {
				continue
			}
			// Walk the segment p→center; every step must stay in the cell.
			const steps = 20
			for k := 1; k < steps; k++ {
				frac := float64(k) / steps
				m := geom.Point{
					p[0] + (center[0]-p[0])*frac,
					p[1] + (center[1]-p[1])*frac,
				}
				if !bruteforce.InPVCell(db, o.ID, m) {
					t.Fatalf("PV-cell of %d not star-shaped toward u(o): gap at %v between %v and center", o.ID, m, p)
				}
			}
		}
	}
}

// Lemma 7: any non-empty subset of S is a valid C-set — the UBR computed
// against an arbitrary subset still contains the true PV-cell.
func TestLemma7AnySubsetIsValidCSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := uncertain.NewDB(geom.UnitCube(2, 500))
	for i := 0; i < 50; i++ {
		_ = db.Add(&uncertain.Object{ID: uncertain.ID(i), Region: randRegion(rng, 500, 25, 2)})
	}
	tree := BuildRegionTree(db, 8)
	o := db.Objects()[0]
	// Random small subsets: UBR must remain conservative for all of them.
	for trial := 0; trial < 10; trial++ {
		// Build a custom C-set by hand and run the bounds loop through the
		// exported entry point with FS of random size (FS(k) is a subset).
		opts := DefaultOptions()
		opts.Strategy = CSetFS
		opts.K = 1 + rng.Intn(10)
		ubr, _ := ComputeUBR(db, tree, o, opts)
		for s := 0; s < 200; s++ {
			p := geom.Point{rng.Float64() * 500, rng.Float64() * 500}
			if bruteforce.InPVCell(db, o.ID, p) && !ubr.Contains(p) {
				t.Fatalf("k=%d: PV point %v outside UBR %v", opts.K, p, ubr)
			}
		}
	}
}

// Lemma 8 condition 3: objects whose uncertainty regions overlap the
// updated object are unaffected — their PV-cells are identical before and
// after the update.
func TestLemma8OverlapMeansUnaffected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := uncertain.NewDB(geom.UnitCube(2, 500))
	// Object 0 and 1 overlap; others are scattered.
	_ = db.Add(&uncertain.Object{ID: 0, Region: geom.NewRect(geom.Point{100, 100}, geom.Point{140, 140})})
	_ = db.Add(&uncertain.Object{ID: 1, Region: geom.NewRect(geom.Point{120, 120}, geom.Point{160, 160})})
	for i := 2; i < 30; i++ {
		_ = db.Add(&uncertain.Object{ID: uncertain.ID(i), Region: randRegion(rng, 500, 20, 2)})
	}
	// PV-cell membership of object 0 at sampled points, with and without
	// object 1 present, must agree.
	without := db.Clone()
	_, _ = without.Remove(1)
	for s := 0; s < 3000; s++ {
		p := geom.Point{rng.Float64() * 500, rng.Float64() * 500}
		if bruteforce.InPVCell(db, 0, p) != bruteforce.InPVCell(without, 0, p) {
			t.Fatalf("removing an overlapping object changed the PV-cell at %v", p)
		}
	}
}

// Lemma 9: deleting an object can only grow PV-cells; inserting can only
// shrink them.
func TestLemma9Monotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := uncertain.NewDB(geom.UnitCube(2, 500))
	for i := 0; i < 30; i++ {
		_ = db.Add(&uncertain.Object{ID: uncertain.ID(i), Region: randRegion(rng, 500, 20, 2)})
	}
	smaller := db.Clone()
	_, _ = smaller.Remove(17)

	for s := 0; s < 3000; s++ {
		p := geom.Point{rng.Float64() * 500, rng.Float64() * 500}
		for _, o := range db.Objects() {
			if o.ID == 17 {
				continue
			}
			inFull := bruteforce.InPVCell(db, o.ID, p)
			inSmaller := bruteforce.InPVCell(smaller, o.ID, p)
			// db = smaller + {17}: membership in the larger DB implies
			// membership in the smaller (deletion grows cells).
			if inFull && !inSmaller {
				t.Fatalf("deletion shrank the PV-cell of %d at %v", o.ID, p)
			}
		}
	}
}
