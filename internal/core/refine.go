package core

import (
	"time"

	"pvoronoi/internal/domination"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// RefineOptions escalates the base SE parameters for the budget-aware
// refinement pass. The base pass runs at the paper's Table I defaults for
// every object; refinement re-runs only the fattest rows with a deeper
// domination-count recursion and a larger C-set, the two knobs that limit
// how far SE can shrink a UBR in a dense neighborhood.
type RefineOptions struct {
	// DepthBoost is added to Options.MaxDepth for the refinement tester
	// (values <= 0 leave the depth unchanged).
	DepthBoost int
	// CSetFactor multiplies K, KPartition and KGlobal for the refinement
	// C-set selection (values <= 1 leave them unchanged).
	CSetFactor int
}

// Escalate returns the base SE options with the refinement escalation
// applied.
func Escalate(base Options, r RefineOptions) Options {
	out := base
	if r.DepthBoost > 0 {
		out.MaxDepth += r.DepthBoost
	}
	if r.CSetFactor > 1 {
		out.K *= r.CSetFactor
		out.KPartition *= r.CSetFactor
		out.KGlobal *= r.CSetFactor
	}
	return out
}

// Refiner holds the escalated C-set and domination tester of one object's
// refinement: the SE re-run and the octree clip walk share the same tester,
// so the clip walk's prunability decisions are exactly as conservative as
// SE's (a region reported prunable provably contains no point of V(o)).
type Refiner struct {
	o      *uncertain.Object
	opts   Options
	tester *domination.Tester // nil when the C-set is empty

	csetSize int
	csetTime time.Duration
}

// NewRefiner selects the escalated C-set for o and builds its domination
// tester. The tree must index the uncertainty regions of all objects; the
// call is read-only over db and tree, so refiners for different objects may
// be built and used concurrently.
func NewRefiner(db *uncertain.DB, tree *rtree.Tree, o *uncertain.Object, base Options, r RefineOptions) *Refiner {
	opts := Escalate(base, r)
	rf := &Refiner{o: o, opts: opts}
	t0 := time.Now()
	cset := ChooseCSet(db, tree, o, opts)
	rf.csetTime = time.Since(t0)
	rf.csetSize = len(cset)
	if len(cset) > 0 {
		regions := make([]geom.Rect, len(cset))
		for i, c := range cset {
			regions[i] = c.Region
		}
		rf.tester = domination.NewTester(regions, o.Region, opts.MaxDepth)
	}
	return rf
}

// Refine re-runs the SE bisection for the refiner's object with the
// escalated tester, warm-started from the stored UBR as the upper bound:
// refinement only ever shrinks, so h = oldUBR is sound (the stored UBR is a
// superset of V(o), and every shrink step removes only provably dominated
// slabs). The returned stats carry the work in the Refine fields, leaving
// the base counters zero.
func (rf *Refiner) Refine(oldUBR geom.Rect) (geom.Rect, Stats) {
	var st Stats
	st.Refine.Rows = 1
	st.Refine.CSetSize = rf.csetSize
	t0 := time.Now()
	defer func() { st.Refine.Time = rf.csetTime + time.Since(t0) }()

	h := oldUBR.Clone()
	if !h.ContainsRect(rf.o.Region) {
		// Defensive: a stored UBR always contains u(o); if external input
		// violates that, refuse to shrink rather than clip V(o).
		return oldUBR, st
	}
	if rf.tester == nil {
		return h, st
	}
	testsBefore := rf.tester.Tests

	l := rf.o.Region.Clone()
	d := rf.o.Dim()
	delta := rf.opts.Delta
	if delta <= 0 {
		delta = 1e-9
	}
	for maxGap(l, h) >= delta {
		progressed := false
		for j := 0; j < d; j++ {
			if h.Lo[j] < l.Lo[j] {
				mid := (h.Lo[j] + l.Lo[j]) / 2
				slab := h.Clone()
				slab.Hi[j] = mid
				st.Refine.Iterations++
				if rf.tester.RegionPrunable(slab) {
					h.Lo[j] = mid
					st.Refine.Shrinks++
				} else {
					l.Lo[j] = mid
				}
				progressed = true
			}
			if h.Hi[j] > l.Hi[j] {
				mid := (h.Hi[j] + l.Hi[j]) / 2
				slab := h.Clone()
				slab.Lo[j] = mid
				st.Refine.Iterations++
				if rf.tester.RegionPrunable(slab) {
					h.Hi[j] = mid
					st.Refine.Shrinks++
				} else {
					l.Hi[j] = mid
				}
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	st.Refine.DominationTests = rf.tester.Tests - testsBefore
	return h, st
}

// Prunable reports whether region r provably contains no point of the
// object's possible Voronoi cell V(o). Conservative like the tester it
// wraps: a false result is inconclusive, a true result is definitive. With
// an empty C-set nothing is provable and every region is kept.
func (rf *Refiner) Prunable(r geom.Rect) bool {
	if rf.tester == nil {
		return false
	}
	return rf.tester.RegionPrunable(r)
}

// Tests returns the cumulative domination decisions the refiner has spent
// (SE bisection plus any clip-walk probes through Prunable).
func (rf *Refiner) Tests() int64 {
	if rf.tester == nil {
		return 0
	}
	return rf.tester.Tests
}
