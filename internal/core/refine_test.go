package core

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/geom"
)

// TestEscalate checks the knob mapping: DepthBoost adds to the tester
// recursion depth, CSetFactor multiplies all three C-set quotas, and
// non-positive values leave the base untouched.
func TestEscalate(t *testing.T) {
	base := DefaultOptions()
	esc := Escalate(base, RefineOptions{DepthBoost: 4, CSetFactor: 3})
	if esc.MaxDepth != base.MaxDepth+4 {
		t.Fatalf("MaxDepth = %d, want %d", esc.MaxDepth, base.MaxDepth+4)
	}
	if esc.K != base.K*3 || esc.KPartition != base.KPartition*3 || esc.KGlobal != base.KGlobal*3 {
		t.Fatalf("C-set quotas not tripled: %+v", esc)
	}
	if esc.Delta != base.Delta || esc.Strategy != base.Strategy {
		t.Fatalf("escalation changed unrelated knobs: %+v", esc)
	}
	same := Escalate(base, RefineOptions{DepthBoost: 0, CSetFactor: 1})
	if same != base {
		t.Fatalf("no-op escalation altered options: %+v", same)
	}
}

// TestRefinerShrinkOnlyAndSound is the refinement pass's core contract:
// starting from the base SE UBR, the refined rectangle never grows, always
// contains the object's uncertainty region, and still contains every sampled
// point of the true PV-cell (conservativeness survives the deeper tester).
func TestRefinerShrinkOnlyAndSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := randomDB(rng, 80, 2, 1000, 40)
	tree := BuildRegionTree(db, 16)
	opts := optsWith(CSetIS)
	r := RefineOptions{DepthBoost: 4, CSetFactor: 4}
	for _, o := range db.Objects()[:16] {
		base, _ := ComputeUBR(db, tree, o, opts)
		rf := NewRefiner(db, tree, o, opts, r)
		refined, st := rf.Refine(base)
		if !base.ContainsRect(refined) {
			t.Fatalf("object %d: refined UBR %v escapes base %v", o.ID, refined, base)
		}
		if !refined.ContainsRect(o.Region) {
			t.Fatalf("object %d: refined UBR %v lost u(o) %v", o.ID, refined, o.Region)
		}
		if st.Refine.Rows != 1 {
			t.Fatalf("object %d: Refine.Rows = %d, want 1", o.ID, st.Refine.Rows)
		}
		// Refinement work must land in the Refine block, not the base-pass
		// counters (the Stats split the batch attribution depends on).
		if st.Iterations != 0 || st.DominationTests != 0 || st.Shrinks != 0 {
			t.Fatalf("object %d: refinement leaked into base counters: %+v", o.ID, st)
		}
		if st.Refine.Iterations == 0 || st.Refine.DominationTests == 0 {
			t.Fatalf("object %d: refinement did no work: %+v", o.ID, st.Refine)
		}
		for s := 0; s < 300; s++ {
			p := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
			if bruteforce.InPVCell(db, o.ID, p) && !refined.Contains(p) {
				t.Fatalf("object %d: PV-cell point %v outside refined UBR %v",
					o.ID, p, refined)
			}
		}
	}
}

// TestRefinerDegenerateInputs covers the guards: an oldUBR that does not
// contain u(o) is returned untouched (refuse to shrink on bad input), and a
// single-object database (empty C-set, nil tester) keeps the old UBR and
// reports nothing prunable.
func TestRefinerDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	db := randomDB(rng, 40, 2, 1000, 40)
	tree := BuildRegionTree(db, 16)
	opts := optsWith(CSetIS)
	o := db.Objects()[0]
	rf := NewRefiner(db, tree, o, opts, RefineOptions{DepthBoost: 2, CSetFactor: 2})
	bogus := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	if got, _ := rf.Refine(bogus); !got.Equal(bogus) {
		t.Fatalf("bad oldUBR was shrunk: %v -> %v", bogus, got)
	}

	solo := randomDB(rand.New(rand.NewSource(33)), 1, 2, 1000, 40)
	soloTree := BuildRegionTree(solo, 16)
	so := solo.Objects()[0]
	srf := NewRefiner(solo, soloTree, so, optsWith(CSetIS), RefineOptions{DepthBoost: 2})
	domain := solo.Domain
	if got, _ := srf.Refine(domain); !got.Equal(domain) {
		t.Fatalf("single-object refinement shrank the domain UBR: %v", got)
	}
	if srf.Prunable(domain) {
		t.Fatal("nil-tester refiner claimed a region prunable")
	}
	if srf.Tests() != 0 {
		t.Fatalf("nil-tester refiner counted %d tests", srf.Tests())
	}
}
