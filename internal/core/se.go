package core

import (
	"time"

	"pvoronoi/internal/domination"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// Stats reports the cost profile of one SE run, feeding the paper's
// construction-time breakdowns (Fig. 10(e)). The flat counters cover the
// base SE pass only; the budget-aware refinement pass accounts its extra
// work separately in Refine, so aggregated stats attribute base and
// refinement effort honestly instead of lumping them together.
type Stats struct {
	CSetSize        int
	CSetTime        time.Duration
	UBRTime         time.Duration
	Iterations      int   // shrink-or-expand steps executed
	DominationTests int64 // individual spatial-domination decisions
	Shrinks         int   // steps that shrank h(o)
	Expands         int   // steps that expanded l(o)

	// Refine isolates the refinement pass's cost from the base counters
	// above. Zero unless a budget-aware refinement ran.
	Refine RefineStats
}

// RefineStats is the cost profile of the budget-aware refinement pass:
// the escalated SE bisection plus the octree clip walk. Kept apart from the
// base Stats counters so per-batch accounting can show exactly where the
// extra budget went.
type RefineStats struct {
	Rows            int           // objects whose UBR a refinement recomputed
	CSetSize        int           // escalated C-set sizes, summed
	Time            time.Duration // wall time of refinement SE work
	Iterations      int           // refinement bisection steps attempted
	DominationTests int64         // domination decisions spent by refinement bisection
	Shrinks         int           // refinement steps that tightened the UBR
	ClipPasses      int           // octree clip walks executed
	ClipCells       int           // leaf cells examined by clip walks
	ClipTests       int64         // domination decisions spent by clip walks
}

// Add accumulates s2 into s, for aggregating per-pass refinement stats.
func (s *RefineStats) Add(s2 RefineStats) {
	s.Rows += s2.Rows
	s.CSetSize += s2.CSetSize
	s.Time += s2.Time
	s.Iterations += s2.Iterations
	s.DominationTests += s2.DominationTests
	s.Shrinks += s2.Shrinks
	s.ClipPasses += s2.ClipPasses
	s.ClipCells += s2.ClipCells
	s.ClipTests += s2.ClipTests
}

// Add accumulates s2 into s, for aggregating per-object stats over a build.
func (s *Stats) Add(s2 Stats) {
	s.CSetSize += s2.CSetSize
	s.CSetTime += s2.CSetTime
	s.UBRTime += s2.UBRTime
	s.Iterations += s2.Iterations
	s.DominationTests += s2.DominationTests
	s.Shrinks += s2.Shrinks
	s.Expands += s2.Expands
	s.Refine.Add(s2.Refine)
}

// ComputeUBR runs the SE algorithm (Algorithm 1) for object o over database
// db and returns a UBR B(o) ⊇ V(o). The tree must index all object regions.
func ComputeUBR(db *uncertain.DB, tree *rtree.Tree, o *uncertain.Object, opts Options) (geom.Rect, Stats) {
	return computeUBRBounds(db, tree, o, opts, o.Region.Clone(), db.Domain.Clone())
}

// ComputeUBRAfterDelete recomputes o's UBR after another object was deleted
// from db. By Lemma 9 the PV-cell can only grow, so SE warm-starts with the
// old UBR as the lower bound l(o) (§VI-B, deletion Step 3).
func ComputeUBRAfterDelete(db *uncertain.DB, tree *rtree.Tree, o *uncertain.Object, oldUBR geom.Rect, opts Options) (geom.Rect, Stats) {
	return computeUBRBounds(db, tree, o, opts, oldUBR.Clone(), db.Domain.Clone())
}

// ComputeUBRAfterInsert recomputes o's UBR after another object was inserted
// into db. By Lemma 9 the PV-cell can only shrink, so SE warm-starts with the
// old UBR as the upper bound h(o) (§VI-B, insertion Step 3).
func ComputeUBRAfterInsert(db *uncertain.DB, tree *rtree.Tree, o *uncertain.Object, oldUBR geom.Rect, opts Options) (geom.Rect, Stats) {
	// Guard the warm start: l(o)=u(o) must stay inside h(o)=oldUBR; if the
	// stored UBR somehow fails that (it cannot for UBRs produced here, but
	// defensive for external input), fall back to the domain.
	h := oldUBR.Clone()
	if !h.ContainsRect(o.Region) {
		h = db.Domain.Clone()
	}
	return computeUBRBounds(db, tree, o, opts, o.Region.Clone(), h)
}

// computeUBRBounds is the shared SE loop with explicit initial bounds:
// l ⊆ M(o) ⊆ h is maintained as h shrinks and l expands until every
// directional gap is below Δ. The returned UBR is h.
func computeUBRBounds(db *uncertain.DB, tree *rtree.Tree, o *uncertain.Object, opts Options, l, h geom.Rect) (ubr geom.Rect, st Stats) {
	t0 := time.Now()
	cset := ChooseCSet(db, tree, o, opts)
	st.CSetTime = time.Since(t0)
	st.CSetSize = len(cset)

	t1 := time.Now()
	defer func() { st.UBRTime = time.Since(t1) }()

	if len(cset) == 0 {
		// Nothing constrains V(o): the PV-cell is the whole domain.
		return h, st
	}

	regions := make([]geom.Rect, len(cset))
	for i, c := range cset {
		regions[i] = c.Region
	}
	tester := domination.NewTester(regions, o.Region, opts.MaxDepth)

	d := o.Dim()
	delta := opts.Delta
	if delta <= 0 {
		delta = 1e-9 // Δ=0 would loop forever on irrational boundaries
	}

	for maxGap(l, h) >= delta {
		progressed := false
		for j := 0; j < d; j++ {
			// Low direction: candidate slab between h.Lo and the midplane.
			if h.Lo[j] < l.Lo[j] {
				mid := (h.Lo[j] + l.Lo[j]) / 2
				slab := h.Clone()
				slab.Hi[j] = mid
				st.Iterations++
				if tester.RegionPrunable(slab) {
					h.Lo[j] = mid
					st.Shrinks++
				} else {
					l.Lo[j] = mid
					st.Expands++
				}
				progressed = true
			}
			// High direction: candidate slab between the midplane and h.Hi.
			if h.Hi[j] > l.Hi[j] {
				mid := (h.Hi[j] + l.Hi[j]) / 2
				slab := h.Clone()
				slab.Lo[j] = mid
				st.Iterations++
				if tester.RegionPrunable(slab) {
					h.Hi[j] = mid
					st.Shrinks++
				} else {
					l.Hi[j] = mid
					st.Expands++
				}
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	st.DominationTests = tester.Tests
	return h, st
}

// maxGap returns |h − l|_d: the largest per-direction distance between the
// boundaries of the bounding pair.
func maxGap(l, h geom.Rect) float64 {
	var m float64
	for j := range l.Lo {
		if g := l.Lo[j] - h.Lo[j]; g > m {
			m = g
		}
		if g := h.Hi[j] - l.Hi[j]; g > m {
			m = g
		}
	}
	return m
}

// BuildRegionTree indexes the uncertainty regions of every object in db in
// an R*-tree keyed by object ID — the shared support structure for FS/IS
// C-set selection and for the R-tree PNNQ baseline.
func BuildRegionTree(db *uncertain.DB, fanout int) *rtree.Tree {
	t := rtree.New(db.Dim(), fanout)
	for _, o := range db.Objects() {
		t.Insert(rtree.Item{Rect: o.Region, ID: uint32(o.ID)})
	}
	return t
}
