package core

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// randomDB builds a database of n objects with uniformly placed rectangular
// regions of max side maxSide inside [0, span]^d.
func randomDB(rng *rand.Rand, n, d int, span, maxSide float64) *uncertain.DB {
	db := uncertain.NewDB(geom.UnitCube(d, span))
	for i := 0; i < n; i++ {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for j := 0; j < d; j++ {
			lo[j] = rng.Float64() * (span - maxSide)
			hi[j] = lo[j] + 1 + rng.Float64()*(maxSide-1)
		}
		_ = db.Add(&uncertain.Object{ID: uncertain.ID(i), Region: geom.Rect{Lo: lo, Hi: hi}})
	}
	return db
}

func optsWith(s CSetStrategy) Options {
	o := DefaultOptions()
	o.Strategy = s
	o.K = 20
	o.KPartition = 3
	o.KGlobal = 30
	return o
}

// TestUBRConservative is the central correctness property: the UBR returned
// by SE must contain every point of the true PV-cell, for every strategy.
func TestUBRConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, d := range []int{2, 3} {
		db := randomDB(rng, 60, d, 1000, 40)
		tree := BuildRegionTree(db, 16)
		for _, strat := range []CSetStrategy{CSetAll, CSetFS, CSetIS} {
			opts := optsWith(strat)
			for _, o := range db.Objects()[:12] {
				ubr, _ := ComputeUBR(db, tree, o, opts)
				if !ubr.ContainsRect(o.Region) {
					t.Fatalf("d=%d %v: UBR %v does not contain u(o) %v", d, strat, ubr, o.Region)
				}
				// Sample domain points; any point in V(o) must be in the UBR.
				for s := 0; s < 400; s++ {
					p := make(geom.Point, d)
					for j := range p {
						p[j] = rng.Float64() * 1000
					}
					if bruteforce.InPVCell(db, o.ID, p) && !ubr.Contains(p) {
						t.Fatalf("d=%d %v: PV-cell point %v of object %d outside UBR %v",
							d, strat, p, o.ID, ubr)
					}
				}
			}
		}
	}
}

// TestUBRConservativeDensePVBoundary probes points near the UBR boundary,
// where an over-eager shrink would first show up.
func TestUBRConservativeDensePVBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	db := randomDB(rng, 40, 2, 500, 25)
	tree := BuildRegionTree(db, 16)
	opts := optsWith(CSetIS)
	for _, o := range db.Objects()[:10] {
		ubr, _ := ComputeUBR(db, tree, o, opts)
		// Points just outside each face of the UBR must NOT be in V(o)
		// ... unless the UBR is loose, which is allowed. Instead verify the
		// sound direction densely: points inside V(o) near the boundary are
		// inside the UBR. Sample on a ring slightly inside the UBR.
		for s := 0; s < 300; s++ {
			p := make(geom.Point, 2)
			for j := range p {
				p[j] = ubr.Lo[j] + rng.Float64()*(ubr.Hi[j]-ubr.Lo[j])
			}
			if bruteforce.InPVCell(db, o.ID, p) && !ubr.Contains(p) {
				t.Fatalf("boundary-adjacent PV point escaped UBR")
			}
		}
	}
}

// TestUBRTightAgainstGrid places objects on a regular grid; the PV-cell of an
// interior object is confined by its neighbors, so the UBR must be far
// smaller than the domain.
func TestUBRTightAgainstGrid(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(2, 1000))
	id := uncertain.ID(0)
	var center *uncertain.Object
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			lo := geom.Point{float64(x)*200 + 90, float64(y)*200 + 90}
			hi := geom.Point{float64(x)*200 + 110, float64(y)*200 + 110}
			o := &uncertain.Object{ID: id, Region: geom.NewRect(lo, hi)}
			if x == 2 && y == 2 {
				center = o
			}
			_ = db.Add(o)
			id++
		}
	}
	tree := BuildRegionTree(db, 8)
	for _, strat := range []CSetStrategy{CSetAll, CSetFS, CSetIS} {
		ubr, st := ComputeUBR(db, tree, center, optsWith(strat))
		if vol := ubr.Volume(); vol > 1000*1000/4 {
			t.Errorf("%v: UBR volume %g is more than a quarter of the domain (%v)", strat, vol, ubr)
		}
		if st.Iterations == 0 {
			t.Errorf("%v: SE did no iterations", strat)
		}
		// The PV-cell of the center object certainly fits within one grid
		// ring: neighbors at distance 200 dominate points beyond ~500.
		bound := geom.NewRect(geom.Point{100, 100}, geom.Point{900, 900})
		if !bound.ContainsRect(ubr) {
			t.Errorf("%v: UBR %v exceeds generous bound", strat, ubr)
		}
	}
}

func TestUBRSingleObjectIsDomain(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(3, 100))
	o := &uncertain.Object{ID: 1, Region: geom.NewRect(geom.Point{10, 10, 10}, geom.Point{20, 20, 20})}
	_ = db.Add(o)
	tree := BuildRegionTree(db, 8)
	for _, strat := range []CSetStrategy{CSetAll, CSetFS, CSetIS} {
		ubr, _ := ComputeUBR(db, tree, o, optsWith(strat))
		if !ubr.Equal(db.Domain) {
			t.Errorf("%v: lone object's UBR = %v, want whole domain", strat, ubr)
		}
	}
}

func TestUBRAllOverlapping(t *testing.T) {
	// Every region overlaps every other: no object dominates anywhere, so
	// every PV-cell is the whole domain.
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	for i := 0; i < 5; i++ {
		_ = db.Add(&uncertain.Object{
			ID:     uncertain.ID(i),
			Region: geom.NewRect(geom.Point{40, 40}, geom.Point{60, 60}),
		})
	}
	tree := BuildRegionTree(db, 8)
	for _, strat := range []CSetStrategy{CSetAll, CSetIS} {
		ubr, _ := ComputeUBR(db, tree, db.Objects()[0], optsWith(strat))
		if !ubr.Equal(db.Domain) {
			t.Errorf("%v: overlapping objects should give domain UBR, got %v", strat, ubr)
		}
	}
}

func TestChooseCSetStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := randomDB(rng, 100, 2, 1000, 30)
	tree := BuildRegionTree(db, 16)
	o := db.Objects()[0]

	all := ChooseCSet(db, tree, o, optsWith(CSetAll))
	if len(all) != 99 {
		t.Fatalf("ALL size = %d", len(all))
	}
	for _, c := range all {
		if c.ID == o.ID {
			t.Fatal("ALL contains the object itself")
		}
	}

	opts := optsWith(CSetFS)
	fs := ChooseCSet(db, tree, o, opts)
	if len(fs) != opts.K {
		t.Fatalf("FS size = %d, want %d", len(fs), opts.K)
	}
	// FS must return the k nearest by center distance.
	want := bruteforce.NNByCenter(db, o.Region.Center())
	wantSet := map[uncertain.ID]bool{}
	for _, id := range want[1 : opts.K+1] { // index 0 is o itself
		wantSet[id] = true
	}
	for _, c := range fs {
		if !wantSet[c.ID] {
			t.Errorf("FS returned %d, not among %d nearest centers", c.ID, opts.K)
		}
	}

	is := ChooseCSet(db, tree, o, optsWith(CSetIS))
	if len(is) == 0 {
		t.Fatal("IS returned empty C-set on a populated database")
	}
	for _, c := range is {
		if c.ID == o.ID {
			t.Fatal("IS contains the object itself")
		}
		if c.Region.Intersects(o.Region) {
			t.Errorf("IS returned overlapping object %d", c.ID)
		}
	}
	if len(is) > optsWith(CSetIS).KGlobal {
		t.Errorf("IS exceeded kGlobal: %d", len(is))
	}
}

func TestISQuadrantCoverage(t *testing.T) {
	// One near neighbor per quadrant plus a distant one per quadrant; with
	// kPartition=1 IS should stop after covering all quadrants and include
	// at least one object per quadrant.
	db := uncertain.NewDB(geom.UnitCube(2, 1000))
	o := &uncertain.Object{ID: 0, Region: geom.NewRect(geom.Point{495, 495}, geom.Point{505, 505})}
	_ = db.Add(o)
	id := uncertain.ID(1)
	// Quadrant representatives at varying distances.
	offsets := [][2]float64{{100, 100}, {-120, 110}, {130, -90}, {-80, -140}}
	for _, off := range offsets {
		lo := geom.Point{500 + off[0], 500 + off[1]}
		hi := geom.Point{500 + off[0] + 10, 500 + off[1] + 10}
		if lo[0] > hi[0] {
			lo[0], hi[0] = hi[0], lo[0]
		}
		_ = db.Add(&uncertain.Object{ID: id, Region: geom.NewRect(lo, hi)})
		id++
	}
	tree := BuildRegionTree(db, 8)
	opts := DefaultOptions()
	opts.KPartition = 1
	opts.KGlobal = 100
	got := ChooseCSet(db, tree, o, opts)
	if len(got) != 4 {
		t.Fatalf("IS returned %d objects, want all 4 quadrant reps", len(got))
	}
}

func TestIncrementalDeleteConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := randomDB(rng, 50, 2, 800, 30)
	tree := BuildRegionTree(db, 16)
	opts := optsWith(CSetIS)

	// Old UBRs for all objects.
	old := map[uncertain.ID]geom.Rect{}
	for _, o := range db.Objects() {
		ubr, _ := ComputeUBR(db, tree, o, opts)
		old[o.ID] = ubr
	}
	// Delete object 7 and recompute warm-started UBRs for everyone else.
	victim := db.Get(7)
	_, _ = db.Remove(7)
	tree = BuildRegionTree(db, 16)
	_ = victim
	for _, o := range db.Objects()[:15] {
		ubr, _ := ComputeUBRAfterDelete(db, tree, o, old[o.ID], opts)
		for s := 0; s < 300; s++ {
			p := geom.Point{rng.Float64() * 800, rng.Float64() * 800}
			if bruteforce.InPVCell(db, o.ID, p) && !ubr.Contains(p) {
				t.Fatalf("after delete: PV point %v of %d outside warm-started UBR %v", p, o.ID, ubr)
			}
		}
	}
}

func TestIncrementalInsertConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	db := randomDB(rng, 50, 2, 800, 30)
	tree := BuildRegionTree(db, 16)
	opts := optsWith(CSetIS)

	old := map[uncertain.ID]geom.Rect{}
	for _, o := range db.Objects() {
		ubr, _ := ComputeUBR(db, tree, o, opts)
		old[o.ID] = ubr
	}
	// Insert a new object and recompute warm-started UBRs.
	newcomer := &uncertain.Object{ID: 1000, Region: geom.NewRect(geom.Point{400, 400}, geom.Point{420, 420})}
	_ = db.Add(newcomer)
	tree = BuildRegionTree(db, 16)
	for _, o := range db.Objects()[:15] {
		if o.ID == newcomer.ID {
			continue
		}
		ubr, _ := ComputeUBRAfterInsert(db, tree, o, old[o.ID], opts)
		for s := 0; s < 300; s++ {
			p := geom.Point{rng.Float64() * 800, rng.Float64() * 800}
			if bruteforce.InPVCell(db, o.ID, p) && !ubr.Contains(p) {
				t.Fatalf("after insert: PV point %v of %d outside warm-started UBR %v", p, o.ID, ubr)
			}
		}
		// Warm-started insert UBR can never exceed the old UBR.
		if !old[o.ID].ContainsRect(ubr) {
			t.Fatalf("insert warm start grew the UBR: old %v new %v", old[o.ID], ubr)
		}
	}
}

func TestDeltaControlsIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	db := randomDB(rng, 60, 2, 1000, 30)
	tree := BuildRegionTree(db, 16)
	o := db.Objects()[0]
	coarse := optsWith(CSetIS)
	coarse.Delta = 100
	fine := optsWith(CSetIS)
	fine.Delta = 0.1
	_, stCoarse := ComputeUBR(db, tree, o, coarse)
	_, stFine := ComputeUBR(db, tree, o, fine)
	if stFine.Iterations <= stCoarse.Iterations {
		t.Errorf("finer Δ should take more iterations: %d vs %d", stFine.Iterations, stCoarse.Iterations)
	}
}

func TestFinerDeltaNeverLooser(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	db := randomDB(rng, 60, 2, 1000, 30)
	tree := BuildRegionTree(db, 16)
	for _, o := range db.Objects()[:8] {
		coarse := optsWith(CSetAll)
		coarse.Delta = 50
		fine := optsWith(CSetAll)
		fine.Delta = 0.5
		ubrCoarse, _ := ComputeUBR(db, tree, o, coarse)
		ubrFine, _ := ComputeUBR(db, tree, o, fine)
		if !ubrCoarse.ContainsRect(ubrFine) {
			t.Errorf("fine-Δ UBR %v not inside coarse-Δ UBR %v", ubrFine, ubrCoarse)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randomDB(rng, 30, 2, 500, 20)
	tree := BuildRegionTree(db, 8)
	_, st := ComputeUBR(db, tree, db.Objects()[0], optsWith(CSetIS))
	if st.CSetSize == 0 || st.Iterations == 0 || st.DominationTests == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.Shrinks+st.Expands != st.Iterations {
		t.Fatalf("shrinks+expands=%d != iterations=%d", st.Shrinks+st.Expands, st.Iterations)
	}
	var agg Stats
	agg.Add(st)
	agg.Add(st)
	if agg.Iterations != 2*st.Iterations {
		t.Fatal("Stats.Add broken")
	}
}

func TestStrategyString(t *testing.T) {
	if CSetAll.String() != "ALL" || CSetFS.String() != "FS" || CSetIS.String() != "IS" {
		t.Fatal("strategy names wrong")
	}
	if CSetStrategy(42).String() == "" {
		t.Fatal("unknown strategy should still render")
	}
}
