package core

import (
	"math/rand"
	"testing"
	"time"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/geom"
)

// TestInsertWarmStartBadOldUBR exercises the defensive fallback: an "old
// UBR" that does not contain u(o) cannot seed the upper bound, so SE must
// fall back to the domain and still produce a conservative UBR.
func TestInsertWarmStartBadOldUBR(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	db := randomDB(rng, 40, 2, 500, 25)
	tree := BuildRegionTree(db, 8)
	o := db.Objects()[0]
	bogus := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}) // excludes u(o)
	ubr, _ := ComputeUBRAfterInsert(db, tree, o, bogus, optsWith(CSetIS))
	if !ubr.ContainsRect(o.Region) {
		t.Fatalf("fallback UBR %v does not contain u(o) %v", ubr, o.Region)
	}
	for s := 0; s < 300; s++ {
		p := geom.Point{rng.Float64() * 500, rng.Float64() * 500}
		if bruteforce.InPVCell(db, o.ID, p) && !ubr.Contains(p) {
			t.Fatalf("fallback UBR misses PV point %v", p)
		}
	}
}

// TestDeleteWarmStartEqualsColdConservative: warm-started recomputation
// after a deletion must cover at least everything the cold computation
// covers being seeded with a larger lower bound.
func TestDeleteWarmStartContainsOldUBR(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	db := randomDB(rng, 50, 2, 600, 25)
	tree := BuildRegionTree(db, 8)
	opts := optsWith(CSetIS)
	o := db.Objects()[3]
	oldUBR, _ := ComputeUBR(db, tree, o, opts)

	_, _ = db.Remove(10)
	tree = BuildRegionTree(db, 8)
	newUBR, _ := ComputeUBRAfterDelete(db, tree, o, oldUBR, opts)
	if !newUBR.ContainsRect(oldUBR) {
		t.Fatalf("deletion warm start shrank the UBR: old %v new %v", oldUBR, newUBR)
	}
}

// TestZeroDelta: Δ<=0 must not loop forever; SE substitutes a tiny epsilon.
func TestZeroDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	db := randomDB(rng, 20, 2, 300, 20)
	tree := BuildRegionTree(db, 8)
	opts := optsWith(CSetIS)
	opts.Delta = 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		ubr, _ := ComputeUBR(db, tree, db.Objects()[0], opts)
		if !ubr.ContainsRect(db.Objects()[0].Region) {
			t.Error("Δ=0 UBR not conservative")
		}
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("SE with Δ=0 did not terminate")
	}
}
