// Package dataset generates the paper's evaluation workloads.
//
// Synthetic data follows the setup of §VII-A: object mean positions uniform
// in D = [0, 10000]^d, per-dimension uncertainty extents uniform in
// [1, |u(o)|], and a discrete pdf of 500 uniform samples per object.
//
// The paper's three real datasets (roads and rrlines from rtreeportal.org,
// airports from ourairports.com) are offline, so Real generates statistically
// similar stand-ins: road/rail networks as thin, elongated segment MBRs along
// random polylines with network-like clustering, and airports as 3-D points
// clustered around population centers with a 10 m GPS error sphere bounded by
// its MBR (Gaussian pdf, as in the paper). Counts match the originals
// (30k / 36k / 20k). See DESIGN.md for the substitution rationale.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// DomainSpan is the paper's domain extent per dimension.
const DomainSpan = 10000.0

// SyntheticParams configures the synthetic generator (Table I).
type SyntheticParams struct {
	N         int     // |S|
	Dim       int     // d
	MaxSide   float64 // |u(o)|: max uncertainty extent per dimension
	Instances int     // pdf samples per object (0 = regions only)
	Seed      int64
	Clustered bool // Theodoridis-style Gaussian clusters instead of uniform
	Clusters  int  // number of clusters when Clustered (default 10)
}

// Synthetic generates a uniform (or clustered) uncertain database.
func Synthetic(p SyntheticParams) *uncertain.DB {
	if p.Dim <= 0 {
		p.Dim = 3
	}
	if p.MaxSide <= 0 {
		p.MaxSide = 60
	}
	rng := rand.New(rand.NewSource(p.Seed))
	db := uncertain.NewDB(geom.UnitCube(p.Dim, DomainSpan))

	var centers []geom.Point
	if p.Clustered {
		k := p.Clusters
		if k <= 0 {
			k = 10
		}
		centers = make([]geom.Point, k)
		for i := range centers {
			c := make(geom.Point, p.Dim)
			for j := range c {
				c[j] = rng.Float64() * DomainSpan
			}
			centers[i] = c
		}
	}

	for i := 0; i < p.N; i++ {
		mean := make(geom.Point, p.Dim)
		if p.Clustered {
			c := centers[rng.Intn(len(centers))]
			for j := range mean {
				mean[j] = clamp(c[j]+rng.NormFloat64()*DomainSpan/40, 0, DomainSpan)
			}
		} else {
			for j := range mean {
				mean[j] = rng.Float64() * DomainSpan
			}
		}
		lo := make(geom.Point, p.Dim)
		hi := make(geom.Point, p.Dim)
		for j := 0; j < p.Dim; j++ {
			side := 1 + rng.Float64()*(p.MaxSide-1)
			lo[j] = clamp(mean[j]-side/2, 0, DomainSpan)
			hi[j] = clamp(mean[j]+side/2, 0, DomainSpan)
			if hi[j] <= lo[j] {
				hi[j] = math.Min(lo[j]+1, DomainSpan)
				lo[j] = hi[j] - 1
			}
		}
		o := &uncertain.Object{ID: uncertain.ID(i), Region: geom.Rect{Lo: lo, Hi: hi}}
		if p.Instances > 0 {
			o.Instances = uncertain.SampleInstances(o.Region, uncertain.PDFUniform, p.Instances, rng)
		}
		_ = db.Add(o)
	}
	return db
}

// RealKind selects one of the simulated real datasets.
type RealKind int

const (
	// Roads models the rtreeportal.org "roads" dataset: 30k 2-D rectangles
	// bounding road segments.
	Roads RealKind = iota
	// RRLines models "rrlines": 36k 2-D rectangles bounding railroad
	// segments (longer, straighter than roads).
	RRLines
	// Airports models the ourairports.com dataset: 20k 3-D positions
	// (lat, lon, altitude) with a 10 m GPS error sphere, bounded by MBRs.
	Airports
)

// String implements fmt.Stringer.
func (k RealKind) String() string {
	switch k {
	case Roads:
		return "roads"
	case RRLines:
		return "rrlines"
	case Airports:
		return "airports"
	default:
		return fmt.Sprintf("RealKind(%d)", int(k))
	}
}

// Size returns the dataset's paper-reported cardinality.
func (k RealKind) Size() int {
	switch k {
	case Roads:
		return 30000
	case RRLines:
		return 36000
	case Airports:
		return 20000
	default:
		return 0
	}
}

// Dim returns the dataset's dimensionality.
func (k RealKind) Dim() int {
	if k == Airports {
		return 3
	}
	return 2
}

// RealParams configures the simulated real datasets.
type RealParams struct {
	Kind      RealKind
	N         int // object count; Kind.Size() if 0
	Instances int // pdf samples per object
	Seed      int64
}

// Real generates a simulated real dataset.
func Real(p RealParams) *uncertain.DB {
	if p.N <= 0 {
		p.N = p.Kind.Size()
	}
	rng := rand.New(rand.NewSource(p.Seed))
	switch p.Kind {
	case Airports:
		return airports(p, rng)
	default:
		return segmentNetwork(p, rng)
	}
}

// segmentNetwork lays polylines across the domain and emits the MBR of each
// segment — the shape signature of the roads/rrlines datasets: thin,
// elongated, spatially clustered rectangles.
func segmentNetwork(p RealParams, rng *rand.Rand) *uncertain.DB {
	db := uncertain.NewDB(geom.UnitCube(2, DomainSpan))

	// Rail lines are longer and straighter than roads.
	segLen, wobble := 60.0, 0.9
	if p.Kind == RRLines {
		segLen, wobble = 110.0, 0.25
	}

	id := uncertain.ID(0)
	for int(id) < p.N {
		// Start a new polyline at a random hub; hubs cluster near a few
		// metro centers to mimic real network density.
		x := rng.Float64() * DomainSpan
		y := rng.Float64() * DomainSpan
		if rng.Float64() < 0.7 {
			// 70% of lines start near one of 8 metro centers.
			cx := float64(1+rng.Intn(8)) * DomainSpan / 9
			cy := float64(1+rng.Intn(8)) * DomainSpan / 9
			x = clamp(cx+rng.NormFloat64()*DomainSpan/30, 0, DomainSpan)
			y = clamp(cy+rng.NormFloat64()*DomainSpan/30, 0, DomainSpan)
		}
		heading := rng.Float64() * 2 * math.Pi
		steps := 10 + rng.Intn(40)
		for s := 0; s < steps && int(id) < p.N; s++ {
			length := segLen * (0.5 + rng.Float64())
			nx := x + math.Cos(heading)*length
			ny := y + math.Sin(heading)*length
			if nx < 0 || nx > DomainSpan || ny < 0 || ny > DomainSpan {
				break // line left the map
			}
			lo := geom.Point{math.Min(x, nx), math.Min(y, ny)}
			hi := geom.Point{math.Max(x, nx), math.Max(y, ny)}
			// Give the MBR the segment's width so degenerate axis-aligned
			// segments still have extent.
			width := 1 + rng.Float64()*4
			for j := 0; j < 2; j++ {
				if hi[j]-lo[j] < width {
					mid := (hi[j] + lo[j]) / 2
					lo[j] = clamp(mid-width/2, 0, DomainSpan)
					hi[j] = clamp(mid+width/2, 0, DomainSpan)
				}
			}
			o := &uncertain.Object{ID: id, Region: geom.Rect{Lo: lo, Hi: hi}}
			if p.Instances > 0 {
				o.Instances = uncertain.SampleInstances(o.Region, uncertain.PDFUniform, p.Instances, rng)
			}
			_ = db.Add(o)
			id++
			x, y = nx, ny
			heading += (rng.Float64() - 0.5) * wobble
		}
	}
	return db
}

// airports emits 3-D positions clustered around population centers. The GPS
// error is a 10 m sphere; in domain units (10000 ≈ continental extent) we
// keep the paper's relative scale by mapping 10 m to a small constant.
func airports(p RealParams, rng *rand.Rand) *uncertain.DB {
	db := uncertain.NewDB(geom.UnitCube(3, DomainSpan))
	const gpsErr = 2.5 // domain units: the 10 m error sphere's radius

	// Population centers with Zipf-ish weights.
	const centers = 40
	cx := make([]geom.Point, centers)
	for i := range cx {
		cx[i] = geom.Point{
			rng.Float64() * DomainSpan,
			rng.Float64() * DomainSpan,
			0,
		}
	}
	for i := 0; i < p.N; i++ {
		var pos geom.Point
		if rng.Float64() < 0.8 {
			c := cx[rng.Intn(centers)]
			pos = geom.Point{
				clamp(c[0]+rng.NormFloat64()*DomainSpan/25, 0, DomainSpan),
				clamp(c[1]+rng.NormFloat64()*DomainSpan/25, 0, DomainSpan),
				0,
			}
		} else {
			pos = geom.Point{rng.Float64() * DomainSpan, rng.Float64() * DomainSpan, 0}
		}
		// Altitude: most airports near sea level, a long tail up high.
		pos[2] = clamp(math.Abs(rng.NormFloat64())*DomainSpan/20, 0, DomainSpan)

		lo := make(geom.Point, 3)
		hi := make(geom.Point, 3)
		for j := 0; j < 3; j++ {
			lo[j] = clamp(pos[j]-gpsErr, 0, DomainSpan)
			hi[j] = clamp(pos[j]+gpsErr, 0, DomainSpan)
		}
		o := &uncertain.Object{ID: uncertain.ID(i), Region: geom.Rect{Lo: lo, Hi: hi}}
		if p.Instances > 0 {
			// GPS error: Gaussian pdf, per the paper's setup.
			o.Instances = uncertain.SampleInstances(o.Region, uncertain.PDFGaussian, p.Instances, rng)
		}
		_ = db.Add(o)
	}
	return db
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// QueryPoints returns n uniform query points over the domain, seeded
// independently from the data.
func QueryPoints(domain geom.Rect, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, n)
	for i := range out {
		p := make(geom.Point, domain.Dim())
		for j := range p {
			p[j] = domain.Lo[j] + rng.Float64()*(domain.Hi[j]-domain.Lo[j])
		}
		out[i] = p
	}
	return out
}
