package dataset

import (
	"math"
	"testing"

	"pvoronoi/internal/geom"
)

func TestSyntheticBasics(t *testing.T) {
	db := Synthetic(SyntheticParams{N: 500, Dim: 3, MaxSide: 60, Instances: 20, Seed: 1})
	if db.Len() != 500 || db.Dim() != 3 {
		t.Fatalf("len=%d dim=%d", db.Len(), db.Dim())
	}
	for _, o := range db.Objects() {
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
		if !db.Domain.ContainsRect(o.Region) {
			t.Fatalf("region %v escapes domain", o.Region)
		}
		for j := 0; j < 3; j++ {
			if s := o.Region.Side(j); s > 60+1e-9 {
				t.Fatalf("side %g exceeds |u(o)|", s)
			}
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(SyntheticParams{N: 100, Dim: 2, MaxSide: 40, Seed: 7})
	b := Synthetic(SyntheticParams{N: 100, Dim: 2, MaxSide: 40, Seed: 7})
	for i := range a.Objects() {
		if !a.Objects()[i].Region.Equal(b.Objects()[i].Region) {
			t.Fatal("same seed produced different data")
		}
	}
	c := Synthetic(SyntheticParams{N: 100, Dim: 2, MaxSide: 40, Seed: 8})
	same := true
	for i := range a.Objects() {
		if !a.Objects()[i].Region.Equal(c.Objects()[i].Region) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSyntheticClustered(t *testing.T) {
	uni := Synthetic(SyntheticParams{N: 2000, Dim: 2, MaxSide: 20, Seed: 3})
	clu := Synthetic(SyntheticParams{N: 2000, Dim: 2, MaxSide: 20, Seed: 3, Clustered: true, Clusters: 5})
	// Clustered data covers fewer coarse grid cells than uniform data.
	occ := map[[2]int]bool{}
	for _, o := range uni.Objects() {
		c := o.Region.Center()
		occ[[2]int{int(c[0] / 500), int(c[1] / 500)}] = true
	}
	uniCells := len(occ)
	occ = map[[2]int]bool{}
	for _, o := range clu.Objects() {
		c := o.Region.Center()
		occ[[2]int{int(c[0] / 500), int(c[1] / 500)}] = true
	}
	cluCells := len(occ)
	if cluCells >= uniCells {
		t.Fatalf("clustered data covers %d cells, uniform %d — expected fewer", cluCells, uniCells)
	}
}

func TestRealDatasets(t *testing.T) {
	for _, kind := range []RealKind{Roads, RRLines, Airports} {
		db := Real(RealParams{Kind: kind, N: 2000, Instances: 10, Seed: 5})
		if db.Len() != 2000 {
			t.Fatalf("%v: len=%d", kind, db.Len())
		}
		if db.Dim() != kind.Dim() {
			t.Fatalf("%v: dim=%d want %d", kind, db.Dim(), kind.Dim())
		}
		for _, o := range db.Objects() {
			if err := o.Validate(); err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			if !db.Domain.ContainsRect(o.Region) {
				t.Fatalf("%v: region escapes domain", kind)
			}
		}
	}
}

func TestRealDefaultSizes(t *testing.T) {
	if Roads.Size() != 30000 || RRLines.Size() != 36000 || Airports.Size() != 20000 {
		t.Fatal("paper dataset sizes wrong")
	}
	if Roads.String() != "roads" || Airports.String() != "airports" {
		t.Fatal("names wrong")
	}
}

func TestSegmentElongation(t *testing.T) {
	// Rail segments should be longer (more elongated) than road segments.
	roads := Real(RealParams{Kind: Roads, N: 3000, Seed: 9})
	rails := Real(RealParams{Kind: RRLines, N: 3000, Seed: 9})
	var sumR, sumL float64
	for _, o := range roads.Objects() {
		sumR += geom.Dist(o.Region.Lo, o.Region.Hi)
	}
	for _, o := range rails.Objects() {
		sumL += geom.Dist(o.Region.Lo, o.Region.Hi)
	}
	if sumL/float64(rails.Len()) <= sumR/float64(roads.Len()) {
		t.Fatalf("rail segments (%g) not longer than roads (%g)",
			sumL/float64(rails.Len()), sumR/float64(roads.Len()))
	}
}

func TestAirportsProfile(t *testing.T) {
	db := Real(RealParams{Kind: Airports, N: 3000, Seed: 11})
	// GPS error boxes are tiny: every region diagonal is ~2*2.5*sqrt(3).
	maxDiag := 2 * 2.5 * math.Sqrt(3) * 1.01
	lowAlt := 0
	for _, o := range db.Objects() {
		if d := geom.Dist(o.Region.Lo, o.Region.Hi); d > maxDiag {
			t.Fatalf("airport box diagonal %g too large", d)
		}
		if o.Region.Center()[2] < DomainSpan/10 {
			lowAlt++
		}
	}
	// Most airports sit at low altitude.
	if lowAlt < db.Len()/2 {
		t.Fatalf("only %d/%d airports at low altitude", lowAlt, db.Len())
	}
}

func TestQueryPoints(t *testing.T) {
	domain := geom.UnitCube(3, 100)
	qs := QueryPoints(domain, 50, 1)
	if len(qs) != 50 {
		t.Fatalf("len=%d", len(qs))
	}
	for _, q := range qs {
		if !domain.Contains(q) {
			t.Fatalf("query %v outside domain", q)
		}
	}
	qs2 := QueryPoints(domain, 50, 1)
	for i := range qs {
		if !qs[i].Equal(qs2[i]) {
			t.Fatal("query points not deterministic")
		}
	}
}
