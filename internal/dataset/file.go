package dataset

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// fileObject is the on-disk form of one uncertain object.
type fileObject struct {
	ID     uint32
	Lo, Hi []float64
	Inst   [][]float64 // instance positions
	Probs  []float64   // instance probabilities
}

// fileFormat is the on-disk form of a database (gob-encoded).
type fileFormat struct {
	Dim      int
	DomainLo []float64
	DomainHi []float64
	Objects  []fileObject
}

// Save writes db to path in the repository's gob-based dataset format,
// consumed by cmd/pvquery and cmd/pvbench via Load.
func Save(db *uncertain.DB, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := SaveTo(db, w); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// SaveTo writes db's dataset encoding to w — the stream form of Save, for
// callers that frame the payload themselves (the checkpoint path wraps it in
// a checksummed envelope).
func SaveTo(db *uncertain.DB, w io.Writer) error {
	ff := fileFormat{
		Dim:      db.Dim(),
		DomainLo: db.Domain.Lo,
		DomainHi: db.Domain.Hi,
		Objects:  make([]fileObject, 0, db.Len()),
	}
	for _, o := range db.Objects() {
		fo := fileObject{
			ID: uint32(o.ID),
			Lo: o.Region.Lo,
			Hi: o.Region.Hi,
		}
		for _, in := range o.Instances {
			fo.Inst = append(fo.Inst, in.Pos)
			fo.Probs = append(fo.Probs, in.Prob)
		}
		ff.Objects = append(ff.Objects, fo)
	}
	return gob.NewEncoder(w).Encode(ff)
}

// Load reads a database previously written by Save.
func Load(path string) (*uncertain.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := LoadFrom(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("dataset: decoding %s: %w", path, err)
	}
	return db, nil
}

// LoadFrom reads a dataset encoding written by SaveTo.
func LoadFrom(r io.Reader) (*uncertain.DB, error) {
	var ff fileFormat
	if err := gob.NewDecoder(r).Decode(&ff); err != nil {
		return nil, err
	}
	db := uncertain.NewDB(geom.Rect{Lo: ff.DomainLo, Hi: ff.DomainHi})
	for _, fo := range ff.Objects {
		o := &uncertain.Object{
			ID:     uncertain.ID(fo.ID),
			Region: geom.Rect{Lo: fo.Lo, Hi: fo.Hi},
		}
		for i, pos := range fo.Inst {
			o.Instances = append(o.Instances, uncertain.Instance{Pos: pos, Prob: fo.Probs[i]})
		}
		if err := db.Add(o); err != nil {
			return nil, err
		}
	}
	return db, nil
}
