package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.gob")

	orig := Synthetic(SyntheticParams{N: 200, Dim: 3, MaxSide: 40, Instances: 25, Seed: 3})
	if err := Save(orig, path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() || got.Dim() != orig.Dim() {
		t.Fatalf("len/dim mismatch: %d/%d vs %d/%d", got.Len(), got.Dim(), orig.Len(), orig.Dim())
	}
	if !got.Domain.Equal(orig.Domain) {
		t.Fatal("domain mismatch")
	}
	for _, o := range orig.Objects() {
		g := got.Get(o.ID)
		if g == nil {
			t.Fatalf("object %d lost", o.ID)
		}
		if !g.Region.Equal(o.Region) {
			t.Fatalf("object %d region mismatch", o.ID)
		}
		if len(g.Instances) != len(o.Instances) {
			t.Fatalf("object %d instance count mismatch", o.ID)
		}
		for i := range g.Instances {
			if !g.Instances[i].Pos.Equal(o.Instances[i].Pos) || g.Instances[i].Prob != o.Instances[i].Prob {
				t.Fatalf("object %d instance %d mismatch", o.ID, i)
			}
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.gob")
	if err := os.WriteFile(path, []byte("not a gob stream at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("loading garbage succeeded")
	}
}
