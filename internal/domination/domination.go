// Package domination implements the spatial-domination machinery of
// Emrich et al. ("Boosting spatial pruning: on optimal pruning of MBRs",
// SIGMOD 2010) that the paper uses to reason about Possible Voronoi cells:
//
//   - Dominates(A, B, R): the exact decision whether every point of A is
//     closer than every point of B to every point of R, i.e. whether
//     R ⊆ dom(A, B).
//   - RegionPrunable: the domination-count estimation test of SE Step 9 —
//     whether a candidate region R is disjoint from the non-dominated
//     intersection I(Cset, o), decided by recursively partitioning R and
//     checking that every part is dominated by some candidate.
//
// The decision criterion is exact and O(d) per test: per dimension j, the
// difference maxdist_j(A, r)² − mindist_j(B, r)² is piecewise linear or
// convex in r with no interior maximum, so its maximum over R's extent in j
// is attained at one of the two endpoints (see the derivation in DESIGN.md §4).
package domination

import (
	"math"

	"pvoronoi/internal/geom"
)

// Dominates reports whether rectangle a spatially dominates rectangle b with
// respect to region r: for all points x ∈ a, y ∈ b, z ∈ r, dist(x,z) < dist(y,z).
// Equivalently, r ⊆ dom(a, b) = {p : distmax(a,p) < distmin(b,p)}.
func Dominates(a, b, r geom.Rect) bool {
	var sum float64
	for j := range r.Lo {
		sum += axisMaxDiff(a.Lo[j], a.Hi[j], b.Lo[j], b.Hi[j], r.Lo[j], r.Hi[j])
	}
	return sum < 0
}

// axisMaxDiff returns max over rj ∈ {rlo, rhi} of
// maxdist(a, rj)² − mindist(b, rj)² for the 1-D intervals a=[alo,ahi],
// b=[blo,bhi]. Checking the two endpoints is exact (no interior maximum).
func axisMaxDiff(alo, ahi, blo, bhi, rlo, rhi float64) float64 {
	at := geom.AxisMaxDist2(rlo, alo, ahi) - geom.AxisMinDist2(rlo, blo, bhi)
	bt := geom.AxisMaxDist2(rhi, alo, ahi) - geom.AxisMinDist2(rhi, blo, bhi)
	return math.Max(at, bt)
}

// DomNonEmpty reports whether dom(a, b) ≠ ∅. By Lemma 2 of the paper this
// holds exactly when the uncertainty regions do not intersect.
func DomNonEmpty(a, b geom.Rect) bool {
	return !a.Intersects(b)
}

// CannotDominate reports (conservatively) that no point of r is dominated by
// a over b: for all p ∈ r, distmax(a,p) >= distmin(b,p). It lower-bounds
// maxdist(a,p)² − mindist(b,p)² by the separable per-dimension bound
// Σ_j min_p axisMaxDist²(a_j,p_j) − Σ_j max_p axisMinDist²(b_j,p_j); a
// non-negative bound proves uselessness. A false result is inconclusive.
// This is the filter that keeps the domination-count recursion from
// descending with candidates that cannot contribute.
func CannotDominate(a, b, r geom.Rect) bool {
	var lbMax, ubMin float64
	for j := range r.Lo {
		// min over p_j of axisMaxDist²(a_j, ·): axisMaxDist is V-shaped with
		// its minimum at a's midpoint; clamp the midpoint into r's extent.
		mid := (a.Lo[j] + a.Hi[j]) / 2
		p := mid
		if p < r.Lo[j] {
			p = r.Lo[j]
		} else if p > r.Hi[j] {
			p = r.Hi[j]
		}
		lbMax += geom.AxisMaxDist2(p, a.Lo[j], a.Hi[j])
		// max over p_j of axisMinDist²(b_j, ·): attained at an endpoint.
		lo := geom.AxisMinDist2(r.Lo[j], b.Lo[j], b.Hi[j])
		hi := geom.AxisMinDist2(r.Hi[j], b.Lo[j], b.Hi[j])
		ubMin += math.Max(lo, hi)
	}
	return lbMax >= ubMin
}

// PointDominated reports whether point p lies in dom(a, b):
// distmax(a, p) < distmin(b, p).
func PointDominated(a, b geom.Rect, p geom.Point) bool {
	return a.MaxDist2(p) < b.MinDist2(p)
}

// Tester performs domination-count estimation: given a candidate set (the
// C-set of the SE algorithm) and a target object region, it decides whether a
// query region R is entirely covered by the dominated union U(Cset, o) —
// i.e. whether R ∩ I(Cset, o) = ∅ (SE Step 9).
//
// The test recursively bisects R along its longest side. A part is settled
// when some single candidate dominates it. MaxDepth bounds the recursion
// (the paper's granularity parameter m_max controls the same trade-off:
// finer partitioning detects more prunable regions but costs more domination
// tests). The test is conservative: it may answer "not prunable" for a
// prunable region, never the opposite.
type Tester struct {
	// Candidates are the uncertainty regions of the C-set objects.
	Candidates []geom.Rect
	// Target is u(o), the region of the object whose PV-cell is bounded.
	Target geom.Rect
	// MaxDepth bounds the recursive bisection of the tested region.
	// Depth m allows up to 2^m parts. The paper's default m_max=10.
	MaxDepth int

	// Tests counts individual Dominates calls, for the harness's
	// cost accounting (Fig. 10(e)).
	Tests int64
}

// NewTester builds a Tester over the given candidate regions.
func NewTester(candidates []geom.Rect, target geom.Rect, maxDepth int) *Tester {
	if maxDepth < 0 {
		maxDepth = 0
	}
	return &Tester{Candidates: candidates, Target: target, MaxDepth: maxDepth}
}

// RegionPrunable reports whether region r is disjoint from I(Cset, o), i.e.
// every point of r is dominated by at least one candidate. A true result is
// definitive; a false result may be a false negative at finite MaxDepth.
//
// Candidates are scanned in the caller's order; the C-set strategies supply
// them nearest-first from the target, which makes the short-circuiting scan
// find slab dominators early without any per-call reordering.
func (t *Tester) RegionPrunable(r geom.Rect) bool {
	return t.prunable(r, t.MaxDepth)
}

func (t *Tester) prunable(r geom.Rect, depth int) bool {
	// Filter to candidates that can still dominate some part of r: a
	// candidate proven unable to dominate any point of r stays useless for
	// every sub-part, so drop it before recursing. Most slabs either find a
	// single dominator here or lose all candidates, terminating early.
	live := t.Candidates[:0:0]
	for _, c := range t.Candidates {
		t.Tests++
		if Dominates(c, t.Target, r) {
			return true
		}
		if !CannotDominate(c, t.Target, r) {
			live = append(live, c)
		}
	}
	if depth == 0 || len(live) == 0 {
		return false
	}
	lo, hi := bisect(r)
	sub := &Tester{Candidates: live, Target: t.Target, MaxDepth: depth - 1}
	ok := sub.prunable(lo, depth-1) && sub.prunable(hi, depth-1)
	t.Tests += sub.Tests
	return ok
}

// bisect splits r into two halves along its longest side.
func bisect(r geom.Rect) (geom.Rect, geom.Rect) {
	best := 0
	for j := 1; j < r.Dim(); j++ {
		if r.Side(j) > r.Side(best) {
			best = j
		}
	}
	mid := (r.Lo[best] + r.Hi[best]) / 2
	lo := r.Clone()
	hi := r.Clone()
	lo.Hi[best] = mid
	hi.Lo[best] = mid
	return lo, hi
}
