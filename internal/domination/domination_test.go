package domination

import (
	"math"
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
)

func r1(alo, ahi float64) geom.Rect {
	return geom.NewRect(geom.Point{alo}, geom.Point{ahi})
}

func r2(alo, blo, ahi, bhi float64) geom.Rect {
	return geom.NewRect(geom.Point{alo, blo}, geom.Point{ahi, bhi})
}

func TestDominates1D(t *testing.T) {
	a := r1(0, 1)
	b := r1(10, 11)
	r := r1(0, 2)
	// Every point of a is within distance 3 of r; b is at least 8 away.
	if !Dominates(a, b, r) {
		t.Error("a should dominate b w.r.t. r")
	}
	if Dominates(b, a, r) {
		t.Error("b should not dominate a w.r.t. r")
	}
	// R between them: near the middle neither dominates.
	mid := r1(5, 6)
	if Dominates(a, b, mid) || Dominates(b, a, mid) {
		t.Error("no domination expected for region between a and b")
	}
}

func TestDominatesTouchingRegions(t *testing.T) {
	// Intersecting a and b: dom(a,b) is empty, so nothing is dominated.
	a := r2(0, 0, 2, 2)
	b := r2(1, 1, 3, 3)
	r := r2(0, 0, 0.5, 0.5)
	if Dominates(a, b, r) {
		t.Error("intersecting rectangles admit no domination")
	}
	if DomNonEmpty(a, b) {
		t.Error("DomNonEmpty should be false for intersecting regions")
	}
	if !DomNonEmpty(r2(0, 0, 1, 1), r2(2, 2, 3, 3)) {
		t.Error("DomNonEmpty should be true for disjoint regions")
	}
}

func TestPointDominated(t *testing.T) {
	a := r2(0, 0, 1, 1)
	b := r2(10, 0, 11, 1)
	if !PointDominated(a, b, geom.Point{0.5, 0.5}) {
		t.Error("point near a should be dominated")
	}
	if PointDominated(a, b, geom.Point{5.5, 0.5}) {
		t.Error("hyperplane-adjacent point should not be dominated")
	}
}

// Monte-Carlo ground truth for Dominates: sample triples (x∈a, y∈b, z∈r) and
// check dist(x,z) < dist(y,z). Dominates==true must never be contradicted.
func TestDominatesNeverOverclaims(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	randRect := func(d int, scale float64) geom.Rect {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for i := 0; i < d; i++ {
			a := rng.Float64() * scale
			b := rng.Float64() * scale
			lo[i] = math.Min(a, b)
			hi[i] = math.Max(a, b)
		}
		return geom.Rect{Lo: lo, Hi: hi}
	}
	sample := func(r geom.Rect) geom.Point {
		p := make(geom.Point, r.Dim())
		for i := range p {
			p[i] = r.Lo[i] + rng.Float64()*r.Side(i)
		}
		return p
	}
	for d := 1; d <= 4; d++ {
		claimed := 0
		for iter := 0; iter < 2000; iter++ {
			a, b, r := randRect(d, 100), randRect(d, 100), randRect(d, 100)
			if !Dominates(a, b, r) {
				continue
			}
			claimed++
			for s := 0; s < 50; s++ {
				x, y, z := sample(a), sample(b), sample(r)
				if geom.Dist2(x, z) >= geom.Dist2(y, z) {
					t.Fatalf("d=%d: Dominates claimed %v dom %v wrt %v but x=%v y=%v z=%v violates",
						d, a, b, r, x, y, z)
				}
			}
		}
		if claimed == 0 {
			t.Logf("d=%d: no positive domination cases sampled (expected a few)", d)
		}
	}
}

// Completeness of the endpoint criterion: when corner-checking says "no
// domination", there must exist a witness z∈r where maxdist(a,z) >= mindist(b,z).
// We verify against dense sampling of r (the supremum is attained at r's
// corners, so corner sampling suffices as the witness search).
func TestDominatesEndpointCriterionComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for d := 1; d <= 3; d++ {
		for iter := 0; iter < 1500; iter++ {
			mk := func() geom.Rect {
				lo := make(geom.Point, d)
				hi := make(geom.Point, d)
				for i := 0; i < d; i++ {
					a := rng.Float64() * 50
					b := rng.Float64() * 50
					lo[i] = math.Min(a, b)
					hi[i] = math.Max(a, b)
				}
				return geom.Rect{Lo: lo, Hi: hi}
			}
			a, b, r := mk(), mk(), mk()
			got := Dominates(a, b, r)
			// Dense grid scan of r for a violating witness.
			viol := false
			steps := 6
			var scan func(idx int, z geom.Point)
			scan = func(idx int, z geom.Point) {
				if viol {
					return
				}
				if idx == d {
					if a.MaxDist2(z) >= b.MinDist2(z) {
						viol = true
					}
					return
				}
				for s := 0; s <= steps; s++ {
					z[idx] = r.Lo[idx] + float64(s)/float64(steps)*r.Side(idx)
					scan(idx+1, z)
				}
			}
			scan(0, make(geom.Point, d))
			if got && viol {
				t.Fatalf("d=%d: Dominates=true but grid found violation (a=%v b=%v r=%v)", d, a, b, r)
			}
			if !got && !viol {
				// The endpoint criterion is exact; the only way the grid
				// misses the witness is discretization right at equality.
				// Check corners exactly.
				cornerViol := false
				for mask := 0; mask < 1<<d; mask++ {
					z := make(geom.Point, d)
					for i := 0; i < d; i++ {
						if mask&(1<<i) != 0 {
							z[i] = r.Hi[i]
						} else {
							z[i] = r.Lo[i]
						}
					}
					if a.MaxDist2(z) >= b.MinDist2(z) {
						cornerViol = true
						break
					}
				}
				if !cornerViol {
					t.Fatalf("d=%d: Dominates=false but no witness at corners (a=%v b=%v r=%v)", d, a, b, r)
				}
			}
		}
	}
}

func TestRegionPrunableSingleDominator(t *testing.T) {
	// Candidate c sits between target o and region r; r is far from o.
	o := r2(0, 0, 1, 1)
	c := r2(10, 0, 11, 1)
	r := r2(10, 0, 11, 1).Expand(0.2)
	tester := NewTester([]geom.Rect{c}, o, 10)
	if !tester.RegionPrunable(r) {
		t.Error("region around dominator should be prunable")
	}
	// Region near the target is never prunable.
	near := r2(0, 0, 1, 1).Expand(0.2)
	if tester.RegionPrunable(near) {
		t.Error("region containing the target must not be prunable")
	}
}

func TestRegionPrunableNeedsPartitioning(t *testing.T) {
	// Figure 6(b) scenario: no single candidate dominates all of R, but
	// partitions are individually dominated by different candidates.
	o := r2(0, 0, 1, 1) // target far left
	a1 := r2(20, 10, 21, 11)
	a2 := r2(20, -11, 21, -10)
	// R spans the two candidates' neighborhoods on the far right.
	r := r2(24, -11, 25, 11)
	tester := NewTester([]geom.Rect{a1, a2}, o, 12)
	if Dominates(a1, o, r) || Dominates(a2, o, r) {
		t.Skip("construction invalid: single candidate dominates whole R")
	}
	if !tester.RegionPrunable(r) {
		t.Error("partitioned domination should prune R")
	}
	// With depth 0 the test must conservatively fail.
	shallow := NewTester([]geom.Rect{a1, a2}, o, 0)
	if shallow.RegionPrunable(r) {
		t.Error("depth-0 tester should not detect split-domination")
	}
}

// Soundness of RegionPrunable: if it says prunable, then no point of r can
// have the target as nearest among {target} ∪ candidates.
func TestRegionPrunableSound(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 400; iter++ {
		d := 2 + rng.Intn(2)
		mk := func(scale float64) geom.Rect {
			lo := make(geom.Point, d)
			hi := make(geom.Point, d)
			for i := 0; i < d; i++ {
				a := rng.Float64() * scale
				b := a + rng.Float64()*5
				lo[i], hi[i] = a, b
			}
			return geom.Rect{Lo: lo, Hi: hi}
		}
		target := mk(100)
		var cands []geom.Rect
		for i := 0; i < 6; i++ {
			cands = append(cands, mk(100))
		}
		r := mk(100)
		tester := NewTester(cands, target, 8)
		if !tester.RegionPrunable(r) {
			continue
		}
		// Every sampled point of r must be dominated by some candidate.
		for s := 0; s < 200; s++ {
			z := make(geom.Point, d)
			for i := range z {
				z[i] = r.Lo[i] + rng.Float64()*r.Side(i)
			}
			dominated := false
			for _, c := range cands {
				if PointDominated(c, target, z) {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Fatalf("RegionPrunable over-pruned: point %v of %v not dominated", z, r)
			}
		}
	}
}

// CannotDominate must never contradict an actual domination witness: if it
// claims uselessness, no sampled point of r may be dominated.
func TestCannotDominateSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for iter := 0; iter < 3000; iter++ {
		d := 1 + rng.Intn(4)
		mk := func() geom.Rect {
			lo := make(geom.Point, d)
			hi := make(geom.Point, d)
			for i := 0; i < d; i++ {
				a := rng.Float64() * 100
				b := rng.Float64() * 100
				lo[i] = math.Min(a, b)
				hi[i] = math.Max(a, b)
			}
			return geom.Rect{Lo: lo, Hi: hi}
		}
		a, b, r := mk(), mk(), mk()
		if !CannotDominate(a, b, r) {
			continue
		}
		for s := 0; s < 60; s++ {
			p := make(geom.Point, d)
			for i := range p {
				p[i] = r.Lo[i] + rng.Float64()*r.Side(i)
			}
			if PointDominated(a, b, p) {
				t.Fatalf("CannotDominate lied: %v dominates %v at %v (r=%v)", a, b, p, r)
			}
		}
	}
}

func TestTesterCountsTests(t *testing.T) {
	o := r2(0, 0, 1, 1)
	c := r2(10, 0, 11, 1)
	tester := NewTester([]geom.Rect{c}, o, 4)
	tester.RegionPrunable(r2(20, 0, 21, 1))
	if tester.Tests == 0 {
		t.Error("test counter not incremented")
	}
}

func BenchmarkDominates3D(b *testing.B) {
	a := geom.NewRect(geom.Point{0, 0, 0}, geom.Point{1, 1, 1})
	bb := geom.NewRect(geom.Point{5, 5, 5}, geom.Point{6, 6, 6})
	r := geom.NewRect(geom.Point{0, 0, 0}, geom.Point{2, 2, 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Dominates(a, bb, r)
	}
}
