package exthash

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pvoronoi/internal/pagestore"
)

// TestCloneCOWIsolation churns a COW clone (overwrites, deletes, splits,
// directory doubling) and checks the sealed original still serves every
// key's original value: bucket shadowing and deferred value-chain frees
// must never disturb pages the original references.
func TestCloneCOWIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	store := pagestore.New(256)
	tab, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint32][]byte{}
	for i := uint32(0); i < 120; i++ {
		val := make([]byte, 10+rng.Intn(600)) // some values span chain pages
		rng.Read(val)
		if err := tab.Put(i, val); err != nil {
			t.Fatal(err)
		}
		want[i] = val
	}
	liveBefore := store.Live()

	var freed []pagestore.PageID
	clone := tab.CloneCOW(&freed)
	for i := uint32(0); i < 60; i++ {
		val := make([]byte, 10+rng.Intn(600))
		rng.Read(val)
		if err := clone.Put(i, val); err != nil { // overwrite
			t.Fatal(err)
		}
	}
	for i := uint32(60); i < 90; i++ {
		if ok, err := clone.Delete(i); err != nil || !ok {
			t.Fatalf("clone delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i := uint32(1000); i < 1200; i++ { // force splits + dir doubling
		if err := clone.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// The sealed original serves every original value byte-for-byte.
	for k, v := range want {
		got, ok, err := tab.Get(k)
		if err != nil || !ok {
			t.Fatalf("original lost key %d: ok=%v err=%v", k, ok, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("original value for key %d changed", k)
		}
	}
	if tab.Len() != 120 {
		t.Fatalf("original size changed: %d", tab.Len())
	}

	// Reclaim the deferred pages; the clone must stay fully readable.
	if len(freed) == 0 {
		t.Fatal("clone churn deferred no frees — COW shadowing did not engage")
	}
	for _, p := range freed {
		if err := store.Free(p); err != nil {
			t.Fatalf("freeing deferred page %d: %v", p, err)
		}
	}
	for i := uint32(0); i < 60; i++ {
		if _, ok, err := clone.Get(i); err != nil || !ok {
			t.Fatalf("clone lost key %d after reclaim: ok=%v err=%v", i, ok, err)
		}
	}
	for i := uint32(60); i < 90; i++ {
		if _, ok, _ := clone.Get(i); ok {
			t.Fatalf("clone still has deleted key %d", i)
		}
	}
	_ = liveBefore
}

// TestCloneCOWAbort verifies AbortCOW returns every session page.
func TestCloneCOWAbort(t *testing.T) {
	store := pagestore.New(256)
	tab, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 50; i++ {
		if err := tab.Put(i, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	liveBefore := store.Live()

	var freed []pagestore.PageID
	clone := tab.CloneCOW(&freed)
	for i := uint32(0); i < 50; i++ {
		if err := clone.Put(i+100, []byte("fresh")); err != nil {
			t.Fatal(err)
		}
	}
	clone.AbortCOW()
	if live := store.Live(); live != liveBefore {
		t.Fatalf("abort leaked pages: %d live, want %d", live, liveBefore)
	}
	for i := uint32(0); i < 50; i++ {
		if _, ok, err := tab.Get(i); err != nil || !ok {
			t.Fatalf("original lost key %d after abort", i)
		}
	}
}
