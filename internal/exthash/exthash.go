// Package exthash implements an extendible hash table (Fagin et al., 1979)
// over the simulated page store — the PV-index's secondary index, mapping an
// object ID to its stored record (UBR plus discretized uncertainty pdf,
// §VI-A of the paper).
//
// The directory lives in main memory; buckets are single disk pages holding
// fixed-size slots (key, value length, first value page). Values are stored
// out of line in chained value pages, since a 500-instance pdf (≈16 KB at
// d=3) exceeds one 4 KB page. Bucket overflow triggers the classic split:
// redistribute on one more hash bit, doubling the directory when the
// bucket's local depth equals the global depth.
package exthash

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pvoronoi/internal/pagestore"
)

// Table is an extendible hash table keyed by uint32. Not safe for concurrent
// mutation, but a sealed handle may be read concurrently while a CloneCOW
// descendant is mutated: mutations never rewrite shared pages in place.
type Table struct {
	store       *pagestore.Store
	dir         []pagestore.PageID // 2^globalDepth entries
	globalDepth uint
	size        int
	slotsPer    int
	sess        *pagestore.COWSession
}

const (
	bucketHeader = 4  // localDepth uint16 + count uint16
	slotSize     = 12 // key uint32 + valLen uint32 + firstPage uint32
	chainHeader  = 8  // next PageID uint32 + used uint32
)

// New creates an empty table over the given store.
func New(store *pagestore.Store) (*Table, error) {
	t := &Table{
		store:    store,
		slotsPer: (store.PageSize() - bucketHeader) / slotSize,
		sess:     pagestore.NewFullSession(store),
	}
	if t.slotsPer < 2 {
		return nil, fmt.Errorf("exthash: page size %d too small", store.PageSize())
	}
	p, err := t.allocPage()
	if err != nil {
		return nil, err
	}
	if err := t.writeBucket(p, bucket{localDepth: 0}); err != nil {
		return nil, err
	}
	t.dir = []pagestore.PageID{p}
	t.globalDepth = 0
	return t, nil
}

// CloneCOW returns a mutable copy-on-write descendant of t: the directory is
// copied, every bucket and value page is initially shared. Mutations shadow
// shared pages onto fresh IDs and append the replaced IDs to freed — the
// caller frees those once no reader of an older version remains. The
// original handle is sealed by convention and stays safe for concurrent
// readers.
func (t *Table) CloneCOW(freed *[]pagestore.PageID) *Table {
	c := *t
	c.dir = append(make([]pagestore.PageID, 0, len(t.dir)), t.dir...)
	c.sess = pagestore.NewCOWSession(t.store, freed)
	return &c
}

// AbortCOW releases every page this session allocated (invisible to any
// published version) and forgets its deferred frees. The handle must not be
// used afterwards.
func (t *Table) AbortCOW() { t.sess.Abort() }

// allocPage reserves a page through the session (ownership recorded).
func (t *Table) allocPage() (pagestore.PageID, error) { return t.sess.Alloc() }

// freePage releases a page the table stops referencing: immediately when the
// session owns it, deferred to the freed list otherwise.
func (t *Table) freePage(id pagestore.PageID) error { return t.sess.Free(id) }

// writableBucket returns a bucket page ID the session may write in place.
// A shared bucket is shadowed: a fresh page is allocated, every directory
// slot pointing at the old page is repointed, and the old page is deferred
// to the freed list. The caller overwrites the returned page's contents
// entirely, so no byte copy is needed.
func (t *Table) writableBucket(id pagestore.PageID) (pagestore.PageID, error) {
	if t.sess.Owned(id) {
		return id, nil
	}
	p, err := t.allocPage()
	if err != nil {
		return 0, err
	}
	for i := range t.dir {
		if t.dir[i] == id {
			t.dir[i] = p
		}
	}
	if err := t.freePage(id); err != nil {
		return 0, err
	}
	return p, nil
}

// Len returns the number of stored keys.
func (t *Table) Len() int { return t.size }

// GlobalDepth returns the directory depth (directory size is 2^depth).
func (t *Table) GlobalDepth() uint { return t.globalDepth }

// hash mixes the key (murmur3 finalizer) so sequential IDs spread evenly.
func hash(key uint32) uint32 {
	h := key
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

func (t *Table) dirIndex(key uint32) int {
	if t.globalDepth == 0 {
		return 0
	}
	return int(hash(key) & ((1 << t.globalDepth) - 1))
}

// bucket is the decoded form of a bucket page.
type bucket struct {
	localDepth uint16
	slots      []slot
}

type slot struct {
	key       uint32
	valLen    uint32
	firstPage pagestore.PageID
}

// readBucket decodes a bucket page via a borrowed view; every field is
// copied out, so nothing aliases page memory after it returns.
func (t *Table) readBucket(id pagestore.PageID) (bucket, error) {
	buf, err := t.store.View(id)
	if err != nil {
		return bucket{}, err
	}
	b := bucket{localDepth: binary.LittleEndian.Uint16(buf[0:2])}
	n := int(binary.LittleEndian.Uint16(buf[2:4]))
	b.slots = make([]slot, n)
	off := bucketHeader
	for i := 0; i < n; i++ {
		b.slots[i] = slot{
			key:       binary.LittleEndian.Uint32(buf[off:]),
			valLen:    binary.LittleEndian.Uint32(buf[off+4:]),
			firstPage: pagestore.PageID(binary.LittleEndian.Uint32(buf[off+8:])),
		}
		off += slotSize
	}
	return b, nil
}

func (t *Table) writeBucket(id pagestore.PageID, b bucket) error {
	if len(b.slots) > t.slotsPer {
		return fmt.Errorf("exthash: bucket overflow: %d slots", len(b.slots))
	}
	scratch := t.store.AcquirePage()
	defer t.store.ReleasePage(scratch)
	buf := (*scratch)[:bucketHeader+len(b.slots)*slotSize]
	binary.LittleEndian.PutUint16(buf[0:2], b.localDepth)
	binary.LittleEndian.PutUint16(buf[2:4], uint16(len(b.slots)))
	off := bucketHeader
	for _, s := range b.slots {
		binary.LittleEndian.PutUint32(buf[off:], s.key)
		binary.LittleEndian.PutUint32(buf[off+4:], s.valLen)
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(s.firstPage))
		off += slotSize
	}
	return t.store.Write(id, buf)
}

// writeValue stores val in a fresh chain of value pages, returning the head.
func (t *Table) writeValue(val []byte) (pagestore.PageID, error) {
	dataPer := t.store.PageSize() - chainHeader
	scratch := t.store.AcquirePage()
	defer t.store.ReleasePage(scratch)
	var head, prev pagestore.PageID
	for off := 0; off == 0 || off < len(val); off += dataPer {
		p, err := t.allocPage()
		if err != nil {
			return 0, err
		}
		end := off + dataPer
		if end > len(val) {
			end = len(val)
		}
		chunk := val[off:end]
		buf := (*scratch)[:chainHeader+len(chunk)]
		binary.LittleEndian.PutUint32(buf[0:4], 0) // no next page yet
		binary.LittleEndian.PutUint32(buf[4:8], uint32(len(chunk)))
		copy(buf[chainHeader:], chunk)
		if err := t.store.Write(p, buf); err != nil {
			return 0, err
		}
		if head == 0 {
			head = p
		} else {
			// Patch the previous page's next pointer (full read-modify-write;
			// scratch still holds this page's chunk, so use a second buffer).
			pb := t.store.AcquirePage()
			err := t.store.ReadInto(prev, *pb)
			if err == nil {
				binary.LittleEndian.PutUint32(*pb, uint32(p))
				err = t.store.Write(prev, *pb)
			}
			t.store.ReleasePage(pb)
			if err != nil {
				return 0, err
			}
		}
		prev = p
		if len(val) == 0 {
			break
		}
	}
	return head, nil
}

// readValue reads a value of total length n from the chain starting at head.
// Only the returned value is allocated; chain pages are borrowed views.
func (t *Table) readValue(head pagestore.PageID, n uint32) ([]byte, error) {
	out := make([]byte, 0, n)
	p := head
	for p != 0 {
		buf, err := t.store.View(p)
		if err != nil {
			return nil, err
		}
		next := pagestore.PageID(binary.LittleEndian.Uint32(buf[0:4]))
		used := binary.LittleEndian.Uint32(buf[4:8])
		if int(used) > len(buf)-chainHeader {
			return nil, errors.New("exthash: corrupt value chain")
		}
		out = append(out, buf[chainHeader:chainHeader+used]...)
		p = next
	}
	if uint32(len(out)) != n {
		return nil, fmt.Errorf("exthash: value length %d, expected %d", len(out), n)
	}
	return out, nil
}

// freeValue releases the value chain starting at head (deferred for pages
// shared with older versions).
func (t *Table) freeValue(head pagestore.PageID) error {
	p := head
	for p != 0 {
		buf, err := t.store.View(p)
		if err != nil {
			return err
		}
		next := pagestore.PageID(binary.LittleEndian.Uint32(buf[0:4]))
		if err := t.freePage(p); err != nil {
			return err
		}
		p = next
	}
	return nil
}

// findSlot scans the bucket page for key without materializing the slot
// array: a lazy stride walk over the packed 12-byte slots of a borrowed
// view. The matching slot is copied out by value.
func (t *Table) findSlot(bucketPage pagestore.PageID, key uint32) (slot, bool, error) {
	buf, err := t.store.View(bucketPage)
	if err != nil {
		return slot{}, false, err
	}
	n := int(binary.LittleEndian.Uint16(buf[2:4]))
	off := bucketHeader
	for i := 0; i < n; i++ {
		if binary.LittleEndian.Uint32(buf[off:]) == key {
			return slot{
				key:       key,
				valLen:    binary.LittleEndian.Uint32(buf[off+4:]),
				firstPage: pagestore.PageID(binary.LittleEndian.Uint32(buf[off+8:])),
			}, true, nil
		}
		off += slotSize
	}
	return slot{}, false, nil
}

// Get returns the value stored under key. The returned slice is always an
// owned copy, safe to retain.
func (t *Table) Get(key uint32) ([]byte, bool, error) {
	s, ok, err := t.findSlot(t.dir[t.dirIndex(key)], key)
	if err != nil || !ok {
		return nil, false, err
	}
	v, err := t.readValue(s.firstPage, s.valLen)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// GetView returns the value stored under key, borrowing page memory when the
// value fits a single value page (the common case for small records): the
// returned slice then aliases the store's slab and follows the View validity
// rule — it must be consumed before the reader's version pin is released.
// Multi-page values are assembled into a fresh buffer. Callers that retain
// the bytes must copy; callers that decode immediately get a zero-copy read.
func (t *Table) GetView(key uint32) ([]byte, bool, error) {
	s, ok, err := t.findSlot(t.dir[t.dirIndex(key)], key)
	if err != nil || !ok {
		return nil, false, err
	}
	buf, err := t.store.View(s.firstPage)
	if err != nil {
		return nil, false, err
	}
	next := pagestore.PageID(binary.LittleEndian.Uint32(buf[0:4]))
	used := binary.LittleEndian.Uint32(buf[4:8])
	if int(used) > len(buf)-chainHeader {
		return nil, false, errors.New("exthash: corrupt value chain")
	}
	if next == 0 {
		if used != s.valLen {
			return nil, false, fmt.Errorf("exthash: value length %d, expected %d", used, s.valLen)
		}
		return buf[chainHeader : chainHeader+used : chainHeader+used], true, nil
	}
	v, err := t.readValue(s.firstPage, s.valLen)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Put stores val under key, replacing any previous value.
func (t *Table) Put(key uint32, val []byte) error {
	for {
		idx := t.dirIndex(key)
		pageID := t.dir[idx]
		b, err := t.readBucket(pageID)
		if err != nil {
			return err
		}
		// Replace in place (shadowing the bucket page if shared).
		for i, s := range b.slots {
			if s.key == key {
				if err := t.freeValue(s.firstPage); err != nil {
					return err
				}
				head, err := t.writeValue(val)
				if err != nil {
					return err
				}
				b.slots[i] = slot{key: key, valLen: uint32(len(val)), firstPage: head}
				target, err := t.writableBucket(pageID)
				if err != nil {
					return err
				}
				return t.writeBucket(target, b)
			}
		}
		if len(b.slots) < t.slotsPer {
			head, err := t.writeValue(val)
			if err != nil {
				return err
			}
			b.slots = append(b.slots, slot{key: key, valLen: uint32(len(val)), firstPage: head})
			t.size++
			target, err := t.writableBucket(pageID)
			if err != nil {
				return err
			}
			return t.writeBucket(target, b)
		}
		// Bucket full: split and retry.
		if err := t.split(idx, pageID, b); err != nil {
			return err
		}
	}
}

// split divides the bucket at directory index idx on one more hash bit.
func (t *Table) split(idx int, pageID pagestore.PageID, b bucket) error {
	// Shadow the splitting bucket first (repointing the pre-split directory
	// entries), so its rewrite never lands on a page shared with readers.
	pageID, err := t.writableBucket(pageID)
	if err != nil {
		return err
	}
	if uint(b.localDepth) == t.globalDepth {
		if t.globalDepth >= 30 {
			return errors.New("exthash: directory depth limit reached")
		}
		// Double the directory.
		ndir := make([]pagestore.PageID, len(t.dir)*2)
		copy(ndir, t.dir)
		copy(ndir[len(t.dir):], t.dir)
		t.dir = ndir
		t.globalDepth++
	}
	newDepth := b.localDepth + 1
	bit := uint32(1) << (newDepth - 1)
	newPage, err := t.allocPage()
	if err != nil {
		return err
	}
	var keep, move []slot
	for _, s := range b.slots {
		if hash(s.key)&bit != 0 {
			move = append(move, s)
		} else {
			keep = append(keep, s)
		}
	}
	if err := t.writeBucket(pageID, bucket{localDepth: newDepth, slots: keep}); err != nil {
		return err
	}
	if err := t.writeBucket(newPage, bucket{localDepth: newDepth, slots: move}); err != nil {
		return err
	}
	// Repoint directory entries whose suffix matches the new bucket. All
	// directory slots referring to the old bucket share the low
	// (newDepth-1) bits; those with the new bit set move to newPage.
	for i := range t.dir {
		if t.dir[i] == pageID && uint32(i)&bit != 0 {
			t.dir[i] = newPage
		}
	}
	return nil
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key uint32) (bool, error) {
	idx := t.dirIndex(key)
	pageID := t.dir[idx]
	b, err := t.readBucket(pageID)
	if err != nil {
		return false, err
	}
	for i, s := range b.slots {
		if s.key == key {
			if err := t.freeValue(s.firstPage); err != nil {
				return false, err
			}
			b.slots = append(b.slots[:i], b.slots[i+1:]...)
			t.size--
			target, err := t.writableBucket(pageID)
			if err != nil {
				return false, err
			}
			return true, t.writeBucket(target, b)
		}
	}
	return false, nil
}

// CollectPages appends every page ID reachable from the table — each bucket
// page plus each stored value's chain — to dst and returns it. Read-only.
func (t *Table) CollectPages(dst []pagestore.PageID) ([]pagestore.PageID, error) {
	seen := make(map[pagestore.PageID]bool, len(t.dir))
	for _, p := range t.dir {
		if seen[p] {
			continue
		}
		seen[p] = true
		dst = append(dst, p)
		b, err := t.readBucket(p)
		if err != nil {
			return nil, err
		}
		for _, s := range b.slots {
			v := s.firstPage
			for v != 0 {
				dst = append(dst, v)
				buf, err := t.store.View(v)
				if err != nil {
					return nil, err
				}
				v = pagestore.PageID(binary.LittleEndian.Uint32(buf[0:4]))
			}
		}
	}
	return dst, nil
}

// Keys appends all stored keys to dst (in unspecified order). Bucket pages
// are walked lazily: only each slot's 4-byte key is read.
func (t *Table) Keys(dst []uint32) ([]uint32, error) {
	seen := make(map[pagestore.PageID]bool)
	for _, p := range t.dir {
		if seen[p] {
			continue
		}
		seen[p] = true
		buf, err := t.store.View(p)
		if err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint16(buf[2:4]))
		off := bucketHeader
		for i := 0; i < n; i++ {
			dst = append(dst, binary.LittleEndian.Uint32(buf[off:]))
			off += slotSize
		}
	}
	return dst, nil
}
