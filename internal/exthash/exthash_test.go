package exthash

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pvoronoi/internal/pagestore"
)

func newTable(t *testing.T, pageSize int) *Table {
	t.Helper()
	tab, err := New(pagestore.New(pageSize))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestPutGetDelete(t *testing.T) {
	tab := newTable(t, 256)
	if err := tab.Put(42, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tab.Get(42)
	if err != nil || !ok || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := tab.Get(43); ok {
		t.Fatal("missing key found")
	}
	// Replace.
	if err := tab.Put(42, []byte("world, longer value")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ = tab.Get(42)
	if !ok || !bytes.Equal(v, []byte("world, longer value")) {
		t.Fatalf("after replace: %q", v)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	deleted, err := tab.Delete(42)
	if err != nil || !deleted {
		t.Fatalf("Delete = %v, %v", deleted, err)
	}
	if _, ok, _ := tab.Get(42); ok {
		t.Fatal("deleted key still present")
	}
	if deleted, _ := tab.Delete(42); deleted {
		t.Fatal("double delete reported success")
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestEmptyValue(t *testing.T) {
	tab := newTable(t, 256)
	if err := tab.Put(1, nil); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tab.Get(1)
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty value roundtrip: %v %v %v", v, ok, err)
	}
}

func TestLargeValuesSpanPages(t *testing.T) {
	tab := newTable(t, 128)
	val := make([]byte, 10_000) // ~84 chain pages at 120 data bytes each
	for i := range val {
		val[i] = byte(i * 7)
	}
	if err := tab.Put(9, val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := tab.Get(9)
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("large value corrupted (ok=%v err=%v, len=%d)", ok, err, len(got))
	}
	// Replacing with a short value must free the old chain.
	store := tab.store
	before := store.Live()
	if err := tab.Put(9, []byte("short")); err != nil {
		t.Fatal(err)
	}
	if after := store.Live(); after >= before {
		t.Fatalf("replace did not free chain pages: %d -> %d", before, after)
	}
}

func TestManyKeysForceSplits(t *testing.T) {
	tab := newTable(t, 128) // ~10 slots per bucket: splits early
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tab.Put(uint32(i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.GlobalDepth() == 0 {
		t.Fatal("no directory doubling happened")
	}
	for i := 0; i < n; i++ {
		v, ok, err := tab.Get(uint32(i))
		if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("value-%d", i))) {
			t.Fatalf("Get(%d) = %q, %v, %v", i, v, ok, err)
		}
	}
	keys, err := tab.Keys(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("Keys returned %d", len(keys))
	}
}

// Model-based property test: the table behaves exactly like a map under a
// random sequence of Put/Get/Delete operations.
func TestAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tab := newTable(t, 128)
	model := map[uint32][]byte{}
	for op := 0; op < 8000; op++ {
		key := uint32(rng.Intn(300))
		switch rng.Intn(3) {
		case 0: // Put
			val := make([]byte, rng.Intn(400))
			rng.Read(val)
			if err := tab.Put(key, val); err != nil {
				t.Fatalf("op %d: Put: %v", op, err)
			}
			model[key] = val
		case 1: // Get
			got, ok, err := tab.Get(key)
			if err != nil {
				t.Fatalf("op %d: Get: %v", op, err)
			}
			want, wantOK := model[key]
			if ok != wantOK || (ok && !bytes.Equal(got, want)) {
				t.Fatalf("op %d: Get(%d) = (%d bytes, %v), model (%d bytes, %v)",
					op, key, len(got), ok, len(want), wantOK)
			}
		case 2: // Delete
			gotDel, err := tab.Delete(key)
			if err != nil {
				t.Fatalf("op %d: Delete: %v", op, err)
			}
			_, wantDel := model[key]
			if gotDel != wantDel {
				t.Fatalf("op %d: Delete(%d) = %v, model %v", op, key, gotDel, wantDel)
			}
			delete(model, key)
		}
		if tab.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, model %d", op, tab.Len(), len(model))
		}
	}
	// Final sweep.
	for key, want := range model {
		got, ok, err := tab.Get(key)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("final Get(%d) mismatch", key)
		}
	}
}

func TestNoPageLeaks(t *testing.T) {
	store := pagestore.New(128)
	tab, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	base := store.Live()
	for i := 0; i < 500; i++ {
		if err := tab.Put(uint32(i), make([]byte, 300)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if _, err := tab.Delete(uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	// All value chains freed; only bucket pages (split residue) remain.
	// Bucket pages are bounded by the directory size.
	if live := store.Live(); live > base+len(tab.dir) {
		t.Fatalf("page leak: %d live pages, directory %d", live, len(tab.dir))
	}
}

func TestStoreExhaustion(t *testing.T) {
	store := pagestore.NewLimited(128, 8)
	tab, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for i := 0; i < 100 && firstErr == nil; i++ {
		firstErr = tab.Put(uint32(i), make([]byte, 200))
	}
	if firstErr == nil {
		t.Fatal("expected allocation failure on a limited store")
	}
}

func BenchmarkPutGet(b *testing.B) {
	store := pagestore.New(4096)
	tab, _ := New(store)
	val := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tab.Put(uint32(i%10000), val)
		_, _, _ = tab.Get(uint32(i % 10000))
	}
}
