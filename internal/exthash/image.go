package exthash

import (
	"fmt"

	"pvoronoi/internal/pagestore"
)

// Image is the serializable state of a Table (bucket pages live in the
// page store and are captured by its own image).
type Image struct {
	Dir         []uint32
	GlobalDepth uint32
	Size        int
}

// Image captures the table's directory and counters.
func (t *Table) Image() *Image {
	img := &Image{
		Dir:         make([]uint32, len(t.dir)),
		GlobalDepth: uint32(t.globalDepth),
		Size:        t.size,
	}
	for i, p := range t.dir {
		img.Dir[i] = uint32(p)
	}
	return img
}

// FromImage reconstructs a table over a restored store.
func FromImage(store *pagestore.Store, img *Image) (*Table, error) {
	if len(img.Dir) != 1<<img.GlobalDepth {
		return nil, fmt.Errorf("exthash: directory size %d does not match depth %d", len(img.Dir), img.GlobalDepth)
	}
	t := &Table{
		store:       store,
		slotsPer:    (store.PageSize() - bucketHeader) / slotSize,
		dir:         make([]pagestore.PageID, len(img.Dir)),
		globalDepth: uint(img.GlobalDepth),
		size:        img.Size,
		sess:        pagestore.NewFullSession(store),
	}
	if t.slotsPer < 2 {
		return nil, fmt.Errorf("exthash: page size %d too small", store.PageSize())
	}
	for i, p := range img.Dir {
		t.dir[i] = pagestore.PageID(p)
	}
	return t, nil
}
