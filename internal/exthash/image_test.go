package exthash

import (
	"bytes"
	"fmt"
	"testing"

	"pvoronoi/internal/pagestore"
)

func TestImageRoundTrip(t *testing.T) {
	store := pagestore.New(128)
	tab, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tab.Put(uint32(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	img := tab.Image()
	store2, err := pagestore.FromImage(store.Image())
	if err != nil {
		t.Fatal(err)
	}
	tab2, err := FromImage(store2, img)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Len() != tab.Len() || tab2.GlobalDepth() != tab.GlobalDepth() {
		t.Fatalf("metadata mismatch: %d/%d vs %d/%d",
			tab2.Len(), tab2.GlobalDepth(), tab.Len(), tab.GlobalDepth())
	}
	for i := 0; i < 500; i++ {
		v, ok, err := tab2.Get(uint32(i))
		if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("v%d", i))) {
			t.Fatalf("Get(%d) after restore = %q %v %v", i, v, ok, err)
		}
	}
	// Restored table remains writable.
	if err := tab2.Put(9999, []byte("new")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tab2.Get(9999)
	if !ok || !bytes.Equal(v, []byte("new")) {
		t.Fatal("restored table broken for writes")
	}
}

func TestFromImageRejectsBadDirectory(t *testing.T) {
	store := pagestore.New(128)
	if _, err := FromImage(store, &Image{Dir: []uint32{1, 2, 3}, GlobalDepth: 1}); err == nil {
		t.Fatal("directory/depth mismatch accepted")
	}
	tiny := pagestore.New(8)
	if _, err := FromImage(tiny, &Image{Dir: []uint32{1}, GlobalDepth: 0}); err == nil {
		t.Fatal("tiny page size accepted")
	}
}
