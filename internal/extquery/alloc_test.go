package extquery

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/race"
)

// TestGraphExpansionAllocBudget pins the best-first expansion's allocation
// behavior after the scratch-pooling change: the frontier heap and visited
// set are pooled (mirroring queryScratch in pvindex), so a warm KNN graph
// query is left with only its small per-call result slices. The budget fails
// loudly if per-expansion scratch allocation creeps back in.
func TestGraphExpansionAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := randomDB(rng, 200, 2, 800, 30, 0)
	g := buildAdjGraph(t, db)
	points := make([]geom.Point, 32)
	seeds := make([][]uint32, len(points))
	for i := range points {
		points[i] = geom.Point{rng.Float64() * 800, rng.Float64() * 800}
		seeds[i] = seedsAt(g, points[i])
	}
	// Warm the scratch pool.
	for i := range points {
		KNNCandidatesGraph(db, g, seeds[i], points[i], 8)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		ids, cost := KNNCandidatesGraph(db, g, seeds[i%len(points)], points[i%len(points)], 8)
		if len(ids) == 0 || cost.Nodes == 0 {
			t.Fatal("expansion returned no candidates")
		}
		i++
	})
	// Race instrumentation inflates allocation counts, so the workload runs
	// under -race but the budget is only asserted in uninstrumented builds
	// (same gating as TestSnapshotAllocBudget/TestPossibleNNAllocBudget).
	if race.Enabled {
		t.Logf("race detector enabled: skipping alloc budget assertion (measured %.1f)", allocs)
		return
	}
	if allocs > 12 {
		t.Fatalf("KNNCandidatesGraph allocates %.1f times per op, budget is 12", allocs)
	}
}
