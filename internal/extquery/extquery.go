// Package extquery implements the query extensions the paper's conclusion
// points to as future work for the PV-index: probabilistic group nearest
// neighbor queries (Lian & Chen, TKDE 2008), probabilistic k-NN candidate
// retrieval, and probabilistic reverse NN candidate retrieval (Cheema et
// al., TKDE 2010; Bernecker et al., VLDB 2011).
//
// Each query comes with a brute-force oracle (used by tests) and an
// index-assisted path built on the same substrates as PNNQ: region-level
// min/max distance bounds for retrieval, instance-level computation for
// probabilities.
package extquery

import (
	"math"
	"sort"

	"pvoronoi/internal/domination"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/pnnq"
	"pvoronoi/internal/uncertain"
)

// Agg selects the aggregate used by group queries.
type Agg int

const (
	// AggSum minimizes the sum of distances to the group's query points.
	AggSum Agg = iota
	// AggMax minimizes the maximum distance to the group's query points.
	AggMax
)

// aggMin returns a lower bound of min_{x ∈ u(o)} agg(x, Q): the aggregate of
// the per-point minimum distances. (The same x must serve every q, so this
// is a bound, not the exact optimum — sound for pruning.)
func aggMin(region geom.Rect, qs []geom.Point, agg Agg) float64 {
	var sum, max float64
	for _, q := range qs {
		d := region.MinDist(q)
		sum += d
		if d > max {
			max = d
		}
	}
	if agg == AggMax {
		return max
	}
	return sum
}

// aggMax returns an upper bound of max_{x ∈ u(o)} agg(x, Q).
func aggMax(region geom.Rect, qs []geom.Point, agg Agg) float64 {
	var sum, max float64
	for _, q := range qs {
		d := region.MaxDist(q)
		sum += d
		if d > max {
			max = d
		}
	}
	if agg == AggMax {
		return max
	}
	return sum
}

// aggPoint evaluates agg(x, Q) for a concrete instance position.
func aggPoint(x geom.Point, qs []geom.Point, agg Agg) float64 {
	var sum, max float64
	for _, q := range qs {
		d := geom.Dist(x, q)
		sum += d
		if d > max {
			max = d
		}
	}
	if agg == AggMax {
		return max
	}
	return sum
}

// GroupNNCandidates returns the objects that may minimize the aggregate
// distance to the query group Q: those whose aggregate lower bound does not
// exceed the smallest aggregate upper bound. The result is a conservative
// superset of the exact possible set (region bounds are not tight for
// groups); instance-level refinement happens in GroupNNProbs.
func GroupNNCandidates(db *uncertain.DB, qs []geom.Point, agg Agg) []uncertain.ID {
	objs := db.Objects()
	if len(objs) == 0 || len(qs) == 0 {
		return nil
	}
	best := math.Inf(1)
	for _, o := range objs {
		if ub := aggMax(o.Region, qs, agg); ub < best {
			best = ub
		}
	}
	var out []uncertain.ID
	for _, o := range objs {
		if aggMin(o.Region, qs, agg) <= best {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GroupNNProbs computes each candidate's probability of being the group
// nearest neighbor, from the objects' instances (objects without instances
// are skipped). Probabilities are exact under the discrete model restricted
// to the candidate set.
func GroupNNProbs(db *uncertain.DB, ids []uncertain.ID, qs []geom.Point, agg Agg) []pnnq.Result {
	return GroupNNScores(ids, instancesOf(db, ids), qs, agg)
}

// GroupNNScores is GroupNNProbs over snapshotted instance data (instances[i]
// belongs to ids[i]; candidates with no instances are skipped). It touches no
// shared index state, so callers run it outside the index lock on a
// consistent snapshot.
func GroupNNScores(ids []uncertain.ID, instances [][]uncertain.Instance, qs []geom.Point, agg Agg) []pnnq.Result {
	var cands []pnnq.ScoredCandidate
	for i, id := range ids {
		ins := instances[i]
		if len(ins) == 0 {
			continue
		}
		sc := pnnq.ScoredCandidate{ID: id}
		sc.Scores = make([]float64, len(ins))
		sc.Weights = make([]float64, len(ins))
		for j, in := range ins {
			sc.Scores[j] = aggPoint(in.Pos, qs, agg)
			sc.Weights[j] = in.Prob
		}
		cands = append(cands, sc)
	}
	return pnnq.ComputeScores(cands)
}

// instancesOf gathers the stored instances of each id (nil for missing
// objects), adapting direct-database callers to the snapshot signature.
func instancesOf(db *uncertain.DB, ids []uncertain.ID) [][]uncertain.Instance {
	out := make([][]uncertain.Instance, len(ids))
	for i, id := range ids {
		if o := db.Get(id); o != nil {
			out[i] = o.Instances
		}
	}
	return out
}

// GroupNNBruteForce is the oracle: the exact region-level candidate set by
// linear scan (identical definition to GroupNNCandidates, without an index).
func GroupNNBruteForce(db *uncertain.DB, qs []geom.Point, agg Agg) []uncertain.ID {
	return GroupNNCandidates(db, qs, agg)
}

// KNNCandidates returns the objects with a non-zero chance of ranking among
// the k nearest to q: those strictly dominated by fewer than k other
// objects (distmax(o', q) < distmin(o, q) for fewer than k choices of o').
func KNNCandidates(db *uncertain.DB, q geom.Point, k int) []uncertain.ID {
	objs := db.Objects()
	if len(objs) == 0 || k <= 0 {
		return nil
	}
	maxDists := make([]float64, len(objs))
	for i, o := range objs {
		maxDists[i] = o.MaxDist(q)
	}
	// kth smallest max distance bounds the candidates.
	sortedMax := append([]float64(nil), maxDists...)
	sort.Float64s(sortedMax)
	kth := sortedMax[min(k, len(sortedMax))-1]

	var out []uncertain.ID
	for _, o := range objs {
		dmin := o.MinDist(q)
		if dmin > kth {
			continue // at least k objects are surely closer
		}
		// Exact test: count strict dominators.
		dominators := 0
		for _, other := range objs {
			if other.ID != o.ID && other.MaxDist(q) < dmin {
				dominators++
				if dominators >= k {
					break
				}
			}
		}
		if dominators < k {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KNNProbs computes, for each candidate, the probability of ranking within
// the k nearest to q, from stored instances (Poisson-binomial dynamic
// program; see pnnq.ComputeKNN).
func KNNProbs(db *uncertain.DB, ids []uncertain.ID, q geom.Point, k int) []pnnq.KNNResult {
	return KNNScores(ids, instancesOf(db, ids), q, k)
}

// KNNScores is KNNProbs over snapshotted instance data (instances[i] belongs
// to ids[i]; candidates with no instances are skipped). Like GroupNNScores it
// is lock-free: the expensive probability refinement runs on the snapshot.
func KNNScores(ids []uncertain.ID, instances [][]uncertain.Instance, q geom.Point, k int) []pnnq.KNNResult {
	var cands []pnnq.ScoredCandidate
	for i, id := range ids {
		ins := instances[i]
		if len(ins) == 0 {
			continue
		}
		sc := pnnq.ScoredCandidate{ID: id}
		sc.Scores = make([]float64, len(ins))
		sc.Weights = make([]float64, len(ins))
		for j, in := range ins {
			sc.Scores[j] = geom.Dist(in.Pos, q)
			sc.Weights[j] = in.Prob
		}
		cands = append(cands, sc)
	}
	return pnnq.ComputeKNN(cands, k)
}

// RNNCandidates returns the objects with a non-zero chance that q is their
// nearest neighbor (treating q as a new point object): object o qualifies
// unless every point of u(o) is spatially dominated over q by some other
// object — decided with the same domination-count machinery as SE Step 9,
// with the query point as the domination target.
//
// The scan is O(|S|) with early pruning per object; the paper leaves an
// index structure for reverse queries as future work.
func RNNCandidates(db *uncertain.DB, q geom.Point, maxDepth int) []uncertain.ID {
	objs := db.Objects()
	if len(objs) == 0 {
		return nil
	}
	target := geom.PointRect(q)
	var out []uncertain.ID
	for _, o := range objs {
		// Cheap accept: if q is inside (or touching) u(o), the object can
		// realize a position arbitrarily close to q.
		if o.Region.Contains(q) {
			out = append(out, o.ID)
			continue
		}
		// Collect potentially dominating neighbors: o'' can exclude some
		// x ∈ u(o) only if distmax(o'', x) < dist(x, q) somewhere, which
		// requires o'' to be nearer to u(o) than q in the worst case.
		reach := o.Region.MaxDist(q) // everything farther cannot matter
		var cands []geom.Rect
		for _, other := range objs {
			if other.ID == o.ID {
				continue
			}
			if other.Region.MinDistRect(o.Region) <= reach {
				cands = append(cands, other.Region)
			}
		}
		tester := domination.NewTester(cands, target, maxDepth)
		if !tester.RegionPrunable(o.Region) {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RNNBruteForce is the instance-level oracle: o qualifies iff some instance
// x of o satisfies dist(x, q) <= distmax(o', x) for every other object o'.
// For region-only objects the region's corners and center stand in for
// instances (a sampled approximation used only in tests with instances).
func RNNBruteForce(db *uncertain.DB, q geom.Point) []uncertain.ID {
	objs := db.Objects()
	var out []uncertain.ID
	for _, o := range objs {
		if len(o.Instances) == 0 {
			continue
		}
		possible := false
		for _, in := range o.Instances {
			dq := geom.Dist(in.Pos, q)
			ok := true
			for _, other := range objs {
				if other.ID == o.ID {
					continue
				}
				if other.Region.MaxDist(in.Pos) < dq {
					ok = false
					break
				}
			}
			if ok {
				possible = true
				break
			}
		}
		if possible {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
