package extquery

import (
	"math"
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

func randomDB(rng *rand.Rand, n, d int, span, maxSide float64, instances int) *uncertain.DB {
	db := uncertain.NewDB(geom.UnitCube(d, span))
	for i := 0; i < n; i++ {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for j := 0; j < d; j++ {
			lo[j] = rng.Float64() * (span - maxSide)
			hi[j] = lo[j] + 1 + rng.Float64()*(maxSide-1)
		}
		o := &uncertain.Object{ID: uncertain.ID(i), Region: geom.Rect{Lo: lo, Hi: hi}}
		if instances > 0 {
			o.Instances = uncertain.SampleInstances(o.Region, uncertain.PDFUniform, instances, rng)
		}
		_ = db.Add(o)
	}
	return db
}

// --- group NN --------------------------------------------------------------

func TestGroupNNSingleQueryPointEqualsPNN(t *testing.T) {
	// With |Q| = 1 both aggregates reduce to the plain possible-NN set.
	rng := rand.New(rand.NewSource(1))
	db := randomDB(rng, 80, 2, 800, 30, 0)
	for iter := 0; iter < 50; iter++ {
		q := geom.Point{rng.Float64() * 800, rng.Float64() * 800}
		sum := GroupNNCandidates(db, []geom.Point{q}, AggSum)
		max := GroupNNCandidates(db, []geom.Point{q}, AggMax)
		if len(sum) != len(max) {
			t.Fatalf("sum/max disagree on single-point group: %v vs %v", sum, max)
		}
		for i := range sum {
			if sum[i] != max[i] {
				t.Fatalf("sum/max order disagree: %v vs %v", sum, max)
			}
		}
	}
}

// Every instance-level winner must be in the candidate set: for random
// instantiations of all objects, the aggregate minimizer's ID appears among
// GroupNNCandidates.
func TestGroupNNCandidatesCoverSampledWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := randomDB(rng, 40, 2, 600, 30, 15)
	for iter := 0; iter < 40; iter++ {
		qs := []geom.Point{
			{rng.Float64() * 600, rng.Float64() * 600},
			{rng.Float64() * 600, rng.Float64() * 600},
			{rng.Float64() * 600, rng.Float64() * 600},
		}
		for _, agg := range []Agg{AggSum, AggMax} {
			cands := map[uncertain.ID]bool{}
			for _, id := range GroupNNCandidates(db, qs, agg) {
				cands[id] = true
			}
			// Sample 50 possible worlds.
			for w := 0; w < 50; w++ {
				bestID := uncertain.ID(0)
				best := math.Inf(1)
				for _, o := range db.Objects() {
					in := o.Instances[rng.Intn(len(o.Instances))]
					score := aggPoint(in.Pos, qs, agg)
					if score < best {
						best = score
						bestID = o.ID
					}
				}
				if !cands[bestID] {
					t.Fatalf("world winner %d not among candidates (agg=%d)", bestID, agg)
				}
			}
		}
	}
}

func TestGroupNNProbsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomDB(rng, 25, 2, 400, 25, 30)
	qs := []geom.Point{{100, 100}, {300, 250}}
	for _, agg := range []Agg{AggSum, AggMax} {
		ids := GroupNNCandidates(db, qs, agg)
		res := GroupNNProbs(db, ids, qs, agg)
		var sum float64
		for _, r := range res {
			if r.Prob < 0 || r.Prob > 1+1e-9 {
				t.Fatalf("prob out of range: %g", r.Prob)
			}
			sum += r.Prob
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("agg=%d: probabilities sum to %g", agg, sum)
		}
	}
}

func TestGroupNNEmptyInputs(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	if got := GroupNNCandidates(db, []geom.Point{{1, 1}}, AggSum); got != nil {
		t.Fatal("empty DB should yield nil")
	}
	_ = db.Add(&uncertain.Object{ID: 1, Region: geom.NewRect(geom.Point{1, 1}, geom.Point{2, 2})})
	if got := GroupNNCandidates(db, nil, AggSum); got != nil {
		t.Fatal("empty group should yield nil")
	}
}

// --- k-NN --------------------------------------------------------------

func TestKNNReducesToPNNAtK1(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := randomDB(rng, 60, 3, 700, 35, 0)
	for iter := 0; iter < 50; iter++ {
		q := geom.Point{rng.Float64() * 700, rng.Float64() * 700, rng.Float64() * 700}
		got := KNNCandidates(db, q, 1)
		// Brute-force possible-NN definition.
		best := math.Inf(1)
		for _, o := range db.Objects() {
			if m := o.MaxDist(q); m < best {
				best = m
			}
		}
		want := map[uncertain.ID]bool{}
		for _, o := range db.Objects() {
			if o.MinDist(q) <= best {
				want[o.ID] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("k=1: %d candidates, want %d", len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("k=1: unexpected %d", id)
			}
		}
	}
}

func TestKNNMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randomDB(rng, 60, 2, 700, 35, 0)
	for iter := 0; iter < 30; iter++ {
		q := geom.Point{rng.Float64() * 700, rng.Float64() * 700}
		prev := map[uncertain.ID]bool{}
		prevLen := 0
		for k := 1; k <= 8; k *= 2 {
			got := KNNCandidates(db, q, k)
			if len(got) < prevLen {
				t.Fatalf("candidate set shrank from k=%d to k=%d", k/2, k)
			}
			cur := map[uncertain.ID]bool{}
			for _, id := range got {
				cur[id] = true
			}
			for id := range prev {
				if !cur[id] {
					t.Fatalf("candidate %d lost when k grew", id)
				}
			}
			prev, prevLen = cur, len(got)
		}
	}
}

// Sampled-world coverage: any object among the k nearest in a sampled world
// must be in the candidate set.
func TestKNNCandidatesCoverSampledWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := randomDB(rng, 30, 2, 500, 30, 12)
	const k = 3
	for iter := 0; iter < 30; iter++ {
		q := geom.Point{rng.Float64() * 500, rng.Float64() * 500}
		cands := map[uncertain.ID]bool{}
		for _, id := range KNNCandidates(db, q, k) {
			cands[id] = true
		}
		for w := 0; w < 40; w++ {
			type scored struct {
				id uncertain.ID
				d  float64
			}
			var world []scored
			for _, o := range db.Objects() {
				in := o.Instances[rng.Intn(len(o.Instances))]
				world = append(world, scored{o.ID, geom.Dist(in.Pos, q)})
			}
			for i := 1; i < len(world); i++ {
				for j := i; j > 0 && world[j].d < world[j-1].d; j-- {
					world[j], world[j-1] = world[j-1], world[j]
				}
			}
			for _, s := range world[:k] {
				if !cands[s.id] {
					t.Fatalf("world top-%d member %d missing from candidates", k, s.id)
				}
			}
		}
	}
}

func TestKNNProbs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(rng, 20, 2, 400, 30, 25)
	q := geom.Point{200, 200}
	const k = 3
	ids := KNNCandidates(db, q, k)
	res := KNNProbs(db, ids, q, k)
	// Expected count of top-k members is k: probabilities sum to ~k when
	// all candidates carry instances (they do here).
	var sum float64
	for _, r := range res {
		if r.Prob < -1e-9 || r.Prob > 1+1e-9 {
			t.Fatalf("prob out of range: %g", r.Prob)
		}
		sum += r.Prob
	}
	if math.Abs(sum-float64(k)) > 1e-6 {
		t.Fatalf("top-%d membership probabilities sum to %g, want %d", k, sum, k)
	}
	// k >= n edge: everyone probability 1.
	all := KNNProbs(db, ids, q, 1000)
	for _, r := range all {
		if r.Prob != 1 {
			t.Fatalf("k>=n should give probability 1, got %g", r.Prob)
		}
	}
}

// --- reverse NN ----------------------------------------------------------

// RNNCandidates must be a superset of the instance-level oracle.
func TestRNNCandidatesCoverOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := randomDB(rng, 40, 2, 600, 30, 20)
	for iter := 0; iter < 40; iter++ {
		q := geom.Point{rng.Float64() * 600, rng.Float64() * 600}
		cands := map[uncertain.ID]bool{}
		for _, id := range RNNCandidates(db, q, 10) {
			cands[id] = true
		}
		for _, id := range RNNBruteForce(db, q) {
			if !cands[id] {
				t.Fatalf("oracle RNN %d missing from candidates at %v", id, q)
			}
		}
	}
}

// The candidate filter should actually prune: far-away objects with close
// neighbors must not qualify.
func TestRNNPrunesDominatedObjects(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(2, 1000))
	// Object 1 far from q but hugged by object 2; object 3 near q.
	_ = db.Add(&uncertain.Object{ID: 1, Region: geom.NewRect(geom.Point{900, 900}, geom.Point{910, 910})})
	_ = db.Add(&uncertain.Object{ID: 2, Region: geom.NewRect(geom.Point{912, 900}, geom.Point{922, 910})})
	_ = db.Add(&uncertain.Object{ID: 3, Region: geom.NewRect(geom.Point{80, 80}, geom.Point{90, 90})})
	q := geom.Point{100, 100}
	got := RNNCandidates(db, q, 12)
	found := map[uncertain.ID]bool{}
	for _, id := range got {
		found[id] = true
	}
	if !found[3] {
		t.Fatal("object adjacent to q should be an RNN candidate")
	}
	if found[1] {
		t.Fatal("object 1 is dominated by its neighbor and must be pruned")
	}
}

func TestRNNQInsideRegion(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	_ = db.Add(&uncertain.Object{ID: 1, Region: geom.NewRect(geom.Point{40, 40}, geom.Point{60, 60})})
	_ = db.Add(&uncertain.Object{ID: 2, Region: geom.NewRect(geom.Point{0, 0}, geom.Point{5, 5})})
	got := RNNCandidates(db, geom.Point{50, 50}, 10)
	if len(got) == 0 || got[0] != 1 {
		t.Fatalf("object containing q must qualify: %v", got)
	}
}
