package extquery

import (
	"math"
	"sort"
	"sync"

	"pvoronoi/internal/adjgraph"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// This file holds the Voronoi-adjacency retrieval paths: the same candidate
// definitions as extquery.go's scans and tree.go's branch-and-bound, answered
// by best-first expansion over the materialized UBR-adjacency graph
// (adjgraph). The expansion seeds at the cells covering an anchor point and
// walks neighbor-to-neighbor outward, so it touches only the query's
// Voronoi neighborhood — no tree descent, no global structure at all.
//
// Exactness rests on a covering argument. PV-cells are closed sets that
// cover the domain, and any two cells sharing a point have intersecting
// UBRs (each UBR contains its cell), i.e. they are graph neighbors. Walk
// the segment from the anchor a to any point x: the cells touching the
// segment form a connected chain in the graph, and each chain cell's key —
// the aggregate-mindist lower bound of its UBR — is at most the aggregate
// distance f(y) of some segment point y it contains. Since f is convex, f
// along the segment never exceeds max(f(a), f(x)). Therefore every object
// whose relevant point x satisfies f(x) <= B is reached before the frontier
// minimum exceeds max(f(a), B) — the stop bound used below, with B the
// running candidate bound (k-th maxdist for kNN, best aggMax for group NN).
// The final filter over the visited rows then replicates the scan verbatim.

// GraphCost attributes the work of one graph expansion.
type GraphCost struct {
	// Nodes counts the rows expanded (heap pops within the stop bound).
	Nodes int
	// Edges counts the adjacency links examined while expanding those rows.
	Edges int
}

// graphItem is one frontier entry: a row keyed by the aggregate-mindist
// lower bound of its UBR. Rows are immutable, so holding the pointer across
// the expansion is safe even under concurrent writers.
type graphItem struct {
	key float64
	id  uint32
	row *adjgraph.Row
}

// graphHeap is a hand-rolled binary min-heap over frontier keys (no
// interface indirection in the expansion hot loop).
type graphHeap []graphItem

func (h *graphHeap) push(it graphItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].key <= s[i].key {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *graphHeap) pop() graphItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s) && s[l].key < s[m].key {
			m = l
		}
		if r < len(s) && s[r].key < s[m].key {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// graphScratch holds the reusable state of one best-first expansion — the
// frontier heap and the visited set — mirroring queryScratch in pvindex so
// steady-state expansions perform no per-call allocation.
//
// The visited set is the expansion's hottest structure: it is probed once
// per examined edge, and after refinement shrinks the hubs the per-edge map
// hash was the single largest term in the 100k kNN profile. Dense IDs (the
// overwhelmingly common case — the index allocates them small) use an
// epoch-stamped array instead: marking is one indexed store, re-arming is a
// counter increment, and nothing is cleared between queries. IDs at or
// beyond the array ceiling fall back to a map, so correctness never depends
// on the ID distribution.
type graphScratch struct {
	heap   graphHeap
	stamps []uint32            // stamps[id] == stamp ⇒ id seen this run
	stamp  uint32              // current run's epoch; 0 is never a valid mark
	seen   map[uint32]struct{} // fallback for id >= maxStampIDs
}

// maxStampIDs caps the stamp array at 4 MB per pooled scratch. Graphs whose
// IDs exceed it still work — those IDs take the map path.
const maxStampIDs = 1 << 20

// arm readies the scratch for one expansion: bump the epoch (clearing the
// stamp array only on the ~never wraparound) and reset the fallback set.
func (sc *graphScratch) arm() {
	sc.stamp++
	if sc.stamp == 0 {
		clear(sc.stamps)
		sc.stamp = 1
	}
	if len(sc.seen) > 0 {
		clear(sc.seen)
	}
}

// mark records id as seen and reports whether it was new.
func (sc *graphScratch) mark(id uint32) bool {
	if id < maxStampIDs {
		if int(id) >= len(sc.stamps) {
			grown := 256
			for grown <= int(id) {
				grown *= 2
			}
			if grown > maxStampIDs {
				grown = maxStampIDs
			}
			next := make([]uint32, grown)
			copy(next, sc.stamps)
			sc.stamps = next
		}
		if sc.stamps[id] == sc.stamp {
			return false
		}
		sc.stamps[id] = sc.stamp
		return true
	}
	if _, dup := sc.seen[id]; dup {
		return false
	}
	sc.seen[id] = struct{}{}
	return true
}

var graphScratchPool = sync.Pool{New: func() any {
	return &graphScratch{seen: make(map[uint32]struct{}, 16)}
}}

// expandGraph runs the shared best-first expansion. key gives a row's
// frontier key (a lower bound of the aggregate distance anywhere in its
// UBR); visit consumes an expanded row and returns the updated stop bound,
// which must be monotone nonincreasing across calls. Expansion stops when
// the frontier minimum exceeds the bound; neighbors already over the bound
// are pruned at push time (keys are fixed and the bound only shrinks, so
// they could never be expanded later).
func expandGraph(g *adjgraph.Graph, seeds []uint32, key func(*adjgraph.Row) float64, visit func(uint32, *adjgraph.Row) float64) GraphCost {
	var cost GraphCost
	if g == nil {
		return cost
	}
	sc := graphScratchPool.Get().(*graphScratch)
	sc.arm()
	defer func() {
		sc.heap = sc.heap[:0]
		graphScratchPool.Put(sc)
	}()
	h := &sc.heap
	for _, id := range seeds {
		if !sc.mark(id) {
			continue
		}
		if row, ok := g.Get(id); ok {
			h.push(graphItem{key: key(row), id: id, row: row})
		}
	}
	bound := math.Inf(1)
	for len(*h) > 0 {
		it := h.pop()
		if it.key > bound {
			break
		}
		cost.Nodes++
		bound = visit(it.id, it.row)
		for _, n := range it.row.Neighbors {
			cost.Edges++
			if !sc.mark(n) {
				continue
			}
			row, ok := g.Get(n)
			if !ok {
				continue
			}
			if k := key(row); k <= bound {
				h.push(graphItem{key: k, id: n, row: row})
			}
		}
	}
	return cost
}

// kthTracker maintains the k smallest maxdists seen, exposing the running
// k-th smallest as the expansion stop bound (+Inf until k values arrive).
type kthTracker struct {
	k    int
	heap []float64 // max-heap
}

func (t *kthTracker) add(d float64) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, d)
		i := len(t.heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if t.heap[p] >= t.heap[i] {
				break
			}
			t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
			i = p
		}
		return
	}
	if d >= t.heap[0] {
		return
	}
	t.heap[0] = d
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(t.heap) && t.heap[l] > t.heap[m] {
			m = l
		}
		if r < len(t.heap) && t.heap[r] > t.heap[m] {
			m = r
		}
		if m == i {
			break
		}
		t.heap[i], t.heap[m] = t.heap[m], t.heap[i]
		i = m
	}
}

func (t *kthTracker) bound() float64 {
	if len(t.heap) < t.k {
		return math.Inf(1)
	}
	return t.heap[0]
}

// knnVisited is one expanded row's exact distance interval.
type knnVisited struct {
	id         uint32
	dmin, dmax float64
}

// knnScratch recycles the kNN retrieval's per-query slices (visited rows,
// k-th tracker heap, sorted maxdists) — only the returned candidate slice
// is allocated per call.
type knnScratch struct {
	vis  []knnVisited
	kth  []float64
	smax []float64
}

var knnScratchPool = sync.Pool{New: func() any { return &knnScratch{} }}

// KNNCandidatesGraph returns the k-NN candidate set of KNNCandidates by
// best-first expansion over the UBR-adjacency graph, seeded with the IDs of
// the cells covering q (a superset is fine — extra seeds only add sources).
// The frontier is keyed by mindist(UBR, q); since mindist to a single point
// is attained by an actual point of the rectangle, the covering argument
// needs no slack: the stop bound is exactly the running k-th smallest
// maxdist. Every object the scan's k-th-maxdist filter can admit — and
// every potential dominator — is therefore visited, and the final filter
// replicates the scan's verbatim.
func KNNCandidatesGraph(db *uncertain.DB, g *adjgraph.Graph, seeds []uint32, q geom.Point, k int) ([]uncertain.ID, GraphCost) {
	if db == nil || g == nil || g.Len() == 0 || k <= 0 {
		return nil, GraphCost{}
	}
	sc := knnScratchPool.Get().(*knnScratch)
	kth := kthTracker{k: k, heap: sc.kth[:0]}
	sc.vis = sc.vis[:0]
	defer func() {
		sc.kth = kth.heap
		knnScratchPool.Put(sc)
	}()
	cost := expandGraph(g, seeds,
		func(row *adjgraph.Row) float64 { return row.UBR.MinDist(q) },
		func(id uint32, _ *adjgraph.Row) float64 {
			if o := db.Get(uncertain.ID(id)); o != nil {
				dmin, dmax := o.Region.MinDist(q), o.Region.MaxDist(q)
				sc.vis = append(sc.vis, knnVisited{id: id, dmin: dmin, dmax: dmax})
				kth.add(dmax)
			}
			return kth.bound()
		})
	vis := sc.vis
	if len(vis) == 0 {
		return nil, cost
	}

	// The k objects with the globally smallest maxdists are all visited
	// (each has dmin <= maxdist <= global k-th), so the k-th smallest over
	// the visited set equals the scan's global k-th; so is every potential
	// dominator of a visited candidate. The filter below is tree.go's.
	sortedMax := sc.smax[:0]
	for i := range vis {
		sortedMax = append(sortedMax, vis[i].dmax)
	}
	sc.smax = sortedMax
	sort.Float64s(sortedMax)
	kthVal := sortedMax[min(k, len(sortedMax))-1]

	var out []uncertain.ID
	for i := range vis {
		dmin := vis[i].dmin
		if dmin > kthVal {
			continue // at least k objects are surely closer
		}
		if dominators := sort.SearchFloat64s(sortedMax, dmin); dominators < k {
			out = append(out, uncertain.ID(vis[i].id))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, cost
}

// GroupAnchor returns the expansion anchor for a group query: an approximate
// minimizer of the aggregate distance to Q (Weiszfeld iterations for the
// geometric median under AggSum, shrinking steps toward the farthest point
// for the 1-center under AggMax). Exactness never depends on the anchor's
// quality — the stop bound folds in the anchor's own aggregate value — a
// good anchor only shrinks the visited neighborhood.
func GroupAnchor(qs []geom.Point, agg Agg) geom.Point {
	if len(qs) == 0 {
		return nil
	}
	dim := len(qs[0])
	z := make(geom.Point, dim)
	for _, q := range qs {
		for j := range z {
			z[j] += q[j]
		}
	}
	for j := range z {
		z[j] /= float64(len(qs))
	}
	const iters = 8
	if agg == AggMax {
		// Badoiu–Clarkson: step toward the farthest point with shrinking
		// step size approximates the minimum enclosing ball center.
		for i := 0; i < iters; i++ {
			far, fd := 0, -1.0
			for k, q := range qs {
				if d := geom.Dist(z, q); d > fd {
					far, fd = k, d
				}
			}
			step := 1 / float64(i+2)
			for j := range z {
				z[j] += step * (qs[far][j] - z[j])
			}
		}
		return z
	}
	for i := 0; i < iters; i++ {
		var wsum float64
		next := make(geom.Point, dim)
		for _, q := range qs {
			d := geom.Dist(z, q)
			if d == 0 {
				return z // at a query point: good enough as an anchor
			}
			w := 1 / d
			wsum += w
			for j := range next {
				next[j] += w * q[j]
			}
		}
		for j := range next {
			next[j] /= wsum
		}
		z = next
	}
	return z
}

// GroupNNCandidatesGraph returns the group-NN candidate set of
// GroupNNCandidates by best-first expansion over the UBR-adjacency graph,
// seeded with the IDs of the cells covering anchor (GroupAnchor; any in-
// domain point is sound). The frontier is keyed by the rectangle aggregate
// lower bound of each row's UBR.
//
// Unlike the single-point case, the rectangle lower bound aggMin(r(o), Q)
// is not attained by one point, so a candidate's true best aggregate value
// f(x*) can exceed its admission bound aggMin(r(o)) by up to L·diam(r(o)),
// where r(o) is the uncertainty region and L the aggregate's Lipschitz
// constant (|Q| for sum, 1 for max). The stop bound therefore carries that
// slack, using the graph's monotone max-region-diameter (MaxDiag, supplied
// per row by the index): the cell chain from the anchor to x* has keys
// bounded by max(f(anchor), f(x*)) <= max(f(anchor), best + L·maxDiag) by
// convexity of f along the segment, so every scan candidate is fully
// visited. The final filter — aggMin <= best — replicates the scan
// verbatim. Note the slack needs only the candidate's own region diameter,
// not its (much larger) UBR diagonal — the UBRs enter solely through the
// connectivity of the chain.
func GroupNNCandidatesGraph(db *uncertain.DB, g *adjgraph.Graph, seeds []uint32, anchor geom.Point, qs []geom.Point, agg Agg) ([]uncertain.ID, GraphCost) {
	if db == nil || g == nil || g.Len() == 0 || len(qs) == 0 {
		return nil, GraphCost{}
	}
	lip := 1.0
	if agg == AggSum {
		lip = float64(len(qs))
	}
	slack := lip * g.MaxDiag()
	fAnchor := aggPoint(anchor, qs, agg)
	best := math.Inf(1)
	type visitedNode struct {
		id    uint32
		lower float64
	}
	var vis []visitedNode
	cost := expandGraph(g, seeds,
		func(row *adjgraph.Row) float64 { return aggMin(row.UBR, qs, agg) },
		func(id uint32, _ *adjgraph.Row) float64 {
			if o := db.Get(uncertain.ID(id)); o != nil {
				if ub := aggMax(o.Region, qs, agg); ub < best {
					best = ub
				}
				vis = append(vis, visitedNode{id: id, lower: aggMin(o.Region, qs, agg)})
			}
			return math.Max(fAnchor, best+slack)
		})
	var out []uncertain.ID
	for i := range vis {
		if vis[i].lower <= best {
			out = append(out, uncertain.ID(vis[i].id))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, cost
}
