package extquery

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/adjgraph"
	"pvoronoi/internal/core"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// buildAdjGraph materializes the UBR-adjacency graph for db the slow, obvious
// way: SE per object, then a double loop over UBR intersections. The pvindex
// maintains the same relation incrementally; here the brute-force build is
// the ground truth for the expansion algorithms alone.
func buildAdjGraph(t *testing.T, db *uncertain.DB) *adjgraph.Graph {
	t.Helper()
	tree := core.BuildRegionTree(db, 16)
	opts := core.DefaultOptions()
	objs := db.Objects()
	ubrs := make(map[uint32]geom.Rect, len(objs))
	for _, o := range objs {
		ubr, _ := core.ComputeUBR(db, tree, o, opts)
		ubrs[uint32(o.ID)] = ubr
	}
	g := adjgraph.New()
	for _, o := range objs {
		id := uint32(o.ID)
		ubr := ubrs[id]
		var ns []uint32
		for nid, nubr := range ubrs {
			if nid != id && ubr.Intersects(nubr) {
				ns = append(ns, nid)
			}
		}
		g.Set(id, ubr, geom.Dist(o.Region.Lo, o.Region.Hi), ns)
	}
	return g
}

// seedsAt returns the IDs whose UBR contains p. UBRs cover the domain (each
// contains its PV-cell and the cells cover everything), so for in-domain p
// this is never empty — it is the graph analogue of an octree point query.
func seedsAt(g *adjgraph.Graph, p geom.Point) []uint32 {
	var seeds []uint32
	g.ForEach(func(id uint32, row *adjgraph.Row) bool {
		if row.UBR.Contains(p) {
			seeds = append(seeds, id)
		}
		return true
	})
	return seeds
}

func sameIDSlices(a, b []uncertain.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestKNNGraphMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dbs := map[string]*uncertain.DB{
		"uniform":   randomDB(rng, 120, 2, 800, 30, 0),
		"clustered": clusteredDB(rng, 120, 2, 800, 25, 0),
	}
	for name, db := range dbs {
		g := buildAdjGraph(t, db)
		for iter := 0; iter < 30; iter++ {
			q := geom.Point{rng.Float64() * 800, rng.Float64() * 800}
			for _, k := range []int{1, 2, 4, 8, 16, db.Len() + 5} {
				want := KNNCandidates(db, q, k)
				got, cost := KNNCandidatesGraph(db, g, seedsAt(g, q), q, k)
				if !sameIDSlices(got, want) {
					t.Fatalf("%s k=%d q=%v: graph %v != scan %v", name, k, q, got, want)
				}
				if len(want) > 0 && (cost.Nodes == 0 || cost.Edges == 0) {
					t.Fatalf("%s k=%d: nonempty result with zero cost %+v", name, k, cost)
				}
			}
		}
	}
}

func TestGroupNNGraphMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dbs := map[string]*uncertain.DB{
		"uniform":   randomDB(rng, 100, 2, 800, 30, 0),
		"clustered": clusteredDB(rng, 100, 2, 800, 25, 0),
	}
	for name, db := range dbs {
		g := buildAdjGraph(t, db)
		for iter := 0; iter < 20; iter++ {
			for _, gs := range []int{1, 3, 5} {
				qs := make([]geom.Point, gs)
				for i := range qs {
					qs[i] = geom.Point{rng.Float64() * 800, rng.Float64() * 800}
				}
				for _, agg := range []Agg{AggSum, AggMax} {
					anchor := GroupAnchor(qs, agg)
					want := GroupNNCandidates(db, qs, agg)
					got, _ := GroupNNCandidatesGraph(db, g, seedsAt(g, anchor), anchor, qs, agg)
					if !sameIDSlices(got, want) {
						t.Fatalf("%s |Q|=%d agg=%v: graph %v != scan %v", name, gs, agg, got, want)
					}
				}
			}
		}
	}
}

// Exactness must not depend on anchor quality: even a terrible anchor (a
// domain corner) yields the same candidate set, just with more work.
func TestGroupNNGraphAnchorIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db := randomDB(rng, 80, 2, 600, 30, 0)
	g := buildAdjGraph(t, db)
	for iter := 0; iter < 15; iter++ {
		qs := []geom.Point{
			{rng.Float64() * 600, rng.Float64() * 600},
			{rng.Float64() * 600, rng.Float64() * 600},
			{rng.Float64() * 600, rng.Float64() * 600},
		}
		for _, agg := range []Agg{AggSum, AggMax} {
			want := GroupNNCandidates(db, qs, agg)
			bad := geom.Point{0, 0}
			got, _ := GroupNNCandidatesGraph(db, g, seedsAt(g, bad), bad, qs, agg)
			if !sameIDSlices(got, want) {
				t.Fatalf("agg=%v bad anchor: graph %v != scan %v", agg, got, want)
			}
		}
	}
}

func TestGraphQueriesEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	q := geom.Point{10, 10}

	// Empty graph / nil inputs.
	if ids, _ := KNNCandidatesGraph(nil, adjgraph.New(), nil, q, 3); ids != nil {
		t.Fatalf("nil db returned %v", ids)
	}
	db := randomDB(rng, 5, 2, 100, 10, 0)
	if ids, _ := KNNCandidatesGraph(db, adjgraph.New(), nil, q, 3); ids != nil {
		t.Fatalf("empty graph returned %v", ids)
	}
	if ids, _ := KNNCandidatesGraph(db, nil, nil, q, 3); ids != nil {
		t.Fatalf("nil graph returned %v", ids)
	}

	// Single object: its UBR is the whole domain; it is the only candidate.
	solo := uncertain.NewDB(geom.UnitCube(2, 100))
	_ = solo.Add(&uncertain.Object{ID: 0, Region: geom.NewRect(geom.Point{40, 40}, geom.Point{50, 50})})
	sg := buildAdjGraph(t, solo)
	got, _ := KNNCandidatesGraph(solo, sg, seedsAt(sg, q), q, 4)
	if !sameIDSlices(got, KNNCandidates(solo, q, 4)) {
		t.Fatalf("single object: %v", got)
	}
	gotG, _ := GroupNNCandidatesGraph(solo, sg, seedsAt(sg, q), q, []geom.Point{q}, AggSum)
	if !sameIDSlices(gotG, GroupNNCandidates(solo, []geom.Point{q}, AggSum)) {
		t.Fatalf("single object group: %v", gotG)
	}

	// k <= 0 yields nothing.
	if ids, _ := KNNCandidatesGraph(db, sg, nil, q, 0); ids != nil {
		t.Fatalf("k=0 returned %v", ids)
	}
}
