package extquery

import (
	"sort"

	"pvoronoi/internal/domination"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// This file holds the index-assisted retrieval paths: the same candidate
// definitions as the linear scans in extquery.go, evaluated by best-first
// branch-and-bound over the R*-tree of uncertainty regions (the tree the
// PV-index already maintains for SE). Each function returns exactly the ID
// set of its scan counterpart — the scans stay as test oracles — plus the
// per-call node/leaf access cost.

// rnnPoolSize bounds the dominator pool used for subtree-level RNN pruning:
// the regions nearest the query, which wholesale-dominate far subtrees.
const rnnPoolSize = 16

// GroupNNCandidatesTree returns the group-NN candidate set of GroupNNCandidates
// by branch-and-bound: nodes are visited best-first by the aggregate
// lower bound and pruned against the smallest aggregate upper bound seen,
// so only the neighborhood of the query group touches pages.
func GroupNNCandidatesTree(t *rtree.Tree, qs []geom.Point, agg Agg) ([]uncertain.ID, rtree.Cost) {
	if t == nil || t.Len() == 0 || len(qs) == 0 {
		return nil, rtree.Cost{}
	}
	lower := func(r geom.Rect) float64 { return aggMin(r, qs, agg) }
	upper := func(r geom.Rect) float64 { return aggMax(r, qs, agg) }
	items, best, cost := t.KthBound(lower, upper, 1)
	var out []uncertain.ID
	for _, it := range items {
		if lower(it.Rect) <= best {
			out = append(out, uncertain.ID(it.ID))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, cost
}

// KNNCandidatesTree returns the k-NN candidate set of KNNCandidates by
// incremental best-first traversal with k-th-maxdist pruning: the running
// k-th smallest max distance bounds the frontier, and the dominator-count
// refinement runs over the visited entries only (every potential dominator
// has maxdist below the bound, so it is necessarily visited).
func KNNCandidatesTree(t *rtree.Tree, q geom.Point, k int) ([]uncertain.ID, rtree.Cost) {
	if t == nil || t.Len() == 0 || k <= 0 {
		return nil, rtree.Cost{}
	}
	lower := func(r geom.Rect) float64 { return r.MinDist(q) }
	upper := func(r geom.Rect) float64 { return r.MaxDist(q) }
	items, kth, cost := t.KthBound(lower, upper, k)

	// Sorted max distances of the visited entries support the exact
	// dominator count by binary search: dominators of o are the entries with
	// maxdist strictly below distmin(o, q), and all of them are visited.
	maxDists := make([]float64, len(items))
	minDists := make([]float64, len(items))
	for i, it := range items {
		minDists[i] = it.Rect.MinDist(q)
		maxDists[i] = it.Rect.MaxDist(q)
	}
	sortedMax := append([]float64(nil), maxDists...)
	sort.Float64s(sortedMax)

	var out []uncertain.ID
	for i, it := range items {
		dmin := minDists[i]
		if dmin > kth {
			continue // at least k objects are surely closer
		}
		// An entry never dominates itself: its own maxdist >= its mindist.
		if dominators := sort.SearchFloat64s(sortedMax, dmin); dominators < k {
			out = append(out, uncertain.ID(it.ID))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, cost
}

// RNNCandidatesTree returns the reverse-NN candidate set of RNNCandidates by
// filter-refine tree descent. Filter: a subtree is skipped when a single
// pooled region disjoint from its MBR dominates the whole MBR over q — such
// a region belongs to every skipped object's scan candidate set and
// dominates its whole uncertainty region, so the scan would prune it too.
// Refine: surviving objects run the scan's exact domination test, with the
// dominator superset retrieved through the tree instead of a linear pass
// (regions beyond the object's reach can never dominate any of its points,
// so the extra L∞-window hits leave the tester's outcome unchanged).
func RNNCandidatesTree(t *rtree.Tree, q geom.Point, maxDepth int) ([]uncertain.ID, rtree.Cost) {
	if t == nil || t.Len() == 0 {
		return nil, rtree.Cost{}
	}
	target := geom.PointRect(q)

	// Dominator pool: the regions nearest q by mindist, fetched through the
	// same bounded branch-and-bound primitive so the pool cost is attributed.
	minDist := func(r geom.Rect) float64 { return r.MinDist(q) }
	poolItems, poolBound, cost := t.KthBound(minDist, minDist, rnnPoolSize)
	pool := make([]geom.Rect, 0, rnnPoolSize)
	for _, it := range poolItems {
		if it.Rect.MinDist(q) <= poolBound {
			pool = append(pool, it.Rect)
		}
	}

	prune := func(m geom.Rect) bool {
		for _, c := range pool {
			// c ∩ M = ∅ guarantees c is not inside the subtree (subtree
			// regions are contained in M), so it never prunes itself.
			if !c.Intersects(m) && domination.Dominates(c, target, m) {
				return true
			}
		}
		return false
	}

	var out []uncertain.ID
	var scratch []rtree.Item
	wcost := t.Walk(prune, func(item rtree.Item) {
		r := item.Rect
		// Cheap accept: q inside (or touching) u(o) — the object can realize
		// a position arbitrarily close to q.
		if r.Contains(q) {
			out = append(out, uncertain.ID(item.ID))
			return
		}
		reach := r.MaxDist(q) // everything farther cannot matter
		var sc rtree.Cost
		scratch, sc = t.SearchWithCost(r.Expand(reach), scratch[:0])
		cost.Add(sc)
		cands := make([]geom.Rect, 0, len(scratch))
		for _, other := range scratch {
			if other.ID != item.ID {
				cands = append(cands, other.Rect)
			}
		}
		tester := domination.NewTester(cands, target, maxDepth)
		if !tester.RegionPrunable(r) {
			out = append(out, uncertain.ID(item.ID))
		}
	})
	cost.Add(wcost)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, cost
}
