package extquery

import (
	"fmt"
	"math/rand"
	"testing"

	"pvoronoi/internal/core"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// clusteredDB generates objects packed into Gaussian clusters, the adversarial
// layout for branch-and-bound pruning (deep overlap inside clusters, huge
// empty gaps between them).
func clusteredDB(rng *rand.Rand, n, d int, span, maxSide float64, instances int) *uncertain.DB {
	db := uncertain.NewDB(geom.UnitCube(d, span))
	k := 8
	centers := make([]geom.Point, k)
	for i := range centers {
		c := make(geom.Point, d)
		for j := range c {
			c[j] = span * (0.1 + 0.8*rng.Float64())
		}
		centers[i] = c
	}
	sigma := span / 25
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(k)]
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for j := 0; j < d; j++ {
			v := c[j] + rng.NormFloat64()*sigma
			if v < 0 {
				v = 0
			}
			if v > span-maxSide {
				v = span - maxSide
			}
			lo[j] = v
			hi[j] = v + 1 + rng.Float64()*(maxSide-1)
		}
		o := &uncertain.Object{ID: uncertain.ID(i), Region: geom.Rect{Lo: lo, Hi: hi}}
		if instances > 0 {
			o.Instances = uncertain.SampleInstances(o.Region, uncertain.PDFUniform, instances, rng)
		}
		_ = db.Add(o)
	}
	return db
}

func regionTreeOf(db *uncertain.DB) *rtree.Tree {
	return core.BuildRegionTree(db, 16) // small fanout: deeper trees, more pruning decisions
}

func idsEqual(a, b []uncertain.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// testDBs yields the randomized database mix the tree paths must match the
// scans on: uniform and clustered layouts, with and without pdf instances.
func testDBs(t *testing.T, seed int64, n, d int, span, maxSide float64) map[string]*uncertain.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return map[string]*uncertain.DB{
		"uniform":             randomDB(rng, n, d, span, maxSide, 0),
		"uniform+instances":   randomDB(rng, n, d, span, maxSide, 8),
		"clustered":           clusteredDB(rng, n, d, span, maxSide, 0),
		"clustered+instances": clusteredDB(rng, n, d, span, maxSide, 8),
	}
}

func TestGroupNNCandidatesTreeMatchesScan(t *testing.T) {
	for name, db := range testDBs(t, 101, 150, 2, 1000, 40) {
		tree := regionTreeOf(db)
		rng := rand.New(rand.NewSource(102))
		for iter := 0; iter < 40; iter++ {
			g := 1 + rng.Intn(4)
			qs := make([]geom.Point, g)
			for i := range qs {
				qs[i] = geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
			}
			for _, agg := range []Agg{AggSum, AggMax} {
				want := GroupNNCandidates(db, qs, agg)
				got, cost := GroupNNCandidatesTree(tree, qs, agg)
				if !idsEqual(got, want) {
					t.Fatalf("%s iter %d agg=%d: tree %v != scan %v", name, iter, agg, got, want)
				}
				if len(want) > 0 && cost.Leaves == 0 {
					t.Fatalf("%s: tree retrieval reported no leaf accesses", name)
				}
			}
		}
	}
}

func TestKNNCandidatesTreeMatchesScan(t *testing.T) {
	for name, db := range testDBs(t, 201, 150, 3, 1000, 40) {
		tree := regionTreeOf(db)
		rng := rand.New(rand.NewSource(202))
		for iter := 0; iter < 40; iter++ {
			q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
			for _, k := range []int{1, 2, 5, 16, 1000} {
				want := KNNCandidates(db, q, k)
				got, _ := KNNCandidatesTree(tree, q, k)
				if !idsEqual(got, want) {
					t.Fatalf("%s iter %d k=%d: tree %v != scan %v", name, iter, k, got, want)
				}
			}
		}
	}
}

func TestRNNCandidatesTreeMatchesScan(t *testing.T) {
	for name, db := range testDBs(t, 301, 120, 2, 1000, 35) {
		tree := regionTreeOf(db)
		rng := rand.New(rand.NewSource(302))
		for iter := 0; iter < 30; iter++ {
			q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
			for _, depth := range []int{0, 4, 10} {
				want := RNNCandidates(db, q, depth)
				got, _ := RNNCandidatesTree(tree, q, depth)
				if !idsEqual(got, want) {
					t.Fatalf("%s iter %d depth=%d: tree %v != scan %v", name, iter, depth, got, want)
				}
			}
		}
	}
}

// The tree RNN path must also stay a superset of the instance-level oracle.
func TestRNNCandidatesTreeCoverOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	db := randomDB(rng, 60, 2, 600, 30, 15)
	tree := regionTreeOf(db)
	for iter := 0; iter < 30; iter++ {
		q := geom.Point{rng.Float64() * 600, rng.Float64() * 600}
		got, _ := RNNCandidatesTree(tree, q, 10)
		cands := map[uncertain.ID]bool{}
		for _, id := range got {
			cands[id] = true
		}
		for _, id := range RNNBruteForce(db, q) {
			if !cands[id] {
				t.Fatalf("oracle RNN %d missing from tree candidates at %v", id, q)
			}
		}
	}
}

// The tree paths must keep matching the scans while the tree mutates —
// the serving pattern after inserts and deletes.
func TestTreeCandidatesAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	db := randomDB(rng, 100, 2, 800, 30, 0)
	tree := regionTreeOf(db)
	for round := 0; round < 5; round++ {
		// Remove a third of the objects, insert replacements.
		objs := append([]*uncertain.Object(nil), db.Objects()...)
		for i, o := range objs {
			if i%3 != round%3 {
				continue
			}
			if !tree.Delete(rtree.Item{Rect: o.Region, ID: uint32(o.ID)}) {
				t.Fatalf("round %d: delete of %d failed", round, o.ID)
			}
			if _, err := db.Remove(o.ID); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20; i++ {
			id := uncertain.ID(1000 + round*100 + i)
			lo := geom.Point{rng.Float64() * 770, rng.Float64() * 770}
			o := &uncertain.Object{ID: id, Region: geom.NewRect(lo, geom.Point{lo[0] + 5 + rng.Float64()*25, lo[1] + 5 + rng.Float64()*25})}
			if err := db.Add(o); err != nil {
				t.Fatal(err)
			}
			tree.Insert(rtree.Item{Rect: o.Region, ID: uint32(o.ID)})
		}
		q := geom.Point{rng.Float64() * 800, rng.Float64() * 800}
		qs := []geom.Point{q, {rng.Float64() * 800, rng.Float64() * 800}}
		if want := GroupNNCandidates(db, qs, AggSum); true {
			got, _ := GroupNNCandidatesTree(tree, qs, AggSum)
			if !idsEqual(got, want) {
				t.Fatalf("round %d groupnn: tree %v != scan %v", round, got, want)
			}
		}
		if want := KNNCandidates(db, q, 3); true {
			got, _ := KNNCandidatesTree(tree, q, 3)
			if !idsEqual(got, want) {
				t.Fatalf("round %d knn: tree %v != scan %v", round, got, want)
			}
		}
		if want := RNNCandidates(db, q, 10); true {
			got, _ := RNNCandidatesTree(tree, q, 10)
			if !idsEqual(got, want) {
				t.Fatalf("round %d rnn: tree %v != scan %v", round, got, want)
			}
		}
	}
}

func TestTreeCandidatesEmptyInputs(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	tree := regionTreeOf(db)
	if got, _ := GroupNNCandidatesTree(tree, []geom.Point{{1, 1}}, AggSum); got != nil {
		t.Fatal("empty tree should yield nil")
	}
	if got, _ := KNNCandidatesTree(tree, geom.Point{1, 1}, 3); got != nil {
		t.Fatal("empty tree should yield nil")
	}
	if got, _ := RNNCandidatesTree(tree, geom.Point{1, 1}, 10); got != nil {
		t.Fatal("empty tree should yield nil")
	}
	_ = db.Add(&uncertain.Object{ID: 1, Region: geom.NewRect(geom.Point{1, 1}, geom.Point{2, 2})})
	tree = regionTreeOf(db)
	if got, _ := GroupNNCandidatesTree(tree, nil, AggSum); got != nil {
		t.Fatal("empty group should yield nil")
	}
	if got, _ := KNNCandidatesTree(tree, geom.Point{1, 1}, 0); got != nil {
		t.Fatal("k=0 should yield nil")
	}
	if got, _ := GroupNNCandidatesTree(nil, []geom.Point{{1, 1}}, AggSum); got != nil {
		t.Fatal("nil tree should yield nil")
	}
}

// Sanity: at serving scale the tree path must beat the scan on touched work
// (pruned subtrees), which shows up as leaf accesses well below the leaf
// count of a full walk.
func TestTreeRetrievalPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	db := randomDB(rng, 2000, 2, 10000, 40, 0)
	tree := regionTreeOf(db)
	full, _ := tree.SearchWithCost(db.Domain, nil)
	if len(full) != 2000 {
		t.Fatalf("tree holds %d items", len(full))
	}
	_, fullCost := tree.SearchWithCost(db.Domain, nil)
	var worst rtree.Cost
	for iter := 0; iter < 20; iter++ {
		q := geom.Point{rng.Float64() * 10000, rng.Float64() * 10000}
		_, c1 := GroupNNCandidatesTree(tree, []geom.Point{q}, AggSum)
		_, c2 := KNNCandidatesTree(tree, q, 4)
		if c1.Leaves > worst.Leaves {
			worst = c1
		}
		if c2.Leaves > worst.Leaves {
			worst = c2
		}
	}
	if worst.Leaves*4 > fullCost.Leaves {
		t.Fatalf("branch-and-bound touched %d of %d leaves — no pruning", worst.Leaves, fullCost.Leaves)
	}
}

func BenchmarkGroupNNCandidates(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		rng := rand.New(rand.NewSource(1))
		db := randomDB(rng, n, 2, 10000, 40, 0)
		tree := regionTreeOf(db)
		qs := []geom.Point{{2500, 2500}, {2600, 2400}, {2550, 2700}}
		b.Run(fmt.Sprintf("scan-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GroupNNCandidates(db, qs, AggSum)
			}
		})
		b.Run(fmt.Sprintf("tree-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GroupNNCandidatesTree(tree, qs, AggSum)
			}
		})
	}
}
