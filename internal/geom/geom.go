// Package geom provides d-dimensional points, axis-parallel rectangles, and
// the distance primitives used throughout the PV-index: minimum and maximum
// Euclidean distances between points and rectangles, rectangle predicates,
// and volume computations.
//
// All structures use float64 coordinates. Dimensionality is dynamic (a slice
// length), matching the paper's evaluation over d ∈ {2,3,4,5}.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a d-dimensional point.
type Point []float64

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Dim returns the dimensionality of p.
func (p Point) Dim() int { return len(p) }

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 {
	return math.Sqrt(Dist2(p, q))
}

// Dist2 returns the squared Euclidean distance between p and q.
func Dist2(p, q Point) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// String renders p as "(x1, x2, ...)".
func (p Point) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Rect is a d-dimensional axis-parallel rectangle, given by its lower-left
// and upper-right corners. A valid Rect has Lo[i] <= Hi[i] for every i;
// degenerate (zero-extent) dimensions are allowed and represent points or
// lower-dimensional slabs.
type Rect struct {
	Lo, Hi Point
}

// NewRect returns a rectangle with the given corners. It panics if the
// corners disagree in dimensionality or are inverted; index construction
// depends on rectangles being well-formed.
func NewRect(lo, hi Point) Rect {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("geom: corner dimensionality mismatch %d vs %d", len(lo), len(hi)))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("geom: inverted rectangle in dimension %d: [%g, %g]", i, lo[i], hi[i]))
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// PointRect returns the degenerate rectangle containing exactly p.
func PointRect(p Point) Rect {
	return Rect{Lo: p.Clone(), Hi: p.Clone()}
}

// Dim returns the dimensionality of r.
func (r Rect) Dim() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// Equal reports whether r and s are the same rectangle.
func (r Rect) Equal(s Rect) bool {
	return r.Lo.Equal(s.Lo) && r.Hi.Equal(s.Hi)
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range r.Lo {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Side returns the extent of r in dimension j.
func (r Rect) Side(j int) float64 { return r.Hi[j] - r.Lo[j] }

// MaxSide returns the largest extent over all dimensions.
func (r Rect) MaxSide() float64 {
	var m float64
	for j := range r.Lo {
		if s := r.Side(j); s > m {
			m = s
		}
	}
	return m
}

// Volume returns the d-dimensional volume of r (area for d=2).
func (r Rect) Volume() float64 {
	v := 1.0
	for j := range r.Lo {
		v *= r.Side(j)
	}
	return v
}

// Margin returns the sum of the side lengths of r (the R*-tree "margin"
// criterion, up to the constant 2^(d-1) factor).
func (r Rect) Margin() float64 {
	var m float64
	for j := range r.Lo {
		m += r.Side(j)
	}
	return m
}

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	for i := range p {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point
// (touching boundaries count as intersection).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Hi[i] < s.Lo[i] || s.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// Intersection returns the rectangle common to r and s. The second return
// value is false when the rectangles are disjoint.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = math.Max(r.Lo[i], s.Lo[i])
		hi[i] = math.Min(r.Hi[i], s.Hi[i])
		if lo[i] > hi[i] {
			return Rect{}, false
		}
	}
	return Rect{Lo: lo, Hi: hi}, true
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = math.Min(r.Lo[i], s.Lo[i])
		hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// Expand grows r by delta on every side (clipping at nothing). Negative
// deltas shrink; the result collapses to the center when over-shrunk.
func (r Rect) Expand(delta float64) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = r.Lo[i] - delta
		hi[i] = r.Hi[i] + delta
		if lo[i] > hi[i] {
			c := (r.Lo[i] + r.Hi[i]) / 2
			lo[i], hi[i] = c, c
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// MinDist returns the minimum Euclidean distance from p to any point of r;
// zero when p is inside r. This is distmin(o, p) of the paper for a
// rectangular uncertainty region.
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDist2(p))
}

// MinDist2 returns the squared minimum distance from p to r. The planar
// case is unrolled: it is the innermost call of every R*-tree descent and
// of the adjacency expansion's per-neighbor keying, where the generic
// loop's bounds checks are measurable.
func (r Rect) MinDist2(p Point) float64 {
	if len(p) == 2 && len(r.Lo) == 2 && len(r.Hi) == 2 {
		d0 := axisMinDist(p[0], r.Lo[0], r.Hi[0])
		d1 := axisMinDist(p[1], r.Lo[1], r.Hi[1])
		return d0*d0 + d1*d1
	}
	var s float64
	for i := range p {
		d := axisMinDist(p[i], r.Lo[i], r.Hi[i])
		s += d * d
	}
	return s
}

// MaxDist returns the maximum Euclidean distance from p to any point of r,
// attained at the corner farthest from p. This is distmax(o, p) of the paper.
func (r Rect) MaxDist(p Point) float64 {
	return math.Sqrt(r.MaxDist2(p))
}

// MaxDist2 returns the squared maximum distance from p to r.
func (r Rect) MaxDist2(p Point) float64 {
	var s float64
	for i := range p {
		d := axisMaxDist(p[i], r.Lo[i], r.Hi[i])
		s += d * d
	}
	return s
}

// MinDistRect returns the minimum distance between any pair of points drawn
// from r and s (zero if the rectangles intersect).
func (r Rect) MinDistRect(s Rect) float64 {
	var sum float64
	for i := range r.Lo {
		var d float64
		switch {
		case s.Lo[i] > r.Hi[i]:
			d = s.Lo[i] - r.Hi[i]
		case r.Lo[i] > s.Hi[i]:
			d = r.Lo[i] - s.Hi[i]
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// MaxDistRect returns the maximum distance between any pair of points drawn
// from r and s.
func (r Rect) MaxDistRect(s Rect) float64 {
	var sum float64
	for i := range r.Lo {
		d := math.Max(s.Hi[i]-r.Lo[i], r.Hi[i]-s.Lo[i])
		sum += d * d
	}
	return math.Sqrt(sum)
}

// axisMinDist is the 1-D distance from x to the interval [lo, hi].
func axisMinDist(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo - x
	case x > hi:
		return x - hi
	default:
		return 0
	}
}

// axisMaxDist is the 1-D distance from x to the farther endpoint of [lo, hi].
func axisMaxDist(x, lo, hi float64) float64 {
	return math.Max(math.Abs(x-lo), math.Abs(x-hi))
}

// AxisMinDist2 returns the squared 1-D minimum distance from x to [lo, hi].
// Exported for the domination package's per-dimension decomposition.
func AxisMinDist2(x, lo, hi float64) float64 {
	d := axisMinDist(x, lo, hi)
	return d * d
}

// AxisMaxDist2 returns the squared 1-D maximum distance from x to [lo, hi].
func AxisMaxDist2(x, lo, hi float64) float64 {
	d := axisMaxDist(x, lo, hi)
	return d * d
}

// String renders r as "[lo; hi]".
func (r Rect) String() string {
	return "[" + r.Lo.String() + "; " + r.Hi.String() + "]"
}

// UnitCube returns the rectangle [0, side]^d.
func UnitCube(d int, side float64) Rect {
	lo := make(Point, d)
	hi := make(Point, d)
	for i := range hi {
		hi[i] = side
	}
	return Rect{Lo: lo, Hi: hi}
}
