package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := Dist(p, q); got != 5 {
		t.Errorf("Dist = %g, want 5", got)
	}
	if got := Dist2(p, q); got != 25 {
		t.Errorf("Dist2 = %g, want 25", got)
	}
	if got := Dist(p, p); got != 0 {
		t.Errorf("Dist(p,p) = %g, want 0", got)
	}
}

func TestPointEqualClone(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q[0] = 9
	if p.Equal(q) {
		t.Fatal("clone aliases original")
	}
	if p.Equal(Point{1, 2}) {
		t.Fatal("points of different dims compare equal")
	}
}

func TestNewRectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRect accepted inverted rectangle")
		}
	}()
	NewRect(Point{1, 1}, Point{0, 2})
}

func TestNewRectDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRect accepted mismatched dims")
		}
	}()
	NewRect(Point{1}, Point{2, 3})
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{4, 2})
	if got := r.Volume(); got != 8 {
		t.Errorf("Volume = %g, want 8", got)
	}
	if got := r.Margin(); got != 6 {
		t.Errorf("Margin = %g, want 6", got)
	}
	if got := r.MaxSide(); got != 4 {
		t.Errorf("MaxSide = %g, want 4", got)
	}
	if c := r.Center(); !c.Equal(Point{2, 1}) {
		t.Errorf("Center = %v, want (2,1)", c)
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{4, 2}) || !r.Contains(Point{2, 1}) {
		t.Error("Contains misses boundary or interior points")
	}
	if r.Contains(Point{4.001, 1}) {
		t.Error("Contains accepts outside point")
	}
}

func TestRectIntersection(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{4, 4})
	b := NewRect(Point{2, 2}, Point{6, 6})
	c := NewRect(Point{5, 5}, Point{7, 7})

	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a,b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a,c should not intersect")
	}
	got, ok := a.Intersection(b)
	if !ok || !got.Equal(NewRect(Point{2, 2}, Point{4, 4})) {
		t.Errorf("Intersection = %v, %v", got, ok)
	}
	if _, ok := a.Intersection(c); ok {
		t.Error("Intersection of disjoint rects should report false")
	}
	// Touching boundaries intersect with zero-volume overlap.
	d := NewRect(Point{4, 0}, Point{5, 4})
	if !a.Intersects(d) {
		t.Error("touching rects should intersect")
	}
	inter, ok := a.Intersection(d)
	if !ok || inter.Volume() != 0 {
		t.Errorf("touching intersection = %v, %v", inter, ok)
	}
}

func TestRectUnionContains(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{1, 1})
	b := NewRect(Point{3, -2}, Point{4, 0.5})
	u := a.Union(b)
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Errorf("Union %v does not contain operands", u)
	}
	if !u.Equal(NewRect(Point{0, -2}, Point{4, 1})) {
		t.Errorf("Union = %v", u)
	}
}

func TestMinMaxDist(t *testing.T) {
	r := NewRect(Point{1, 1}, Point{3, 3})
	cases := []struct {
		p        Point
		min, max float64
	}{
		{Point{2, 2}, 0, math.Sqrt(2)},               // center: max to any corner
		{Point{0, 2}, 1, math.Sqrt(9 + 1)},           // left of rect
		{Point{4, 4}, math.Sqrt(2), math.Sqrt(18)},   // beyond top-right corner
		{Point{1, 1}, 0, math.Sqrt(8)},               // on a corner
		{Point{2, 0}, 1, math.Sqrt(1 + 9)},           // below
		{Point{-1, -1}, math.Sqrt(8), math.Sqrt(32)}, // far corner
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.min) > 1e-12 {
			t.Errorf("MinDist(%v) = %g, want %g", c.p, got, c.min)
		}
		if got := r.MaxDist(c.p); math.Abs(got-c.max) > 1e-12 {
			t.Errorf("MaxDist(%v) = %g, want %g", c.p, got, c.max)
		}
	}
}

func TestRectRectDistances(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{1, 1})
	b := NewRect(Point{3, 0}, Point{4, 1})
	if got := a.MinDistRect(b); got != 2 {
		t.Errorf("MinDistRect = %g, want 2", got)
	}
	if got := a.MaxDistRect(b); math.Abs(got-math.Sqrt(16+1)) > 1e-12 {
		t.Errorf("MaxDistRect = %g, want sqrt(17)", got)
	}
	if got := a.MinDistRect(a); got != 0 {
		t.Errorf("MinDistRect(self) = %g, want 0", got)
	}
}

func TestExpand(t *testing.T) {
	r := NewRect(Point{2, 2}, Point{4, 4})
	e := r.Expand(1)
	if !e.Equal(NewRect(Point{1, 1}, Point{5, 5})) {
		t.Errorf("Expand(1) = %v", e)
	}
	s := r.Expand(-2) // over-shrunk: collapses to center
	if !s.Equal(NewRect(Point{3, 3}, Point{3, 3})) {
		t.Errorf("Expand(-2) = %v", s)
	}
}

func TestUnitCube(t *testing.T) {
	c := UnitCube(3, 10)
	if c.Dim() != 3 || c.Volume() != 1000 {
		t.Errorf("UnitCube = %v", c)
	}
}

// randRect builds a valid random rectangle inside [-100,100]^d.
func randRect(rng *rand.Rand, d int) Rect {
	lo := make(Point, d)
	hi := make(Point, d)
	for i := 0; i < d; i++ {
		a := rng.Float64()*200 - 100
		b := rng.Float64()*200 - 100
		lo[i] = math.Min(a, b)
		hi[i] = math.Max(a, b)
	}
	return Rect{Lo: lo, Hi: hi}
}

func randPoint(rng *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = rng.Float64()*200 - 100
	}
	return p
}

// randPointIn samples a point uniformly inside r.
func randPointIn(rng *rand.Rand, r Rect) Point {
	p := make(Point, r.Dim())
	for i := range p {
		p[i] = r.Lo[i] + rng.Float64()*(r.Hi[i]-r.Lo[i])
	}
	return p
}

// Property: for any point s inside rect r and external point p,
// MinDist(p) <= Dist(s,p) <= MaxDist(p).
func TestMinMaxDistSandwichProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for d := 1; d <= 5; d++ {
		for iter := 0; iter < 300; iter++ {
			r := randRect(rng, d)
			p := randPoint(rng, d)
			s := randPointIn(rng, r)
			dist := Dist(s, p)
			if min := r.MinDist(p); dist < min-1e-9 {
				t.Fatalf("d=%d: interior point closer (%g) than MinDist (%g)", d, dist, min)
			}
			if max := r.MaxDist(p); dist > max+1e-9 {
				t.Fatalf("d=%d: interior point farther (%g) than MaxDist (%g)", d, dist, max)
			}
		}
	}
}

// Property: MaxDist is attained at one of the 2^d corners.
func TestMaxDistAttainedAtCorner(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		d := 2 + rng.Intn(3)
		r := randRect(rng, d)
		p := randPoint(rng, d)
		want := r.MaxDist(p)
		best := 0.0
		corners := 1 << d
		for mask := 0; mask < corners; mask++ {
			c := make(Point, d)
			for i := 0; i < d; i++ {
				if mask&(1<<i) != 0 {
					c[i] = r.Hi[i]
				} else {
					c[i] = r.Lo[i]
				}
			}
			if dist := Dist(c, p); dist > best {
				best = dist
			}
		}
		if math.Abs(best-want) > 1e-9 {
			t.Fatalf("MaxDist = %g but best corner = %g", want, best)
		}
	}
}

// Property (testing/quick): union always contains both operands, and
// intersection (when it exists) is contained in both.
func TestUnionIntersectionQuick(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 1000) }
		a := NewRect(
			Point{math.Min(norm(ax), norm(bx)), math.Min(norm(ay), norm(by))},
			Point{math.Max(norm(ax), norm(bx)), math.Max(norm(ay), norm(by))},
		)
		b := NewRect(
			Point{math.Min(norm(cx), norm(dx)), math.Min(norm(cy), norm(dy))},
			Point{math.Max(norm(cx), norm(dx)), math.Max(norm(cy), norm(dy))},
		)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			return false
		}
		if inter, ok := a.Intersection(b); ok {
			if !a.ContainsRect(inter) || !b.ContainsRect(inter) {
				return false
			}
			if !a.Intersects(b) {
				return false
			}
		} else if a.Intersects(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: MinDistRect(a,b) <= Dist(x,y) <= MaxDistRect(a,b) for x in a, y in b.
func TestRectRectSandwichProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 300; iter++ {
		d := 1 + rng.Intn(4)
		a := randRect(rng, d)
		b := randRect(rng, d)
		x := randPointIn(rng, a)
		y := randPointIn(rng, b)
		dist := Dist(x, y)
		if min := a.MinDistRect(b); dist < min-1e-9 {
			t.Fatalf("pair dist %g < MinDistRect %g", dist, min)
		}
		if max := a.MaxDistRect(b); dist > max+1e-9 {
			t.Fatalf("pair dist %g > MaxDistRect %g", dist, max)
		}
	}
}

func BenchmarkMinDist2(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := randRect(rng, 4)
	p := randPoint(rng, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.MinDist2(p)
	}
}
