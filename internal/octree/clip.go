package octree

import "pvoronoi/internal/geom"

// ClipUBR tightens a UBR against the tree's leaf cells: it returns the
// bounding box of cell∩ubr over every leaf cell intersecting ubr that the
// caller's prunable test cannot exclude, plus the number of leaf pieces
// tested. prunable(r) must be conservative — true only when r provably
// contains no point of the possible Voronoi cell the UBR bounds (pvindex
// passes a refinement tester's RegionPrunable).
//
// Soundness: any point x of V(o) lies in ubr (the UBR is a superset of the
// cell) and in exactly one leaf cell c, so x ∈ c∩ubr; a conservative
// prunable can never report a region containing a cell point, so c∩ubr
// survives and x lies inside the returned box. Hence the clipped rectangle
// still contains V(o). Slab bisection can only discard axis-aligned slabs of
// the full UBR cross-section; the cell walk discards any leaf-sized corner
// piece independently, so the clip can cut where bisection cannot.
//
// The walk reads only the in-memory node skeleton (cell geometry), never a
// leaf page: its cost is bounded by the node count overlapping ubr, not by
// entry I/O. Two pure-geometry short-cuts keep the prunable budget small: a
// subtree whose cell already lies inside the accumulated box cannot extend
// it, and a surviving piece inside the box needs no test.
func (t *Tree) ClipUBR(ubr geom.Rect, prunable func(geom.Rect) bool) (geom.Rect, int) {
	var box geom.Rect
	have := false
	cells := 0
	var walk func(n *node, region geom.Rect)
	walk = func(n *node, region geom.Rect) {
		piece, ok := region.Intersection(ubr)
		if !ok {
			return
		}
		if have && box.ContainsRect(piece) {
			return // cannot extend the accumulated box; skip the subtree
		}
		if n.children != nil {
			for mask, c := range n.children {
				walk(c, childRegion(region, mask))
			}
			return
		}
		cells++
		if prunable(piece) {
			return
		}
		if !have {
			box = piece.Clone()
			have = true
			return
		}
		box = box.Union(piece)
	}
	walk(t.root, t.domain)
	if !have {
		// Every piece was excluded — possible only if the UBR contains no
		// cell point at all, which a sound caller never produces. Keep the
		// input rather than fabricate an empty rectangle.
		return ubr, cells
	}
	return box, cells
}
