package octree

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
)

// TestClipUBRNeverPrunable checks the identity-ish case: with a prunable
// that can exclude nothing, the clip returns the bounding box of all leaf
// pieces intersecting the UBR — which covers the UBR itself whenever the
// UBR lies inside the domain — and reports at least one tested cell.
func TestClipUBRNeverPrunable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ti := newTestIndex(t, 2, 1000, 512, 1<<20)
	for i := uint32(0); i < 200; i++ {
		u := randSubRect(rng, 1000, 20, 2)
		ti.insert(t, i, u, u.Expand(rng.Float64()*40))
	}
	for iter := 0; iter < 50; iter++ {
		ubr := randSubRect(rng, 1000, 120, 2)
		got, cells := ti.tree.ClipUBR(ubr, func(geom.Rect) bool { return false })
		if cells < 1 {
			t.Fatalf("clip walked %d cells, want >= 1", cells)
		}
		if !got.ContainsRect(ubr) {
			t.Fatalf("never-prunable clip shrank the UBR: %v -> %v", ubr, got)
		}
	}
}

// TestClipUBRShrinksToKeptCells checks the clip's payoff: with a tester
// that proves everything away from a small kept rectangle prunable, the
// returned box collapses to the leaf cells covering that rectangle — far
// inside the input UBR — while still containing every kept point. The kept
// box sits off-center so the shrink must cut asymmetric corners, and the
// dense inserts force leaf splits fine enough for a real reduction.
func TestClipUBRShrinksToKeptCells(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ti := newTestIndex(t, 2, 1024, 256, 1<<20)
	for i := uint32(0); i < 600; i++ {
		u := randSubRect(rng, 1024, 8, 2)
		ti.insert(t, i, u, u.Expand(2))
	}
	ubr := geom.NewRect(geom.Point{0, 0}, geom.Point{1024, 1024})
	keep := geom.NewRect(geom.Point{96, 640}, geom.Point{160, 720})
	// Conservative for "V(o) ⊆ keep": prunable only when r misses keep.
	prunable := func(r geom.Rect) bool { return !r.Intersects(keep) }
	got, cells := ti.tree.ClipUBR(ubr, prunable)
	if cells < 4 {
		t.Fatalf("clip walked only %d cells; tree did not split", cells)
	}
	if !got.ContainsRect(keep) {
		t.Fatalf("clipped box %v lost the kept region %v", got, keep)
	}
	if got.Volume() >= ubr.Volume()/2 {
		t.Fatalf("clip failed to shrink: %v (vol %.0f) from %v (vol %.0f)",
			got, got.Volume(), ubr, ubr.Volume())
	}
}

// TestClipUBRAllPrunedFallsBack checks the defensive fallback: a prunable
// that (unsoundly) rejects everything must yield the input UBR unchanged
// rather than an empty rectangle.
func TestClipUBRAllPrunedFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ti := newTestIndex(t, 2, 1000, 512, 1<<20)
	for i := uint32(0); i < 50; i++ {
		u := randSubRect(rng, 1000, 20, 2)
		ti.insert(t, i, u, u)
	}
	ubr := randSubRect(rng, 1000, 100, 2)
	got, cells := ti.tree.ClipUBR(ubr, func(geom.Rect) bool { return true })
	if cells < 1 {
		t.Fatalf("clip walked %d cells, want >= 1", cells)
	}
	if !got.Equal(ubr) {
		t.Fatalf("all-pruned clip fabricated %v from %v", got, ubr)
	}
}
