package octree

import (
	"math/rand"
	"sort"
	"testing"

	"pvoronoi/internal/pagestore"
)

func queryIDs(t *testing.T, tree *Tree, q []float64) []uint32 {
	t.Helper()
	entries, err := tree.PointQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint32, len(entries))
	for i, e := range entries {
		ids[i] = e.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestCloneCOWIsolation churns a COW clone (inserts, removals, splits,
// chain rewrites) and checks the sealed original answers every point query
// exactly as before: shadow paging must never rewrite a page the original
// references, and deferred frees must keep those pages alive.
func TestCloneCOWIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	ti := newTestIndex(t, 2, 1000, 256, 1<<20)
	for i := 0; i < 120; i++ {
		r := randSubRect(rng, 1000, 40, 2)
		ti.insert(t, uint32(i), r, r)
	}

	// Record the original's answers at probe points.
	probes := make([][]float64, 60)
	want := make([][]uint32, len(probes))
	for i := range probes {
		probes[i] = []float64{rng.Float64() * 1000, rng.Float64() * 1000}
		want[i] = queryIDs(t, ti.tree, probes[i])
	}
	liveBefore := ti.tree.store.Live()

	var freed []pagestore.PageID
	clone := ti.tree.CloneCOW(nil, &freed)
	for i := 0; i < 80; i++ {
		r := randSubRect(rng, 1000, 40, 2)
		ti.ubrs[uint32(5000+i)] = r
		if err := clone.Insert(uint32(5000+i), r, r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		if _, err := clone.Remove(uint32(i), ti.ubrs[uint32(i)]); err != nil {
			t.Fatal(err)
		}
	}
	if err := clone.Validate(); err != nil {
		t.Fatalf("clone validate: %v", err)
	}

	// The sealed original still answers identically — no page it references
	// was touched or freed.
	for i, q := range probes {
		got := queryIDs(t, ti.tree, q)
		if len(got) != len(want[i]) {
			t.Fatalf("probe %d: original changed: %v -> %v", i, want[i], got)
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("probe %d: original changed: %v -> %v", i, want[i], got)
			}
		}
	}
	if err := ti.tree.Validate(); err != nil {
		t.Fatalf("original validate after clone churn: %v", err)
	}

	// Reclaim: freeing the deferred pages keeps the clone intact (they are
	// exclusively the original's) and returns the store near its pre-churn
	// footprint once the original's share is dropped.
	if len(freed) == 0 {
		t.Fatal("clone churn deferred no frees — COW shadowing did not engage")
	}
	for _, p := range freed {
		if err := ti.tree.store.Free(p); err != nil {
			t.Fatalf("freeing deferred page %d: %v", p, err)
		}
	}
	if err := clone.Validate(); err != nil {
		t.Fatalf("clone validate after reclaim: %v", err)
	}
	if live := ti.tree.store.Live(); live > liveBefore+3*len(freed) {
		t.Fatalf("store grew unexpectedly: %d -> %d live pages", liveBefore, live)
	}
}

// TestCloneCOWAbort verifies AbortCOW returns every session page to the
// store: after an aborted clone the live-page count is back to the
// original's footprint.
func TestCloneCOWAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	ti := newTestIndex(t, 2, 1000, 256, 1<<20)
	for i := 0; i < 80; i++ {
		r := randSubRect(rng, 1000, 40, 2)
		ti.insert(t, uint32(i), r, r)
	}
	liveBefore := ti.tree.store.Live()

	var freed []pagestore.PageID
	clone := ti.tree.CloneCOW(nil, &freed)
	for i := 0; i < 50; i++ {
		r := randSubRect(rng, 1000, 40, 2)
		ti.ubrs[uint32(7000+i)] = r
		if err := clone.Insert(uint32(7000+i), r, r); err != nil {
			t.Fatal(err)
		}
	}
	clone.AbortCOW()
	if live := ti.tree.store.Live(); live != liveBefore {
		t.Fatalf("abort leaked pages: %d live, want %d", live, liveBefore)
	}
	if err := ti.tree.Validate(); err != nil {
		t.Fatalf("original validate after abort: %v", err)
	}
}
