package octree

import (
	"fmt"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/pagestore"
)

// NodeImage is one serialized octree node. Children holds indices into the
// flattened node list (nil/empty for leaves).
type NodeImage struct {
	Children  []int32
	FirstPage uint32
	Pages     int32
	Depth     int32
}

// Image is the serializable state of a Tree (leaf pages live in the page
// store and are captured by its image).
type Image struct {
	DomainLo, DomainHi []float64
	Nodes              []NodeImage // index 0 is the root
	MemBudget          int
	MemUsed            int
	MaxDepth           int
	Size               int
	SplitCount         int
}

// Image captures the tree's structure.
func (t *Tree) Image() *Image {
	img := &Image{
		DomainLo:   t.domain.Lo,
		DomainHi:   t.domain.Hi,
		MemBudget:  t.memBudget,
		MemUsed:    t.memUsed,
		MaxDepth:   t.maxDepth,
		Size:       t.size,
		SplitCount: t.SplitCount,
	}
	var flatten func(n *node) int32
	flatten = func(n *node) int32 {
		idx := int32(len(img.Nodes))
		img.Nodes = append(img.Nodes, NodeImage{
			FirstPage: uint32(n.firstPage),
			Pages:     int32(n.pages),
			Depth:     int32(n.depth),
		})
		if n.children != nil {
			children := make([]int32, len(n.children))
			for i, c := range n.children {
				children[i] = flatten(c)
			}
			img.Nodes[idx].Children = children
		}
		return idx
	}
	flatten(t.root)
	return img
}

// FromImage reconstructs a tree over a restored store. The lookup callback
// must be re-supplied (closures do not serialize).
func FromImage(store *pagestore.Store, lookup UBRLookup, img *Image) (*Tree, error) {
	if len(img.Nodes) == 0 {
		return nil, fmt.Errorf("octree: empty node list in image")
	}
	domain := geom.Rect{Lo: img.DomainLo, Hi: img.DomainHi}
	t := &Tree{
		domain:     domain,
		dim:        domain.Dim(),
		store:      store,
		lookup:     lookup,
		memBudget:  img.MemBudget,
		memUsed:    img.MemUsed,
		maxDepth:   img.MaxDepth,
		size:       img.Size,
		SplitCount: img.SplitCount,
		sess:       pagestore.NewFullSession(store),
	}
	fan := 1 << t.dim
	var build func(idx int32) (*node, error)
	build = func(idx int32) (*node, error) {
		if idx < 0 || int(idx) >= len(img.Nodes) {
			return nil, fmt.Errorf("octree: node index %d out of range", idx)
		}
		ni := img.Nodes[idx]
		n := &node{
			owner:     t.sess,
			firstPage: pagestore.PageID(ni.FirstPage),
			pages:     int(ni.Pages),
			depth:     int(ni.Depth),
		}
		if len(ni.Children) > 0 {
			if len(ni.Children) != fan {
				return nil, fmt.Errorf("octree: node %d has %d children, want %d", idx, len(ni.Children), fan)
			}
			n.children = make([]*node, fan)
			for i, ci := range ni.Children {
				c, err := build(ci)
				if err != nil {
					return nil, err
				}
				n.children[i] = c
			}
		}
		return n, nil
	}
	root, err := build(0)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}
