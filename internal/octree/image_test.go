package octree

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/pagestore"
)

func TestImageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ti := newTestIndex(t, 2, 1000, 256, 1<<20)
	for i := uint32(0); i < 300; i++ {
		u := randSubRect(rng, 1000, 15, 2)
		ti.insert(t, i, u, u.Expand(20))
	}
	img := ti.tree.Image()
	// Restore over a copy of the store.
	store2, err := pagestore.FromImage(ti.tree.store.Image())
	if err != nil {
		t.Fatal(err)
	}
	tree2, err := FromImage(store2, ti.tree.lookup, img)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Size() != ti.tree.Size() || tree2.MemUsed() != ti.tree.MemUsed() {
		t.Fatalf("size/mem mismatch: %d/%d vs %d/%d",
			tree2.Size(), tree2.MemUsed(), ti.tree.Size(), ti.tree.MemUsed())
	}
	s1, s2 := ti.tree.TreeStats(), tree2.TreeStats()
	if s1 != s2 {
		t.Fatalf("tree stats diverge: %+v vs %+v", s1, s2)
	}
	for iter := 0; iter < 100; iter++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		a, err := ti.tree.PointQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tree2.PointQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("q=%v: %d vs %d entries", q, len(a), len(b))
		}
	}
}

func TestFromImageRejectsCorruptStructures(t *testing.T) {
	store := pagestore.New(256)
	if _, err := FromImage(store, nil, &Image{DomainLo: []float64{0, 0}, DomainHi: []float64{1, 1}}); err == nil {
		t.Fatal("empty node list accepted")
	}
	// Child index out of range.
	img := &Image{
		DomainLo: []float64{0, 0},
		DomainHi: []float64{1, 1},
		Nodes: []NodeImage{
			{Children: []int32{1, 2, 3, 99}},
			{}, {}, {},
		},
	}
	if _, err := FromImage(store, nil, img); err == nil {
		t.Fatal("out-of-range child index accepted")
	}
	// Wrong child count for the dimensionality.
	img2 := &Image{
		DomainLo: []float64{0, 0},
		DomainHi: []float64{1, 1},
		Nodes: []NodeImage{
			{Children: []int32{1, 2}},
			{}, {},
		},
	}
	if _, err := FromImage(store, nil, img2); err == nil {
		t.Fatal("wrong fanout accepted")
	}
}
