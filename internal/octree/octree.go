// Package octree implements the PV-index's primary index (§VI-A of the
// paper): a space-partitioning octree (quadtree at d=2) whose non-leaf nodes
// live in a bounded main-memory budget and whose leaf nodes are linked lists
// of disk pages holding (object ID, uncertainty region) entries.
//
// A leaf stores the objects whose UBRs overlap its cell. Point queries
// descend purely in memory and read exactly one leaf's page chain — the
// property that gives the PV-index its I/O advantage over the R-tree
// (Figs. 9(c), 9(g)). When a leaf overflows, it splits into 2^d children if
// the memory budget allows, otherwise it grows its page chain.
package octree

import (
	"encoding/binary"
	"fmt"
	"math"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/pagestore"
)

// Entry is one leaf record: an object ID and its uncertainty region u(o).
type Entry struct {
	ID     uint32
	Region geom.Rect
}

// UBRLookup resolves an object's UBR during leaf splits (the UBR determines
// which child cells an entry belongs to; it is stored in the secondary
// index, not in the leaf). Returning ok=false makes the split conservative:
// the entry is copied to every child.
type UBRLookup func(id uint32) (geom.Rect, bool)

// Tree is the primary index. Not safe for concurrent mutation, but a sealed
// handle may be read concurrently while a CloneCOW descendant is mutated:
// mutations never touch shared nodes or rewrite shared pages in place.
type Tree struct {
	domain    geom.Rect
	dim       int
	store     *pagestore.Store
	lookup    UBRLookup
	root      *node
	memBudget int // bytes available for non-leaf structure
	memUsed   int
	maxDepth  int
	size      int // total entry copies across leaves
	sess      *pagestore.COWSession

	// SplitCount tallies leaf splits, for construction statistics.
	SplitCount int
}

type node struct {
	owner     *pagestore.COWSession
	children  []*node // nil ⇒ leaf
	firstPage pagestore.PageID
	pages     int // length of the page chain
	depth     int
}

// nodeBytes estimates the main-memory cost of one non-leaf conversion:
// the children pointer array plus per-child node headers.
func nodeBytes(dim int) int {
	fan := 1 << dim
	return fan*8 + fan*40
}

// Config bundles construction parameters.
type Config struct {
	Domain geom.Rect
	Store  *pagestore.Store
	Lookup UBRLookup
	// MemBudget is the main-memory allowance for non-leaf nodes in bytes
	// (paper default 5 MB).
	MemBudget int
	// MaxDepth caps subdivision (guards against degenerate splits).
	MaxDepth int
}

// New creates an empty octree.
func New(cfg Config) (*Tree, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("octree: nil page store")
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 24
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 5 << 20
	}
	t := &Tree{
		domain:    cfg.Domain,
		dim:       cfg.Domain.Dim(),
		store:     cfg.Store,
		lookup:    cfg.Lookup,
		memBudget: cfg.MemBudget,
		maxDepth:  cfg.MaxDepth,
		sess:      pagestore.NewFullSession(cfg.Store),
	}
	p, err := t.allocPage()
	if err != nil {
		return nil, err
	}
	if err := t.writeLeafPage(p, 0, nil); err != nil {
		return nil, err
	}
	t.root = &node{owner: t.sess, firstPage: p, pages: 1}
	return t, nil
}

// CloneCOW returns a mutable copy-on-write descendant of t that initially
// shares every node and leaf page. Mutations path-copy touched nodes and
// shadow-write touched pages (allocating fresh page IDs), appending each
// shared page they stop referencing to freed — the caller frees those once
// no reader of an older version remains. lookup, if non-nil, replaces the
// UBR resolver so splits in the clone read through the writer's view.
// The original handle is sealed by convention and stays safe for
// concurrent readers.
func (t *Tree) CloneCOW(lookup UBRLookup, freed *[]pagestore.PageID) *Tree {
	c := *t
	c.sess = pagestore.NewCOWSession(t.store, freed)
	if lookup != nil {
		c.lookup = lookup
	}
	return &c
}

// AbortCOW releases every page this session allocated (none of them are
// visible to any published version) and forgets its deferred frees. The
// handle must not be used afterwards.
func (t *Tree) AbortCOW() { t.sess.Abort() }

// allocPage reserves a page through the session (ownership recorded).
func (t *Tree) allocPage() (pagestore.PageID, error) { return t.sess.Alloc() }

// pageOwned reports whether the session may rewrite the page in place.
func (t *Tree) pageOwned(id pagestore.PageID) bool { return t.sess.Owned(id) }

// freePage releases a page the tree stops referencing: immediately when the
// session owns it, deferred to the session's freed list otherwise.
func (t *Tree) freePage(id pagestore.PageID) error { return t.sess.Free(id) }

// ownedNode returns n if the session owns it, otherwise a session-owned copy
// (children slice cloned, page references shared). The caller must store the
// returned pointer back into the parent.
func (t *Tree) ownedNode(n *node) *node {
	if n.owner == t.sess {
		return n
	}
	c := &node{owner: t.sess, firstPage: n.firstPage, pages: n.pages, depth: n.depth}
	if n.children != nil {
		c.children = append(make([]*node, 0, len(n.children)), n.children...)
	}
	return c
}

// entrySize is the on-page footprint of one entry.
func (t *Tree) entrySize() int { return 4 + 16*t.dim }

// perPage is how many entries fit in one leaf page.
func (t *Tree) perPage() int {
	return (t.store.PageSize() - 8) / t.entrySize()
}

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Domain returns the indexed domain.
func (t *Tree) Domain() geom.Rect { return t.domain }

// Size returns the total number of entry copies across all leaves.
func (t *Tree) Size() int { return t.size }

// MemUsed returns the bytes of main memory consumed by non-leaf structure.
func (t *Tree) MemUsed() int { return t.memUsed }

// --- page encoding -------------------------------------------------------

// Leaf page layout: next PageID uint32 | count uint32 | entries...
// Entry layout: id uint32 | lo [d]float64 | hi [d]float64.

func (t *Tree) writeLeafPage(id pagestore.PageID, next pagestore.PageID, entries []Entry) error {
	if len(entries) > t.perPage() {
		return fmt.Errorf("octree: %d entries exceed page capacity %d", len(entries), t.perPage())
	}
	scratch := t.store.AcquirePage()
	defer t.store.ReleasePage(scratch)
	buf := (*scratch)[:8+len(entries)*t.entrySize()]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(next))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(entries)))
	off := 8
	for _, e := range entries {
		binary.LittleEndian.PutUint32(buf[off:], e.ID)
		off += 4
		for j := 0; j < t.dim; j++ {
			binary.LittleEndian.PutUint64(buf[off:], floatBits(e.Region.Lo[j]))
			off += 8
		}
		for j := 0; j < t.dim; j++ {
			binary.LittleEndian.PutUint64(buf[off:], floatBits(e.Region.Hi[j]))
			off += 8
		}
	}
	return t.store.Write(id, buf)
}

// decodeLeafPage parses an encoded leaf page, appending its entries to dst
// and returning the chained next-page ID. Spare capacity in dst is reused —
// including each recycled Entry's coordinate slices — so steady-state decode
// into a pooled scratch slice performs no allocation. Callers that retain
// the entries past the scratch's lifetime must deep-copy the regions.
func (t *Tree) decodeLeafPage(buf []byte, dst []Entry) (next pagestore.PageID, out []Entry) {
	next = pagestore.PageID(binary.LittleEndian.Uint32(buf[0:4]))
	n := int(binary.LittleEndian.Uint32(buf[4:8]))
	off := 8
	for i := 0; i < n; i++ {
		if len(dst) < cap(dst) {
			dst = dst[:len(dst)+1]
		} else {
			dst = append(dst, Entry{})
		}
		e := &dst[len(dst)-1]
		e.ID = binary.LittleEndian.Uint32(buf[off:])
		off += 4
		if cap(e.Region.Lo) >= t.dim {
			e.Region.Lo = e.Region.Lo[:t.dim]
		} else {
			e.Region.Lo = make(geom.Point, t.dim)
		}
		if cap(e.Region.Hi) >= t.dim {
			e.Region.Hi = e.Region.Hi[:t.dim]
		} else {
			e.Region.Hi = make(geom.Point, t.dim)
		}
		for j := 0; j < t.dim; j++ {
			e.Region.Lo[j] = bitsFloat(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		for j := 0; j < t.dim; j++ {
			e.Region.Hi[j] = bitsFloat(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return next, dst
}

// readLeafPage decodes a leaf page via a borrowed view: decodeLeafPage
// copies every field out of the page, so nothing aliases slab memory after
// it returns and the borrow never outlives the call.
func (t *Tree) readLeafPage(id pagestore.PageID) (next pagestore.PageID, entries []Entry, err error) {
	buf, err := t.store.View(id)
	if err != nil {
		return 0, nil, err
	}
	next, entries = t.decodeLeafPage(buf, nil)
	return next, entries, nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// --- cell geometry -------------------------------------------------------

// childRegion returns the sub-cell of region for child index mask (bit j set
// means the upper half in dimension j).
func childRegion(region geom.Rect, mask int) geom.Rect {
	lo := region.Lo.Clone()
	hi := region.Hi.Clone()
	for j := 0; j < region.Dim(); j++ {
		mid := (region.Lo[j] + region.Hi[j]) / 2
		if mask&(1<<j) != 0 {
			lo[j] = mid
		} else {
			hi[j] = mid
		}
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// --- operations ----------------------------------------------------------

// Insert adds an entry for object id with uncertainty region u to every leaf
// whose cell intersects ubr.
func (t *Tree) Insert(id uint32, u geom.Rect, ubr geom.Rect) error {
	if !t.domain.Intersects(ubr) {
		return nil
	}
	t.root = t.ownedNode(t.root)
	return t.insert(t.root, t.domain, Entry{ID: id, Region: u}, ubr)
}

// InsertDiff adds the entry only to leaves whose cells intersect newUBR but
// not oldUBR — the N′−N leaf set of the paper's incremental deletion Step 4.
func (t *Tree) InsertDiff(id uint32, u geom.Rect, newUBR, oldUBR geom.Rect) error {
	if !t.domain.Intersects(newUBR) {
		return nil
	}
	t.root = t.ownedNode(t.root)
	return t.insertDiff(t.root, t.domain, Entry{ID: id, Region: u}, newUBR, oldUBR)
}

// insert descends into the cells intersecting ubr. n is session-owned;
// children are path-copied before descent so shared subtrees never mutate.
func (t *Tree) insert(n *node, region geom.Rect, e Entry, ubr geom.Rect) error {
	if n.children == nil {
		return t.leafInsert(n, region, e)
	}
	for mask := range n.children {
		cr := childRegion(region, mask)
		if !cr.Intersects(ubr) {
			continue
		}
		c := t.ownedNode(n.children[mask])
		n.children[mask] = c
		if err := t.insert(c, cr, e, ubr); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) insertDiff(n *node, region geom.Rect, e Entry, newUBR, oldUBR geom.Rect) error {
	if n.children == nil {
		if region.Intersects(oldUBR) {
			return nil // leaf already holds the entry
		}
		return t.leafInsert(n, region, e)
	}
	for mask := range n.children {
		cr := childRegion(region, mask)
		if !cr.Intersects(newUBR) {
			continue
		}
		c := t.ownedNode(n.children[mask])
		n.children[mask] = c
		if err := t.insertDiff(c, cr, e, newUBR, oldUBR); err != nil {
			return err
		}
	}
	return nil
}

// leafInsert places e into leaf n (cell = region), splitting or chaining on
// overflow per the paper's construction Step 3. n is session-owned; a head
// page shared with an older version is shadow-copied (fresh page ID, old ID
// deferred to the freed list) rather than rewritten in place.
func (t *Tree) leafInsert(n *node, region geom.Rect, e Entry) error {
	next, entries, err := t.readLeafPage(n.firstPage)
	if err != nil {
		return err
	}
	if len(entries) < t.perPage() {
		entries = append(entries, e)
		target := n.firstPage
		if !t.pageOwned(target) {
			p, err := t.allocPage()
			if err != nil {
				return err
			}
			if err := t.freePage(target); err != nil {
				return err
			}
			n.firstPage = p
			target = p
		}
		if err := t.writeLeafPage(target, next, entries); err != nil {
			return err
		}
		t.size++
		return nil
	}
	// Head page full. Split if memory allows; otherwise chain a new page.
	// The new head points at the old chain, which stays untouched — no
	// shadow copy needed.
	canSplit := n.depth < t.maxDepth && t.memUsed+nodeBytes(t.dim) <= t.memBudget
	if !canSplit {
		p, err := t.allocPage()
		if err != nil {
			return err
		}
		if err := t.writeLeafPage(p, n.firstPage, []Entry{e}); err != nil {
			return err
		}
		n.firstPage = p
		n.pages++
		t.size++
		return nil
	}
	return t.splitLeaf(n, region, e)
}

// splitLeaf converts leaf n into an internal node with 2^d leaf children and
// redistributes its entries (plus the pending entry e) by UBR overlap.
func (t *Tree) splitLeaf(n *node, region geom.Rect, e Entry) error {
	all, err := t.drainLeaf(n)
	if err != nil {
		return err
	}
	all = append(all, e)

	fan := 1 << t.dim
	n.children = make([]*node, fan)
	for mask := 0; mask < fan; mask++ {
		p, err := t.allocPage()
		if err != nil {
			return err
		}
		if err := t.writeLeafPage(p, 0, nil); err != nil {
			return err
		}
		n.children[mask] = &node{owner: t.sess, firstPage: p, pages: 1, depth: n.depth + 1}
	}
	n.firstPage = 0
	n.pages = 0
	t.memUsed += nodeBytes(t.dim)
	t.SplitCount++

	for _, entry := range all {
		// Redistribute by the entry's UBR; fall back to every child when
		// the UBR is unknown (conservative, never loses query answers).
		var ubr geom.Rect
		ok := false
		if t.lookup != nil {
			ubr, ok = t.lookup(entry.ID)
		}
		if !ok {
			ubr = region
		}
		for mask, c := range n.children {
			cr := childRegion(region, mask)
			if cr.Intersects(ubr) {
				if err := t.leafInsert(c, cr, entry); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// drainLeaf reads and frees leaf n's page chain, returning its entries and
// removing them from the size count (they are re-counted on redistribution).
func (t *Tree) drainLeaf(n *node) ([]Entry, error) {
	var all []Entry
	p := n.firstPage
	for p != 0 {
		next, entries, err := t.readLeafPage(p)
		if err != nil {
			return nil, err
		}
		all = append(all, entries...)
		if err := t.freePage(p); err != nil {
			return nil, err
		}
		p = next
	}
	t.size -= len(all)
	return all, nil
}

// Remove deletes all entries for object id from leaves whose cells intersect
// ubr. It returns the number of entry copies removed.
func (t *Tree) Remove(id uint32, ubr geom.Rect) (int, error) {
	if !t.domain.Intersects(ubr) {
		return 0, nil
	}
	t.root = t.ownedNode(t.root)
	return t.remove(t.root, t.domain, id, ubr, nil)
}

// RemoveDiff deletes entries for id only from leaves intersecting oldUBR but
// not newUBR — the N−N′ leaf set of the paper's incremental insertion Step 4.
func (t *Tree) RemoveDiff(id uint32, oldUBR, newUBR geom.Rect) (int, error) {
	if !t.domain.Intersects(oldUBR) {
		return 0, nil
	}
	t.root = t.ownedNode(t.root)
	return t.remove(t.root, t.domain, id, oldUBR, &newUBR)
}

// remove descends into the cells intersecting ubr. n is session-owned;
// children are path-copied before descent.
func (t *Tree) remove(n *node, region geom.Rect, id uint32, ubr geom.Rect, except *geom.Rect) (int, error) {
	if n.children == nil {
		if except != nil && region.Intersects(*except) {
			return 0, nil
		}
		return t.leafRemove(n, id)
	}
	total := 0
	for mask := range n.children {
		cr := childRegion(region, mask)
		if !cr.Intersects(ubr) {
			continue
		}
		c := t.ownedNode(n.children[mask])
		n.children[mask] = c
		k, err := t.remove(c, cr, id, ubr, except)
		if err != nil {
			return total, err
		}
		total += k
	}
	return total, nil
}

// leafRemove drops every entry for id from leaf n. When anything changes the
// whole chain is rebuilt onto fresh session-owned pages (a mid-chain rewrite
// would cascade next-pointer patches up to the head anyway), and the old
// pages are freed through the session — deferred if shared.
func (t *Tree) leafRemove(n *node, id uint32) (int, error) {
	var all []Entry
	p := n.firstPage
	for p != 0 {
		next, entries, err := t.readLeafPage(p)
		if err != nil {
			return 0, err
		}
		all = append(all, entries...)
		p = next
	}
	kept := all[:0]
	for _, e := range all {
		if e.ID != id {
			kept = append(kept, e)
		}
	}
	removed := len(all) - len(kept)
	if removed == 0 {
		return 0, nil
	}
	if err := t.rewriteChain(n, kept); err != nil {
		return removed, err
	}
	t.size -= removed
	return removed, nil
}

// rewriteChain replaces leaf n's page chain with a fresh chain holding
// entries (at least one page, possibly empty), freeing the old chain through
// the session. Pages are written tail-first so each knows its successor.
func (t *Tree) rewriteChain(n *node, entries []Entry) error {
	p := n.firstPage
	for p != 0 {
		next, err := t.chainNext(p)
		if err != nil {
			return err
		}
		if err := t.freePage(p); err != nil {
			return err
		}
		p = next
	}
	per := t.perPage()
	numPages := (len(entries) + per - 1) / per
	if numPages == 0 {
		numPages = 1
	}
	var next pagestore.PageID
	for i := numPages - 1; i >= 0; i-- {
		lo := i * per
		hi := lo + per
		if hi > len(entries) {
			hi = len(entries)
		}
		id, err := t.allocPage()
		if err != nil {
			return err
		}
		if err := t.writeLeafPage(id, next, entries[lo:hi]); err != nil {
			return err
		}
		next = id
	}
	n.firstPage = next
	n.pages = numPages
	return nil
}

// chainNext reads just the next-page pointer of a leaf page through a
// borrowed view (no copy, no stripe lock).
func (t *Tree) chainNext(id pagestore.PageID) (pagestore.PageID, error) {
	buf, err := t.store.View(id)
	if err != nil {
		return 0, err
	}
	return pagestore.PageID(binary.LittleEndian.Uint32(buf[0:4])), nil
}

// PointQuery returns the entries of the unique leaf whose cell contains q.
// Page reads are counted by the underlying store.
func (t *Tree) PointQuery(q geom.Point) ([]Entry, error) {
	entries, _, err := t.PointQueryIO(q)
	return entries, err
}

// PointQueryIO is PointQuery plus the number of leaf pages read to answer
// it — the per-query leaf I/O cost of Figs. 9(c)/9(g), attributable to this
// call even when many queries share the store concurrently.
func (t *Tree) PointQueryIO(q geom.Point) ([]Entry, int, error) {
	return t.PointQueryInto(q, nil)
}

// PointQueryInto is PointQueryIO decoding into dst (appended to, capacity
// reused): the allocation-free variant for callers that keep a scratch
// slice across queries. The returned entries alias dst's backing memory —
// including recycled coordinate slices — so they are only valid until dst is
// next reused; retain them beyond that only as deep copies.
func (t *Tree) PointQueryInto(q geom.Point, dst []Entry) ([]Entry, int, error) {
	if !t.domain.Contains(q) {
		return dst, 0, fmt.Errorf("octree: query point %v outside domain %v", q, t.domain)
	}
	n := t.root
	region := t.domain
	for n.children != nil {
		mask := 0
		for j := 0; j < t.dim; j++ {
			mid := (region.Lo[j] + region.Hi[j]) / 2
			if q[j] >= mid {
				mask |= 1 << j
			}
		}
		region = childRegion(region, mask)
		n = n.children[mask]
	}
	pagesRead := 0
	p := n.firstPage
	for p != 0 {
		buf, err := t.store.View(p)
		if err != nil {
			return dst, pagesRead, err
		}
		pagesRead++
		p, dst = t.decodeLeafPage(buf, dst)
	}
	return dst, pagesRead, nil
}

// PointQueryIDsInto is PointQueryInto for callers that need only the entry
// IDs (the adjacency-graph seed query): it strides over the packed leaf
// entries reading each 4-byte ID and skips the coordinate bytes entirely —
// no Entry structs, no Point slices, no float decode. dst is appended to
// with its capacity reused, so a pooled scratch makes the call
// allocation-free.
func (t *Tree) PointQueryIDsInto(q geom.Point, dst []uint32) ([]uint32, int, error) {
	if !t.domain.Contains(q) {
		return dst, 0, fmt.Errorf("octree: query point %v outside domain %v", q, t.domain)
	}
	n := t.root
	region := t.domain
	for n.children != nil {
		mask := 0
		for j := 0; j < t.dim; j++ {
			mid := (region.Lo[j] + region.Hi[j]) / 2
			if q[j] >= mid {
				mask |= 1 << j
			}
		}
		region = childRegion(region, mask)
		n = n.children[mask]
	}
	stride := t.entrySize()
	pagesRead := 0
	p := n.firstPage
	for p != 0 {
		buf, err := t.store.View(p)
		if err != nil {
			return dst, pagesRead, err
		}
		pagesRead++
		count := int(binary.LittleEndian.Uint32(buf[4:8]))
		off := 8
		for i := 0; i < count; i++ {
			dst = append(dst, binary.LittleEndian.Uint32(buf[off:]))
			off += stride
		}
		p = pagestore.PageID(binary.LittleEndian.Uint32(buf[0:4]))
	}
	return dst, pagesRead, nil
}

// RangeIDs returns the distinct object IDs stored in leaves whose cells
// intersect r — Step 2 of the paper's incremental update (the potentially
// affected set A).
func (t *Tree) RangeIDs(r geom.Rect) (map[uint32]bool, error) {
	out := make(map[uint32]bool)
	err := t.rangeIDs(t.root, t.domain, r, out)
	return out, err
}

func (t *Tree) rangeIDs(n *node, region geom.Rect, r geom.Rect, out map[uint32]bool) error {
	if !region.Intersects(r) {
		return nil
	}
	if n.children == nil {
		// Lazy decode: stride over the packed entries reading only each
		// 4-byte ID, skipping the 16d coordinate bytes entirely.
		stride := t.entrySize()
		p := n.firstPage
		for p != 0 {
			buf, err := t.store.View(p)
			if err != nil {
				return err
			}
			count := int(binary.LittleEndian.Uint32(buf[4:8]))
			off := 8
			for i := 0; i < count; i++ {
				out[binary.LittleEndian.Uint32(buf[off:])] = true
				off += stride
			}
			p = pagestore.PageID(binary.LittleEndian.Uint32(buf[0:4]))
		}
		return nil
	}
	for mask, c := range n.children {
		if err := t.rangeIDs(c, childRegion(region, mask), r, out); err != nil {
			return err
		}
	}
	return nil
}

// CollectPages appends every page ID reachable from the tree — each leaf's
// full page chain — to dst and returns it. Read-only: it is how a pinned
// MVCC version enumerates its share of the page store for serialization.
func (t *Tree) CollectPages(dst []pagestore.PageID) ([]pagestore.PageID, error) {
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.children != nil {
			for _, c := range n.children {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		}
		p := n.firstPage
		for p != 0 {
			dst = append(dst, p)
			next, err := t.chainNext(p)
			if err != nil {
				return err
			}
			p = next
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	return dst, nil
}

// Validate walks the tree checking structural invariants: internal nodes
// have exactly 2^d children, leaf page chains are readable, page counts
// match the chain length, depths are consistent, and the entry count
// matches the recorded size. Used by tests after mutation sequences.
func (t *Tree) Validate() error {
	fan := 1 << t.dim
	entries := 0
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if n.depth != depth {
			return fmt.Errorf("octree: node depth %d, expected %d", n.depth, depth)
		}
		if n.children != nil {
			if len(n.children) != fan {
				return fmt.Errorf("octree: internal node with %d children, want %d", len(n.children), fan)
			}
			if n.firstPage != 0 || n.pages != 0 {
				return fmt.Errorf("octree: internal node still owns pages")
			}
			for _, c := range n.children {
				if err := walk(c, depth+1); err != nil {
					return err
				}
			}
			return nil
		}
		if n.firstPage == 0 {
			return fmt.Errorf("octree: leaf without a page chain")
		}
		chain := 0
		p := n.firstPage
		for p != 0 {
			// Header-only lazy read: chain pointer and entry count live in
			// the first 8 bytes; the packed records need no decoding here.
			buf, err := t.store.View(p)
			if err != nil {
				return fmt.Errorf("octree: unreadable leaf page %d: %w", p, err)
			}
			next := pagestore.PageID(binary.LittleEndian.Uint32(buf[0:4]))
			entries += int(binary.LittleEndian.Uint32(buf[4:8]))
			chain++
			if chain > 1_000_000 {
				return fmt.Errorf("octree: page chain cycle suspected at %d", p)
			}
			p = next
		}
		if chain != n.pages {
			return fmt.Errorf("octree: leaf records %d pages, chain has %d", n.pages, chain)
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if entries != t.size {
		return fmt.Errorf("octree: counted %d entries, size says %d", entries, t.size)
	}
	return nil
}

// Stats describes the tree's shape.
type Stats struct {
	Leaves   int
	Internal int
	Pages    int
	MaxDepth int
	Entries  int
	MemUsed  int
	SplitOps int
}

// TreeStats walks the tree and reports shape statistics.
func (t *Tree) TreeStats() Stats {
	st := Stats{Entries: t.size, MemUsed: t.memUsed, SplitOps: t.SplitCount}
	var walk func(n *node)
	walk = func(n *node) {
		if n.depth > st.MaxDepth {
			st.MaxDepth = n.depth
		}
		if n.children == nil {
			st.Leaves++
			st.Pages += n.pages
			return
		}
		st.Internal++
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return st
}
