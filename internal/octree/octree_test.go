package octree

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/pagestore"
)

// testIndex couples the tree with an in-memory UBR map, standing in for the
// secondary index.
type testIndex struct {
	tree *Tree
	ubrs map[uint32]geom.Rect
}

func newTestIndex(t *testing.T, d int, span float64, pageSize, memBudget int) *testIndex {
	t.Helper()
	ti := &testIndex{ubrs: map[uint32]geom.Rect{}}
	tree, err := New(Config{
		Domain:    geom.UnitCube(d, span),
		Store:     pagestore.New(pageSize),
		Lookup:    func(id uint32) (geom.Rect, bool) { r, ok := ti.ubrs[id]; return r, ok },
		MemBudget: memBudget,
		MaxDepth:  12,
	})
	if err != nil {
		t.Fatal(err)
	}
	ti.tree = tree
	return ti
}

func (ti *testIndex) insert(t *testing.T, id uint32, u, ubr geom.Rect) {
	t.Helper()
	ti.ubrs[id] = ubr
	if err := ti.tree.Insert(id, u, ubr); err != nil {
		t.Fatal(err)
	}
}

func randSubRect(rng *rand.Rand, span, maxSide float64, d int) geom.Rect {
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for j := 0; j < d; j++ {
		lo[j] = rng.Float64() * (span - maxSide)
		hi[j] = lo[j] + rng.Float64()*maxSide
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

func TestPointQueryFindsOverlappingUBRs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{2, 3} {
		ti := newTestIndex(t, d, 1000, 512, 1<<20)
		type obj struct {
			u, ubr geom.Rect
		}
		objs := map[uint32]obj{}
		for i := uint32(0); i < 300; i++ {
			u := randSubRect(rng, 1000, 20, d)
			ubr := u.Expand(rng.Float64() * 80) // UBR always contains u
			objs[i] = obj{u, ubr}
			ti.insert(t, i, u, ubr)
		}
		for iter := 0; iter < 100; iter++ {
			q := make(geom.Point, d)
			for j := range q {
				q[j] = rng.Float64() * 1000
			}
			got, err := ti.tree.PointQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			found := map[uint32]bool{}
			for _, e := range got {
				found[e.ID] = true
				if !e.Region.Equal(objs[e.ID].u) {
					t.Fatalf("entry region corrupted for %d", e.ID)
				}
			}
			// Completeness: every object whose UBR contains q must appear.
			for id, o := range objs {
				if o.ubr.Contains(q) && !found[id] {
					t.Fatalf("d=%d: object %d (UBR contains q=%v) missing from leaf", d, id, q)
				}
			}
		}
	}
}

func TestPointQueryOutsideDomain(t *testing.T) {
	ti := newTestIndex(t, 2, 100, 512, 1<<20)
	if _, err := ti.tree.PointQuery(geom.Point{500, 500}); err == nil {
		t.Fatal("out-of-domain query accepted")
	}
}

func TestSplitHappensUnderMemory(t *testing.T) {
	ti := newTestIndex(t, 2, 1000, 256, 1<<20) // small pages force splits
	rng := rand.New(rand.NewSource(2))
	for i := uint32(0); i < 500; i++ {
		u := randSubRect(rng, 1000, 10, 2)
		ti.insert(t, i, u, u.Expand(5))
	}
	st := ti.tree.TreeStats()
	if st.Internal == 0 || st.SplitOps == 0 {
		t.Fatalf("no splits: %+v", st)
	}
	if st.MemUsed == 0 || st.MemUsed > 1<<20 {
		t.Fatalf("memory accounting wrong: %d", st.MemUsed)
	}
}

func TestChainsWhenMemoryExhausted(t *testing.T) {
	// Budget for zero splits: every leaf overflow must chain pages.
	ti := newTestIndex(t, 2, 1000, 256, 1)
	rng := rand.New(rand.NewSource(3))
	for i := uint32(0); i < 300; i++ {
		u := randSubRect(rng, 1000, 10, 2)
		ti.insert(t, i, u, u.Expand(5))
	}
	st := ti.tree.TreeStats()
	if st.Internal != 0 {
		t.Fatalf("splits happened with zero budget: %+v", st)
	}
	if st.Pages < 2 {
		t.Fatalf("expected chained pages, got %d", st.Pages)
	}
	// Queries must still be complete.
	q := geom.Point{500, 500}
	got, err := ti.tree.PointQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	for id, ubr := range ti.ubrs {
		if ubr.Contains(q) {
			found := false
			for _, e := range got {
				if e.ID == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("chained leaf lost object %d", id)
			}
		}
	}
}

func TestRemove(t *testing.T) {
	ti := newTestIndex(t, 2, 1000, 256, 1<<20)
	rng := rand.New(rand.NewSource(4))
	ubrs := map[uint32]geom.Rect{}
	for i := uint32(0); i < 200; i++ {
		u := randSubRect(rng, 1000, 15, 2)
		ubr := u.Expand(30)
		ubrs[i] = ubr
		ti.insert(t, i, u, ubr)
	}
	// Remove half.
	for i := uint32(0); i < 100; i++ {
		k, err := ti.tree.Remove(i, ubrs[i])
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			t.Fatalf("Remove(%d) removed nothing", i)
		}
	}
	// Removed objects must not appear in any point query.
	for iter := 0; iter < 60; iter++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		got, err := ti.tree.PointQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range got {
			if e.ID < 100 {
				t.Fatalf("removed object %d still indexed", e.ID)
			}
		}
		// Survivors still complete.
		for id := uint32(100); id < 200; id++ {
			if ubrs[id].Contains(q) {
				found := false
				for _, e := range got {
					if e.ID == id {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("survivor %d lost", id)
				}
			}
		}
	}
}

func TestInsertDiffAndRemoveDiff(t *testing.T) {
	ti := newTestIndex(t, 2, 1000, 512, 1<<20)
	u := geom.NewRect(geom.Point{490, 490}, geom.Point{510, 510})
	oldUBR := geom.NewRect(geom.Point{400, 400}, geom.Point{600, 600})
	newUBR := geom.NewRect(geom.Point{300, 300}, geom.Point{700, 700})

	ti.ubrs[1] = oldUBR
	if err := ti.tree.Insert(1, u, oldUBR); err != nil {
		t.Fatal(err)
	}
	// Grow: add to leaves covered by newUBR only.
	ti.ubrs[1] = newUBR
	if err := ti.tree.InsertDiff(1, u, newUBR, oldUBR); err != nil {
		t.Fatal(err)
	}
	// Every point of newUBR must now find object 1.
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		q := geom.Point{
			newUBR.Lo[0] + rng.Float64()*(newUBR.Hi[0]-newUBR.Lo[0]),
			newUBR.Lo[1] + rng.Float64()*(newUBR.Hi[1]-newUBR.Lo[1]),
		}
		got, err := ti.tree.PointQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range got {
			if e.ID == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("after InsertDiff, point %v misses object", q)
		}
	}
	// Shrink back: remove from leaves outside oldUBR.
	ti.ubrs[1] = oldUBR
	if _, err := ti.tree.RemoveDiff(1, newUBR, oldUBR); err != nil {
		t.Fatal(err)
	}
	// Points inside oldUBR still find it.
	for iter := 0; iter < 100; iter++ {
		q := geom.Point{
			oldUBR.Lo[0] + rng.Float64()*(oldUBR.Hi[0]-oldUBR.Lo[0]),
			oldUBR.Lo[1] + rng.Float64()*(oldUBR.Hi[1]-oldUBR.Lo[1]),
		}
		got, _ := ti.tree.PointQuery(q)
		found := false
		for _, e := range got {
			if e.ID == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("after RemoveDiff, point %v inside old UBR misses object", q)
		}
	}
}

func TestRangeIDs(t *testing.T) {
	ti := newTestIndex(t, 2, 1000, 512, 1<<20)
	a := geom.NewRect(geom.Point{100, 100}, geom.Point{120, 120})
	b := geom.NewRect(geom.Point{800, 800}, geom.Point{820, 820})
	ti.insert(t, 1, a, a.Expand(10))
	ti.insert(t, 2, b, b.Expand(10))
	ids, err := ti.tree.RangeIDs(geom.NewRect(geom.Point{0, 0}, geom.Point{200, 200}))
	if err != nil {
		t.Fatal(err)
	}
	if !ids[1] {
		t.Fatal("range query missed object 1")
	}
	// Note: coarse leaves may include far-away objects (the root leaf spans
	// everything before splits); RangeIDs over-approximates by design.
}

func TestIOCounting(t *testing.T) {
	store := pagestore.New(512)
	tree, err := New(Config{
		Domain:    geom.UnitCube(2, 1000),
		Store:     store,
		MemBudget: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := uint32(0); i < 200; i++ {
		u := randSubRect(rng, 1000, 10, 2)
		if err := tree.Insert(i, u, u.Expand(20)); err != nil {
			t.Fatal(err)
		}
	}
	store.ResetStats()
	if _, err := tree.PointQuery(geom.Point{500, 500}); err != nil {
		t.Fatal(err)
	}
	delta := store.Stats()
	if delta.Reads == 0 {
		t.Fatal("point query recorded no page reads")
	}
	if delta.Writes != 0 {
		t.Fatal("point query wrote pages")
	}
	st := tree.TreeStats()
	if int(delta.Reads) > st.Pages {
		t.Fatalf("query read %d pages, tree has %d", delta.Reads, st.Pages)
	}
}

func TestValidateAfterMutationSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ti := newTestIndex(t, 2, 1000, 256, 1<<20)
	ubrs := map[uint32]geom.Rect{}
	for i := uint32(0); i < 400; i++ {
		u := randSubRect(rng, 1000, 12, 2)
		ubr := u.Expand(rng.Float64() * 40)
		ubrs[i] = ubr
		ti.insert(t, i, u, ubr)
		if i%97 == 0 {
			if err := ti.tree.Validate(); err != nil {
				t.Fatalf("after insert %d: %v", i, err)
			}
		}
	}
	if err := ti.tree.Validate(); err != nil {
		t.Fatalf("after all inserts: %v", err)
	}
	for i := uint32(0); i < 400; i += 3 {
		if _, err := ti.tree.Remove(i, ubrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ti.tree.Validate(); err != nil {
		t.Fatalf("after removals: %v", err)
	}
}

func TestSizeAccounting(t *testing.T) {
	ti := newTestIndex(t, 2, 1000, 256, 1<<20)
	rng := rand.New(rand.NewSource(7))
	for i := uint32(0); i < 150; i++ {
		u := randSubRect(rng, 1000, 10, 2)
		ti.insert(t, i, u, u.Expand(10))
	}
	st := ti.tree.TreeStats()
	// Count entries by scanning all leaves through point queries is not
	// exhaustive; instead verify size is at least the object count (each
	// object has >= 1 copy) and consistent after removals.
	if st.Entries < 150 {
		t.Fatalf("entries = %d < object count", st.Entries)
	}
	before := ti.tree.Size()
	removed, err := ti.tree.Remove(3, ti.ubrs[3])
	if err != nil {
		t.Fatal(err)
	}
	if ti.tree.Size() != before-removed {
		t.Fatalf("size accounting: %d -> %d after removing %d", before, ti.tree.Size(), removed)
	}
}
