package pagestore

import (
	"bytes"
	"fmt"
	"testing"
)

// TestViewBorrowsArenaMemory checks the zero-copy contract: in arena mode a
// View aliases slab memory (a Write through the page shows up in the borrowed
// slice), while in map mode View returns an independent copy.
func TestViewBorrowsArenaMemory(t *testing.T) {
	s := New(128)
	id, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, []byte("before")); err != nil {
		t.Fatal(err)
	}
	v, err := s.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 128 {
		t.Fatalf("view length %d, want page size 128", len(v))
	}
	if !bytes.Equal(v[:6], []byte("before")) {
		t.Fatalf("view contents %q", v[:6])
	}
	if err := s.Write(id, []byte("after!")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v[:6], []byte("after!")) {
		t.Fatalf("arena view did not alias slab memory: %q", v[:6])
	}

	m := NewMap(128)
	mid, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(mid, []byte("before")); err != nil {
		t.Fatal(err)
	}
	mv, err := m.View(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(mid, []byte("after!")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mv[:6], []byte("before")) {
		t.Fatalf("map-mode view must be a stable copy, got %q", mv[:6])
	}
}

// TestViewErrors checks View rejects freed and never-allocated pages.
func TestViewErrors(t *testing.T) {
	s := New(64)
	id, _ := s.Alloc()
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.View(id); err == nil {
		t.Fatal("View of freed page succeeded")
	}
	if _, err := s.View(9999); err == nil {
		t.Fatal("View of unallocated page succeeded")
	}
	if _, err := s.View(0); err == nil {
		t.Fatal("View of page 0 succeeded")
	}
}

// TestArenaExtentGrowth allocates past several extent boundaries and checks
// every page keeps independent contents and earlier views stay valid (slabs
// must never move when the extent slice grows).
func TestArenaExtentGrowth(t *testing.T) {
	s := New(4096) // 1024 pages per extent at the 4 MB target
	perExt := 1 << s.extShift
	n := perExt*2 + perExt/2
	ids := make([]PageID, 0, n)
	for i := 0; i < n; i++ {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	firstView, err := s.View(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ids[0], []byte("pinned-first-page")); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if err := s.Write(id, fmt.Appendf(nil, "page-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		v, err := s.View(id)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("page-%d", i)
		if string(v[:len(want)]) != want {
			t.Fatalf("page %d: got %q want %q", id, v[:len(want)], want)
		}
	}
	if string(firstView[:6]) != "page-0" {
		t.Fatalf("view taken before extent growth went stale: %q", firstView[:6])
	}
	if got := s.ArenaBytes(); got != 3*perExt*4096 {
		t.Fatalf("ArenaBytes = %d, want %d", got, 3*perExt*4096)
	}
}

// TestArenaRecycleZeroes frees a dirtied page and checks the recycled slot
// comes back zeroed, LIFO, with accounting intact.
func TestArenaRecycleZeroes(t *testing.T) {
	s := New(64)
	a, _ := s.Alloc()
	b, _ := s.Alloc()
	if err := s.Write(b, bytes.Repeat([]byte{0xAB}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(b); err != nil {
		t.Fatal(err)
	}
	if got := s.FreeListLen(); got != 1 {
		t.Fatalf("FreeListLen = %d, want 1", got)
	}
	c, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if c != b {
		t.Fatalf("recycled ID %d, want LIFO reuse of %d", c, b)
	}
	v, err := s.View(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("recycled page byte %d = %#x, want 0", i, x)
		}
	}
	if got := s.FreeListLen(); got != 0 {
		t.Fatalf("FreeListLen after recycle = %d, want 0", got)
	}
	if s.Live() != 2 {
		t.Fatalf("Live = %d, want 2", s.Live())
	}
	_ = a
}

// TestArenaMapParity drives both backends through an identical randomized
// alloc/write/free/read script and checks IDs, contents, errors, and
// accounting stay byte-for-byte identical.
func TestArenaMapParity(t *testing.T) {
	arena := New(96)
	mapped := NewMap(96)
	stores := []*Store{arena, mapped}

	var ids [2][]PageID
	step := func(f func(s *Store) (PageID, []byte, error)) {
		id0, b0, err0 := f(stores[0])
		id1, b1, err1 := f(stores[1])
		if id0 != id1 || (err0 == nil) != (err1 == nil) || !bytes.Equal(b0, b1) {
			t.Fatalf("backends diverged: arena (%d,%q,%v) vs map (%d,%q,%v)", id0, b0, err0, id1, b1, err1)
		}
	}
	// Deterministic mixed script: allocate 40, free every third, reallocate
	// 10, rewriting and reading as we go.
	for i := 0; i < 40; i++ {
		step(func(s *Store) (PageID, []byte, error) {
			id, err := s.Alloc()
			if err != nil {
				return 0, nil, err
			}
			data := fmt.Appendf(nil, "obj-%d", i)
			if err := s.Write(id, data); err != nil {
				return id, nil, err
			}
			b, err := s.Read(id)
			return id, b, err
		})
	}
	for i := range stores {
		for id := PageID(1); id <= 40; id++ {
			ids[i] = append(ids[i], id)
		}
	}
	for j := 0; j < 40; j += 3 {
		id := ids[0][j]
		step(func(s *Store) (PageID, []byte, error) {
			return id, nil, s.Free(id)
		})
	}
	for i := 0; i < 10; i++ {
		step(func(s *Store) (PageID, []byte, error) {
			id, err := s.Alloc()
			if err != nil {
				return 0, nil, err
			}
			b, err := s.Read(id)
			return id, b, err
		})
	}
	if arena.Live() != mapped.Live() {
		t.Fatalf("live divergence: arena %d, map %d", arena.Live(), mapped.Live())
	}
	if arena.FreeListLen() != mapped.FreeListLen() {
		t.Fatalf("free-list divergence: arena %d, map %d", arena.FreeListLen(), mapped.FreeListLen())
	}
	as, ms := arena.Stats(), mapped.Stats()
	if as != ms {
		t.Fatalf("stats divergence: arena %+v, map %+v", as, ms)
	}
}

// TestImageRoundTripAcrossBackends snapshots each backend and restores the
// image, checking pages, allocator state, and the unchanged gob format.
func TestImageRoundTripAcrossBackends(t *testing.T) {
	for _, mk := range []struct {
		name string
		new  func(int) *Store
	}{{"arena", New}, {"map", NewMap}} {
		t.Run(mk.name, func(t *testing.T) {
			s := mk.new(80)
			var kept []PageID
			for i := 0; i < 12; i++ {
				id, err := s.Alloc()
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Write(id, fmt.Appendf(nil, "v-%d", i)); err != nil {
					t.Fatal(err)
				}
				if i%4 == 2 {
					if err := s.Free(id); err != nil {
						t.Fatal(err)
					}
					continue
				}
				kept = append(kept, id)
			}
			img := s.Image()
			if img.PageSize != 80 || len(img.Pages) != s.Live() {
				t.Fatalf("image header mismatch: %+v live=%d", img, s.Live())
			}
			r, err := FromImage(img)
			if err != nil {
				t.Fatal(err)
			}
			if r.MapBacked() {
				t.Fatal("FromImage must restore into the arena backend")
			}
			for _, id := range kept {
				want, err := s.Read(id)
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.Read(id)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("page %d mismatch after round trip", id)
				}
			}
			if r.Live() != s.Live() || r.FreeListLen() != s.FreeListLen() {
				t.Fatalf("allocator state mismatch: live %d/%d free %d/%d",
					r.Live(), s.Live(), r.FreeListLen(), s.FreeListLen())
			}
			// The restored allocator must recycle the same IDs.
			a1, _ := s.Alloc()
			a2, _ := r.Alloc()
			if a1 != a2 {
				t.Fatalf("restored allocator minted %d, original %d", a2, a1)
			}
		})
	}
}
