package pagestore

import (
	"sync/atomic"
	"testing"
)

// benchStore returns a store with n written pages and their IDs.
func benchStore(b *testing.B, n int) (*Store, []PageID) {
	b.Helper()
	s := New(DefaultPageSize)
	ids := make([]PageID, n)
	data := make([]byte, DefaultPageSize)
	for i := range data {
		data[i] = byte(i)
	}
	for i := range ids {
		id, err := s.Alloc()
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Write(id, data); err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	return s, ids
}

// BenchmarkPagestoreRead measures the allocating Read path: one fresh 4 KB
// buffer per call.
func BenchmarkPagestoreRead(b *testing.B) {
	s, ids := benchStore(b, 1024)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPagestoreReadInto measures the zero-alloc read path: pooled
// buffer, no copy-out allocation.
func BenchmarkPagestoreReadInto(b *testing.B) {
	s, ids := benchStore(b, 1024)
	buf := s.AcquirePage()
	defer s.ReleasePage(buf)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.ReadInto(ids[i%len(ids)], *buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPagestoreReadIntoParallel is the pooled read path under
// GOMAXPROCS-way concurrency — the case lock striping exists for.
func BenchmarkPagestoreReadIntoParallel(b *testing.B) {
	s, ids := benchStore(b, 1024)
	b.ResetTimer()
	b.ReportAllocs()
	var ctr atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		buf := s.AcquirePage()
		defer s.ReleasePage(buf)
		for pb.Next() {
			i := int(ctr.Add(1))
			if err := s.ReadInto(ids[i%len(ids)], *buf); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPagestoreReadParallel measures contention on the read path:
// GOMAXPROCS goroutines hammering reads over a shared working set.
func BenchmarkPagestoreReadParallel(b *testing.B) {
	s, ids := benchStore(b, 1024)
	b.ResetTimer()
	b.ReportAllocs()
	var ctr atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(ctr.Add(1))
			if _, err := s.Read(ids[i%len(ids)]); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
