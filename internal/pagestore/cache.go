package pagestore

import (
	"container/list"
	"sync"
)

// Cache is an LRU buffer pool over a Store, modelling the buffer manager a
// disk-resident index would sit behind. Reads served from the pool do not
// touch the underlying store's I/O counters, so experiments can separate
// cold (disk) from warm (buffered) query cost.
//
// Writes are write-through: the page goes to the store immediately and the
// cached copy is refreshed, keeping the store durable at every point.
type Cache struct {
	mu       sync.Mutex
	store    *Store
	capacity int
	lru      *list.List // front = most recent; values are *cacheEntry
	pages    map[PageID]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	id   PageID
	data []byte
}

// NewCache wraps store with a pool of at most capacity pages.
func NewCache(store *Store, capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		store:    store,
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[PageID]*list.Element),
	}
}

// Store returns the underlying page store.
func (c *Cache) Store() *Store { return c.store }

// Read returns the page contents, from the pool when resident.
func (c *Cache) Read(id PageID) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.pages[id]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		out := make([]byte, len(data))
		copy(out, data)
		c.mu.Unlock()
		return out, nil
	}
	c.misses++
	c.mu.Unlock()

	data, err := c.store.Read(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.insert(id, data)
	c.mu.Unlock()
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Write stores the page (write-through) and refreshes the pooled copy.
func (c *Cache) Write(id PageID, data []byte) error {
	if err := c.store.Write(id, data); err != nil {
		return err
	}
	// Re-read is avoided: normalize to page size locally.
	buf := make([]byte, c.store.PageSize())
	copy(buf, data)
	c.mu.Lock()
	if el, ok := c.pages[id]; ok {
		el.Value.(*cacheEntry).data = buf
		c.lru.MoveToFront(el)
	} else {
		c.insert(id, buf)
	}
	c.mu.Unlock()
	return nil
}

// Alloc passes through to the store.
func (c *Cache) Alloc() (PageID, error) { return c.store.Alloc() }

// Free releases the page and drops any pooled copy.
func (c *Cache) Free(id PageID) error {
	c.mu.Lock()
	if el, ok := c.pages[id]; ok {
		c.lru.Remove(el)
		delete(c.pages, id)
	}
	c.mu.Unlock()
	return c.store.Free(id)
}

// insert adds a page to the pool, evicting the least-recently-used page if
// the pool is full. Caller holds c.mu.
func (c *Cache) insert(id PageID, data []byte) {
	if el, ok := c.pages[id]; ok {
		el.Value.(*cacheEntry).data = data
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.pages, back.Value.(*cacheEntry).id)
	}
	c.pages[id] = c.lru.PushFront(&cacheEntry{id: id, data: data})
}

// CacheStats reports pool effectiveness.
type CacheStats struct {
	Hits, Misses int64
	Resident     int
}

// Stats returns hit/miss counters and current residency.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Resident: c.lru.Len()}
}

// ResetStats zeroes the hit/miss counters.
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses = 0, 0
}
