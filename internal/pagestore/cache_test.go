package pagestore

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestCacheReadWriteThrough(t *testing.T) {
	store := New(64)
	cache := NewCache(store, 4)
	id, _ := cache.Alloc()
	if err := cache.Write(id, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Write-through: store has the data even before any cache read.
	raw, err := store.Read(id)
	if err != nil || !bytes.Equal(raw[:5], []byte("hello")) {
		t.Fatalf("store missing write-through data: %q %v", raw[:5], err)
	}
	// First cached read after Write is a hit (Write populates the pool).
	got, err := cache.Read(id)
	if err != nil || !bytes.Equal(got[:5], []byte("hello")) {
		t.Fatalf("cache read: %q %v", got[:5], err)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheMissThenHit(t *testing.T) {
	store := New(64)
	cache := NewCache(store, 4)
	id, _ := store.Alloc() // allocated behind the cache's back
	_ = store.Write(id, []byte("direct"))
	if _, err := cache.Read(id); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Read(id); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The second read must not have touched the store.
	ioBefore := store.Stats().Reads
	_, _ = cache.Read(id)
	if store.Stats().Reads != ioBefore {
		t.Fatal("cache hit leaked a store read")
	}
}

func TestCacheEviction(t *testing.T) {
	store := New(64)
	cache := NewCache(store, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, _ := cache.Alloc()
		_ = cache.Write(id, []byte{byte(i)})
		ids = append(ids, id)
	}
	// Pool holds the 2 most recent; the first page was evicted.
	st := cache.Stats()
	if st.Resident != 2 {
		t.Fatalf("resident = %d", st.Resident)
	}
	cache.ResetStats()
	_, _ = cache.Read(ids[0]) // must miss
	_, _ = cache.Read(ids[2]) // must hit
	st = cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("after eviction: %+v", st)
	}
}

func TestCacheFreeDropsPage(t *testing.T) {
	store := New(64)
	cache := NewCache(store, 4)
	id, _ := cache.Alloc()
	_ = cache.Write(id, []byte("x"))
	if err := cache.Free(id); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Read(id); err == nil {
		t.Fatal("read of freed page served from cache")
	}
}

func TestCacheIsolationOfReturnedBuffers(t *testing.T) {
	store := New(8)
	cache := NewCache(store, 2)
	id, _ := cache.Alloc()
	_ = cache.Write(id, []byte{1, 2, 3})
	buf, _ := cache.Read(id)
	buf[0] = 99 // caller scribbles on the returned buffer
	again, _ := cache.Read(id)
	if again[0] != 1 {
		t.Fatal("cache returned an aliased buffer")
	}
}

// Model test: cache-backed reads always agree with the bare store.
func TestCacheCoherence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	store := New(32)
	cache := NewCache(store, 8)
	var ids []PageID
	for i := 0; i < 32; i++ {
		id, _ := cache.Alloc()
		ids = append(ids, id)
	}
	for op := 0; op < 5000; op++ {
		id := ids[rng.Intn(len(ids))]
		if rng.Intn(2) == 0 {
			data := make([]byte, rng.Intn(32))
			rng.Read(data)
			if err := cache.Write(id, data); err != nil {
				t.Fatal(err)
			}
		} else {
			fromCache, err := cache.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			fromStore, err := store.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fromCache, fromStore) {
				t.Fatalf("op %d: cache diverged from store on page %d", op, id)
			}
		}
	}
}

func TestCacheConcurrent(t *testing.T) {
	store := New(64)
	cache := NewCache(store, 8)
	var ids []PageID
	for i := 0; i < 16; i++ {
		id, _ := cache.Alloc()
		_ = cache.Write(id, []byte{byte(i)})
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				id := ids[rng.Intn(len(ids))]
				if rng.Intn(4) == 0 {
					_ = cache.Write(id, []byte{byte(i)})
				} else {
					_, _ = cache.Read(id)
				}
			}
		}(w)
	}
	wg.Wait()
}
