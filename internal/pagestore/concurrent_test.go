package pagestore

import (
	"sync"
	"testing"
)

// TestStoreConcurrentReadersWriters hammers a store with parallel readers
// against writers that rewrite, allocate and free pages. Run under -race this
// validates that the read path (shared lock + atomic counters) never races
// with mutations.
func TestStoreConcurrentReadersWriters(t *testing.T) {
	s := New(256)
	const fixed = 32
	ids := make([]PageID, fixed)
	for i := range ids {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var wg sync.WaitGroup
	const iters = 1000

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < iters; i++ {
				buf[0] = byte(seed + i)
				if err := s.Write(ids[(seed+i)%fixed], buf); err != nil {
					t.Error(err)
					return
				}
				// Churn the allocator too.
				id, err := s.Alloc()
				if err != nil {
					t.Error(err)
					return
				}
				if err := s.Free(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := s.Read(ids[(seed+i)%fixed]); err != nil {
					t.Error(err)
					return
				}
				_ = s.Stats()
				_ = s.Live()
			}
		}(r)
	}
	wg.Wait()

	st := s.Stats()
	if st.Reads == 0 || st.Writes == 0 {
		t.Fatalf("expected nonzero traffic, got %+v", st)
	}
	if got := s.Live(); got != fixed {
		t.Fatalf("live pages = %d, want %d", got, fixed)
	}
}

// TestCacheConcurrentReaders checks the LRU pool under parallel readers and
// write-through writers.
func TestCacheConcurrentReaders(t *testing.T) {
	s := New(256)
	c := NewCache(s, 8)
	ids := make([]PageID, 16)
	for i := range ids {
		id, err := c.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := c.Write(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ids[(seed*7+i)%len(ids)]
				if seed%4 == 0 {
					if err := c.Write(id, []byte{byte(i)}); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if _, err := c.Read(id); err != nil {
					t.Error(err)
					return
				}
				_ = c.Stats()
			}
		}(w)
	}
	wg.Wait()

	cs := c.Stats()
	if cs.Hits+cs.Misses == 0 {
		t.Fatalf("expected cache traffic, got %+v", cs)
	}
	if cs.Resident > 8 {
		t.Fatalf("resident %d exceeds capacity 8", cs.Resident)
	}
}
