package pagestore

// COWSession scopes one copy-on-write mutation epoch over a store, shared
// by every page-backed structure participating in the same version (the
// octree and the extendible hash both hold one). Pages allocated within a
// session are owned by it and may be rewritten in place; everything else
// is shared with older published versions and must be shadow-copied onto a
// fresh page before changing. In full-ownership mode (construction, load —
// no published predecessor exists) every page counts as owned, which
// reduces to classic mutate-in-place behavior.
type COWSession struct {
	store *Store
	all   bool
	owned map[PageID]struct{}
	// freed collects shared pages the session stopped referencing. They
	// stay readable by older versions until an epoch reclaimer frees them.
	freed *[]PageID
}

// NewFullSession returns a session that owns everything — the
// single-version mode used while building or loading a structure.
func NewFullSession(store *Store) *COWSession {
	return &COWSession{store: store, all: true}
}

// NewCOWSession returns a session owning nothing yet: every pre-existing
// page is shared, and replaced pages defer their frees into freed.
func NewCOWSession(store *Store, freed *[]PageID) *COWSession {
	return &COWSession{store: store, owned: make(map[PageID]struct{}), freed: freed}
}

// Alloc reserves a page and records session ownership.
func (s *COWSession) Alloc() (PageID, error) {
	id, err := s.store.Alloc()
	if err == nil && !s.all {
		s.owned[id] = struct{}{}
	}
	return id, err
}

// Owned reports whether the session may rewrite the page in place.
func (s *COWSession) Owned(id PageID) bool {
	if s.all {
		return true
	}
	_, ok := s.owned[id]
	return ok
}

// Free releases a page the session's structure stops referencing:
// immediately when the session owns it (no published version can see it),
// deferred to the freed list otherwise.
func (s *COWSession) Free(id PageID) error {
	if s.all {
		return s.store.Free(id)
	}
	if _, ok := s.owned[id]; ok {
		delete(s.owned, id)
		return s.store.Free(id)
	}
	*s.freed = append(*s.freed, id)
	return nil
}

// Abort returns every page the session allocated to the store — none of
// them are visible to any published version — and forgets its deferred
// frees. The session must not be used afterwards.
func (s *COWSession) Abort() {
	for id := range s.owned {
		_ = s.store.Free(id)
	}
	s.owned = nil
}
