package pagestore

import "fmt"

// Image is the serializable state of a Store, used by index persistence.
// All fields are exported for encoding/gob. The format is layout-agnostic
// (a plain page map), so checkpoints written by either backend load into
// either backend unchanged.
type Image struct {
	PageSize int
	Next     uint32
	Free     []uint32
	Pages    map[uint32][]byte
}

// Image captures the store's current pages and allocator state. The copy is
// deep; later mutations of the store do not affect it. It locks the
// allocator and every shard (in the fixed allocMu-before-shards order), so
// the snapshot is atomic with respect to concurrent operations. In the arena
// layout it walks the extent liveness bitmaps instead of a page map.
func (s *Store) Image() *Image {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	for i := range s.shards {
		s.shards[i].mu.RLock()
		defer s.shards[i].mu.RUnlock()
	}
	img := &Image{
		PageSize: s.pageSize,
		Next:     uint32(s.next),
		Free:     make([]uint32, len(s.free)),
		Pages:    make(map[uint32][]byte, s.Live()),
	}
	for i, id := range s.free {
		img.Free[i] = uint32(id)
	}
	if s.mapMode {
		for i := range s.shards {
			for id, data := range s.shards[i].pages {
				buf := make([]byte, len(data))
				copy(buf, data)
				img.Pages[uint32(id)] = buf
			}
		}
		return img
	}
	for id := PageID(1); id < s.next; id++ {
		if !s.alive(id) {
			continue
		}
		p, _ := s.page(id)
		buf := make([]byte, len(p))
		copy(buf, p)
		img.Pages[uint32(id)] = buf
	}
	return img
}

// ImageOf captures only the listed pages — the reachable set of one MVCC
// version — without touching allocator state or unrelated pages. Allocator
// state is synthesized compactly: Next is one past the highest captured page
// and Free lists the gaps below it, so a store restored via FromImage can
// allocate without ever colliding with a captured ID.
//
// Unlike Image, it takes no global lock: each page is copied under its
// stripe's read lock only. The caller must guarantee the listed pages are
// immutable for the duration (true for pages reachable from a pinned
// version, which writers never rewrite in place and the reclaimer cannot
// free while the version is pinned).
func (s *Store) ImageOf(ids []PageID) (*Image, error) {
	img := &Image{
		PageSize: s.pageSize,
		Pages:    make(map[uint32][]byte, len(ids)),
	}
	var maxID PageID
	for _, id := range ids {
		if _, dup := img.Pages[uint32(id)]; dup {
			continue
		}
		sh := s.shardFor(id)
		sh.mu.RLock()
		var src []byte
		if s.mapMode {
			p, ok := sh.pages[id]
			if !ok {
				sh.mu.RUnlock()
				return nil, fmt.Errorf("pagestore: ImageOf references unknown page %d", id)
			}
			src = p
		} else {
			if !s.alive(id) {
				sh.mu.RUnlock()
				return nil, fmt.Errorf("pagestore: ImageOf references unknown page %d", id)
			}
			src, _ = s.page(id)
		}
		buf := make([]byte, len(src))
		copy(buf, src)
		sh.mu.RUnlock()
		img.Pages[uint32(id)] = buf
		if id > maxID {
			maxID = id
		}
	}
	img.Next = uint32(maxID) + 1
	for id := PageID(1); id <= maxID; id++ {
		if _, ok := img.Pages[uint32(id)]; !ok {
			img.Free = append(img.Free, uint32(id))
		}
	}
	return img, nil
}

// FromImage reconstructs an arena-backed store from a snapshot. I/O counters
// start at zero; allocator state (next ID, free list) is restored exactly so
// that page IDs recorded by the structures above remain valid.
func FromImage(img *Image) (*Store, error) {
	if img.PageSize <= 0 {
		return nil, fmt.Errorf("pagestore: invalid page size %d in image", img.PageSize)
	}
	s := New(img.PageSize)
	s.next = PageID(img.Next)
	s.free = make([]PageID, len(img.Free))
	for i, id := range img.Free {
		s.free[i] = PageID(id)
	}
	if img.Next > 1 {
		s.ensureExtent(img.Next - 2)
	}
	for id, data := range img.Pages {
		if len(data) != img.PageSize {
			return nil, fmt.Errorf("pagestore: page %d has %d bytes, want %d", id, len(data), img.PageSize)
		}
		p, ok := s.page(PageID(id))
		if !ok {
			return nil, fmt.Errorf("pagestore: page %d beyond image high-water mark %d", id, img.Next)
		}
		copy(p, data)
		s.setLive(PageID(id), true)
		s.live.Add(1)
	}
	return s, nil
}
