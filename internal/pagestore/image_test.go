package pagestore

import (
	"bytes"
	"testing"
)

func TestStoreImageRoundTrip(t *testing.T) {
	s := New(64)
	id1, _ := s.Alloc()
	id2, _ := s.Alloc()
	id3, _ := s.Alloc()
	_ = s.Write(id1, []byte("one"))
	_ = s.Write(id2, []byte("two"))
	_ = s.Free(id3) // exercise the free list

	img := s.Image()
	restored, err := FromImage(img)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		id   PageID
		want string
	}{{id1, "one"}, {id2, "two"}} {
		got, err := restored.Read(pair.id)
		if err != nil || !bytes.Equal(got[:len(pair.want)], []byte(pair.want)) {
			t.Fatalf("page %d: %q %v", pair.id, got[:len(pair.want)], err)
		}
	}
	// Freed page stays freed; allocation reuses it.
	if _, err := restored.Read(id3); err == nil {
		t.Fatal("freed page readable after restore")
	}
	id4, err := restored.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id4 != id3 {
		t.Fatalf("free list not restored: got %d want %d", id4, id3)
	}
	// The image is a deep copy: mutating the original store afterwards must
	// not affect a restore from the same image.
	_ = s.Write(id1, []byte("mutated"))
	restored2, _ := FromImage(img)
	got, _ := restored2.Read(id1)
	if !bytes.Equal(got[:3], []byte("one")) {
		t.Fatal("image aliases live store pages")
	}
}

func TestFromImageValidation(t *testing.T) {
	if _, err := FromImage(&Image{PageSize: 0}); err == nil {
		t.Fatal("zero page size accepted")
	}
	img := &Image{PageSize: 64, Pages: map[uint32][]byte{1: make([]byte, 32)}}
	if _, err := FromImage(img); err == nil {
		t.Fatal("short page accepted")
	}
}
