// Package pagestore simulates the disk layer of the paper's testbed: a store
// of fixed-size pages (4 KB in the experiments) with read/write counters.
//
// The paper reports query cost partly as leaf-page I/O (Figs. 9(c), 9(g));
// counting page touches on an in-memory store preserves the orderings and
// ratios between competing indexes without needing a physical disk. All
// disk-resident structures (octree leaf lists, extendible-hash buckets,
// R-tree leaves) allocate their pages here.
//
// Pages live in extent-based slab arenas: large contiguous []byte slabs
// carved into fixed-size pages, with PageID → (extent, offset) resolved by
// arithmetic instead of a map lookup. Freed pages go onto an explicit
// free-list and are recycled on the next Alloc, so steady-state MVCC churn
// allocates nothing and the GC sees a handful of slab pointers instead of
// one heap object per live page. The legacy sharded-map layout is retained
// behind NewMap solely as a benchmark baseline (pvbench memlayout).
package pagestore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the page size used throughout the experiments (4 KB).
const DefaultPageSize = 4096

// numShards is the lock-striping factor for page-level copy operations.
// Page IDs are assigned sequentially, so id&(numShards-1) spreads
// consecutive pages evenly; a power of two keeps the stripe pick a single
// mask instruction.
const numShards = 16

// extentTargetBytes is the aimed-for slab size. The actual pages-per-extent
// is the largest power of two fitting the target, clamped so tiny test page
// sizes don't produce absurd extents and huge pages still batch allocation.
const (
	extentTargetBytes = 4 << 20
	minPagesPerExtent = 64
	maxPagesPerExtent = 4096
)

// PageID identifies a page within a Store. Zero is never a valid page.
type PageID uint32

// Stats is a snapshot of I/O counters.
type Stats struct {
	Reads  int64 // pages read
	Writes int64 // pages written
	Allocs int64 // pages allocated over the store's lifetime
	Frees  int64 // pages freed
}

// Sub returns the counter deltas from an earlier snapshot.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Reads:  s.Reads - earlier.Reads,
		Writes: s.Writes - earlier.Writes,
		Allocs: s.Allocs - earlier.Allocs,
		Frees:  s.Frees - earlier.Frees,
	}
}

// IO returns total page touches (reads + writes).
func (s Stats) IO() int64 { return s.Reads + s.Writes }

// extent is one contiguous slab of pages plus a liveness bitmap. The slab is
// allocated once and never moves or shrinks, so a pointer into it stays valid
// for the life of the store — the property the zero-copy View path rests on.
// Bitmap words span lock stripes, so they are only ever touched atomically
// (mutations happen under allocMu; readers load without any lock).
type extent struct {
	data []byte
	live []atomic.Uint64
}

// shard is one stripe of lock state (and, in map mode, of the page map).
// Copy-based reads and in-place writes of the same page serialize on the
// stripe; different pages mostly hit different stripes.
type shard struct {
	mu    sync.RWMutex
	pages map[PageID][]byte // map mode only; nil in arena mode
}

// Store is a page allocator with I/O accounting. It is safe for concurrent
// use. In the default arena layout, pages are slots in large slab extents
// located by pointer arithmetic; a liveness bitmap (atomic words) gates
// access and numShards lock stripes serialize copy-based reads against
// in-place writes of the same page. In the legacy map layout (NewMap) pages
// are individually allocated []byte values in a sharded map. Allocator state
// (free list, next ID, page limit, extent growth) sits behind its own mutex,
// and the I/O counters are atomics so accounting never serializes the read
// path.
//
// Lock order: allocMu before any shard lock; shard locks are never nested.
type Store struct {
	pageSize int
	mapMode  bool
	shards   [numShards]shard

	// Arena state. extents holds the current slice of slabs behind an
	// atomic pointer: growth copies the slice and swaps the pointer, so
	// lock-free readers always see a consistent prefix and slabs themselves
	// never move. extShift/extMask turn a page index into (extent, slot).
	extents  atomic.Pointer[[]*extent]
	extShift uint32
	extMask  uint32

	allocMu sync.Mutex
	free    []PageID
	next    PageID
	limit   int // max live pages; 0 = unlimited
	live    atomic.Int64

	bufs sync.Pool // *[]byte scratch buffers of pageSize bytes

	reads, writes, allocs, frees atomic.Int64

	// mutations counts every state-changing operation (Write, Alloc, Free)
	// over the store's lifetime — the dirty epoch checkpointing compares to
	// decide whether a new snapshot is needed. Reads never advance it.
	mutations atomic.Int64
}

// ErrFull is returned by Alloc when the store's page limit is exhausted.
var ErrFull = errors.New("pagestore: page limit exhausted")

// New returns an arena-backed store with the given page size
// (DefaultPageSize if <= 0).
func New(pageSize int) *Store {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	s := &Store{pageSize: pageSize, next: 1}
	pp := extentTargetBytes / pageSize
	shift := uint32(0)
	for (1 << (shift + 1)) <= pp {
		shift++
	}
	if 1<<shift < minPagesPerExtent {
		for 1<<shift < minPagesPerExtent {
			shift++
		}
	}
	if 1<<shift > maxPagesPerExtent {
		for 1<<shift > maxPagesPerExtent {
			shift--
		}
	}
	s.extShift = shift
	s.extMask = 1<<shift - 1
	empty := []*extent{}
	s.extents.Store(&empty)
	s.bufs.New = func() any {
		b := make([]byte, pageSize)
		return &b
	}
	return s
}

// NewMap returns a store using the legacy sharded-map page layout: every
// page is its own heap allocation held in a lock-striped map. It exists as
// the comparison baseline for the arena layout (pvbench memlayout) and
// behaves identically at the API level, except that View always copies.
func NewMap(pageSize int) *Store {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	s := &Store{pageSize: pageSize, mapMode: true, next: 1}
	for i := range s.shards {
		s.shards[i].pages = make(map[PageID][]byte)
	}
	s.bufs.New = func() any {
		b := make([]byte, pageSize)
		return &b
	}
	return s
}

// NewLimited returns a store that fails Alloc after maxPages live pages,
// for failure-injection tests.
func NewLimited(pageSize, maxPages int) *Store {
	s := New(pageSize)
	s.limit = maxPages
	return s
}

// PageSize returns the size in bytes of each page.
func (s *Store) PageSize() int { return s.pageSize }

// MapBacked reports whether the store uses the legacy sharded-map layout
// (true) or the extent/slab arena layout (false).
func (s *Store) MapBacked() bool { return s.mapMode }

func (s *Store) shardFor(id PageID) *shard {
	return &s.shards[uint32(id)&(numShards-1)]
}

// page resolves an arena page ID to its slab slice without checking
// liveness. The second result is false when the ID falls outside the
// currently materialized extents.
func (s *Store) page(id PageID) ([]byte, bool) {
	idx := uint32(id) - 1
	exts := *s.extents.Load()
	e := int(idx >> s.extShift)
	if id == 0 || e >= len(exts) {
		return nil, false
	}
	off := int(idx&s.extMask) * s.pageSize
	return exts[e].data[off : off+s.pageSize : off+s.pageSize], true
}

// alive reports whether the arena page's liveness bit is set.
func (s *Store) alive(id PageID) bool {
	idx := uint32(id) - 1
	exts := *s.extents.Load()
	e := int(idx >> s.extShift)
	if id == 0 || e >= len(exts) {
		return false
	}
	slot := idx & s.extMask
	return exts[e].live[slot>>6].Load()&(1<<(slot&63)) != 0
}

// setLive flips the arena page's liveness bit. Called only under allocMu;
// the atomic op is still required because bitmap words are shared with
// lock-free readers.
func (s *Store) setLive(id PageID, on bool) {
	idx := uint32(id) - 1
	exts := *s.extents.Load()
	e := int(idx >> s.extShift)
	slot := idx & s.extMask
	word := &exts[e].live[slot>>6]
	if on {
		word.Or(1 << (slot & 63))
	} else {
		word.And(^uint64(1 << (slot & 63)))
	}
}

// ensureExtent grows the extent slice (copy-on-append behind the atomic
// pointer) until the page index idx has a slab slot. Caller holds allocMu.
func (s *Store) ensureExtent(idx uint32) {
	need := int(idx>>s.extShift) + 1
	cur := *s.extents.Load()
	if need <= len(cur) {
		return
	}
	grown := make([]*extent, need)
	copy(grown, cur)
	perExt := 1 << s.extShift
	for i := len(cur); i < need; i++ {
		grown[i] = &extent{
			data: make([]byte, perExt*s.pageSize),
			live: make([]atomic.Uint64, (perExt+63)/64),
		}
	}
	s.extents.Store(&grown)
}

// AcquirePage hands out a page-sized scratch buffer from the store's pool.
// Pair with ReleasePage on every path; the contents are arbitrary leftovers
// from the previous user.
func (s *Store) AcquirePage() *[]byte {
	return s.bufs.Get().(*[]byte)
}

// ReleasePage returns a buffer obtained from AcquirePage to the pool.
// Buffers of the wrong size are dropped rather than poisoning the pool.
func (s *Store) ReleasePage(p *[]byte) {
	if p == nil || len(*p) != s.pageSize {
		return
	}
	s.bufs.Put(p)
}

// Alloc reserves a new zeroed page and returns its ID. In the arena layout
// this is GC-free at steady state: a recycled free-list slot is cleared in
// place, and only a genuinely fresh high-water-mark page can trigger a new
// slab extent (whose bytes Go already zeroed).
func (s *Store) Alloc() (PageID, error) {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	if s.limit > 0 && int(s.live.Load()) >= s.limit {
		return 0, ErrFull
	}
	var id PageID
	recycled := false
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
		recycled = true
	} else {
		id = s.next
		s.next++
	}
	if s.mapMode {
		sh := s.shardFor(id)
		sh.mu.Lock()
		sh.pages[id] = make([]byte, s.pageSize)
		sh.mu.Unlock()
	} else {
		s.ensureExtent(uint32(id) - 1)
		if recycled {
			p, _ := s.page(id)
			clear(p)
		}
		s.setLive(id, true)
	}
	s.live.Add(1)
	s.allocs.Add(1)
	s.mutations.Add(1)
	return id, nil
}

// Free releases a page back to the store. The slot goes onto the free-list
// and is recycled by a later Alloc; in the arena layout the bytes stay in
// the slab, so freeing returns no memory to the GC — by design, since the
// MVCC reclaim sweep frees pages exactly when their last pinned reader has
// drained and the slot can be reused immediately.
func (s *Store) Free(id PageID) error {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	if s.mapMode {
		sh := s.shardFor(id)
		sh.mu.Lock()
		_, ok := sh.pages[id]
		if !ok {
			sh.mu.Unlock()
			return fmt.Errorf("pagestore: free of unknown page %d", id)
		}
		delete(sh.pages, id)
		sh.mu.Unlock()
	} else {
		if !s.alive(id) {
			return fmt.Errorf("pagestore: free of unknown page %d", id)
		}
		s.setLive(id, false)
	}
	s.free = append(s.free, id)
	s.live.Add(-1)
	s.frees.Add(1)
	s.mutations.Add(1)
	return nil
}

// Read copies the page contents into a fresh buffer and counts one read I/O.
// Concurrent reads proceed in parallel; reads of pages in different stripes
// don't even share a lock. Hot paths that can reuse a buffer should prefer
// ReadInto (no allocation) or View (no copy at all).
func (s *Store) Read(id PageID) ([]byte, error) {
	buf := make([]byte, s.pageSize)
	if err := s.ReadInto(id, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadInto copies the page contents into dst, which must hold at least one
// page, and counts one read I/O. It performs no allocation — combined with
// AcquirePage/ReleasePage this is the zero-garbage copying read path.
func (s *Store) ReadInto(id PageID, dst []byte) error {
	if len(dst) < s.pageSize {
		return fmt.Errorf("pagestore: ReadInto buffer of %d bytes, page size is %d", len(dst), s.pageSize)
	}
	sh := s.shardFor(id)
	sh.mu.RLock()
	if s.mapMode {
		p, ok := sh.pages[id]
		if !ok {
			sh.mu.RUnlock()
			return fmt.Errorf("pagestore: read of unknown page %d", id)
		}
		copy(dst, p)
	} else {
		if !s.alive(id) {
			sh.mu.RUnlock()
			return fmt.Errorf("pagestore: read of unknown page %d", id)
		}
		p, _ := s.page(id)
		copy(dst, p)
	}
	sh.mu.RUnlock()
	s.reads.Add(1)
	return nil
}

// ReadAt copies up to len(dst) bytes starting at offset off within the page
// into dst, returning the number of bytes copied. Like ReadInto it performs
// no allocation; it still counts one full read I/O, because the simulated
// disk transfers whole pages (partial reads are a decoding convenience, not
// a cheaper access).
func (s *Store) ReadAt(id PageID, dst []byte, off int) (int, error) {
	if off < 0 || off > s.pageSize {
		return 0, fmt.Errorf("pagestore: ReadAt offset %d outside page of %d bytes", off, s.pageSize)
	}
	sh := s.shardFor(id)
	sh.mu.RLock()
	var n int
	if s.mapMode {
		p, ok := sh.pages[id]
		if !ok {
			sh.mu.RUnlock()
			return 0, fmt.Errorf("pagestore: read of unknown page %d", id)
		}
		n = copy(dst, p[off:])
	} else {
		if !s.alive(id) {
			sh.mu.RUnlock()
			return 0, fmt.Errorf("pagestore: read of unknown page %d", id)
		}
		p, _ := s.page(id)
		n = copy(dst, p[off:])
	}
	sh.mu.RUnlock()
	s.reads.Add(1)
	return n, nil
}

// View returns the page contents without copying, counting one read I/O. In
// the arena layout the returned slice borrows slab memory directly; it stays
// valid and immutable exactly as long as the page cannot be rewritten or
// recycled. The COW shadow-paging invariant provides that window: pages
// reachable from a pinned MVCC version are never rewritten in place (writers
// shadow-copy onto fresh pages) and never freed before the version's last
// reader drains, so a borrow taken under a version pin is safe until the pin
// is released — view lifetime must not exceed pin lifetime. Callers that
// need the bytes past that window must copy them out.
//
// In the legacy map layout View degrades to Read (a fresh copy), so callers
// are correct under either backend.
func (s *Store) View(id PageID) ([]byte, error) {
	if s.mapMode {
		return s.Read(id)
	}
	if !s.alive(id) {
		return nil, fmt.Errorf("pagestore: read of unknown page %d", id)
	}
	p, _ := s.page(id)
	s.reads.Add(1)
	return p, nil
}

// Write replaces the page contents and counts one write I/O. Short buffers
// are zero-padded; long buffers are an error (a page overflow bug upstream).
func (s *Store) Write(id PageID, data []byte) error {
	if len(data) > s.pageSize {
		return fmt.Errorf("pagestore: write of %d bytes exceeds page size %d", len(data), s.pageSize)
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var p []byte
	if s.mapMode {
		var ok bool
		p, ok = sh.pages[id]
		if !ok {
			return fmt.Errorf("pagestore: write of unknown page %d", id)
		}
	} else {
		if !s.alive(id) {
			return fmt.Errorf("pagestore: write of unknown page %d", id)
		}
		p, _ = s.page(id)
	}
	s.writes.Add(1)
	s.mutations.Add(1)
	copy(p, data)
	clear(p[len(data):])
	return nil
}

// Stats returns a snapshot of the I/O counters. Under concurrent traffic the
// four counters are read independently (each is internally consistent; the
// snapshot as a whole is approximate, which is fine for metrics).
func (s *Store) Stats() Stats {
	return Stats{
		Reads:  s.reads.Load(),
		Writes: s.writes.Load(),
		Allocs: s.allocs.Load(),
		Frees:  s.frees.Load(),
	}
}

// ResetStats zeroes the read/write counters (allocation counters persist).
func (s *Store) ResetStats() {
	s.reads.Store(0)
	s.writes.Store(0)
}

// Live returns the number of currently allocated pages.
func (s *Store) Live() int {
	return int(s.live.Load())
}

// FreeListLen returns the number of freed page slots currently awaiting
// recycling. Together with Live it accounts for every slot below the
// high-water mark: Live() + FreeListLen() + 1 == next ID to be minted fresh.
func (s *Store) FreeListLen() int {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	return len(s.free)
}

// ArenaBytes returns the total bytes held in slab extents (0 in map mode).
// Slabs are never returned to the GC, so this is the store's resident
// high-water footprint.
func (s *Store) ArenaBytes() int {
	if s.mapMode {
		return 0
	}
	exts := *s.extents.Load()
	total := 0
	for _, e := range exts {
		total += len(e.data)
	}
	return total
}

// Epoch returns the store's mutation counter: a monotonic value that
// advances on every Write, Alloc and Free and never on reads. Two equal
// Epoch readings bracket a window in which the stored bytes did not change,
// so a checkpointer can skip re-snapshotting an unchanged store. It is not
// persisted; a store restored via FromImage restarts at zero.
func (s *Store) Epoch() int64 {
	return s.mutations.Load()
}
