// Package pagestore simulates the disk layer of the paper's testbed: a store
// of fixed-size pages (4 KB in the experiments) with read/write counters.
//
// The paper reports query cost partly as leaf-page I/O (Figs. 9(c), 9(g));
// counting page touches on an in-memory store preserves the orderings and
// ratios between competing indexes without needing a physical disk. All
// disk-resident structures (octree leaf lists, extendible-hash buckets,
// R-tree leaves) allocate their pages here.
package pagestore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the page size used throughout the experiments (4 KB).
const DefaultPageSize = 4096

// PageID identifies a page within a Store. Zero is never a valid page.
type PageID uint32

// Stats is a snapshot of I/O counters.
type Stats struct {
	Reads  int64 // pages read
	Writes int64 // pages written
	Allocs int64 // pages allocated over the store's lifetime
	Frees  int64 // pages freed
}

// Sub returns the counter deltas from an earlier snapshot.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Reads:  s.Reads - earlier.Reads,
		Writes: s.Writes - earlier.Writes,
		Allocs: s.Allocs - earlier.Allocs,
		Frees:  s.Frees - earlier.Frees,
	}
}

// IO returns total page touches (reads + writes).
func (s Stats) IO() int64 { return s.Reads + s.Writes }

// Store is a page allocator with I/O accounting. It is safe for concurrent
// use: reads share an RWMutex read lock so concurrent readers proceed in
// parallel, mutations (write/alloc/free) take the write lock, and the I/O
// counters are atomics so accounting never serializes the read path.
type Store struct {
	mu       sync.RWMutex
	pageSize int
	pages    map[PageID][]byte
	free     []PageID
	next     PageID
	limit    int // max live pages; 0 = unlimited

	reads, writes, allocs, frees atomic.Int64
}

// ErrFull is returned by Alloc when the store's page limit is exhausted.
var ErrFull = errors.New("pagestore: page limit exhausted")

// New returns a store with the given page size (DefaultPageSize if <= 0).
func New(pageSize int) *Store {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Store{pageSize: pageSize, pages: make(map[PageID][]byte), next: 1}
}

// NewLimited returns a store that fails Alloc after maxPages live pages,
// for failure-injection tests.
func NewLimited(pageSize, maxPages int) *Store {
	s := New(pageSize)
	s.limit = maxPages
	return s
}

// PageSize returns the size in bytes of each page.
func (s *Store) PageSize() int { return s.pageSize }

// Alloc reserves a new zeroed page and returns its ID.
func (s *Store) Alloc() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.limit > 0 && len(s.pages) >= s.limit {
		return 0, ErrFull
	}
	var id PageID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.next
		s.next++
	}
	s.pages[id] = make([]byte, s.pageSize)
	s.allocs.Add(1)
	return id, nil
}

// Free releases a page back to the store.
func (s *Store) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pages[id]; !ok {
		return fmt.Errorf("pagestore: free of unknown page %d", id)
	}
	delete(s.pages, id)
	s.free = append(s.free, id)
	s.frees.Add(1)
	return nil
}

// Read copies the page contents into a fresh buffer and counts one read I/O.
// Concurrent reads proceed in parallel.
func (s *Store) Read(id PageID) ([]byte, error) {
	s.mu.RLock()
	p, ok := s.pages[id]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("pagestore: read of unknown page %d", id)
	}
	buf := make([]byte, s.pageSize)
	copy(buf, p)
	s.mu.RUnlock()
	s.reads.Add(1)
	return buf, nil
}

// Write replaces the page contents and counts one write I/O. Short buffers
// are zero-padded; long buffers are an error (a page overflow bug upstream).
func (s *Store) Write(id PageID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[id]
	if !ok {
		return fmt.Errorf("pagestore: write of unknown page %d", id)
	}
	if len(data) > s.pageSize {
		return fmt.Errorf("pagestore: write of %d bytes exceeds page size %d", len(data), s.pageSize)
	}
	s.writes.Add(1)
	copy(p, data)
	for i := len(data); i < s.pageSize; i++ {
		p[i] = 0
	}
	return nil
}

// Stats returns a snapshot of the I/O counters. Under concurrent traffic the
// four counters are read independently (each is internally consistent; the
// snapshot as a whole is approximate, which is fine for metrics).
func (s *Store) Stats() Stats {
	return Stats{
		Reads:  s.reads.Load(),
		Writes: s.writes.Load(),
		Allocs: s.allocs.Load(),
		Frees:  s.frees.Load(),
	}
}

// ResetStats zeroes the read/write counters (allocation counters persist).
func (s *Store) ResetStats() {
	s.reads.Store(0)
	s.writes.Store(0)
}

// Live returns the number of currently allocated pages.
func (s *Store) Live() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}
