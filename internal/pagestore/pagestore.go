// Package pagestore simulates the disk layer of the paper's testbed: a store
// of fixed-size pages (4 KB in the experiments) with read/write counters.
//
// The paper reports query cost partly as leaf-page I/O (Figs. 9(c), 9(g));
// counting page touches on an in-memory store preserves the orderings and
// ratios between competing indexes without needing a physical disk. All
// disk-resident structures (octree leaf lists, extendible-hash buckets,
// R-tree leaves) allocate their pages here.
package pagestore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the page size used throughout the experiments (4 KB).
const DefaultPageSize = 4096

// numShards is the lock-striping factor of the page map. Page IDs are
// assigned sequentially, so id&(numShards-1) spreads consecutive pages
// evenly; a power of two keeps the shard pick a single mask instruction.
const numShards = 16

// PageID identifies a page within a Store. Zero is never a valid page.
type PageID uint32

// Stats is a snapshot of I/O counters.
type Stats struct {
	Reads  int64 // pages read
	Writes int64 // pages written
	Allocs int64 // pages allocated over the store's lifetime
	Frees  int64 // pages freed
}

// Sub returns the counter deltas from an earlier snapshot.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Reads:  s.Reads - earlier.Reads,
		Writes: s.Writes - earlier.Writes,
		Allocs: s.Allocs - earlier.Allocs,
		Frees:  s.Frees - earlier.Frees,
	}
}

// IO returns total page touches (reads + writes).
func (s Stats) IO() int64 { return s.Reads + s.Writes }

// shard is one stripe of the page map with its own lock, so concurrent
// readers of different pages never touch the same cache line of lock state.
type shard struct {
	mu    sync.RWMutex
	pages map[PageID][]byte
}

// Store is a page allocator with I/O accounting. It is safe for concurrent
// use: the page map is split into numShards lock-striped shards (page ID →
// shard), so reads and writes of different pages proceed without contending
// on a single lock. Allocator state (free list, next ID, page limit) sits
// behind its own mutex, and the I/O counters are atomics so accounting never
// serializes the read path.
//
// Lock order: allocMu before any shard lock; shard locks are never nested.
type Store struct {
	pageSize int
	shards   [numShards]shard

	allocMu sync.Mutex
	free    []PageID
	next    PageID
	limit   int // max live pages; 0 = unlimited
	live    atomic.Int64

	bufs sync.Pool // *[]byte scratch buffers of pageSize bytes

	reads, writes, allocs, frees atomic.Int64

	// mutations counts every state-changing operation (Write, Alloc, Free)
	// over the store's lifetime — the dirty epoch checkpointing compares to
	// decide whether a new snapshot is needed. Reads never advance it.
	mutations atomic.Int64
}

// ErrFull is returned by Alloc when the store's page limit is exhausted.
var ErrFull = errors.New("pagestore: page limit exhausted")

// New returns a store with the given page size (DefaultPageSize if <= 0).
func New(pageSize int) *Store {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	s := &Store{pageSize: pageSize, next: 1}
	for i := range s.shards {
		s.shards[i].pages = make(map[PageID][]byte)
	}
	s.bufs.New = func() any {
		b := make([]byte, pageSize)
		return &b
	}
	return s
}

// NewLimited returns a store that fails Alloc after maxPages live pages,
// for failure-injection tests.
func NewLimited(pageSize, maxPages int) *Store {
	s := New(pageSize)
	s.limit = maxPages
	return s
}

// PageSize returns the size in bytes of each page.
func (s *Store) PageSize() int { return s.pageSize }

func (s *Store) shardFor(id PageID) *shard {
	return &s.shards[uint32(id)&(numShards-1)]
}

// AcquirePage hands out a page-sized scratch buffer from the store's pool.
// Pair with ReleasePage on every path; the contents are arbitrary leftovers
// from the previous user.
func (s *Store) AcquirePage() *[]byte {
	return s.bufs.Get().(*[]byte)
}

// ReleasePage returns a buffer obtained from AcquirePage to the pool.
// Buffers of the wrong size are dropped rather than poisoning the pool.
func (s *Store) ReleasePage(p *[]byte) {
	if p == nil || len(*p) != s.pageSize {
		return
	}
	s.bufs.Put(p)
}

// Alloc reserves a new zeroed page and returns its ID.
func (s *Store) Alloc() (PageID, error) {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	if s.limit > 0 && int(s.live.Load()) >= s.limit {
		return 0, ErrFull
	}
	var id PageID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.next
		s.next++
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.pages[id] = make([]byte, s.pageSize)
	sh.mu.Unlock()
	s.live.Add(1)
	s.allocs.Add(1)
	s.mutations.Add(1)
	return id, nil
}

// Free releases a page back to the store.
func (s *Store) Free(id PageID) error {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	sh := s.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.pages[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("pagestore: free of unknown page %d", id)
	}
	delete(sh.pages, id)
	sh.mu.Unlock()
	s.free = append(s.free, id)
	s.live.Add(-1)
	s.frees.Add(1)
	s.mutations.Add(1)
	return nil
}

// Read copies the page contents into a fresh buffer and counts one read I/O.
// Concurrent reads proceed in parallel; reads of pages in different shards
// don't even share a lock. Hot paths that can reuse a buffer should prefer
// ReadInto, which performs no allocation.
func (s *Store) Read(id PageID) ([]byte, error) {
	buf := make([]byte, s.pageSize)
	if err := s.ReadInto(id, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadInto copies the page contents into dst, which must hold at least one
// page, and counts one read I/O. It performs no allocation — combined with
// AcquirePage/ReleasePage this is the zero-garbage read path.
func (s *Store) ReadInto(id PageID, dst []byte) error {
	if len(dst) < s.pageSize {
		return fmt.Errorf("pagestore: ReadInto buffer of %d bytes, page size is %d", len(dst), s.pageSize)
	}
	sh := s.shardFor(id)
	sh.mu.RLock()
	p, ok := sh.pages[id]
	if !ok {
		sh.mu.RUnlock()
		return fmt.Errorf("pagestore: read of unknown page %d", id)
	}
	copy(dst, p)
	sh.mu.RUnlock()
	s.reads.Add(1)
	return nil
}

// ReadAt copies up to len(dst) bytes starting at offset off within the page
// into dst, returning the number of bytes copied. Like ReadInto it performs
// no allocation; it still counts one full read I/O, because the simulated
// disk transfers whole pages (partial reads are a decoding convenience, not
// a cheaper access).
func (s *Store) ReadAt(id PageID, dst []byte, off int) (int, error) {
	if off < 0 || off > s.pageSize {
		return 0, fmt.Errorf("pagestore: ReadAt offset %d outside page of %d bytes", off, s.pageSize)
	}
	sh := s.shardFor(id)
	sh.mu.RLock()
	p, ok := sh.pages[id]
	if !ok {
		sh.mu.RUnlock()
		return 0, fmt.Errorf("pagestore: read of unknown page %d", id)
	}
	n := copy(dst, p[off:])
	sh.mu.RUnlock()
	s.reads.Add(1)
	return n, nil
}

// Write replaces the page contents and counts one write I/O. Short buffers
// are zero-padded; long buffers are an error (a page overflow bug upstream).
func (s *Store) Write(id PageID, data []byte) error {
	if len(data) > s.pageSize {
		return fmt.Errorf("pagestore: write of %d bytes exceeds page size %d", len(data), s.pageSize)
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.pages[id]
	if !ok {
		return fmt.Errorf("pagestore: write of unknown page %d", id)
	}
	s.writes.Add(1)
	s.mutations.Add(1)
	copy(p, data)
	clear(p[len(data):])
	return nil
}

// Stats returns a snapshot of the I/O counters. Under concurrent traffic the
// four counters are read independently (each is internally consistent; the
// snapshot as a whole is approximate, which is fine for metrics).
func (s *Store) Stats() Stats {
	return Stats{
		Reads:  s.reads.Load(),
		Writes: s.writes.Load(),
		Allocs: s.allocs.Load(),
		Frees:  s.frees.Load(),
	}
}

// ResetStats zeroes the read/write counters (allocation counters persist).
func (s *Store) ResetStats() {
	s.reads.Store(0)
	s.writes.Store(0)
}

// Live returns the number of currently allocated pages.
func (s *Store) Live() int {
	return int(s.live.Load())
}

// Epoch returns the store's mutation counter: a monotonic value that
// advances on every Write, Alloc and Free and never on reads. Two equal
// Epoch readings bracket a window in which the stored bytes did not change,
// so a checkpointer can skip re-snapshotting an unchanged store. It is not
// persisted; a store restored via FromImage restarts at zero.
func (s *Store) Epoch() int64 {
	return s.mutations.Load()
}
