package pagestore

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestAllocReadWrite(t *testing.T) {
	s := New(128)
	id, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero page ID allocated")
	}
	data := []byte("hello page store")
	if err := s.Write(id, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatalf("read back %q", got[:len(data)])
	}
	for _, b := range got[len(data):] {
		if b != 0 {
			t.Fatal("page not zero-padded")
		}
	}
	st := s.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Allocs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteOverflow(t *testing.T) {
	s := New(16)
	id, _ := s.Alloc()
	if err := s.Write(id, make([]byte, 17)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestWriteShorterClearsOldContent(t *testing.T) {
	s := New(16)
	id, _ := s.Alloc()
	_ = s.Write(id, bytes.Repeat([]byte{0xff}, 16))
	_ = s.Write(id, []byte{1, 2})
	got, _ := s.Read(id)
	if got[0] != 1 || got[1] != 2 {
		t.Fatal("prefix lost")
	}
	for _, b := range got[2:] {
		if b != 0 {
			t.Fatal("stale bytes survive shorter write")
		}
	}
}

func TestFreeAndReuse(t *testing.T) {
	s := New(32)
	id1, _ := s.Alloc()
	if err := s.Free(id1); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(id1); err == nil {
		t.Fatal("double free accepted")
	}
	if _, err := s.Read(id1); err == nil {
		t.Fatal("read of freed page accepted")
	}
	id2, _ := s.Alloc()
	if id2 != id1 {
		t.Fatalf("freed page not reused: got %d want %d", id2, id1)
	}
	got, _ := s.Read(id2)
	for _, b := range got {
		if b != 0 {
			t.Fatal("reused page not zeroed")
		}
	}
	if s.Live() != 1 {
		t.Fatalf("Live = %d", s.Live())
	}
}

func TestLimit(t *testing.T) {
	s := NewLimited(32, 2)
	if _, err := s.Alloc(); err != nil {
		t.Fatal(err)
	}
	id2, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(); !errors.Is(err, ErrFull) {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	// Freeing makes room again.
	_ = s.Free(id2)
	if _, err := s.Alloc(); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestStatsSubAndReset(t *testing.T) {
	s := New(32)
	id, _ := s.Alloc()
	before := s.Stats()
	_ = s.Write(id, []byte{1})
	_, _ = s.Read(id)
	_, _ = s.Read(id)
	delta := s.Stats().Sub(before)
	if delta.Reads != 2 || delta.Writes != 1 || delta.IO() != 3 {
		t.Fatalf("delta = %+v", delta)
	}
	s.ResetStats()
	st := s.Stats()
	if st.Reads != 0 || st.Writes != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
	if st.Allocs != 1 {
		t.Fatalf("alloc counter should persist: %+v", st)
	}
}

func TestDefaultPageSize(t *testing.T) {
	s := New(0)
	if s.PageSize() != DefaultPageSize {
		t.Fatalf("PageSize = %d", s.PageSize())
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(64)
	ids := make([]PageID, 32)
	for i := range ids {
		ids[i], _ = s.Alloc()
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := ids[(w*100+i)%len(ids)]
				_ = s.Write(id, []byte{byte(w)})
				_, _ = s.Read(id)
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Reads != 800 || st.Writes != 800 {
		t.Fatalf("stats after concurrent ops: %+v", st)
	}
}

func TestEpochAdvancesOnMutationsOnly(t *testing.T) {
	s := New(128)
	e0 := s.Epoch()
	id, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch() <= e0 {
		t.Fatal("Alloc did not advance the epoch")
	}
	e1 := s.Epoch()
	if err := s.Write(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() <= e1 {
		t.Fatal("Write did not advance the epoch")
	}
	e2 := s.Epoch()
	if _, err := s.Read(id); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := s.ReadInto(id, buf); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != e2 {
		t.Fatalf("reads advanced the epoch (%d -> %d)", e2, s.Epoch())
	}
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() <= e2 {
		t.Fatal("Free did not advance the epoch")
	}
}
