package pagestore

import (
	"bytes"
	"testing"
)

func TestReadInto(t *testing.T) {
	s := New(128)
	id, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 100)
	if err := s.Write(id, data); err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, 128)
	if err := s.ReadInto(id, dst); err != nil {
		t.Fatal(err)
	}
	want, _ := s.Read(id)
	if !bytes.Equal(dst, want) {
		t.Fatal("ReadInto contents differ from Read")
	}

	if err := s.ReadInto(id, make([]byte, 64)); err == nil {
		t.Fatal("expected error for short destination buffer")
	}
	if err := s.ReadInto(999, dst); err == nil {
		t.Fatal("expected error for unknown page")
	}

	before := s.Stats().Reads
	_ = s.ReadInto(id, dst)
	if got := s.Stats().Reads - before; got != 1 {
		t.Fatalf("ReadInto counted %d reads, want 1", got)
	}
}

func TestReadAt(t *testing.T) {
	s := New(128)
	id, _ := s.Alloc()
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(i)
	}
	if err := s.Write(id, data); err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, 16)
	n, err := s.ReadAt(id, dst, 32)
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 || !bytes.Equal(dst, data[32:48]) {
		t.Fatalf("ReadAt(32) = %d bytes %v", n, dst)
	}

	// Reading past the end copies what remains.
	n, err = s.ReadAt(id, dst, 120)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 || !bytes.Equal(dst[:n], data[120:]) {
		t.Fatalf("ReadAt(120) = %d bytes", n)
	}

	if _, err := s.ReadAt(id, dst, 129); err == nil {
		t.Fatal("expected error for offset beyond page")
	}
	if _, err := s.ReadAt(999, dst, 0); err == nil {
		t.Fatal("expected error for unknown page")
	}

	before := s.Stats().Reads
	_, _ = s.ReadAt(id, dst, 0)
	if got := s.Stats().Reads - before; got != 1 {
		t.Fatalf("ReadAt counted %d reads, want 1", got)
	}
}

// TestReadIntoZeroAlloc pins the core tentpole property: a pooled-buffer
// read performs no heap allocation.
func TestReadIntoZeroAlloc(t *testing.T) {
	s := New(DefaultPageSize)
	id, _ := s.Alloc()
	if err := s.Write(id, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf := s.AcquirePage()
		if err := s.ReadInto(id, *buf); err != nil {
			t.Fatal(err)
		}
		s.ReleasePage(buf)
	})
	if allocs != 0 {
		t.Fatalf("pooled ReadInto allocates %.1f times per op, want 0", allocs)
	}
}

func TestAcquireReleasePage(t *testing.T) {
	s := New(256)
	buf := s.AcquirePage()
	if len(*buf) != 256 {
		t.Fatalf("AcquirePage returned %d bytes, want 256", len(*buf))
	}
	s.ReleasePage(buf)
	// Wrong-size or nil buffers must be rejected, not pooled.
	wrong := make([]byte, 128)
	s.ReleasePage(&wrong)
	s.ReleasePage(nil)
	if got := s.AcquirePage(); len(*got) != 256 {
		t.Fatalf("pool handed out a %d-byte buffer after bad release", len(*got))
	}
}

// TestShardedAllocFreeReuse checks the allocator across shards: freed IDs
// are reused and Live stays exact.
func TestShardedAllocFreeReuse(t *testing.T) {
	s := New(64)
	var ids []PageID
	for i := 0; i < 3*numShards; i++ {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if s.Live() != 3*numShards {
		t.Fatalf("Live = %d, want %d", s.Live(), 3*numShards)
	}
	for _, id := range ids[:numShards] {
		if err := s.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if s.Live() != 2*numShards {
		t.Fatalf("Live after frees = %d, want %d", s.Live(), 2*numShards)
	}
	id, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	// Reuse comes off the free list (LIFO), so the most recently freed ID
	// must come back first; a brand-new ID would mean it was ignored.
	if id != ids[numShards-1] {
		t.Fatalf("Alloc returned ID %d instead of reusing freed ID %d", id, ids[numShards-1])
	}
}
