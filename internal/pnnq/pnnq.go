// Package pnnq implements PNNQ Step 2: computing the qualification
// probability of each Step-1 candidate — the probability that the object is
// the nearest neighbor of the query point — under the discrete uncertainty
// model (Cheng, Kalashnikov, Prabhakar, TKDE 2004).
//
// Restricting the computation to Step-1 candidates is exact: any object that
// is not a possible NN has distmin > min-max distance, so for every instance
// of a candidate that could win (distance <= min-max), the non-candidate is
// farther with probability 1 and contributes factor 1 to the product.
package pnnq

import (
	"sort"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// CandidateData carries the per-object data Step 2 needs: the pdf instances
// fetched from the secondary index.
type CandidateData struct {
	ID        uncertain.ID
	Instances []uncertain.Instance
}

// Result is one object's qualification probability.
type Result struct {
	ID   uncertain.ID
	Prob float64
}

// Compute returns the qualification probability of every candidate with
// respect to query point q, in decreasing probability order. Candidates with
// zero probability (possible under the discrete pdf even when regions
// overlap the cutoff) are omitted. Instances at exactly equal distance split
// the win evenly (uniform random tie-breaking), so probabilities sum to 1
// even on degenerate pdfs.
//
//	P(o is NN) = Σ_{s ∈ instances(o)} p(s) · P(every o'≠o realizes a farther
//	             distance, ties sharing the win uniformly)
func Compute(cands []CandidateData, q geom.Point) []Result {
	if len(cands) == 0 {
		return nil
	}
	// Per-candidate weighted distance distributions, plus the raw distances
	// for the outer instance loop.
	dists := make([]distrib, len(cands))
	raw := make([][]float64, len(cands))
	for i, c := range cands {
		ds := make([]float64, len(c.Instances))
		ws := make([]float64, len(c.Instances))
		for j, in := range c.Instances {
			ds[j] = geom.Dist(in.Pos, q)
			ws[j] = in.Prob
		}
		raw[i] = ds
		dists[i] = newDistrib(ds, ws)
	}
	var out []Result
	for i, c := range cands {
		var total float64
		for j, in := range c.Instances {
			if in.Prob == 0 {
				continue
			}
			total += in.Prob * winMass(dists, i, raw[i][j])
		}
		if total > 0 {
			out = append(out, Result{ID: c.ID, Prob: total})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// probFarther returns the fraction of instances (equally weighted within the
// sorted distance slice) strictly farther than r. Ties count as farther,
// matching the strict "closest" semantics of the paper's NN definition.
func probFarther(sorted []float64, r float64) float64 {
	if len(sorted) == 0 {
		return 1 // no instances: treat as unconstrained (region-only object)
	}
	idx := sort.SearchFloat64s(sorted, r)
	for idx < len(sorted) && sorted[idx] == r {
		idx++
	}
	return float64(len(sorted)-idx) / float64(len(sorted))
}

// Bounds computes lower and upper bounds on each candidate's qualification
// probability without the full O(n²·m) product, in the spirit of the
// probabilistic verifiers of Cheng et al. (ICDE 2008): for candidate o, any
// instance closer than every other candidate's minimum instance distance
// wins outright (lower bound), and any instance farther than some other
// candidate's maximum instance distance never wins (upper bound).
type Bound struct {
	ID     uncertain.ID
	Lo, Hi float64
}

// ComputeBounds returns per-candidate probability bounds. The exact
// probability from Compute always lies within [Lo, Hi].
func ComputeBounds(cands []CandidateData, q geom.Point) []Bound {
	n := len(cands)
	if n == 0 {
		return nil
	}
	minD := make([]float64, n)
	maxD := make([]float64, n)
	for i, c := range cands {
		lo, hi := distExtremes(c.Instances, q)
		minD[i], maxD[i] = lo, hi
	}
	out := make([]Bound, n)
	for i, c := range cands {
		// othersMin: the smallest minimum distance among other candidates;
		// othersMax: the smallest maximum distance among other candidates.
		othersMin, othersMax := 1e308, 1e308
		for k := 0; k < n; k++ {
			if k == i {
				continue
			}
			if minD[k] < othersMin {
				othersMin = minD[k]
			}
			if maxD[k] < othersMax {
				othersMax = maxD[k]
			}
		}
		var lo, hi float64
		for _, in := range c.Instances {
			r := geom.Dist(in.Pos, q)
			if r < othersMin {
				lo += in.Prob // beats every possible position of everyone else
			}
			if r <= othersMax {
				hi += in.Prob // could beat the closest rival's worst case
			}
		}
		if hi > 1 {
			hi = 1
		}
		out[i] = Bound{ID: c.ID, Lo: lo, Hi: hi}
	}
	return out
}

// ComputeVerified evaluates Step 2 the way the probabilistic verifiers of
// Cheng et al. (ICDE 2008) propose: cheap per-candidate probability bounds
// first, the expensive exact product only for candidates whose bounds leave
// the answer open. A candidate whose upper bound is zero is discarded; one
// whose bounds pin its probability within eps is reported at the bound
// midpoint. The result therefore differs from Compute by at most eps per
// object (exactly equal when eps = 0).
func ComputeVerified(cands []CandidateData, q geom.Point, eps float64) []Result {
	if len(cands) == 0 {
		return nil
	}
	bounds := ComputeBounds(cands, q)
	var settled []Result
	var open []CandidateData
	for i, b := range bounds {
		switch {
		case b.Hi == 0:
			// Verified non-answer: no instance can win.
		case b.Hi-b.Lo <= eps:
			settled = append(settled, Result{ID: b.ID, Prob: (b.Lo + b.Hi) / 2})
		default:
			open = append(open, cands[i])
		}
	}
	// The exact product needs every rival's distance distribution, not just
	// the open ones — pass all candidates but report only the open IDs.
	if len(open) > 0 {
		openIDs := make(map[uncertain.ID]bool, len(open))
		for _, c := range open {
			openIDs[c.ID] = true
		}
		for _, r := range Compute(cands, q) {
			if openIDs[r.ID] {
				settled = append(settled, r)
			}
		}
	}
	sort.Slice(settled, func(i, j int) bool {
		if settled[i].Prob != settled[j].Prob {
			return settled[i].Prob > settled[j].Prob
		}
		return settled[i].ID < settled[j].ID
	})
	return settled
}

func distExtremes(ins []uncertain.Instance, q geom.Point) (lo, hi float64) {
	lo, hi = 1e308, 0
	for _, in := range ins {
		d := geom.Dist(in.Pos, q)
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if len(ins) == 0 {
		lo, hi = 0, 0
	}
	return lo, hi
}
