package pnnq

import (
	"math"
	"math/rand"
	"testing"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

func instancesAt(points ...geom.Point) []uncertain.Instance {
	w := 1.0 / float64(len(points))
	out := make([]uncertain.Instance, len(points))
	for i, p := range points {
		out[i] = uncertain.Instance{Pos: p, Prob: w}
	}
	return out
}

func TestComputeTwoObjects(t *testing.T) {
	q := geom.Point{0, 0}
	// Object 1: one instance at distance 1. Object 2: two instances at
	// distances 0.5 and 2 (each prob 0.5).
	cands := []CandidateData{
		{ID: 1, Instances: instancesAt(geom.Point{1, 0})},
		{ID: 2, Instances: instancesAt(geom.Point{0.5, 0}, geom.Point{2, 0})},
	}
	res := Compute(cands, q)
	if len(res) != 2 {
		t.Fatalf("results: %v", res)
	}
	probs := map[uncertain.ID]float64{}
	for _, r := range res {
		probs[r.ID] = r.Prob
	}
	// P(1 NN) = P(dist2 > 1) = 0.5; P(2 NN) = 0.5·P(dist1>0.5) + 0.5·P(dist1>2) = 0.5.
	if math.Abs(probs[1]-0.5) > 1e-12 || math.Abs(probs[2]-0.5) > 1e-12 {
		t.Fatalf("probs = %v", probs)
	}
	// Results sorted by decreasing probability.
	if res[0].Prob < res[1].Prob {
		t.Fatal("results not sorted")
	}
}

func TestComputeCertainWinner(t *testing.T) {
	q := geom.Point{0, 0}
	cands := []CandidateData{
		{ID: 1, Instances: instancesAt(geom.Point{1, 0})},
		{ID: 2, Instances: instancesAt(geom.Point{5, 0}, geom.Point{6, 0})},
	}
	res := Compute(cands, q)
	if len(res) != 1 || res[0].ID != 1 || res[0].Prob != 1 {
		t.Fatalf("res = %v", res)
	}
}

func TestComputeEmpty(t *testing.T) {
	if res := Compute(nil, geom.Point{0, 0}); res != nil {
		t.Fatalf("empty input: %v", res)
	}
}

func TestComputeMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db := uncertain.NewDB(geom.UnitCube(2, 200))
	for i := 0; i < 15; i++ {
		lo := geom.Point{rng.Float64() * 180, rng.Float64() * 180}
		region := geom.NewRect(lo, geom.Point{lo[0] + 3 + rng.Float64()*15, lo[1] + 3 + rng.Float64()*15})
		_ = db.Add(&uncertain.Object{
			ID:        uncertain.ID(i),
			Region:    region,
			Instances: uncertain.SampleInstances(region, uncertain.PDFUniform, 50, rng),
		})
	}
	for iter := 0; iter < 25; iter++ {
		q := geom.Point{rng.Float64() * 200, rng.Float64() * 200}
		// Feed ALL objects as candidates: must equal brute force exactly.
		var cands []CandidateData
		for _, o := range db.Objects() {
			cands = append(cands, CandidateData{ID: o.ID, Instances: o.Instances})
		}
		got := Compute(cands, q)
		want := bruteforce.QualificationProbs(db, q)
		gotMap := map[uncertain.ID]float64{}
		for _, r := range got {
			gotMap[r.ID] = r.Prob
		}
		if len(gotMap) != len(want) {
			t.Fatalf("got %d positive, want %d", len(gotMap), len(want))
		}
		for id, p := range want {
			if math.Abs(gotMap[id]-p) > 1e-9 {
				t.Fatalf("obj %d: %g vs %g", id, gotMap[id], p)
			}
		}
	}
}

func TestBoundsSandwichExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 50; iter++ {
		var cands []CandidateData
		n := 3 + rng.Intn(5)
		for i := 0; i < n; i++ {
			var pts []geom.Point
			m := 5 + rng.Intn(30)
			for j := 0; j < m; j++ {
				pts = append(pts, geom.Point{rng.Float64() * 100, rng.Float64() * 100})
			}
			cands = append(cands, CandidateData{ID: uncertain.ID(i), Instances: instancesAt(pts...)})
		}
		q := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		exact := Compute(cands, q)
		exactMap := map[uncertain.ID]float64{}
		for _, r := range exact {
			exactMap[r.ID] = r.Prob
		}
		for _, b := range ComputeBounds(cands, q) {
			p := exactMap[b.ID]
			if p < b.Lo-1e-9 || p > b.Hi+1e-9 {
				t.Fatalf("bounds violated for %d: p=%g not in [%g, %g]", b.ID, p, b.Lo, b.Hi)
			}
		}
	}
}

// ComputeVerified with eps=0 must equal Compute exactly; with eps>0 it may
// deviate per object by at most eps.
func TestComputeVerifiedMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 40; iter++ {
		var cands []CandidateData
		n := 4 + rng.Intn(8)
		for i := 0; i < n; i++ {
			m := 10 + rng.Intn(30)
			ins := make([]uncertain.Instance, m)
			cx, cy := rng.Float64()*200, rng.Float64()*200
			for j := range ins {
				ins[j] = uncertain.Instance{
					Pos:  geom.Point{cx + rng.Float64()*20, cy + rng.Float64()*20},
					Prob: 1 / float64(m),
				}
			}
			cands = append(cands, CandidateData{ID: uncertain.ID(i), Instances: ins})
		}
		q := geom.Point{rng.Float64() * 200, rng.Float64() * 200}
		exact := Compute(cands, q)
		zero := ComputeVerified(cands, q, 0)
		if len(exact) != len(zero) {
			t.Fatalf("eps=0: %d vs %d results", len(zero), len(exact))
		}
		for i := range exact {
			if exact[i].ID != zero[i].ID || math.Abs(exact[i].Prob-zero[i].Prob) > 1e-12 {
				t.Fatalf("eps=0 deviates at %d", i)
			}
		}
		const eps = 0.05
		loose := ComputeVerified(cands, q, eps)
		exactMap := map[uncertain.ID]float64{}
		for _, r := range exact {
			exactMap[r.ID] = r.Prob
		}
		for _, r := range loose {
			if math.Abs(r.Prob-exactMap[r.ID]) > eps+1e-12 {
				t.Fatalf("eps=%g: object %d off by %g", eps, r.ID, math.Abs(r.Prob-exactMap[r.ID]))
			}
		}
	}
}

func TestProbFartherTies(t *testing.T) {
	sorted := []float64{1, 2, 2, 3}
	if got := probFarther(sorted, 2); got != 0.25 {
		t.Fatalf("ties: %g", got) // only 3 is strictly farther
	}
	if got := probFarther(sorted, 0.5); got != 1 {
		t.Fatalf("all farther: %g", got)
	}
	if got := probFarther(sorted, 5); got != 0 {
		t.Fatalf("none farther: %g", got)
	}
	if got := probFarther(nil, 1); got != 1 {
		t.Fatalf("empty: %g", got)
	}
}
