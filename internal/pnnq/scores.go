package pnnq

import (
	"sort"

	"pvoronoi/internal/uncertain"
)

// ScoredCandidate generalizes Step 2 beyond plain point distance: each
// instance carries a scalar score (e.g. an aggregate distance over a group
// of query points), and the winner is the object whose realized score is the
// minimum. Weights must sum to 1 per candidate.
type ScoredCandidate struct {
	ID      uncertain.ID
	Scores  []float64 // one per instance
	Weights []float64 // instance probabilities; uniform if nil
}

// ComputeScores returns P(candidate's score is the strict minimum) for each
// candidate, in decreasing probability order — the engine behind both plain
// PNNQ Step 2 and the group-NN extension.
func ComputeScores(cands []ScoredCandidate) []Result {
	if len(cands) == 0 {
		return nil
	}
	sorted := make([][]float64, len(cands))
	for i, c := range cands {
		s := append([]float64(nil), c.Scores...)
		sort.Float64s(s)
		sorted[i] = s
	}
	var out []Result
	for i, c := range cands {
		var total float64
		for j, score := range c.Scores {
			w := 1.0 / float64(len(c.Scores))
			if c.Weights != nil {
				w = c.Weights[j]
			}
			prod := w
			for k := range cands {
				if k == i {
					continue
				}
				prod *= probFarther(sorted[k], score)
				if prod == 0 {
					break
				}
			}
			total += prod
		}
		if total > 0 {
			out = append(out, Result{ID: c.ID, Prob: total})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// KNNResult is one object's probability of ranking within the k nearest.
type KNNResult struct {
	ID   uncertain.ID
	Prob float64
}

// ComputeKNN returns, for every candidate, the probability that it ranks
// among the k nearest to the (implicit) query — i.e. that fewer than k other
// candidates realize a strictly smaller score. Independence across objects
// gives a Poisson-binomial count, evaluated by the standard O(n·k) dynamic
// program per instance.
func ComputeKNN(cands []ScoredCandidate, k int) []KNNResult {
	n := len(cands)
	if n == 0 || k <= 0 {
		return nil
	}
	if k >= n {
		// Everyone is trivially within the k nearest.
		out := make([]KNNResult, n)
		for i, c := range cands {
			out[i] = KNNResult{ID: c.ID, Prob: 1}
		}
		return out
	}
	sorted := make([][]float64, n)
	for i, c := range cands {
		s := append([]float64(nil), c.Scores...)
		sort.Float64s(s)
		sorted[i] = s
	}
	out := make([]KNNResult, 0, n)
	dp := make([]float64, k) // dp[j] = P(exactly j others closer), truncated at k-1
	next := make([]float64, k)
	for i, c := range cands {
		var total float64
		for j, score := range c.Scores {
			w := 1.0 / float64(len(c.Scores))
			if c.Weights != nil {
				w = c.Weights[j]
			}
			// pCloser[k] for each other candidate = 1 - P(farther-or-equal).
			for x := range dp {
				dp[x] = 0
			}
			dp[0] = 1
			alive := true
			for o := range cands {
				if o == i {
					continue
				}
				pCloser := 1 - probFarther(sorted[o], score)
				if pCloser == 1 {
					// Shift the whole distribution; if it all falls off the
					// truncated end, this instance cannot be within top-k.
					copy(next[1:], dp[:k-1])
					next[0] = 0
					dp, next = next, dp
					allZero := true
					for _, v := range dp {
						if v != 0 {
							allZero = false
							break
						}
					}
					if allZero {
						alive = false
						break
					}
					continue
				}
				if pCloser == 0 {
					continue
				}
				for x := 0; x < k; x++ {
					next[x] = dp[x] * (1 - pCloser)
					if x > 0 {
						next[x] += dp[x-1] * pCloser
					}
				}
				dp, next = next, dp
			}
			if !alive {
				continue
			}
			var pWithin float64
			for _, v := range dp {
				pWithin += v
			}
			total += w * pWithin
		}
		if total > 0 {
			out = append(out, KNNResult{ID: c.ID, Prob: total})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].ID < out[j].ID
	})
	return out
}
