package pnnq

import (
	"sort"

	"pvoronoi/internal/uncertain"
)

// ScoredCandidate generalizes Step 2 beyond plain point distance: each
// instance carries a scalar score (e.g. an aggregate distance over a group
// of query points), and the winner is the object whose realized score is the
// minimum. Weights must sum to 1 per candidate.
type ScoredCandidate struct {
	ID      uncertain.ID
	Scores  []float64 // one per instance
	Weights []float64 // instance probabilities; uniform if nil
}

// ComputeScores returns P(candidate's score is the minimum) for each
// candidate, in decreasing probability order — the engine behind both plain
// PNNQ Step 2 and the group-NN extension. Exact score ties split the win
// evenly among the tied candidates (uniform random tie-breaking), so
// per-query probabilities sum to 1 even on degenerate pdfs; the previous
// strict-minimum rule dropped both sides of a tie.
func ComputeScores(cands []ScoredCandidate) []Result {
	if len(cands) == 0 {
		return nil
	}
	dists := make([]distrib, len(cands))
	for i, c := range cands {
		dists[i] = newDistrib(c.Scores, c.Weights)
	}
	var out []Result
	for i, c := range cands {
		var total float64
		for j, score := range c.Scores {
			w := 1.0 / float64(len(c.Scores))
			if c.Weights != nil {
				w = c.Weights[j]
			}
			if w == 0 {
				continue
			}
			total += w * winMass(dists, i, score)
		}
		if total > 0 {
			out = append(out, Result{ID: c.ID, Prob: total})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// KNNResult is one object's probability of ranking within the k nearest.
type KNNResult struct {
	ID   uncertain.ID
	Prob float64
}

// ComputeKNN returns, for every candidate, the probability that it ranks
// among the k nearest to the (implicit) query — i.e. that fewer than k other
// candidates realize a smaller score, with exact ties broken uniformly at
// random. Independence across objects gives a Poisson-binomial count over
// (closer, tied) rivals, evaluated by the dynamic program in topkMass.
func ComputeKNN(cands []ScoredCandidate, k int) []KNNResult {
	n := len(cands)
	if n == 0 || k <= 0 {
		return nil
	}
	if k >= n {
		// Everyone is trivially within the k nearest.
		out := make([]KNNResult, n)
		for i, c := range cands {
			out[i] = KNNResult{ID: c.ID, Prob: 1}
		}
		return out
	}
	dists := make([]distrib, n)
	for i, c := range cands {
		dists[i] = newDistrib(c.Scores, c.Weights)
	}
	out := make([]KNNResult, 0, n)
	for i, c := range cands {
		var total float64
		for j, score := range c.Scores {
			w := 1.0 / float64(len(c.Scores))
			if c.Weights != nil {
				w = c.Weights[j]
			}
			if w == 0 {
				continue
			}
			total += w * topkMass(dists, i, score, k)
		}
		if total > 0 {
			out = append(out, KNNResult{ID: c.ID, Prob: total})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].ID < out[j].ID
	})
	return out
}
