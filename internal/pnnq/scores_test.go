package pnnq

import (
	"math"
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// ComputeScores with plain distances must agree with Compute.
func TestComputeScoresMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := geom.Point{50, 50}
	var plain []CandidateData
	var scored []ScoredCandidate
	for i := 0; i < 10; i++ {
		n := 5 + rng.Intn(20)
		ins := make([]uncertain.Instance, n)
		sc := ScoredCandidate{ID: uncertain.ID(i), Scores: make([]float64, n), Weights: make([]float64, n)}
		for j := 0; j < n; j++ {
			p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
			ins[j] = uncertain.Instance{Pos: p, Prob: 1 / float64(n)}
			sc.Scores[j] = geom.Dist(p, q)
			sc.Weights[j] = 1 / float64(n)
		}
		plain = append(plain, CandidateData{ID: uncertain.ID(i), Instances: ins})
		scored = append(scored, sc)
	}
	a := Compute(plain, q)
	b := ComputeScores(scored)
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Abs(a[i].Prob-b[i].Prob) > 1e-12 {
			t.Fatalf("result %d: (%d, %g) vs (%d, %g)", i, a[i].ID, a[i].Prob, b[i].ID, b[i].Prob)
		}
	}
}

func TestComputeScoresNilWeightsUniform(t *testing.T) {
	cands := []ScoredCandidate{
		{ID: 1, Scores: []float64{1, 3}},
		{ID: 2, Scores: []float64{2, 4}},
	}
	res := ComputeScores(cands)
	probs := map[uncertain.ID]float64{}
	for _, r := range res {
		probs[r.ID] = r.Prob
	}
	// P(1 wins) = 0.5·P(s2>1)=0.5·1 + 0.5·P(s2>3)=0.5·0.5 → 0.75.
	if math.Abs(probs[1]-0.75) > 1e-12 || math.Abs(probs[2]-0.25) > 1e-12 {
		t.Fatalf("probs = %v", probs)
	}
}

// ComputeKNN must match a Monte-Carlo estimate of top-k membership.
func TestComputeKNNMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, k = 6, 2
	cands := make([]ScoredCandidate, n)
	for i := range cands {
		m := 4 + rng.Intn(6)
		sc := ScoredCandidate{ID: uncertain.ID(i), Scores: make([]float64, m)}
		for j := range sc.Scores {
			sc.Scores[j] = rng.Float64() * 100
		}
		cands[i] = sc
	}
	got := ComputeKNN(cands, k)
	gotMap := map[uncertain.ID]float64{}
	for _, r := range got {
		gotMap[r.ID] = r.Prob
	}
	// Monte Carlo over 200k sampled worlds.
	const worlds = 200000
	hits := make([]int, n)
	for w := 0; w < worlds; w++ {
		type sv struct {
			idx int
			s   float64
		}
		var world []sv
		for i, c := range cands {
			world = append(world, sv{i, c.Scores[rng.Intn(len(c.Scores))]})
		}
		for i := 1; i < len(world); i++ {
			for j := i; j > 0 && world[j].s < world[j-1].s; j-- {
				world[j], world[j-1] = world[j-1], world[j]
			}
		}
		for _, s := range world[:k] {
			hits[s.idx]++
		}
	}
	for i := range cands {
		mc := float64(hits[i]) / worlds
		if math.Abs(gotMap[uncertain.ID(i)]-mc) > 0.01 {
			t.Fatalf("candidate %d: DP %g vs MC %g", i, gotMap[uncertain.ID(i)], mc)
		}
	}
	// Membership probabilities sum to k.
	var sum float64
	for _, r := range got {
		sum += r.Prob
	}
	if math.Abs(sum-k) > 1e-9 {
		t.Fatalf("sum = %g, want %d", sum, k)
	}
}

// Regression: exactly-tied instance scores must split the win evenly instead
// of dropping both sides of the tie (the old strict-minimum rule made
// per-query probabilities sum to < 1).
func TestComputeScoresExactTies(t *testing.T) {
	// Two candidates with a single identical score each: 1/2 apiece.
	two := ComputeScores([]ScoredCandidate{
		{ID: 1, Scores: []float64{5}},
		{ID: 2, Scores: []float64{5}},
	})
	if len(two) != 2 {
		t.Fatalf("two-way tie dropped a candidate: %v", two)
	}
	var sum float64
	for _, r := range two {
		if math.Abs(r.Prob-0.5) > 1e-12 {
			t.Fatalf("two-way tie: candidate %d got %g, want 0.5", r.ID, r.Prob)
		}
		sum += r.Prob
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("two-way tie mass: %g, want 1", sum)
	}

	// Three-way tie: 1/3 apiece (pairwise half-crediting would give 1/4).
	three := ComputeScores([]ScoredCandidate{
		{ID: 1, Scores: []float64{7}},
		{ID: 2, Scores: []float64{7}},
		{ID: 3, Scores: []float64{7}},
	})
	for _, r := range three {
		if math.Abs(r.Prob-1.0/3) > 1e-12 {
			t.Fatalf("three-way tie: candidate %d got %g, want 1/3", r.ID, r.Prob)
		}
	}

	// Mixed: candidate 1 ties with candidate 2 on half its mass and wins
	// outright on the other half; candidate 3 never wins.
	// P(1) = 0.5·1 + 0.5·0.5 = 0.75, P(2) = 0.25, P(3) = 0.
	mixed := ComputeScores([]ScoredCandidate{
		{ID: 1, Scores: []float64{1, 3}},
		{ID: 2, Scores: []float64{3}},
		{ID: 3, Scores: []float64{9}},
	})
	probs := map[uncertain.ID]float64{}
	var mixedSum float64
	for _, r := range mixed {
		probs[r.ID] = r.Prob
		mixedSum += r.Prob
	}
	if math.Abs(probs[1]-0.75) > 1e-12 || math.Abs(probs[2]-0.25) > 1e-12 || probs[3] != 0 {
		t.Fatalf("mixed tie probs = %v", probs)
	}
	if math.Abs(mixedSum-1) > 1e-12 {
		t.Fatalf("mixed tie mass: %g, want 1", mixedSum)
	}
}

// Regression: ComputeKNN with tied scores must keep membership probabilities
// summing to k.
func TestComputeKNNExactTies(t *testing.T) {
	// Three identical candidates, k=1: each within the nearest-1 with
	// probability 1/3.
	cands := []ScoredCandidate{
		{ID: 1, Scores: []float64{4}},
		{ID: 2, Scores: []float64{4}},
		{ID: 3, Scores: []float64{4}},
	}
	for k := 1; k <= 2; k++ {
		res := ComputeKNN(cands, k)
		if len(res) != 3 {
			t.Fatalf("k=%d: tie dropped a candidate: %v", k, res)
		}
		var sum float64
		for _, r := range res {
			if math.Abs(r.Prob-float64(k)/3) > 1e-12 {
				t.Fatalf("k=%d: candidate %d got %g, want %g", k, r.ID, r.Prob, float64(k)/3)
			}
			sum += r.Prob
		}
		if math.Abs(sum-float64(k)) > 1e-12 {
			t.Fatalf("k=%d: membership mass %g, want %d", k, sum, k)
		}
	}

	// A certain closer rival plus a tied one, k=2: candidate 1 is in the
	// top-2 iff it wins or ties-and-wins against candidate 3.
	// P(1 in top2) = P(rank among {1,3} first) = 1/2 + ... with both tied at
	// 5 and candidate 2 surely at 1: positions 2 and 3 are shared uniformly
	// by {1, 3}, so each is in the top-2 with probability 1/2.
	res := ComputeKNN([]ScoredCandidate{
		{ID: 1, Scores: []float64{5}},
		{ID: 2, Scores: []float64{1}},
		{ID: 3, Scores: []float64{5}},
	}, 2)
	probs := map[uncertain.ID]float64{}
	for _, r := range res {
		probs[r.ID] = r.Prob
	}
	if probs[2] != 1 || math.Abs(probs[1]-0.5) > 1e-12 || math.Abs(probs[3]-0.5) > 1e-12 {
		t.Fatalf("tied top-2 probs = %v", probs)
	}
}

// Compute must split distance ties the same way (and agree with the
// brute-force oracle, which shares the semantics).
func TestComputeExactTies(t *testing.T) {
	q := geom.Point{0, 0}
	cands := []CandidateData{
		{ID: 1, Instances: instancesAtScores(geom.Point{3, 0})},
		{ID: 2, Instances: instancesAtScores(geom.Point{0, 3})},
	}
	res := Compute(cands, q)
	if len(res) != 2 {
		t.Fatalf("tie dropped a candidate: %v", res)
	}
	for _, r := range res {
		if math.Abs(r.Prob-0.5) > 1e-12 {
			t.Fatalf("candidate %d got %g, want 0.5", r.ID, r.Prob)
		}
	}
}

func instancesAtScores(points ...geom.Point) []uncertain.Instance {
	w := 1.0 / float64(len(points))
	out := make([]uncertain.Instance, len(points))
	for i, p := range points {
		out[i] = uncertain.Instance{Pos: p, Prob: w}
	}
	return out
}

func TestComputeKNNEdges(t *testing.T) {
	if got := ComputeKNN(nil, 3); got != nil {
		t.Fatal("nil candidates")
	}
	cands := []ScoredCandidate{{ID: 1, Scores: []float64{1}}}
	if got := ComputeKNN(cands, 0); got != nil {
		t.Fatal("k=0 should be nil")
	}
	got := ComputeKNN(cands, 5)
	if len(got) != 1 || got[0].Prob != 1 {
		t.Fatalf("k>n: %v", got)
	}
}
