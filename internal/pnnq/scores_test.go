package pnnq

import (
	"math"
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// ComputeScores with plain distances must agree with Compute.
func TestComputeScoresMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := geom.Point{50, 50}
	var plain []CandidateData
	var scored []ScoredCandidate
	for i := 0; i < 10; i++ {
		n := 5 + rng.Intn(20)
		ins := make([]uncertain.Instance, n)
		sc := ScoredCandidate{ID: uncertain.ID(i), Scores: make([]float64, n), Weights: make([]float64, n)}
		for j := 0; j < n; j++ {
			p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
			ins[j] = uncertain.Instance{Pos: p, Prob: 1 / float64(n)}
			sc.Scores[j] = geom.Dist(p, q)
			sc.Weights[j] = 1 / float64(n)
		}
		plain = append(plain, CandidateData{ID: uncertain.ID(i), Instances: ins})
		scored = append(scored, sc)
	}
	a := Compute(plain, q)
	b := ComputeScores(scored)
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Abs(a[i].Prob-b[i].Prob) > 1e-12 {
			t.Fatalf("result %d: (%d, %g) vs (%d, %g)", i, a[i].ID, a[i].Prob, b[i].ID, b[i].Prob)
		}
	}
}

func TestComputeScoresNilWeightsUniform(t *testing.T) {
	cands := []ScoredCandidate{
		{ID: 1, Scores: []float64{1, 3}},
		{ID: 2, Scores: []float64{2, 4}},
	}
	res := ComputeScores(cands)
	probs := map[uncertain.ID]float64{}
	for _, r := range res {
		probs[r.ID] = r.Prob
	}
	// P(1 wins) = 0.5·P(s2>1)=0.5·1 + 0.5·P(s2>3)=0.5·0.5 → 0.75.
	if math.Abs(probs[1]-0.75) > 1e-12 || math.Abs(probs[2]-0.25) > 1e-12 {
		t.Fatalf("probs = %v", probs)
	}
}

// ComputeKNN must match a Monte-Carlo estimate of top-k membership.
func TestComputeKNNMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, k = 6, 2
	cands := make([]ScoredCandidate, n)
	for i := range cands {
		m := 4 + rng.Intn(6)
		sc := ScoredCandidate{ID: uncertain.ID(i), Scores: make([]float64, m)}
		for j := range sc.Scores {
			sc.Scores[j] = rng.Float64() * 100
		}
		cands[i] = sc
	}
	got := ComputeKNN(cands, k)
	gotMap := map[uncertain.ID]float64{}
	for _, r := range got {
		gotMap[r.ID] = r.Prob
	}
	// Monte Carlo over 200k sampled worlds.
	const worlds = 200000
	hits := make([]int, n)
	for w := 0; w < worlds; w++ {
		type sv struct {
			idx int
			s   float64
		}
		var world []sv
		for i, c := range cands {
			world = append(world, sv{i, c.Scores[rng.Intn(len(c.Scores))]})
		}
		for i := 1; i < len(world); i++ {
			for j := i; j > 0 && world[j].s < world[j-1].s; j-- {
				world[j], world[j-1] = world[j-1], world[j]
			}
		}
		for _, s := range world[:k] {
			hits[s.idx]++
		}
	}
	for i := range cands {
		mc := float64(hits[i]) / worlds
		if math.Abs(gotMap[uncertain.ID(i)]-mc) > 0.01 {
			t.Fatalf("candidate %d: DP %g vs MC %g", i, gotMap[uncertain.ID(i)], mc)
		}
	}
	// Membership probabilities sum to k.
	var sum float64
	for _, r := range got {
		sum += r.Prob
	}
	if math.Abs(sum-k) > 1e-9 {
		t.Fatalf("sum = %g, want %d", sum, k)
	}
}

func TestComputeKNNEdges(t *testing.T) {
	if got := ComputeKNN(nil, 3); got != nil {
		t.Fatal("nil candidates")
	}
	cands := []ScoredCandidate{{ID: 1, Scores: []float64{1}}}
	if got := ComputeKNN(cands, 0); got != nil {
		t.Fatal("k=0 should be nil")
	}
	got := ComputeKNN(cands, 5)
	if len(got) != 1 || got[0].Prob != 1 {
		t.Fatalf("k>n: %v", got)
	}
}
