package pnnq

import "sort"

// distrib is one candidate's realized-score distribution: ascending unique
// score values, each value's probability mass, and the cumulative mass
// strictly below it. Unlike the plain sorted-slice representation, it honors
// non-uniform instance weights and exposes the exact tie mass at a value,
// which the tie-splitting win computations need.
type distrib struct {
	scores []float64
	mass   []float64
	below  []float64
	total  float64
}

// newDistrib builds the distribution of the given scores. A nil weight slice
// means equally weighted scores (1/n each).
func newDistrib(scores, weights []float64) distrib {
	n := len(scores)
	if n == 0 {
		return distrib{}
	}
	pairs := make([][2]float64, n)
	u := 1.0 / float64(n)
	for i, s := range scores {
		w := u
		if weights != nil {
			w = weights[i]
		}
		pairs[i] = [2]float64{s, w}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	d := distrib{scores: make([]float64, 0, n), mass: make([]float64, 0, n)}
	for _, p := range pairs {
		if m := len(d.scores); m > 0 && d.scores[m-1] == p[0] {
			d.mass[m-1] += p[1]
		} else {
			d.scores = append(d.scores, p[0])
			d.mass = append(d.mass, p[1])
		}
	}
	d.below = make([]float64, len(d.scores))
	for i, m := range d.mass {
		d.below[i] = d.total
		d.total += m
	}
	return d
}

// split returns the probability mass strictly below, exactly at, and strictly
// above r. An empty distribution (a region-only rival without instances) is
// unconstrained and counts as farther with probability 1, matching the
// probFarther convention.
func (d *distrib) split(r float64) (less, tie, far float64) {
	if len(d.scores) == 0 {
		return 0, 0, 1
	}
	i := sort.SearchFloat64s(d.scores, r)
	switch {
	case i < len(d.scores) && d.scores[i] == r:
		less, tie = d.below[i], d.mass[i]
	case i == len(d.scores):
		less = d.total
	default:
		less = d.below[i]
	}
	far = d.total - less - tie
	if far < 0 {
		far = 0 // guard against float accumulation
	}
	return less, tie, far
}

// winMass returns the probability that a realized score s beats every rival
// distribution, splitting exact ties evenly: conditioned on no rival being
// strictly closer, a t-way tie group shares the win uniformly, so each
// outcome with t tying rivals contributes 1/(t+1). With no ties this is the
// plain product of strictly-farther masses (the pre-fix behavior, which lost
// the tied mass entirely).
func winMass(dists []distrib, self int, s float64) float64 {
	prod := 1.0
	var dp []float64 // dp[t] = P(t rivals tied so far, none closer); nil until a tie appears
	for k := range dists {
		if k == self {
			continue
		}
		_, tie, far := dists[k].split(s)
		if tie == 0 {
			if far == 0 {
				return 0 // this rival is surely closer
			}
			if dp == nil {
				prod *= far
			} else {
				for t := range dp {
					dp[t] *= far
				}
			}
			continue
		}
		if dp == nil {
			dp = append(dp, prod)
		}
		dp = append(dp, 0)
		for t := len(dp) - 1; t >= 1; t-- {
			dp[t] = dp[t]*far + dp[t-1]*tie
		}
		dp[0] *= far
	}
	if dp == nil {
		return prod
	}
	var total float64
	for t, v := range dp {
		total += v / float64(t+1)
	}
	return total
}

// topkMass returns the probability that a realized score s ranks among the k
// smallest across all rivals, breaking exact ties uniformly at random: with c
// rivals strictly closer and t tied, the tie group's internal order is a
// uniform permutation, so membership holds with probability
// min(t+1, k-c)/(t+1). Outcomes with c >= k are dead and dropped from the DP
// (a closer rival can never un-happen). With continuous scores every tie
// mass is zero and the DP degenerates to the classic Poisson-binomial over
// closer counts.
func topkMass(dists []distrib, self int, s float64, k int) float64 {
	// dp[t][c] = P(exactly t tied rivals and c strictly closer rivals so
	// far), c < k. Rows are added lazily on the first rival with tie mass.
	dp := [][]float64{make([]float64, k)}
	dp[0][0] = 1
	for r := range dists {
		if r == self {
			continue
		}
		less, tie, far := dists[r].split(s)
		if tie > 0 {
			dp = append(dp, make([]float64, k))
		}
		alive := false
		for t := len(dp) - 1; t >= 0; t-- {
			row := dp[t]
			for c := k - 1; c >= 0; c-- {
				v := row[c] * far
				if c > 0 {
					v += row[c-1] * less
				}
				if t > 0 {
					v += dp[t-1][c] * tie
				}
				row[c] = v
				if v != 0 {
					alive = true
				}
			}
		}
		if !alive {
			return 0 // all mass fell past the k-th rank
		}
	}
	var total float64
	for t, row := range dp {
		for c, v := range row {
			if v == 0 {
				continue
			}
			slots := float64(k - c)
			if group := float64(t + 1); slots >= group {
				total += v
			} else {
				total += v * slots / group
			}
		}
	}
	return total
}
