package pvindex

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pvoronoi/internal/adjgraph"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// verifyAdjacency is the adjacency-graph invariant oracle: the current
// version's graph must equal a from-scratch recomputation of the UBR-
// intersection relation over the stored UBRs — one row per live object,
// carrying that object's stored UBR and exactly the IDs of every other
// object whose stored UBR intersects it.
func verifyAdjacency(t *testing.T, ix *Index, label string) {
	t.Helper()
	v := ix.current.Load()
	if v.adj == nil {
		t.Fatalf("%s: version has no adjacency graph", label)
	}
	objs := v.db.Objects()
	ubrs := make(map[uint32]geom.Rect, len(objs))
	for _, o := range objs {
		ubr, ok := ix.UBR(o.ID)
		if !ok {
			t.Fatalf("%s: object %d has no stored UBR", label, o.ID)
		}
		ubrs[uint32(o.ID)] = ubr
	}
	if v.adj.Len() != len(objs) {
		t.Fatalf("%s: graph has %d rows, database has %d objects", label, v.adj.Len(), len(objs))
	}
	edges := 0
	for id, ubr := range ubrs {
		row, ok := v.adj.Get(id)
		if !ok {
			t.Fatalf("%s: object %d missing from graph", label, id)
		}
		if !row.UBR.Equal(ubr) {
			t.Fatalf("%s: object %d row UBR %v != stored UBR %v", label, id, row.UBR, ubr)
		}
		want := map[uint32]bool{}
		for nid, nubr := range ubrs {
			if nid != id && nubr.Intersects(ubr) {
				want[nid] = true
			}
		}
		if len(row.Neighbors) != len(want) {
			t.Fatalf("%s: object %d has %d neighbors, want %d (%v vs %v)",
				label, id, len(row.Neighbors), len(want), row.Neighbors, want)
		}
		for _, n := range row.Neighbors {
			if !want[n] {
				t.Fatalf("%s: object %d lists non-intersecting neighbor %d", label, id, n)
			}
		}
		edges += len(want)
	}
	if v.adj.Edges() != edges {
		t.Fatalf("%s: graph edge counter %d != recomputed %d", label, v.adj.Edges(), edges)
	}
}

func randomObject(rng *rand.Rand, id uncertain.ID, d int, span, maxSide float64) *uncertain.Object {
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for j := 0; j < d; j++ {
		lo[j] = rng.Float64() * (span - maxSide)
		hi[j] = lo[j] + 1 + rng.Float64()*(maxSide-1)
	}
	return &uncertain.Object{ID: id, Region: geom.Rect{Lo: lo, Hi: hi}}
}

// TestAdjacencyInvariantThroughChurn drives the graph through single-op and
// batched insert/delete/reinsert traffic — including a same-ID delete+insert
// in one batch — checking the invariant oracle after every publish.
func TestAdjacencyInvariantThroughChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const span, maxSide = 600.0, 25.0
	db := randomDB(rng, 50, 2, span, maxSide, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	verifyAdjacency(t, ix, "after build")

	nextID := uncertain.ID(50)
	for round := 0; round < 6; round++ {
		// A couple of single-op writes.
		if _, err := ix.Insert(randomObject(rng, nextID, 2, span, maxSide)); err != nil {
			t.Fatal(err)
		}
		nextID++
		verifyAdjacency(t, ix, "after insert")

		victims := ix.DB().Objects()
		victim := victims[rng.Intn(len(victims))].ID
		if _, err := ix.Delete(victim); err != nil {
			t.Fatal(err)
		}
		verifyAdjacency(t, ix, "after delete")

		// Reinsert the victim's ID elsewhere — the row must come back fresh.
		if _, err := ix.Insert(randomObject(rng, victim, 2, span, maxSide)); err != nil {
			t.Fatal(err)
		}
		verifyAdjacency(t, ix, "after reinsert")

		// A mixed batch: two inserts, one delete, and a same-ID
		// delete+reinsert (exercising the adjRemoved/adjChanged handoff).
		victims = ix.DB().Objects()
		cycled := victims[rng.Intn(len(victims))].ID
		dropped := cycled
		for dropped == cycled {
			dropped = victims[rng.Intn(len(victims))].ID
		}
		batch := []Update{
			{Op: OpInsert, Object: randomObject(rng, nextID, 2, span, maxSide)},
			{Op: OpDelete, ID: cycled},
			{Op: OpInsert, Object: randomObject(rng, cycled, 2, span, maxSide)},
			{Op: OpDelete, ID: dropped},
			{Op: OpInsert, Object: randomObject(rng, nextID+1, 2, span, maxSide)},
		}
		nextID += 2
		if _, err := ix.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
		verifyAdjacency(t, ix, "after mixed batch")

		// An all-insert batch (the group-commit fast path).
		fast := make([]Update, 3)
		for i := range fast {
			fast[i] = Update{Op: OpInsert, Object: randomObject(rng, nextID, 2, span, maxSide)}
			nextID++
		}
		if _, err := ix.ApplyBatch(fast); err != nil {
			t.Fatal(err)
		}
		verifyAdjacency(t, ix, "after insert batch")
	}
}

// TestAdjacencyCOWIsolation pins a version and asserts — under concurrent
// writer churn and concurrent graph readers, so -race patrols the COW
// discipline — that the pinned graph's rows stay bit-identical (same *Row
// pointers) however many successors publish.
func TestAdjacencyCOWIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const span, maxSide = 600.0, 25.0
	db := randomDB(rng, 40, 2, span, maxSide, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}

	pinned := ix.Pin()
	defer pinned.Release()
	snap := make(map[uint32]*adjgraph.Row)
	pinned.v.adj.ForEach(func(id uint32, row *adjgraph.Row) bool {
		snap[id] = row
		return true
	})
	wantLen, wantEdges := pinned.v.adj.Len(), pinned.v.adj.Edges()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(23))
		nextID := uncertain.ID(1000)
		for i := 0; i < 8; i++ {
			if _, err := ix.Insert(randomObject(wrng, nextID, 2, span, maxSide)); err != nil {
				t.Error(err)
				return
			}
			if _, err := ix.Delete(nextID); err != nil {
				t.Error(err)
				return
			}
			nextID++
		}
	}()
	go func() {
		defer wg.Done()
		qrng := rand.New(rand.NewSource(24))
		for i := 0; i < 40; i++ {
			q := geom.Point{qrng.Float64() * span, qrng.Float64() * span}
			if _, _, err := ix.KNNCandidatesOnly(q, 4); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if pinned.v.adj.Len() != wantLen || pinned.v.adj.Edges() != wantEdges {
		t.Fatalf("pinned graph counters changed: %d/%d, want %d/%d",
			pinned.v.adj.Len(), pinned.v.adj.Edges(), wantLen, wantEdges)
	}
	count := 0
	pinned.v.adj.ForEach(func(id uint32, row *adjgraph.Row) bool {
		count++
		if snap[id] != row {
			t.Fatalf("pinned graph row %d changed under writer churn", id)
		}
		return true
	})
	if count != wantLen {
		t.Fatalf("pinned graph row count = %d, want %d", count, wantLen)
	}
}

// TestAdjacencyPersistRoundTrip saves an index that has seen update traffic
// and asserts the loaded graph is identical to the saved one (V3 images
// carry it verbatim — no rebuild).
func TestAdjacencyPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	const span, maxSide = 600.0, 25.0
	db := randomDB(rng, 40, 2, span, maxSide, true)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := ix.Insert(randomObject(rng, uncertain.ID(100+i), 2, span, maxSide)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ix.Delete(uncertain.ID(101)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ix.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFrom(&buf, ix.DB())
	if err != nil {
		t.Fatal(err)
	}
	want := ix.current.Load().adj.Image()
	got := loaded.current.Load().adj.Image()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("loaded adjacency graph differs from saved")
	}
	verifyAdjacency(t, loaded, "after load")

	// And the loaded graph keeps maintaining itself.
	if _, err := loaded.Insert(randomObject(rng, uncertain.ID(200), 2, span, maxSide)); err != nil {
		t.Fatal(err)
	}
	verifyAdjacency(t, loaded, "after post-load insert")
}

// TestAdjacencyLoadV2Fallback rewrites a saved image as the pre-adjacency V2
// format (no Adjacency field) and asserts LoadFrom rebuilds an identical
// graph from the octree and secondary index.
func TestAdjacencyLoadV2Fallback(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	const span, maxSide = 600.0, 25.0
	db := randomDB(rng, 40, 2, span, maxSide, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ix.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	var img indexImage
	if err := gob.NewDecoder(&buf).Decode(&img); err != nil {
		t.Fatal(err)
	}
	img.Magic = persistMagicV2
	img.Adjacency = nil
	var v2 bytes.Buffer
	if err := gob.NewEncoder(&v2).Encode(&img); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadFrom(&v2, ix.DB())
	if err != nil {
		t.Fatal(err)
	}
	want := ix.current.Load().adj.Image()
	got := loaded.current.Load().adj.Image()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("rebuilt adjacency graph differs from the incrementally maintained one")
	}
	verifyAdjacency(t, loaded, "after V2 load")
}

// TestBatchMaintainsAdjacencyIncrementally asserts the write path never
// rebuilds the graph: the rows recomputed by a batch are bounded by the rows
// whose UBRs the batch itself recomputed (newcomers plus Lemma 8 affected
// sets), far below the object count.
func TestBatchMaintainsAdjacencyIncrementally(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	const span, maxSide = 2000.0, 20.0
	db := randomDB(rng, 300, 2, span, maxSide, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}

	before := ix.adjRecomputed.Load()
	batch := make([]Update, 4)
	for i := range batch {
		batch[i] = Update{Op: OpInsert, Object: randomObject(rng, uncertain.ID(1000+i), 2, span, maxSide)}
	}
	sts, err := ix.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	affected := 0
	for _, st := range sts {
		affected += st.Affected
	}
	delta := ix.adjRecomputed.Load() - before
	if delta == 0 {
		t.Fatal("batch recomputed no adjacency rows")
	}
	if max := int64(len(batch) + affected); delta > max {
		t.Fatalf("batch recomputed %d adjacency rows, want <= %d (newcomers + affected)", delta, max)
	}
	if delta >= int64(ix.DB().Len()) {
		t.Fatalf("batch recomputed %d rows of a %d-object graph — looks like a full rebuild", delta, ix.DB().Len())
	}
	st := ix.Adjacency()
	if st.Rows != ix.DB().Len() || st.RowsRecomputed != ix.adjRecomputed.Load() {
		t.Fatalf("AdjacencyStats inconsistent: %+v", st)
	}
	verifyAdjacency(t, ix, "after incremental batch")
}
