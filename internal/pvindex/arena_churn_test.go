package pvindex

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/uncertain"
)

// versionPages returns every page ID reachable from the pinned version: the
// octree leaf chains plus every exthash bucket and value chain.
func versionPages(t *testing.T, p *Pinned) []pagestore.PageID {
	t.Helper()
	pages, err := p.v.primary.CollectPages(nil)
	if err != nil {
		t.Fatal(err)
	}
	pages, err = p.v.secondary.CollectPages(pages)
	if err != nil {
		t.Fatal(err)
	}
	return pages
}

// churnObject builds a small uncertain object in-domain for churn batches.
func churnObject(rng *rand.Rand, id int) *uncertain.Object {
	lo := geom.Point{rng.Float64() * 9900, rng.Float64() * 9900, rng.Float64() * 9900}
	return &uncertain.Object{
		ID:     uncertain.ID(id),
		Region: geom.NewRect(lo, geom.Point{lo[0] + 40, lo[1] + 40, lo[2] + 40}),
	}
}

// waitEpochAdvance blocks until the published epoch moves delta past from
// (the background writer keeps publishing), failing after a generous bound.
func waitEpochAdvance(t *testing.T, ix *Index, from uint64, delta uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for ix.Epoch() < from+delta {
		if time.Now().After(deadline) {
			t.Fatalf("epoch stuck at %d (wanted %d)", ix.Epoch(), from+delta)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestArenaRecyclingPinnedViewsStable is the use-after-free detector for the
// arena free-list: a reader pins an old version and records every reachable
// page's borrowed view, a writer storms insert/delete batches (churning
// shadow copies, frees, and — once an older pin drains — free-list
// recycling), and the pinned reader's views must stay byte-identical
// throughout. Any rewrite-in-place of a shared page, or recycling of a page
// still reachable from a pinned version, changes the borrowed bytes and
// fails the test (and trips -race via the concurrent writer).
func TestArenaRecyclingPinnedViewsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := randomDB(rng, 300, 3, 10000, 40, true)
	ix, err := Build(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ix.store.MapBacked() {
		t.Fatal("default store should be arena-backed")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writer: alternately insert and delete a block of fresh IDs, so every
	// round shadow-copies leaf/bucket pages and frees the block's value
	// chains — a steady stream of deferred frees for the reclaimer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(7))
		next := 100000
		for {
			select {
			case <-stop:
				return
			default:
			}
			block := make([]int, 8)
			for j := range block {
				block[j] = next
				next++
				if _, err := ix.Insert(churnObject(wrng, block[j])); err != nil {
					t.Error(err)
					return
				}
			}
			for _, id := range block {
				if _, err := ix.Delete(uncertain.ID(id)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	// Concurrent readers keep the View-based query paths hot under -race.
	wg.Add(2)
	for r := 0; r < 2; r++ {
		go func(seed int64) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := geom.Point{qrng.Float64() * 10000, qrng.Float64() * 10000, qrng.Float64() * 10000}
				if _, err := ix.Snapshot(q); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(100 + r))
	}

	capture := func(p *Pinned) (ids []pagestore.PageID, snaps [][]byte) {
		ids = versionPages(t, p)
		snaps = make([][]byte, len(ids))
		for i, id := range ids {
			v, err := ix.store.View(id)
			if err != nil {
				t.Fatalf("View(%d): %v", id, err)
			}
			snaps[i] = append([]byte(nil), v...)
		}
		return ids, snaps
	}
	verify := func(ids []pagestore.PageID, snaps [][]byte, when string) {
		for i, id := range ids {
			v, err := ix.store.View(id)
			if err != nil {
				t.Fatalf("%s: pinned page %d vanished: %v", when, id, err)
			}
			if !bytes.Equal(v, snaps[i]) {
				t.Fatalf("%s: pinned page %d mutated under the reader", when, id)
			}
		}
	}

	for round := 0; round < 3; round++ {
		pinOld := ix.Pin()
		oldIDs, oldSnaps := capture(pinOld)
		// Writer churns while pinOld blocks the reclaim queue: shared pages
		// must not be rewritten in place.
		waitEpochAdvance(t, ix, pinOld.Epoch(), 4)
		verify(oldIDs, oldSnaps, "while oldest pin held")

		// Take a newer pin, then drain the old one: everything between the
		// two reclaims, the free-list refills, and the storming writer
		// recycles those slots — all while the new pin's views are held.
		pinNew := ix.Pin()
		newIDs, newSnaps := capture(pinNew)
		reclaimedBefore := ix.MVCC().Reclaimed
		freesBefore := ix.store.Stats().Frees
		pinOld.Release()
		waitEpochAdvance(t, ix, pinNew.Epoch(), 4)
		verify(newIDs, newSnaps, "across free-list recycling")
		if ix.MVCC().Reclaimed <= reclaimedBefore {
			t.Fatal("no version reclaimed after releasing the oldest pin — churn did not exercise recycling")
		}
		if ix.store.Stats().Frees <= freesBefore {
			t.Fatal("no pages freed after releasing the oldest pin")
		}
		pinNew.Release()
	}

	close(stop)
	wg.Wait()
}

// TestArenaAccountingMatchesMapBaseline drives the arena store and the
// legacy sharded-map store through an identical build + batch sequence and
// checks the allocator accounting — live pages, free-list depth, cumulative
// alloc/free counters — is identical, and that reclaimed pages really
// return to the arena free-list (live + free-list covers every slot below
// the high-water mark).
func TestArenaAccountingMatchesMapBaseline(t *testing.T) {
	build := func(store *pagestore.Store) *Index {
		rng := rand.New(rand.NewSource(5))
		db := randomDB(rng, 200, 3, 10000, 40, true)
		cfg := DefaultConfig()
		cfg.Store = store
		ix, err := Build(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	churn := func(ix *Index) {
		wrng := rand.New(rand.NewSource(9))
		for i := 0; i < 30; i++ {
			id := 50000 + i
			if _, err := ix.Insert(churnObject(wrng, id)); err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				if _, err := ix.Delete(uncertain.ID(id)); err != nil {
					t.Fatal(err)
				}
			}
		}
		// No pins are held, so every retired version reclaims on publish;
		// wait out the async drain sweeps all the same.
		deadline := time.Now().Add(10 * time.Second)
		for ix.MVCC().LiveVersions > 1 {
			if time.Now().After(deadline) {
				t.Fatalf("versions never drained: %+v", ix.MVCC())
			}
			time.Sleep(time.Millisecond)
		}
	}

	arena := pagestore.New(pagestore.DefaultPageSize)
	mapped := pagestore.NewMap(pagestore.DefaultPageSize)
	ixA := build(arena)
	ixM := build(mapped)
	churn(ixA)
	churn(ixM)

	if arena.Live() != mapped.Live() {
		t.Fatalf("live pages diverge: arena %d, map %d", arena.Live(), mapped.Live())
	}
	if arena.FreeListLen() != mapped.FreeListLen() {
		t.Fatalf("free-list depth diverges: arena %d, map %d", arena.FreeListLen(), mapped.FreeListLen())
	}
	as, ms := arena.Stats(), mapped.Stats()
	if as.Allocs != ms.Allocs || as.Frees != ms.Frees || as.Writes != ms.Writes {
		t.Fatalf("allocator counters diverge: arena %+v, map %+v", as, ms)
	}
	// Frees really return to the free-list: live pages account for exactly
	// the alloc/free delta, so every freed slot is parked for recycling
	// rather than leaked.
	if int64(arena.Live()) != as.Allocs-as.Frees {
		t.Fatalf("live %d != allocs-frees %d", arena.Live(), as.Allocs-as.Frees)
	}
	if arena.FreeListLen() == 0 {
		t.Fatal("churn with deletes left an empty free-list — nothing was ever reclaimed")
	}
	if arena.ArenaBytes() == 0 {
		t.Fatal("arena store reports no slab memory")
	}
}
