package pvindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pvoronoi/internal/core"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
	"pvoronoi/internal/wal"
)

// Op selects the kind of one batched update.
type Op uint8

const (
	// OpInsert adds Update.Object to the database and index.
	OpInsert Op = iota + 1
	// OpDelete removes the object with Update.ID.
	OpDelete
)

// Update is one operation of a write batch.
type Update struct {
	Op     Op
	Object *uncertain.Object // OpInsert
	ID     uncertain.ID      // OpDelete
}

// ErrWAL marks write-ahead-log failures surfaced by ApplyBatch, so callers
// can tell a server-side durability fault (disk full, I/O error) apart from
// an invalid request.
var ErrWAL = errors.New("pvindex: wal failure")

// seMode selects how an insert's UBR is obtained during batch application.
type seMode int

const (
	// seUseStaged reuses the UBR staged before the apply unchanged — valid
	// when no earlier batch op could have affected the newcomer's PV-cell.
	seUseStaged seMode = iota
	// seWarmStart re-runs SE warm-started from the staged UBR as the upper
	// bound — valid when only earlier *inserts* interact (Lemma 9: the cell
	// can only have shrunk).
	seWarmStart
	// seCold recomputes from scratch — required when an earlier delete
	// interacts (the cell may have grown beyond the staged bound).
	seCold
)

// stagedSE is the pre-apply SE precomputation for one insert: the
// newcomer's UBR over the pre-batch database, with its cost profile.
type stagedSE struct {
	ubr   geom.Rect
	stats core.Stats
	dur   time.Duration
}

// impact records the region of influence of one applied batch op: the new
// object's UBR for an insert, the victim's stored UBR for a delete. A staged
// UBR that intersects no earlier impact is still exact.
type impact struct {
	rect     geom.Rect
	isDelete bool
}

// ApplyBatch applies a batch of updates as one group commit onto a fresh
// MVCC version:
//
//  1. The whole batch is validated and every insert's SE computation is
//     staged against the current published version (in parallel across the
//     batch) — queries keep flowing, untouched.
//  2. If a WAL is attached (Config.WAL / AttachWAL), the batch is appended
//     to the log and made durable with a single fsync before any state
//     changes — log-then-apply, so recovery can replay it.
//  3. All updates apply to a copy-on-write working version (shared pages
//     and nodes are shadow-copied, never rewritten), which then publishes
//     with a single atomic pointer swap. Readers never observe a partial
//     batch and never wait: the previous version keeps serving until the
//     swap, then drains and is reclaimed.
//
// Validation is all-or-nothing: a duplicate insert ID or unknown delete ID
// anywhere in the batch (accounting for earlier ops in the same batch)
// fails the whole batch before anything is logged or applied. Concurrent
// ApplyBatch calls serialize; queries never block on any phase.
//
// Stats are returned per op, positionally. A mid-apply error (e.g. a full
// page store) discards the working version — the published state is
// untouched, so reads keep working. With a WAL attached the failed batch
// was already logged, so further writes and persistence snapshots are
// refused (the memory/log divergence must not compound); recovery replays
// the log from the last checkpoint.
func (ix *Index) ApplyBatch(ups []Update) ([]UpdateStats, error) {
	if len(ups) == 0 {
		return nil, nil
	}
	ix.writerMu.Lock()
	defer ix.writerMu.Unlock()
	if err := ix.damagedErr(); err != nil {
		return nil, err
	}

	base := ix.current.Load()
	staged, err := ix.stageBatch(base, ups)
	if err != nil {
		return nil, err
	}

	lastSeq := base.walSeq
	if ix.wal != nil {
		entries := make([]wal.Entry, len(ups), len(ups)+1)
		for i, u := range ups {
			e, err := encodeUpdate(u)
			if err != nil {
				return nil, err
			}
			entries[i] = e
		}
		// The commit record seals the batch: recovery buffers update records
		// and only applies them once their commit arrives, so a group commit
		// torn mid-batch by a crash is discarded whole. The payload carries
		// the batch's record count so replay can also reject stranded update
		// frames from an older torn commit sitting in front of this batch.
		var count [4]byte
		binary.LittleEndian.PutUint32(count[:], uint32(len(ups)))
		entries = append(entries, wal.Entry{Type: wal.TypeCommit, Payload: count[:]})
		if _, lastSeq, err = ix.wal.Append(entries...); err != nil {
			return nil, fmt.Errorf("%w: append: %w", ErrWAL, err)
		}
	}

	w := ix.newWorking(base)
	sts, err := w.apply(ups, staged)
	if err == nil {
		err = w.updateAdjacency()
	}
	if err == nil {
		// Budget-aware re-refinement of the rows this batch recomputed
		// (refine.go). The pass is batch-scoped, so its cost lands on the
		// batch's first op — UpdateStats.SE.Refine keeps it apart from the
		// base SE counters.
		var rst core.RefineStats
		if rst, err = w.refineAfterBatch(); err == nil && len(sts) > 0 {
			sts[0].SE.Refine.Add(rst)
		}
	}
	if err != nil {
		// Clean rollback: the working version was never published, so
		// readers keep the intact predecessor. But if the batch reached the
		// WAL it is durably logged as committed while the caller sees a
		// failure — refuse further writes so recovery (replay from the last
		// checkpoint) remains the single source of truth.
		w.abort()
		if ix.wal != nil {
			ix.setDamaged(fmt.Errorf("pvindex: batch through wal seq %d failed mid-apply after logging: %w", lastSeq, err))
		}
		return sts, err
	}
	ix.publishWorking(w, lastSeq)
	return sts, nil
}

// damagedErr reports the sticky write-path failure, if any.
func (ix *Index) damagedErr() error {
	ix.dmgMu.Lock()
	defer ix.dmgMu.Unlock()
	return ix.dmg
}

// setDamaged records the first write-path failure that must fail-stop the
// write and persistence paths.
func (ix *Index) setDamaged(err error) {
	ix.dmgMu.Lock()
	defer ix.dmgMu.Unlock()
	if ix.dmg == nil {
		ix.dmg = err
	}
}

// stageBatch validates the batch and precomputes every insert's UBR over
// the published version's state, in parallel. writerMu (held by the caller)
// guarantees no writer can shift the state underneath; queries proceed
// untouched because nothing here mutates.
func (ix *Index) stageBatch(base *version, ups []Update) ([]stagedSE, error) {
	// Validate against the database plus the batch's own earlier effects.
	delta := make(map[uncertain.ID]bool, len(ups)) // ID -> exists after ops so far
	exists := func(id uncertain.ID) bool {
		if v, ok := delta[id]; ok {
			return v
		}
		return base.db.Get(id) != nil
	}
	for i, u := range ups {
		switch u.Op {
		case OpInsert:
			if u.Object == nil {
				return nil, fmt.Errorf("pvindex: batch op %d: insert with nil object", i)
			}
			if u.Object.Dim() != base.db.Dim() {
				return nil, fmt.Errorf("pvindex: batch op %d: object %d has dim %d, domain dim %d",
					i, u.Object.ID, u.Object.Dim(), base.db.Dim())
			}
			if exists(u.Object.ID) {
				return nil, fmt.Errorf("pvindex: batch op %d: %w: %d", i, uncertain.ErrDuplicateID, u.Object.ID)
			}
			delta[u.Object.ID] = true
		case OpDelete:
			if !exists(u.ID) {
				return nil, fmt.Errorf("pvindex: batch op %d: %w: %d", i, uncertain.ErrUnknownID, u.ID)
			}
			delta[u.ID] = false
		default:
			return nil, fmt.Errorf("pvindex: batch op %d: unknown op %d", i, u.Op)
		}
	}

	// Stage SE for the inserts with a worker pool. ChooseCSet skips the
	// object's own ID, so computing a newcomer's UBR before it is added
	// yields exactly what Insert would compute after adding it; R*-tree
	// browsing mutates only atomic counters, so workers share the tree.
	staged := make([]stagedSE, len(ups))
	var idxs []int
	for i, u := range ups {
		if u.Op == OpInsert {
			idxs = append(idxs, i)
		}
	}
	ix.parallelSE(len(idxs), func(k int) {
		i := idxs[k]
		t0 := time.Now()
		staged[i].ubr, staged[i].stats = core.ComputeUBR(base.db, base.regionTree, ups[i].Object, ix.cfg.SE)
		staged[i].dur = time.Since(t0)
	})
	return staged, nil
}

// apply runs a validated, staged, logged batch against the working version.
func (w *working) apply(ups []Update, staged []stagedSE) ([]UpdateStats, error) {
	insertsOnly := true
	for _, u := range ups {
		if u.Op != OpInsert {
			insertsOnly = false
			break
		}
	}
	if insertsOnly && len(ups) > 1 {
		return w.applyInserts(ups, staged)
	}

	stats := make([]UpdateStats, 0, len(ups))
	var impacts []impact
	for i, u := range ups {
		switch u.Op {
		case OpInsert:
			mode := seUseStaged
			for _, im := range impacts {
				if !im.rect.Intersects(staged[i].ubr) {
					continue
				}
				if im.isDelete {
					mode = seCold
					break
				}
				mode = seWarmStart
			}
			st, newB, err := w.applyInsert(u.Object, &staged[i], mode)
			if err != nil {
				return stats, err
			}
			stats = append(stats, st)
			impacts = append(impacts, impact{rect: newB})
		case OpDelete:
			st, victimUBR, err := w.applyDelete(u.ID)
			if err != nil {
				return stats, err
			}
			stats = append(stats, st)
			impacts = append(impacts, impact{rect: victimUBR, isDelete: true})
		}
	}
	return stats, nil
}

// applyInserts is the group-commit fast path for an all-insert batch.
// Because insertions only ever shrink PV-cells (Lemma 9), the whole batch
// can be applied set-at-a-time instead of op-at-a-time:
//
//   - every newcomer's UBR is finalized against the final database state
//     (reusing the staged UBR outright when it intersects no other
//     newcomer's — disjoint bounds mean disjoint cells, hence no mutual
//     influence — and warm-starting from it otherwise), and
//   - every affected existing object is recomputed exactly once, however
//     many batch inserts touch it, instead of once per triggering op.
//
// The pre-batch stored UBRs used for the affected-set filters are upper
// bounds of the final cells (shrink-only), so filtering against them is
// conservative: no affected object can be missed. Both recompute phases
// fan out across a worker pool — SE reads only the working database and
// region tree, which no longer change at that point.
func (w *working) applyInserts(ups []Update, staged []stagedSE) ([]UpdateStats, error) {
	ix := w.ix
	n := len(ups)
	stats := make([]UpdateStats, n)
	batchStart := time.Now()
	defer func() {
		// TotalTime per op: its share of the batch's wall clock plus its
		// attributed staging time (spent before the apply).
		per := time.Since(batchStart) / time.Duration(n)
		for i := range stats {
			stats[i].TotalTime = per + staged[i].dur
		}
	}()

	// Phase 1: database and region tree. Validation already cleared every
	// op, so Add cannot fail on IDs; any error here is fatal corruption.
	newcomer := make(map[uint32]struct{}, n)
	for _, u := range ups {
		if err := w.db.Add(u.Object); err != nil {
			return nil, err
		}
		w.regionTree.Insert(rtree.Item{Rect: u.Object.Region, ID: uint32(u.Object.ID)})
		newcomer[uint32(u.Object.ID)] = struct{}{}
	}

	// Phase 2: final newcomer UBRs over the completed database.
	finalB := make([]geom.Rect, n)
	needsRefine := make([]bool, n)
	for i := range ups {
		stats[i].SETime += staged[i].dur
		stats[i].SE.Add(staged[i].stats)
		for j := range ups {
			if j != i && staged[j].ubr.Intersects(staged[i].ubr) {
				needsRefine[i] = true
				break
			}
		}
		if !needsRefine[i] {
			finalB[i] = staged[i].ubr
		}
	}
	ix.parallelSE(n, func(i int) {
		if !needsRefine[i] {
			return
		}
		t0 := time.Now()
		b, s := core.ComputeUBRAfterInsert(w.db, w.regionTree, ups[i].Object, staged[i].ubr, ix.cfg.SE)
		finalB[i] = b
		stats[i].SETime += time.Since(t0)
		stats[i].SE.Add(s)
	})

	// Phase 3: the union of affected existing objects, each with its
	// pre-batch UBR and the first op that touched it (for stats).
	type affectedObj struct {
		id   uint32
		oldB geom.Rect
		op   int
	}
	var affected []affectedObj
	seen := make(map[uint32]struct{})
	for i, u := range ups {
		ids, err := w.primary.RangeIDs(finalB[i])
		if err != nil {
			return stats, err
		}
		stats[i].Examined = len(ids)
		for id := range ids {
			if _, isNew := newcomer[id]; isNew {
				continue
			}
			if _, dup := seen[id]; dup {
				continue
			}
			other := w.db.Get(uncertain.ID(id))
			if other == nil {
				continue
			}
			// Lemma 8(3): objects whose regions overlap u(o) are unaffected.
			if other.Region.Intersects(u.Object.Region) {
				continue
			}
			oldB, ok := w.lookupUBR(id)
			if !ok {
				continue
			}
			// Lemma 8(2) via UBRs: disjoint bounds imply disjoint cells.
			if !oldB.Intersects(finalB[i]) {
				continue
			}
			seen[id] = struct{}{}
			affected = append(affected, affectedObj{id: id, oldB: oldB, op: i})
			stats[i].Affected++
		}
	}

	// Phase 4: recompute each affected object once (warm-started — its cell
	// can only have shrunk), then patch the indexes serially. SE results
	// land in per-object slots; stats fold serially afterward because
	// several affected objects may attribute to the same op.
	updatedB := make([]geom.Rect, len(affected))
	seDur := make([]time.Duration, len(affected))
	seStats := make([]core.Stats, len(affected))
	ix.parallelSE(len(affected), func(k int) {
		a := affected[k]
		other := w.db.Get(uncertain.ID(a.id))
		t0 := time.Now()
		updatedB[k], seStats[k] = core.ComputeUBRAfterInsert(w.db, w.regionTree, other, a.oldB, ix.cfg.SE)
		seDur[k] = time.Since(t0)
	})
	for k, a := range affected {
		stats[a.op].SETime += seDur[k]
		stats[a.op].SE.Add(seStats[k])
		other := w.db.Get(uncertain.ID(a.id))
		t0 := time.Now()
		if _, err := w.primary.RemoveDiff(a.id, a.oldB, updatedB[k]); err != nil {
			return stats, err
		}
		rec := record{UBR: updatedB[k], Region: other.Region, Instances: other.Instances}
		if err := w.putRecord(a.id, rec); err != nil {
			return stats, err
		}
		w.adjMarkChanged(a.id)
		stats[a.op].IndexTime += time.Since(t0)
	}

	// Phase 5: newcomers enter the primary and secondary indexes.
	for i, u := range ups {
		t0 := time.Now()
		if err := w.addObject(u.Object, finalB[i]); err != nil {
			return stats, err
		}
		w.adjMarkChanged(uint32(u.Object.ID))
		stats[i].IndexTime += time.Since(t0)
	}
	return stats, nil
}

// parallelSE runs fn(0..n-1) across a worker pool sized to GOMAXPROCS —
// used for the SE staging and recomputation fan-outs, which are read-only
// over the database and region tree they run against. Each index is visited
// by exactly one worker, so fn may write to per-index slots without
// synchronization.
func (ix *Index) parallelSE(n int, fn func(i int)) {
	if n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// AttachWAL binds a write-ahead log to the index: every subsequent
// ApplyBatch (and Insert/Delete, which are one-op batches) appends its
// updates to l before applying them. Attach before serving writers; it is
// not safe to call concurrently with updates.
func (ix *Index) AttachWAL(l *wal.Log) { ix.wal = l }

// WAL returns the attached write-ahead log, or nil.
func (ix *Index) WAL() *wal.Log { return ix.wal }

// WALSeq returns the sequence number of the last WAL record this index has
// applied (0 if none). A snapshot saved at this value plus a replay of all
// later WAL records reproduces the index's current state. Lock-free.
func (ix *Index) WALSeq() uint64 {
	return ix.current.Load().walSeq
}

// Recover replays every WAL record beyond the index's last applied
// sequence — the tail the current snapshot is missing — and returns how
// many updates it applied. The whole tail applies to one working version
// (one database clone, one publish at the end), so replay cost stays
// O(affected objects) per record, not O(index size); queries already being
// served keep reading the pre-replay version until the single publish.
//
// Update records buffer until their batch's commit record arrives and only
// then apply, so a group commit torn mid-batch by a crash — some frames
// durable, the commit lost — is discarded whole, never replayed as half a
// batch. Records without a sealing commit (legacy logs, torn tails) were
// never acknowledged, so dropping them is the correct crash semantics; a
// commit applies only the records of its own batch (its payload carries the
// count) and a checkpoint record clears the buffer, so stranded frames from
// a tear that ended exactly on a frame boundary can never be adopted by a
// later batch's commit — even if they predate the sealed-open truncation
// that now removes them from the log. A replay error discards the working
// version entirely — the index stays at its checkpoint state.
func (ix *Index) Recover() (int, error) {
	if ix.wal == nil {
		return 0, fmt.Errorf("pvindex: Recover without an attached WAL")
	}
	ix.writerMu.Lock()
	defer ix.writerMu.Unlock()
	if err := ix.damagedErr(); err != nil {
		return 0, err
	}

	base := ix.current.Load()
	var w *working // created lazily on the first committed update
	var pending []Update
	lastSeq := base.walSeq
	replayed := 0
	err := ix.wal.Replay(base.walSeq+1, func(rec wal.Record) error {
		switch rec.Type {
		case wal.TypeCheckpoint:
			// A checkpoint record never lands inside a group commit (a
			// batch's frames are one atomic append), so anything still
			// buffered here is the stranded tail of a torn, unacknowledged
			// batch — discard it, never let a later commit adopt it.
			pending = pending[:0]
			lastSeq = rec.Seq
			return nil
		case wal.TypeCommit:
			// The commit payload carries its batch's record count: apply
			// exactly the last count buffered updates. Older buffered
			// entries are stranded frames of a torn batch that was never
			// acknowledged (and that a sealed wal.Open would have truncated)
			// — resurrecting them would replay half a batch. An empty
			// payload is a legacy commit: it seals everything buffered.
			if len(rec.Payload) >= 4 {
				want := int(binary.LittleEndian.Uint32(rec.Payload[:4]))
				if want > len(pending) {
					return fmt.Errorf("pvindex: wal commit %d seals %d updates but only %d precede it", rec.Seq, want, len(pending))
				}
				pending = pending[len(pending)-want:]
			}
			if len(pending) > 0 && w == nil {
				w = ix.newWorking(base)
			}
			for _, u := range pending {
				var aerr error
				switch u.Op {
				case OpInsert:
					_, _, aerr = w.applyInsert(u.Object, nil, seCold)
				case OpDelete:
					_, _, aerr = w.applyDelete(u.ID)
				}
				if aerr != nil {
					return fmt.Errorf("pvindex: replaying wal batch at commit %d: %w", rec.Seq, aerr)
				}
				replayed++
			}
			pending = pending[:0]
			lastSeq = rec.Seq
			return nil
		}
		u, err := decodeUpdate(rec)
		if err != nil {
			return err
		}
		pending = append(pending, u)
		return nil
	})
	if err != nil {
		if w != nil {
			w.abort()
		}
		return replayed, err
	}
	switch {
	case w != nil:
		if err := w.updateAdjacency(); err != nil {
			w.abort()
			return replayed, err
		}
		// Re-refine the replayed rows like the original batches did.
		// Refinement is not WAL-logged (it changes no query result), so the
		// recovered UBRs may be tighter or looser than the pre-crash ones —
		// either way they are supersets of the true cells, and exact.
		if _, err := w.refineAfterBatch(); err != nil {
			w.abort()
			return replayed, err
		}
		ix.publishWorking(w, lastSeq)
	case lastSeq != base.walSeq:
		// Only checkpoint records: acknowledge the advanced sequence with a
		// structure-sharing publish.
		ix.publish(&version{
			epoch:      base.epoch + 1,
			walSeq:     lastSeq,
			db:         base.db,
			primary:    base.primary,
			secondary:  base.secondary,
			regionTree: base.regionTree,
			adj:        base.adj,
		}, nil, nil)
	}
	return replayed, nil
}
