package pvindex

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/uncertain"
	"pvoronoi/internal/wal"
)

// newObj makes a small test object at a random position within span.
func newObj(rng *rand.Rand, id uncertain.ID, d int, span, side float64) *uncertain.Object {
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for j := 0; j < d; j++ {
		lo[j] = rng.Float64() * (span - side)
		hi[j] = lo[j] + 1 + rng.Float64()*(side-1)
	}
	return &uncertain.Object{ID: id, Region: geom.Rect{Lo: lo, Hi: hi}}
}

// assertMatchesBruteforce checks PossibleNN answers against the brute-force
// oracle over the index's database at many random points.
func assertMatchesBruteforce(t *testing.T, ix *Index, rng *rand.Rand, span float64, d, iters int) {
	t.Helper()
	for i := 0; i < iters; i++ {
		q := make(geom.Point, d)
		for j := range q {
			q[j] = rng.Float64() * span
		}
		got, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(got), bruteforce.PossibleNN(ix.DB(), q)) {
			t.Fatalf("query %v: index disagrees with brute force", q)
		}
	}
}

func TestApplyBatchMixedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := randomDB(rng, 120, 2, 900, 35, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Several mixed batches: inserts of fresh IDs interleaved with deletes
	// of random survivors (picked from the current version's database — the
	// bootstrap handle is version 1's immutable snapshot).
	nextID := uncertain.ID(5000)
	for round := 0; round < 4; round++ {
		cur := ix.DB()
		var ups []Update
		for i := 0; i < 6; i++ {
			ups = append(ups, Update{Op: OpInsert, Object: newObj(rng, nextID, 2, 850, 30)})
			nextID++
		}
		for i := 0; i < 4; i++ {
			victim := cur.Objects()[rng.Intn(cur.Len())].ID
			// Avoid deleting the same ID twice within one batch.
			dup := false
			for _, u := range ups {
				if u.Op == OpDelete && u.ID == victim {
					dup = true
				}
			}
			if dup {
				continue
			}
			ups = append(ups, Update{Op: OpDelete, ID: victim})
		}
		sts, err := ix.ApplyBatch(ups)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(sts) != len(ups) {
			t.Fatalf("round %d: %d stats for %d ops", round, len(sts), len(ups))
		}
		assertMatchesBruteforce(t, ix, rng, 900, 2, 40)
	}
}

func TestApplyBatchInteractingInserts(t *testing.T) {
	// A tight cluster of batch inserts forces the staged-UBR invalidation
	// paths (warm-start and cold recompute): every newcomer's UBR intersects
	// the previous ones'.
	rng := rand.New(rand.NewSource(12))
	db := randomDB(rng, 60, 2, 600, 30, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ups []Update
	for i := 0; i < 8; i++ {
		lo := geom.Point{280 + float64(i)*4, 280 + float64(i)*3}
		o := &uncertain.Object{
			ID:     uncertain.ID(9000 + i),
			Region: geom.NewRect(lo, geom.Point{lo[0] + 15, lo[1] + 15}),
		}
		ups = append(ups, Update{Op: OpInsert, Object: o})
	}
	// And a delete in the middle of the cluster, forcing seCold for the
	// inserts that follow it.
	victim := db.Objects()[0].ID
	mid := append([]Update{}, ups[:4]...)
	mid = append(mid, Update{Op: OpDelete, ID: victim})
	mid = append(mid, ups[4:]...)
	if _, err := ix.ApplyBatch(mid); err != nil {
		t.Fatal(err)
	}
	assertMatchesBruteforce(t, ix, rng, 600, 2, 80)
}

func TestApplyBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db := randomDB(rng, 40, 2, 500, 25, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n0 := db.Len()

	// Duplicate of an existing ID fails the whole batch, applying nothing.
	_, err = ix.ApplyBatch([]Update{
		{Op: OpInsert, Object: newObj(rng, 7000, 2, 450, 20)},
		{Op: OpInsert, Object: newObj(rng, 0, 2, 450, 20)}, // ID 0 exists
	})
	if !errors.Is(err, uncertain.ErrDuplicateID) {
		t.Fatalf("duplicate ID: got %v", err)
	}
	if ix.DB().Len() != n0 {
		t.Fatalf("failed batch mutated the database (%d -> %d objects)", n0, ix.DB().Len())
	}

	// Duplicate within the batch itself.
	o := newObj(rng, 7001, 2, 450, 20)
	_, err = ix.ApplyBatch([]Update{{Op: OpInsert, Object: o}, {Op: OpInsert, Object: o}})
	if !errors.Is(err, uncertain.ErrDuplicateID) {
		t.Fatalf("in-batch duplicate: got %v", err)
	}

	// Unknown delete.
	_, err = ix.ApplyBatch([]Update{{Op: OpDelete, ID: 424242}})
	if !errors.Is(err, uncertain.ErrUnknownID) {
		t.Fatalf("unknown delete: got %v", err)
	}

	// Delete-then-reinsert of the same ID within one batch is legal.
	reborn := newObj(rng, db.Objects()[1].ID, 2, 450, 20)
	if _, err := ix.ApplyBatch([]Update{
		{Op: OpDelete, ID: reborn.ID},
		{Op: OpInsert, Object: reborn},
	}); err != nil {
		t.Fatalf("delete+reinsert batch: %v", err)
	}
	if ix.DB().Len() != n0 {
		t.Fatalf("delete+reinsert changed cardinality (%d -> %d)", n0, ix.DB().Len())
	}
	assertMatchesBruteforce(t, ix, rng, 500, 2, 60)

	// Empty batch is a no-op.
	if sts, err := ix.ApplyBatch(nil); err != nil || sts != nil {
		t.Fatalf("empty batch: %v %v", sts, err)
	}
}

func TestApplyBatchKeepsRecordCacheCoherent(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	db := randomDB(rng, 80, 2, 700, 30, true)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache over the whole database.
	for _, o := range db.Objects() {
		if _, err := ix.Instances(o.ID); err != nil {
			t.Fatal(err)
		}
	}
	// A batch that rewrites many records (deletes grow neighbors' UBRs).
	cur := ix.DB()
	var ups []Update
	for i := 0; i < 10; i++ {
		ups = append(ups, Update{Op: OpDelete, ID: cur.Objects()[rng.Intn(cur.Len()-i)].ID})
		ups = append(ups, Update{Op: OpInsert, Object: newObj(rng, uncertain.ID(8000+i), 2, 650, 25)})
	}
	// Dedup batch-internal delete collisions.
	seen := map[uncertain.ID]bool{}
	var clean []Update
	for _, u := range ups {
		if u.Op == OpDelete {
			if seen[u.ID] {
				continue
			}
			seen[u.ID] = true
		}
		clean = append(clean, u)
	}
	if _, err := ix.ApplyBatch(clean); err != nil {
		t.Fatal(err)
	}
	// Every surviving object's cached record must match its stored truth:
	// UBR lookups and instance fetches go through the cache.
	assertMatchesBruteforce(t, ix, rng, 700, 2, 80)
	for _, o := range ix.DB().Objects() {
		ins, err := ix.Instances(o.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(ins) != len(o.Instances) {
			t.Fatalf("object %d: cached %d instances, database has %d", o.ID, len(ins), len(o.Instances))
		}
	}
}

func TestApplyBatchWALRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	db := randomDB(rng, 100, 2, 800, 30, true)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	log, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix.AttachWAL(log)

	applyRound := func(round int) {
		cur := ix.DB()
		var ups []Update
		for i := 0; i < 5; i++ {
			ups = append(ups, Update{Op: OpInsert, Object: newObj(rng, uncertain.ID(6000+round*10+i), 2, 750, 25)})
		}
		ups = append(ups, Update{Op: OpDelete, ID: cur.Objects()[rng.Intn(cur.Len())].ID})
		if _, err := ix.ApplyBatch(ups); err != nil {
			t.Fatal(err)
		}
	}

	// Two batches, then a snapshot (with a consistent DB copy), then two
	// more batches that only the WAL knows about.
	applyRound(0)
	applyRound(1)
	var snap bytes.Buffer
	var dbAtSnap *uncertain.DB
	snapSeq, err := ix.SnapshotWith(&snap, func(cur *uncertain.DB) error {
		dbAtSnap = cur.Clone()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snapSeq == 0 {
		t.Fatal("snapshot carries no WAL sequence")
	}
	applyRound(2)
	applyRound(3)
	liveSeq := ix.WALSeq()
	if liveSeq <= snapSeq {
		t.Fatalf("live seq %d not beyond snapshot seq %d", liveSeq, snapSeq)
	}

	// "Crash": recover from snapshot + WAL tail on a fresh process's state.
	log2, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := LoadFrom(bytes.NewReader(snap.Bytes()), dbAtSnap)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.WALSeq() != snapSeq {
		t.Fatalf("loaded snapshot at seq %d, want %d", recovered.WALSeq(), snapSeq)
	}
	recovered.AttachWAL(log2)
	replayed, err := recovered.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if replayed == 0 {
		t.Fatal("recovery replayed nothing")
	}
	if recovered.WALSeq() != liveSeq {
		t.Fatalf("recovered to seq %d, want %d", recovered.WALSeq(), liveSeq)
	}

	// The recovered index must agree with brute force over its own replayed
	// database — and that database must equal the live one.
	if recovered.DB().Len() != ix.DB().Len() {
		t.Fatalf("recovered database has %d objects, live has %d", recovered.DB().Len(), ix.DB().Len())
	}
	for _, o := range ix.DB().Objects() {
		if recovered.DB().Get(o.ID) == nil {
			t.Fatalf("object %d missing after recovery", o.ID)
		}
	}
	assertMatchesBruteforce(t, recovered, rng, 800, 2, 100)

	// And answer queries identically to the live index.
	for i := 0; i < 60; i++ {
		q := geom.Point{rng.Float64() * 800, rng.Float64() * 800}
		a, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := recovered.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(a), idsOf(b)) {
			t.Fatalf("query %v: live %v recovered %v", q, idsOf(a), idsOf(b))
		}
	}
}

func TestRecoveryStopsAtTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	base := randomDB(rng, 60, 2, 600, 25, false)
	pristine := base.Clone()

	walDir := t.TempDir()
	log, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.WAL = log
	ix, err := Build(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ups []Update
	for i := 0; i < 8; i++ {
		ups = append(ups, Update{Op: OpInsert, Object: newObj(rng, uncertain.ID(3000+i), 2, 550, 20)})
	}
	for _, u := range ups {
		if _, err := ix.ApplyBatch([]Update{u}); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()

	// Tear the final record: a crash mid-commit of the last insert.
	segs, err := filepath.Glob(filepath.Join(walDir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	// Recover onto a rebuild of the pristine database (the no-checkpoint
	// path: replay everything).
	log2, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := Build(pristine, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	recovered.AttachWAL(log2)
	replayed, err := recovered.Recover()
	if err != nil {
		t.Fatalf("recovery across torn tail: %v", err)
	}
	if replayed != len(ups)-1 {
		t.Fatalf("replayed %d updates, want %d (last one torn)", replayed, len(ups)-1)
	}
	// Oracle: the pristine database plus the intact prefix of updates.
	if recovered.DB().Len() != 60+len(ups)-1 {
		t.Fatalf("recovered database has %d objects, want %d", recovered.DB().Len(), 60+len(ups)-1)
	}
	if recovered.DB().Get(ups[len(ups)-1].Object.ID) != nil {
		t.Fatal("torn final insert was applied")
	}
	assertMatchesBruteforce(t, recovered, rng, 600, 2, 80)
}

// TestApplyBatchChurnWithConcurrentQueries interleaves batched writers with
// parallel readers; run with -race it verifies the staging phase (which
// holds only the read lock) never races queries.
func TestApplyBatchChurnWithConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := randomDB(rng, 80, 2, 700, 30, true)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := geom.Point{qrng.Float64() * 700, qrng.Float64() * 700}
				if _, err := ix.Snapshot(q); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(100 + r))
	}

	// Writer: 12 rounds of mixed batches. Victims come from the current
	// version's database — immutable, so no lock is needed, and nobody else
	// writes concurrently.
	wrng := rand.New(rand.NewSource(200))
	for round := 0; round < 12; round++ {
		var ups []Update
		for i := 0; i < 4; i++ {
			ups = append(ups, Update{Op: OpInsert, Object: newObj(wrng, uncertain.ID(4000+round*4+i), 2, 650, 25)})
		}
		cur := ix.DB()
		ups = append(ups, Update{Op: OpDelete, ID: cur.Objects()[wrng.Intn(cur.Len())].ID})
		if _, err := ix.ApplyBatch(ups); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("concurrent query failed: %v", err)
	default:
	}
	assertMatchesBruteforce(t, ix, wrng, 700, 2, 60)
}

func TestWALCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	o := newObj(rng, 77, 3, 400, 20)
	o.Instances = uncertain.SampleInstances(o.Region, uncertain.PDFUniform, 12, rng)
	for i, u := range []Update{
		{Op: OpInsert, Object: o},
		{Op: OpDelete, ID: 123},
	} {
		e, err := encodeUpdate(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeUpdate(wal.Record{Seq: uint64(i + 1), Type: e.Type, Payload: e.Payload})
		if err != nil {
			t.Fatal(err)
		}
		if got.Op != u.Op {
			t.Fatalf("op mismatch: %d vs %d", got.Op, u.Op)
		}
		if u.Op == OpInsert {
			if got.Object.ID != o.ID || !got.Object.Region.Equal(o.Region) || len(got.Object.Instances) != len(o.Instances) {
				t.Fatalf("insert round trip mangled the object: %+v", got.Object)
			}
			for j := range o.Instances {
				if got.Object.Instances[j].Prob != o.Instances[j].Prob {
					t.Fatalf("instance %d prob mismatch", j)
				}
			}
		} else if got.ID != u.ID {
			t.Fatalf("delete ID mismatch: %d vs %d", got.ID, u.ID)
		}
	}
	// Unknown record types are rejected.
	if _, err := decodeUpdate(wal.Record{Seq: 9, Type: wal.Type(99)}); err == nil {
		t.Fatal("unknown record type accepted")
	}
}

// TestMidApplyFailureRollsBack exercises a batch that dies mid-apply on a
// page-limited store. Under MVCC the working version is simply discarded:
// the published version keeps serving, queries stay correct against the
// pre-batch oracle, and — with no WAL attached — later writes and snapshots
// proceed normally.
func TestMidApplyFailureRollsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	db := randomDB(rng, 50, 2, 500, 25, true)
	// Find a page budget that lets the build succeed, then rebuild with
	// headroom for one small batch but not a fat one. COW shadow pages and
	// deferred frees mean an update needs some slack beyond the live set.
	probe, err := Build(db.Clone(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	live := probe.Store().Live()
	cfg := testConfig()
	cfg.Store = pagestore.NewLimited(pagestore.DefaultPageSize, live+40)
	ix, err := Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n0 := ix.DB().Len()

	var ups []Update
	for i := 0; i < 40; i++ {
		o := newObj(rng, uncertain.ID(5000+i), 2, 450, 20)
		o.Instances = uncertain.SampleInstances(o.Region, uncertain.PDFUniform, 80, rng)
		ups = append(ups, Update{Op: OpInsert, Object: o})
	}
	if _, err := ix.ApplyBatch(ups); err == nil {
		t.Skip("page limit not reached; cannot exercise the mid-apply path")
	}

	// The failed batch never published: cardinality is unchanged and every
	// query still agrees with the pre-batch brute-force oracle.
	if ix.DB().Len() != n0 {
		t.Fatalf("failed batch published: %d -> %d objects", n0, ix.DB().Len())
	}
	assertMatchesBruteforce(t, ix, rng, 500, 2, 40)

	// Without a WAL the rollback is complete: snapshots and further writes
	// keep working (the aborted batch's pages were returned to the store).
	var buf bytes.Buffer
	if err := ix.SaveTo(&buf); err != nil {
		t.Fatalf("snapshot after clean rollback refused: %v", err)
	}
	if _, err := ix.Insert(newObj(rng, 9999, 2, 450, 20)); err != nil {
		t.Fatalf("write after clean rollback refused: %v", err)
	}
	assertMatchesBruteforce(t, ix, rng, 500, 2, 40)
}

// TestMidApplyFailureWithWALPoisonsWrites is the durable-mode counterpart:
// once a batch has been fsynced to the WAL, a mid-apply failure must
// fail-stop the write and persistence paths (the log says committed, memory
// says rolled back — recovery is the only consistent way forward). Queries
// keep serving the intact published version.
func TestMidApplyFailureWithWALPoisonsWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := randomDB(rng, 50, 2, 500, 25, true)
	probe, err := Build(db.Clone(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	live := probe.Store().Live()
	cfg := testConfig()
	cfg.Store = pagestore.NewLimited(pagestore.DefaultPageSize, live+40)
	log, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	cfg.WAL = log
	ix, err := Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var ups []Update
	for i := 0; i < 40; i++ {
		o := newObj(rng, uncertain.ID(5000+i), 2, 450, 20)
		o.Instances = uncertain.SampleInstances(o.Region, uncertain.PDFUniform, 80, rng)
		ups = append(ups, Update{Op: OpInsert, Object: o})
	}
	if _, err := ix.ApplyBatch(ups); err == nil {
		t.Skip("page limit not reached; cannot exercise the mid-apply path")
	}

	// Queries still serve the last published version...
	assertMatchesBruteforce(t, ix, rng, 500, 2, 40)
	// ...but writes and snapshots are refused: the WAL holds a batch the
	// caller was told failed, and persisting around it would strand it.
	var buf bytes.Buffer
	if err := ix.SaveTo(&buf); err == nil {
		t.Fatal("snapshot of a damaged index was accepted")
	}
	if _, err := ix.SnapshotWith(&buf, nil); err == nil {
		t.Fatal("SnapshotWith on a damaged index was accepted")
	}
	if _, err := ix.ApplyBatch([]Update{{Op: OpInsert, Object: newObj(rng, 9999, 2, 450, 20)}}); err == nil {
		t.Fatal("write to a damaged index was accepted")
	}
}

// TestRecoveryNeverResurrectsStrandedBatch is the frame-boundary torn-write
// regression: a group commit whose update frames reached disk but whose
// sealing commit record did not leaves CRC-valid, barrier-less frames at the
// log tail. The first recovery drops them (never acknowledged), but if a new
// batch then appends after them, a naive replay would buffer the stranded
// frames into the same pending window as the new batch and its commit would
// apply them all — resurrecting a batch that was already reported dropped.
// The commit record's count payload must scope the apply to its own batch
// even when the log is reopened without sealed truncation.
func TestRecoveryNeverResurrectsStrandedBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := randomDB(rng, 50, 2, 600, 25, false)
	pristine := base.Clone()

	// Craft the crash artifact: one update frame, no sealing commit.
	walDir := t.TempDir()
	log, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stranded := newObj(rng, uncertain.ID(9001), 2, 550, 20)
	entry, err := encodeUpdate(Update{Op: OpInsert, Object: stranded})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := log.Append(entry); err != nil {
		t.Fatal(err)
	}
	log.Close()

	// First post-crash boot — deliberately without Sealed, modeling a log
	// whose stranded tail was never truncated. Recovery must drop the
	// stranded update, and a new acknowledged batch then appends after it.
	log2, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(base, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ix.AttachWAL(log2)
	if replayed, err := ix.Recover(); err != nil || replayed != 0 {
		t.Fatalf("first recovery: replayed=%d err=%v, want 0 records applied", replayed, err)
	}
	if ix.DB().Get(stranded.ID) != nil {
		t.Fatal("first recovery applied the stranded, unacknowledged insert")
	}
	acked := newObj(rng, uncertain.ID(9002), 2, 550, 20)
	if _, err := ix.ApplyBatch([]Update{{Op: OpInsert, Object: acked}}); err != nil {
		t.Fatal(err)
	}
	log2.Close()

	// Second boot: replay now sees stranded frame, new batch, commit. Only
	// the acknowledged batch may apply — recovered state must match what the
	// first boot reported, never diverge by resurrecting the stranded write.
	log3, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	recovered, err := Build(pristine, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	recovered.AttachWAL(log3)
	replayed, err := recovered.Recover()
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if replayed != 1 {
		t.Fatalf("second recovery replayed %d updates, want 1 (the acked batch only)", replayed)
	}
	if recovered.DB().Get(stranded.ID) != nil {
		t.Fatal("second recovery resurrected the stranded batch via the next batch's commit")
	}
	if recovered.DB().Get(acked.ID) == nil {
		t.Fatal("second recovery lost the acknowledged batch")
	}
	assertMatchesBruteforce(t, recovered, rng, 600, 2, 40)
}

// TestRecoveryCheckpointRecordClearsPending: a checkpoint record can only
// land between group commits, so update frames still buffered when one
// arrives are a stranded torn batch — the barrier must discard them rather
// than let a later commit adopt them.
func TestRecoveryCheckpointRecordClearsPending(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	base := randomDB(rng, 40, 2, 600, 25, false)

	walDir := t.TempDir()
	log, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stranded := newObj(rng, uncertain.ID(9101), 2, 550, 20)
	entry, err := encodeUpdate(Update{Op: OpInsert, Object: stranded})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := log.Append(entry); err != nil {
		t.Fatal(err)
	}
	if _, _, err := log.Append(wal.Entry{Type: wal.TypeCheckpoint, Payload: []byte("ckpt")}); err != nil {
		t.Fatal(err)
	}
	// A legacy commit (empty payload) after the checkpoint: without the
	// barrier clearing pending it would apply the stranded update.
	acked := newObj(rng, uncertain.ID(9102), 2, 550, 20)
	entry2, err := encodeUpdate(Update{Op: OpInsert, Object: acked})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := log.Append(entry2, wal.Entry{Type: wal.TypeCommit}); err != nil {
		t.Fatal(err)
	}
	log.Close()

	log2, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	ix, err := Build(base, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ix.AttachWAL(log2)
	replayed, err := ix.Recover()
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d updates, want 1", replayed)
	}
	if ix.DB().Get(stranded.ID) != nil {
		t.Fatal("checkpoint barrier failed to discard the stranded update")
	}
	if ix.DB().Get(acked.ID) == nil {
		t.Fatal("committed update after the checkpoint barrier was lost")
	}
}
