package pvindex

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

func benchIndex(b *testing.B, n int) *Index {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	db := randomDB(rng, n, 3, 10000, 60, false)
	cfg := DefaultConfig()
	ix, err := Build(db, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

func BenchmarkPossibleNN2k(b *testing.B) {
	ix := benchIndex(b, 2000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := geom.Point{rng.Float64() * 10000, rng.Float64() * 10000, rng.Float64() * 10000}
		if _, err := ix.PossibleNN(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalInsert(b *testing.B) {
	ix := benchIndex(b, 1000)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := geom.Point{rng.Float64() * 9900, rng.Float64() * 9900, rng.Float64() * 9900}
		o := &uncertain.Object{
			ID:     uncertain.ID(100000 + i),
			Region: geom.NewRect(lo, geom.Point{lo[0] + 30, lo[1] + 30, lo[2] + 30}),
		}
		if _, err := ix.Insert(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalDelete(b *testing.B) {
	// Rebuild a fresh index whenever the pool drains.
	ix := benchIndex(b, 2000)
	next := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next >= 2000 {
			b.StopTimer()
			ix = benchIndex(b, 2000)
			next = 0
			b.StartTimer()
		}
		if _, err := ix.Delete(uncertain.ID(next)); err != nil {
			b.Fatal(err)
		}
		next++
	}
}
