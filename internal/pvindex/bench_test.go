package pvindex

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/race"
	"pvoronoi/internal/uncertain"
)

func benchIndex(b *testing.B, n int) *Index {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	db := randomDB(rng, n, 3, 10000, 60, false)
	cfg := DefaultConfig()
	ix, err := Build(db, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

// benchIndexInstances is benchIndex with stored pdf instances, so Snapshot's
// Step-2 data fetch has real records to decode.
func benchIndexInstances(b *testing.B, n int) *Index {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	db := randomDB(rng, n, 3, 10000, 60, true)
	cfg := DefaultConfig()
	ix, err := Build(db, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

func benchPoint(rng *rand.Rand) geom.Point {
	return geom.Point{rng.Float64() * 10000, rng.Float64() * 10000, rng.Float64() * 10000}
}

// BenchmarkPossibleNN measures the Step-1 hot loop: octree point query plus
// candidate dedup and pruning.
func BenchmarkPossibleNN(b *testing.B) {
	ix := benchIndex(b, 2000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ix.PossibleNN(benchPoint(rng)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshot measures the full atomic read: Step 1 plus fetching every
// candidate's stored pdf instances from the secondary index.
func BenchmarkSnapshot(b *testing.B) {
	ix := benchIndexInstances(b, 2000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Snapshot(benchPoint(rng)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSnapshotAllocBudget pins the read-path overhaul's allocation win: the
// pre-overhaul Snapshot cost ~162 allocs/op on this workload; the acceptance
// bar is at least a 2x reduction, and the budget here (40) leaves headroom
// while still failing loudly on any regression toward the old behavior.
func TestSnapshotAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := randomDB(rng, 500, 3, 10000, 60, true)
	ix, err := Build(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qrng := rand.New(rand.NewSource(2))
	points := make([]geom.Point, 32)
	for i := range points {
		points[i] = benchPoint(qrng)
	}
	// Warm the record cache and the scratch pool first.
	for _, q := range points {
		if _, err := ix.Snapshot(q); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ix.Snapshot(points[i%len(points)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// Race instrumentation inflates allocation counts (notably on 1-core
	// machines), so the workload runs under -race but the budget is only
	// asserted in uninstrumented builds.
	if race.Enabled {
		t.Logf("race detector enabled: skipping alloc budget assertion (measured %.1f)", allocs)
		return
	}
	if allocs > 40 {
		t.Fatalf("Snapshot allocates %.1f times per op, budget is 40 (pre-overhaul baseline: ~162)", allocs)
	}
}

// TestPossibleNNAllocBudget pins the Step-1 hot loop's allocation budget
// (pre-overhaul baseline: ~107 allocs/op).
func TestPossibleNNAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := randomDB(rng, 500, 3, 10000, 60, false)
	ix, err := Build(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qrng := rand.New(rand.NewSource(2))
	points := make([]geom.Point, 32)
	for i := range points {
		points[i] = benchPoint(qrng)
	}
	for _, q := range points {
		if _, err := ix.PossibleNN(q); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ix.PossibleNN(points[i%len(points)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// Known failure under -race on 1-core machines since PR 3: the race
	// runtime's bookkeeping allocates inside AllocsPerRun. The workload still
	// runs (and the call must succeed); only the budget is gated.
	if race.Enabled {
		t.Logf("race detector enabled: skipping alloc budget assertion (measured %.1f)", allocs)
		return
	}
	if allocs > 30 {
		t.Fatalf("PossibleNN allocates %.1f times per op, budget is 30 (pre-overhaul baseline: ~107)", allocs)
	}
}

func BenchmarkIncrementalInsert(b *testing.B) {
	ix := benchIndex(b, 1000)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := geom.Point{rng.Float64() * 9900, rng.Float64() * 9900, rng.Float64() * 9900}
		o := &uncertain.Object{
			ID:     uncertain.ID(100000 + i),
			Region: geom.NewRect(lo, geom.Point{lo[0] + 30, lo[1] + 30, lo[2] + 30}),
		}
		if _, err := ix.Insert(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalDelete(b *testing.B) {
	// Rebuild a fresh index whenever the pool drains.
	ix := benchIndex(b, 2000)
	next := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next >= 2000 {
			b.StopTimer()
			ix = benchIndex(b, 2000)
			next = 0
			b.StartTimer()
		}
		if _, err := ix.Delete(uncertain.ID(next)); err != nil {
			b.Fatal(err)
		}
		next++
	}
}
