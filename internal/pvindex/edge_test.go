package pvindex

// edge_test.go: degenerate inputs and failure injection — point-shaped
// regions (certain objects), boundary-hugging objects, 1-D databases,
// identical regions, and page-store exhaustion.

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/uncertain"
)

// TestCertainObjects: when every uncertainty region is a point, PNNQ Step 1
// degenerates to the classic Voronoi problem — exactly one answer almost
// everywhere.
func TestCertainObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := uncertain.NewDB(geom.UnitCube(2, 1000))
	for i := 0; i < 100; i++ {
		p := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		_ = db.Add(&uncertain.Object{ID: uncertain.ID(i), Region: geom.PointRect(p)})
	}
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	single := 0
	for iter := 0; iter < 100; iter++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		got, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteforce.PossibleNN(db, q)
		if !sameIDs(idsOf(got), want) {
			t.Fatalf("q=%v: got %v want %v", q, idsOf(got), want)
		}
		if len(got) == 1 {
			single++
		}
	}
	if single < 95 {
		t.Fatalf("only %d/100 point-object queries had a unique NN", single)
	}
}

// TestBoundaryObjects: regions flush against the domain boundary.
func TestBoundaryObjects(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	regions := []geom.Rect{
		geom.NewRect(geom.Point{0, 0}, geom.Point{10, 10}),     // corner
		geom.NewRect(geom.Point{90, 90}, geom.Point{100, 100}), // opposite corner
		geom.NewRect(geom.Point{0, 45}, geom.Point{5, 55}),     // edge
		geom.NewRect(geom.Point{45, 45}, geom.Point{55, 55}),   // center
	}
	for i, r := range regions {
		_ = db.Add(&uncertain.Object{ID: uncertain.ID(i), Region: r})
	}
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 200; iter++ {
		q := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		got, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(got), bruteforce.PossibleNN(db, q)) {
			t.Fatalf("boundary mismatch at %v", q)
		}
	}
	// Query exactly on the corners.
	for _, q := range []geom.Point{{0, 0}, {100, 100}, {0, 100}, {100, 0}} {
		got, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(got), bruteforce.PossibleNN(db, q)) {
			t.Fatalf("corner mismatch at %v", q)
		}
	}
}

// TestOneDimensional: the machinery must work at d=1 (intervals on a line).
func TestOneDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := uncertain.NewDB(geom.UnitCube(1, 1000))
	for i := 0; i < 60; i++ {
		lo := rng.Float64() * 980
		_ = db.Add(&uncertain.Object{
			ID:     uncertain.ID(i),
			Region: geom.NewRect(geom.Point{lo}, geom.Point{lo + 1 + rng.Float64()*19}),
		})
	}
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 200; iter++ {
		q := geom.Point{rng.Float64() * 1000}
		got, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(got), bruteforce.PossibleNN(db, q)) {
			t.Fatalf("d=1 mismatch at %v", q)
		}
	}
}

// TestIdenticalRegions: many objects sharing the same region are all
// possible NNs wherever one of them is.
func TestIdenticalRegions(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	shared := geom.NewRect(geom.Point{40, 40}, geom.Point{60, 60})
	for i := 0; i < 8; i++ {
		_ = db.Add(&uncertain.Object{ID: uncertain.ID(i), Region: shared})
	}
	_ = db.Add(&uncertain.Object{ID: 100, Region: geom.NewRect(geom.Point{0, 0}, geom.Point{5, 5})})
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.PossibleNN(geom.Point{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(idsOf(got), bruteforce.PossibleNN(db, geom.Point{50, 50})) {
		t.Fatalf("identical-region mismatch: %v", idsOf(got))
	}
	if len(got) < 8 {
		t.Fatalf("only %d of 8 identical objects returned", len(got))
	}
}

// TestStoreExhaustionFailsGracefully: a page store that runs out must
// surface an error from Build, not panic or corrupt.
func TestStoreExhaustionFailsGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := randomDB(rng, 200, 2, 1000, 30, true)
	cfg := testConfig()
	cfg.Store = pagestore.NewLimited(pagestore.DefaultPageSize, 30)
	_, err := Build(db, cfg)
	if err == nil {
		t.Fatal("Build succeeded on an exhausted store")
	}
}

// TestManyInstancesRecord: paper-sized pdfs (500 samples, 3-D) span multiple
// secondary-index pages and must round-trip intact.
func TestManyInstancesRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := uncertain.NewDB(geom.UnitCube(3, 1000))
	for i := 0; i < 10; i++ {
		region := geom.NewRect(
			geom.Point{float64(i) * 90, 10, 10},
			geom.Point{float64(i)*90 + 50, 60, 60},
		)
		_ = db.Add(&uncertain.Object{
			ID:        uncertain.ID(i),
			Region:    region,
			Instances: uncertain.SampleInstances(region, uncertain.PDFUniform, 500, rng),
		})
	}
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range db.Objects() {
		ins, err := ix.Instances(o.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(ins) != 500 {
			t.Fatalf("object %d: %d instances back", o.ID, len(ins))
		}
		for j := range ins {
			if !ins[j].Pos.Equal(o.Instances[j].Pos) || ins[j].Prob != o.Instances[j].Prob {
				t.Fatalf("object %d instance %d corrupted", o.ID, j)
			}
		}
	}
}

// TestDeleteEverything empties the database through incremental deletes.
func TestDeleteEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := randomDB(rng, 40, 2, 500, 25, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := ix.Delete(uncertain.ID(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	got, err := ix.PossibleNN(geom.Point{250, 250})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty DB returned %v", got)
	}
	// And refill it again.
	for i := 0; i < 20; i++ {
		lo := geom.Point{rng.Float64() * 450, rng.Float64() * 450}
		o := &uncertain.Object{
			ID:     uncertain.ID(100 + i),
			Region: geom.NewRect(lo, geom.Point{lo[0] + 10, lo[1] + 10}),
		}
		if _, err := ix.Insert(o); err != nil {
			t.Fatalf("re-insert %d: %v", i, err)
		}
	}
	for iter := 0; iter < 50; iter++ {
		q := geom.Point{rng.Float64() * 500, rng.Float64() * 500}
		got, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(got), bruteforce.PossibleNN(ix.DB(), q)) {
			t.Fatalf("refilled DB mismatch at %v", q)
		}
	}
}
