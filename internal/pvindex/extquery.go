package pvindex

import (
	"fmt"

	"pvoronoi/internal/extquery"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// Extension-query retrieval rides the index's region R*-tree (the same tree
// SE consults) instead of scanning the raw database, and follows the same
// MVCC discipline as PNNQ's Snapshot: candidate retrieval and the instance
// fetch both read one pinned version, while the expensive probability
// refinement runs on the returned snapshot afterwards — extension queries
// never block writers, and writers never block them.

// ExtCost attributes the retrieval cost of one extension query: candidate
// count, R-tree node/leaf accesses, and the record-cache outcomes of the
// instance fetch.
type ExtCost struct {
	Candidates  int
	NodeIO      int
	LeafIO      int
	CacheHits   int
	CacheMisses int
}

// ExtSnapshot is an atomic extension-query read: the candidate IDs and each
// candidate's stored pdf instances (parallel slice), fetched from one pinned
// version so a concurrent writer can never remove a candidate between
// retrieval and the data access. Instance slices may be shared with the
// record cache — treat them as immutable.
type ExtSnapshot struct {
	IDs       []uncertain.ID
	Instances [][]uncertain.Instance
	Cost      ExtCost
}

// fetchInstancesAt resolves each candidate's stored instances through the
// record cache against a pinned version, accumulating hit/miss counts.
func (ix *Index) fetchInstancesAt(v *version, ids []uncertain.ID, cost *ExtCost) ([][]uncertain.Instance, error) {
	out := make([][]uncertain.Instance, len(ids))
	for i, id := range ids {
		rec, ok, hit, err := ix.getRecordAt(v, uint32(id))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("pvindex: object %d not in secondary index", id)
		}
		if hit {
			cost.CacheHits++
		} else {
			cost.CacheMisses++
		}
		out[i] = rec.Instances
	}
	return out, nil
}

// GroupNNSnapshot retrieves the group-NN candidate set (branch-and-bound
// over the region tree with aggregate min/max distance bounds) plus each
// candidate's instances, atomically from one pinned version.
func (ix *Index) GroupNNSnapshot(qs []geom.Point, agg extquery.Agg) (*ExtSnapshot, error) {
	v := ix.pin()
	defer ix.unpin(v)
	ids, tc := extquery.GroupNNCandidatesTree(v.regionTree, qs, agg)
	snap := &ExtSnapshot{IDs: ids, Cost: ExtCost{Candidates: len(ids), NodeIO: tc.Nodes, LeafIO: tc.Leaves}}
	var err error
	snap.Instances, err = ix.fetchInstancesAt(v, ids, &snap.Cost)
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// GroupNNCandidatesOnly is GroupNNSnapshot without the instance fetch, for
// callers that need just the candidate IDs.
func (ix *Index) GroupNNCandidatesOnly(qs []geom.Point, agg extquery.Agg) ([]uncertain.ID, ExtCost, error) {
	v := ix.pin()
	defer ix.unpin(v)
	ids, tc := extquery.GroupNNCandidatesTree(v.regionTree, qs, agg)
	return ids, ExtCost{Candidates: len(ids), NodeIO: tc.Nodes, LeafIO: tc.Leaves}, nil
}

// KNNSnapshot retrieves the possible k-NN candidate set (incremental
// best-first traversal with k-th-maxdist pruning) plus each candidate's
// instances, atomically from one pinned version.
func (ix *Index) KNNSnapshot(q geom.Point, k int) (*ExtSnapshot, error) {
	v := ix.pin()
	defer ix.unpin(v)
	ids, tc := extquery.KNNCandidatesTree(v.regionTree, q, k)
	snap := &ExtSnapshot{IDs: ids, Cost: ExtCost{Candidates: len(ids), NodeIO: tc.Nodes, LeafIO: tc.Leaves}}
	var err error
	snap.Instances, err = ix.fetchInstancesAt(v, ids, &snap.Cost)
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// RNNCandidates retrieves the reverse-NN candidate set by filter-refine tree
// descent, at the domination granularity the index was configured with
// (Options.MMax / SE MaxDepth — the same granularity SE uses for its own
// domination counts). Reverse NN is candidate-set only, so there is no
// instance snapshot to fetch.
func (ix *Index) RNNCandidates(q geom.Point) ([]uncertain.ID, ExtCost, error) {
	v := ix.pin()
	defer ix.unpin(v)
	ids, tc := extquery.RNNCandidatesTree(v.regionTree, q, ix.cfg.SE.MaxDepth)
	return ids, ExtCost{Candidates: len(ids), NodeIO: tc.Nodes, LeafIO: tc.Leaves}, nil
}
