package pvindex

import (
	"fmt"
	"sync"

	"pvoronoi/internal/extquery"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// Extension-query retrieval follows the same MVCC discipline as PNNQ's
// Snapshot: candidate retrieval and the instance fetch both read one pinned
// version, while the expensive probability refinement runs on the returned
// snapshot afterwards — extension queries never block writers, and writers
// never block them. Possible-kNN and group-NN retrieve over the version's
// materialized UBR-adjacency graph (best-first expansion seeded by an octree
// point query); reverse-NN still rides the region R*-tree.

// ExtCost attributes the retrieval cost of one extension query: candidate
// count, R-tree node/leaf accesses (LeafIO doubles as the octree seed-query
// leaf reads on the graph paths), adjacency-graph expansion work, and the
// record-cache outcomes of the instance fetch.
type ExtCost struct {
	Candidates  int
	NodeIO      int
	LeafIO      int
	GraphNodes  int
	GraphEdges  int
	CacheHits   int
	CacheMisses int
}

// ExtSnapshot is an atomic extension-query read: the candidate IDs and each
// candidate's stored pdf instances (parallel slice), fetched from one pinned
// version so a concurrent writer can never remove a candidate between
// retrieval and the data access. Instance slices may be shared with the
// record cache — treat them as immutable.
type ExtSnapshot struct {
	IDs       []uncertain.ID
	Instances [][]uncertain.Instance
	Cost      ExtCost
}

// fetchInstancesAt resolves each candidate's stored instances through the
// record cache against a pinned version, accumulating hit/miss counts.
func (ix *Index) fetchInstancesAt(v *version, ids []uncertain.ID, cost *ExtCost) ([][]uncertain.Instance, error) {
	out := make([][]uncertain.Instance, len(ids))
	for i, id := range ids {
		rec, ok, hit, err := ix.getRecordAt(v, uint32(id))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("pvindex: object %d not in secondary index", id)
		}
		if hit {
			cost.CacheHits++
		} else {
			cost.CacheMisses++
		}
		out[i] = rec.Instances
	}
	return out, nil
}

// seedScratchPool recycles the seed-ID slices across graph queries so the
// octree seed read allocates nothing in steady state.
var seedScratchPool = sync.Pool{New: func() any {
	s := make([]uint32, 0, 64)
	return &s
}}

// graphSeeds runs the octree point query at p (clamped into the domain for
// out-of-domain anchors — clamping preserves exactness, it just picks the
// nearest in-domain start for the expansion) and returns the entry IDs: a
// superset of the objects whose PV-cells contain p, which is exactly what
// the graph expansion needs as sources. The leaf reads are the query's
// attributable seed I/O. Seeds only need IDs, so the read strides over the
// packed leaf bytes (PointQueryIDsInto) instead of decoding full entries —
// the decode cost used to rival the whole expansion. The returned slice
// comes from seedScratchPool; the caller returns it via putSeeds.
func graphSeeds(v *version, p geom.Point) ([]uint32, int, error) {
	dom := v.db.Domain
	clamped := p
	for j := range p {
		if p[j] < dom.Lo[j] || p[j] > dom.Hi[j] {
			clamped = make(geom.Point, len(p))
			for i := range p {
				clamped[i] = min(max(p[i], dom.Lo[i]), dom.Hi[i])
			}
			break
		}
	}
	scratch := seedScratchPool.Get().(*[]uint32)
	seeds, leafIO, err := v.primary.PointQueryIDsInto(clamped, (*scratch)[:0])
	*scratch = seeds
	if err != nil {
		seedScratchPool.Put(scratch)
		return nil, leafIO, err
	}
	return seeds, leafIO, nil
}

// putSeeds returns a graphSeeds slice to the pool.
func putSeeds(seeds []uint32) {
	seedScratchPool.Put(&seeds)
}

// groupNNAt retrieves the group-NN candidate set against a pinned version:
// best-first expansion over the adjacency graph from the aggregate-minimizer
// anchor.
func groupNNAt(v *version, qs []geom.Point, agg extquery.Agg) ([]uncertain.ID, ExtCost, error) {
	anchor := extquery.GroupAnchor(qs, agg)
	seeds, leafIO, err := graphSeeds(v, anchor)
	if err != nil {
		return nil, ExtCost{LeafIO: leafIO}, err
	}
	ids, gc := extquery.GroupNNCandidatesGraph(v.db, v.adj, seeds, anchor, qs, agg)
	putSeeds(seeds)
	return ids, ExtCost{Candidates: len(ids), LeafIO: leafIO, GraphNodes: gc.Nodes, GraphEdges: gc.Edges}, nil
}

// knnAt retrieves the possible k-NN candidate set against a pinned version:
// best-first expansion over the adjacency graph from the query point.
func knnAt(v *version, q geom.Point, k int) ([]uncertain.ID, ExtCost, error) {
	seeds, leafIO, err := graphSeeds(v, q)
	if err != nil {
		return nil, ExtCost{LeafIO: leafIO}, err
	}
	ids, gc := extquery.KNNCandidatesGraph(v.db, v.adj, seeds, q, k)
	putSeeds(seeds)
	return ids, ExtCost{Candidates: len(ids), LeafIO: leafIO, GraphNodes: gc.Nodes, GraphEdges: gc.Edges}, nil
}

// GroupNNSnapshot retrieves the group-NN candidate set (adjacency-graph
// expansion with aggregate min/max distance bounds) plus each candidate's
// instances, atomically from one pinned version.
func (ix *Index) GroupNNSnapshot(qs []geom.Point, agg extquery.Agg) (*ExtSnapshot, error) {
	v := ix.pin()
	defer ix.unpin(v)
	ids, cost, err := groupNNAt(v, qs, agg)
	if err != nil {
		return nil, err
	}
	snap := &ExtSnapshot{IDs: ids, Cost: cost}
	snap.Instances, err = ix.fetchInstancesAt(v, ids, &snap.Cost)
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// GroupNNCandidatesOnly is GroupNNSnapshot without the instance fetch, for
// callers that need just the candidate IDs.
func (ix *Index) GroupNNCandidatesOnly(qs []geom.Point, agg extquery.Agg) ([]uncertain.ID, ExtCost, error) {
	v := ix.pin()
	defer ix.unpin(v)
	return groupNNAt(v, qs, agg)
}

// KNNSnapshot retrieves the possible k-NN candidate set (adjacency-graph
// expansion with k-th-maxdist pruning) plus each candidate's instances,
// atomically from one pinned version.
func (ix *Index) KNNSnapshot(q geom.Point, k int) (*ExtSnapshot, error) {
	v := ix.pin()
	defer ix.unpin(v)
	ids, cost, err := knnAt(v, q, k)
	if err != nil {
		return nil, err
	}
	snap := &ExtSnapshot{IDs: ids, Cost: cost}
	snap.Instances, err = ix.fetchInstancesAt(v, ids, &snap.Cost)
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// KNNCandidatesOnly is KNNSnapshot without the instance fetch, for callers
// that need just the candidate IDs.
func (ix *Index) KNNCandidatesOnly(q geom.Point, k int) ([]uncertain.ID, ExtCost, error) {
	v := ix.pin()
	defer ix.unpin(v)
	return knnAt(v, q, k)
}

// RNNCandidates retrieves the reverse-NN candidate set by filter-refine tree
// descent, at the domination granularity the index was configured with
// (Options.MMax / SE MaxDepth — the same granularity SE uses for its own
// domination counts). Reverse NN is candidate-set only, so there is no
// instance snapshot to fetch.
func (ix *Index) RNNCandidates(q geom.Point) ([]uncertain.ID, ExtCost, error) {
	v := ix.pin()
	defer ix.unpin(v)
	ids, tc := extquery.RNNCandidatesTree(v.regionTree, q, ix.cfg.SE.MaxDepth)
	return ids, ExtCost{Candidates: len(ids), NodeIO: tc.Nodes, LeafIO: tc.Leaves}, nil
}
