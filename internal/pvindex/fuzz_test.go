package pvindex

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// FuzzDecodeRecord exercises the secondary-index record decoder with
// arbitrary bytes: it must never panic, only return errors for malformed
// input, and round-trip valid encodings. Seeds include valid records and
// truncations. (Runs the seed corpus under `go test`; mutate with
// `go test -fuzz=FuzzDecodeRecord ./internal/pvindex`.)
func FuzzDecodeRecord(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	region := geom.NewRect(geom.Point{1, 2}, geom.Point{3, 4})
	valid := encodeRecord(record{
		UBR:       geom.NewRect(geom.Point{0, 0}, geom.Point{10, 10}),
		Region:    region,
		Instances: uncertain.SampleInstances(region, uncertain.PDFUniform, 5, rng),
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:7])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeRecord(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode to the same byte length (the
		// format is fixed-width given d and n).
		out := encodeRecord(rec)
		if len(out) != len(data) {
			t.Fatalf("re-encode length %d != input %d", len(out), len(data))
		}
	})
}
