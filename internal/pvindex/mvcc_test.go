package pvindex

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// TestPinnedSnapshotIsolation is the MVCC semantic core: a reader that pins
// a version keeps observing exactly that version — candidate sets, UBRs and
// pdf instances — across however many writes commit after the pin,
// including a rewrite of the same object ID with a different pdf.
func TestPinnedSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := randomDB(rng, 80, 2, 700, 30, true)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}

	churnID := uncertain.ID(9000)
	region := geom.NewRect(geom.Point{340, 340}, geom.Point{360, 360})
	objA := &uncertain.Object{ID: churnID, Region: region, Instances: []uncertain.Instance{
		{Pos: geom.Point{350, 350}, Prob: 1},
	}}
	if _, err := ix.Insert(objA); err != nil {
		t.Fatal(err)
	}

	pin := ix.Pin()
	defer pin.Release()
	pinEpoch := pin.Epoch()
	pinDB := pin.DB().Clone() // oracle for the pinned version
	probes := make([]geom.Point, 50)
	wantNN := make([][]uncertain.ID, len(probes))
	for i := range probes {
		probes[i] = geom.Point{rng.Float64() * 700, rng.Float64() * 700}
		wantNN[i] = bruteforce.PossibleNN(pinDB, probes[i])
	}
	ubrA, ok := pin.UBR(churnID)
	if !ok {
		t.Fatal("pinned version lost the churn object")
	}

	// Write past the pin: delete the churn object, re-insert the same ID
	// with a different pdf, and churn unrelated objects.
	if _, err := ix.Delete(churnID); err != nil {
		t.Fatal(err)
	}
	objB := &uncertain.Object{ID: churnID, Region: region, Instances: []uncertain.Instance{
		{Pos: geom.Point{341, 341}, Prob: 0.5},
		{Pos: geom.Point{359, 359}, Prob: 0.5},
	}}
	if _, err := ix.Insert(objB); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		o := newObj(rng, uncertain.ID(9100+i), 2, 650, 25)
		if _, err := ix.Insert(o); err != nil {
			t.Fatal(err)
		}
	}

	if ix.Epoch() <= pinEpoch {
		t.Fatalf("epoch did not advance past the pin: %d <= %d", ix.Epoch(), pinEpoch)
	}
	if pin.Epoch() != pinEpoch {
		t.Fatal("pinned epoch drifted")
	}

	// Every pinned read is version-consistent with the pinned oracle.
	for i, q := range probes {
		got, err := pin.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(got), wantNN[i]) {
			t.Fatalf("probe %v: pinned answer diverged from pinned oracle", q)
		}
	}
	if ubrNow, ok := pin.UBR(churnID); !ok || !ubrNow.Equal(ubrA) {
		t.Fatal("pinned UBR changed under concurrent writes")
	}
	ins, err := pin.Instances(churnID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || !ins[0].Pos.Equal(geom.Point{350, 350}) {
		t.Fatalf("pinned reader served the rewritten pdf: %+v", ins)
	}

	// The live index serves the new pdf.
	liveIns, err := ix.Instances(churnID)
	if err != nil {
		t.Fatal(err)
	}
	if len(liveIns) != 2 {
		t.Fatalf("live reader did not see the rewrite: %+v", liveIns)
	}
}

// TestPinnedSnapshotsUnderChurnStorm pins snapshots from reader goroutines
// while writers storm ApplyBatch, asserting each pinned snapshot is
// internally consistent: its octree answers (tree), its database (primary
// map) and its stored UBR/pdf records agree with a brute-force oracle built
// from that version's own database — i.e. from the op prefix the version
// represents. Run with -race.
func TestPinnedSnapshotsUnderChurnStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	db := randomDB(rng, 100, 2, 800, 30, true)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	// Writer storm: rounds of mixed batches (the single writer thread
	// serializes as ApplyBatch would anyway; each round publishes).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		wrng := rand.New(rand.NewSource(73))
		for round := 0; round < 30; round++ {
			cur := ix.DB()
			var ups []Update
			for i := 0; i < 5; i++ {
				ups = append(ups, Update{Op: OpInsert, Object: newObj(wrng, uncertain.ID(20_000+round*5+i), 2, 750, 25)})
			}
			seen := map[uncertain.ID]bool{}
			for i := 0; i < 3; i++ {
				victim := cur.Objects()[wrng.Intn(cur.Len())].ID
				if seen[victim] {
					continue
				}
				seen[victim] = true
				ups = append(ups, Update{Op: OpDelete, ID: victim})
			}
			if _, err := ix.ApplyBatch(ups); err != nil {
				fail(err)
				return
			}
		}
	}()

	// Readers: pin, verify tree vs primary map vs records via the oracle,
	// release, repeat.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pin := ix.Pin()
				pdb := pin.DB()
				// Tree vs database: Step-1 answers match the oracle over
				// the pinned database at random points.
				for i := 0; i < 5; i++ {
					q := geom.Point{qrng.Float64() * 800, qrng.Float64() * 800}
					got, err := pin.PossibleNN(q)
					if err != nil {
						fail(err)
						pin.Release()
						return
					}
					if !sameIDs(idsOf(got), bruteforce.PossibleNN(pdb, q)) {
						fail(errInconsistent(pin.Epoch(), q))
						pin.Release()
						return
					}
				}
				// Records vs database: sampled objects have a stored UBR
				// containing their region and their exact pdf.
				for i := 0; i < 5; i++ {
					o := pdb.Objects()[qrng.Intn(pdb.Len())]
					ubr, ok := pin.UBR(o.ID)
					if !ok || !ubr.ContainsRect(o.Region) {
						fail(errInconsistent(pin.Epoch(), geom.Point{-1}))
						pin.Release()
						return
					}
					ins, err := pin.Instances(o.ID)
					if err != nil || len(ins) != len(o.Instances) {
						fail(errInconsistent(pin.Epoch(), geom.Point{-2}))
						pin.Release()
						return
					}
				}
				pin.Release()
			}
		}(int64(100 + r))
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("churn storm: %v", err)
	default:
	}

	// Post-storm: the final version agrees with its oracle, and all retired
	// versions have drained and reclaimed (drain-triggered sweeps run on a
	// goroutine, so poll briefly).
	assertMatchesBruteforce(t, ix, rng, 800, 2, 60)
	waitLiveVersions(t, ix, 1)
	if st := ix.MVCC(); st.InFlightReaders != 0 {
		t.Fatalf("storm left %d in-flight readers", st.InFlightReaders)
	}
}

// waitLiveVersions polls until the version queue drains to want (reader-
// driven reclamation is asynchronous) or fails after a deadline.
func waitLiveVersions(t *testing.T, ix *Index, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := ix.MVCC(); st.LiveVersions == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("version queue stuck at %d live versions, want %d", ix.MVCC().LiveVersions, want)
		}
		time.Sleep(time.Millisecond)
	}
}

type errInconsistentT struct {
	epoch uint64
	q     geom.Point
}

func (e errInconsistentT) Error() string {
	return "pinned snapshot internally inconsistent"
}

func errInconsistent(epoch uint64, q geom.Point) error {
	return errInconsistentT{epoch: epoch, q: q}
}

// TestVersionReclamation churns 1000 single-op epochs and asserts retired
// versions are reclaimed: the version queue stays at 1, every published
// predecessor was collected, the page store's live set does not grow
// monotonically, and the cache's generation table drains to empty.
func TestVersionReclamation(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	db := randomDB(rng, 60, 2, 600, 25, true)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	liveStart := ix.Store().Live()
	epochStart := ix.Epoch()

	const epochs = 1000
	for i := 0; i < epochs/2; i++ {
		o := newObj(rng, uncertain.ID(30_000+i), 2, 550, 20)
		o.Instances = uncertain.SampleInstances(o.Region, uncertain.PDFUniform, 5, rng)
		if _, err := ix.Insert(o); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.Delete(o.ID); err != nil {
			t.Fatal(err)
		}
	}

	st := ix.MVCC()
	if got := st.Epoch - epochStart; got != epochs {
		t.Fatalf("published %d epochs, want %d", got, epochs)
	}
	if st.LiveVersions != 1 {
		t.Fatalf("%d live versions after churn, want 1 (retired versions not reclaimed)", st.LiveVersions)
	}
	if st.Reclaimed != epochs {
		t.Fatalf("reclaimed %d versions, want %d", st.Reclaimed, epochs)
	}
	// Pages: every object inserted was deleted again, so the live set must
	// come back to (near) the starting footprint — shadow copies and
	// version garbage were all returned to the store. Octree splits are
	// permanent structure, so allow modest growth, not 1000 epochs' worth.
	liveEnd := ix.Store().Live()
	if liveEnd > liveStart+liveStart/2+64 {
		t.Fatalf("page store grew monotonically over %d epochs: %d -> %d live pages",
			epochs, liveStart, liveEnd)
	}
	// With everything reclaimed the oldest pinnable epoch is the current
	// one, so pruning must have drained the generation table.
	if rc := ix.RecordCacheStats(); rc.GenTracked != 0 {
		t.Fatalf("record-cache generation table kept %d entries after full reclamation", rc.GenTracked)
	}
	assertMatchesBruteforce(t, ix, rng, 600, 2, 60)
}

// TestPinBlocksReclamation verifies the refcount half of the reclaimer: a
// held pin keeps its version (and the page frees attached to it) alive
// while later versions stack up retired; releasing the pin drains them all.
func TestPinBlocksReclamation(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	db := randomDB(rng, 50, 2, 500, 25, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}

	pin := ix.Pin()
	for i := 0; i < 20; i++ {
		o := newObj(rng, uncertain.ID(40_000+i), 2, 450, 20)
		if _, err := ix.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	st := ix.MVCC()
	if st.LiveVersions < 2 {
		t.Fatalf("pinned version was collected: %d live versions", st.LiveVersions)
	}
	if st.InFlightReaders != 1 {
		t.Fatalf("in-flight readers = %d, want 1", st.InFlightReaders)
	}
	// The pinned version still answers from its own state.
	if _, err := pin.PossibleNN(geom.Point{250, 250}); err != nil {
		t.Fatal(err)
	}

	pin.Release()
	waitLiveVersions(t, ix, 1)
	if st := ix.MVCC(); st.InFlightReaders != 0 {
		t.Fatalf("release left %d in-flight readers", st.InFlightReaders)
	}
}
