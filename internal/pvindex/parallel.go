package pvindex

import (
	"runtime"
	"sync"
	"time"

	"pvoronoi/internal/core"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// BuildParallel constructs the PV-index like Build but computes UBRs with a
// pool of workers (the SE algorithm is read-only over the database and the
// region tree, so per-object UBR computation parallelizes embarrassingly;
// only index insertion is serialized). workers <= 0 uses GOMAXPROCS.
//
// The resulting index answers queries identically to a serial Build — the
// paper's bulk-loading direction from its conclusion, realized as a
// construction-time optimization.
func BuildParallel(db *uncertain.DB, cfg Config, workers int) (*Index, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Store == nil {
		cfg.Store = pagestore.New(pagestore.DefaultPageSize)
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 5 << 20
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = rtree.DefaultFanout
	}
	ix := &Index{store: cfg.Store, cfg: cfg}
	ix.initRuntime()

	start := time.Now()
	w, err := ix.bootstrapWorking(db)
	if err != nil {
		return nil, err
	}

	objs := db.Objects()
	ubrs := make([]geom.Rect, len(objs))
	seStats := make([]core.Stats, len(objs))

	// NN iterators on the shared R*-tree mutate its LeafIO counter but not
	// its structure; structural reads are safe concurrently.
	var wg sync.WaitGroup
	jobs := make(chan int)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ubrs[i], seStats[i] = core.ComputeUBR(db, w.regionTree, objs[i], cfg.SE)
			}
		}()
	}
	for i := range objs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	t0 := time.Now()
	for i, o := range objs {
		ix.Build.SE.Add(seStats[i])
		ix.Build.CSetTime += seStats[i].CSetTime
		ix.Build.UBRTime += seStats[i].UBRTime
		ix.Build.CSetSizeSum += seStats[i].CSetSize
		if err := w.addObject(o, ubrs[i]); err != nil {
			return nil, err
		}
		ix.Build.Objects++
	}
	ix.Build.InsertTime = time.Since(t0)
	w.adj, err = rebuildAdjacency(db, w.primary, w.lookupUBR)
	if err != nil {
		return nil, err
	}
	// The refinement pass reuses the same worker pool for its escalated SE
	// runs; GOMAXPROCS is already the pool width parallelSE uses.
	if err := ix.refineBootstrap(w); err != nil {
		return nil, err
	}
	ix.Build.Total = time.Since(start)
	ix.installBootstrap(w, 0)
	return ix, nil
}
