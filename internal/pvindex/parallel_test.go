package pvindex

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/geom"
)

// TestParallelBuildEquivalent: a parallel build must answer every query
// identically to a serial build (and to brute force).
func TestParallelBuildEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	db := randomDB(rng, 200, 3, 1000, 40, false)

	serial, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildParallel(db, testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Build.Objects != serial.Build.Objects {
		t.Fatalf("object counts differ: %d vs %d", parallel.Build.Objects, serial.Build.Objects)
	}
	for iter := 0; iter < 150; iter++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		a, err := serial.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(a), idsOf(b)) {
			t.Fatalf("q=%v: serial %v parallel %v", q, idsOf(a), idsOf(b))
		}
		if !sameIDs(idsOf(b), bruteforce.PossibleNN(db, q)) {
			t.Fatalf("q=%v: parallel result diverges from brute force", q)
		}
	}
	// UBRs must be identical (SE is deterministic given the same inputs).
	for _, o := range db.Objects() {
		ua, _ := serial.UBR(o.ID)
		ub, _ := parallel.UBR(o.ID)
		if !ua.Equal(ub) {
			t.Fatalf("object %d: serial UBR %v != parallel UBR %v", o.ID, ua, ub)
		}
	}
}

func TestParallelBuildDefaultWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	db := randomDB(rng, 60, 2, 500, 25, false)
	ix, err := BuildParallel(db, testConfig(), 0) // 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if ix.Build.Objects != 60 {
		t.Fatalf("built %d objects", ix.Build.Objects)
	}
}
