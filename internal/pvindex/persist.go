package pvindex

import (
	"encoding/gob"
	"fmt"
	"io"

	"pvoronoi/internal/core"
	"pvoronoi/internal/exthash"
	"pvoronoi/internal/octree"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// persistHeader identifies the on-disk format.
const persistMagic = "PVIDX1"

// indexImage bundles the serializable state of all index layers.
type indexImage struct {
	Magic     string
	SE        core.Options
	MemBudget int
	Fanout    int
	Objects   int
	Store     *pagestore.Image
	Primary   *octree.Image
	Secondary *exthash.Image
}

// SaveTo serializes the index (page store, octree skeleton, hash directory,
// and configuration) to w. The database itself is not written — it is the
// caller's input at load time, matching the paper's separation of data and
// access structure.
func (ix *Index) SaveTo(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	img := indexImage{
		Magic:     persistMagic,
		SE:        ix.cfg.SE,
		MemBudget: ix.cfg.MemBudget,
		Fanout:    ix.cfg.Fanout,
		Objects:   ix.db.Len(),
		Store:     ix.store.Image(),
		Primary:   ix.primary.Image(),
		Secondary: ix.secondary.Image(),
	}
	return gob.NewEncoder(w).Encode(&img)
}

// LoadFrom reconstructs an index from r over the given database. The
// database must be the same object set the index was built on (checked by
// cardinality and by per-object UBR presence).
func LoadFrom(r io.Reader, db *uncertain.DB) (*Index, error) {
	var img indexImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("pvindex: decoding index image: %w", err)
	}
	if img.Magic != persistMagic {
		return nil, fmt.Errorf("pvindex: bad magic %q", img.Magic)
	}
	if img.Objects != db.Len() {
		return nil, fmt.Errorf("pvindex: index was built over %d objects, database has %d", img.Objects, db.Len())
	}
	store, err := pagestore.FromImage(img.Store)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		db:    db,
		store: store,
		cfg: Config{
			Store:     store,
			MemBudget: img.MemBudget,
			Fanout:    img.Fanout,
			SE:        img.SE,
		},
	}
	ix.initRuntime()
	ix.secondary, err = exthash.FromImage(store, img.Secondary)
	if err != nil {
		return nil, err
	}
	ix.primary, err = octree.FromImage(store, ix.lookupUBR, img.Primary)
	if err != nil {
		return nil, err
	}
	fanout := img.Fanout
	if fanout <= 0 {
		fanout = rtree.DefaultFanout
	}
	ix.regionTree = core.BuildRegionTree(db, fanout)

	// Sanity: every database object must have a stored record.
	for _, o := range db.Objects() {
		if _, ok := ix.lookupUBR(uint32(o.ID)); !ok {
			return nil, fmt.Errorf("pvindex: object %d missing from loaded index", o.ID)
		}
	}
	return ix, nil
}
