package pvindex

import (
	"encoding/gob"
	"fmt"
	"io"

	"pvoronoi/internal/core"
	"pvoronoi/internal/exthash"
	"pvoronoi/internal/octree"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// Image format versions. PVIDX2 added RecordCacheSize (V1 silently dropped
// it, resetting loaded indexes to the default cache size) and WALSeq (so
// recovery knows which write-ahead-log records a snapshot already covers).
// V1 images are still loadable: gob decodes by field name, leaving the new
// fields at their zero values, which mean "default cache" and "no WAL
// history" — exactly V1's semantics.
const (
	persistMagicV1 = "PVIDX1"
	persistMagic   = "PVIDX2"
)

// indexImage bundles the serializable state of all index layers.
type indexImage struct {
	Magic           string
	SE              core.Options
	MemBudget       int
	Fanout          int
	Objects         int
	RecordCacheSize int
	WALSeq          uint64
	Store           *pagestore.Image
	Primary         *octree.Image
	Secondary       *exthash.Image
}

// SaveTo serializes the index (page store, octree skeleton, hash directory,
// and configuration) to w. The database itself is not written — it is the
// caller's input at load time, matching the paper's separation of data and
// access structure. Durable deployments that must also persist the data use
// SnapshotWith, which saves both under one lock.
func (ix *Index) SaveTo(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.saveLocked(w)
}

// saveLocked is SaveTo without locking. Callers hold ix.mu (either mode).
func (ix *Index) saveLocked(w io.Writer) error {
	if ix.damaged != nil {
		return fmt.Errorf("pvindex: refusing to snapshot a damaged index: %w", ix.damaged)
	}
	img := indexImage{
		Magic:           persistMagic,
		SE:              ix.cfg.SE,
		MemBudget:       ix.cfg.MemBudget,
		Fanout:          ix.cfg.Fanout,
		Objects:         ix.db.Len(),
		RecordCacheSize: ix.cfg.RecordCacheSize,
		WALSeq:          ix.walSeq,
		Store:           ix.store.Image(),
		Primary:         ix.primary.Image(),
		Secondary:       ix.secondary.Image(),
	}
	return gob.NewEncoder(w).Encode(&img)
}

// SnapshotWith writes a mutually consistent snapshot pair under one read
// lock: fn runs first (typically saving the database), then the index image
// is written to w. Because the lock is held across both, no writer can slip
// an update between the database's state and the index's — the invariant a
// durable checkpoint depends on.
func (ix *Index) SnapshotWith(w io.Writer, fn func(db *uncertain.DB) error) (walSeq uint64, err error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.damaged != nil {
		return 0, fmt.Errorf("pvindex: refusing to snapshot a damaged index: %w", ix.damaged)
	}
	if fn != nil {
		if err := fn(ix.db); err != nil {
			return 0, err
		}
	}
	if err := ix.saveLocked(w); err != nil {
		return 0, err
	}
	return ix.walSeq, nil
}

// LoadFrom reconstructs an index from r over the given database. The
// database must be the same object set the index was built on (checked by
// cardinality and by per-object UBR presence).
func LoadFrom(r io.Reader, db *uncertain.DB) (*Index, error) {
	var img indexImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("pvindex: decoding index image: %w", err)
	}
	if img.Magic != persistMagic && img.Magic != persistMagicV1 {
		return nil, fmt.Errorf("pvindex: bad magic %q", img.Magic)
	}
	if img.Objects != db.Len() {
		return nil, fmt.Errorf("pvindex: index was built over %d objects, database has %d", img.Objects, db.Len())
	}
	store, err := pagestore.FromImage(img.Store)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		db:     db,
		store:  store,
		walSeq: img.WALSeq,
		cfg: Config{
			Store:           store,
			MemBudget:       img.MemBudget,
			Fanout:          img.Fanout,
			SE:              img.SE,
			RecordCacheSize: img.RecordCacheSize,
		},
	}
	ix.initRuntime()
	ix.secondary, err = exthash.FromImage(store, img.Secondary)
	if err != nil {
		return nil, err
	}
	ix.primary, err = octree.FromImage(store, ix.lookupUBR, img.Primary)
	if err != nil {
		return nil, err
	}
	fanout := img.Fanout
	if fanout <= 0 {
		fanout = rtree.DefaultFanout
	}
	ix.regionTree = core.BuildRegionTree(db, fanout)

	// Sanity: every database object must have a stored record.
	for _, o := range db.Objects() {
		if _, ok := ix.lookupUBR(uint32(o.ID)); !ok {
			return nil, fmt.Errorf("pvindex: object %d missing from loaded index", o.ID)
		}
	}
	return ix, nil
}
