package pvindex

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"pvoronoi/internal/adjgraph"
	"pvoronoi/internal/core"
	"pvoronoi/internal/exthash"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/octree"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// Image format versions. PVIDX2 added RecordCacheSize (V1 silently dropped
// it, resetting loaded indexes to the default cache size) and WALSeq (so
// recovery knows which write-ahead-log records a snapshot already covers).
// PVIDX3 added the serialized UBR-adjacency graph. PVIDX4 added the
// refinement configuration and the incremental re-refinement threshold; its
// stored UBRs are already refined. Older images are still loadable: gob
// decodes by field name, leaving new fields at their zero values — a nil
// adjacency image is rebuilt from the loaded octree and secondary index at
// load time, and pre-V4 images (no refinement state) run a refinement pass
// at load so an old snapshot serves with the same tight hubs a fresh build
// would.
const (
	persistMagicV1 = "PVIDX1"
	persistMagicV2 = "PVIDX2"
	persistMagicV3 = "PVIDX3"
	persistMagic   = "PVIDX4"
)

// indexImage bundles the serializable state of all index layers.
type indexImage struct {
	Magic           string
	SE              core.Options
	MemBudget       int
	Fanout          int
	Objects         int
	RecordCacheSize int
	WALSeq          uint64
	Store           *pagestore.Image
	Primary         *octree.Image
	Secondary       *exthash.Image
	Adjacency       *adjgraph.Image
	// Refine and RefineThreshold (PVIDX4) restore the refinement subsystem:
	// the config the UBRs were refined under and the hub-score cutoff the
	// incremental write path re-refines against (0 = unset).
	Refine          RefineConfig
	RefineThreshold float64
}

// SaveTo serializes the index (page store, octree skeleton, hash directory,
// and configuration) to w. The database itself is not written — it is the
// caller's input at load time, matching the paper's separation of data and
// access structure. Durable deployments that must also persist the data use
// SnapshotWith, which saves both from one pinned version.
//
// Serialization pins the current version and runs entirely off-lock:
// writers publish new versions freely while the pinned one streams out, and
// only the pages reachable from the pinned version are captured (a page a
// writer shadow-copies mid-save is still intact in the pinned version).
func (ix *Index) SaveTo(w io.Writer) error {
	v := ix.pin()
	defer ix.unpin(v)
	return ix.saveVersion(w, v)
}

// saveVersion serializes one pinned version.
func (ix *Index) saveVersion(w io.Writer, v *version) error {
	if err := ix.damagedErr(); err != nil {
		return fmt.Errorf("pvindex: refusing to snapshot a damaged index: %w", err)
	}
	pages, err := v.primary.CollectPages(nil)
	if err != nil {
		return err
	}
	pages, err = v.secondary.CollectPages(pages)
	if err != nil {
		return err
	}
	storeImg, err := ix.store.ImageOf(pages)
	if err != nil {
		return err
	}
	img := indexImage{
		Magic:           persistMagic,
		SE:              ix.cfg.SE,
		MemBudget:       ix.cfg.MemBudget,
		Fanout:          ix.cfg.Fanout,
		Objects:         v.db.Len(),
		RecordCacheSize: ix.cfg.RecordCacheSize,
		WALSeq:          v.walSeq,
		Store:           storeImg,
		Primary:         v.primary.Image(),
		Secondary:       v.secondary.Image(),
	}
	if v.adj != nil {
		img.Adjacency = v.adj.Image()
	}
	img.Refine = ix.cfg.Refine
	if t := ix.refineThreshold(); !math.IsInf(t, 1) {
		img.RefineThreshold = t
	}
	return gob.NewEncoder(w).Encode(&img)
}

// SnapshotWith writes a mutually consistent snapshot pair from one pinned
// version: fn runs first (typically saving the database), then the index
// image is written to w. Both read the same immutable version, so no writer
// can slip an update between the database's state and the index's — the
// invariant a durable checkpoint depends on — and neither holds any lock:
// writers keep committing while the checkpoint streams.
func (ix *Index) SnapshotWith(w io.Writer, fn func(db *uncertain.DB) error) (walSeq uint64, err error) {
	v := ix.pin()
	defer ix.unpin(v)
	if err := ix.damagedErr(); err != nil {
		return 0, fmt.Errorf("pvindex: refusing to snapshot a damaged index: %w", err)
	}
	if fn != nil {
		if err := fn(v.db); err != nil {
			return 0, err
		}
	}
	if err := ix.saveVersion(w, v); err != nil {
		return 0, err
	}
	return v.walSeq, nil
}

// LoadFrom reconstructs an index from r over the given database. The
// database must be the same object set the index was built on (checked by
// cardinality and by per-object UBR presence).
func LoadFrom(r io.Reader, db *uncertain.DB) (*Index, error) {
	var img indexImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("pvindex: decoding index image: %w", err)
	}
	switch img.Magic {
	case persistMagic, persistMagicV3, persistMagicV2, persistMagicV1:
	default:
		return nil, fmt.Errorf("pvindex: bad magic %q", img.Magic)
	}
	if img.Objects != db.Len() {
		return nil, fmt.Errorf("pvindex: index was built over %d objects, database has %d", img.Objects, db.Len())
	}
	store, err := pagestore.FromImage(img.Store)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		store: store,
		cfg: Config{
			Store:           store,
			MemBudget:       img.MemBudget,
			Fanout:          img.Fanout,
			SE:              img.SE,
			RecordCacheSize: img.RecordCacheSize,
			Refine:          img.Refine,
		},
	}
	ix.initRuntime()
	if img.RefineThreshold > 0 {
		ix.setRefineThreshold(img.RefineThreshold)
	}
	secondary, err := exthash.FromImage(store, img.Secondary)
	if err != nil {
		return nil, err
	}
	// The loaded octree's lookup reads the secondary index directly; it is
	// only consulted by mutations, which run on CloneCOW descendants wired
	// to the writer's own view.
	lookup := func(id uint32) (geom.Rect, bool) {
		buf, found, err := secondary.Get(id)
		if err != nil || !found {
			return geom.Rect{}, false
		}
		rec, err := decodeRecord(buf)
		if err != nil {
			return geom.Rect{}, false
		}
		return rec.UBR, true
	}
	primary, err := octree.FromImage(store, lookup, img.Primary)
	if err != nil {
		return nil, err
	}
	fanout := img.Fanout
	if fanout <= 0 {
		fanout = rtree.DefaultFanout
	}
	regionTree := core.BuildRegionTree(db, fanout)

	// Sanity: every database object must have a stored record.
	for _, o := range db.Objects() {
		if _, ok := lookup(uint32(o.ID)); !ok {
			return nil, fmt.Errorf("pvindex: object %d missing from loaded index", o.ID)
		}
	}

	// V3 images carry the adjacency graph; older formats rebuild it from the
	// loaded octree and secondary index (a one-time load cost, no SE).
	var adj *adjgraph.Graph
	if img.Adjacency != nil {
		if adj, err = adjgraph.FromImage(img.Adjacency); err != nil {
			return nil, err
		}
		if adj.Len() != db.Len() {
			return nil, fmt.Errorf("pvindex: adjacency image has %d rows, database has %d", adj.Len(), db.Len())
		}
	} else {
		if adj, err = rebuildAdjacency(db, primary, lookup); err != nil {
			return nil, err
		}
	}

	ix.current.Store(&version{
		epoch:      1,
		walSeq:     img.WALSeq,
		db:         db,
		primary:    primary,
		secondary:  secondary,
		regionTree: regionTree,
		adj:        adj,
	})

	// Pre-V4 images carry unrefined UBRs and no re-refinement threshold:
	// refine at load (one pass over the loaded state, published as version
	// 2), so an old snapshot serves with the same tight hubs a fresh build
	// would. V4 images are already refined — their threshold was restored
	// above.
	if img.Magic != persistMagic && !ix.cfg.Refine.Disabled {
		if _, err := ix.Refine(); err != nil {
			return nil, fmt.Errorf("pvindex: refining pre-%s image at load: %w", persistMagic, err)
		}
	}
	return ix, nil
}
