package pvindex

import (
	"bytes"
	"math/rand"
	"testing"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := randomDB(rng, 150, 3, 1000, 40, true)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFrom(&buf, db)
	if err != nil {
		t.Fatal(err)
	}
	// Queries must be identical to the original index and brute force.
	for iter := 0; iter < 100; iter++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		a, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(a), idsOf(b)) {
			t.Fatalf("q=%v: original %v loaded %v", q, idsOf(a), idsOf(b))
		}
		if !sameIDs(idsOf(b), bruteforce.PossibleNN(db, q)) {
			t.Fatalf("q=%v: loaded index wrong vs brute force", q)
		}
	}
	// Stored records (UBR + instances) must survive.
	for _, o := range db.Objects() {
		ua, _ := ix.UBR(o.ID)
		ub, ok := loaded.UBR(o.ID)
		if !ok || !ua.Equal(ub) {
			t.Fatalf("object %d UBR mismatch after load", o.ID)
		}
		ins, err := loaded.Instances(o.ID)
		if err != nil || len(ins) != len(o.Instances) {
			t.Fatalf("object %d instances corrupted: %v", o.ID, err)
		}
	}
}

func TestLoadedIndexSupportsUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := randomDB(rng, 100, 2, 800, 35, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFrom(&buf, db)
	if err != nil {
		t.Fatal(err)
	}
	// Incremental maintenance must keep working on the loaded index.
	for i := 0; i < 10; i++ {
		lo := geom.Point{rng.Float64() * 750, rng.Float64() * 750}
		o := &uncertain.Object{
			ID:     uncertain.ID(2000 + i),
			Region: geom.NewRect(lo, geom.Point{lo[0] + 20, lo[1] + 20}),
		}
		if _, err := loaded.Insert(o); err != nil {
			t.Fatalf("insert on loaded index: %v", err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := loaded.Delete(uncertain.ID(i)); err != nil {
			t.Fatalf("delete on loaded index: %v", err)
		}
	}
	for iter := 0; iter < 80; iter++ {
		q := geom.Point{rng.Float64() * 800, rng.Float64() * 800}
		got, err := loaded.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(got), bruteforce.PossibleNN(loaded.DB(), q)) {
			t.Fatalf("loaded+updated index wrong at %v", q)
		}
	}
}

func TestLoadPreservesRecordCacheSize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(rng, 40, 2, 500, 25, false)
	cfg := testConfig()
	cfg.RecordCacheSize = 128 // far from the 4096 default
	ix, err := Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFrom(&buf, db)
	if err != nil {
		t.Fatal(err)
	}
	want := ix.RecordCacheStats().Capacity
	got := loaded.RecordCacheStats().Capacity
	if got != want {
		t.Fatalf("loaded record cache capacity %d, want %d (RecordCacheSize dropped on load)", got, want)
	}
	if got == newRecordCache(0).stats().Capacity {
		t.Fatalf("loaded cache fell back to the default capacity %d", got)
	}
}

func TestSaveLoadAfterUpdateTraffic(t *testing.T) {
	// Round-trip an index that has seen post-build Insert/Delete traffic —
	// its octree leaves, hash chains and free lists differ structurally
	// from a fresh build's.
	rng := rand.New(rand.NewSource(8))
	db := randomDB(rng, 120, 2, 800, 30, true)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		lo := geom.Point{rng.Float64() * 750, rng.Float64() * 750}
		o := &uncertain.Object{
			ID:     uncertain.ID(3000 + i),
			Region: geom.NewRect(lo, geom.Point{lo[0] + 18, lo[1] + 18}),
		}
		o.Instances = uncertain.SampleInstances(o.Region, uncertain.PDFUniform, 20, rng)
		if _, err := ix.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		if _, err := ix.Delete(uncertain.ID(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Load against the current version's database — the bootstrap handle is
	// version 1's snapshot and no longer matches the updated index.
	cur := ix.DB()
	var buf bytes.Buffer
	if err := ix.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFrom(&buf, cur)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 100; iter++ {
		q := geom.Point{rng.Float64() * 800, rng.Float64() * 800}
		a, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(a), idsOf(b)) {
			t.Fatalf("q=%v: original %v loaded %v", q, idsOf(a), idsOf(b))
		}
		if !sameIDs(idsOf(b), bruteforce.PossibleNN(cur, q)) {
			t.Fatalf("q=%v: loaded updated index wrong vs brute force", q)
		}
	}
	for _, o := range cur.Objects() {
		ua, _ := ix.UBR(o.ID)
		ub, ok := loaded.UBR(o.ID)
		if !ok || !ua.Equal(ub) {
			t.Fatalf("object %d UBR mismatch after load of updated index", o.ID)
		}
		ins, err := loaded.Instances(o.ID)
		if err != nil || len(ins) != len(o.Instances) {
			t.Fatalf("object %d instances corrupted: %v", o.ID, err)
		}
	}
	// The loaded index keeps supporting updates.
	if _, err := loaded.Delete(cur.Objects()[0].ID); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsMismatchedDB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomDB(rng, 50, 2, 500, 25, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Different cardinality.
	other := randomDB(rng, 49, 2, 500, 25, false)
	if _, err := LoadFrom(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("load accepted a database with different cardinality")
	}
	// Same cardinality, different IDs.
	shifted := uncertain.NewDB(db.Domain)
	for i, o := range db.Objects() {
		_ = shifted.Add(&uncertain.Object{ID: uncertain.ID(5000 + i), Region: o.Region})
	}
	if _, err := LoadFrom(bytes.NewReader(buf.Bytes()), shifted); err == nil {
		t.Fatal("load accepted a database with foreign IDs")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := randomDB(rng, 10, 2, 100, 10, false)
	if _, err := LoadFrom(bytes.NewReader([]byte("junk")), db); err == nil {
		t.Fatal("garbage accepted")
	}
}
