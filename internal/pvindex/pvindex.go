// Package pvindex assembles the paper's PV-index (§VI): UBRs computed by the
// SE algorithm, organized in an octree primary index for point-query pruning
// and an extendible-hash secondary index holding each object's UBR and
// discretized pdf. It implements PNNQ Step 1 (retrieval of objects with
// non-zero qualification probability) and the incremental insert/delete
// maintenance of §VI-B.
package pvindex

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pvoronoi/internal/core"
	"pvoronoi/internal/exthash"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/octree"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// Config bundles the index's resource parameters (Table I defaults).
type Config struct {
	// Store is the simulated disk; a fresh 4 KB-page store if nil.
	Store *pagestore.Store
	// MemBudget is the primary index's non-leaf memory allowance
	// (paper default 5 MB).
	MemBudget int
	// Fanout of the helper R*-tree used during construction.
	Fanout int
	// SE are the Shrink-and-Expand parameters.
	SE core.Options
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{MemBudget: 5 << 20, Fanout: rtree.DefaultFanout, SE: core.DefaultOptions()}
}

// BuildStats aggregates construction cost, feeding Figs. 10(b)–10(f).
type BuildStats struct {
	Objects     int
	Total       time.Duration
	CSetTime    time.Duration // chooseCSet portion of SE
	UBRTime     time.Duration // shrink/expand portion of SE
	InsertTime  time.Duration // primary+secondary insertion portion
	CSetSizeSum int           // divide by Objects for the average
	SE          core.Stats
}

// Index is a built PV-index over a database. It is safe for concurrent use:
// queries (PossibleNN, Instances, UBR, Snapshot reads) share a read lock and
// run in parallel; Insert and Delete take the write lock and serialize
// against everything else. The octree, hash table, region tree and database
// are all guarded by this one lock — they are never safe to mutate
// concurrently on their own.
type Index struct {
	mu         sync.RWMutex
	db         *uncertain.DB
	store      *pagestore.Store
	primary    *octree.Tree
	secondary  *exthash.Table
	regionTree *rtree.Tree
	cfg        Config

	// Build records the construction cost profile.
	Build BuildStats
}

// Build constructs the PV-index for every object in db. The database is
// referenced, not copied: subsequent Insert/Delete calls on the index keep
// db and the index in sync.
func Build(db *uncertain.DB, cfg Config) (*Index, error) {
	if cfg.Store == nil {
		cfg.Store = pagestore.New(pagestore.DefaultPageSize)
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 5 << 20
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = rtree.DefaultFanout
	}
	ix := &Index{db: db, store: cfg.Store, cfg: cfg}

	start := time.Now()
	var err error
	ix.secondary, err = exthash.New(cfg.Store)
	if err != nil {
		return nil, err
	}
	ix.primary, err = octree.New(octree.Config{
		Domain:    db.Domain,
		Store:     cfg.Store,
		Lookup:    ix.lookupUBR,
		MemBudget: cfg.MemBudget,
	})
	if err != nil {
		return nil, err
	}
	ix.regionTree = core.BuildRegionTree(db, cfg.Fanout)

	for _, o := range db.Objects() {
		ubr, st := core.ComputeUBR(db, ix.regionTree, o, cfg.SE)
		ix.Build.SE.Add(st)
		ix.Build.CSetTime += st.CSetTime
		ix.Build.UBRTime += st.UBRTime
		ix.Build.CSetSizeSum += st.CSetSize
		t0 := time.Now()
		if err := ix.addObject(o, ubr); err != nil {
			return nil, err
		}
		ix.Build.InsertTime += time.Since(t0)
		ix.Build.Objects++
	}
	ix.Build.Total = time.Since(start)
	return ix, nil
}

// lookupUBR serves octree leaf splits from the secondary index.
func (ix *Index) lookupUBR(id uint32) (geom.Rect, bool) {
	buf, ok, err := ix.secondary.Get(id)
	if err != nil || !ok {
		return geom.Rect{}, false
	}
	rec, err := decodeRecord(buf)
	if err != nil {
		return geom.Rect{}, false
	}
	return rec.UBR, true
}

// addObject writes o's record to the secondary index and its entries to the
// primary index.
func (ix *Index) addObject(o *uncertain.Object, ubr geom.Rect) error {
	rec := record{UBR: ubr, Region: o.Region, Instances: o.Instances}
	if err := ix.secondary.Put(uint32(o.ID), encodeRecord(rec)); err != nil {
		return err
	}
	return ix.primary.Insert(uint32(o.ID), o.Region, ubr)
}

// UBR returns the stored UBR of an object.
func (ix *Index) UBR(id uncertain.ID) (geom.Rect, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.lookupUBR(uint32(id))
}

// Store exposes the underlying page store (for I/O accounting).
func (ix *Index) Store() *pagestore.Store { return ix.store }

// PrimaryStats reports the octree's shape.
func (ix *Index) PrimaryStats() octree.Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.primary.TreeStats()
}

// DB returns the indexed database. The pointer itself is stable; reading
// through it while writers run requires View.
func (ix *Index) DB() *uncertain.DB { return ix.db }

// View runs fn under the index's read lock, giving it a consistent view of
// the database while Insert/Delete writers are excluded. Queries that walk
// the raw database (the extension queries of extquery) go through here.
func (ix *Index) View(fn func(db *uncertain.DB) error) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return fn(ix.db)
}

// Candidate is a PNNQ Step-1 survivor: an object with non-zero probability
// of being the query's nearest neighbor.
type Candidate struct {
	ID      uncertain.ID
	Region  geom.Rect
	MinDist float64
	MaxDist float64
}

// PossibleNN evaluates PNNQ Step 1: it walks the primary index to the leaf
// containing q and prunes the leaf's candidate list by min/max distance.
// The result is exactly the set of objects whose PV-cells contain q.
func (ix *Index) PossibleNN(q geom.Point) ([]Candidate, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	cands, _, err := ix.possibleNN(q)
	return cands, err
}

// PossibleNNIO is PossibleNN plus the number of primary-index leaf pages
// read — the exact per-query leaf I/O, attributable to this call even under
// concurrent traffic.
func (ix *Index) PossibleNNIO(q geom.Point) ([]Candidate, int, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.possibleNN(q)
}

// possibleNN is PossibleNN without locking, returning the leaf pages read.
// Callers hold ix.mu (either mode).
func (ix *Index) possibleNN(q geom.Point) ([]Candidate, int, error) {
	entries, leafIO, err := ix.primary.PointQueryIO(q)
	if err != nil {
		return nil, leafIO, err
	}
	if len(entries) == 0 {
		return nil, leafIO, nil
	}
	// Deduplicate (an object appears once per overlapping leaf page set —
	// the point query hits one leaf, but defensive against double inserts).
	seen := make(map[uint32]bool, len(entries))
	cands := make([]Candidate, 0, len(entries))
	bestMax := -1.0
	for _, e := range entries {
		if seen[e.ID] {
			continue
		}
		seen[e.ID] = true
		c := Candidate{
			ID:      uncertain.ID(e.ID),
			Region:  e.Region,
			MinDist: e.Region.MinDist(q),
			MaxDist: e.Region.MaxDist(q),
		}
		if bestMax < 0 || c.MaxDist < bestMax {
			bestMax = c.MaxDist
		}
		cands = append(cands, c)
	}
	out := cands[:0]
	for _, c := range cands {
		if c.MinDist <= bestMax {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, leafIO, nil
}

// Instances fetches the stored pdf instances for an object from the
// secondary index (PNNQ Step 2's data access).
func (ix *Index) Instances(id uncertain.ID) ([]uncertain.Instance, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.instances(id)
}

// instances is Instances without locking. Callers hold ix.mu (either mode).
func (ix *Index) instances(id uncertain.ID) ([]uncertain.Instance, error) {
	buf, ok, err := ix.secondary.Get(uint32(id))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("pvindex: object %d not in secondary index", id)
	}
	rec, err := decodeRecord(buf)
	if err != nil {
		return nil, err
	}
	return rec.Instances, nil
}

// QuerySnapshot is an atomic PNNQ read: the Step-1 candidate set, each
// candidate's stored pdf instances (parallel slice), and the number of
// primary-index leaf pages read — all fetched under one read lock so a
// concurrent writer can never remove a candidate between Step 1 and the
// Step-2 data access.
type QuerySnapshot struct {
	Candidates []Candidate
	Instances  [][]uncertain.Instance
	LeafIO     int
}

// Snapshot evaluates Step 1 and fetches every candidate's instances in one
// critical section. Full-query callers (Step 2 probability computation) run
// on the snapshot outside the lock.
func (ix *Index) Snapshot(q geom.Point) (*QuerySnapshot, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	cands, leafIO, err := ix.possibleNN(q)
	if err != nil {
		return nil, err
	}
	snap := &QuerySnapshot{
		Candidates: cands,
		Instances:  make([][]uncertain.Instance, len(cands)),
		LeafIO:     leafIO,
	}
	for i, c := range cands {
		ins, err := ix.instances(c.ID)
		if err != nil {
			return nil, err
		}
		snap.Instances[i] = ins
	}
	return snap, nil
}

// UpdateStats reports the cost of one incremental maintenance operation.
type UpdateStats struct {
	Affected  int           // objects whose UBRs were recomputed
	Examined  int           // objects touched by the range filter
	SETime    time.Duration // UBR recomputation time
	IndexTime time.Duration // primary/secondary maintenance time
	TotalTime time.Duration
}

// Insert adds object o to the database and incrementally refreshes the
// index (§VI-B, insertion). The PV-cells of affected objects can only
// shrink (Lemma 9), so their UBRs are recomputed warm-started from the old
// UBR as the upper bound.
func (ix *Index) Insert(o *uncertain.Object) (UpdateStats, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var st UpdateStats
	start := time.Now()
	defer func() { st.TotalTime = time.Since(start) }()

	if err := ix.db.Add(o); err != nil {
		return st, err
	}
	ix.regionTree.Insert(rtree.Item{Rect: o.Region, ID: uint32(o.ID)})

	// Step 1: UBR of the newcomer over the updated database.
	t0 := time.Now()
	newB, seStats := core.ComputeUBR(ix.db, ix.regionTree, o, ix.cfg.SE)
	st.SETime += time.Since(t0)
	_ = seStats

	// Step 2: candidate affected set from the primary index.
	ids, err := ix.primary.RangeIDs(newB)
	if err != nil {
		return st, err
	}
	st.Examined = len(ids)

	for id := range ids {
		oid := uncertain.ID(id)
		if oid == o.ID {
			continue
		}
		other := ix.db.Get(oid)
		if other == nil {
			continue
		}
		// Lemma 8(3): objects whose regions overlap u(o') are unaffected.
		if other.Region.Intersects(o.Region) {
			continue
		}
		oldB, ok := ix.lookupUBR(id)
		if !ok {
			continue
		}
		// Lemma 8(2) via UBRs: disjoint bounding rectangles imply disjoint
		// PV-cells, hence unaffected.
		if !oldB.Intersects(newB) {
			continue
		}
		st.Affected++

		// Step 3: warm-started SE (h = old UBR).
		t1 := time.Now()
		updated, _ := core.ComputeUBRAfterInsert(ix.db, ix.regionTree, other, oldB, ix.cfg.SE)
		st.SETime += time.Since(t1)

		// Step 4: drop entries from leaves no longer covered, refresh record.
		t2 := time.Now()
		if _, err := ix.primary.RemoveDiff(id, oldB, updated); err != nil {
			return st, err
		}
		rec := record{UBR: updated, Region: other.Region, Instances: other.Instances}
		if err := ix.secondary.Put(id, encodeRecord(rec)); err != nil {
			return st, err
		}
		st.IndexTime += time.Since(t2)
	}

	t3 := time.Now()
	err = ix.addObject(o, newB)
	st.IndexTime += time.Since(t3)
	return st, err
}

// Delete removes the object with the given ID from the database and
// incrementally refreshes the index (§VI-B, deletion). Affected PV-cells can
// only grow, so UBRs are recomputed warm-started from the old UBR as the
// lower bound and entries are added to newly covered leaves.
func (ix *Index) Delete(id uncertain.ID) (UpdateStats, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var st UpdateStats
	start := time.Now()
	defer func() { st.TotalTime = time.Since(start) }()

	victim := ix.db.Get(id)
	if victim == nil {
		return st, fmt.Errorf("pvindex: delete of object %d: %w", id, uncertain.ErrUnknownID)
	}
	victimUBR, ok := ix.lookupUBR(uint32(id))
	if !ok {
		return st, fmt.Errorf("pvindex: object %d missing from secondary index", id)
	}

	if _, err := ix.db.Remove(id); err != nil {
		return st, err
	}
	ix.regionTree.Delete(rtree.Item{Rect: victim.Region, ID: uint32(id)})

	// Step 2: candidate affected set.
	ids, err := ix.primary.RangeIDs(victimUBR)
	if err != nil {
		return st, err
	}
	st.Examined = len(ids)

	// Step 4a: remove the victim's entries and record first, so warm-started
	// SE and leaf splits see the post-delete state.
	t0 := time.Now()
	if _, err := ix.primary.Remove(uint32(id), victimUBR); err != nil {
		return st, err
	}
	if _, err := ix.secondary.Delete(uint32(id)); err != nil {
		return st, err
	}
	st.IndexTime += time.Since(t0)

	for otherID := range ids {
		oid := uncertain.ID(otherID)
		if oid == id {
			continue
		}
		other := ix.db.Get(oid)
		if other == nil {
			continue
		}
		// Lemma 8(3): overlap with the victim means unaffected.
		if other.Region.Intersects(victim.Region) {
			continue
		}
		oldB, ok := ix.lookupUBR(otherID)
		if !ok {
			continue
		}
		// Lemma 8(1) via UBRs.
		if !oldB.Intersects(victimUBR) {
			continue
		}
		st.Affected++

		// Step 3: warm-started SE (l = old UBR).
		t1 := time.Now()
		updated, _ := core.ComputeUBRAfterDelete(ix.db, ix.regionTree, other, oldB, ix.cfg.SE)
		st.SETime += time.Since(t1)

		// Step 4b: extend coverage to newly reached leaves (N′−N).
		t2 := time.Now()
		rec := record{UBR: updated, Region: other.Region, Instances: other.Instances}
		if err := ix.secondary.Put(otherID, encodeRecord(rec)); err != nil {
			return st, err
		}
		if err := ix.primary.InsertDiff(otherID, other.Region, updated, oldB); err != nil {
			return st, err
		}
		st.IndexTime += time.Since(t2)
	}
	return st, nil
}
