// Package pvindex assembles the paper's PV-index (§VI): UBRs computed by the
// SE algorithm, organized in an octree primary index for point-query pruning
// and an extendible-hash secondary index holding each object's UBR and
// discretized pdf. It implements PNNQ Step 1 (retrieval of objects with
// non-zero qualification probability) and the incremental insert/delete
// maintenance of §VI-B.
package pvindex

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pvoronoi/internal/adjgraph"
	"pvoronoi/internal/core"
	"pvoronoi/internal/exthash"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/octree"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
	"pvoronoi/internal/wal"
)

// Config bundles the index's resource parameters (Table I defaults).
type Config struct {
	// Store is the simulated disk; a fresh 4 KB-page store if nil.
	Store *pagestore.Store
	// MemBudget is the primary index's non-leaf memory allowance
	// (paper default 5 MB).
	MemBudget int
	// Fanout of the helper R*-tree used during construction.
	Fanout int
	// SE are the Shrink-and-Expand parameters.
	SE core.Options
	// RecordCacheSize bounds the decoded-record cache in entries
	// (0 = DefaultRecordCacheSize, negative = cache disabled).
	RecordCacheSize int
	// WAL, when non-nil, is the write-ahead log every update batch is
	// appended to (and fsynced) before it applies — the durable write path.
	// Equivalent to calling AttachWAL after construction.
	WAL *wal.Log
	// Refine configures the budget-aware UBR refinement subsystem
	// (refine.go). The zero value enables it with the documented defaults.
	Refine RefineConfig
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{MemBudget: 5 << 20, Fanout: rtree.DefaultFanout, SE: core.DefaultOptions()}
}

// BuildStats aggregates construction cost, feeding Figs. 10(b)–10(f).
type BuildStats struct {
	Objects     int
	Total       time.Duration
	CSetTime    time.Duration // chooseCSet portion of SE
	UBRTime     time.Duration // shrink/expand portion of SE
	InsertTime  time.Duration // primary+secondary insertion portion
	CSetSizeSum int           // divide by Objects for the average
	SE          core.Stats
}

// Index is a built PV-index over a database, served through epoch-based
// MVCC: the entire index state — database, octree, secondary-index records,
// region R*-tree, WAL position — lives in an immutable version published
// via an atomic pointer. Queries pin the current version with two atomic
// operations and never take a lock, so they proceed at full speed while
// ApplyBatch builds the next version copy-on-write and publishes it with a
// single pointer swap. Retired versions are reclaimed by an epoch/refcount
// sweep once their last in-flight reader drains (see version.go).
type Index struct {
	// current is the published version every new reader pins.
	current atomic.Pointer[version]

	store *pagestore.Store
	cfg   Config

	// writerMu serializes whole update batches (stage + log + build +
	// publish), so a batch's staged SE work and its WAL order can never
	// interleave with another writer's. Readers never touch it.
	writerMu sync.Mutex
	// wal, when attached, receives every update batch before it applies.
	// Mutated only via AttachWAL before serving writers.
	wal *wal.Log

	// dmg, guarded by dmgMu, is set when a WAL-logged batch failed to
	// apply: the in-memory rollback was clean (the working version is
	// simply discarded), but the log now holds a batch the caller was told
	// failed. Further writes and persistence snapshots are refused so the
	// divergence can never compound or become durable; queries keep
	// serving the last published version.
	dmgMu sync.Mutex
	dmg   error

	// rcache holds decoded secondary-index records, generation-tagged so
	// readers pinned to different versions can share it (recordcache.go).
	rcache *recordCache
	// scratch pools per-query working memory for the Step-1 hot loop.
	scratch sync.Pool

	// reclaimMu guards the retired-version queue (version.go).
	reclaimMu sync.Mutex
	retired   []*version
	reclaims  int64
	// prunedTo is the oldest-pinnable epoch the cache generation table was
	// last pruned against (guarded by reclaimMu).
	prunedTo uint64

	// Adjacency-maintenance counters: rows recomputed from the primary
	// index, rows patched by a single neighbor link, and rows deleted, over
	// the index's lifetime. A full rebuild would show recomputed ≈ n per
	// batch; the incremental path stays at O(affected).
	adjRecomputed atomic.Int64
	adjPatched    atomic.Int64
	adjDeleted    atomic.Int64

	// Refinement lifetime counters (refine.go): rows refined, clip walks
	// run, domination decisions spent, and the incremental re-refinement
	// threshold as float bits (0 = unset, read as +Inf).
	refRows          atomic.Int64
	refClipPasses    atomic.Int64
	refBudget        atomic.Int64
	refThresholdBits atomic.Uint64

	// Build records the construction cost profile.
	Build BuildStats
}

// queryScratch is the reusable working set of one possibleNN evaluation:
// the decoded leaf entries, the pre-filter candidate list, and the dedup
// set. Pooled so the Step-1 hot loop allocates only its returned survivors.
type queryScratch struct {
	entries []octree.Entry
	cands   []Candidate
	seen    map[uint32]struct{}
}

// initRuntime wires the non-persisted runtime state (record cache, scratch
// pool, WAL attachment). Every Index constructor — Build, BuildParallel,
// LoadFrom — calls it before the index is shared.
func (ix *Index) initRuntime() {
	ix.rcache = newRecordCache(ix.cfg.RecordCacheSize)
	ix.wal = ix.cfg.WAL
	ix.scratch.New = func() any {
		return &queryScratch{seen: make(map[uint32]struct{}, 64)}
	}
}

// working is the writer's mutable view while it builds the next version:
// a cloned database, copy-on-write handles over the octree, secondary index
// and region tree, the deferred-free list shared by both page-backed
// structures, and the set of record IDs rewritten so far (for the cache
// generation bump at publish and for the writer's own read-your-writes).
// In bootstrap mode (construction, load) there is no predecessor version:
// structures mutate in place and no dirty tracking is needed.
type working struct {
	ix        *Index
	epoch     uint64 // epoch this working set publishes as
	baseEpoch uint64 // epoch writer-side cache fills are tagged with

	db         *uncertain.DB
	primary    *octree.Tree
	secondary  *exthash.Table
	regionTree *rtree.Tree

	// adj is the next version's UBR-adjacency graph, cloned copy-on-write
	// from the base. adjChanged collects the IDs whose stored UBR this batch
	// (re)computed — exactly the rows updateAdjacency must rebuild — and
	// adjRemoved the IDs it deleted. Both are nil in bootstrap mode, where
	// the graph is rebuilt whole after the load loop instead.
	adj        *adjgraph.Graph
	adjChanged map[uint32]struct{}
	adjRemoved map[uint32]struct{}

	freed []pagestore.PageID
	dirty map[uint32]struct{} // nil in bootstrap mode
}

// bootstrapWorking creates the construction-time working set over db.
func (ix *Index) bootstrapWorking(db *uncertain.DB) (*working, error) {
	w := &working{ix: ix, epoch: 1, baseEpoch: 1, db: db}
	var err error
	w.secondary, err = exthash.New(ix.store)
	if err != nil {
		return nil, err
	}
	w.primary, err = octree.New(octree.Config{
		Domain:    db.Domain,
		Store:     ix.store,
		Lookup:    w.lookupUBR,
		MemBudget: ix.cfg.MemBudget,
	})
	if err != nil {
		return nil, err
	}
	w.regionTree = core.BuildRegionTree(db, ix.cfg.Fanout)
	return w, nil
}

// newWorking derives the writer's view for the next version from base:
// O(n) only in the database clone (bookkeeping maps over shared object
// pointers); the trees start as O(1) copy-on-write handles.
func (ix *Index) newWorking(base *version) *working {
	w := &working{
		ix:        ix,
		epoch:     base.epoch + 1,
		baseEpoch: base.epoch,
		db:        base.db.Clone(),
		dirty:     make(map[uint32]struct{}),
	}
	w.regionTree = base.regionTree.CloneCOW()
	w.secondary = base.secondary.CloneCOW(&w.freed)
	w.primary = base.primary.CloneCOW(w.lookupUBR, &w.freed)
	w.adj = base.adj.CloneCOW()
	w.adjChanged = make(map[uint32]struct{})
	w.adjRemoved = make(map[uint32]struct{})
	return w
}

// abort discards a working set after a mid-apply failure: pages it
// allocated are invisible to every published version and return to the
// store immediately; its deferred frees are dropped (the old version keeps
// serving them). The published state is untouched — MVCC makes a failed
// batch a clean rollback.
func (w *working) abort() {
	w.primary.AbortCOW()
	w.secondary.AbortCOW()
}

// seal freezes the working set into a publishable version.
func (w *working) seal(walSeq uint64) *version {
	return &version{
		epoch:      w.epoch,
		walSeq:     walSeq,
		db:         w.db,
		primary:    w.primary,
		secondary:  w.secondary,
		regionTree: w.regionTree,
		adj:        w.adj,
	}
}

// publishWorking seals w and swaps it in as the current version.
func (ix *Index) publishWorking(w *working, walSeq uint64) {
	ix.publish(w.seal(walSeq), w.freed, w.dirty)
}

// installBootstrap publishes the construction result as version 1 (no
// predecessor to retire).
func (ix *Index) installBootstrap(w *working, walSeq uint64) {
	ix.current.Store(w.seal(walSeq))
}

// Build constructs the PV-index for every object in db. The database is
// adopted as version 1's snapshot: subsequent ApplyBatch/Insert/Delete
// calls publish new versions with cloned bookkeeping, so read the current
// database through Index.DB() or View rather than the original pointer.
func Build(db *uncertain.DB, cfg Config) (*Index, error) {
	if cfg.Store == nil {
		cfg.Store = pagestore.New(pagestore.DefaultPageSize)
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 5 << 20
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = rtree.DefaultFanout
	}
	ix := &Index{store: cfg.Store, cfg: cfg}
	ix.initRuntime()

	start := time.Now()
	w, err := ix.bootstrapWorking(db)
	if err != nil {
		return nil, err
	}
	for _, o := range db.Objects() {
		ubr, st := core.ComputeUBR(db, w.regionTree, o, cfg.SE)
		ix.Build.SE.Add(st)
		ix.Build.CSetTime += st.CSetTime
		ix.Build.UBRTime += st.UBRTime
		ix.Build.CSetSizeSum += st.CSetSize
		t0 := time.Now()
		if err := w.addObject(o, ubr); err != nil {
			return nil, err
		}
		ix.Build.InsertTime += time.Since(t0)
		ix.Build.Objects++
	}
	w.adj, err = rebuildAdjacency(db, w.primary, w.lookupUBR)
	if err != nil {
		return nil, err
	}
	if err := ix.refineBootstrap(w); err != nil {
		return nil, err
	}
	ix.Build.Total = time.Since(start)
	ix.installBootstrap(w, 0)
	return ix, nil
}

// rebuildAdjacency materializes the UBR-adjacency graph from scratch: one
// row per object, listing every other object whose stored UBR intersects
// its own. Used at construction and as the load fallback for pre-adjacency
// snapshot formats; the write path never calls it (updateAdjacency patches
// rows incrementally). The octree range query finds every intersecting UBR
// because two intersecting UBRs share a point, hence a leaf cell, hence
// entries in a common leaf.
func rebuildAdjacency(db *uncertain.DB, primary *octree.Tree, lookup func(uint32) (geom.Rect, bool)) (*adjgraph.Graph, error) {
	objs := db.Objects()
	ubrs := make(map[uint32]geom.Rect, len(objs))
	for _, o := range objs {
		ubr, ok := lookup(uint32(o.ID))
		if !ok {
			return nil, fmt.Errorf("pvindex: object %d has no stored UBR during adjacency rebuild", o.ID)
		}
		ubrs[uint32(o.ID)] = ubr
	}
	g := adjgraph.New()
	for _, o := range objs {
		id := uint32(o.ID)
		ubr := ubrs[id]
		ids, err := primary.RangeIDs(ubr)
		if err != nil {
			return nil, err
		}
		ns := make([]uint32, 0, len(ids))
		for nid := range ids {
			if nid == id {
				continue
			}
			if nubr, ok := ubrs[nid]; ok && nubr.Intersects(ubr) {
				ns = append(ns, nid)
			}
		}
		// The row's diameter contribution is the uncertainty-region diagonal
		// (not the UBR's): the group-query slack bounds the gap between a
		// candidate's rectangle lower bound and its true pointwise minimum,
		// and that gap is Lipschitz-limited by the region's own extent.
		g.Set(id, ubr, geom.Dist(o.Region.Lo, o.Region.Hi), ns)
	}
	return g, nil
}

// adjMarkChanged flags id's adjacency row for recomputation at the end of
// the batch (its stored UBR was written by this working set). No-op during
// bootstrap, where the graph is rebuilt whole instead.
func (w *working) adjMarkChanged(id uint32) {
	if w.adjChanged == nil {
		return
	}
	delete(w.adjRemoved, id)
	w.adjChanged[id] = struct{}{}
}

// adjMarkRemoved flags id's adjacency row for deletion at the end of the
// batch.
func (w *working) adjMarkRemoved(id uint32) {
	if w.adjRemoved == nil {
		return
	}
	delete(w.adjChanged, id)
	w.adjRemoved[id] = struct{}{}
}

// updateAdjacency folds the batch's UBR changes into the working graph, in
// O(changed rows + their neighborhoods) — never a full rebuild. Removals
// unlink first; then each changed row is recomputed from the working octree
// (the same shared-leaf argument as rebuildAdjacency makes the range query
// complete), and the symmetric difference against its old row is patched
// into neighbors this batch did not itself recompute. Neighbors that are in
// adjChanged need no patch: both endpoints of an edge derive the same
// intersection verdict from their own recomputation.
func (w *working) updateAdjacency() error {
	if w.adjChanged == nil {
		return nil
	}
	var recomputed, patched, deleted int64
	for id := range w.adjRemoved {
		row, ok := w.adj.Get(id)
		if !ok {
			continue // inserted and deleted within this batch: never had a row
		}
		for _, n := range row.Neighbors {
			if _, gone := w.adjRemoved[n]; gone {
				continue
			}
			if _, changed := w.adjChanged[n]; changed {
				continue
			}
			if w.adj.RemoveNeighbor(n, id) {
				patched++
			}
		}
		w.adj.Delete(id)
		deleted++
	}
	for id := range w.adjChanged {
		ubr, ok := w.lookupUBR(id)
		if !ok {
			return fmt.Errorf("pvindex: changed object %d has no stored UBR during adjacency update", id)
		}
		ids, err := w.primary.RangeIDs(ubr)
		if err != nil {
			return err
		}
		ns := make([]uint32, 0, len(ids))
		for nid := range ids {
			if nid == id {
				continue
			}
			if _, gone := w.adjRemoved[nid]; gone {
				continue
			}
			nubr, ok := w.lookupUBR(nid)
			if !ok {
				continue
			}
			if nubr.Intersects(ubr) {
				ns = append(ns, nid)
			}
		}
		var oldNs []uint32
		if oldRow, had := w.adj.Get(id); had {
			oldNs = oldRow.Neighbors
		}
		var diam float64
		if o := w.db.Get(uncertain.ID(id)); o != nil {
			diam = geom.Dist(o.Region.Lo, o.Region.Hi)
		}
		w.adj.Set(id, ubr, diam, ns)
		recomputed++
		newRow, _ := w.adj.Get(id)
		newNs := newRow.Neighbors // ns, sorted by Set

		// Merge-walk the sorted old and new lists; patch the reverse links
		// of neighbors gained or lost, unless they recompute themselves.
		i, j := 0, 0
		for i < len(oldNs) || j < len(newNs) {
			switch {
			case j >= len(newNs) || (i < len(oldNs) && oldNs[i] < newNs[j]):
				n := oldNs[i]
				i++
				if _, changed := w.adjChanged[n]; changed {
					continue
				}
				if w.adj.RemoveNeighbor(n, id) {
					patched++
				}
			case i >= len(oldNs) || newNs[j] < oldNs[i]:
				n := newNs[j]
				j++
				if _, changed := w.adjChanged[n]; changed {
					continue
				}
				if w.adj.AddNeighbor(n, id) {
					patched++
				}
			default:
				i++
				j++
			}
		}
	}
	w.ix.adjRecomputed.Add(recomputed)
	w.ix.adjPatched.Add(patched)
	w.ix.adjDeleted.Add(deleted)
	return nil
}

// AdjacencyStats reports the adjacency graph's size and shape as of the
// current version plus the lifetime maintenance and refinement counters.
type AdjacencyStats struct {
	// Rows is the number of objects with an adjacency row (== Len()).
	Rows int
	// Edges is the number of directed neighbor links (twice the undirected
	// edge count).
	Edges int
	// RowsRecomputed counts rows rebuilt from the primary index by updates.
	RowsRecomputed int64
	// RowsPatched counts single-link reverse patches applied by updates.
	RowsPatched int64
	// RowsDeleted counts rows dropped by deletions.
	RowsDeleted int64

	// Degree distribution over the current rows — the hub shape the
	// refinement budget targets.
	DegreeP50 int
	DegreeP90 int
	DegreeMax int
	// Stored-UBR volume distribution over the current rows.
	UBRVolP50 float64
	UBRVolP90 float64
	UBRVolMax float64

	// Refinement lifetime counters (refine.go).
	RowsRefined       int64
	ClipPasses        int64
	RefineBudgetSpent int64
}

// Adjacency returns the adjacency graph's gauges, its degree and UBR-volume
// distributions, and the maintenance plus refinement counters. The
// distribution walk is O(rows) over the pinned version's immutable graph.
func (ix *Index) Adjacency() AdjacencyStats {
	v := ix.pin()
	defer ix.unpin(v)
	rc := ix.RefineCounters()
	st := AdjacencyStats{
		RowsRecomputed:    ix.adjRecomputed.Load(),
		RowsPatched:       ix.adjPatched.Load(),
		RowsDeleted:       ix.adjDeleted.Load(),
		RowsRefined:       rc.RowsRefined,
		ClipPasses:        rc.ClipPasses,
		RefineBudgetSpent: rc.BudgetSpent,
	}
	if v.adj == nil {
		return st
	}
	st.Rows = v.adj.Len()
	st.Edges = v.adj.Edges()
	if st.Rows == 0 {
		return st
	}
	degs := make([]int, 0, st.Rows)
	vols := make([]float64, 0, st.Rows)
	v.adj.ForEach(func(_ uint32, row *adjgraph.Row) bool {
		degs = append(degs, len(row.Neighbors))
		vols = append(vols, row.UBR.Volume())
		return true
	})
	sort.Ints(degs)
	sort.Float64s(vols)
	pct := func(n int, p float64) int { return int(p * float64(n-1)) }
	st.DegreeP50 = degs[pct(len(degs), 0.5)]
	st.DegreeP90 = degs[pct(len(degs), 0.9)]
	st.DegreeMax = degs[len(degs)-1]
	st.UBRVolP50 = vols[pct(len(vols), 0.5)]
	st.UBRVolP90 = vols[pct(len(vols), 0.9)]
	st.UBRVolMax = vols[len(vols)-1]
	return st
}

// getRecord is the writer's record read: it bypasses the cache for IDs this
// batch already rewrote (the cached copy describes the predecessor version)
// and otherwise serves and fills the shared cache at the base epoch.
func (w *working) getRecord(id uint32) (rec record, ok bool, err error) {
	dirty := false
	if w.dirty != nil {
		_, dirty = w.dirty[id]
	}
	if !dirty {
		if rec, ok := w.ix.rcache.get(id, w.baseEpoch); ok {
			return rec, true, nil
		}
	}
	// Borrow-then-decode: GetView lends page memory for single-page values
	// and decodeRecord copies every field out before the borrow ends.
	buf, found, err := w.secondary.GetView(id)
	if err != nil || !found {
		return record{}, false, err
	}
	rec, err = decodeRecord(buf)
	if err != nil {
		return record{}, false, err
	}
	if !dirty {
		w.ix.rcache.put(id, rec, w.baseEpoch)
	}
	return rec, true, nil
}

// putRecord writes o's record to the working secondary index and marks the
// ID dirty so the cache generation bumps at publish.
func (w *working) putRecord(id uint32, rec record) error {
	if err := w.secondary.Put(id, encodeRecord(rec)); err != nil {
		return err
	}
	w.markDirty(id)
	return nil
}

// markDirty records that id's stored bytes changed in this working set.
func (w *working) markDirty(id uint32) {
	if w.dirty != nil {
		w.dirty[id] = struct{}{}
	}
}

// lookupUBR serves octree leaf splits (and the update algorithms' affected-
// set filters) from the working secondary index.
func (w *working) lookupUBR(id uint32) (geom.Rect, bool) {
	rec, ok, err := w.getRecord(id)
	if err != nil || !ok {
		return geom.Rect{}, false
	}
	return rec.UBR, true
}

// addObject writes o's record to the secondary index and its entries to the
// primary index.
func (w *working) addObject(o *uncertain.Object, ubr geom.Rect) error {
	rec := record{UBR: ubr, Region: o.Region, Instances: o.Instances}
	if err := w.putRecord(uint32(o.ID), rec); err != nil {
		return err
	}
	return w.primary.Insert(uint32(o.ID), o.Region, ubr)
}

// getRecordAt is the reader's record fetch against a pinned version: cache
// first (validated against the version's epoch), then the version's
// secondary index, filling the cache tagged with the version's epoch. hit
// reports whether this call was a cache hit. The returned record's slices
// are shared with the cache — callers must treat them as immutable.
func (ix *Index) getRecordAt(v *version, id uint32) (rec record, ok bool, hit bool, err error) {
	if rec, ok := ix.rcache.get(id, v.epoch); ok {
		return rec, true, true, nil
	}
	// Borrow-then-decode under the version pin: the borrowed value stays
	// valid until the pin releases, and decodeRecord copies everything out
	// long before that.
	buf, found, err := v.secondary.GetView(id)
	if err != nil || !found {
		return record{}, false, false, err
	}
	rec, err = decodeRecord(buf)
	if err != nil {
		return record{}, false, false, err
	}
	ix.rcache.put(id, rec, v.epoch)
	return rec, true, false, nil
}

// RecordCacheStats reports the decoded-record cache's hit/miss counters and
// residency. Safe under concurrent traffic.
func (ix *Index) RecordCacheStats() RecordCacheStats { return ix.rcache.stats() }

// UBR returns the stored UBR of an object. Its coordinate slices may be
// shared with the record cache — treat the rectangle as immutable.
func (ix *Index) UBR(id uncertain.ID) (geom.Rect, bool) {
	v := ix.pin()
	defer ix.unpin(v)
	rec, ok, _, err := ix.getRecordAt(v, uint32(id))
	if err != nil || !ok {
		return geom.Rect{}, false
	}
	return rec.UBR, true
}

// Store exposes the underlying page store (for I/O accounting).
func (ix *Index) Store() *pagestore.Store { return ix.store }

// PrimaryStats reports the octree's shape as of the current version.
func (ix *Index) PrimaryStats() octree.Stats {
	v := ix.pin()
	defer ix.unpin(v)
	return v.primary.TreeStats()
}

// DB returns the current version's database. It is immutable — writers
// publish new versions instead of mutating it — so reading it is safe, but
// the pointer changes with every applied batch; pin a version (Pin, View)
// when multiple reads must agree.
func (ix *Index) DB() *uncertain.DB { return ix.current.Load().db }

// View runs fn over a pinned version's database — a consistent snapshot
// that no concurrent writer can change, acquired without any lock.
func (ix *Index) View(fn func(db *uncertain.DB) error) error {
	v := ix.pin()
	defer ix.unpin(v)
	return fn(v.db)
}

// Candidate is a PNNQ Step-1 survivor: an object with non-zero probability
// of being the query's nearest neighbor.
type Candidate struct {
	ID      uncertain.ID
	Region  geom.Rect
	MinDist float64
	MaxDist float64
}

// PossibleNN evaluates PNNQ Step 1: it walks the primary index to the leaf
// containing q and prunes the leaf's candidate list by min/max distance.
// The result is exactly the set of objects whose PV-cells contain q.
func (ix *Index) PossibleNN(q geom.Point) ([]Candidate, error) {
	v := ix.pin()
	defer ix.unpin(v)
	cands, _, err := ix.possibleNNAt(v, q)
	return cands, err
}

// PossibleNNIO is PossibleNN plus the number of primary-index leaf pages
// read — the exact per-query leaf I/O, attributable to this call even under
// concurrent traffic.
func (ix *Index) PossibleNNIO(q geom.Point) ([]Candidate, int, error) {
	v := ix.pin()
	defer ix.unpin(v)
	return ix.possibleNNAt(v, q)
}

// possibleNNAt is PossibleNN against a pinned version, returning the leaf
// pages read. All intermediate state — decoded leaf entries, the dedup set,
// the pre-filter candidate list — lives in a pooled scratch; only the
// surviving candidates are materialized, with their regions deep-copied
// into a single backing array so the result owns no pooled memory.
func (ix *Index) possibleNNAt(v *version, q geom.Point) ([]Candidate, int, error) {
	sc := ix.scratch.Get().(*queryScratch)
	defer ix.scratch.Put(sc)

	entries, leafIO, err := v.primary.PointQueryInto(q, sc.entries[:0])
	sc.entries = entries
	if err != nil || len(entries) == 0 {
		return nil, leafIO, err
	}
	// Deduplicate (an object appears once per overlapping leaf page set —
	// the point query hits one leaf, but defensive against double inserts).
	clear(sc.seen)
	cands := sc.cands[:0]
	bestMax := -1.0
	for i := range entries {
		e := &entries[i]
		if _, dup := sc.seen[e.ID]; dup {
			continue
		}
		sc.seen[e.ID] = struct{}{}
		c := Candidate{
			ID:      uncertain.ID(e.ID),
			Region:  e.Region,
			MinDist: e.Region.MinDist(q),
			MaxDist: e.Region.MaxDist(q),
		}
		if bestMax < 0 || c.MaxDist < bestMax {
			bestMax = c.MaxDist
		}
		cands = append(cands, c)
	}
	kept := 0
	for i := range cands {
		if cands[i].MinDist <= bestMax {
			cands[kept] = cands[i]
			kept++
		}
	}
	survivors := cands[:kept]
	sc.cands = cands
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].ID < survivors[j].ID })
	if kept == 0 {
		return nil, leafIO, nil
	}

	// Materialize: the survivors' regions still alias pooled octree entry
	// memory; copy them out with one coordinate backing array.
	dim := len(q)
	out := make([]Candidate, kept)
	coords := make([]float64, 2*dim*kept)
	for i := range survivors {
		out[i] = survivors[i]
		lo := geom.Point(coords[:dim:dim])
		coords = coords[dim:]
		hi := geom.Point(coords[:dim:dim])
		coords = coords[dim:]
		copy(lo, survivors[i].Region.Lo)
		copy(hi, survivors[i].Region.Hi)
		out[i].Region = geom.Rect{Lo: lo, Hi: hi}
	}
	return out, leafIO, nil
}

// Instances fetches the stored pdf instances for an object from the
// secondary index (PNNQ Step 2's data access). The returned slice may be
// shared with the record cache and other concurrent readers — treat it as
// immutable.
func (ix *Index) Instances(id uncertain.ID) ([]uncertain.Instance, error) {
	v := ix.pin()
	defer ix.unpin(v)
	return ix.instancesAt(v, id)
}

// instancesAt is Instances against a pinned version.
func (ix *Index) instancesAt(v *version, id uncertain.ID) ([]uncertain.Instance, error) {
	rec, ok, _, err := ix.getRecordAt(v, uint32(id))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("pvindex: object %d not in secondary index", id)
	}
	return rec.Instances, nil
}

// QuerySnapshot is an atomic PNNQ read: the Step-1 candidate set, each
// candidate's stored pdf instances (parallel slice), and the number of
// primary-index leaf pages read — all fetched from one pinned version so a
// concurrent writer can never remove a candidate between Step 1 and the
// Step-2 data access.
type QuerySnapshot struct {
	Candidates []Candidate
	Instances  [][]uncertain.Instance
	LeafIO     int
	// CacheHits/CacheMisses count this query's record-cache outcomes during
	// the Step-2 data fetch (one lookup per candidate).
	CacheHits   int
	CacheMisses int
}

// Snapshot evaluates Step 1 and fetches every candidate's instances against
// one pinned version. Full-query callers (Step 2 probability computation)
// run on the snapshot afterwards; writers are never blocked.
func (ix *Index) Snapshot(q geom.Point) (*QuerySnapshot, error) {
	v := ix.pin()
	defer ix.unpin(v)
	cands, leafIO, err := ix.possibleNNAt(v, q)
	if err != nil {
		return nil, err
	}
	snap := &QuerySnapshot{
		Candidates: cands,
		Instances:  make([][]uncertain.Instance, len(cands)),
		LeafIO:     leafIO,
	}
	for i, c := range cands {
		rec, ok, hit, err := ix.getRecordAt(v, uint32(c.ID))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("pvindex: object %d not in secondary index", c.ID)
		}
		if hit {
			snap.CacheHits++
		} else {
			snap.CacheMisses++
		}
		snap.Instances[i] = rec.Instances
	}
	return snap, nil
}

// UpdateStats reports the cost of one incremental maintenance operation.
type UpdateStats struct {
	Affected  int           // objects whose UBRs were recomputed
	Examined  int           // objects touched by the range filter
	SETime    time.Duration // UBR recomputation time
	IndexTime time.Duration // primary/secondary maintenance time
	TotalTime time.Duration
	// SE aggregates the Shrink-and-Expand cost of every UBR computed by the
	// operation: the newcomer's (insert) plus all affected recomputations.
	// The flat counters cover the base SE pass only; SE.Refine isolates the
	// budget-aware refinement work, which is batch-scoped and attributed to
	// the batch's first op.
	SE core.Stats
}

// Insert adds object o to the database and incrementally refreshes the
// index (§VI-B, insertion). It is a one-op batch: validation, WAL logging
// (when attached) and application all run through ApplyBatch.
func (ix *Index) Insert(o *uncertain.Object) (UpdateStats, error) {
	sts, err := ix.ApplyBatch([]Update{{Op: OpInsert, Object: o}})
	if len(sts) == 1 {
		return sts[0], err
	}
	return UpdateStats{}, err
}

// applyInsert performs the incremental insertion of §VI-B against the
// writer's working version. The newcomer's UBR comes from the staged
// precomputation when mode allows (staged may be nil, forcing seCold — the
// replay path). The returned rectangle is the newcomer's applied UBR (its
// impact region for later batch ops).
func (w *working) applyInsert(o *uncertain.Object, staged *stagedSE, mode seMode) (UpdateStats, geom.Rect, error) {
	var st UpdateStats
	start := time.Now()
	defer func() { st.TotalTime = time.Since(start) }()
	cfg := w.ix.cfg

	if err := w.db.Add(o); err != nil {
		return st, geom.Rect{}, err
	}
	w.regionTree.Insert(rtree.Item{Rect: o.Region, ID: uint32(o.ID)})

	// Step 1: UBR of the newcomer over the updated database. The PV-cells
	// of affected objects can only shrink (Lemma 9), so their UBRs are
	// recomputed warm-started from the old UBR as the upper bound.
	var newB geom.Rect
	if staged == nil {
		mode = seCold
	}
	switch mode {
	case seUseStaged:
		// Nothing relevant changed since staging: the precomputed UBR is
		// exactly what SE would produce now, at zero additional cost.
		newB = staged.ubr
		st.SETime += staged.dur
		st.SE.Add(staged.stats)
	case seWarmStart:
		// Earlier inserts in the batch intersect the staged bound; the cell
		// can only have shrunk, so refine from the staged UBR (Lemma 9).
		st.SETime += staged.dur
		st.SE.Add(staged.stats)
		t0 := time.Now()
		var seStats core.Stats
		newB, seStats = core.ComputeUBRAfterInsert(w.db, w.regionTree, o, staged.ubr, cfg.SE)
		st.SETime += time.Since(t0)
		st.SE.Add(seStats)
	default: // seCold
		t0 := time.Now()
		var seStats core.Stats
		newB, seStats = core.ComputeUBR(w.db, w.regionTree, o, cfg.SE)
		st.SETime += time.Since(t0)
		st.SE.Add(seStats)
	}

	// Step 2: candidate affected set from the primary index.
	ids, err := w.primary.RangeIDs(newB)
	if err != nil {
		return st, geom.Rect{}, err
	}
	st.Examined = len(ids)

	for id := range ids {
		oid := uncertain.ID(id)
		if oid == o.ID {
			continue
		}
		other := w.db.Get(oid)
		if other == nil {
			continue
		}
		// Lemma 8(3): objects whose regions overlap u(o') are unaffected.
		if other.Region.Intersects(o.Region) {
			continue
		}
		oldB, ok := w.lookupUBR(id)
		if !ok {
			continue
		}
		// Lemma 8(2) via UBRs: disjoint bounding rectangles imply disjoint
		// PV-cells, hence unaffected.
		if !oldB.Intersects(newB) {
			continue
		}
		st.Affected++

		// Step 3: warm-started SE (h = old UBR).
		t1 := time.Now()
		updated, seAffected := core.ComputeUBRAfterInsert(w.db, w.regionTree, other, oldB, cfg.SE)
		st.SETime += time.Since(t1)
		st.SE.Add(seAffected)

		// Step 4: drop entries from leaves no longer covered, refresh record.
		t2 := time.Now()
		if _, err := w.primary.RemoveDiff(id, oldB, updated); err != nil {
			return st, geom.Rect{}, err
		}
		rec := record{UBR: updated, Region: other.Region, Instances: other.Instances}
		if err := w.putRecord(id, rec); err != nil {
			return st, geom.Rect{}, err
		}
		w.adjMarkChanged(id)
		st.IndexTime += time.Since(t2)
	}

	t3 := time.Now()
	err = w.addObject(o, newB)
	w.adjMarkChanged(uint32(o.ID))
	st.IndexTime += time.Since(t3)
	return st, newB, err
}

// Delete removes the object with the given ID from the database and
// incrementally refreshes the index (§VI-B, deletion). It is a one-op
// batch: validation, WAL logging (when attached) and application all run
// through ApplyBatch.
func (ix *Index) Delete(id uncertain.ID) (UpdateStats, error) {
	sts, err := ix.ApplyBatch([]Update{{Op: OpDelete, ID: id}})
	if len(sts) == 1 {
		return sts[0], err
	}
	return UpdateStats{}, err
}

// applyDelete performs the incremental deletion of §VI-B against the
// writer's working version. Affected PV-cells can only grow, so UBRs are
// recomputed warm-started from the old UBR as the lower bound and entries
// are added to newly covered leaves. The returned rectangle is the victim's
// stored UBR (its impact region for later batch ops).
func (w *working) applyDelete(id uncertain.ID) (UpdateStats, geom.Rect, error) {
	var st UpdateStats
	start := time.Now()
	defer func() { st.TotalTime = time.Since(start) }()
	cfg := w.ix.cfg

	victim := w.db.Get(id)
	if victim == nil {
		return st, geom.Rect{}, fmt.Errorf("pvindex: delete of object %d: %w", id, uncertain.ErrUnknownID)
	}
	victimUBR, ok := w.lookupUBR(uint32(id))
	if !ok {
		return st, geom.Rect{}, fmt.Errorf("pvindex: object %d missing from secondary index", id)
	}

	if _, err := w.db.Remove(id); err != nil {
		return st, geom.Rect{}, err
	}
	w.regionTree.Delete(rtree.Item{Rect: victim.Region, ID: uint32(id)})

	// Step 2: candidate affected set.
	ids, err := w.primary.RangeIDs(victimUBR)
	if err != nil {
		return st, geom.Rect{}, err
	}
	st.Examined = len(ids)

	// Step 4a: remove the victim's entries and record first, so warm-started
	// SE and leaf splits see the post-delete state.
	t0 := time.Now()
	if _, err := w.primary.Remove(uint32(id), victimUBR); err != nil {
		return st, geom.Rect{}, err
	}
	if _, err := w.secondary.Delete(uint32(id)); err != nil {
		return st, geom.Rect{}, err
	}
	w.markDirty(uint32(id))
	w.adjMarkRemoved(uint32(id))
	st.IndexTime += time.Since(t0)

	for otherID := range ids {
		oid := uncertain.ID(otherID)
		if oid == id {
			continue
		}
		other := w.db.Get(oid)
		if other == nil {
			continue
		}
		// Lemma 8(3): overlap with the victim means unaffected.
		if other.Region.Intersects(victim.Region) {
			continue
		}
		oldB, ok := w.lookupUBR(otherID)
		if !ok {
			continue
		}
		// Lemma 8(1) via UBRs.
		if !oldB.Intersects(victimUBR) {
			continue
		}
		st.Affected++

		// Step 3: warm-started SE (l = old UBR).
		t1 := time.Now()
		updated, seAffected := core.ComputeUBRAfterDelete(w.db, w.regionTree, other, oldB, cfg.SE)
		st.SETime += time.Since(t1)
		st.SE.Add(seAffected)

		// Step 4b: extend coverage to newly reached leaves (N′−N).
		t2 := time.Now()
		rec := record{UBR: updated, Region: other.Region, Instances: other.Instances}
		if err := w.putRecord(otherID, rec); err != nil {
			return st, geom.Rect{}, err
		}
		if err := w.primary.InsertDiff(otherID, other.Region, updated, oldB); err != nil {
			return st, geom.Rect{}, err
		}
		w.adjMarkChanged(otherID)
		st.IndexTime += time.Since(t2)
	}
	return st, victimUBR, nil
}
