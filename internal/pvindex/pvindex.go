// Package pvindex assembles the paper's PV-index (§VI): UBRs computed by the
// SE algorithm, organized in an octree primary index for point-query pruning
// and an extendible-hash secondary index holding each object's UBR and
// discretized pdf. It implements PNNQ Step 1 (retrieval of objects with
// non-zero qualification probability) and the incremental insert/delete
// maintenance of §VI-B.
package pvindex

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pvoronoi/internal/core"
	"pvoronoi/internal/exthash"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/octree"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
	"pvoronoi/internal/wal"
)

// Config bundles the index's resource parameters (Table I defaults).
type Config struct {
	// Store is the simulated disk; a fresh 4 KB-page store if nil.
	Store *pagestore.Store
	// MemBudget is the primary index's non-leaf memory allowance
	// (paper default 5 MB).
	MemBudget int
	// Fanout of the helper R*-tree used during construction.
	Fanout int
	// SE are the Shrink-and-Expand parameters.
	SE core.Options
	// RecordCacheSize bounds the decoded-record cache in entries
	// (0 = DefaultRecordCacheSize, negative = cache disabled).
	RecordCacheSize int
	// WAL, when non-nil, is the write-ahead log every update batch is
	// appended to (and fsynced) before it applies — the durable write path.
	// Equivalent to calling AttachWAL after construction.
	WAL *wal.Log
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{MemBudget: 5 << 20, Fanout: rtree.DefaultFanout, SE: core.DefaultOptions()}
}

// BuildStats aggregates construction cost, feeding Figs. 10(b)–10(f).
type BuildStats struct {
	Objects     int
	Total       time.Duration
	CSetTime    time.Duration // chooseCSet portion of SE
	UBRTime     time.Duration // shrink/expand portion of SE
	InsertTime  time.Duration // primary+secondary insertion portion
	CSetSizeSum int           // divide by Objects for the average
	SE          core.Stats
}

// Index is a built PV-index over a database. It is safe for concurrent use:
// queries (PossibleNN, Instances, UBR, Snapshot reads) share a read lock and
// run in parallel; Insert and Delete take the write lock and serialize
// against everything else. The octree, hash table, region tree and database
// are all guarded by this one lock — they are never safe to mutate
// concurrently on their own.
type Index struct {
	mu         sync.RWMutex
	db         *uncertain.DB
	store      *pagestore.Store
	primary    *octree.Tree
	secondary  *exthash.Table
	regionTree *rtree.Tree
	cfg        Config

	// writerMu serializes whole update batches (stage + log + apply), so a
	// batch's staged SE work and its WAL order can never interleave with
	// another writer's. Acquired before mu; queries never touch it.
	writerMu sync.Mutex
	// wal, when attached, receives every update batch before it applies.
	wal *wal.Log
	// walSeq is the sequence number of the last applied WAL record (0 when
	// none). Guarded by mu; persisted in snapshots so recovery knows where
	// replay starts.
	walSeq uint64
	// batchDirty, non-nil only while a batch applies under the write lock,
	// collects the IDs of mutated records for the batch's single coalesced
	// cache-invalidation pass; getRecord bypasses the cache for IDs in it.
	batchDirty map[uint32]struct{}
	// damaged is set when a batch failed mid-apply: the index is then in a
	// half-applied state, so further writes and — critically — snapshots
	// are refused. A snapshot of a damaged index stamped with the batch's
	// WAL sequence would persist the corruption and cut off the WAL replay
	// that could still heal it. Guarded by mu.
	damaged error

	// rcache holds decoded secondary-index records; writers invalidate
	// touched IDs under the write lock (see recordcache.go).
	rcache *recordCache
	// scratch pools per-query working memory for the Step-1 hot loop.
	scratch sync.Pool

	// Build records the construction cost profile.
	Build BuildStats
}

// queryScratch is the reusable working set of one possibleNN evaluation:
// the decoded leaf entries, the pre-filter candidate list, and the dedup
// set. Pooled so the Step-1 hot loop allocates only its returned survivors.
type queryScratch struct {
	entries []octree.Entry
	cands   []Candidate
	seen    map[uint32]struct{}
}

// initRuntime wires the non-persisted runtime state (record cache, scratch
// pool, WAL attachment). Every Index constructor — Build, BuildParallel,
// LoadFrom — calls it before the index is shared.
func (ix *Index) initRuntime() {
	ix.rcache = newRecordCache(ix.cfg.RecordCacheSize)
	ix.wal = ix.cfg.WAL
	ix.scratch.New = func() any {
		return &queryScratch{seen: make(map[uint32]struct{}, 64)}
	}
}

// Build constructs the PV-index for every object in db. The database is
// referenced, not copied: subsequent Insert/Delete calls on the index keep
// db and the index in sync.
func Build(db *uncertain.DB, cfg Config) (*Index, error) {
	if cfg.Store == nil {
		cfg.Store = pagestore.New(pagestore.DefaultPageSize)
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 5 << 20
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = rtree.DefaultFanout
	}
	ix := &Index{db: db, store: cfg.Store, cfg: cfg}
	ix.initRuntime()

	start := time.Now()
	var err error
	ix.secondary, err = exthash.New(cfg.Store)
	if err != nil {
		return nil, err
	}
	ix.primary, err = octree.New(octree.Config{
		Domain:    db.Domain,
		Store:     cfg.Store,
		Lookup:    ix.lookupUBR,
		MemBudget: cfg.MemBudget,
	})
	if err != nil {
		return nil, err
	}
	ix.regionTree = core.BuildRegionTree(db, cfg.Fanout)

	for _, o := range db.Objects() {
		ubr, st := core.ComputeUBR(db, ix.regionTree, o, cfg.SE)
		ix.Build.SE.Add(st)
		ix.Build.CSetTime += st.CSetTime
		ix.Build.UBRTime += st.UBRTime
		ix.Build.CSetSizeSum += st.CSetSize
		t0 := time.Now()
		if err := ix.addObject(o, ubr); err != nil {
			return nil, err
		}
		ix.Build.InsertTime += time.Since(t0)
		ix.Build.Objects++
	}
	ix.Build.Total = time.Since(start)
	return ix, nil
}

// getRecord returns the decoded record for id, serving from the record
// cache when possible and filling it on a miss. hit reports whether this
// call was a cache hit. The returned record's slices are shared with the
// cache — callers must treat them as immutable. Callers hold ix.mu (either
// mode; read-lock holders never race invalidation, which needs the write
// lock).
func (ix *Index) getRecord(id uint32) (rec record, ok bool, hit bool, err error) {
	if _, dirty := ix.batchDirty[id]; dirty {
		// Mid-batch read of a record this batch already rewrote: its cached
		// copy is stale until the batch's coalesced invalidation pass runs,
		// so bypass the cache entirely (no fill either — the entry would be
		// invalidated moments later anyway).
		buf, found, err := ix.secondary.Get(id)
		if err != nil || !found {
			return record{}, false, false, err
		}
		rec, err = decodeRecord(buf)
		if err != nil {
			return record{}, false, false, err
		}
		return rec, true, false, nil
	}
	if rec, ok := ix.rcache.get(id); ok {
		return rec, true, true, nil
	}
	buf, found, err := ix.secondary.Get(id)
	if err != nil || !found {
		return record{}, false, false, err
	}
	rec, err = decodeRecord(buf)
	if err != nil {
		return record{}, false, false, err
	}
	ix.rcache.put(id, rec)
	return rec, true, false, nil
}

// putRecord writes o's record to the secondary index and invalidates any
// cached copy — the write-invalidation half of the cache's contract.
// Callers hold ix.mu exclusively.
func (ix *Index) putRecord(id uint32, rec record) error {
	if err := ix.secondary.Put(id, encodeRecord(rec)); err != nil {
		return err
	}
	ix.noteRecordMutation(id)
	return nil
}

// noteRecordMutation keeps the record cache coherent after id's stored
// record changed: immediately invalidated outside a batch, deferred into
// the batch's coalesced invalidation pass inside one. Callers hold ix.mu
// exclusively.
func (ix *Index) noteRecordMutation(id uint32) {
	if ix.batchDirty != nil {
		ix.batchDirty[id] = struct{}{}
		return
	}
	ix.rcache.invalidate(id)
}

// lookupUBR serves octree leaf splits from the secondary index (via the
// record cache).
func (ix *Index) lookupUBR(id uint32) (geom.Rect, bool) {
	rec, ok, _, err := ix.getRecord(id)
	if err != nil || !ok {
		return geom.Rect{}, false
	}
	return rec.UBR, true
}

// RecordCacheStats reports the decoded-record cache's hit/miss counters and
// residency. Safe under concurrent traffic.
func (ix *Index) RecordCacheStats() RecordCacheStats { return ix.rcache.stats() }

// addObject writes o's record to the secondary index and its entries to the
// primary index.
func (ix *Index) addObject(o *uncertain.Object, ubr geom.Rect) error {
	rec := record{UBR: ubr, Region: o.Region, Instances: o.Instances}
	if err := ix.putRecord(uint32(o.ID), rec); err != nil {
		return err
	}
	return ix.primary.Insert(uint32(o.ID), o.Region, ubr)
}

// UBR returns the stored UBR of an object. Its coordinate slices may be
// shared with the record cache — treat the rectangle as immutable.
func (ix *Index) UBR(id uncertain.ID) (geom.Rect, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.lookupUBR(uint32(id))
}

// Store exposes the underlying page store (for I/O accounting).
func (ix *Index) Store() *pagestore.Store { return ix.store }

// PrimaryStats reports the octree's shape.
func (ix *Index) PrimaryStats() octree.Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.primary.TreeStats()
}

// DB returns the indexed database. The pointer itself is stable; reading
// through it while writers run requires View.
func (ix *Index) DB() *uncertain.DB { return ix.db }

// View runs fn under the index's read lock, giving it a consistent view of
// the database while Insert/Delete writers are excluded. Queries that walk
// the raw database (the extension queries of extquery) go through here.
func (ix *Index) View(fn func(db *uncertain.DB) error) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return fn(ix.db)
}

// Candidate is a PNNQ Step-1 survivor: an object with non-zero probability
// of being the query's nearest neighbor.
type Candidate struct {
	ID      uncertain.ID
	Region  geom.Rect
	MinDist float64
	MaxDist float64
}

// PossibleNN evaluates PNNQ Step 1: it walks the primary index to the leaf
// containing q and prunes the leaf's candidate list by min/max distance.
// The result is exactly the set of objects whose PV-cells contain q.
func (ix *Index) PossibleNN(q geom.Point) ([]Candidate, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	cands, _, err := ix.possibleNN(q)
	return cands, err
}

// PossibleNNIO is PossibleNN plus the number of primary-index leaf pages
// read — the exact per-query leaf I/O, attributable to this call even under
// concurrent traffic.
func (ix *Index) PossibleNNIO(q geom.Point) ([]Candidate, int, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.possibleNN(q)
}

// possibleNN is PossibleNN without locking, returning the leaf pages read.
// Callers hold ix.mu (either mode). All intermediate state — decoded leaf
// entries, the dedup set, the pre-filter candidate list — lives in a pooled
// scratch; only the surviving candidates are materialized, with their
// regions deep-copied into a single backing array so the result owns no
// pooled memory.
func (ix *Index) possibleNN(q geom.Point) ([]Candidate, int, error) {
	sc := ix.scratch.Get().(*queryScratch)
	defer ix.scratch.Put(sc)

	entries, leafIO, err := ix.primary.PointQueryInto(q, sc.entries[:0])
	sc.entries = entries
	if err != nil || len(entries) == 0 {
		return nil, leafIO, err
	}
	// Deduplicate (an object appears once per overlapping leaf page set —
	// the point query hits one leaf, but defensive against double inserts).
	clear(sc.seen)
	cands := sc.cands[:0]
	bestMax := -1.0
	for i := range entries {
		e := &entries[i]
		if _, dup := sc.seen[e.ID]; dup {
			continue
		}
		sc.seen[e.ID] = struct{}{}
		c := Candidate{
			ID:      uncertain.ID(e.ID),
			Region:  e.Region,
			MinDist: e.Region.MinDist(q),
			MaxDist: e.Region.MaxDist(q),
		}
		if bestMax < 0 || c.MaxDist < bestMax {
			bestMax = c.MaxDist
		}
		cands = append(cands, c)
	}
	kept := 0
	for i := range cands {
		if cands[i].MinDist <= bestMax {
			cands[kept] = cands[i]
			kept++
		}
	}
	survivors := cands[:kept]
	sc.cands = cands
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].ID < survivors[j].ID })
	if kept == 0 {
		return nil, leafIO, nil
	}

	// Materialize: the survivors' regions still alias pooled octree entry
	// memory; copy them out with one coordinate backing array.
	dim := len(q)
	out := make([]Candidate, kept)
	coords := make([]float64, 2*dim*kept)
	for i := range survivors {
		out[i] = survivors[i]
		lo := geom.Point(coords[:dim:dim])
		coords = coords[dim:]
		hi := geom.Point(coords[:dim:dim])
		coords = coords[dim:]
		copy(lo, survivors[i].Region.Lo)
		copy(hi, survivors[i].Region.Hi)
		out[i].Region = geom.Rect{Lo: lo, Hi: hi}
	}
	return out, leafIO, nil
}

// Instances fetches the stored pdf instances for an object from the
// secondary index (PNNQ Step 2's data access). The returned slice may be
// shared with the record cache and other concurrent readers — treat it as
// immutable.
func (ix *Index) Instances(id uncertain.ID) ([]uncertain.Instance, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.instances(id)
}

// instances is Instances without locking. Callers hold ix.mu (either mode).
func (ix *Index) instances(id uncertain.ID) ([]uncertain.Instance, error) {
	rec, ok, _, err := ix.getRecord(uint32(id))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("pvindex: object %d not in secondary index", id)
	}
	return rec.Instances, nil
}

// QuerySnapshot is an atomic PNNQ read: the Step-1 candidate set, each
// candidate's stored pdf instances (parallel slice), and the number of
// primary-index leaf pages read — all fetched under one read lock so a
// concurrent writer can never remove a candidate between Step 1 and the
// Step-2 data access.
type QuerySnapshot struct {
	Candidates []Candidate
	Instances  [][]uncertain.Instance
	LeafIO     int
	// CacheHits/CacheMisses count this query's record-cache outcomes during
	// the Step-2 data fetch (one lookup per candidate).
	CacheHits   int
	CacheMisses int
}

// Snapshot evaluates Step 1 and fetches every candidate's instances in one
// critical section. Full-query callers (Step 2 probability computation) run
// on the snapshot outside the lock.
func (ix *Index) Snapshot(q geom.Point) (*QuerySnapshot, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	cands, leafIO, err := ix.possibleNN(q)
	if err != nil {
		return nil, err
	}
	snap := &QuerySnapshot{
		Candidates: cands,
		Instances:  make([][]uncertain.Instance, len(cands)),
		LeafIO:     leafIO,
	}
	for i, c := range cands {
		rec, ok, hit, err := ix.getRecord(uint32(c.ID))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("pvindex: object %d not in secondary index", c.ID)
		}
		if hit {
			snap.CacheHits++
		} else {
			snap.CacheMisses++
		}
		snap.Instances[i] = rec.Instances
	}
	return snap, nil
}

// UpdateStats reports the cost of one incremental maintenance operation.
type UpdateStats struct {
	Affected  int           // objects whose UBRs were recomputed
	Examined  int           // objects touched by the range filter
	SETime    time.Duration // UBR recomputation time
	IndexTime time.Duration // primary/secondary maintenance time
	TotalTime time.Duration
	// SE aggregates the Shrink-and-Expand cost of every UBR computed by the
	// operation: the newcomer's (insert) plus all affected recomputations.
	SE core.Stats
}

// Insert adds object o to the database and incrementally refreshes the
// index (§VI-B, insertion). It is a one-op batch: validation, WAL logging
// (when attached) and application all run through ApplyBatch.
func (ix *Index) Insert(o *uncertain.Object) (UpdateStats, error) {
	sts, err := ix.ApplyBatch([]Update{{Op: OpInsert, Object: o}})
	if len(sts) == 1 {
		return sts[0], err
	}
	return UpdateStats{}, err
}

// applyInsertLocked performs the incremental insertion of §VI-B. The
// newcomer's UBR comes from the staged precomputation when mode allows
// (staged may be nil, forcing seCold — the replay path). Callers hold
// ix.mu exclusively; the returned rectangle is the newcomer's applied UBR
// (its impact region for later batch ops).
func (ix *Index) applyInsertLocked(o *uncertain.Object, staged *stagedSE, mode seMode) (UpdateStats, geom.Rect, error) {
	var st UpdateStats
	start := time.Now()
	defer func() { st.TotalTime = time.Since(start) }()

	if err := ix.db.Add(o); err != nil {
		return st, geom.Rect{}, err
	}
	ix.regionTree.Insert(rtree.Item{Rect: o.Region, ID: uint32(o.ID)})

	// Step 1: UBR of the newcomer over the updated database. The PV-cells
	// of affected objects can only shrink (Lemma 9), so their UBRs are
	// recomputed warm-started from the old UBR as the upper bound.
	var newB geom.Rect
	if staged == nil {
		mode = seCold
	}
	switch mode {
	case seUseStaged:
		// Nothing relevant changed since staging: the precomputed UBR is
		// exactly what SE would produce now, at zero in-lock cost.
		newB = staged.ubr
		st.SETime += staged.dur
		st.SE.Add(staged.stats)
	case seWarmStart:
		// Earlier inserts in the batch intersect the staged bound; the cell
		// can only have shrunk, so refine from the staged UBR (Lemma 9).
		st.SETime += staged.dur
		st.SE.Add(staged.stats)
		t0 := time.Now()
		var seStats core.Stats
		newB, seStats = core.ComputeUBRAfterInsert(ix.db, ix.regionTree, o, staged.ubr, ix.cfg.SE)
		st.SETime += time.Since(t0)
		st.SE.Add(seStats)
	default: // seCold
		t0 := time.Now()
		var seStats core.Stats
		newB, seStats = core.ComputeUBR(ix.db, ix.regionTree, o, ix.cfg.SE)
		st.SETime += time.Since(t0)
		st.SE.Add(seStats)
	}

	// Step 2: candidate affected set from the primary index.
	ids, err := ix.primary.RangeIDs(newB)
	if err != nil {
		return st, geom.Rect{}, err
	}
	st.Examined = len(ids)

	for id := range ids {
		oid := uncertain.ID(id)
		if oid == o.ID {
			continue
		}
		other := ix.db.Get(oid)
		if other == nil {
			continue
		}
		// Lemma 8(3): objects whose regions overlap u(o') are unaffected.
		if other.Region.Intersects(o.Region) {
			continue
		}
		oldB, ok := ix.lookupUBR(id)
		if !ok {
			continue
		}
		// Lemma 8(2) via UBRs: disjoint bounding rectangles imply disjoint
		// PV-cells, hence unaffected.
		if !oldB.Intersects(newB) {
			continue
		}
		st.Affected++

		// Step 3: warm-started SE (h = old UBR).
		t1 := time.Now()
		updated, seAffected := core.ComputeUBRAfterInsert(ix.db, ix.regionTree, other, oldB, ix.cfg.SE)
		st.SETime += time.Since(t1)
		st.SE.Add(seAffected)

		// Step 4: drop entries from leaves no longer covered, refresh record.
		t2 := time.Now()
		if _, err := ix.primary.RemoveDiff(id, oldB, updated); err != nil {
			return st, geom.Rect{}, err
		}
		rec := record{UBR: updated, Region: other.Region, Instances: other.Instances}
		if err := ix.putRecord(id, rec); err != nil {
			return st, geom.Rect{}, err
		}
		st.IndexTime += time.Since(t2)
	}

	t3 := time.Now()
	err = ix.addObject(o, newB)
	st.IndexTime += time.Since(t3)
	return st, newB, err
}

// Delete removes the object with the given ID from the database and
// incrementally refreshes the index (§VI-B, deletion). It is a one-op
// batch: validation, WAL logging (when attached) and application all run
// through ApplyBatch.
func (ix *Index) Delete(id uncertain.ID) (UpdateStats, error) {
	sts, err := ix.ApplyBatch([]Update{{Op: OpDelete, ID: id}})
	if len(sts) == 1 {
		return sts[0], err
	}
	return UpdateStats{}, err
}

// applyDeleteLocked performs the incremental deletion of §VI-B. Affected
// PV-cells can only grow, so UBRs are recomputed warm-started from the old
// UBR as the lower bound and entries are added to newly covered leaves.
// Callers hold ix.mu exclusively; the returned rectangle is the victim's
// stored UBR (its impact region for later batch ops).
func (ix *Index) applyDeleteLocked(id uncertain.ID) (UpdateStats, geom.Rect, error) {
	var st UpdateStats
	start := time.Now()
	defer func() { st.TotalTime = time.Since(start) }()

	victim := ix.db.Get(id)
	if victim == nil {
		return st, geom.Rect{}, fmt.Errorf("pvindex: delete of object %d: %w", id, uncertain.ErrUnknownID)
	}
	victimUBR, ok := ix.lookupUBR(uint32(id))
	if !ok {
		return st, geom.Rect{}, fmt.Errorf("pvindex: object %d missing from secondary index", id)
	}

	if _, err := ix.db.Remove(id); err != nil {
		return st, geom.Rect{}, err
	}
	ix.regionTree.Delete(rtree.Item{Rect: victim.Region, ID: uint32(id)})

	// Step 2: candidate affected set.
	ids, err := ix.primary.RangeIDs(victimUBR)
	if err != nil {
		return st, geom.Rect{}, err
	}
	st.Examined = len(ids)

	// Step 4a: remove the victim's entries and record first, so warm-started
	// SE and leaf splits see the post-delete state.
	t0 := time.Now()
	if _, err := ix.primary.Remove(uint32(id), victimUBR); err != nil {
		return st, geom.Rect{}, err
	}
	if _, err := ix.secondary.Delete(uint32(id)); err != nil {
		return st, geom.Rect{}, err
	}
	ix.noteRecordMutation(uint32(id))
	st.IndexTime += time.Since(t0)

	for otherID := range ids {
		oid := uncertain.ID(otherID)
		if oid == id {
			continue
		}
		other := ix.db.Get(oid)
		if other == nil {
			continue
		}
		// Lemma 8(3): overlap with the victim means unaffected.
		if other.Region.Intersects(victim.Region) {
			continue
		}
		oldB, ok := ix.lookupUBR(otherID)
		if !ok {
			continue
		}
		// Lemma 8(1) via UBRs.
		if !oldB.Intersects(victimUBR) {
			continue
		}
		st.Affected++

		// Step 3: warm-started SE (l = old UBR).
		t1 := time.Now()
		updated, seAffected := core.ComputeUBRAfterDelete(ix.db, ix.regionTree, other, oldB, ix.cfg.SE)
		st.SETime += time.Since(t1)
		st.SE.Add(seAffected)

		// Step 4b: extend coverage to newly reached leaves (N′−N).
		t2 := time.Now()
		rec := record{UBR: updated, Region: other.Region, Instances: other.Instances}
		if err := ix.putRecord(otherID, rec); err != nil {
			return st, geom.Rect{}, err
		}
		if err := ix.primary.InsertDiff(otherID, other.Region, updated, oldB); err != nil {
			return st, geom.Rect{}, err
		}
		st.IndexTime += time.Since(t2)
	}
	return st, victimUBR, nil
}
