package pvindex

import (
	"math"
	"math/rand"
	"testing"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/core"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/pnnq"
	"pvoronoi/internal/uncertain"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MemBudget = 1 << 18
	cfg.Fanout = 16
	cfg.SE.K = 20
	cfg.SE.KPartition = 3
	cfg.SE.KGlobal = 40
	return cfg
}

func randomDB(rng *rand.Rand, n, d int, span, maxSide float64, withInstances bool) *uncertain.DB {
	db := uncertain.NewDB(geom.UnitCube(d, span))
	for i := 0; i < n; i++ {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for j := 0; j < d; j++ {
			lo[j] = rng.Float64() * (span - maxSide)
			hi[j] = lo[j] + 1 + rng.Float64()*(maxSide-1)
		}
		o := &uncertain.Object{ID: uncertain.ID(i), Region: geom.Rect{Lo: lo, Hi: hi}}
		if withInstances {
			o.Instances = uncertain.SampleInstances(o.Region, uncertain.PDFUniform, 40, rng)
		}
		_ = db.Add(o)
	}
	return db
}

func idsOf(cands []Candidate) []uncertain.ID {
	out := make([]uncertain.ID, len(cands))
	for i, c := range cands {
		out[i] = c.ID
	}
	return out
}

func sameIDs(a, b []uncertain.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPossibleNNMatchesBruteForce is the end-to-end Step-1 equivalence: the
// PV-index must return exactly the brute-force possible-NN set.
func TestPossibleNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{2, 3} {
		for _, strat := range []core.CSetStrategy{core.CSetFS, core.CSetIS} {
			db := randomDB(rng, 150, d, 1000, 40, false)
			cfg := testConfig()
			cfg.SE.Strategy = strat
			ix, err := Build(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for iter := 0; iter < 100; iter++ {
				q := make(geom.Point, d)
				for j := range q {
					q[j] = rng.Float64() * 1000
				}
				got, err := ix.PossibleNN(q)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteforce.PossibleNN(db, q)
				if !sameIDs(idsOf(got), want) {
					t.Fatalf("d=%d %v q=%v: PV-index %v, brute force %v", d, strat, q, idsOf(got), want)
				}
			}
		}
	}
}

func TestPossibleNNEmptyDB(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.PossibleNN(geom.Point{50, 50})
	if err != nil || got != nil {
		t.Fatalf("empty DB: %v, %v", got, err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	region := geom.NewRect(geom.Point{1, 2, 3}, geom.Point{4, 5, 6})
	rec := record{
		UBR:       geom.NewRect(geom.Point{0, 0, 0}, geom.Point{10, 10, 10}),
		Region:    region,
		Instances: uncertain.SampleInstances(region, uncertain.PDFUniform, 25, rng),
	}
	buf := encodeRecord(rec)
	got, err := decodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.UBR.Equal(rec.UBR) || !got.Region.Equal(rec.Region) {
		t.Fatal("rect corruption")
	}
	if len(got.Instances) != len(rec.Instances) {
		t.Fatal("instance count corruption")
	}
	for i := range got.Instances {
		if !got.Instances[i].Pos.Equal(rec.Instances[i].Pos) || got.Instances[i].Prob != rec.Instances[i].Prob {
			t.Fatal("instance corruption")
		}
	}
	// Corrupt length must error, not panic.
	if _, err := decodeRecord(buf[:len(buf)-3]); err == nil {
		t.Fatal("truncated record accepted")
	}
	if _, err := decodeRecord(nil); err == nil {
		t.Fatal("nil record accepted")
	}
}

func TestUBRStored(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomDB(rng, 60, 2, 500, 25, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range db.Objects() {
		ubr, ok := ix.UBR(o.ID)
		if !ok {
			t.Fatalf("UBR of %d missing", o.ID)
		}
		if !ubr.ContainsRect(o.Region) {
			t.Fatalf("stored UBR %v does not contain region %v", ubr, o.Region)
		}
	}
}

// TestIncrementalInsertMatchesRebuild inserts objects one by one and checks
// query equivalence against both brute force and a from-scratch rebuild.
func TestIncrementalInsertMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := randomDB(rng, 100, 2, 1000, 35, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Insert 20 new objects incrementally.
	for i := 0; i < 20; i++ {
		lo := geom.Point{rng.Float64() * 960, rng.Float64() * 960}
		o := &uncertain.Object{
			ID:     uncertain.ID(1000 + i),
			Region: geom.NewRect(lo, geom.Point{lo[0] + 5 + rng.Float64()*30, lo[1] + 5 + rng.Float64()*30}),
		}
		st, err := ix.Insert(o)
		if err != nil {
			t.Fatal(err)
		}
		if st.Examined == 0 {
			t.Error("insert examined no objects")
		}
	}
	for iter := 0; iter < 150; iter++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		got, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteforce.PossibleNN(ix.DB(), q)
		if !sameIDs(idsOf(got), want) {
			t.Fatalf("after inserts, q=%v: got %v want %v", q, idsOf(got), want)
		}
	}
}

// TestIncrementalDeleteMatchesRebuild deletes objects and checks equivalence.
func TestIncrementalDeleteMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randomDB(rng, 120, 2, 1000, 35, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(120)
	for _, idx := range perm[:25] {
		if _, err := ix.Delete(uncertain.ID(idx)); err != nil {
			t.Fatal(err)
		}
	}
	for iter := 0; iter < 150; iter++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		got, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteforce.PossibleNN(ix.DB(), q)
		if !sameIDs(idsOf(got), want) {
			t.Fatalf("after deletes, q=%v: got %v want %v", q, idsOf(got), want)
		}
	}
}

// TestMixedUpdateWorkload interleaves inserts and deletes, continuously
// checking Step-1 equivalence — the paper's Inc-vs-Rebuild experiment in
// property form.
func TestMixedUpdateWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := randomDB(rng, 80, 3, 800, 40, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	nextID := 500
	live := make([]uncertain.ID, 0, 200)
	for _, o := range db.Objects() {
		live = append(live, o.ID)
	}
	for op := 0; op < 60; op++ {
		if rng.Intn(2) == 0 && len(live) > 20 {
			// Delete a random live object.
			k := rng.Intn(len(live))
			id := live[k]
			live = append(live[:k], live[k+1:]...)
			if _, err := ix.Delete(id); err != nil {
				t.Fatalf("op %d: delete %d: %v", op, id, err)
			}
		} else {
			lo := geom.Point{rng.Float64() * 750, rng.Float64() * 750, rng.Float64() * 750}
			o := &uncertain.Object{
				ID:     uncertain.ID(nextID),
				Region: geom.NewRect(lo, geom.Point{lo[0] + 2 + rng.Float64()*40, lo[1] + 2 + rng.Float64()*40, lo[2] + 2 + rng.Float64()*40}),
			}
			nextID++
			live = append(live, o.ID)
			if _, err := ix.Insert(o); err != nil {
				t.Fatalf("op %d: insert: %v", op, err)
			}
		}
		// Spot-check equivalence every few ops.
		if op%5 == 0 {
			for iter := 0; iter < 20; iter++ {
				q := geom.Point{rng.Float64() * 800, rng.Float64() * 800, rng.Float64() * 800}
				got, err := ix.PossibleNN(q)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteforce.PossibleNN(ix.DB(), q)
				if !sameIDs(idsOf(got), want) {
					t.Fatalf("op %d q=%v: got %v want %v", op, q, idsOf(got), want)
				}
			}
		}
	}
}

// TestStep2MatchesBruteForce runs the full PNNQ pipeline (Step 1 via the
// index, Step 2 via pnnq) against the all-pairs brute-force probabilities.
func TestStep2MatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(rng, 60, 2, 600, 35, true)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 30; iter++ {
		q := geom.Point{rng.Float64() * 600, rng.Float64() * 600}
		cands, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]pnnq.CandidateData, len(cands))
		for i, c := range cands {
			ins, err := ix.Instances(c.ID)
			if err != nil {
				t.Fatal(err)
			}
			data[i] = pnnq.CandidateData{ID: c.ID, Instances: ins}
		}
		got := pnnq.Compute(data, q)
		want := bruteforce.QualificationProbs(db, q)
		gotMap := map[uncertain.ID]float64{}
		var sum float64
		for _, r := range got {
			gotMap[r.ID] = r.Prob
			sum += r.Prob
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("q=%v: probabilities sum to %g", q, sum)
		}
		if len(gotMap) != len(want) {
			t.Fatalf("q=%v: %d objects with positive prob, brute force %d", q, len(gotMap), len(want))
		}
		for id, p := range want {
			if math.Abs(gotMap[id]-p) > 1e-9 {
				t.Fatalf("q=%v obj %d: prob %g, brute force %g", q, id, gotMap[id], p)
			}
		}
	}
}

func TestBuildStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := randomDB(rng, 50, 2, 500, 25, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	bs := ix.Build
	if bs.Objects != 50 || bs.Total <= 0 || bs.SE.Iterations == 0 || bs.CSetSizeSum == 0 {
		t.Fatalf("build stats: %+v", bs)
	}
	ps := ix.PrimaryStats()
	if ps.Leaves == 0 || ps.Pages == 0 {
		t.Fatalf("primary stats: %+v", ps)
	}
}

func TestQueryIOBounded(t *testing.T) {
	// A PV-index point query should touch only one leaf's pages.
	rng := rand.New(rand.NewSource(9))
	db := randomDB(rng, 200, 2, 1000, 30, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ix.Store().ResetStats()
	q := geom.Point{500, 500}
	if _, err := ix.PossibleNN(q); err != nil {
		t.Fatal(err)
	}
	stats := ix.Store().Stats()
	if stats.Reads == 0 {
		t.Fatal("no I/O recorded")
	}
	total := ix.PrimaryStats().Pages
	if int(stats.Reads) > total/2+1 {
		t.Fatalf("query read %d of %d pages — not leaf-local", stats.Reads, total)
	}
	if stats.Writes != 0 {
		t.Fatal("query wrote pages")
	}
}

func TestDeleteUnknownObject(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	db := randomDB(rng, 10, 2, 100, 10, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Delete(uncertain.ID(9999)); err == nil {
		t.Fatal("delete of unknown object succeeded")
	}
}

func TestInsertDuplicateID(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := randomDB(rng, 10, 2, 100, 10, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	o := &uncertain.Object{ID: 5, Region: geom.NewRect(geom.Point{1, 1}, geom.Point{2, 2})}
	if _, err := ix.Insert(o); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
}
