package pvindex

import (
	"encoding/binary"
	"fmt"
	"math"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// record is the secondary-index payload for one object: its UBR, its
// uncertainty region, and the discretized pdf (§VI-A: "for every entry ...
// we store the object's UBR, as well as its uncertainty pdf").
type record struct {
	UBR       geom.Rect
	Region    geom.Rect
	Instances []uncertain.Instance
}

// encodeRecord serializes r. Layout:
//
//	dim uint16 | nInstances uint32 | UBR lo/hi (2d float64) |
//	region lo/hi (2d float64) | instances (d+1 float64 each)
func encodeRecord(r record) []byte {
	d := r.UBR.Dim()
	n := len(r.Instances)
	buf := make([]byte, 2+4+2*8*d+2*8*d+n*(8*d+8))
	binary.LittleEndian.PutUint16(buf[0:2], uint16(d))
	binary.LittleEndian.PutUint32(buf[2:6], uint32(n))
	off := 6
	putRect := func(rc geom.Rect) {
		for j := 0; j < d; j++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(rc.Lo[j]))
			off += 8
		}
		for j := 0; j < d; j++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(rc.Hi[j]))
			off += 8
		}
	}
	putRect(r.UBR)
	putRect(r.Region)
	for _, in := range r.Instances {
		for j := 0; j < d; j++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(in.Pos[j]))
			off += 8
		}
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(in.Prob))
		off += 8
	}
	return buf
}

// decodeRecord parses an encoded record.
func decodeRecord(buf []byte) (record, error) {
	if len(buf) < 6 {
		return record{}, fmt.Errorf("pvindex: record too short (%d bytes)", len(buf))
	}
	d := int(binary.LittleEndian.Uint16(buf[0:2]))
	n := int(binary.LittleEndian.Uint32(buf[2:6]))
	want := 2 + 4 + 4*8*d + n*(8*d+8)
	if len(buf) != want {
		return record{}, fmt.Errorf("pvindex: record length %d, want %d (d=%d, n=%d)", len(buf), want, d, n)
	}
	off := 6
	getRect := func() geom.Rect {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for j := 0; j < d; j++ {
			lo[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		for j := 0; j < d; j++ {
			hi[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		return geom.Rect{Lo: lo, Hi: hi}
	}
	rec := record{}
	rec.UBR = getRect()
	rec.Region = getRect()
	if n > 0 {
		rec.Instances = make([]uncertain.Instance, n)
		for i := 0; i < n; i++ {
			p := make(geom.Point, d)
			for j := 0; j < d; j++ {
				p[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			prob := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			rec.Instances[i] = uncertain.Instance{Pos: p, Prob: prob}
		}
	}
	return rec, nil
}
