package pvindex

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultRecordCacheSize is the record cache's default capacity in entries.
// At the paper's 500-instance pdfs (≈16 KB decoded at d=3) the default keeps
// at most ~64 MB of hot records — small next to the simulated disk, large
// enough that a steady query mix over a hot region serves Step 2 from memory.
const DefaultRecordCacheSize = 4096

// rcShards is the cache's lock-striping factor (power of two). Like the
// page store, the cache sits on the concurrent read path: per-candidate
// lookups from parallel Snapshot readers must not funnel through one mutex
// (LRU promotion needs exclusive access even on a hit).
const rcShards = 8

// recordCache is a bounded LRU of object ID → decoded secondary-index
// record, striped into rcShards independently locked shards (ID → shard by
// low bits; capacity divided evenly). It sits under the index's read path:
// Snapshot's per-candidate secondary.Get + decodeRecord becomes a map hit
// for warm objects, skipping both the page-chain I/O and the per-record
// decode allocations.
//
// Consistency contract (the "write-invalidated" invariant): every mutation
// of an object's secondary record — Put or Delete — invalidates that ID
// while the index's write lock is held, so a cached record can never outlive
// the stored bytes it was decoded from. Readers fill the cache only while
// holding the index's read lock, which excludes writers; a fill therefore
// can never race a concurrent invalidation.
//
// Cached records are shared: callers must treat every slice reachable from a
// returned record (UBR, region, instances) as immutable.
type recordCache struct {
	shards [rcShards]rcShard

	hits, misses atomic.Int64
}

type rcShard struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recent; values are *rcEntry
	m   map[uint32]*list.Element
}

type rcEntry struct {
	id  uint32
	rec record
}

// newRecordCache returns a cache with the given total capacity in entries.
// capacity == 0 selects DefaultRecordCacheSize; capacity < 0 disables the
// cache entirely (the returned nil cache misses on every lookup).
func newRecordCache(capacity int) *recordCache {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = DefaultRecordCacheSize
	}
	perShard := (capacity + rcShards - 1) / rcShards
	if perShard < 1 {
		perShard = 1
	}
	c := &recordCache{}
	for i := range c.shards {
		c.shards[i] = rcShard{
			cap: perShard,
			lru: list.New(),
			m:   make(map[uint32]*list.Element, perShard),
		}
	}
	return c
}

func (c *recordCache) shardFor(id uint32) *rcShard {
	return &c.shards[id&(rcShards-1)]
}

// get returns the cached record for id, promoting it to most-recently-used
// within its shard.
func (c *recordCache) get(id uint32) (record, bool) {
	if c == nil {
		return record{}, false
	}
	sh := c.shardFor(id)
	sh.mu.Lock()
	el, ok := sh.m[id]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return record{}, false
	}
	sh.lru.MoveToFront(el)
	rec := el.Value.(*rcEntry).rec
	sh.mu.Unlock()
	c.hits.Add(1)
	return rec, true
}

// put inserts or refreshes the record for id, evicting from its shard's LRU
// tail when the shard is at capacity.
func (c *recordCache) put(id uint32, rec record) {
	if c == nil {
		return
	}
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[id]; ok {
		el.Value.(*rcEntry).rec = rec
		sh.lru.MoveToFront(el)
		return
	}
	for sh.lru.Len() >= sh.cap {
		back := sh.lru.Back()
		sh.lru.Remove(back)
		delete(sh.m, back.Value.(*rcEntry).id)
	}
	sh.m[id] = sh.lru.PushFront(&rcEntry{id: id, rec: rec})
}

// invalidate drops any cached record for id. Called by writers (under the
// index's write lock) for every ID whose secondary record they touch.
func (c *recordCache) invalidate(id uint32) {
	if c == nil {
		return
	}
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[id]; ok {
		sh.lru.Remove(el)
		delete(sh.m, id)
	}
}

// RecordCacheStats reports the decoded-record cache's effectiveness.
type RecordCacheStats struct {
	Hits     int64
	Misses   int64
	Resident int // entries currently cached
	Capacity int // maximum entries (0 when the cache is disabled)
}

// stats returns a snapshot of the cache counters (shard totals).
func (c *recordCache) stats() RecordCacheStats {
	if c == nil {
		return RecordCacheStats{}
	}
	st := RecordCacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Resident += sh.lru.Len()
		st.Capacity += sh.cap
		sh.mu.Unlock()
	}
	return st
}
