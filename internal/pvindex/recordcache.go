package pvindex

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultRecordCacheSize is the record cache's default capacity in entries.
// At the paper's 500-instance pdfs (≈16 KB decoded at d=3) the default keeps
// at most ~64 MB of hot records — small next to the simulated disk, large
// enough that a steady query mix over a hot region serves Step 2 from memory.
const DefaultRecordCacheSize = 4096

// rcShards is the cache's lock-striping factor (power of two). Like the
// page store, the cache sits on the concurrent read path: per-candidate
// lookups from parallel Snapshot readers must not funnel through one mutex
// (LRU promotion needs exclusive access even on a hit).
const rcShards = 8

// recordCache is a bounded LRU of object ID → decoded secondary-index
// record, striped into rcShards independently locked shards (ID → shard by
// low bits; capacity divided evenly). It sits under the index's read path:
// Snapshot's per-candidate secondary.Get + decodeRecord becomes a map hit
// for warm objects, skipping both the page-chain I/O and the per-record
// decode allocations.
//
// Consistency contract (generation tagging): the cache is shared by readers
// pinned to different MVCC versions, so entries cannot simply be
// invalidated on write — an older snapshot must keep missing (and must not
// poison the cache for newer ones). Each entry carries the epoch of the
// version it was decoded from, and a per-shard generation table remembers
// the epoch at which each record was last rewritten (bumped by the writer
// before the new version is published). A lookup from a version at epoch E
// hits only when both the entry's epoch and E are at or beyond the record's
// last modification — i.e. when the cached bytes provably equal what E's
// own secondary index stores. Fills from superseded versions are dropped
// rather than cached. The generation table is pruned as old versions
// reclaim: once no pinnable version predates a modification, its tag can be
// forgotten.
//
// Cached records are shared: callers must treat every slice reachable from a
// returned record (UBR, region, instances) as immutable.
type recordCache struct {
	shards [rcShards]rcShard

	hits, misses atomic.Int64
}

type rcShard struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recent; values are *rcEntry
	m   map[uint32]*list.Element
	// modGen maps a record ID to the epoch of its latest rewrite. Absent
	// means "never modified since the oldest live version" (gen 0).
	modGen map[uint32]uint64
}

type rcEntry struct {
	id  uint32
	gen uint64 // epoch of the version the record was decoded from
	rec record
}

// newRecordCache returns a cache with the given total capacity in entries.
// capacity == 0 selects DefaultRecordCacheSize; capacity < 0 disables the
// cache entirely (the returned nil cache misses on every lookup).
func newRecordCache(capacity int) *recordCache {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = DefaultRecordCacheSize
	}
	perShard := (capacity + rcShards - 1) / rcShards
	if perShard < 1 {
		perShard = 1
	}
	c := &recordCache{}
	for i := range c.shards {
		c.shards[i] = rcShard{
			cap:    perShard,
			lru:    list.New(),
			m:      make(map[uint32]*list.Element, perShard),
			modGen: make(map[uint32]uint64),
		}
	}
	return c
}

func (c *recordCache) shardFor(id uint32) *rcShard {
	return &c.shards[id&(rcShards-1)]
}

// get returns the cached record for id as seen by a version at the given
// epoch, promoting it to most-recently-used within its shard. It misses when
// the record was rewritten after the entry was cached or after the reader's
// version — either way the cached bytes are not the reader's truth.
func (c *recordCache) get(id uint32, epoch uint64) (record, bool) {
	if c == nil {
		return record{}, false
	}
	sh := c.shardFor(id)
	sh.mu.Lock()
	el, ok := sh.m[id]
	if ok {
		if m := sh.modGen[id]; m > 0 {
			e := el.Value.(*rcEntry)
			if e.gen < m || epoch < m {
				ok = false
			}
		}
	}
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return record{}, false
	}
	sh.lru.MoveToFront(el)
	rec := el.Value.(*rcEntry).rec
	sh.mu.Unlock()
	c.hits.Add(1)
	return rec, true
}

// put caches the record as decoded from a version at the given epoch,
// evicting from the shard's LRU tail at capacity. Fills whose version
// predates the record's latest rewrite are dropped (they would never be
// served), and an entry from a newer version is never overwritten by an
// older fill.
func (c *recordCache) put(id uint32, rec record, epoch uint64) {
	if c == nil {
		return
	}
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if epoch < sh.modGen[id] {
		return
	}
	if el, ok := sh.m[id]; ok {
		e := el.Value.(*rcEntry)
		if e.gen <= epoch {
			e.rec = rec
			e.gen = epoch
		}
		sh.lru.MoveToFront(el)
		return
	}
	for sh.lru.Len() >= sh.cap {
		back := sh.lru.Back()
		sh.lru.Remove(back)
		delete(sh.m, back.Value.(*rcEntry).id)
	}
	sh.m[id] = sh.lru.PushFront(&rcEntry{id: id, gen: epoch, rec: rec})
}

// bumpGen records that id's stored record was rewritten by the version at
// the given epoch. Called by the writer for every touched ID before the new
// version publishes, so no reader can cache the old bytes under a passing
// generation. The now-superseded entry is dropped eagerly.
func (c *recordCache) bumpGen(id uint32, epoch uint64) {
	if c == nil {
		return
	}
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.modGen[id] = epoch
	if el, ok := sh.m[id]; ok && el.Value.(*rcEntry).gen < epoch {
		sh.lru.Remove(el)
		delete(sh.m, id)
	}
}

// drop removes id's entry outright, with no generation bump. Only valid
// while the index is not shared (bootstrap construction rewrites records
// after leaf splits may have cached them; there are no concurrent readers
// yet, so the next fill simply decodes the rewritten bytes). The published
// write path must use bumpGen instead — pinned readers rely on it.
func (c *recordCache) drop(id uint32) {
	if c == nil {
		return
	}
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[id]; ok {
		sh.lru.Remove(el)
		delete(sh.m, id)
	}
}

// pruneGen forgets modification tags at or below the oldest pinnable epoch:
// every future lookup and fill comes from a version at or beyond it, so the
// tag can no longer fail a validity check. Keeps the generation table
// bounded by the recently-modified ID set instead of growing forever.
func (c *recordCache) pruneGen(minLive uint64) {
	if c == nil {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for id, m := range sh.modGen {
			if m <= minLive {
				delete(sh.modGen, id)
			}
		}
		sh.mu.Unlock()
	}
}

// RecordCacheStats reports the decoded-record cache's effectiveness.
type RecordCacheStats struct {
	Hits     int64
	Misses   int64
	Resident int // entries currently cached
	Capacity int // maximum entries (0 when the cache is disabled)
	// GenTracked counts IDs with a live modification tag — records
	// rewritten after the oldest pinnable version.
	GenTracked int
}

// stats returns a snapshot of the cache counters (shard totals).
func (c *recordCache) stats() RecordCacheStats {
	if c == nil {
		return RecordCacheStats{}
	}
	st := RecordCacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Resident += sh.lru.Len()
		st.Capacity += sh.cap
		st.GenTracked += len(sh.modGen)
		sh.mu.Unlock()
	}
	return st
}
