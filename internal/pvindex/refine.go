package pvindex

import (
	"fmt"
	"math"
	"sort"

	"pvoronoi/internal/adjgraph"
	"pvoronoi/internal/core"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// RefineConfig controls the budget-aware UBR refinement subsystem: after the
// base SE pass, rows are ranked by hub score (UBR volume × adjacency degree)
// and a bounded extra-work budget is spent on the fattest ones — a deeper SE
// bisection with an enlarged C-set plus a leaf-level clip of the UBR against
// the octree cells that can still contain the PV-cell. Refined UBRs remain
// supersets of the true cell, so every query stays exact; the payoff is the
// graph expansion no longer drowning in fat-hub edges.
//
// Zero values select the defaults noted per field; set a field negative to
// force the knob off (e.g. MinDegree: -1 admits every row).
type RefineConfig struct {
	// Disabled turns the subsystem off entirely (construction, batches,
	// load). An explicit Index.Refine call still runs a pass.
	Disabled bool
	// TopFraction is the fraction of rows the construction pass refines,
	// fattest-first (default 0.02).
	TopFraction float64
	// MaxRows caps the rows refined by any single pass (default 0: no cap).
	MaxRows int
	// DepthBoost deepens the refinement domination tester beyond the base
	// SE MaxDepth (default 4).
	DepthBoost int
	// CSetFactor multiplies the base C-set quotas (K, KPartition, KGlobal)
	// for the refinement pass (default 4).
	CSetFactor int
	// MinDegree exempts rows with fewer neighbors — they are not hubs, and
	// spending budget on them would be uniform work, not targeted
	// (default 16).
	MinDegree int
}

// Resolved returns the configuration with zero-value knobs replaced by their
// documented defaults — the effective budget a refinement pass runs under.
func (c RefineConfig) Resolved() RefineConfig { return c.withDefaults() }

// withDefaults resolves the zero-value knobs to their documented defaults.
func (c RefineConfig) withDefaults() RefineConfig {
	if c.TopFraction == 0 {
		c.TopFraction = 0.02
	}
	if c.TopFraction > 1 {
		c.TopFraction = 1
	}
	if c.MaxRows < 0 {
		c.MaxRows = 0
	}
	if c.DepthBoost == 0 {
		c.DepthBoost = 4
	}
	if c.CSetFactor == 0 {
		c.CSetFactor = 4
	}
	if c.MinDegree == 0 {
		c.MinDegree = 16
	}
	if c.MinDegree < 0 {
		c.MinDegree = 0
	}
	return c
}

// refineOptions maps the config onto the core escalation knobs.
func (c RefineConfig) refineOptions() core.RefineOptions {
	return core.RefineOptions{DepthBoost: c.DepthBoost, CSetFactor: c.CSetFactor}
}

// hubScore ranks a row's drag on graph expansion: a large UBR keys a small
// mindist from everywhere (so best-first search pops it early) and a high
// degree makes each such visit expensive. The product is the expected edge
// work the row inflicts, which is exactly what the budget should buy down.
func hubScore(row *adjgraph.Row) float64 {
	return row.UBR.Volume() * float64(len(row.Neighbors))
}

// refineThreshold returns the incremental re-refinement cutoff: the minimum
// hub score the construction pass spent budget on. Unset (no pass yet, or
// nothing selected) reads as +Inf, so batches refine nothing.
func (ix *Index) refineThreshold() float64 {
	bits := ix.refThresholdBits.Load()
	if bits == 0 {
		return math.Inf(1)
	}
	return math.Float64frombits(bits)
}

func (ix *Index) setRefineThreshold(v float64) {
	ix.refThresholdBits.Store(math.Float64bits(v))
}

// noteRefine folds one pass's work into the lifetime counters.
func (ix *Index) noteRefine(st core.RefineStats) {
	ix.refRows.Add(int64(st.Rows))
	ix.refClipPasses.Add(int64(st.ClipPasses))
	ix.refBudget.Add(st.DominationTests + st.ClipTests)
}

// RefineCounters are the refinement subsystem's lifetime totals.
type RefineCounters struct {
	// RowsRefined counts rows whose UBR a refinement pass recomputed.
	RowsRefined int64
	// ClipPasses counts octree clip walks executed.
	ClipPasses int64
	// BudgetSpent counts domination decisions consumed by refinement
	// (bisection plus clip walks) — the subsystem's work unit.
	BudgetSpent int64
	// Threshold is the current incremental re-refinement cutoff (+Inf until
	// a construction pass sets it).
	Threshold float64
}

// RefineCounters returns the refinement subsystem's lifetime totals.
func (ix *Index) RefineCounters() RefineCounters {
	return RefineCounters{
		RowsRefined: ix.refRows.Load(),
		ClipPasses:  ix.refClipPasses.Load(),
		BudgetSpent: ix.refBudget.Load(),
		Threshold:   ix.refineThreshold(),
	}
}

// scoredRow pairs a row ID with its hub score for selection.
type scoredRow struct {
	id    uint32
	score float64
}

// selectHubsAll scores every adjacency row and returns the construction
// budget's targets — the TopFraction fattest rows (degree ≥ MinDegree,
// positive score), capped by MaxRows — plus the threshold score the
// incremental path will re-refine against (the weakest selected hub; +Inf
// when nothing qualifies).
func (w *working) selectHubsAll(rc RefineConfig) ([]uint32, float64) {
	var rows []scoredRow
	w.adj.ForEach(func(id uint32, row *adjgraph.Row) bool {
		if len(row.Neighbors) < rc.MinDegree {
			return true
		}
		if s := hubScore(row); s > 0 {
			rows = append(rows, scoredRow{id, s})
		}
		return true
	})
	if len(rows) == 0 {
		return nil, math.Inf(1)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].score != rows[j].score {
			return rows[i].score > rows[j].score
		}
		return rows[i].id < rows[j].id
	})
	budget := int(math.Ceil(rc.TopFraction * float64(w.adj.Len())))
	if budget < 1 {
		budget = 1
	}
	if rc.MaxRows > 0 && budget > rc.MaxRows {
		budget = rc.MaxRows
	}
	if budget > len(rows) {
		budget = len(rows)
	}
	ids := make([]uint32, budget)
	for i := 0; i < budget; i++ {
		ids[i] = rows[i].id
	}
	return ids, rows[budget-1].score
}

// selectHubsAmong scores only the given rows (a batch's recomputed set) and
// returns those whose hub score reaches the construction threshold —
// the incremental re-refinement rule: spend extra budget exactly on rows
// that just crossed back into hub territory, fattest first, capped by
// MaxRows.
func (w *working) selectHubsAmong(ids map[uint32]struct{}, rc RefineConfig, threshold float64) []uint32 {
	if math.IsInf(threshold, 1) {
		return nil
	}
	var rows []scoredRow
	for id := range ids {
		row, ok := w.adj.Get(id)
		if !ok || len(row.Neighbors) < rc.MinDegree {
			continue
		}
		if s := hubScore(row); s >= threshold && s > 0 {
			rows = append(rows, scoredRow{id, s})
		}
	}
	if len(rows) == 0 {
		return nil
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].score != rows[j].score {
			return rows[i].score > rows[j].score
		}
		return rows[i].id < rows[j].id
	})
	if rc.MaxRows > 0 && len(rows) > rc.MaxRows {
		rows = rows[:rc.MaxRows]
	}
	out := make([]uint32, len(rows))
	for i, r := range rows {
		out[i] = r.id
	}
	return out
}

// refineJob is one row's refinement: computed in parallel, applied serially.
type refineJob struct {
	id   uint32
	obj  *uncertain.Object
	oldB geom.Rect
	newB geom.Rect
	st   core.Stats
}

// refinePass recomputes the listed rows' UBRs with the escalated SE pass and
// the octree clip walk, then applies every strict shrink to the primary and
// secondary indexes and marks the rows for adjacency recomputation. The
// compute phase fans out over the SE worker pool (read-only over the
// database, region tree and octree skeleton); the apply phase is serial,
// like every other index mutation. Exactness: both shrink mechanisms remove
// only regions a conservative domination tester proves disjoint from the
// PV-cell, so the stored UBR remains a superset of V(o) throughout.
func (w *working) refinePass(ids []uint32, rc RefineConfig) (core.RefineStats, error) {
	ix := w.ix
	jobs := make([]refineJob, 0, len(ids))
	for _, id := range ids {
		obj := w.db.Get(uncertain.ID(id))
		if obj == nil {
			continue
		}
		oldB, ok := w.lookupUBR(id)
		if !ok {
			return core.RefineStats{}, fmt.Errorf("pvindex: refining object %d with no stored UBR", id)
		}
		jobs = append(jobs, refineJob{id: id, obj: obj, oldB: oldB})
	}
	refOpts := rc.refineOptions()
	ix.parallelSE(len(jobs), func(i int) {
		j := &jobs[i]
		rf := core.NewRefiner(w.db, w.regionTree, j.obj, ix.cfg.SE, refOpts)
		j.newB, j.st = rf.Refine(j.oldB)
		seTests := rf.Tests()
		clipped, cells := w.primary.ClipUBR(j.newB, rf.Prunable)
		j.st.Refine.ClipPasses++
		j.st.Refine.ClipCells += cells
		j.st.Refine.ClipTests = rf.Tests() - seTests
		if !clipped.ContainsRect(j.obj.Region) {
			// Unreachable for a sound tester (u(o) ⊆ V(o) survives every
			// prune); keep the guard so a bug can only cost tightness.
			clipped = clipped.Union(j.obj.Region)
		}
		j.newB = clipped
	})

	var st core.RefineStats
	for i := range jobs {
		j := &jobs[i]
		st.Add(j.st.Refine)
		if j.newB.Equal(j.oldB) {
			continue
		}
		if _, err := w.primary.RemoveDiff(j.id, j.oldB, j.newB); err != nil {
			return st, err
		}
		rec := record{UBR: j.newB, Region: j.obj.Region, Instances: j.obj.Instances}
		if err := w.putRecord(j.id, rec); err != nil {
			return st, err
		}
		if w.dirty == nil {
			// Bootstrap has no publish-time generation bump, and leaf splits
			// may already have cached this record's pre-refinement bytes.
			// The index is not shared during construction, so a plain drop
			// is race-free and the next fill decodes the rewritten record.
			ix.rcache.drop(j.id)
		}
		w.adjMarkChanged(j.id)
	}
	return st, nil
}

// refineBootstrap runs the construction-time refinement pass over a fully
// built working set (records stored, adjacency graph materialized): select
// the top-fraction hubs, refine them, and fold the shrunken UBRs back into
// the adjacency graph through the same incremental machinery batches use.
// It also fixes the incremental re-refinement threshold for the index's
// lifetime.
func (ix *Index) refineBootstrap(w *working) error {
	if ix.cfg.Refine.Disabled {
		return nil
	}
	rc := ix.cfg.Refine.withDefaults()
	ids, threshold := w.selectHubsAll(rc)
	ix.setRefineThreshold(threshold)
	if len(ids) == 0 {
		return nil
	}
	if w.adjChanged == nil {
		// Bootstrap working sets rebuild the graph whole and carry no change
		// tracking; give the refinement pass the incremental maps so its
		// shrinks patch rows in O(affected) instead of a second full rebuild.
		w.adjChanged = make(map[uint32]struct{})
		w.adjRemoved = make(map[uint32]struct{})
	}
	st, err := w.refinePass(ids, rc)
	if err != nil {
		return err
	}
	ix.Build.SE.Refine.Add(st)
	ix.noteRefine(st)
	return w.updateAdjacency()
}

// refineAfterBatch is the incremental write-path hook: after a batch's
// adjacency update, re-score exactly the rows the batch recomputed and
// re-refine those whose hub score crossed the construction threshold. The
// refinement's own UBR shrinks then flow through a second, equally
// incremental adjacency update. Returns the pass's stats so the batch can
// attribute the extra budget.
func (w *working) refineAfterBatch() (core.RefineStats, error) {
	ix := w.ix
	if ix.cfg.Refine.Disabled || len(w.adjChanged) == 0 {
		return core.RefineStats{}, nil
	}
	rc := ix.cfg.Refine.withDefaults()
	ids := w.selectHubsAmong(w.adjChanged, rc, ix.refineThreshold())
	if len(ids) == 0 {
		return core.RefineStats{}, nil
	}
	w.adjChanged = make(map[uint32]struct{})
	w.adjRemoved = make(map[uint32]struct{})
	st, err := w.refinePass(ids, rc)
	if err != nil {
		return st, err
	}
	ix.noteRefine(st)
	return st, w.updateAdjacency()
}

// Refine runs one budget-aware refinement pass over the current version as
// its own write batch: hubs are selected fresh across the whole adjacency
// graph (resetting the incremental threshold), refined on the SE worker
// pool, and published as a new MVCC version. Queries never block, and the
// pass runs even when Config.Refine.Disabled — an explicit call is the
// opt-in (this is how benchmarks measure the same index before and after
// refinement). Refinement changes no query result, only the tightness of
// stored UBRs, so the pass is not WAL-logged: a crash simply loses tightness
// that the next pass can re-buy.
func (ix *Index) Refine() (core.RefineStats, error) {
	ix.writerMu.Lock()
	defer ix.writerMu.Unlock()
	if err := ix.damagedErr(); err != nil {
		return core.RefineStats{}, err
	}
	base := ix.current.Load()
	w := ix.newWorking(base)
	rc := ix.cfg.Refine.withDefaults()
	ids, threshold := w.selectHubsAll(rc)
	ix.setRefineThreshold(threshold)
	if len(ids) == 0 {
		w.abort()
		return core.RefineStats{}, nil
	}
	st, err := w.refinePass(ids, rc)
	if err != nil {
		w.abort()
		return st, err
	}
	if err := w.updateAdjacency(); err != nil {
		w.abort()
		return st, err
	}
	ix.noteRefine(st)
	ix.publishWorking(w, base.walSeq)
	return st, nil
}
