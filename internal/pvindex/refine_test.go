package pvindex

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"sync"
	"testing"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// aggressiveRefine returns a config whose refinement pass targets every row
// (no degree floor, full top fraction) — the setting the oracle tests use to
// maximize the chance of surfacing an unsound shrink.
func aggressiveRefine() Config {
	cfg := testConfig()
	cfg.Refine.TopFraction = 1
	cfg.Refine.MinDegree = -1
	return cfg
}

// checkUBRSoundness asserts the PV-cell containment oracle over a sample
// grid: every point whose brute-force possible-NN set includes an object
// must lie inside that object's stored (refined) UBR.
func checkUBRSoundness(t *testing.T, ix *Index, rng *rand.Rand, samples int, span float64) {
	t.Helper()
	db := ix.DB()
	for s := 0; s < samples; s++ {
		p := geom.Point{rng.Float64() * span, rng.Float64() * span}
		for _, id := range bruteforce.PossibleNN(db, p) {
			ubr, ok := ix.UBR(id)
			if !ok {
				t.Fatalf("object %d in possible-NN set has no stored UBR", id)
			}
			if !ubr.Contains(p) {
				t.Fatalf("PV-cell point %v of object %d outside refined UBR %v",
					p, id, ubr)
			}
		}
	}
}

// TestRefineSoundnessOracle is the refinement subsystem's property test:
// through build, insert, delete and reinsert churn — with every row a
// refinement target — each stored UBR must still contain all points whose
// brute-force nearest-neighbor set includes its object. Concurrent
// possible-NN readers run against the index while the batches apply, so the
// race detector also sees the refined write path interleaved with queries.
func TestRefineSoundnessOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const span = 1000.0
	db := randomDB(rng, 90, 2, span, 40, false)
	ix, err := Build(db, aggressiveRefine())
	if err != nil {
		t.Fatal(err)
	}
	if ix.RefineCounters().RowsRefined == 0 {
		t.Fatal("aggressive config refined no rows at build")
	}
	checkUBRSoundness(t, ix, rng, 250, span)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		qrng := rand.New(rand.NewSource(72))
		for {
			select {
			case <-stop:
				return
			default:
			}
			q := geom.Point{qrng.Float64() * span, qrng.Float64() * span}
			if _, err := ix.PossibleNN(q); err != nil {
				t.Errorf("concurrent query: %v", err)
				return
			}
		}
	}()

	nextID := uncertain.ID(1000)
	var deleted []*uncertain.Object
	for round := 0; round < 6; round++ {
		var ups []Update
		// Inserts: fresh objects in a random subarea.
		for i := 0; i < 8; i++ {
			lo := geom.Point{rng.Float64() * (span - 40), rng.Float64() * (span - 40)}
			o := &uncertain.Object{
				ID:     nextID,
				Region: geom.NewRect(lo, geom.Point{lo[0] + 1 + rng.Float64()*39, lo[1] + 1 + rng.Float64()*39}),
			}
			nextID++
			ups = append(ups, Update{Op: OpInsert, Object: o})
		}
		// Deletes: live objects picked at random, remembered for reinsertion.
		objs := ix.DB().Objects()
		for i := 0; i < 5 && len(objs) > 10; i++ {
			o := objs[rng.Intn(len(objs))]
			dup := false
			for _, u := range ups {
				if u.Op == OpDelete && u.ID == o.ID {
					dup = true
				}
			}
			if dup {
				continue
			}
			ups = append(ups, Update{Op: OpDelete, ID: o.ID})
			deleted = append(deleted, o)
		}
		// Reinserts: bring back an object deleted in an earlier round.
		if round > 0 && len(deleted) > 0 {
			o := deleted[0]
			deleted = deleted[1:]
			if ix.DB().Get(o.ID) == nil {
				ups = append(ups, Update{Op: OpInsert, Object: o})
			}
		}
		if _, err := ix.ApplyBatch(ups); err != nil {
			t.Fatal(err)
		}
		checkUBRSoundness(t, ix, rng, 150, span)
	}
	close(stop)
	wg.Wait()
	checkUBRSoundness(t, ix, rng, 250, span)
}

// TestRefineSelectionAndCounters checks the budget policy: the construction
// pass refines exactly the configured top fraction of qualifying rows,
// fattest first, and the lifetime counters plus the incremental threshold
// reflect it. A disabled config must spend nothing and leave the threshold
// unset, and an explicit Refine call must still run (the benchmark opt-in).
func TestRefineSelectionAndCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db := randomDB(rng, 100, 2, 1000, 40, false)
	cfg := testConfig()
	cfg.Refine.TopFraction = 0.1
	cfg.Refine.MinDegree = -1
	ix, err := Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc := ix.RefineCounters()
	if rc.RowsRefined != 10 {
		t.Fatalf("rows refined = %d, want 10 (top 10%% of 100)", rc.RowsRefined)
	}
	if rc.ClipPasses != 10 || rc.BudgetSpent <= 0 {
		t.Fatalf("counters inconsistent: %+v", rc)
	}
	if math.IsInf(rc.Threshold, 1) || rc.Threshold <= 0 {
		t.Fatalf("construction pass left threshold %v", rc.Threshold)
	}
	if ix.Build.SE.Refine.Rows != 10 {
		t.Fatalf("build stats attribute %d refined rows, want 10", ix.Build.SE.Refine.Rows)
	}

	off := testConfig()
	off.Refine.Disabled = true
	rng2 := rand.New(rand.NewSource(73))
	db2 := randomDB(rng2, 100, 2, 1000, 40, false)
	ix2, err := Build(db2, off)
	if err != nil {
		t.Fatal(err)
	}
	rc2 := ix2.RefineCounters()
	if rc2.RowsRefined != 0 || rc2.BudgetSpent != 0 {
		t.Fatalf("disabled config spent budget: %+v", rc2)
	}
	if !math.IsInf(rc2.Threshold, 1) {
		t.Fatalf("disabled config set threshold %v", rc2.Threshold)
	}
	epochBefore := ix2.Epoch()
	if _, err := ix2.Refine(); err != nil {
		t.Fatal(err)
	}
	if ix2.RefineCounters().RowsRefined == 0 {
		t.Fatal("explicit Refine on a disabled config refined nothing")
	}
	if ix2.Epoch() != epochBefore+1 {
		t.Fatalf("explicit Refine did not publish a version: epoch %d -> %d",
			epochBefore, ix2.Epoch())
	}
	// The two builds saw the same data; the refined index must give every
	// query the same answer, only cheaper.
	for s := 0; s < 100; s++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		a, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ix2.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(a), idsOf(b)) {
			t.Fatalf("refined/unrefined possible-NN diverge at %v: %v vs %v", q, a, b)
		}
	}
}

// TestRefineBatchRerefinesCrossedHubs checks the incremental rule: rows a
// batch recomputes get re-refined only when their hub score reaches the
// construction threshold. With an aggressive config the threshold is the
// weakest row's score, so churn keeps refining and the lifetime counters
// grow; the batch stats carry the extra work in the Refine block.
func TestRefineBatchRerefinesCrossedHubs(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	db := randomDB(rng, 80, 2, 1000, 40, false)
	ix, err := Build(db, aggressiveRefine())
	if err != nil {
		t.Fatal(err)
	}
	before := ix.RefineCounters()
	lo := geom.Point{500, 500}
	o := &uncertain.Object{ID: 5000, Region: geom.NewRect(lo, geom.Point{540, 540})}
	sts, err := ix.ApplyBatch([]Update{{Op: OpInsert, Object: o}})
	if err != nil {
		t.Fatal(err)
	}
	after := ix.RefineCounters()
	if after.RowsRefined <= before.RowsRefined {
		t.Fatalf("batch refined no rows (aggressive threshold): %d -> %d",
			before.RowsRefined, after.RowsRefined)
	}
	if after.BudgetSpent <= before.BudgetSpent {
		t.Fatal("batch refinement spent no budget")
	}
	if len(sts) != 1 || sts[0].SE.Refine.Rows == 0 {
		t.Fatalf("batch stats missing refinement attribution: %+v", sts)
	}
}

// TestRefinePersistRoundTrip checks PVIDX4 persistence: refined UBRs, the
// refinement config and the incremental threshold all survive a save/load
// cycle, and a pre-V4 image (no refinement state) is refined once at load so
// old snapshots serve with the same tight rows a fresh build would.
func TestRefinePersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	db := randomDB(rng, 80, 2, 1000, 40, false)
	ix, err := Build(db, aggressiveRefine())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFrom(bytes.NewReader(buf.Bytes()), ix.DB())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.cfg.Refine != ix.cfg.Refine {
		t.Fatalf("refine config not restored: %+v vs %+v", loaded.cfg.Refine, ix.cfg.Refine)
	}
	if lt, it := loaded.refineThreshold(), ix.refineThreshold(); lt != it {
		t.Fatalf("threshold not restored: %v vs %v", lt, it)
	}
	for _, o := range ix.DB().Objects() {
		a, _ := ix.UBR(o.ID)
		b, ok := loaded.UBR(o.ID)
		if !ok || !a.Equal(b) {
			t.Fatalf("object %d UBR changed across round trip: %v vs %v", o.ID, a, b)
		}
	}
	// A V4 load must not re-refine: its rows are already refined.
	if n := loaded.RefineCounters().RowsRefined; n != 0 {
		t.Fatalf("V4 load refined %d rows", n)
	}

	// Forge a pre-V4 image: decode the saved gob, rewrite it as a PVIDX3
	// image with no refinement state, and load it. The loader must run a
	// refinement pass over the loaded rows.
	var img indexImage
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&img); err != nil {
		t.Fatal(err)
	}
	img.Magic = persistMagicV3
	img.Refine = RefineConfig{TopFraction: 1, MinDegree: -1}
	img.RefineThreshold = 0
	var old bytes.Buffer
	if err := gob.NewEncoder(&old).Encode(&img); err != nil {
		t.Fatal(err)
	}
	relo, err := LoadFrom(bytes.NewReader(old.Bytes()), ix.DB())
	if err != nil {
		t.Fatal(err)
	}
	rc := relo.RefineCounters()
	if rc.RowsRefined == 0 {
		t.Fatal("pre-V4 image was not refined at load")
	}
	if math.IsInf(rc.Threshold, 1) {
		t.Fatal("pre-V4 load left the incremental threshold unset")
	}
	// The load-time pass publishes a second version on top of the loaded one.
	if relo.Epoch() != 2 {
		t.Fatalf("pre-V4 load epoch = %d, want 2", relo.Epoch())
	}
	for s := 0; s < 100; s++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		a, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := relo.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(a), idsOf(b)) {
			t.Fatalf("pre-V4 reload possible-NN diverges at %v", q)
		}
	}
}
