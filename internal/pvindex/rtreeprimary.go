package pvindex

import (
	"sort"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// RTreePrimary is the alternative primary-index design the paper considers
// and rejects in §VI-A (footnote 3): storing the UBRs in an R-tree instead
// of an octree. Because R-tree node regions overlap, a point query may
// descend several subtrees instead of exactly one leaf chain — the reason
// the paper chose the octree. It is provided for the design ablation
// (pvbench ablations) and answers queries identically.
type RTreePrimary struct {
	tree    *rtree.Tree
	regions map[uncertain.ID]geom.Rect // u(o) per object
}

// NewRTreePrimary builds the R-tree variant from a constructed PV-index,
// reusing its stored UBRs.
func NewRTreePrimary(ix *Index, fanout int) *RTreePrimary {
	db := ix.DB()
	rp := &RTreePrimary{
		tree:    rtree.New(db.Dim(), fanout),
		regions: make(map[uncertain.ID]geom.Rect, db.Len()),
	}
	for _, o := range db.Objects() {
		ubr, ok := ix.UBR(o.ID)
		if !ok {
			continue
		}
		rp.tree.Insert(rtree.Item{Rect: ubr, ID: uint32(o.ID)})
		rp.regions[o.ID] = o.Region
	}
	return rp
}

// PossibleNN answers PNNQ Step 1 exactly like Index.PossibleNN: objects
// whose UBR contains q, pruned by min/max distance.
func (rp *RTreePrimary) PossibleNN(q geom.Point) []Candidate {
	items := rp.tree.Search(geom.PointRect(q), nil)
	if len(items) == 0 {
		return nil
	}
	cands := make([]Candidate, 0, len(items))
	bestMax := -1.0
	for _, it := range items {
		region, ok := rp.regions[uncertain.ID(it.ID)]
		if !ok {
			continue
		}
		c := Candidate{
			ID:      uncertain.ID(it.ID),
			Region:  region,
			MinDist: region.MinDist(q),
			MaxDist: region.MaxDist(q),
		}
		if bestMax < 0 || c.MaxDist < bestMax {
			bestMax = c.MaxDist
		}
		cands = append(cands, c)
	}
	out := cands[:0]
	for _, c := range cands {
		if c.MinDist <= bestMax {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LeafIO exposes the R-tree's leaf access counter for the ablation.
func (rp *RTreePrimary) LeafIO() int64 { return rp.tree.LeafIO() }

// ResetLeafIO zeroes the counter.
func (rp *RTreePrimary) ResetLeafIO() { rp.tree.ResetLeafIO() }
