package pvindex

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/bruteforce"
	"pvoronoi/internal/geom"
)

// The R-tree-primary variant must answer Step 1 identically to the octree
// PV-index and to brute force.
func TestRTreePrimaryEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	db := randomDB(rng, 150, 3, 1000, 40, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rp := NewRTreePrimary(ix, 16)
	for iter := 0; iter < 150; iter++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		a, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		b := rp.PossibleNN(q)
		if !sameIDs(idsOf(a), idsOf(b)) {
			t.Fatalf("q=%v: octree %v rtree-primary %v", q, idsOf(a), idsOf(b))
		}
		if !sameIDs(idsOf(b), bruteforce.PossibleNN(db, q)) {
			t.Fatalf("q=%v: rtree-primary wrong vs brute force", q)
		}
	}
}

func TestRTreePrimaryIOCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db := randomDB(rng, 200, 2, 1000, 35, false)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rp := NewRTreePrimary(ix, 8)
	rp.ResetLeafIO()
	for i := 0; i < 20; i++ {
		rp.PossibleNN(geom.Point{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	if rp.LeafIO() == 0 {
		t.Fatal("no leaf I/O recorded")
	}
}
