package pvindex

import (
	"sync/atomic"

	"pvoronoi/internal/adjgraph"
	"pvoronoi/internal/exthash"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/octree"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// version is one immutable MVCC snapshot of the whole index: the database,
// the octree primary index, the extendible-hash secondary index (UBR + pdf
// records), and the region R*-tree, all consistent as of one write epoch.
//
// Lifecycle: a writer builds the next version copy-on-write from the current
// one (sharing every untouched node and page), publishes it with a single
// atomic pointer swap, and retires the predecessor. Readers pin a version
// with two atomic operations and no locks; the retired version's exclusive
// pages are reclaimed once its last pinned reader drains and every older
// version has already been reclaimed.
type version struct {
	// epoch is the version's sequence number, starting at 1 for the built
	// (or loaded) index and incremented by every published write.
	epoch uint64
	// walSeq is the sequence number of the last WAL record applied as of
	// this version (0 when none).
	walSeq uint64

	db         *uncertain.DB
	primary    *octree.Tree
	secondary  *exthash.Table
	regionTree *rtree.Tree
	// adj is the materialized UBR-adjacency graph (one row per object, the
	// IDs of every object with an intersecting UBR), maintained incrementally
	// by the writer and shared copy-on-write across versions like the trees.
	adj *adjgraph.Graph

	// readers counts pinned readers. A version with readers > 0 is never
	// reclaimed; transient increments from the pin retry loop are harmless
	// because they are reverted without touching any data.
	readers atomic.Int64
	// retired flips to true once a successor has been published. Only
	// retired versions are eligible for reclamation.
	retired atomic.Bool
	// freed lists the pages this version references that its successor
	// dropped (shadow-copied or deleted). They are returned to the store
	// when this version — and by reclaim order, every older one — drains.
	freed []pagestore.PageID
}

// pin returns the current version with its reader count held. The increment-
// then-recheck loop closes the race against a concurrent publish: if the
// pointer moved between the load and the increment, the stale count is
// reverted (possibly triggering the reclaim the writer skipped) and the load
// retries. No locks, no syscalls — queries never wait for writers.
func (ix *Index) pin() *version {
	for {
		v := ix.current.Load()
		v.readers.Add(1)
		if ix.current.Load() == v {
			return v
		}
		ix.unpin(v)
	}
}

// unpin releases a pinned version. A reader that drains a retired version
// hands the reclaim sweep to a fresh goroutine rather than running it
// inline — freeing a large batch's shadow-page backlog must not land on one
// unlucky query's latency. This happens at most once per version (the drain
// event), not per query; publishes still sweep synchronously, so an idle
// index converges without any writes in flight.
func (ix *Index) unpin(v *version) {
	if v.readers.Add(-1) == 0 && v.retired.Load() {
		go ix.tryReclaim()
	}
}

// publish makes next the current version: record-cache generations bump
// first (so no reader can cache soon-stale content under a passing
// generation), then the pointer swaps, then the predecessor retires with
// the batch's deferred page frees attached.
func (ix *Index) publish(next *version, freed []pagestore.PageID, dirty map[uint32]struct{}) {
	for id := range dirty {
		ix.rcache.bumpGen(id, next.epoch)
	}
	old := ix.current.Load()
	old.freed = freed
	ix.reclaimMu.Lock()
	ix.retired = append(ix.retired, old)
	ix.reclaimMu.Unlock()
	ix.current.Store(next)
	old.retired.Store(true)
	ix.tryReclaim()
}

// tryReclaim frees the page sets of drained retired versions, oldest first.
// Order matters: a page on version V's freed list may still be referenced
// by versions older than V, so it is returned to the store only when V
// reaches the front of the queue — i.e. when everything older is gone. The
// sweep stops at the first version still pinned or not yet retired.
func (ix *Index) tryReclaim() {
	ix.reclaimMu.Lock()
	defer ix.reclaimMu.Unlock()
	for len(ix.retired) > 0 {
		v := ix.retired[0]
		if !v.retired.Load() || v.readers.Load() != 0 {
			break
		}
		for _, p := range v.freed {
			_ = ix.store.Free(p)
		}
		v.freed = nil
		ix.retired[0] = nil
		ix.retired = ix.retired[1:]
		ix.reclaims++
	}
	if len(ix.retired) == 0 {
		ix.retired = nil
	}
	// The oldest pinnable epoch bounds every future cache access; the
	// generation table can forget modifications at or below it. Prune only
	// when that bound actually advanced — under a long-held pin the bound
	// is stuck, and rescanning a growing table per publish would be
	// quadratic for nothing.
	minLive := ix.current.Load().epoch
	if len(ix.retired) > 0 {
		minLive = ix.retired[0].epoch
	}
	if minLive > ix.prunedTo {
		ix.rcache.pruneGen(minLive)
		ix.prunedTo = minLive
	}
}

// Epoch returns the published write epoch: 1 after construction, +1 per
// applied batch (and per replayed WAL record). Lock-free.
func (ix *Index) Epoch() uint64 { return ix.current.Load().epoch }

// MVCCStats reports the snapshot lifecycle's gauges for monitoring.
type MVCCStats struct {
	// Epoch is the current published write epoch.
	Epoch uint64
	// WALSeq is the last applied WAL sequence as of the current version.
	WALSeq uint64
	// InFlightReaders counts currently pinned readers across all live
	// versions (approximate under concurrent traffic).
	InFlightReaders int64
	// LiveVersions counts the current version plus retired versions still
	// awaiting reclamation (1 when no reader lags behind the writer).
	LiveVersions int
	// Reclaimed counts versions whose exclusive pages have been returned
	// to the store since the index was built.
	Reclaimed int64
}

// MVCC returns the snapshot lifecycle gauges.
func (ix *Index) MVCC() MVCCStats {
	ix.reclaimMu.Lock()
	defer ix.reclaimMu.Unlock()
	cur := ix.current.Load()
	st := MVCCStats{
		Epoch:        cur.epoch,
		WALSeq:       cur.walSeq,
		LiveVersions: len(ix.retired) + 1,
		Reclaimed:    ix.reclaims,
	}
	st.InFlightReaders = cur.readers.Load()
	for _, v := range ix.retired {
		st.InFlightReaders += v.readers.Load()
	}
	return st
}

// Pinned is an explicitly held snapshot: every read through it observes the
// same version, however many writes commit in the meantime. Release it when
// done — a pinned version keeps its pages alive. Safe for concurrent use by
// multiple goroutines until Release.
type Pinned struct {
	ix *Index
	v  *version
}

// Pin acquires the current version for multi-read consistency. The caller
// must Release it.
func (ix *Index) Pin() *Pinned {
	return &Pinned{ix: ix, v: ix.pin()}
}

// Release drops the pin. The Pinned must not be used afterwards.
func (p *Pinned) Release() {
	if p.v != nil {
		p.ix.unpin(p.v)
		p.v = nil
	}
}

// Epoch returns the pinned version's write epoch.
func (p *Pinned) Epoch() uint64 { return p.v.epoch }

// WALSeq returns the pinned version's last applied WAL sequence.
func (p *Pinned) WALSeq() uint64 { return p.v.walSeq }

// DB returns the pinned version's database. It is immutable — later writes
// build new versions and never touch it — so it may be read freely, shared
// object pointers included.
func (p *Pinned) DB() *uncertain.DB { return p.v.db }

// PossibleNN evaluates PNNQ Step 1 against the pinned version.
func (p *Pinned) PossibleNN(q geom.Point) ([]Candidate, error) {
	cands, _, err := p.ix.possibleNNAt(p.v, q)
	return cands, err
}

// UBR returns an object's stored UBR in the pinned version.
func (p *Pinned) UBR(id uncertain.ID) (geom.Rect, bool) {
	rec, ok, _, err := p.ix.getRecordAt(p.v, uint32(id))
	if err != nil || !ok {
		return geom.Rect{}, false
	}
	return rec.UBR, true
}

// Instances returns an object's stored pdf instances in the pinned version.
// The slice may be shared with the record cache — treat it as immutable.
func (p *Pinned) Instances(id uncertain.ID) ([]uncertain.Instance, error) {
	return p.ix.instancesAt(p.v, id)
}
