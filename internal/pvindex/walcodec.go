package pvindex

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
	"pvoronoi/internal/wal"
)

// walInsert is the gob payload of a TypeInsert record: the inserted object
// in flat slices (gob handles these more compactly and robustly than the
// nested geom/uncertain types).
type walInsert struct {
	ID       uint32
	Lo, Hi   []float64
	InstPos  [][]float64
	InstProb []float64
}

// walDelete is the gob payload of a TypeDelete record.
type walDelete struct {
	ID uint32
}

// encodeUpdate turns one batch update into a WAL entry.
func encodeUpdate(u Update) (wal.Entry, error) {
	var buf bytes.Buffer
	switch u.Op {
	case OpInsert:
		o := u.Object
		w := walInsert{
			ID: uint32(o.ID),
			Lo: o.Region.Lo,
			Hi: o.Region.Hi,
		}
		if n := len(o.Instances); n > 0 {
			w.InstPos = make([][]float64, n)
			w.InstProb = make([]float64, n)
			for i, in := range o.Instances {
				w.InstPos[i] = in.Pos
				w.InstProb[i] = in.Prob
			}
		}
		if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
			return wal.Entry{}, fmt.Errorf("pvindex: encoding insert for wal: %w", err)
		}
		return wal.Entry{Type: wal.TypeInsert, Payload: buf.Bytes()}, nil
	case OpDelete:
		if err := gob.NewEncoder(&buf).Encode(&walDelete{ID: uint32(u.ID)}); err != nil {
			return wal.Entry{}, fmt.Errorf("pvindex: encoding delete for wal: %w", err)
		}
		return wal.Entry{Type: wal.TypeDelete, Payload: buf.Bytes()}, nil
	default:
		return wal.Entry{}, fmt.Errorf("pvindex: encoding unknown op %d for wal", u.Op)
	}
}

// decodeUpdate reconstructs a batch update from a replayed WAL record.
func decodeUpdate(rec wal.Record) (Update, error) {
	switch rec.Type {
	case wal.TypeInsert:
		var w walInsert
		if err := gob.NewDecoder(bytes.NewReader(rec.Payload)).Decode(&w); err != nil {
			return Update{}, fmt.Errorf("pvindex: decoding wal insert %d: %w", rec.Seq, err)
		}
		o := &uncertain.Object{
			ID:     uncertain.ID(w.ID),
			Region: geom.Rect{Lo: w.Lo, Hi: w.Hi},
		}
		if n := len(w.InstPos); n > 0 {
			if len(w.InstProb) != n {
				return Update{}, fmt.Errorf("pvindex: wal insert %d: %d positions, %d probabilities", rec.Seq, n, len(w.InstProb))
			}
			o.Instances = make([]uncertain.Instance, n)
			for i := range w.InstPos {
				o.Instances[i] = uncertain.Instance{Pos: w.InstPos[i], Prob: w.InstProb[i]}
			}
		}
		return Update{Op: OpInsert, Object: o}, nil
	case wal.TypeDelete:
		var w walDelete
		if err := gob.NewDecoder(bytes.NewReader(rec.Payload)).Decode(&w); err != nil {
			return Update{}, fmt.Errorf("pvindex: decoding wal delete %d: %w", rec.Seq, err)
		}
		return Update{Op: OpDelete, ID: uncertain.ID(w.ID)}, nil
	default:
		return Update{}, fmt.Errorf("pvindex: wal record %d has unknown type %d", rec.Seq, rec.Type)
	}
}
