//go:build !race

// Package race exposes whether the race detector instruments this build, so
// tests can keep running their workloads under -race while gating assertions
// (allocation budgets, timing bounds) that instrumentation invalidates.
package race

// Enabled reports whether the binary was built with -race.
const Enabled = false
