package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"pvoronoi/internal/geom"
)

func randItem(rng *rand.Rand, id uint32) Item {
	lo := geom.Point{rng.Float64() * 900, rng.Float64() * 900}
	hi := geom.Point{lo[0] + 1 + rng.Float64()*30, lo[1] + 1 + rng.Float64()*30}
	return Item{Rect: geom.Rect{Lo: lo, Hi: hi}, ID: id}
}

func idSet(items []Item) []uint32 {
	ids := make([]uint32, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestCloneCOWIsolation mutates a COW clone heavily and checks the sealed
// original never changes: same item set, same search answers, invariants
// intact on both handles.
func TestCloneCOWIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := New(2, 8)
	items := make([]Item, 300)
	for i := range items {
		items[i] = randItem(rng, uint32(i))
		base.Insert(items[i])
	}
	wantIDs := idSet(base.All(nil))

	clone := base.CloneCOW()
	// Heavy churn on the clone: delete half, insert replacements.
	for i := 0; i < 150; i++ {
		if !clone.Delete(items[i]) {
			t.Fatalf("clone delete of item %d failed", i)
		}
	}
	for i := 0; i < 200; i++ {
		clone.Insert(randItem(rng, uint32(10_000+i)))
	}

	if got := idSet(base.All(nil)); len(got) != len(wantIDs) {
		t.Fatalf("sealed original changed size: %d -> %d", len(wantIDs), len(got))
	} else {
		for i := range got {
			if got[i] != wantIDs[i] {
				t.Fatalf("sealed original item set changed at %d: %d != %d", i, got[i], wantIDs[i])
			}
		}
	}
	if err := base.checkInvariants(); err != nil {
		t.Fatalf("sealed original invariants: %v", err)
	}
	if err := clone.checkInvariants(); err != nil {
		t.Fatalf("clone invariants: %v", err)
	}
	if clone.Len() != 300-150+200 {
		t.Fatalf("clone size %d, want %d", clone.Len(), 300-150+200)
	}

	// Search answers on the original are reproducible after clone churn.
	for i := 0; i < 50; i++ {
		q := geom.Rect{
			Lo: geom.Point{rng.Float64() * 900, rng.Float64() * 900},
			Hi: geom.Point{900, 900},
		}
		q.Hi = geom.Point{q.Lo[0] + 50, q.Lo[1] + 50}
		got := idSet(base.Search(q, nil))
		var want []uint32
		for _, it := range items {
			if it.Rect.Intersects(q) {
				want = append(want, it.ID)
			}
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(got) != len(want) {
			t.Fatalf("query %d: original search changed: got %d items, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d: original search answer changed", i)
			}
		}
	}

	// A second-generation clone built from the first keeps composing.
	clone2 := clone.CloneCOW()
	for i := 0; i < 100; i++ {
		clone2.Insert(randItem(rng, uint32(20_000+i)))
	}
	if err := clone.checkInvariants(); err != nil {
		t.Fatalf("first clone mutated by second: %v", err)
	}
	if err := clone2.checkInvariants(); err != nil {
		t.Fatalf("second clone invariants: %v", err)
	}
}

// TestCloneCOWConcurrentReads races readers on the sealed original against
// a mutating clone — the MVCC serving pattern. Run with -race.
func TestCloneCOWConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := New(2, 8)
	for i := 0; i < 400; i++ {
		base.Insert(randItem(rng, uint32(i)))
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		clone := base.CloneCOW()
		crng := rand.New(rand.NewSource(43))
		for i := 0; i < 2000; i++ {
			clone.Insert(randItem(crng, uint32(50_000+i)))
		}
	}()

	qrng := rand.New(rand.NewSource(44))
	for i := 0; i < 500; i++ {
		q := geom.Point{qrng.Float64() * 900, qrng.Float64() * 900}
		it := NewNNIter(base, q, MinDistTo(q))
		for k := 0; k < 5; k++ {
			if _, _, ok := it.Next(); !ok {
				break
			}
		}
	}
	<-done
}
