// Best-first branch-and-bound retrieval primitives for the extension
// queries (group NN, possible k-NN, reverse NN). They generalize PossibleNN:
// the caller supplies lower/upper bound functions over rectangles, and the
// tree prunes subtrees whose lower bound exceeds the running k-th smallest
// upper bound. Unlike the tree-global LeafIO counter, every primitive
// returns a per-call Cost, so concurrent queries get exact attribution.
package rtree

import (
	"container/heap"
	"math"

	"pvoronoi/internal/geom"
)

// Cost counts the node accesses of one index-assisted retrieval: internal
// nodes visited and leaf pages read (the simulated disk I/O of the paper's
// experiments). Leaf accesses also feed the tree-global LeafIO counter.
type Cost struct {
	Nodes  int
	Leaves int
}

// Add accumulates c2 into c.
func (c *Cost) Add(c2 Cost) {
	c.Nodes += c2.Nodes
	c.Leaves += c2.Leaves
}

// kMax is a bounded max-heap holding the k smallest values pushed so far;
// its root is the running k-th smallest (the branch-and-bound cutoff).
type kMax struct {
	vals []float64
	k    int
}

// push offers v and returns the current k-th smallest value, or +Inf while
// fewer than k values have been seen.
func (h *kMax) push(v float64) float64 {
	if len(h.vals) < h.k {
		h.vals = append(h.vals, v)
		for i := len(h.vals) - 1; i > 0; {
			p := (i - 1) / 2
			if h.vals[p] >= h.vals[i] {
				break
			}
			h.vals[p], h.vals[i] = h.vals[i], h.vals[p]
			i = p
		}
		if len(h.vals) < h.k {
			return math.Inf(1)
		}
		return h.vals[0]
	}
	if v >= h.vals[0] {
		return h.vals[0]
	}
	h.vals[0] = v
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.vals) && h.vals[l] > h.vals[big] {
			big = l
		}
		if r < len(h.vals) && h.vals[r] > h.vals[big] {
			big = r
		}
		if big == i {
			break
		}
		h.vals[i], h.vals[big] = h.vals[big], h.vals[i]
		i = big
	}
	return h.vals[0]
}

// KthBound browses the tree best-first by a lower-bound key until the k-th
// smallest upper bound proves the remainder irrelevant. On return, bound is
// the k-th smallest upper(item.Rect) over the WHOLE tree (+Inf when the tree
// holds fewer than k items), items is a superset of
// {item : lower(item.Rect) <= bound}, and every item absent from it has
// lower(item.Rect) > bound. An entry whose lower bound already exceeds the
// running cutoff when its leaf is read is dropped outright: since
// upper >= lower it can neither qualify nor tighten the cutoff further.
//
// lower must be monotone (lower(R) <= lower(r) whenever r ⊆ R) and must
// lower-bound upper on every item rectangle. Both hold for aggregate
// min/max-distance bounds, which makes the returned set exactly reproduce
// what a linear scan filtered by the same bound would keep.
func (t *Tree) KthBound(lower, upper func(geom.Rect) float64, k int) (items []Item, bound float64, cost Cost) {
	bound = math.Inf(1)
	if t.size == 0 || k <= 0 {
		return nil, bound, cost
	}
	kth := kMax{k: k}
	var h nnHeap
	var counter int64
	heap.Push(&h, nnHeapItem{dist: lower(t.root.mbr()), node: t.root})
	for h.Len() > 0 {
		top := heap.Pop(&h).(nnHeapItem)
		if top.dist > bound {
			break // best-first order: everything left is at least as far
		}
		n := top.node
		if n.leaf() {
			cost.Leaves++
			t.leafIO.Add(1)
			for _, e := range n.entries {
				if lower(e.rect) > bound {
					continue
				}
				bound = kth.push(upper(e.rect))
				items = append(items, e.item)
			}
			continue
		}
		cost.Nodes++
		for _, e := range n.entries {
			if d := lower(e.rect); d <= bound {
				counter++
				heap.Push(&h, nnHeapItem{dist: d, node: e.child, order: counter})
			}
		}
	}
	return items, bound, cost
}

// Walk descends the tree depth-first. prune is consulted with each subtree's
// bounding rectangle (including the root's) before descent — returning true
// skips the subtree without touching its pages. visit receives every leaf
// entry of the surviving subtrees.
func (t *Tree) Walk(prune func(geom.Rect) bool, visit func(Item)) (cost Cost) {
	if t.size == 0 {
		return cost
	}
	if prune != nil && prune(t.root.mbr()) {
		return cost
	}
	var rec func(n *node)
	rec = func(n *node) {
		if n.leaf() {
			cost.Leaves++
			t.leafIO.Add(1)
			for _, e := range n.entries {
				visit(e.item)
			}
			return
		}
		cost.Nodes++
		for _, e := range n.entries {
			if prune != nil && prune(e.rect) {
				continue
			}
			rec(e.child)
		}
	}
	rec(t.root)
	return cost
}

// SearchWithCost is Search with per-call cost attribution: it appends to dst
// all items intersecting r and reports the nodes and leaves it touched.
func (t *Tree) SearchWithCost(r geom.Rect, dst []Item) ([]Item, Cost) {
	var cost Cost
	var rec func(n *node)
	var out []Item = dst
	rec = func(n *node) {
		if n.leaf() {
			cost.Leaves++
			t.leafIO.Add(1)
			for _, e := range n.entries {
				if e.rect.Intersects(r) {
					out = append(out, e.item)
				}
			}
			return
		}
		cost.Nodes++
		for _, e := range n.entries {
			if e.rect.Intersects(r) {
				rec(e.child)
			}
		}
	}
	rec(t.root)
	return out, cost
}
