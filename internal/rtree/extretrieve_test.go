package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"pvoronoi/internal/geom"
)

func randTree(rng *rand.Rand, n int) (*Tree, []Item) {
	t := New(2, 8)
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		lo := geom.Point{rng.Float64() * 900, rng.Float64() * 900}
		hi := geom.Point{lo[0] + 1 + rng.Float64()*40, lo[1] + 1 + rng.Float64()*40}
		items[i] = Item{Rect: geom.Rect{Lo: lo, Hi: hi}, ID: uint32(i)}
		t.Insert(items[i])
	}
	return t, items
}

// KthBound's contract: bound is the exact k-th smallest upper over the whole
// tree, every item at or below the bound (by lower) is visited, and no
// mass below the bound hides in unvisited subtrees.
func TestKthBoundContract(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree, items := randTree(rng, 300)
	for iter := 0; iter < 25; iter++ {
		q := geom.Point{rng.Float64() * 900, rng.Float64() * 900}
		lower := func(r geom.Rect) float64 { return r.MinDist(q) }
		upper := func(r geom.Rect) float64 { return r.MaxDist(q) }
		for _, k := range []int{1, 3, 17, 299, 300, 1000} {
			visited, bound, cost := tree.KthBound(lower, upper, k)
			// Exact k-th smallest upper by brute force.
			uppers := make([]float64, len(items))
			for i, it := range items {
				uppers[i] = upper(it.Rect)
			}
			sort.Float64s(uppers)
			want := math.Inf(1)
			if k <= len(uppers) {
				want = uppers[k-1]
			}
			if bound != want {
				t.Fatalf("k=%d: bound %g, want %g", k, bound, want)
			}
			seen := map[uint32]bool{}
			for _, it := range visited {
				seen[it.ID] = true
			}
			for _, it := range items {
				if lower(it.Rect) <= bound && !seen[it.ID] {
					t.Fatalf("k=%d: item %d with lower %g <= bound %g not visited",
						k, it.ID, lower(it.Rect), bound)
				}
			}
			if cost.Leaves == 0 {
				t.Fatalf("k=%d: no leaf accesses recorded", k)
			}
		}
	}
}

func TestKthBoundEmptyTree(t *testing.T) {
	tree := New(2, 8)
	items, bound, cost := tree.KthBound(
		func(geom.Rect) float64 { return 0 },
		func(geom.Rect) float64 { return 0 }, 3)
	if items != nil || !math.IsInf(bound, 1) || cost.Leaves != 0 {
		t.Fatalf("empty tree: items=%v bound=%g cost=%+v", items, bound, cost)
	}
}

// Walk with a nil prune visits everything; a pruning walk must never visit an
// item inside a pruned subtree and must skip those pages entirely.
func TestWalkPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tree, items := randTree(rng, 200)
	var all []uint32
	full := tree.Walk(nil, func(it Item) { all = append(all, it.ID) })
	if len(all) != len(items) {
		t.Fatalf("full walk saw %d of %d items", len(all), len(items))
	}
	// Prune the left half of the domain.
	cut := geom.NewRect(geom.Point{0, 0}, geom.Point{450, 941})
	var kept []uint32
	cost := tree.Walk(
		func(m geom.Rect) bool { return cut.ContainsRect(m) },
		func(it Item) { kept = append(kept, it.ID) })
	if cost.Leaves > full.Leaves {
		t.Fatalf("pruned walk read %d leaves, full walk %d", cost.Leaves, full.Leaves)
	}
	seen := map[uint32]bool{}
	for _, id := range kept {
		seen[id] = true
	}
	for _, it := range items {
		if !cut.ContainsRect(it.Rect) && !seen[it.ID] {
			t.Fatalf("item %d outside the pruned region was skipped", it.ID)
		}
	}
}

func TestSearchWithCostMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tree, _ := randTree(rng, 150)
	for iter := 0; iter < 20; iter++ {
		lo := geom.Point{rng.Float64() * 800, rng.Float64() * 800}
		r := geom.NewRect(lo, geom.Point{lo[0] + 100, lo[1] + 100})
		want := tree.Search(r, nil)
		got, cost := tree.SearchWithCost(r, nil)
		if len(got) != len(want) {
			t.Fatalf("SearchWithCost found %d, Search %d", len(got), len(want))
		}
		if cost.Leaves <= 0 {
			t.Fatal("no leaf accesses recorded")
		}
	}
}
