package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pvoronoi/internal/geom"
)

// Property (testing/quick): for any set of rectangles derived from random
// float seeds, inserting them all and calling All returns exactly that set,
// and every range query agrees with a linear scan.
func TestQuickInsertAllSearch(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%180 + 20
		rng := rand.New(rand.NewSource(seed))
		tree := New(2, 6)
		items := make([]Item, n)
		for i := 0; i < n; i++ {
			items[i] = Item{Rect: randRect(rng, 2, 500, 25), ID: uint32(i)}
			tree.Insert(items[i])
		}
		if tree.Len() != n {
			return false
		}
		got := tree.All(nil)
		if len(got) != n {
			return false
		}
		seen := map[uint32]bool{}
		for _, it := range got {
			if seen[it.ID] {
				return false
			}
			seen[it.ID] = true
		}
		// Three random range queries vs linear scan.
		for k := 0; k < 3; k++ {
			q := randRect(rng, 2, 500, 150)
			want := map[uint32]bool{}
			for _, it := range items {
				if it.Rect.Intersects(q) {
					want[it.ID] = true
				}
			}
			res := tree.Search(q, nil)
			if len(res) != len(want) {
				return false
			}
			for _, it := range res {
				if !want[it.ID] {
					return false
				}
			}
		}
		return tree.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): delete any subset, the tree equals the set
// difference and invariants hold.
func TestQuickDeleteSubset(t *testing.T) {
	f := func(seed int64, delMask uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := New(3, 5)
		const n = 64
		items := make([]Item, n)
		for i := 0; i < n; i++ {
			items[i] = Item{Rect: randRect(rng, 3, 200, 15), ID: uint32(i)}
			tree.Insert(items[i])
		}
		expect := map[uint32]bool{}
		for i := 0; i < n; i++ {
			if delMask&(1<<(i%32)) != 0 && i < 32 {
				if !tree.Delete(items[i]) {
					return false
				}
			} else {
				expect[uint32(i)] = true
			}
		}
		got := tree.All(nil)
		if len(got) != len(expect) {
			return false
		}
		for _, it := range got {
			if !expect[it.ID] {
				return false
			}
		}
		return tree.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: NN browsing distances are a sorted permutation of the
// brute-force distance multiset.
func TestQuickNNOrderIsSortedPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := New(2, 8)
		n := 100
		var dists []float64
		q := geom.Point{rng.Float64() * 300, rng.Float64() * 300}
		for i := 0; i < n; i++ {
			it := Item{Rect: randRect(rng, 2, 300, 20), ID: uint32(i)}
			tree.Insert(it)
			dists = append(dists, it.Rect.MinDist(q))
		}
		it := NewNNIter(tree, q, MinDistTo(q))
		var got []float64
		for {
			_, d, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, d)
		}
		if len(got) != n {
			return false
		}
		// got must be sorted and match the sorted brute-force multiset.
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		sortFloats(dists)
		for i := range dists {
			if math.Abs(dists[i]-got[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
