// Package rtree implements an R*-tree (Beckmann et al., SIGMOD 1990) over
// d-dimensional rectangles, the access method the paper uses both as the
// PNNQ Step-1 baseline (branch-and-prune, Cheng et al. 2004) and as the
// substrate for nearest-neighbor browsing during PV-index construction
// (Hjaltason–Samet distance browsing, used by the FS and IS C-set strategies).
//
// The tree is main-memory resident but models the paper's disk layout: one
// leaf node corresponds to one disk page, and every leaf visited during a
// query counts one I/O against the tree's counter (Figs. 9(c), 9(g)).
package rtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"pvoronoi/internal/geom"
)

// Item is a stored entry: a rectangle and the caller's identifier.
type Item struct {
	Rect geom.Rect
	ID   uint32
}

// DefaultFanout matches the paper's experimental setting.
const DefaultFanout = 100

// cowTag identifies the mutation session that owns a node. Nodes whose tag
// differs from the tree handle's are shared with older versions and must be
// path-copied before mutation (see CloneCOW).
type cowTag struct{ _ byte }

// Tree is an R*-tree. Not safe for concurrent mutation, but a sealed handle
// (one that is no longer mutated) may be read concurrently while a CloneCOW
// descendant is being mutated: mutations never touch shared nodes.
type Tree struct {
	dim        int
	maxEntries int
	minEntries int
	root       *node
	size       int
	sess       *cowTag

	// leafIO counts leaf-node accesses during queries — the simulated
	// disk reads of the paper's experiments. Atomic so concurrent readers
	// (e.g. parallel index construction) do not race.
	leafIO atomic.Int64
}

type node struct {
	owner   *cowTag
	level   int // 0 = leaf
	entries []entry
}

// entry is either a child pointer (internal nodes) or an item (leaves).
type entry struct {
	rect  geom.Rect
	child *node
	item  Item
}

func (n *node) leaf() bool { return n.level == 0 }

func (n *node) mbr() geom.Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// New returns an empty R*-tree for dim-dimensional data with the given
// fanout (maximum entries per node; DefaultFanout if <= 0). The minimum
// fill is 40% of the fanout, per the R*-tree paper.
func New(dim, fanout int) *Tree {
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 4 {
		fanout = 4
	}
	minE := fanout * 2 / 5
	if minE < 1 {
		minE = 1
	}
	sess := new(cowTag)
	return &Tree{
		dim:        dim,
		maxEntries: fanout,
		minEntries: minE,
		root:       &node{owner: sess, level: 0},
		sess:       sess,
	}
}

// CloneCOW returns a mutable copy-on-write descendant of t that initially
// shares every node. Mutations of the clone path-copy the nodes they touch
// and never modify shared ones, so t (now sealed by convention) stays
// readable concurrently — the region tree's half of the index's MVCC
// versioning. Cost is O(1) plus one node copy per node on each subsequent
// mutation path.
func (t *Tree) CloneCOW() *Tree {
	c := &Tree{
		dim:        t.dim,
		maxEntries: t.maxEntries,
		minEntries: t.minEntries,
		root:       t.root,
		size:       t.size,
		sess:       new(cowTag),
	}
	c.leafIO.Store(t.leafIO.Load())
	return c
}

// ownedNode returns n if the current session already owns it, otherwise a
// copy owned by the session (entries slice cloned; child pointers and rects
// shared — geometry values are never mutated in place). The caller must
// store the returned pointer back into the parent.
func (t *Tree) ownedNode(n *node) *node {
	if n.owner == t.sess {
		return n
	}
	c := &node{owner: t.sess, level: n.level}
	c.entries = append(make([]entry, 0, len(n.entries)+1), n.entries...)
	return c
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Height returns the tree height (1 for a root-only tree).
func (t *Tree) Height() int { return t.root.level + 1 }

// LeafIO returns the number of leaf-node accesses recorded since the last
// ResetLeafIO — the simulated disk reads of the paper's experiments.
func (t *Tree) LeafIO() int64 { return t.leafIO.Load() }

// ResetLeafIO zeroes the leaf access counter.
func (t *Tree) ResetLeafIO() { t.leafIO.Store(0) }

// pendingEntry is an entry awaiting (re)insertion at a given level.
type pendingEntry struct {
	e     entry
	level int
}

// Insert adds an item to the tree.
func (t *Tree) Insert(item Item) {
	if item.Rect.Dim() != t.dim {
		panic(fmt.Sprintf("rtree: item dim %d, tree dim %d", item.Rect.Dim(), t.dim))
	}
	t.insertAtLevel(entry{rect: item.Rect, item: item}, 0)
	t.size++
}

// insertAtLevel places e into a node at the given level, applying R*
// overflow treatment (forced reinsert once per level, then split). Forced
// reinserts are deferred to a worklist so the recursive descent never
// mutates nodes on its own path.
func (t *Tree) insertAtLevel(e entry, level int) {
	queue := []pendingEntry{{e, level}}
	reinserted := make(map[int]bool)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		t.root = t.ownedNode(t.root)
		split := t.insertRec(t.root, p.e, p.level, reinserted, &queue)
		if split != nil {
			// Root split: grow the tree.
			newRoot := &node{owner: t.sess, level: t.root.level + 1}
			newRoot.entries = []entry{
				{rect: t.root.mbr(), child: t.root},
				{rect: split.mbr(), child: split},
			}
			t.root = newRoot
		}
	}
}

// insertRec descends to the target level, inserts, and handles overflow.
// n must be owned by the current session; children are path-copied before
// descent. It returns a new sibling if n was split. Entries evicted by
// forced reinsert are appended to queue for the caller's worklist.
func (t *Tree) insertRec(n *node, e entry, level int, reinserted map[int]bool, queue *[]pendingEntry) *node {
	if n.level == level {
		n.entries = append(n.entries, e)
	} else {
		idx := t.chooseSubtree(n, e.rect)
		child := t.ownedNode(n.entries[idx].child)
		n.entries[idx].child = child
		split := t.insertRec(child, e, level, reinserted, queue)
		n.entries[idx].rect = child.mbr()
		if split != nil {
			n.entries = append(n.entries, entry{rect: split.mbr(), child: split})
		}
	}
	if len(n.entries) <= t.maxEntries {
		return nil
	}
	// Overflow treatment: forced reinsert once per level per insertion,
	// except at the root.
	if n != t.root && !reinserted[n.level] {
		reinserted[n.level] = true
		t.forcedReinsert(n, queue)
		return nil
	}
	return t.splitNode(n)
}

// chooseSubtree picks the child to descend into, per R*: at the level above
// leaves minimize overlap enlargement; above that minimize area enlargement.
func (t *Tree) chooseSubtree(n *node, r geom.Rect) int {
	best := 0
	if n.level == 1 {
		// Minimum overlap enlargement, ties by area enlargement then area.
		bestOverlap, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
		for i, e := range n.entries {
			enlarged := e.rect.Union(r)
			var overlapBefore, overlapAfter float64
			for j, f := range n.entries {
				if i == j {
					continue
				}
				if inter, ok := e.rect.Intersection(f.rect); ok {
					overlapBefore += inter.Volume()
				}
				if inter, ok := enlarged.Intersection(f.rect); ok {
					overlapAfter += inter.Volume()
				}
			}
			dOverlap := overlapAfter - overlapBefore
			enl := enlarged.Volume() - e.rect.Volume()
			area := e.rect.Volume()
			if dOverlap < bestOverlap ||
				(dOverlap == bestOverlap && enl < bestEnl) ||
				(dOverlap == bestOverlap && enl == bestEnl && area < bestArea) {
				best, bestOverlap, bestEnl, bestArea = i, dOverlap, enl, area
			}
		}
		return best
	}
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for i, e := range n.entries {
		enl := e.rect.Union(r).Volume() - e.rect.Volume()
		area := e.rect.Volume()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// forcedReinsert removes the 30% of n's entries whose centers are farthest
// from n's MBR center and defers them to the worklist (close-reinsert order).
func (t *Tree) forcedReinsert(n *node, queue *[]pendingEntry) {
	center := n.mbr().Center()
	type distEntry struct {
		e entry
		d float64
	}
	des := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		des[i] = distEntry{e, geom.Dist2(e.rect.Center(), center)}
	}
	sort.Slice(des, func(i, j int) bool { return des[i].d < des[j].d })
	p := len(des) * 3 / 10
	if p < 1 {
		p = 1
	}
	keep := des[:len(des)-p]
	evict := des[len(des)-p:]
	n.entries = n.entries[:0]
	for _, de := range keep {
		n.entries = append(n.entries, de.e)
	}
	// Close reinsert: nearest evicted entries first.
	for _, de := range evict {
		*queue = append(*queue, pendingEntry{de.e, n.level})
	}
}

// splitNode performs the R* topological split and returns the new sibling.
func (t *Tree) splitNode(n *node) *node {
	entries := n.entries
	m := t.minEntries

	// Choose split axis: minimize total margin over all distributions.
	bestAxis, bestMargin := 0, math.Inf(1)
	for axis := 0; axis < t.dim; axis++ {
		for _, byUpper := range []bool{false, true} {
			sortEntries(entries, axis, byUpper)
			var margin float64
			for k := m; k <= len(entries)-m; k++ {
				margin += mbrOf(entries[:k]).Margin() + mbrOf(entries[k:]).Margin()
			}
			if margin < bestMargin {
				bestMargin, bestAxis = margin, axis
			}
		}
	}

	// Choose distribution along the best axis: minimize overlap, tie by area.
	bestK, bestUpper := -1, false
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for _, byUpper := range []bool{false, true} {
		sortEntries(entries, bestAxis, byUpper)
		for k := m; k <= len(entries)-m; k++ {
			left, right := mbrOf(entries[:k]), mbrOf(entries[k:])
			var overlap float64
			if inter, ok := left.Intersection(right); ok {
				overlap = inter.Volume()
			}
			area := left.Volume() + right.Volume()
			if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
				bestOverlap, bestArea, bestK, bestUpper = overlap, area, k, byUpper
			}
		}
	}
	sortEntries(entries, bestAxis, bestUpper)

	sibling := &node{owner: t.sess, level: n.level}
	sibling.entries = append(sibling.entries, entries[bestK:]...)
	n.entries = entries[:bestK]
	return sibling
}

func sortEntries(es []entry, axis int, byUpper bool) {
	sort.Slice(es, func(i, j int) bool {
		if byUpper {
			if es[i].rect.Hi[axis] != es[j].rect.Hi[axis] {
				return es[i].rect.Hi[axis] < es[j].rect.Hi[axis]
			}
			return es[i].rect.Lo[axis] < es[j].rect.Lo[axis]
		}
		if es[i].rect.Lo[axis] != es[j].rect.Lo[axis] {
			return es[i].rect.Lo[axis] < es[j].rect.Lo[axis]
		}
		return es[i].rect.Hi[axis] < es[j].rect.Hi[axis]
	})
}

func mbrOf(es []entry) geom.Rect {
	r := es[0].rect
	for _, e := range es[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// Delete removes the item with the given rect and ID. It reports whether an
// item was removed. Underfull nodes are condensed and their entries
// reinserted, per the classic R-tree deletion algorithm.
func (t *Tree) Delete(item Item) bool {
	path, idx := t.findLeaf(t.root, item, nil)
	if path == nil {
		return false
	}
	// Materialize an owned copy of the found path top-down (the search
	// itself is read-only, so shared nodes it crossed stay untouched).
	path[0] = t.ownedNode(path[0])
	t.root = path[0]
	for i := 1; i < len(path); i++ {
		parent := path[i-1]
		for j := range parent.entries {
			if parent.entries[j].child == path[i] {
				path[i] = t.ownedNode(path[i])
				parent.entries[j].child = path[i]
				break
			}
		}
	}
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(path)
	// Shrink the root while it is an internal node with a single child.
	for !t.root.leaf() && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if len(t.root.entries) == 0 && !t.root.leaf() {
		t.root = &node{owner: t.sess, level: 0}
	}
	return true
}

// findLeaf returns the root-to-leaf path to the leaf containing item and the
// entry index within that leaf, or (nil, -1).
func (t *Tree) findLeaf(n *node, item Item, path []*node) ([]*node, int) {
	path = append(path, n)
	if n.leaf() {
		for i, e := range n.entries {
			if e.item.ID == item.ID && e.rect.Equal(item.Rect) {
				return path, i
			}
		}
		return nil, -1
	}
	for _, e := range n.entries {
		if e.rect.ContainsRect(item.Rect) {
			if p, i := t.findLeaf(e.child, item, path); p != nil {
				return p, i
			}
		}
	}
	return nil, -1
}

// condense walks the deletion path bottom-up, removing underfull nodes and
// reinserting their entries at their original level.
func (t *Tree) condense(path []*node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i]
		parent := path[i-1]
		childIdx := -1
		for j, e := range parent.entries {
			if e.child == n {
				childIdx = j
				break
			}
		}
		if childIdx < 0 {
			continue
		}
		if len(n.entries) < t.minEntries {
			parent.entries = append(parent.entries[:childIdx], parent.entries[childIdx+1:]...)
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e, n.level})
			}
		} else {
			parent.entries[childIdx].rect = n.mbr()
		}
	}
	// Entries of a dissolved node re-enter at the node's level.
	for _, o := range orphans {
		t.insertAtLevel(o.e, o.level)
	}
}

// Search appends to dst all items whose rectangles intersect r, counting
// leaf I/O, and returns the extended slice.
func (t *Tree) Search(r geom.Rect, dst []Item) []Item {
	return t.search(t.root, r, dst)
}

func (t *Tree) search(n *node, r geom.Rect, dst []Item) []Item {
	if n.leaf() {
		t.leafIO.Add(1)
		for _, e := range n.entries {
			if e.rect.Intersects(r) {
				dst = append(dst, e.item)
			}
		}
		return dst
	}
	for _, e := range n.entries {
		if e.rect.Intersects(r) {
			dst = t.search(e.child, r, dst)
		}
	}
	return dst
}

// All appends every stored item to dst.
func (t *Tree) All(dst []Item) []Item {
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf() {
			for _, e := range n.entries {
				dst = append(dst, e.item)
			}
			return
		}
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	return dst
}

// DistFunc maps an item rectangle to a non-negative key for NN browsing.
// It must be lower-bounded by the MinDist of any rectangle enclosing the
// item's rectangle (true for both MinDist itself and center distance).
type DistFunc func(geom.Rect) float64

// MinDistTo returns the DistFunc ordering by minimum distance from q.
func MinDistTo(q geom.Point) DistFunc {
	return func(r geom.Rect) float64 { return r.MinDist(q) }
}

// CenterDistTo returns the DistFunc ordering by distance of rectangle
// centers from q — the "mean position" ordering of the FS strategy.
func CenterDistTo(q geom.Point) DistFunc {
	return func(r geom.Rect) float64 { return geom.Dist(r.Center(), q) }
}

// nnHeapItem is a priority-queue element for distance browsing.
type nnHeapItem struct {
	dist  float64
	node  *node // nil for item entries
	item  Item
	order int64 // tie-break for determinism
}

type nnHeap []nnHeapItem

func (h nnHeap) Len() int { return len(h) }
func (h nnHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].order < h[j].order
}
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnHeapItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NNIter browses items in non-decreasing order of a distance function
// (Hjaltason & Samet, TODS 1999). Create with NewNNIter; call Next until
// ok == false.
type NNIter struct {
	tree    *Tree
	q       geom.Point
	distFn  DistFunc
	h       nnHeap
	counter int64
}

// NewNNIter starts an incremental NN browse from q. distFn orders the
// results; pass MinDistTo(q) or CenterDistTo(q).
func NewNNIter(t *Tree, q geom.Point, distFn DistFunc) *NNIter {
	it := &NNIter{tree: t, q: q, distFn: distFn}
	if t.size > 0 {
		heap.Push(&it.h, nnHeapItem{dist: t.root.mbr().MinDist(q), node: t.root})
	}
	return it
}

// Next returns the next item in distance order.
func (it *NNIter) Next() (Item, float64, bool) {
	for it.h.Len() > 0 {
		top := heap.Pop(&it.h).(nnHeapItem)
		if top.node == nil {
			return top.item, top.dist, true
		}
		n := top.node
		if n.leaf() {
			it.tree.leafIO.Add(1)
			for _, e := range n.entries {
				it.counter++
				heap.Push(&it.h, nnHeapItem{dist: it.distFn(e.rect), item: e.item, order: it.counter})
			}
			continue
		}
		for _, e := range n.entries {
			it.counter++
			heap.Push(&it.h, nnHeapItem{dist: e.rect.MinDist(it.q), node: e.child, order: it.counter})
		}
	}
	return Item{}, 0, false
}

// PossibleNN implements the paper's R-tree baseline for PNNQ Step 1
// (branch-and-prune, Cheng et al. 2004): it returns the IDs of all items o
// with distmin(o, q) <= min_o' distmax(o', q), visiting only nodes whose
// MinDist does not exceed the running best max-distance.
func (t *Tree) PossibleNN(q geom.Point) []uint32 {
	if t.size == 0 {
		return nil
	}
	bestMax := math.Inf(1)
	type cand struct {
		id      uint32
		minDist float64
	}
	var cands []cand

	var h nnHeap
	var counter int64
	heap.Push(&h, nnHeapItem{dist: t.root.mbr().MinDist(q), node: t.root})
	for h.Len() > 0 {
		top := heap.Pop(&h).(nnHeapItem)
		if top.dist > bestMax {
			break // all remaining nodes are farther than the pruning bound
		}
		n := top.node
		if n.leaf() {
			t.leafIO.Add(1)
			for _, e := range n.entries {
				minD := e.rect.MinDist(q)
				if maxD := e.rect.MaxDist(q); maxD < bestMax {
					bestMax = maxD
				}
				cands = append(cands, cand{e.item.ID, minD})
			}
			continue
		}
		for _, e := range n.entries {
			d := e.rect.MinDist(q)
			if d <= bestMax {
				counter++
				heap.Push(&h, nnHeapItem{dist: d, node: e.child, order: counter})
			}
		}
	}
	var out []uint32
	for _, c := range cands {
		if c.minDist <= bestMax {
			out = append(out, c.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkInvariants validates structural invariants; used by tests.
func (t *Tree) checkInvariants() error {
	var count int
	var walk func(n *node, isRoot bool) (geom.Rect, error)
	walk = func(n *node, isRoot bool) (geom.Rect, error) {
		if len(n.entries) == 0 {
			if isRoot && n.leaf() {
				return geom.Rect{}, nil
			}
			return geom.Rect{}, fmt.Errorf("empty non-root node at level %d", n.level)
		}
		if !isRoot && len(n.entries) < t.minEntries {
			return geom.Rect{}, fmt.Errorf("underfull node: %d < %d", len(n.entries), t.minEntries)
		}
		if len(n.entries) > t.maxEntries {
			return geom.Rect{}, fmt.Errorf("overfull node: %d > %d", len(n.entries), t.maxEntries)
		}
		if n.leaf() {
			count += len(n.entries)
			return n.mbr(), nil
		}
		for _, e := range n.entries {
			if e.child.level != n.level-1 {
				return geom.Rect{}, fmt.Errorf("level mismatch: child %d under parent %d", e.child.level, n.level)
			}
			childMBR, err := walk(e.child, false)
			if err != nil {
				return geom.Rect{}, err
			}
			if !e.rect.Equal(childMBR) {
				return geom.Rect{}, fmt.Errorf("stale MBR at level %d: have %v, children span %v", n.level, e.rect, childMBR)
			}
		}
		return n.mbr(), nil
	}
	if _, err := walk(t.root, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size mismatch: counted %d, recorded %d", count, t.size)
	}
	return nil
}
