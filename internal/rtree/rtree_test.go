package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"pvoronoi/internal/geom"
)

func randRect(rng *rand.Rand, d int, span, maxSide float64) geom.Rect {
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for i := 0; i < d; i++ {
		lo[i] = rng.Float64() * span
		hi[i] = lo[i] + rng.Float64()*maxSide
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

func buildRandomTree(t *testing.T, rng *rand.Rand, n, d, fanout int) (*Tree, []Item) {
	t.Helper()
	tree := New(d, fanout)
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = Item{Rect: randRect(rng, d, 1000, 20), ID: uint32(i)}
		tree.Insert(items[i])
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatalf("invariants after build: %v", err)
	}
	return tree, items
}

func TestInsertAndSearchSmall(t *testing.T) {
	tree := New(2, 4)
	items := []Item{
		{Rect: geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}), ID: 1},
		{Rect: geom.NewRect(geom.Point{5, 5}, geom.Point{6, 6}), ID: 2},
		{Rect: geom.NewRect(geom.Point{0.5, 0.5}, geom.Point{2, 2}), ID: 3},
	}
	for _, it := range items {
		tree.Insert(it)
	}
	got := tree.Search(geom.NewRect(geom.Point{0, 0}, geom.Point{2, 2}), nil)
	ids := idsOf(got)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("Search = %v", ids)
	}
	if tree.Len() != 3 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

func idsOf(items []Item) []uint32 {
	ids := make([]uint32, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{2, 3, 4} {
		tree, items := buildRandomTree(t, rng, 3000, d, 16)
		for iter := 0; iter < 50; iter++ {
			q := randRect(rng, d, 1000, 100)
			want := map[uint32]bool{}
			for _, it := range items {
				if it.Rect.Intersects(q) {
					want[it.ID] = true
				}
			}
			got := tree.Search(q, nil)
			if len(got) != len(want) {
				t.Fatalf("d=%d: Search returned %d items, want %d", d, len(got), len(want))
			}
			for _, it := range got {
				if !want[it.ID] {
					t.Fatalf("d=%d: unexpected item %d", d, it.ID)
				}
			}
		}
	}
}

func TestAllReturnsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tree, items := buildRandomTree(t, rng, 500, 2, 8)
	got := tree.All(nil)
	if len(got) != len(items) {
		t.Fatalf("All returned %d, want %d", len(got), len(items))
	}
	seen := map[uint32]bool{}
	for _, it := range got {
		if seen[it.ID] {
			t.Fatalf("duplicate ID %d", it.ID)
		}
		seen[it.ID] = true
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree, items := buildRandomTree(t, rng, 2000, 3, 10)
	// Delete half the items in random order.
	perm := rng.Perm(len(items))
	for _, idx := range perm[:1000] {
		if !tree.Delete(items[idx]) {
			t.Fatalf("Delete(%d) failed", items[idx].ID)
		}
	}
	if tree.Len() != 1000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatalf("invariants after deletes: %v", err)
	}
	// Deleted items must be gone; survivors must be findable.
	deleted := map[uint32]bool{}
	for _, idx := range perm[:1000] {
		deleted[items[idx].ID] = true
	}
	all := tree.All(nil)
	for _, it := range all {
		if deleted[it.ID] {
			t.Fatalf("deleted item %d still present", it.ID)
		}
	}
	if tree.Delete(items[perm[0]]) {
		t.Fatal("double delete succeeded")
	}
	// Delete the rest down to empty.
	for _, idx := range perm[1000:] {
		if !tree.Delete(items[idx]) {
			t.Fatalf("Delete(%d) failed", items[idx].ID)
		}
	}
	if tree.Len() != 0 {
		t.Fatalf("Len after full delete = %d", tree.Len())
	}
	if got := tree.Search(geom.UnitCube(3, 1000), nil); len(got) != 0 {
		t.Fatalf("empty tree search returned %v", got)
	}
}

func TestDeleteReinsertCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tree, items := buildRandomTree(t, rng, 800, 2, 8)
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 200; i++ {
			idx := rng.Intn(len(items))
			tree.Delete(items[idx])
			tree.Insert(items[idx])
		}
		if err := tree.checkInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	if tree.Len() != 800 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

func TestNNIterOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []int{2, 3} {
		tree, items := buildRandomTree(t, rng, 1500, d, 12)
		for iter := 0; iter < 20; iter++ {
			q := make(geom.Point, d)
			for i := range q {
				q[i] = rng.Float64() * 1000
			}
			it := NewNNIter(tree, q, MinDistTo(q))
			var prev float64 = -1
			count := 0
			for {
				item, dist, ok := it.Next()
				if !ok {
					break
				}
				if dist < prev-1e-12 {
					t.Fatalf("NN order violated: %g after %g", dist, prev)
				}
				if math.Abs(item.Rect.MinDist(q)-dist) > 1e-12 {
					t.Fatalf("reported dist %g != MinDist %g", dist, item.Rect.MinDist(q))
				}
				prev = dist
				count++
			}
			if count != len(items) {
				t.Fatalf("iterator returned %d of %d items", count, len(items))
			}
		}
	}
}

func TestNNIterFirstMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tree, items := buildRandomTree(t, rng, 2000, 3, 16)
	for iter := 0; iter < 50; iter++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		it := NewNNIter(tree, q, MinDistTo(q))
		_, gotDist, ok := it.Next()
		if !ok {
			t.Fatal("no NN returned")
		}
		best := math.Inf(1)
		for _, item := range items {
			if d := item.Rect.MinDist(q); d < best {
				best = d
			}
		}
		if math.Abs(gotDist-best) > 1e-12 {
			t.Fatalf("NN dist = %g, brute force %g", gotDist, best)
		}
	}
}

func TestNNIterCenterDist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree, items := buildRandomTree(t, rng, 1000, 2, 10)
	q := geom.Point{500, 500}
	it := NewNNIter(tree, q, CenterDistTo(q))
	var prev float64 = -1
	var count int
	for {
		item, dist, ok := it.Next()
		if !ok {
			break
		}
		if dist < prev-1e-12 {
			t.Fatalf("center-dist order violated")
		}
		if math.Abs(geom.Dist(item.Rect.Center(), q)-dist) > 1e-12 {
			t.Fatal("center distance mismatch")
		}
		prev = dist
		count++
	}
	if count != len(items) {
		t.Fatalf("returned %d of %d", count, len(items))
	}
}

func TestPossibleNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, d := range []int{2, 3, 4} {
		tree, items := buildRandomTree(t, rng, 2000, d, 16)
		for iter := 0; iter < 50; iter++ {
			q := make(geom.Point, d)
			for i := range q {
				q[i] = rng.Float64() * 1000
			}
			// Brute force possible-NN set.
			best := math.Inf(1)
			for _, it := range items {
				if m := it.Rect.MaxDist(q); m < best {
					best = m
				}
			}
			want := map[uint32]bool{}
			for _, it := range items {
				if it.Rect.MinDist(q) <= best {
					want[it.ID] = true
				}
			}
			got := tree.PossibleNN(q)
			if len(got) != len(want) {
				t.Fatalf("d=%d: PossibleNN returned %d, want %d", d, len(got), len(want))
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("d=%d: unexpected candidate %d", d, id)
				}
			}
		}
	}
}

func TestPossibleNNEmptyTree(t *testing.T) {
	tree := New(2, 8)
	if got := tree.PossibleNN(geom.Point{1, 2}); got != nil {
		t.Fatalf("empty tree PossibleNN = %v", got)
	}
}

func TestLeafIOCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tree, _ := buildRandomTree(t, rng, 3000, 2, 10)
	tree.ResetLeafIO()
	tree.PossibleNN(geom.Point{500, 500})
	ioQuery := tree.LeafIO()
	if ioQuery == 0 {
		t.Fatal("no leaf I/O recorded")
	}
	// Pruned search must touch far fewer leaves than a full scan.
	tree.ResetLeafIO()
	tree.Search(geom.UnitCube(2, 1000), nil)
	ioFull := tree.LeafIO()
	if ioQuery*3 > ioFull {
		t.Fatalf("PossibleNN touched %d of %d leaves; pruning ineffective", ioQuery, ioFull)
	}
}

func TestDuplicateRects(t *testing.T) {
	tree := New(2, 4)
	r := geom.NewRect(geom.Point{1, 1}, geom.Point{2, 2})
	for i := 0; i < 20; i++ {
		tree.Insert(Item{Rect: r, ID: uint32(i)})
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tree.Search(r, nil)
	if len(got) != 20 {
		t.Fatalf("Search = %d items", len(got))
	}
	// Delete specific IDs among duplicates.
	if !tree.Delete(Item{Rect: r, ID: 7}) {
		t.Fatal("delete of duplicate-rect item failed")
	}
	got = tree.Search(r, nil)
	if len(got) != 19 {
		t.Fatalf("after delete: %d items", len(got))
	}
	for _, it := range got {
		if it.ID == 7 {
			t.Fatal("deleted ID still present")
		}
	}
}

func TestHeightGrowth(t *testing.T) {
	tree := New(2, 4)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		tree.Insert(Item{Rect: randRect(rng, 2, 100, 5), ID: uint32(i)})
	}
	if tree.Height() < 3 {
		t.Fatalf("height = %d for 100 items at fanout 4", tree.Height())
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert3D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tree := New(3, DefaultFanout)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tree.Insert(Item{Rect: randRect(rng, 3, 10000, 60), ID: uint32(i)})
	}
}

func BenchmarkPossibleNN3D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tree := New(3, DefaultFanout)
	for i := 0; i < 20000; i++ {
		tree.Insert(Item{Rect: randRect(rng, 3, 10000, 60), ID: uint32(i)})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := geom.Point{rng.Float64() * 10000, rng.Float64() * 10000, rng.Float64() * 10000}
		_ = tree.PossibleNN(q)
	}
}
