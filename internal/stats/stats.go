// Package stats provides the small measurement toolkit used by the
// benchmark harness: repeated-run timing, aggregate statistics, and
// fixed-width table rendering for the paper-style result series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample aggregates a set of float64 observations.
type Sample struct {
	values []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// TimeOp runs fn and returns its wall-clock duration.
func TimeOp(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}

// MeanDuration runs fn n times and returns the mean duration per run.
func MeanDuration(n int, fn func()) time.Duration {
	if n <= 0 {
		return 0
	}
	t0 := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(t0) / time.Duration(n)
}

// Table renders paper-style result tables: a header row and aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v, durations in ms,
// floats with 3 significant decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = renderCell(c)
	}
	t.rows = append(t.rows, row)
}

func renderCell(c interface{}) string {
	switch v := c.(type) {
	case time.Duration:
		return fmt.Sprintf("%.3fms", float64(v.Nanoseconds())/1e6)
	case float64:
		return fmt.Sprintf("%.3f", v)
	case float32:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%v", c)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for i, h := range t.Headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteByte('\n')
	for i := range t.Headers {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
