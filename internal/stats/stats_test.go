package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.N() != 0 {
		t.Fatal("empty sample not zeroed")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Fatalf("N=%d mean=%g", s.N(), s.Mean())
	}
	if got := s.Stddev(); math.Abs(got-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev=%g", got)
	}
	if got := s.Percentile(50); got != 3 {
		t.Fatalf("p50=%g", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("p100=%g", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0=%g", got)
	}
}

func TestTimeOp(t *testing.T) {
	d := TimeOp(func() { time.Sleep(5 * time.Millisecond) })
	if d < 4*time.Millisecond {
		t.Fatalf("TimeOp = %v", d)
	}
	m := MeanDuration(3, func() { time.Sleep(2 * time.Millisecond) })
	if m < time.Millisecond {
		t.Fatalf("MeanDuration = %v", m)
	}
	if MeanDuration(0, func() {}) != 0 {
		t.Fatal("MeanDuration(0) != 0")
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("Fig X", "|S|", "Tq(R-tree)", "Tq(PV)")
	tab.AddRow(20000, 12*time.Millisecond, 7.5)
	tab.AddRow(40000, 15*time.Millisecond, 9.25)
	out := tab.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "12.000ms") || !strings.Contains(out, "9.250") {
		t.Fatalf("table rendering:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}
