// Package uncertain implements the attribute-uncertainty data model of the
// paper: each object carries a rectangular uncertainty region u(o) that
// minimally bounds its possible attribute values, plus a discrete uncertainty
// pdf — a set of weighted instance points inside u(o) (500 samples per object
// in the paper's experiments).
package uncertain

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"pvoronoi/internal/geom"
)

// ID identifies an object within a database.
type ID uint32

// Instance is one sample of an object's discrete uncertainty pdf.
type Instance struct {
	Pos  geom.Point
	Prob float64 // existence probability; all instances of an object sum to 1
}

// Object is an uncertain object: a bounding uncertainty region plus the
// discrete pdf samples it bounds. Instances may be empty for workloads that
// only exercise PNNQ Step 1 (possible-NN retrieval), which depends on the
// region alone.
type Object struct {
	ID        ID
	Region    geom.Rect
	Instances []Instance
}

// Dim returns the dimensionality of the object.
func (o *Object) Dim() int { return o.Region.Dim() }

// Validate checks structural invariants: a well-formed region, instances
// inside the region, and probabilities summing to ~1 when present.
func (o *Object) Validate() error {
	for i := range o.Region.Lo {
		if o.Region.Lo[i] > o.Region.Hi[i] {
			return fmt.Errorf("object %d: inverted region in dim %d", o.ID, i)
		}
	}
	if len(o.Instances) == 0 {
		return nil
	}
	var sum float64
	for _, in := range o.Instances {
		if in.Pos.Dim() != o.Dim() {
			return fmt.Errorf("object %d: instance dim %d != region dim %d", o.ID, in.Pos.Dim(), o.Dim())
		}
		if !o.Region.Contains(in.Pos) {
			return fmt.Errorf("object %d: instance %v outside region %v", o.ID, in.Pos, o.Region)
		}
		if in.Prob < 0 {
			return fmt.Errorf("object %d: negative instance probability %g", o.ID, in.Prob)
		}
		sum += in.Prob
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("object %d: instance probabilities sum to %g, want 1", o.ID, sum)
	}
	return nil
}

// MinDist is distmin(o, p): the smallest possible distance from o's attribute
// value to p, i.e. the minimum distance from p to u(o).
func (o *Object) MinDist(p geom.Point) float64 { return o.Region.MinDist(p) }

// MaxDist is distmax(o, p): the largest possible distance from o's attribute
// value to p.
func (o *Object) MaxDist(p geom.Point) float64 { return o.Region.MaxDist(p) }

// PDFKind selects the distribution used to discretize an object's pdf.
type PDFKind int

const (
	// PDFUniform samples instances uniformly inside the uncertainty region.
	PDFUniform PDFKind = iota
	// PDFGaussian samples a Gaussian centered at the region's center
	// (σ = side/4 per dimension), truncated to the region — the model used
	// for the paper's GPS-derived real datasets.
	PDFGaussian
)

// SampleInstances discretizes a pdf of the given kind into n equally weighted
// instances inside region, using rng for reproducibility. n must be positive.
func SampleInstances(region geom.Rect, kind PDFKind, n int, rng *rand.Rand) []Instance {
	if n <= 0 {
		panic("uncertain: SampleInstances requires n > 0")
	}
	d := region.Dim()
	out := make([]Instance, n)
	w := 1.0 / float64(n)
	center := region.Center()
	for i := 0; i < n; i++ {
		p := make(geom.Point, d)
		for j := 0; j < d; j++ {
			switch kind {
			case PDFGaussian:
				sigma := region.Side(j) / 4
				v := center[j] + rng.NormFloat64()*sigma
				// Truncate to the region: the region bounds all values.
				if v < region.Lo[j] {
					v = region.Lo[j]
				} else if v > region.Hi[j] {
					v = region.Hi[j]
				}
				p[j] = v
			default:
				p[j] = region.Lo[j] + rng.Float64()*region.Side(j)
			}
		}
		out[i] = Instance{Pos: p, Prob: w}
	}
	return out
}

// DB is an in-memory uncertain database: the set S of the paper. Object order
// is stable; lookup by ID is O(1).
type DB struct {
	Domain  geom.Rect
	objects []*Object
	byID    map[ID]int
}

// NewDB returns an empty database over the given domain.
func NewDB(domain geom.Rect) *DB {
	return &DB{Domain: domain, byID: make(map[ID]int)}
}

// ErrDuplicateID is returned when inserting an object whose ID already exists.
var ErrDuplicateID = errors.New("uncertain: duplicate object ID")

// ErrUnknownID is returned when an operation references a missing object.
var ErrUnknownID = errors.New("uncertain: unknown object ID")

// Add inserts o into the database.
func (db *DB) Add(o *Object) error {
	if _, ok := db.byID[o.ID]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateID, o.ID)
	}
	if o.Dim() != db.Domain.Dim() {
		return fmt.Errorf("uncertain: object %d has dim %d, domain dim %d", o.ID, o.Dim(), db.Domain.Dim())
	}
	db.byID[o.ID] = len(db.objects)
	db.objects = append(db.objects, o)
	return nil
}

// Remove deletes the object with the given ID.
func (db *DB) Remove(id ID) (*Object, error) {
	idx, ok := db.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	o := db.objects[idx]
	last := len(db.objects) - 1
	db.objects[idx] = db.objects[last]
	db.byID[db.objects[idx].ID] = idx
	db.objects = db.objects[:last]
	delete(db.byID, id)
	return o, nil
}

// Get returns the object with the given ID, or nil.
func (db *DB) Get(id ID) *Object {
	idx, ok := db.byID[id]
	if !ok {
		return nil
	}
	return db.objects[idx]
}

// Len returns the number of objects.
func (db *DB) Len() int { return len(db.objects) }

// Dim returns the domain dimensionality.
func (db *DB) Dim() int { return db.Domain.Dim() }

// Objects returns the backing slice of objects. Callers must not mutate it.
func (db *DB) Objects() []*Object { return db.objects }

// Clone returns a shallow copy of the database sharing the object values but
// with independent bookkeeping, so updates to one copy do not affect the other.
func (db *DB) Clone() *DB {
	c := NewDB(db.Domain)
	c.objects = make([]*Object, len(db.objects))
	copy(c.objects, db.objects)
	for id, idx := range db.byID {
		c.byID[id] = idx
	}
	return c
}
